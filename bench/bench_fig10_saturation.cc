// Figure 10 (paper §5.3): reformulation vs saturation. Compares, at two
// LUBM scales: (i) the plain UCQ reformulation, (ii) saturation-based
// answering on the RDBMS-style profile, (iii) saturation-based answering on
// the native-store profile (the Virtuoso role), and (iv) the GCov-chosen
// JUCQ. The paper's finding: UCQ is far behind or fails; GCov approaches
// saturation on many queries while reasoning at query time.

#include "bench_common.h"

namespace rdfopt::bench {
namespace {

void RunScale(const char* label, size_t target) {
  BenchEnv env = BenchEnv::Lubm(target);
  std::printf("\n== Figure 10%s: saturation vs reformulation (ms); "
              "one-off saturation cost was %.0f ms\n",
              label, env.saturation_ms);
  std::printf("%-5s %14s %16s %16s %14s\n", "q", "UCQ",
              "Sat(rdbms-like)", "Sat(native)", "GCov JUCQ");

  QueryAnswerer rdbms = env.MakeAnswerer(PostgresLikeProfile());
  QueryAnswerer native = env.MakeAnswerer(NativeStoreProfile());

  for (const BenchmarkQuery& bq : LubmQuerySet()) {
    Query query = ParseOrDie(bq.text, &env.graph.dict());
    StrategyRun ucq = RunStrategy(rdbms, query, Strategy::kUcq);
    StrategyRun sat_rdbms = RunStrategy(rdbms, query, Strategy::kSaturation);
    StrategyRun sat_native = RunStrategy(native, query,
                                         Strategy::kSaturation);
    StrategyRun gcov = RunStrategy(rdbms, query, Strategy::kGcov);
    std::printf("%-5s %14s %16s %16s %14s\n", bq.name.c_str(),
                MsOrFail(ucq).c_str(), MsOrFail(sat_rdbms).c_str(),
                MsOrFail(sat_native).c_str(), MsOrFail(gcov).c_str());
  }
}

int Main() {
  RunScale("(a) LUBM small", EnvSize("RDFOPT_LUBM_TRIPLES", 1'000'000));
  RunScale("(b) LUBM large",
           EnvSize("RDFOPT_LUBM_LARGE_TRIPLES", 2'000'000));
  return 0;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) {
  rdfopt::bench::InitBenchThreads(&argc, argv);
  rdfopt::bench::InitBenchJson(argc, argv);
  return rdfopt::bench::Main();
}
