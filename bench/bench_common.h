#ifndef RDFOPT_BENCH_BENCH_COMMON_H_
#define RDFOPT_BENCH_BENCH_COMMON_H_

// Shared harness for the per-table/per-figure benchmark binaries. Each
// binary regenerates one table or figure of the paper's evaluation (§5);
// see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Scales are configurable through environment variables so the suite runs
// in minutes by default and can be scaled up towards the paper's sizes:
//   RDFOPT_LUBM_TRIPLES        default per-bench (paper: 1M and 100M)
//   RDFOPT_LUBM_LARGE_TRIPLES  the "large" LUBM scale (default 3M)
//   RDFOPT_DBLP_TRIPLES        default 500k (paper: 8M)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "optimizer/answering.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "storage/statistics.h"
#include "storage/triple_store.h"
#include "workload/dblp.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt::bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

/// A generated workload plus everything the answerer needs.
struct BenchEnv {
  Graph graph;
  TripleStore store;
  TripleStore saturated;
  Statistics stats;
  size_t data_triples = 0;
  double saturation_ms = 0.0;

  static BenchEnv Lubm(size_t target_triples) {
    BenchEnv env;
    LubmOptions options = LubmOptionsForTripleTarget(target_triples);
    std::printf("# generating LUBM-style data: target %zu triples "
                "(%zu universities)...\n",
                target_triples, options.num_universities);
    env.data_triples = GenerateLubm(options, &env.graph);
    env.Finish();
    return env;
  }

  static BenchEnv Dblp(size_t target_triples) {
    BenchEnv env;
    DblpOptions options = DblpOptionsForTripleTarget(target_triples);
    std::printf("# generating DBLP-style data: target %zu triples "
                "(%zu publications)...\n",
                target_triples, options.num_publications);
    env.data_triples = GenerateDblp(options, &env.graph);
    env.Finish();
    return env;
  }

  QueryAnswerer MakeAnswerer(const EngineProfile& profile) {
    return QueryAnswerer(&store, &saturated, &graph.schema(), &graph.vocab(),
                         &stats, &profile);
  }

 private:
  void Finish() {
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
    Stopwatch sw;
    SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
    saturation_ms = sw.ElapsedMillis();
    saturated = std::move(sat.store);
    stats = Statistics::Compute(store);
    std::printf("# %zu distinct data triples, %zu after saturation "
                "(%.0f ms to saturate)\n",
                store.size(), saturated.size(), saturation_ms);
  }
};

/// One strategy execution, flattened for table printing.
struct StrategyRun {
  bool ok = false;
  std::string failure;       // StatusCodeName on failure.
  size_t answers = 0;
  double total_ms = 0.0;
  double optimize_ms = 0.0;
  double reformulate_ms = 0.0;
  double evaluate_ms = 0.0;
  size_t union_terms = 0;
  size_t num_components = 0;
  size_t covers_examined = 0;
  bool optimizer_timed_out = false;
};

inline StrategyRun RunStrategy(const QueryAnswerer& answerer,
                               const Query& query, Strategy strategy,
                               const AnswerOptions& base_options = {}) {
  AnswerOptions options = base_options;
  options.strategy = strategy;
  StrategyRun run;
  Result<AnswerOutcome> outcome = answerer.Answer(query, options);
  if (!outcome.ok()) {
    run.failure = StatusCodeName(outcome.status().code());
    return run;
  }
  const AnswerOutcome& o = outcome.ValueOrDie();
  run.ok = true;
  run.answers = o.answers.num_rows();
  run.total_ms = o.total_ms();
  run.optimize_ms = o.optimize_ms;
  run.reformulate_ms = o.reformulate_ms;
  run.evaluate_ms = o.evaluate_ms;
  run.union_terms = o.union_terms;
  run.num_components = o.num_components;
  run.covers_examined = o.covers_examined;
  run.optimizer_timed_out = o.optimizer_timed_out;
  return run;
}

/// "123.4" or the failure tag ("FAIL:QueryTooComplex").
inline std::string MsOrFail(const StrategyRun& run) {
  if (!run.ok) return "FAIL:" + run.failure;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", run.total_ms);
  return buf;
}

inline Query ParseOrDie(const std::string& text, Dictionary* dict) {
  Result<Query> q = ParseQuery(text, dict);
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return q.TakeValue();
}

/// The three reformulation-target profiles in figure order.
inline const EngineProfile* const* ThreeProfiles() {
  static const EngineProfile* const profiles[3] = {
      &Db2LikeProfile(), &PostgresLikeProfile(), &MysqlLikeProfile()};
  return profiles;
}

/// The strategy matrix of Figures 4/5/6: for every query and every engine
/// profile, the evaluation time of the UCQ, SCQ, ECov-JUCQ and GCov-JUCQ
/// reformulations (log-scale bars in the paper; rows here). Missing bars in
/// the paper are FAIL:... entries here.
inline void RunStrategyMatrix(BenchEnv* env,
                              const std::vector<BenchmarkQuery>& queries,
                              const char* title) {
  std::printf("\n== %s: query answering times (ms) per engine profile\n",
              title);
  std::printf("%-5s %-26s %14s %14s %14s %14s %10s\n", "q", "engine", "UCQ",
              "SCQ", "ECov", "GCov", "#answers");
  for (const BenchmarkQuery& bq : queries) {
    Query query = ParseOrDie(bq.text, &env->graph.dict());
    for (int p = 0; p < 3; ++p) {
      const EngineProfile& profile = *ThreeProfiles()[p];
      QueryAnswerer answerer = env->MakeAnswerer(profile);
      StrategyRun ucq = RunStrategy(answerer, query, Strategy::kUcq);
      StrategyRun scq = RunStrategy(answerer, query, Strategy::kScq);
      StrategyRun ecov = RunStrategy(answerer, query, Strategy::kEcov);
      StrategyRun gcov = RunStrategy(answerer, query, Strategy::kGcov);
      size_t answers = gcov.ok ? gcov.answers
                               : (ucq.ok ? ucq.answers : scq.answers);
      std::printf("%-5s %-26s %14s %14s %14s %14s %10zu\n", bq.name.c_str(),
                  profile.name.c_str(), MsOrFail(ucq).c_str(),
                  MsOrFail(scq).c_str(), MsOrFail(ecov).c_str(),
                  MsOrFail(gcov).c_str(), answers);
    }
  }
}

}  // namespace rdfopt::bench

#endif  // RDFOPT_BENCH_BENCH_COMMON_H_
