#ifndef RDFOPT_BENCH_BENCH_COMMON_H_
#define RDFOPT_BENCH_BENCH_COMMON_H_

// Shared harness for the per-table/per-figure benchmark binaries. Each
// binary regenerates one table or figure of the paper's evaluation (§5);
// see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Scales are configurable through environment variables so the suite runs
// in minutes by default and can be scaled up towards the paper's sizes:
//   RDFOPT_LUBM_TRIPLES        default per-bench (paper: 1M and 100M)
//   RDFOPT_LUBM_LARGE_TRIPLES  the "large" LUBM scale (default 3M)
//   RDFOPT_DBLP_TRIPLES        default 500k (paper: 8M)
//
// Every binary also accepts `--json <path>`: each strategy execution is
// then traced and appended to <path> as one JSON record
//   {"query","engine","strategy","ok","answers","total_ms","optimize_ms",
//    "reformulate_ms","plan_ms","evaluate_ms","union_terms","num_components",
//    "covers_examined","worker_threads","spans":{...},"metrics":{...}}
// (the file is a JSON array of records), making the BENCH_*.json
// trajectories reproducible straight from the harness.
//
// `--threads N` sets EngineProfile::worker_threads on every profile the
// harness hands out (default 1 = sequential). Answers and counters are
// identical at any setting (DESIGN.md §9); only wall-clock changes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "optimizer/answering.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "storage/statistics.h"
#include "storage/triple_store.h"
#include "workload/dblp.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt::bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

/// Machine-readable sidecar output: a JSON array of per-run records written
/// to the path given by `--json <path>`. One writer per process, shared by
/// every RunStrategy call through Active().
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {
    if (file_ != nullptr) std::fputs("[", file_);
  }
  ~BenchJsonWriter() {
    if (file_ != nullptr) {
      std::fputs("\n]\n", file_);
      std::fclose(file_);
    }
  }
  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Appends one record; `json_object` must be a complete JSON object.
  void Record(const std::string& json_object) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s\n%s", first_ ? "" : ",", json_object.c_str());
    std::fflush(file_);  // Partial output survives a crashed/killed bench.
    first_ = false;
  }

  /// The process-wide writer installed by InitBenchJson, or null.
  static std::unique_ptr<BenchJsonWriter>& Slot() {
    static std::unique_ptr<BenchJsonWriter> writer;
    return writer;
  }
  static BenchJsonWriter* Active() { return Slot().get(); }

 private:
  std::FILE* file_;
  bool first_ = true;
};

/// The evaluator worker-thread count selected by `--threads N` (default 1 =
/// sequential). Applied to every engine profile a bench copies through
/// RunStrategyMatrix / WithBenchThreads; recorded in the --json sidecar.
inline size_t& BenchWorkerThreadsSlot() {
  static size_t threads = 1;
  return threads;
}
inline size_t BenchWorkerThreads() { return BenchWorkerThreadsSlot(); }

/// Scans argv for `--threads N` and removes the pair from argv (so later
/// flag parsers — e.g. google-benchmark's — never see it). Call before
/// InitBenchJson. Answers are identical at any setting (DESIGN.md §9); only
/// wall-clock changes.
inline void InitBenchThreads(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    if (i + 1 >= *argc) {
      std::fprintf(stderr, "--threads requires a count argument\n");
      return;
    }
    long long parsed = std::atoll(argv[i + 1]);
    if (parsed >= 1) BenchWorkerThreadsSlot() = static_cast<size_t>(parsed);
    for (int j = i + 2; j < *argc; ++j) argv[j - 2] = argv[j];
    *argc -= 2;
    return;
  }
}

/// A copy of `profile` with the --threads worker count applied.
inline EngineProfile WithBenchThreads(const EngineProfile& profile) {
  EngineProfile copy = profile;
  copy.worker_threads = BenchWorkerThreads();
  return copy;
}

/// Scans argv for `--json <path>` and installs the process-wide writer.
/// Call first thing in main(); without the flag this is a no-op.
inline void InitBenchJson(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "--json requires a path argument\n");
      return;
    }
    auto writer = std::make_unique<BenchJsonWriter>(argv[i + 1]);
    if (!writer->ok()) {
      std::fprintf(stderr, "cannot open --json path %s\n", argv[i + 1]);
      return;
    }
    BenchJsonWriter::Slot() = std::move(writer);
    return;
  }
}

/// A generated workload plus everything the answerer needs.
struct BenchEnv {
  Graph graph;
  TripleStore store;
  TripleStore saturated;
  Statistics stats;
  size_t data_triples = 0;
  double saturation_ms = 0.0;

  static BenchEnv Lubm(size_t target_triples) {
    BenchEnv env;
    LubmOptions options = LubmOptionsForTripleTarget(target_triples);
    std::printf("# generating LUBM-style data: target %zu triples "
                "(%zu universities)...\n",
                target_triples, options.num_universities);
    env.data_triples = GenerateLubm(options, &env.graph);
    env.Finish();
    return env;
  }

  static BenchEnv Dblp(size_t target_triples) {
    BenchEnv env;
    DblpOptions options = DblpOptionsForTripleTarget(target_triples);
    std::printf("# generating DBLP-style data: target %zu triples "
                "(%zu publications)...\n",
                target_triples, options.num_publications);
    env.data_triples = GenerateDblp(options, &env.graph);
    env.Finish();
    return env;
  }

  QueryAnswerer MakeAnswerer(const EngineProfile& profile) {
    return QueryAnswerer(&store, &saturated, &graph.schema(), &graph.vocab(),
                         &stats, &profile);
  }

 private:
  void Finish() {
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
    Stopwatch sw;
    SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
    saturation_ms = sw.ElapsedMillis();
    saturated = std::move(sat.store);
    stats = Statistics::Compute(store);
    std::printf("# %zu distinct data triples, %zu after saturation "
                "(%.0f ms to saturate)\n",
                store.size(), saturated.size(), saturation_ms);
  }
};

/// One strategy execution, flattened for table printing.
struct StrategyRun {
  bool ok = false;
  std::string failure;       // StatusCodeName on failure.
  size_t answers = 0;
  double total_ms = 0.0;
  double optimize_ms = 0.0;
  double reformulate_ms = 0.0;
  double plan_ms = 0.0;
  double evaluate_ms = 0.0;
  size_t union_terms = 0;
  size_t num_components = 0;
  size_t covers_examined = 0;
  bool optimizer_timed_out = false;
};

/// One {query,engine,strategy,...,spans,metrics} record for the --json
/// sidecar. `trace_json` may be empty (tracing was off for the run).
inline std::string StrategyRunRecord(const std::string& query_name,
                                     const std::string& engine_name,
                                     Strategy strategy, const StrategyRun& run,
                                     const std::string& trace_json) {
  JsonWriter json;
  json.BeginObject();
  json.Key("query").Value(std::string_view(query_name));
  json.Key("engine").Value(std::string_view(engine_name));
  json.Key("strategy").Value(StrategyName(strategy));
  json.Key("ok").Value(run.ok);
  if (!run.ok) json.Key("failure").Value(std::string_view(run.failure));
  json.Key("answers").Value(uint64_t{run.answers});
  json.Key("total_ms").Value(run.total_ms);
  json.Key("optimize_ms").Value(run.optimize_ms);
  json.Key("reformulate_ms").Value(run.reformulate_ms);
  json.Key("plan_ms").Value(run.plan_ms);
  json.Key("evaluate_ms").Value(run.evaluate_ms);
  json.Key("union_terms").Value(uint64_t{run.union_terms});
  json.Key("num_components").Value(uint64_t{run.num_components});
  json.Key("covers_examined").Value(uint64_t{run.covers_examined});
  json.Key("optimizer_timed_out").Value(run.optimizer_timed_out);
  json.Key("worker_threads").Value(uint64_t{BenchWorkerThreads()});
  if (!trace_json.empty()) json.Key("spans").Raw(trace_json);
  json.Key("metrics").Raw(MetricsRegistry::Global().ToJson());
  json.EndObject();
  return json.TakeString();
}

/// Runs one strategy. With the --json writer active the run is traced and a
/// record (span tree + registry snapshot) is appended to the sidecar;
/// `query_name`/`engine_name` label that record.
inline StrategyRun RunStrategy(const QueryAnswerer& answerer,
                               const Query& query, Strategy strategy,
                               const AnswerOptions& base_options = {},
                               const std::string& query_name = "",
                               const std::string& engine_name = "") {
  AnswerOptions options = base_options;
  options.strategy = strategy;
  StrategyRun run;
  BenchJsonWriter* json = BenchJsonWriter::Active();
  TraceSession trace;
  Result<AnswerOutcome> outcome = [&] {
    // Trace only when the sidecar consumes it, so plain benchmark numbers
    // keep the zero-cost disabled path (a caller-installed session, if any,
    // stays in effect).
    ScopedTraceSession scoped(json != nullptr ? &trace
                                              : TraceSession::Current());
    return answerer.Answer(query, options);
  }();
  if (outcome.ok()) {
    const AnswerOutcome& o = outcome.ValueOrDie();
    run.ok = true;
    run.answers = o.answers.num_rows();
    run.total_ms = o.total_ms();
    run.optimize_ms = o.optimize_ms;
    run.reformulate_ms = o.reformulate_ms;
    run.plan_ms = o.plan_ms;
    run.evaluate_ms = o.evaluate_ms;
    run.union_terms = o.union_terms;
    run.num_components = o.num_components;
    run.covers_examined = o.covers_examined;
    run.optimizer_timed_out = o.optimizer_timed_out;
  } else {
    run.failure = StatusCodeName(outcome.status().code());
  }
  if (json != nullptr) {
    json->Record(StrategyRunRecord(query_name, engine_name, strategy, run,
                                   trace.ToJson()));
  }
  return run;
}

/// "123.4" or the failure tag ("FAIL:QueryTooComplex").
inline std::string MsOrFail(const StrategyRun& run) {
  if (!run.ok) return "FAIL:" + run.failure;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", run.total_ms);
  return buf;
}

inline Query ParseOrDie(const std::string& text, Dictionary* dict) {
  Result<Query> q = ParseQuery(text, dict);
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return q.TakeValue();
}

/// The three reformulation-target profiles in figure order.
inline const EngineProfile* const* ThreeProfiles() {
  static const EngineProfile* const profiles[3] = {
      &Db2LikeProfile(), &PostgresLikeProfile(), &MysqlLikeProfile()};
  return profiles;
}

/// The strategy matrix of Figures 4/5/6: for every query and every engine
/// profile, the evaluation time of the UCQ, SCQ, ECov-JUCQ and GCov-JUCQ
/// reformulations (log-scale bars in the paper; rows here). Missing bars in
/// the paper are FAIL:... entries here.
inline void RunStrategyMatrix(BenchEnv* env,
                              const std::vector<BenchmarkQuery>& queries,
                              const char* title) {
  std::printf("\n== %s: query answering times (ms) per engine profile\n",
              title);
  std::printf("%-5s %-26s %14s %14s %14s %14s %10s\n", "q", "engine", "UCQ",
              "SCQ", "ECov", "GCov", "#answers");
  for (const BenchmarkQuery& bq : queries) {
    Query query = ParseOrDie(bq.text, &env->graph.dict());
    for (int p = 0; p < 3; ++p) {
      EngineProfile profile = WithBenchThreads(*ThreeProfiles()[p]);
      QueryAnswerer answerer = env->MakeAnswerer(profile);
      StrategyRun ucq = RunStrategy(answerer, query, Strategy::kUcq, {},
                                    bq.name, profile.name);
      StrategyRun scq = RunStrategy(answerer, query, Strategy::kScq, {},
                                    bq.name, profile.name);
      StrategyRun ecov = RunStrategy(answerer, query, Strategy::kEcov, {},
                                     bq.name, profile.name);
      StrategyRun gcov = RunStrategy(answerer, query, Strategy::kGcov, {},
                                     bq.name, profile.name);
      size_t answers = gcov.ok ? gcov.answers
                               : (ucq.ok ? ucq.answers : scq.answers);
      std::printf("%-5s %-26s %14s %14s %14s %14s %10zu\n", bq.name.c_str(),
                  profile.name.c_str(), MsOrFail(ucq).c_str(),
                  MsOrFail(scq).c_str(), MsOrFail(ecov).c_str(),
                  MsOrFail(gcov).c_str(), answers);
    }
  }
}

}  // namespace rdfopt::bench

#endif  // RDFOPT_BENCH_BENCH_COMMON_H_
