// Telemetry-overhead benchmark: the sidecar behind BENCH_observability.json.
//
// The always-on per-operator accounting (engine/plan.h actuals, written by
// every ExecutePlan) must cost <= 2% on plan execution versus a build with
// it compiled out (-DRDFOPT_DISABLE_NODE_TELEMETRY=ON). This binary times
// the same prebuilt ~2256-disjunct JUCQ execution as bench_micro's
// BM_ExecutePlannedJucq and records whether node telemetry was compiled in,
// so ci/bench_observability.sh can run it under both configurations and
// compute the overhead from the two records.
//
// It also prices the rest of the telemetry layer per call — windowed
// histogram observation, a non-qualifying slow-log check, feedback
// record+lookup, fragment canonicalization, and a full Prometheus
// rendering — the numbers that justify "always-on" for each path.

#include "bench_common.h"

#include <algorithm>
#include <vector>

#include "cost/feedback.h"
#include "engine/evaluator.h"
#include "engine/planner.h"
#include "reformulation/reformulator.h"
#include "service/slow_log.h"
#include "workload/query_sets.h"

namespace rdfopt::bench {
namespace {

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  size_t index = static_cast<size_t>(q * (sorted->size() - 1));
  return (*sorted)[index];
}

std::string CaseRecord(const std::string& name, size_t reps, double mean_ms,
                       double p50_ms, double p99_ms) {
  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("observability");
  json.Key("case").Value(name);
#ifdef RDFOPT_DISABLE_NODE_TELEMETRY
  json.Key("node_telemetry").Value(false);
#else
  json.Key("node_telemetry").Value(true);
#endif
  json.Key("reps").Value(uint64_t{reps});
  json.Key("mean_ms").Value(mean_ms);
  json.Key("p50_ms").Value(p50_ms);
  json.Key("p99_ms").Value(p99_ms);
  json.Key("worker_threads").Value(uint64_t{BenchWorkerThreads()});
  json.EndObject();
  return json.TakeString();
}

/// Times `fn` `reps` times (after `warmup` unrecorded runs) and prints +
/// records one case row. Returns the mean ms.
template <typename Fn>
double TimeCase(const std::string& name, size_t warmup, size_t reps, Fn fn) {
  for (size_t i = 0; i < warmup; ++i) fn();
  std::vector<double> ms;
  ms.reserve(reps);
  for (size_t i = 0; i < reps; ++i) {
    Stopwatch sw;
    fn();
    ms.push_back(sw.ElapsedMillis());
  }
  std::sort(ms.begin(), ms.end());
  double sum = 0.0;
  for (double m : ms) sum += m;
  const double mean = sum / static_cast<double>(reps);
  const double p50 = Percentile(&ms, 0.50);
  const double p99 = Percentile(&ms, 0.99);
  std::printf("%-28s %8zu reps  mean %10.4f ms  p50 %10.4f ms  p99 %10.4f "
              "ms\n",
              name.c_str(), reps, mean, p50, p99);
  if (BenchJsonWriter::Active() != nullptr) {
    BenchJsonWriter::Active()->Record(CaseRecord(name, reps, mean, p50, p99));
  }
  return mean;
}

int Main(int argc, char** argv) {
  InitBenchThreads(&argc, argv);
  InitBenchJson(argc, argv);

  const size_t target = EnvSize("RDFOPT_LUBM_TRIPLES", 200'000);
  Graph graph;
  LubmOptions lubm = LubmOptionsForTripleTarget(target);
  std::printf("# generating LUBM-style data: target %zu triples "
              "(%zu universities)...\n",
              target, lubm.num_universities);
  GenerateLubm(lubm, &graph);
  graph.FinalizeSchema();
  TripleStore store = TripleStore::Build(graph.data_triples());
  Statistics stats = Statistics::Compute(store);
  EngineProfile profile = WithBenchThreads(PostgresLikeProfile());

#ifdef RDFOPT_DISABLE_NODE_TELEMETRY
  std::printf("# node telemetry: COMPILED OUT "
              "(-DRDFOPT_DISABLE_NODE_TELEMETRY)\n");
#else
  std::printf("# node telemetry: on (default build)\n");
#endif

  // The reformulated motivating Q1, planned once — the same workload as
  // bench_micro's BM_ExecutePlannedJucq.
  Query q1 = ParseOrDie(LubmMotivatingQ1().text, &graph.dict());
  Reformulator reformulator(&graph.schema(), &graph.vocab());
  VarTable vars = q1.vars;
  Result<UnionQuery> ucq = reformulator.ReformulateCQ(q1.cq, &vars);
  if (!ucq.ok()) {
    std::fprintf(stderr, "reformulation failed: %s\n",
                 ucq.status().ToString().c_str());
    return 1;
  }
  JoinOfUnions jucq;
  jucq.head = ucq.ValueOrDie().head;
  jucq.components.push_back(ucq.TakeValue());

  Evaluator evaluator(&store, &profile);
  PhysicalPlan plan = evaluator.planner().PlanJUCQ(jucq);
  std::printf("# plan: %d nodes, %zu union terms\n", plan.num_nodes,
              plan.union_terms);

  const size_t reps = EnvSize("RDFOPT_OBS_REPS", 30);
  TimeCase("execute_planned_jucq", /*warmup=*/3, reps, [&] {
    Result<Relation> r = evaluator.ExecutePlan(&plan, nullptr);
    if (!r.ok()) std::abort();
  });

  // Per-call costs of the telemetry layer itself, amortized over a batch
  // per rep so the stopwatch granularity doesn't dominate.
  constexpr size_t kBatch = 10'000;

  MetricWindowedHistogram windowed;
  TimeCase("windowed_observe_10k", /*warmup=*/1, reps, [&] {
    for (size_t i = 0; i < kBatch; ++i) {
      windowed.Observe(static_cast<double>(i % 97));
    }
  });

  SlowQueryLog::Options slow_options;
  slow_options.threshold_ms = 1e9;  // Nothing qualifies: the per-request
                                    // cost every fast query pays.
  SlowQueryLog slow_log(slow_options);
  SlowQueryLog::Record fast;
  fast.total_ms = 0.1;
  TimeCase("slowlog_nonqualifying_10k", /*warmup=*/1, reps, [&] {
    for (size_t i = 0; i < kBatch; ++i) slow_log.MaybeRecord(fast);
  });

  EstimateFeedbackStore feedback;
  ConjunctiveQuery fragment = q1.cq;
  TimeCase("feedback_record_lookup_1k", /*warmup=*/1, reps, [&] {
    for (size_t i = 0; i < 1'000; ++i) {
      feedback.Record(fragment, 10.0, 100 + i % 7);
      if (!feedback.Lookup(fragment).has_value()) std::abort();
    }
  });

  TimeCase("fragment_signature_1k", /*warmup=*/1, reps, [&] {
    for (size_t i = 0; i < 1'000; ++i) {
      std::string sig = FragmentSignature(fragment);
      if (sig.empty()) std::abort();
    }
  });

  // A populated registry rendered to the Prometheus exposition: the cost of
  // one scrape.
  MetricsRegistry::Global().GetWindowedHistogram("service.total_ms")
      ->Observe(1.0);
  TimeCase("prometheus_render", /*warmup=*/1, reps, [&] {
    std::string text = MetricsRegistry::Global().ToPrometheusText();
    if (text.empty()) std::abort();
  });

  return 0;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) { return rdfopt::bench::Main(argc, argv); }
