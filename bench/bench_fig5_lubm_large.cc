// Figure 5 (paper §5.2): the Figure 4 matrix at the larger LUBM scale (the
// paper uses 100M triples; we default to 2M — the qualitative shape, which
// strategies fail and who wins, is scale-stable). Override with
// RDFOPT_LUBM_LARGE_TRIPLES.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rdfopt::bench;
  InitBenchThreads(&argc, argv);
  InitBenchJson(argc, argv);
  BenchEnv env =
      BenchEnv::Lubm(EnvSize("RDFOPT_LUBM_LARGE_TRIPLES", 2'000'000));
  RunStrategyMatrix(&env, rdfopt::LubmQuerySet(), "Figure 5 (LUBM large)");
  return 0;
}
