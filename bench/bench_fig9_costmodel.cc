// Figure 9 (paper §5.2, "Alternative: using the RDBMS cost estimation"):
// evaluation time of the ECov/GCov-chosen JUCQs when the search is guided
// by (a) the paper's §4.1 cost model and (b) the engine's internal EXPLAIN
// estimate. The paper finds the two mostly agree, with the §4.1 model more
// robust (its choices always evaluate; EXPLAIN-guided ones sometimes fail).

#include "bench_common.h"

namespace rdfopt::bench {
namespace {

int Main() {
  BenchEnv env = BenchEnv::Lubm(EnvSize("RDFOPT_LUBM_TRIPLES", 1'000'000));
  const EngineProfile profile = WithBenchThreads(PostgresLikeProfile());
  QueryAnswerer answerer = env.MakeAnswerer(profile);

  std::printf("\n== Figure 9: cost model comparison on %s (times in ms)\n",
              profile.name.c_str());
  std::printf("%-5s %16s %16s %16s %16s\n", "q", "ECov(our)",
              "ECov(engine)", "GCov(our)", "GCov(engine)");

  for (const BenchmarkQuery& bq : LubmQuerySet()) {
    Query query = ParseOrDie(bq.text, &env.graph.dict());
    AnswerOptions ours;
    AnswerOptions theirs;
    theirs.use_engine_cost_model = true;

    StrategyRun ecov_ours = RunStrategy(answerer, query, Strategy::kEcov,
                                        ours);
    StrategyRun ecov_engine = RunStrategy(answerer, query, Strategy::kEcov,
                                          theirs);
    StrategyRun gcov_ours = RunStrategy(answerer, query, Strategy::kGcov,
                                        ours);
    StrategyRun gcov_engine = RunStrategy(answerer, query, Strategy::kGcov,
                                          theirs);
    std::printf("%-5s %16s %16s %16s %16s\n", bq.name.c_str(),
                MsOrFail(ecov_ours).c_str(), MsOrFail(ecov_engine).c_str(),
                MsOrFail(gcov_ours).c_str(), MsOrFail(gcov_engine).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) {
  rdfopt::bench::InitBenchThreads(&argc, argv);
  rdfopt::bench::InitBenchJson(argc, argv);
  return rdfopt::bench::Main();
}
