// Serving-layer benchmark: concurrent clients driving the QueryService
// front door (src/service). Sweeps client counts × distinct-query pool
// sizes (the pool size controls the cache hit rate) and reports throughput
// and latency percentiles per configuration, verifying along the way that
// every concurrent answer is identical to the serial reference — cache
// hits, misses and parallel clients must never change a row.

#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "service/query_service.h"

namespace rdfopt::bench {
namespace {

/// Order-insensitive fingerprint of a relation's rows; equal row sets (same
/// columns, any enumeration order) hash equal.
uint64_t HashRows(const Relation& r) {
  uint64_t hash = 0x9E3779B97F4A7C15ull * (r.arity() + 1);
  for (size_t i = 0; i < r.num_rows(); ++i) {
    uint64_t row_hash = 0xCBF29CE484222325ull;
    for (ValueId v : r.row(i)) {
      row_hash ^= v;
      row_hash *= 0x100000001B3ull;
    }
    hash += row_hash;  // Commutative combine: order-insensitive.
  }
  return hash;
}

struct LoadResult {
  size_t requests = 0;
  size_t errors = 0;
  size_t mismatches = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  QueryService::Stats stats;
};

double Percentile(std::vector<double>* sorted_latencies, double q) {
  if (sorted_latencies->empty()) return 0.0;
  size_t index = static_cast<size_t>(q * (sorted_latencies->size() - 1));
  return (*sorted_latencies)[index];
}

/// One load configuration: `clients` threads, each issuing
/// `requests_per_client` queries round-robin over the first `distinct`
/// pool entries (offset by client id, so misses interleave). The service is
/// built per call; `warmup_passes` serial passes over the pool run before
/// the clock starts (0 = cache-cold, the classic sweep).
LoadResult RunLoadWithOptions(Graph* graph,
                              const std::vector<std::string>& pool,
                              const std::vector<uint64_t>& reference_hashes,
                              size_t clients, size_t distinct,
                              size_t requests_per_client,
                              const ServiceOptions& options,
                              size_t warmup_passes) {
  QueryService service(graph, WithBenchThreads(PostgresLikeProfile()),
                       options);
  for (size_t pass = 0; pass < warmup_passes; ++pass) {
    for (size_t qi = 0; qi < distinct; ++qi) {
      (void)service.AnswerText(pool[qi]);
    }
  }

  std::vector<double> latencies;
  latencies.reserve(clients * requests_per_client);
  std::mutex latencies_mu;
  std::atomic<size_t> errors{0};
  std::atomic<size_t> mismatches{0};

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(requests_per_client);
      for (size_t i = 0; i < requests_per_client; ++i) {
        const size_t qi = (c + i) % distinct;
        Stopwatch sw;
        Result<ServiceOutcome> r = service.AnswerText(pool[qi]);
        local.push_back(sw.ElapsedMillis());
        if (!r.ok()) {
          ++errors;
        } else if (HashRows(r.ValueOrDie().answers) != reference_hashes[qi]) {
          ++mismatches;
        }
      }
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();

  LoadResult result;
  result.wall_ms = wall.ElapsedMillis();
  result.requests = clients * requests_per_client;
  result.errors = errors.load();
  result.mismatches = mismatches.load();
  result.qps = result.requests / (result.wall_ms / 1000.0);
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = Percentile(&latencies, 0.50);
  result.p95_ms = Percentile(&latencies, 0.95);
  result.p99_ms = Percentile(&latencies, 0.99);
  result.stats = service.stats();
  return result;
}

LoadResult RunLoad(Graph* graph, const std::vector<std::string>& pool,
                   const std::vector<uint64_t>& reference_hashes,
                   size_t clients, size_t distinct,
                   size_t requests_per_client) {
  ServiceOptions options;
  options.max_concurrent = clients;
  options.max_queue = 1024;
  options.default_deadline_ms = 600'000.0;
  options.answer.strategy = Strategy::kGcov;
  return RunLoadWithOptions(graph, pool, reference_hashes, clients, distinct,
                            requests_per_client, options,
                            /*warmup_passes=*/0);
}

std::string LoadRecord(size_t clients, size_t distinct,
                       const LoadResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("service");
  json.Key("clients").Value(uint64_t{clients});
  json.Key("distinct_queries").Value(uint64_t{distinct});
  json.Key("requests").Value(uint64_t{result.requests});
  json.Key("wall_ms").Value(result.wall_ms);
  json.Key("throughput_qps").Value(result.qps);
  json.Key("p50_ms").Value(result.p50_ms);
  json.Key("p95_ms").Value(result.p95_ms);
  json.Key("p99_ms").Value(result.p99_ms);
  json.Key("cache_hits").Value(result.stats.cache.hits);
  json.Key("cache_misses").Value(result.stats.cache.misses);
  const uint64_t lookups = result.stats.cache.hits + result.stats.cache.misses;
  json.Key("hit_rate").Value(
      lookups == 0 ? 0.0 : static_cast<double>(result.stats.cache.hits) /
                               static_cast<double>(lookups));
  json.Key("shed").Value(result.stats.admission.shed);
  json.Key("deadline_exceeded").Value(result.stats.admission.deadline_exceeded);
  json.Key("errors").Value(uint64_t{result.errors});
  json.Key("row_mismatches").Value(uint64_t{result.mismatches});
  json.Key("worker_threads").Value(uint64_t{BenchWorkerThreads()});
  json.EndObject();
  return json.TakeString();
}

std::string SharedRecord(size_t clients, size_t distinct, bool views,
                         const LoadResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("service_shared_fragments");
  json.Key("views").Value(views);
  json.Key("clients").Value(uint64_t{clients});
  json.Key("distinct_queries").Value(uint64_t{distinct});
  json.Key("requests").Value(uint64_t{result.requests});
  json.Key("wall_ms").Value(result.wall_ms);
  json.Key("throughput_qps").Value(result.qps);
  json.Key("p50_ms").Value(result.p50_ms);
  json.Key("p95_ms").Value(result.p95_ms);
  json.Key("p99_ms").Value(result.p99_ms);
  json.Key("view_hits").Value(result.stats.views.hits);
  json.Key("view_admitted").Value(result.stats.views.admitted);
  json.Key("view_bytes").Value(uint64_t{result.stats.views.bytes});
  json.Key("errors").Value(uint64_t{result.errors});
  json.Key("row_mismatches").Value(uint64_t{result.mismatches});
  json.Key("worker_threads").Value(uint64_t{BenchWorkerThreads()});
  json.EndObject();
  return json.TakeString();
}

/// Shared-fragment workload (DESIGN.md §14): many *distinct* queries that
/// all contain the same hot fragment — `?x rdf:type ub:Professor`, which
/// under fine-grained specializations reformulates into a ~250-term union
/// (the same width as bench_micro's HierEnv) — paired with a
/// per-department constant atom that makes every query different. The plan
/// cache cannot help across the pool (64+ distinct plans); the view
/// catalog can: under SCQ the type atom is its own component, so every
/// query substitutes the one materialized union.
/// Both sides are warmed (plans cached, catalog populated) before the
/// clock starts, so the reported ratio is steady-state execution.
size_t RunSharedFragmentMode(size_t target, size_t requests_per_client) {
  Graph graph;
  LubmOptions lubm = LubmOptionsForTripleTarget(target);
  lubm.fine_grained_specializations = 240;
  // Two queries per department and >= 12 departments per university: three
  // universities guarantee the >= 64 distinct queries this mode is about.
  lubm.num_universities = std::max<size_t>(lubm.num_universities, 3);
  std::printf("\n== shared-fragment mode: target %zu triples "
              "(%zu universities, 240 specialty leaves)\n",
              target, lubm.num_universities);
  GenerateLubm(lubm, &graph);
  graph.FinalizeSchema();

  // Every department hosts professors; enumerate them from the data so the
  // discriminating constants are valid at any scale.
  const ValueId works_for =
      graph.dict().InternIri("http://lubm.example.org/univ#worksFor");
  std::vector<std::string> departments;
  {
    std::set<ValueId> seen;
    for (const Triple& t : graph.data_triples()) {
      if (t.p != works_for) continue;
      if (seen.insert(t.o).second) {
        departments.push_back(graph.dict().term(t.o).Encoded());
      }
    }
    std::sort(departments.begin(), departments.end());
  }
  const char* kPreamble = "PREFIX ub: <http://lubm.example.org/univ#> ";
  std::vector<std::string> pool;
  for (const std::string& dept : departments) {
    pool.push_back(std::string(kPreamble) +
                   "SELECT ?x WHERE { ?x rdf:type ub:Professor . "
                   "?x ub:worksFor " + dept + " . }");
    pool.push_back(std::string(kPreamble) +
                   "SELECT ?x WHERE { ?x rdf:type ub:Professor . "
                   "?x ub:headOf " + dept + " . }");
  }
  if (pool.size() < 64) {
    std::fprintf(stderr, "shared-fragment pool too small: %zu queries\n",
                 pool.size());
    return 1;
  }
  if (pool.size() > 128) pool.resize(128);
  std::printf("# %zu distinct queries over %zu departments, one shared hot "
              "fragment\n", pool.size(), departments.size());

  auto shared_options = [&](size_t clients, bool views) {
    ServiceOptions options;
    options.max_concurrent = clients;
    options.max_queue = 1024;
    options.default_deadline_ms = 600'000.0;
    // Singleton covers: each atom is its own component, so the hot type
    // atom is a shared fragment with one catalog-wide signature.
    options.answer.strategy = Strategy::kScq;
    options.enable_views = views;
    options.view_advisor_interval = 32;
    options.view_min_observations = 2;
    return options;
  };

  // Serial reference (views off): defines the row fingerprint every
  // measured answer — views on or off — is checked against.
  std::vector<uint64_t> reference_hashes;
  {
    QueryService reference(&graph, WithBenchThreads(PostgresLikeProfile()),
                           shared_options(1, false));
    for (const std::string& text : pool) {
      Result<ServiceOutcome> r = reference.AnswerText(text);
      if (!r.ok()) {
        std::fprintf(stderr, "shared-fragment reference failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      reference_hashes.push_back(HashRows(r.ValueOrDie().answers));
    }
  }

  std::printf("%8s %7s %9s %10s %9s %9s %11s %6s\n", "clients", "views",
              "requests", "qps", "p50 ms", "p99 ms", "view hits", "err");
  size_t mismatches = 0;
  double qps_off = 0.0, qps_on = 0.0;
  for (size_t clients : {size_t{1}, size_t{8}}) {
    for (bool views : {false, true}) {
      LoadResult r = RunLoadWithOptions(
          &graph, pool, reference_hashes, clients, pool.size(),
          requests_per_client, shared_options(clients, views),
          /*warmup_passes=*/2);
      std::printf("%8zu %7s %9zu %10.1f %9.2f %9.2f %11llu %6zu\n", clients,
                  views ? "on" : "off", r.requests, r.qps, r.p50_ms, r.p99_ms,
                  static_cast<unsigned long long>(r.stats.views.hits),
                  r.errors + r.mismatches);
      if (BenchJsonWriter::Active() != nullptr) {
        BenchJsonWriter::Active()->Record(
            SharedRecord(clients, pool.size(), views, r));
      }
      mismatches += r.mismatches + r.errors;
      if (clients == 8) (views ? qps_on : qps_off) = r.qps;
    }
  }
  std::printf("# shared-fragment throughput, views on vs off (8 clients, "
              "%zu distinct queries): %.1fx\n",
              pool.size(), qps_off > 0 ? qps_on / qps_off : 0.0);
  return mismatches;
}

int Main(int argc, char** argv) {
  InitBenchThreads(&argc, argv);
  InitBenchJson(argc, argv);

  const size_t target =
      EnvSize("RDFOPT_SERVICE_TRIPLES",
              EnvSize("RDFOPT_LUBM_TRIPLES", 200'000));
  Graph graph;
  LubmOptions lubm = LubmOptionsForTripleTarget(target);
  std::printf("# generating LUBM-style data: target %zu triples "
              "(%zu universities)...\n",
              target, lubm.num_universities);
  GenerateLubm(lubm, &graph);
  graph.FinalizeSchema();

  // Query pool: the cheap end of the LUBM set (at most 3 atoms), so the
  // sweep measures serving overheads and cache effects rather than a few
  // giant reformulations.
  std::vector<std::string> pool;
  for (const BenchmarkQuery& bq : LubmQuerySet()) {
    Query q = ParseOrDie(bq.text, &graph.dict());
    if (q.cq.atoms.size() <= 3) pool.push_back(bq.text);
    if (pool.size() == 8) break;
  }
  std::printf("# query pool: %zu queries\n", pool.size());

  // Serial reference: one cold service, each query answered twice — the
  // second (cached) answer must match the first, and both define the row
  // fingerprint every concurrent answer is checked against.
  std::vector<uint64_t> reference_hashes;
  {
    ServiceOptions serial;
    serial.max_concurrent = 1;
    QueryService reference(&graph, WithBenchThreads(PostgresLikeProfile()),
                           serial);
    for (const std::string& text : pool) {
      Result<ServiceOutcome> miss = reference.AnswerText(text);
      if (!miss.ok()) {
        std::fprintf(stderr, "reference answering failed: %s\n",
                     miss.status().ToString().c_str());
        return 1;
      }
      Result<ServiceOutcome> hit = reference.AnswerText(text);
      if (!hit.ok() || !hit.ValueOrDie().cache_hit ||
          HashRows(hit.ValueOrDie().answers) !=
              HashRows(miss.ValueOrDie().answers)) {
        std::fprintf(stderr, "cached answer diverged from cold answer\n");
        return 1;
      }
      reference_hashes.push_back(HashRows(miss.ValueOrDie().answers));
    }
  }

  const size_t requests_per_client = EnvSize("RDFOPT_SERVICE_REQUESTS", 30);
  const size_t client_counts[] = {1, 2, 4, 8, 16};
  std::vector<size_t> pool_sizes = {1, 4};
  if (pool.size() >= 8) pool_sizes.push_back(8);

  std::printf("\n== service load sweep: %zu requests/client, GCov, "
              "Postgres-like engine\n",
              requests_per_client);
  std::printf("%8s %9s %9s %10s %9s %9s %9s %7s %6s\n", "clients", "distinct",
              "requests", "qps", "p50 ms", "p95 ms", "p99 ms", "hit%", "err");

  double serial_qps = 0.0, concurrent_qps = 0.0;
  size_t total_mismatches = 0;
  for (size_t distinct : pool_sizes) {
    for (size_t clients : client_counts) {
      LoadResult r = RunLoad(&graph, pool, reference_hashes, clients,
                             distinct, requests_per_client);
      const uint64_t lookups = r.stats.cache.hits + r.stats.cache.misses;
      std::printf("%8zu %9zu %9zu %10.1f %9.2f %9.2f %9.2f %6.1f%% %6zu\n",
                  clients, distinct, r.requests, r.qps, r.p50_ms, r.p95_ms,
                  r.p99_ms,
                  lookups == 0 ? 0.0 : 100.0 * r.stats.cache.hits / lookups,
                  r.errors + r.mismatches);
      if (BenchJsonWriter::Active() != nullptr) {
        BenchJsonWriter::Active()->Record(LoadRecord(clients, distinct, r));
      }
      total_mismatches += r.mismatches;
      if (distinct == pool_sizes.back()) {
        if (clients == 1) serial_qps = r.qps;
        if (clients == 8) concurrent_qps = r.qps;
      }
    }
  }

  std::printf("\n# 8-client vs serial throughput: %.1fx  (%s)\n",
              serial_qps > 0 ? concurrent_qps / serial_qps : 0.0,
              total_mismatches == 0 ? "all rows identical to serial reference"
                                    : "ROW MISMATCHES DETECTED");

  total_mismatches += RunSharedFragmentMode(target, requests_per_client);
  return total_mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) { return rdfopt::bench::Main(argc, argv); }
