// Figure 8 (paper §5.2): covers explored and optimizer running times for
// the DBLP queries. On the 10-atom Q10 the cover space is so large that
// exhaustive search is unfeasible (the paper's ECov times out); GCov's
// anytime behaviour still returns a cover.

#include "bench_common.h"

#include "optimizer/cover.h"
#include "optimizer/ecov.h"
#include "optimizer/gcov.h"
#include "reformulation/reformulator.h"

namespace rdfopt::bench {
namespace {

int Main() {
  BenchEnv env = BenchEnv::Dblp(EnvSize("RDFOPT_DBLP_TRIPLES", 500'000));
  std::printf("\n== Figure 8 (DBLP): covers explored and optimizer running "
              "times\n");
  std::printf("%-5s %12s %12s | %12s %12s\n", "q", "ECov#", "GCov#",
              "ECov ms", "GCov ms");

  const EngineProfile profile = WithBenchThreads(PostgresLikeProfile());
  Reformulator reformulator(&env.graph.schema(), &env.graph.vocab());
  Evaluator evaluator(&env.store, &profile);
  CardinalityEstimator estimator(&env.store, &env.stats);
  const double kEcovBudget = 20.0;  // Seconds; Q10 must hit it.

  for (const BenchmarkQuery& bq : DblpQuerySet()) {
    Query query = ParseOrDie(bq.text, &env.graph.dict());
    AnswerOptions options;

    CachingCoverCostOracle ecov_oracle(query.cq, query.vars, &reformulator,
                                       &estimator, &evaluator, options);
    CoverSearchResult ecov =
        ExhaustiveCoverSearch(query.cq, &ecov_oracle, kEcovBudget);

    CachingCoverCostOracle gcov_oracle(query.cq, query.vars, &reformulator,
                                       &estimator, &evaluator, options);
    CoverSearchResult gcov = GreedyCoverSearch(query.cq, &gcov_oracle, 30.0);

    std::printf("%-5s %12s %12zu | %12.1f %12.1f%s\n", bq.name.c_str(),
                (std::to_string(ecov.covers_examined) +
                 (ecov.timed_out ? "*" : ""))
                    .c_str(),
                gcov.covers_examined, ecov.elapsed_ms, gcov.elapsed_ms,
                ecov.timed_out ? "   (* ECov timed out)" : "");
  }
  return 0;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) {
  rdfopt::bench::InitBenchThreads(&argc, argv);
  rdfopt::bench::InitBenchJson(argc, argv);
  return rdfopt::bench::Main();
}
