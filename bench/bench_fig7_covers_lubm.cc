// Figure 7 (paper §5.2, "GCov performance"): for each LUBM query, the
// number of covers explored by ECov vs GCov (top of the figure) and the
// optimizer running times, including the time to build the fixed UCQ and
// SCQ reformulations (bottom).

#include "bench_common.h"

#include "optimizer/cover.h"
#include "optimizer/ecov.h"
#include "optimizer/gcov.h"
#include "reformulation/reformulator.h"

namespace rdfopt::bench {
namespace {

int Main(const std::vector<BenchmarkQuery>& queries, const char* title,
         BenchEnv* env) {
  std::printf("\n== %s: covers explored and optimizer running times\n",
              title);
  std::printf("%-5s %12s %12s | %12s %12s %12s %12s\n", "q", "ECov#",
              "GCov#", "ECov ms", "GCov ms", "UCQ-build", "SCQ-build");

  const EngineProfile profile = WithBenchThreads(PostgresLikeProfile());
  Reformulator reformulator(&env->graph.schema(), &env->graph.vocab());
  Evaluator evaluator(&env->store, &profile);
  CardinalityEstimator estimator(&env->store, &env->stats);

  for (const BenchmarkQuery& bq : queries) {
    Query query = ParseOrDie(bq.text, &env->graph.dict());
    AnswerOptions options;

    CachingCoverCostOracle ecov_oracle(query.cq, query.vars, &reformulator,
                                       &estimator, &evaluator, options);
    CoverSearchResult ecov =
        ExhaustiveCoverSearch(query.cq, &ecov_oracle, 30.0);

    CachingCoverCostOracle gcov_oracle(query.cq, query.vars, &reformulator,
                                       &estimator, &evaluator, options);
    CoverSearchResult gcov = GreedyCoverSearch(query.cq, &gcov_oracle, 30.0);

    // Time to build the fixed reformulations (what UCQ/SCQ-based systems
    // spend before evaluation).
    Stopwatch ucq_sw;
    {
      VarTable vars = query.vars;
      Result<UnionQuery> ucq =
          reformulator.ReformulateCQ(query.cq, &vars, 2'000'000);
      (void)ucq;
    }
    double ucq_build_ms = ucq_sw.ElapsedMillis();

    Stopwatch scq_sw;
    {
      VarTable vars = query.vars;
      for (const TriplePattern& atom : query.cq.atoms) {
        ConjunctiveQuery single;
        single.atoms.push_back(atom);
        single.head = single.AllVariables();
        Result<UnionQuery> ucq =
            reformulator.ReformulateCQ(single, &vars, 2'000'000);
        (void)ucq;
      }
    }
    double scq_build_ms = scq_sw.ElapsedMillis();

    std::printf("%-5s %12zu %12s | %12.1f %12.1f %12.2f %12.2f\n",
                bq.name.c_str(), ecov.covers_examined,
                (std::to_string(gcov.covers_examined) +
                 (gcov.timed_out ? "*" : ""))
                    .c_str(),
                ecov.elapsed_ms, gcov.elapsed_ms, ucq_build_ms,
                scq_build_ms);
    if (ecov.timed_out) {
      std::printf("      (ECov timed out exploring the cover space)\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) {
  using namespace rdfopt::bench;
  InitBenchThreads(&argc, argv);
  InitBenchJson(argc, argv);
  BenchEnv env = BenchEnv::Lubm(EnvSize("RDFOPT_LUBM_TRIPLES", 1'000'000));
  return Main(rdfopt::LubmQuerySet(), "Figure 7 (LUBM)", &env);
}
