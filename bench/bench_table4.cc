// Table 4 (paper §5.1): characteristics of the evaluation queries — the
// size of the UCQ reformulation |q_ref| and the number of answers |q(db)|
// for the 28 LUBM queries (at two scales) and the 10 DBLP queries.

#include "bench_common.h"

#include "reformulation/reformulator.h"

namespace rdfopt::bench {
namespace {

void PrintWorkloadRows(const char* title, BenchEnv* env,
                       const std::vector<BenchmarkQuery>& queries) {
  std::printf("\n== Table 4 (%s, %zu triples)\n", title, env->store.size());
  std::printf("%-5s %8s %12s %14s\n", "q", "#atoms", "|q_ref|", "|q(db)|");

  Reformulator reformulator(&env->graph.schema(), &env->graph.vocab());
  const EngineProfile profile = WithBenchThreads(NativeStoreProfile());
  Evaluator saturated_eval(&env->saturated, &profile);

  for (const BenchmarkQuery& bq : queries) {
    Query query = ParseOrDie(bq.text, &env->graph.dict());
    size_t q_ref = reformulator.EstimateDisjuncts(query.cq, query.vars);
    // |q(db)|: the complete answer set, via the saturated store.
    Result<Relation> answers = saturated_eval.EvaluateCQ(query.cq, nullptr);
    if (answers.ok()) {
      std::printf("%-5s %8zu %12zu %14zu\n", bq.name.c_str(),
                  query.cq.atoms.size(), q_ref,
                  answers.ValueOrDie().num_rows());
    } else {
      std::printf("%-5s %8zu %12zu %14s\n", bq.name.c_str(),
                  query.cq.atoms.size(), q_ref,
                  StatusCodeName(answers.status().code()));
    }
  }
}

int Main() {
  {
    BenchEnv lubm_small =
        BenchEnv::Lubm(EnvSize("RDFOPT_LUBM_TRIPLES", 1'000'000));
    PrintWorkloadRows("LUBM small scale", &lubm_small, LubmQuerySet());
  }
  {
    BenchEnv lubm_large =
        BenchEnv::Lubm(EnvSize("RDFOPT_LUBM_LARGE_TRIPLES", 3'000'000));
    PrintWorkloadRows("LUBM large scale", &lubm_large, LubmQuerySet());
  }
  {
    BenchEnv dblp = BenchEnv::Dblp(EnvSize("RDFOPT_DBLP_TRIPLES", 500'000));
    PrintWorkloadRows("DBLP", &dblp, DblpQuerySet());
  }
  return 0;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) {
  rdfopt::bench::InitBenchThreads(&argc, argv);
  rdfopt::bench::InitBenchJson(argc, argv);
  return rdfopt::bench::Main();
}
