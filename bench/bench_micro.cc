// Operator- and component-level microbenchmarks (google-benchmark): the
// building blocks whose costs the §4.1 model abstracts — index scans, hash
// joins, duplicate elimination, reformulation, cover enumeration and the
// saturation fixpoint.

#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "bench_common.h"
#include "common/trace.h"
#include "rdf/hierarchy_encoding.h"
#include "engine/evaluator.h"
#include "engine/operators.h"
#include "engine/planner.h"
#include "engine/view_resolver.h"
#include "optimizer/ecov.h"
#include "reasoner/saturation.h"
#include "reformulation/reformulator.h"
#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

// Shared fixture data (built once).
struct MicroEnv {
  Graph graph;
  TripleStore store;
  ValueId takes_course;
  ValueId member_of;
  ValueId rdf_type;

  MicroEnv() {
    LubmOptions options;
    options.num_universities = 2;
    GenerateLubm(options, &graph);
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
    takes_course = graph.dict().LookupIri(
        "http://lubm.example.org/univ#takesCourse");
    member_of =
        graph.dict().LookupIri("http://lubm.example.org/univ#memberOf");
    rdf_type = graph.vocab().rdf_type;
  }
};

MicroEnv& Env() {
  static MicroEnv& env = *new MicroEnv();
  return env;
}

void BM_IndexScan(benchmark::State& state) {
  MicroEnv& env = Env();
  TriplePattern atom{PatternTerm::Var(0),
                     PatternTerm::Const(env.takes_course),
                     PatternTerm::Var(1)};
  for (auto _ : state) {
    Relation r = ScanAtom(env.store, atom);
    benchmark::DoNotOptimize(r.num_rows());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(ScanAtomInputSize(env.store, atom)));
}
BENCHMARK(BM_IndexScan);

void BM_CountMatches(benchmark::State& state) {
  MicroEnv& env = Env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.store.CountMatches(kAnyValue, env.takes_course, kAnyValue));
  }
}
BENCHMARK(BM_CountMatches);

void BM_HashJoin(benchmark::State& state) {
  MicroEnv& env = Env();
  Relation left = ScanAtom(env.store,
                           TriplePattern{PatternTerm::Var(0),
                                         PatternTerm::Const(env.takes_course),
                                         PatternTerm::Var(1)});
  Relation right = ScanAtom(env.store,
                            TriplePattern{PatternTerm::Var(0),
                                          PatternTerm::Const(env.member_of),
                                          PatternTerm::Var(2)});
  for (auto _ : state) {
    Relation joined = HashJoin(left, right);
    benchmark::DoNotOptimize(joined.num_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(left.num_rows() +
                                               right.num_rows()));
}
BENCHMARK(BM_HashJoin);

// Duplicate-elimination variants over the same doubled rdf:type scan (~2x
// duplication). BM_Deduplicate is the engine's production path (radix-
// partitioned stable hash dedup, Relation::Deduplicate); BM_DeduplicateSort
// is the seed's sort-based algorithm kept as Relation::DeduplicateSorted.
// Both preserve first-occurrence order, so their outputs are identical.
Relation DoubledTypeScan(MicroEnv& env) {
  Relation base = ScanAtom(env.store,
                           TriplePattern{PatternTerm::Var(0),
                                         PatternTerm::Const(env.rdf_type),
                                         PatternTerm::Var(1)});
  Relation copy({0, 1});
  for (size_t i = 0; i < base.num_rows(); ++i) copy.AppendRow(base.row(i));
  for (size_t i = 0; i < base.num_rows(); ++i) copy.AppendRow(base.row(i));
  return copy;
}

void BM_Deduplicate(benchmark::State& state) {
  MicroEnv& env = Env();
  for (auto _ : state) {
    state.PauseTiming();
    Relation copy = DoubledTypeScan(env);
    state.ResumeTiming();
    benchmark::DoNotOptimize(copy.Deduplicate());
  }
}
BENCHMARK(BM_Deduplicate);

void BM_DeduplicateSort(benchmark::State& state) {
  MicroEnv& env = Env();
  for (auto _ : state) {
    state.PauseTiming();
    Relation copy = DoubledTypeScan(env);
    state.ResumeTiming();
    benchmark::DoNotOptimize(copy.DeduplicateSorted());
  }
}
BENCHMARK(BM_DeduplicateSort);

// Tracing-off evaluator baseline: with no installed TraceSession every
// span construction is one thread-local load + branch. Compare against
// BM_EvaluateCQTraced to measure the observability layer's overhead (the
// acceptance bar is <2% for the disabled path vs. a build without spans).
void BM_EvaluateCQ(benchmark::State& state) {
  MicroEnv& env = Env();
  const EngineProfile& profile = PostgresLikeProfile();
  Evaluator evaluator(&env.store, &profile);
  Result<Query> q = ParseQuery(LubmMotivatingQ1().text, &env.graph.dict());
  if (!q.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    Result<Relation> r = evaluator.EvaluateCQ(q.ValueOrDie().cq, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_EvaluateCQ);

void BM_EvaluateCQTraced(benchmark::State& state) {
  MicroEnv& env = Env();
  const EngineProfile& profile = PostgresLikeProfile();
  Evaluator evaluator(&env.store, &profile);
  Result<Query> q = ParseQuery(LubmMotivatingQ1().text, &env.graph.dict());
  if (!q.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  TraceSession session;
  ScopedTraceSession scoped(&session);
  for (auto _ : state) {
    session.Clear();
    Result<Relation> r = evaluator.EvaluateCQ(q.ValueOrDie().cq, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_EvaluateCQTraced);

// Splits the plan-once pipeline at its seam: BM_PlanJucq times building the
// physical plan for a reformulated UCQ (cardinality estimation + greedy join
// ordering + costing), BM_ExecutePlannedJucq times executing that prebuilt
// plan. Their sum approximates BM_EvaluateCQ minus reformulation; the ratio
// shows how much of a repeated query's latency the plan cache can save.
JoinOfUnions ReformulatedQ1Jucq(MicroEnv& env, VarTable* vars) {
  Result<Query> q = ParseQuery(LubmMotivatingQ1().text, &env.graph.dict());
  Reformulator reformulator(&env.graph.schema(), &env.graph.vocab());
  *vars = q.ValueOrDie().vars;
  Result<UnionQuery> ucq =
      reformulator.ReformulateCQ(q.ValueOrDie().cq, vars);
  JoinOfUnions jucq;
  jucq.head = ucq.ValueOrDie().head;
  jucq.components.push_back(ucq.TakeValue());
  return jucq;
}

void BM_PlanJucq(benchmark::State& state) {
  MicroEnv& env = Env();
  const EngineProfile& profile = PostgresLikeProfile();
  Evaluator evaluator(&env.store, &profile);
  VarTable vars;
  JoinOfUnions jucq = ReformulatedQ1Jucq(env, &vars);
  for (auto _ : state) {
    PhysicalPlan plan = evaluator.planner().PlanJUCQ(jucq);
    benchmark::DoNotOptimize(plan.num_nodes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(jucq.components[0].size()));
}
BENCHMARK(BM_PlanJucq);

// The headline executor benchmark: the batch engine (Vectorized postgres
// profile — kBatchRows-wide operators, shared union subplans, radix dedup)
// executing the prebuilt ~2256-disjunct plan. The acceptance bar for the
// batch refactor is >= 5x over the BENCH_baseline.json value recorded for
// the seed tuple engine (kept below as BM_ExecutePlannedJucqTuple).
void BM_ExecutePlannedJucq(benchmark::State& state) {
  MicroEnv& env = Env();
  static const EngineProfile& profile =
      *new EngineProfile(Vectorized(PostgresLikeProfile()));
  Evaluator evaluator(&env.store, &profile);
  VarTable vars;
  JoinOfUnions jucq = ReformulatedQ1Jucq(env, &vars);
  PhysicalPlan plan = evaluator.planner().PlanJUCQ(jucq);
  for (auto _ : state) {
    Result<Relation> r = evaluator.ExecutePlan(&plan, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ExecutePlannedJucq);

// The seed's tuple-at-a-time overhead model on the identical plan shape:
// the old-engine column of the sidecar, for the batch-vs-tuple comparison.
void BM_ExecutePlannedJucqTuple(benchmark::State& state) {
  MicroEnv& env = Env();
  const EngineProfile& profile = PostgresLikeProfile();
  Evaluator evaluator(&env.store, &profile);
  VarTable vars;
  JoinOfUnions jucq = ReformulatedQ1Jucq(env, &vars);
  PhysicalPlan plan = evaluator.planner().PlanJUCQ(jucq);
  for (auto _ : state) {
    Result<Relation> r = evaluator.ExecutePlan(&plan, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ExecutePlannedJucqTuple);

// The same prebuilt ~2256-disjunct UCQ plan executed with
// EngineProfile::worker_threads = Arg (1 = the sequential path). Answers
// and counters are identical across args (DESIGN.md §9); real time shows
// the morsel-parallel speedup. `--threads N` adds N to the arg list.
void BM_ExecuteUnionParallel(benchmark::State& state) {
  MicroEnv& env = Env();
  EngineProfile profile = PostgresLikeProfile();
  profile.worker_threads = static_cast<size_t>(state.range(0));
  Evaluator evaluator(&env.store, &profile);
  VarTable vars;
  JoinOfUnions jucq = ReformulatedQ1Jucq(env, &vars);
  PhysicalPlan plan = evaluator.planner().PlanJUCQ(jucq);
  for (auto _ : state) {
    Result<Relation> r = evaluator.ExecutePlan(&plan, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(jucq.components[0].size()));
}
BENCHMARK(BM_ExecuteUnionParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Hash-join probe loop with and without software prefetch of the upcoming
// probe's hash-table slot (EngineProfile::prefetch_probes). The build and
// probe sides are the two largest scans of the fixture, so the table
// outgrows L2 and the probe loop is memory-latency-bound — the regime the
// prefetch targets.
void BM_HashJoinProbe(benchmark::State& state) {
  MicroEnv& env = Env();
  Relation left = ScanAtom(env.store,
                           TriplePattern{PatternTerm::Var(0),
                                         PatternTerm::Const(env.rdf_type),
                                         PatternTerm::Var(1)});
  Relation right = ScanAtom(env.store,
                            TriplePattern{PatternTerm::Var(0),
                                          PatternTerm::Const(env.takes_course),
                                          PatternTerm::Var(2)});
  for (auto _ : state) {
    Relation joined = HashJoin(left, right, /*prefetch=*/false);
    benchmark::DoNotOptimize(joined.num_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(left.num_rows() +
                                               right.num_rows()));
}
BENCHMARK(BM_HashJoinProbe);

void BM_HashJoinProbePrefetch(benchmark::State& state) {
  MicroEnv& env = Env();
  Relation left = ScanAtom(env.store,
                           TriplePattern{PatternTerm::Var(0),
                                         PatternTerm::Const(env.rdf_type),
                                         PatternTerm::Var(1)});
  Relation right = ScanAtom(env.store,
                            TriplePattern{PatternTerm::Var(0),
                                          PatternTerm::Const(env.takes_course),
                                          PatternTerm::Var(2)});
  for (auto _ : state) {
    Relation joined = HashJoin(left, right, /*prefetch=*/true);
    benchmark::DoNotOptimize(joined.num_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(left.num_rows() +
                                               right.num_rows()));
}
BENCHMARK(BM_HashJoinProbePrefetch);

// Hierarchy-range collapse fixture (DESIGN.md §12): one university with 240
// fine-grained professor specialty leaf classes, so `?x type ub:Professor`
// reformulates into ~247 type disjuncts whose class hids form one DFS
// interval. Separate from MicroEnv on purpose — the specialty knob changes
// the generated dataset, and every other benchmark must keep the stock one.
struct HierarchyEnv {
  Graph graph;
  TripleStore store;
  UnionQuery ucq;
  VarTable vars;

  HierarchyEnv() {
    LubmOptions options;
    options.num_universities = 1;
    options.fine_grained_specializations = 240;
    GenerateLubm(options, &graph);
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
    store.AttachHierarchy(std::make_shared<const HierarchyEncoding>(
        HierarchyEncoding::Build(graph.schema(), graph.vocab().rdf_type)));
    Result<Query> q = ParseQuery(
        "PREFIX ub: <http://lubm.example.org/univ#>\n"
        "SELECT ?x WHERE { ?x a ub:Professor . }",
        &graph.dict());
    Reformulator reformulator(&graph.schema(), &graph.vocab());
    vars = q.ValueOrDie().vars;
    ucq = reformulator.ReformulateCQ(q.ValueOrDie().cq, &vars).ValueOrDie();
  }
};

HierarchyEnv& HierEnv() {
  static HierarchyEnv& env = *new HierarchyEnv();
  return env;
}

/// Batch profile with the emulated per-term/per-tuple engine overheads
/// zeroed: the ScanRange-vs-union ratio below must come from real executor
/// work (per-branch scan setup, projection, union append), not from the
/// profile's physical emulation of external engines.
EngineProfile HierarchyBenchProfile(bool hierarchy_ranges) {
  EngineProfile p = Vectorized(PostgresLikeProfile());
  p.tuple_us_per_row = 0.0;
  p.materialization_us_per_row = 0.0;
  p.union_term_overhead_us = 0.0;
  p.hierarchy_ranges = hierarchy_ranges;
  return p;
}

// The tentpole pair: the same ~247-term reformulated type query executed as
// a single ScanRange plan (hierarchy encoding on) vs. the union-of-scans
// plan (encoding off). The perf-smoke gate holds the ratio at >= 3x.
void BM_ExecuteScanRangeJucq(benchmark::State& state) {
  HierarchyEnv& env = HierEnv();
  static const EngineProfile& profile =
      *new EngineProfile(HierarchyBenchProfile(/*hierarchy_ranges=*/true));
  Evaluator evaluator(&env.store, &profile);
  PhysicalPlan plan = evaluator.planner().PlanUCQ(env.ucq);
  if (plan.root->children[0]->union_terms >= env.ucq.disjuncts.size()) {
    state.SkipWithError("union did not collapse");
    return;
  }
  for (auto _ : state) {
    Result<Relation> r = evaluator.ExecutePlan(&plan, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(env.ucq.disjuncts.size()));
}
BENCHMARK(BM_ExecuteScanRangeJucq);

void BM_ExecuteUnionOfScansJucq(benchmark::State& state) {
  HierarchyEnv& env = HierEnv();
  static const EngineProfile& profile =
      *new EngineProfile(HierarchyBenchProfile(/*hierarchy_ranges=*/false));
  Evaluator evaluator(&env.store, &profile);
  PhysicalPlan plan = evaluator.planner().PlanUCQ(env.ucq);
  for (auto _ : state) {
    Result<Relation> r = evaluator.ExecutePlan(&plan, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(env.ucq.disjuncts.size()));
}
BENCHMARK(BM_ExecuteUnionOfScansJucq);

/// Minimal in-process view resolver for the pair below: remembers every
/// offered fragment result and serves it back, so the second planning of the
/// same UCQ substitutes a kViewScan (DESIGN.md §14).
class BenchViewResolver : public ViewResolver {
 public:
  void NoteComponent(const std::string&, const UnionQuery&, double,
                     size_t) override {}
  std::shared_ptr<const Relation> Lookup(
      const std::string& signature) override {
    auto it = store_.find(signature);
    return it == store_.end() ? nullptr : it->second;
  }
  void Offer(const std::string& signature, const Relation& rows) override {
    store_[signature] = std::make_shared<const Relation>(rows.Copy());
  }

 private:
  std::unordered_map<std::string, std::shared_ptr<const Relation>> store_;
};

// The materialized-view pair: the same ~247-term reformulated type query
// executed from a substituted kViewScan plan (fragment rows pinned by the
// resolver) vs. re-evaluating the full union of scans each time. The
// perf-smoke gate holds the ratio at >= 3x.
void BM_ExecuteViewScanJucq(benchmark::State& state) {
  HierarchyEnv& env = HierEnv();
  static const EngineProfile& profile =
      *new EngineProfile(HierarchyBenchProfile(/*hierarchy_ranges=*/false));
  Evaluator evaluator(&env.store, &profile);
  BenchViewResolver views;
  evaluator.set_views(&views);
  PhysicalPlan cold = evaluator.planner().PlanUCQ(env.ucq);
  Result<Relation> harvest = evaluator.ExecutePlan(&cold, nullptr);
  if (!harvest.ok()) {
    state.SkipWithError("harvest execution failed");
    return;
  }
  PhysicalPlan plan = evaluator.planner().PlanUCQ(env.ucq);
  if (plan.root->children[0]->kind != PlanNodeKind::kViewScan) {
    state.SkipWithError("no view was substituted");
    return;
  }
  for (auto _ : state) {
    Result<Relation> r = evaluator.ExecutePlan(&plan, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(env.ucq.disjuncts.size()));
}
BENCHMARK(BM_ExecuteViewScanJucq);

void BM_ExecuteViewsOffJucq(benchmark::State& state) {
  HierarchyEnv& env = HierEnv();
  static const EngineProfile& profile =
      *new EngineProfile(HierarchyBenchProfile(/*hierarchy_ranges=*/false));
  Evaluator evaluator(&env.store, &profile);
  PhysicalPlan plan = evaluator.planner().PlanUCQ(env.ucq);
  for (auto _ : state) {
    Result<Relation> r = evaluator.ExecutePlan(&plan, nullptr);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(env.ucq.disjuncts.size()));
}
BENCHMARK(BM_ExecuteViewsOffJucq);

void BM_ReformulateTypeVariableAtom(benchmark::State& state) {
  MicroEnv& env = Env();
  Reformulator reformulator(&env.graph.schema(), &env.graph.vocab());
  for (auto _ : state) {
    VarTable vars;
    VarId x = vars.GetOrCreate("x");
    VarId y = vars.GetOrCreate("y");
    TriplePattern atom{PatternTerm::Var(x), PatternTerm::Const(env.rdf_type),
                       PatternTerm::Var(y)};
    auto refs = reformulator.ReformulateAtom(atom, &vars);
    benchmark::DoNotOptimize(refs.size());
  }
}
BENCHMARK(BM_ReformulateTypeVariableAtom);

void BM_ReformulateMotivatingQ1(benchmark::State& state) {
  MicroEnv& env = Env();
  Reformulator reformulator(&env.graph.schema(), &env.graph.vocab());
  Result<Query> q = ParseQuery(LubmMotivatingQ1().text, &env.graph.dict());
  if (!q.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    VarTable vars = q.ValueOrDie().vars;
    Result<UnionQuery> ucq =
        reformulator.ReformulateCQ(q.ValueOrDie().cq, &vars);
    benchmark::DoNotOptimize(ucq.ok());
  }
}
BENCHMARK(BM_ReformulateMotivatingQ1);

void BM_EnumerateCovers(benchmark::State& state) {
  const size_t atoms = static_cast<size_t>(state.range(0));
  Dictionary dict;
  std::string text = "SELECT ?a WHERE {";
  for (size_t i = 0; i < atoms; ++i) {
    text += " ?a <p" + std::to_string(i) + "> ?v" + std::to_string(i) + " .";
  }
  text += " }";
  Result<Query> q = ParseQuery(text, &dict);
  if (!q.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    bool timed_out = false;
    auto covers = EnumerateCovers(q.ValueOrDie().cq, 60.0, 10'000'000,
                                  &timed_out);
    benchmark::DoNotOptimize(covers.size());
  }
}
BENCHMARK(BM_EnumerateCovers)->Arg(4)->Arg(5)->Arg(6);

void BM_Saturation(benchmark::State& state) {
  MicroEnv& env = Env();
  for (auto _ : state) {
    SaturationResult sat =
        Saturate(env.store, env.graph.schema(), env.graph.vocab());
    benchmark::DoNotOptimize(sat.output_triples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(env.store.size()));
}
BENCHMARK(BM_Saturation);

void BM_TripleStoreBuild(benchmark::State& state) {
  MicroEnv& env = Env();
  for (auto _ : state) {
    std::vector<Triple> copy(env.graph.data_triples());
    TripleStore store = TripleStore::Build(std::move(copy));
    benchmark::DoNotOptimize(store.size());
  }
}
BENCHMARK(BM_TripleStoreBuild);

}  // namespace

/// `--threads N` beyond the statically registered 1/2/4 sweep adds one more
/// BM_ExecuteUnionParallel configuration at that count.
void RegisterExtraThreadArg() {
  size_t threads = bench::BenchWorkerThreads();
  if (threads == 1 || threads == 2 || threads == 4) return;
  benchmark::RegisterBenchmark("BM_ExecuteUnionParallel",
                               BM_ExecuteUnionParallel)
      ->Arg(static_cast<int64_t>(threads))
      ->UseRealTime();
}

}  // namespace rdfopt

int main(int argc, char** argv) {
  rdfopt::bench::InitBenchThreads(&argc, argv);
  rdfopt::RegisterExtraThreadArg();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
