// Figure 6 (paper §5.2): DBLP query answering through UCQ, SCQ, ECov and
// GCov JUCQ reformulations on the three engine profiles. The paper's DBLP
// dump has 8M triples; default here 500k (RDFOPT_DBLP_TRIPLES to scale).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rdfopt::bench;
  InitBenchThreads(&argc, argv);
  InitBenchJson(argc, argv);
  BenchEnv env = BenchEnv::Dblp(EnvSize("RDFOPT_DBLP_TRIPLES", 500'000));
  RunStrategyMatrix(&env, rdfopt::DblpQuerySet(), "Figure 6 (DBLP)");
  return 0;
}
