// Ablations of the design choices DESIGN.md calls out (not a paper figure):
//   A. plan-aware fragment work measure vs the literal eq. (2) scan sums —
//      how often the literal measure makes GCov pick a worse cover;
//   B. data-aware empty-disjunct pruning ([11]-style hybrid) on the UCQ
//      strategy — plan-size and time reduction;
//   B2. subsumption (CQ-containment) pruning of UCQ disjuncts;
//   C. constraint-aware query minimization (paper footnote 3) on queries
//      with a redundant atom;
//   D. incremental (merge-based) vs full saturation maintenance under
//      insertions.

#include "bench_common.h"

#include "reformulation/minimize.h"

namespace rdfopt::bench {
namespace {

void AblationCostMeasure(BenchEnv* env) {
  std::printf("\n== Ablation A: GCov guided by plan-aware work vs literal "
              "eq.(2) scan sums (%s)\n",
              PostgresLikeProfile().name.c_str());
  std::printf("%-5s %16s %16s %24s\n", "q", "plan-aware ms", "literal ms",
              "literal/plan-aware");
  QueryAnswerer answerer = env->MakeAnswerer(PostgresLikeProfile());
  double worst = 1.0;
  for (const BenchmarkQuery& bq : LubmQuerySet()) {
    Query query = ParseOrDie(bq.text, &env->graph.dict());
    AnswerOptions plan_aware;
    AnswerOptions literal;
    literal.literal_scan_sums = true;
    StrategyRun a = RunStrategy(answerer, query, Strategy::kGcov, plan_aware);
    StrategyRun b = RunStrategy(answerer, query, Strategy::kGcov, literal);
    double ratio = (a.ok && b.ok && a.total_ms > 0.0)
                       ? b.total_ms / a.total_ms
                       : 0.0;
    if (ratio > worst) worst = ratio;
    std::printf("%-5s %16s %16s %24.2f\n", bq.name.c_str(),
                MsOrFail(a).c_str(), MsOrFail(b).c_str(), ratio);
  }
  std::printf("worst literal/plan-aware slowdown: %.2fx\n", worst);
}

void AblationPruning(BenchEnv* env) {
  std::printf("\n== Ablation B: data-aware empty-disjunct pruning on the "
              "UCQ strategy\n");
  std::printf("%-5s %12s %12s %12s %12s\n", "q", "terms", "pruned",
              "plain ms", "pruned ms");
  QueryAnswerer answerer = env->MakeAnswerer(PostgresLikeProfile());
  for (const char* name : {"Q06", "Q07", "Q12", "Q15", "Q20", "Q23"}) {
    const BenchmarkQuery* bq = nullptr;
    for (const auto& q : LubmQuerySet()) {
      if (q.name == name) bq = &q;
    }
    Query query = ParseOrDie(bq->text, &env->graph.dict());
    AnswerOptions plain;
    AnswerOptions pruned;
    pruned.prune_empty_disjuncts = true;
    StrategyRun a = RunStrategy(answerer, query, Strategy::kUcq, plain);
    StrategyRun b = RunStrategy(answerer, query, Strategy::kUcq, pruned);
    std::printf("%-5s %12zu %12zu %12s %12s\n", name, a.union_terms,
                a.ok && b.ok ? a.union_terms - b.union_terms : 0,
                MsOrFail(a).c_str(), MsOrFail(b).c_str());
  }
}

void AblationSubsumption(BenchEnv* env) {
  std::printf("\n== Ablation B2: subsumption pruning of UCQ disjuncts "
              "(CQ-containment, data-independent)\n");
  std::printf("%-5s %12s %12s %12s %12s\n", "q", "terms", "pruned",
              "plain ms", "pruned ms");
  QueryAnswerer answerer = env->MakeAnswerer(PostgresLikeProfile());
  for (const char* name : {"Q06", "Q07", "Q12", "Q15", "Q23"}) {
    const BenchmarkQuery* bq = nullptr;
    for (const auto& q : LubmQuerySet()) {
      if (q.name == name) bq = &q;
    }
    Query query = ParseOrDie(bq->text, &env->graph.dict());
    AnswerOptions plain;
    AnswerOptions pruned;
    pruned.prune_subsumed_disjuncts = true;
    StrategyRun a = RunStrategy(answerer, query, Strategy::kUcq, plain);
    StrategyRun b = RunStrategy(answerer, query, Strategy::kUcq, pruned);
    std::printf("%-5s %12zu %12zu %12s %12s\n", name, a.union_terms,
                a.ok && b.ok ? a.union_terms - b.union_terms : 0,
                MsOrFail(a).c_str(), MsOrFail(b).c_str());
  }
}

void AblationMinimization(BenchEnv* env) {
  std::printf("\n== Ablation C: constraint-aware query minimization "
              "(footnote 3) on queries with a redundant atom\n");
  std::printf("%-40s %10s %12s %12s\n", "query", "atoms", "plain ms",
              "minimized ms");
  QueryAnswerer answerer = env->MakeAnswerer(PostgresLikeProfile());
  const char* redundant_queries[] = {
      // Type atom implied by takesCourse's domain.
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x rdf:type ub:Student . ?x ub:takesCourse ?c . }",
      // Person implied by advisor's domain; Professor by its range.
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?p WHERE { ?x rdf:type ub:Person . ?x ub:advisor ?p . "
      "?p rdf:type ub:Professor . }",
      // memberOf implied by worksFor (subproperty).
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?d WHERE { ?x ub:memberOf ?d . ?x ub:worksFor ?d . }",
  };
  for (const char* text : redundant_queries) {
    Query query = ParseOrDie(text, &env->graph.dict());
    AnswerOptions plain;
    AnswerOptions minimized;
    minimized.minimize_query = true;
    StrategyRun a = RunStrategy(answerer, query, Strategy::kGcov, plain);
    StrategyRun b = RunStrategy(answerer, query, Strategy::kGcov, minimized);
    std::string label = text;
    label = label.substr(label.find("SELECT"));
    label = label.substr(0, 38);
    std::printf("%-40s %10zu %12s %12s\n", label.c_str(),
                query.cq.atoms.size(), MsOrFail(a).c_str(),
                MsOrFail(b).c_str());
  }
}

void AblationIncrementalSaturation(BenchEnv* env) {
  std::printf("\n== Ablation D: saturation maintenance under insertions "
              "(batches of 10k triples)\n");
  std::printf("%-8s %16s %16s\n", "batch", "full resat ms",
              "incremental ms");
  // Take batches from a second generated university set as the deltas.
  Graph delta_graph;
  LubmOptions options;
  options.num_universities = 1;
  options.seed = 999;
  GenerateLubm(options, &delta_graph);
  // Re-encode delta triples into the main dictionary.
  std::vector<Triple> delta;
  for (const Triple& t : delta_graph.data_triples()) {
    delta.push_back(Triple{
        env->graph.dict().Intern(delta_graph.dict().term(t.s)),
        env->graph.dict().Intern(delta_graph.dict().term(t.p)),
        env->graph.dict().Intern(delta_graph.dict().term(t.o))});
    if (delta.size() >= 30000) break;
  }

  std::vector<Triple> accumulated(env->store.All().begin(),
                                  env->store.All().end());
  const TripleStore* current_saturated = &env->saturated;
  TripleStore incremental_store;
  for (size_t batch = 0; batch * 10000 < delta.size(); ++batch) {
    std::vector<Triple> chunk(
        delta.begin() + batch * 10000,
        delta.begin() + std::min(delta.size(), (batch + 1) * 10000));
    accumulated.insert(accumulated.end(), chunk.begin(), chunk.end());

    Stopwatch full_sw;
    SaturationResult full = Saturate(TripleStore::Build(accumulated),
                                     env->graph.schema(),
                                     env->graph.vocab());
    double full_ms = full_sw.ElapsedMillis();

    Stopwatch inc_sw;
    SaturationResult inc = IncrementalSaturate(
        *current_saturated, chunk, env->graph.schema(), env->graph.vocab());
    double inc_ms = inc_sw.ElapsedMillis();
    incremental_store = std::move(inc.store);
    current_saturated = &incremental_store;

    std::printf("%-8zu %16.1f %16.1f   (sizes: full=%zu inc=%zu)\n",
                batch + 1, full_ms, inc_ms, full.store.size(),
                incremental_store.size());
  }
}

int Main() {
  BenchEnv env = BenchEnv::Lubm(EnvSize("RDFOPT_LUBM_TRIPLES", 1'000'000));
  AblationCostMeasure(&env);
  AblationPruning(&env);
  AblationSubsumption(&env);
  AblationMinimization(&env);
  AblationIncrementalSaturation(&env);
  return 0;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) {
  rdfopt::bench::InitBenchThreads(&argc, argv);
  rdfopt::bench::InitBenchJson(argc, argv);
  return rdfopt::bench::Main();
}
