// Figure 4 (paper §5.2): LUBM small-scale query answering through the UCQ,
// SCQ, ECov-JUCQ and GCov-JUCQ reformulations, on the three engine
// profiles. Default scale 1M triples (the paper's LUBM 1M); override with
// RDFOPT_LUBM_TRIPLES.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rdfopt::bench;
  InitBenchThreads(&argc, argv);
  InitBenchJson(argc, argv);
  BenchEnv env = BenchEnv::Lubm(EnvSize("RDFOPT_LUBM_TRIPLES", 1'000'000));
  RunStrategyMatrix(&env, rdfopt::LubmQuerySet(), "Figure 4 (LUBM small)");
  return 0;
}
