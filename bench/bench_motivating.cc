// Tables 1-3 (paper §3, Motivating Examples): per-triple statistics of the
// motivating queries q1 and q2, and the evaluation time of every cover of
// q1's three atoms — the numbers that motivate the JUCQ space.

#include "bench_common.h"

#include "optimizer/cover.h"
#include "reformulation/reformulator.h"

namespace rdfopt::bench {
namespace {

// Evaluates one atom (as a one-atom CQ over all its variables) and its UCQ
// reformulation; prints a Table 1/3 row.
void PrintTripleRow(const char* label, const TriplePattern& atom,
                    const Query& query, const Reformulator& reformulator,
                    const Evaluator& evaluator) {
  ConjunctiveQuery single;
  single.atoms.push_back(atom);
  single.head = single.AllVariables();

  Result<Relation> direct = evaluator.EvaluateCQ(single, nullptr);
  size_t answers = direct.ok() ? direct.ValueOrDie().num_rows() : 0;

  VarTable vars = query.vars;
  size_t reformulations = reformulator.CountAtomReformulations(atom, vars);
  Result<UnionQuery> ucq = reformulator.ReformulateCQ(single, &vars);
  size_t after = 0;
  if (ucq.ok()) {
    Result<Relation> r = evaluator.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    if (r.ok()) after = r.ValueOrDie().num_rows();
  }
  std::printf("%-6s %12zu %18zu %28zu\n", label, answers, reformulations,
              after);
}

void PrintCoverRow(const std::string& label, const Cover& cover,
                   const Query& query, const Reformulator& reformulator,
                   const Evaluator& evaluator) {
  VarTable vars = query.vars;
  Result<JoinOfUnions> jucq = CoverBasedReformulation(
      query.cq, cover, reformulator, &vars, 2'000'000);
  if (!jucq.ok()) {
    std::printf("%-28s %15s %18s\n", label.c_str(), "-",
                ("FAIL:" + std::string(StatusCodeName(
                               jucq.status().code()))).c_str());
    return;
  }
  size_t terms = 0;
  for (const UnionQuery& c : jucq.ValueOrDie().components) terms += c.size();

  Stopwatch sw;
  Result<Relation> r = evaluator.EvaluateJUCQ(jucq.ValueOrDie(), nullptr);
  double ms = sw.ElapsedMillis();
  if (!r.ok()) {
    std::printf("%-28s %15zu %18s\n", label.c_str(), terms,
                ("FAIL:" + std::string(StatusCodeName(
                               r.status().code()))).c_str());
    return;
  }
  std::printf("%-28s %15zu %15.1f ms  (%zu answers)\n", label.c_str(), terms,
              ms, r.ValueOrDie().num_rows());
}

std::string CoverLabel(const Cover& cover) {
  std::string out;
  for (const std::vector<int>& fragment : cover.fragments) {
    out += "(";
    for (size_t i = 0; i < fragment.size(); ++i) {
      out += (i > 0 ? ",t" : "t") + std::to_string(fragment[i] + 1);
    }
    out += ")";
  }
  return out;
}

int Main() {
  BenchEnv env = BenchEnv::Lubm(EnvSize("RDFOPT_LUBM_TRIPLES", 1'000'000));
  const EngineProfile profile = WithBenchThreads(PostgresLikeProfile());
  Evaluator evaluator(&env.store, &profile);
  Reformulator reformulator(&env.graph.schema(), &env.graph.vocab());

  // ---- Table 1: q1's per-triple statistics.
  Query q1 = ParseOrDie(LubmMotivatingQ1().text, &env.graph.dict());
  std::printf("\n== Table 1: characteristics of the sample query q1 "
              "(LUBM %zu triples)\n",
              env.store.size());
  std::printf("%-6s %12s %18s %28s\n", "Triple", "#answers",
              "#reformulations", "#answers after reformulation");
  for (size_t i = 0; i < q1.cq.atoms.size(); ++i) {
    std::string label = "(t" + std::to_string(i + 1) + ")";
    PrintTripleRow(label.c_str(), q1.cq.atoms[i], q1, reformulator,
                   evaluator);
  }

  // ---- Table 2: all eight covers of q1.
  std::printf("\n== Table 2: sample reformulations of q1 "
              "(#union terms, execution time)\n");
  std::printf("%-28s %15s %18s\n", "Join of UCQs", "#reformulations",
              "exec. time");
  std::vector<Cover> covers;
  {
    Cover c;  // (t1,t2,t3) - the UCQ reformulation.
    c.fragments = {{0, 1, 2}};
    covers.push_back(c);
    c.fragments = {{0}, {1}, {2}};  // SCQ.
    covers.push_back(c);
    c.fragments = {{0, 1}, {2}};
    covers.push_back(c);
    c.fragments = {{0}, {1, 2}};
    covers.push_back(c);
    c.fragments = {{0, 2}, {1}};
    covers.push_back(c);
    c.fragments = {{0, 1}, {0, 2}};
    covers.push_back(c);
    c.fragments = {{0, 1}, {1, 2}};
    covers.push_back(c);
    c.fragments = {{0, 2}, {1, 2}};
    covers.push_back(c);
  }
  for (Cover& cover : covers) {
    cover.Canonicalize();
    Status valid = ValidateCover(q1.cq, cover);
    if (!valid.ok()) {
      std::printf("%-28s invalid: %s\n", CoverLabel(cover).c_str(),
                  valid.ToString().c_str());
      continue;
    }
    PrintCoverRow(CoverLabel(cover), cover, q1, reformulator, evaluator);
  }

  // ---- Table 3: q2's per-triple statistics + the infeasibility of its UCQ.
  Query q2 = ParseOrDie(LubmMotivatingQ2().text, &env.graph.dict());
  std::printf("\n== Table 3: characteristics of the sample query q2\n");
  std::printf("%-6s %12s %18s %28s\n", "Triple", "#answers",
              "#reformulations", "#answers after reformulation");
  for (size_t i = 0; i < q2.cq.atoms.size(); ++i) {
    std::string label = "(t" + std::to_string(i + 1) + ")";
    PrintTripleRow(label.c_str(), q2.cq.atoms[i], q2, reformulator,
                   evaluator);
  }
  VarTable q2_vars = q2.vars;
  std::printf("q2 UCQ reformulation would have %zu union terms "
              "(plan limit on %s: %zu)\n",
              reformulator.EstimateDisjuncts(q2.cq, q2_vars),
              profile.name.c_str(), profile.max_union_terms);

  std::printf("\n== Motivating comparison on q2 "
              "(UCQ vs SCQ vs paper-style grouped cover)\n");
  {
    Cover ucq = UcqCover(6);
    PrintCoverRow(CoverLabel(ucq), ucq, q2, reformulator, evaluator);
    Cover scq = ScqCover(6);
    PrintCoverRow(CoverLabel(scq), scq, q2, reformulator, evaluator);
    // The paper's q2'' grouping: (t1,t3)(t3,t5)(t2,t4)(t4,t6).
    Cover grouped;
    grouped.fragments = {{0, 2}, {2, 4}, {1, 3}, {3, 5}};
    grouped.Canonicalize();
    if (ValidateCover(q2.cq, grouped).ok()) {
      PrintCoverRow(CoverLabel(grouped), grouped, q2, reformulator,
                    evaluator);
    }
  }
  return 0;
}

}  // namespace
}  // namespace rdfopt::bench

int main(int argc, char** argv) {
  rdfopt::bench::InitBenchThreads(&argc, argv);
  rdfopt::bench::InitBenchJson(argc, argv);
  return rdfopt::bench::Main();
}
