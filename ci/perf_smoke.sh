#!/usr/bin/env bash
# Executor perf smoke: runs the headline batch-engine benchmark
# (BM_ExecutePlannedJucq), the dedup microbenchmarks, the
# hierarchy-range collapse pair (BM_ExecuteScanRangeJucq vs
# BM_ExecuteUnionOfScansJucq), and the materialized-view pair
# (BM_ExecuteViewScanJucq vs BM_ExecuteViewsOffJucq), and fails if the
# executor regresses more than the budget against the checked-in sidecar
# (BENCH_baseline.json).
#
# The baseline was recorded on a different machine, so an absolute
# comparison would be noise; instead the gate is relative to the recorded
# batch-vs-tuple ratio: the batch engine must stay a large multiple faster
# than the tuple engine measured in the same process, and may drift at most
# RDFOPT_PERF_BUDGET_PCT (default 20) from the baseline's recorded ratio.
#
# When RDFOPT_PERF_UNCHECKED_DIR names a second build tree configured with
# -DRDFOPT_DISABLE_CHECKS=ON, the script additionally measures the cost of
# the always-on RDFOPT_CHECK contracts: BM_ExecutePlannedJucq from both
# trees runs back-to-back on this host, and the checked build may be at
# most RDFOPT_CHECK_BUDGET_PCT (default 2) slower.
#
# Usage: ci/perf_smoke.sh [build_dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_micro"
BASELINE="${RDFOPT_PERF_BASELINE:-BENCH_baseline.json}"
BUDGET_PCT="${RDFOPT_PERF_BUDGET_PCT:-20}"
OUT="${RDFOPT_PERF_OUT:-$BUILD_DIR/perf_smoke.json}"

if [[ ! -x "$BENCH" ]]; then
  echo "perf_smoke: $BENCH not built" >&2
  exit 1
fi
if [[ ! -f "$BASELINE" ]]; then
  echo "perf_smoke: baseline $BASELINE not found" >&2
  exit 1
fi

"$BENCH" \
  --benchmark_filter='BM_ExecutePlannedJucq(Tuple)?$|BM_Deduplicate(Sort)?$|BM_Execute(ScanRange|UnionOfScans|ViewScan|ViewsOff)Jucq$' \
  --benchmark_out="$OUT" --benchmark_out_format=json

python3 - "$BASELINE" "$OUT" "$BUDGET_PCT" <<'EOF'
import json
import sys

baseline_path, out_path, budget_pct = sys.argv[1], sys.argv[2], sys.argv[3]
budget = float(budget_pct) / 100.0

def times(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_smoke: FAIL: cannot read benchmark JSON {path}: {e}",
              file=sys.stderr)
        sys.exit(1)
    if "benchmarks" not in doc:
        print(f"perf_smoke: FAIL: {path} has no 'benchmarks' array — "
              f"not a google-benchmark JSON sidecar?", file=sys.stderr)
        sys.exit(1)
    return {b["name"]: float(b["real_time"]) for b in doc["benchmarks"]}

base = times(baseline_path)
now = times(out_path)

failures = []

def require(name):
    # A benchmark absent from the smoke run means the filter regex and the
    # bench binary disagree (renamed/deleted benchmark, stale build). That is
    # a gate failure, not a skip: otherwise a rename silently disables the
    # perf gate.
    if name not in now:
        failures.append(
            f"{name}: missing from the smoke run output "
            f"(filter regex matched {sorted(now)}; "
            f"renamed benchmark or stale bench binary?)")
        return None
    return now[name]

def baseline_ratio(num_name, den_name):
    # Missing baseline columns are a warning, not a failure: the checked-in
    # sidecar may predate a newly added benchmark until it is regenerated.
    missing = [n for n in (num_name, den_name) if n not in base]
    if missing:
        print(f"perf_smoke: warning: {', '.join(missing)} missing from "
              f"baseline {baseline_path}; using the static floor only")
        return None
    return base[num_name] / base[den_name]

batch = require("BM_ExecutePlannedJucq")
tuple_t = require("BM_ExecutePlannedJucqTuple")
dedup = require("BM_Deduplicate")
dedup_sort = require("BM_DeduplicateSort")
range_t = require("BM_ExecuteScanRangeJucq")
union_t = require("BM_ExecuteUnionOfScansJucq")
view_t = require("BM_ExecuteViewScanJucq")
no_view_t = require("BM_ExecuteViewsOffJucq")

# Gate 1: the in-process batch-vs-tuple executor ratio. Machine-independent:
# both sides ran seconds apart on the same host.
if batch and tuple_t:
    ratio = tuple_t / batch
    base_ratio = baseline_ratio("BM_ExecutePlannedJucqTuple",
                                "BM_ExecutePlannedJucq")
    # Never below the PR's acceptance bar of 5x, and within budget of the
    # recorded ratio when the baseline has both columns.
    floor = 5.0
    if base_ratio is not None:
        floor = max(floor, base_ratio * (1.0 - budget))
    print(f"perf_smoke: batch {batch/1e6:.2f} ms, tuple {tuple_t/1e6:.2f} ms, "
          f"ratio {ratio:.1f}x (floor {floor:.1f}x)")
    if ratio < floor:
        failures.append(
            f"BM_ExecutePlannedJucq: batch/tuple ratio {ratio:.1f}x below "
            f"the floor {floor:.1f}x (budget {budget_pct}%)")

# Gate 2: the radix dedup must stay faster than the sort dedup.
if dedup and dedup_sort:
    print(f"perf_smoke: dedup radix {dedup/1e3:.0f} us, "
          f"sort {dedup_sort/1e3:.0f} us")
    if dedup > dedup_sort:
        failures.append(
            f"BM_Deduplicate: radix dedup ({dedup:.0f} ns) slower than the "
            f"sort path ({dedup_sort:.0f} ns)")

# Gate 3: the hierarchy-range collapse. The ScanRange plan for the
# fine-grained LUBM Professor query must stay a large multiple faster than
# the equivalent union-of-scans plan measured in the same process. Floor is
# the acceptance bar of 3x, tightened by the baseline's recorded ratio.
if range_t and union_t:
    ratio = union_t / range_t
    base_ratio = baseline_ratio("BM_ExecuteUnionOfScansJucq",
                                "BM_ExecuteScanRangeJucq")
    floor = 3.0
    if base_ratio is not None:
        floor = max(floor, base_ratio * (1.0 - budget))
    print(f"perf_smoke: scan-range {range_t/1e3:.0f} us, "
          f"union-of-scans {union_t/1e3:.0f} us, "
          f"ratio {ratio:.1f}x (floor {floor:.1f}x)")
    if ratio < floor:
        failures.append(
            f"BM_ExecuteScanRangeJucq: range/union ratio {ratio:.1f}x below "
            f"the floor {floor:.1f}x (budget {budget_pct}%)")

# Gate 5: materialized-view substitution. Executing the substituted
# kViewScan plan for the same fine-grained Professor query must stay a
# large multiple faster than re-evaluating its union-of-scans plan in the
# same process. Floor is the acceptance bar of 3x, tightened by the
# baseline's recorded ratio.
if view_t and no_view_t:
    ratio = no_view_t / view_t
    base_ratio = baseline_ratio("BM_ExecuteViewsOffJucq",
                                "BM_ExecuteViewScanJucq")
    floor = 3.0
    if base_ratio is not None:
        floor = max(floor, base_ratio * (1.0 - budget))
    print(f"perf_smoke: view-scan {view_t/1e3:.0f} us, "
          f"views-off {no_view_t/1e3:.0f} us, "
          f"ratio {ratio:.1f}x (floor {floor:.1f}x)")
    if ratio < floor:
        failures.append(
            f"BM_ExecuteViewScanJucq: view/union ratio {ratio:.1f}x below "
            f"the floor {floor:.1f}x (budget {budget_pct}%)")

if failures:
    for f in failures:
        print(f"perf_smoke: FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("perf_smoke: OK")
EOF

# Gate 4 (optional): RDFOPT_CHECK overhead. Needs a sibling build tree with
# the contracts compiled out (-DRDFOPT_DISABLE_CHECKS=ON); both binaries run
# the headline benchmark back-to-back in this process's environment, so the
# comparison is machine-independent. Medians over repetitions keep a single
# noisy run from tripping a 2% budget.
UNCHECKED_DIR="${RDFOPT_PERF_UNCHECKED_DIR:-}"
if [[ -n "$UNCHECKED_DIR" ]]; then
  CHECK_BUDGET_PCT="${RDFOPT_CHECK_BUDGET_PCT:-2}"
  UNCHECKED_BENCH="$UNCHECKED_DIR/bench/bench_micro"
  if [[ ! -x "$UNCHECKED_BENCH" ]]; then
    echo "perf_smoke: FAIL: RDFOPT_PERF_UNCHECKED_DIR set but" \
         "$UNCHECKED_BENCH not built" >&2
    exit 1
  fi
  CHECKED_OUT="$BUILD_DIR/perf_smoke_checked.json"
  UNCHECKED_OUT="$BUILD_DIR/perf_smoke_unchecked.json"
  for pass in checked unchecked; do
    if [[ "$pass" == checked ]]; then bin="$BENCH"; out="$CHECKED_OUT";
    else bin="$UNCHECKED_BENCH"; out="$UNCHECKED_OUT"; fi
    "$bin" --benchmark_filter='BM_ExecutePlannedJucq$' \
      --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
      --benchmark_out="$out" --benchmark_out_format=json
  done
  python3 - "$CHECKED_OUT" "$UNCHECKED_OUT" "$CHECK_BUDGET_PCT" <<'EOF'
import json
import sys

checked_path, unchecked_path, budget_pct = sys.argv[1], sys.argv[2], sys.argv[3]

def median(path):
    with open(path) as f:
        doc = json.load(f)
    for b in doc.get("benchmarks", []):
        if b.get("aggregate_name") == "median":
            return float(b["real_time"])
    print(f"perf_smoke: FAIL: no median aggregate in {path}", file=sys.stderr)
    sys.exit(1)

checked = median(checked_path)
unchecked = median(unchecked_path)
overhead = (checked - unchecked) / unchecked * 100.0
print(f"perf_smoke: RDFOPT_CHECK overhead on BM_ExecutePlannedJucq: "
      f"checked {checked/1e6:.3f} ms, unchecked {unchecked/1e6:.3f} ms, "
      f"{overhead:+.2f}% (budget {budget_pct}%)")
if overhead > float(budget_pct):
    print(f"perf_smoke: FAIL: always-on contract overhead {overhead:.2f}% "
          f"exceeds the {budget_pct}% budget — a check landed on the "
          f"per-row hot path; demote it to RDFOPT_DCHECK", file=sys.stderr)
    sys.exit(1)
print("perf_smoke: check-overhead OK")
EOF
fi
