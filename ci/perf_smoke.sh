#!/usr/bin/env bash
# Executor perf smoke: runs the headline batch-engine benchmark
# (BM_ExecutePlannedJucq) plus the dedup microbenchmarks and fails if the
# executor regresses more than the budget against the checked-in sidecar
# (BENCH_baseline.json).
#
# The baseline was recorded on a different machine, so an absolute
# comparison would be noise; instead the gate is relative to the recorded
# batch-vs-tuple ratio: the batch engine must stay a large multiple faster
# than the tuple engine measured in the same process, and may drift at most
# RDFOPT_PERF_BUDGET_PCT (default 20) from the baseline's recorded ratio.
#
# Usage: ci/perf_smoke.sh [build_dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_micro"
BASELINE="${RDFOPT_PERF_BASELINE:-BENCH_baseline.json}"
BUDGET_PCT="${RDFOPT_PERF_BUDGET_PCT:-20}"
OUT="${RDFOPT_PERF_OUT:-$BUILD_DIR/perf_smoke.json}"

if [[ ! -x "$BENCH" ]]; then
  echo "perf_smoke: $BENCH not built" >&2
  exit 1
fi
if [[ ! -f "$BASELINE" ]]; then
  echo "perf_smoke: baseline $BASELINE not found" >&2
  exit 1
fi

"$BENCH" \
  --benchmark_filter='BM_ExecutePlannedJucq(Tuple)?$|BM_Deduplicate(Sort)?$' \
  --benchmark_out="$OUT" --benchmark_out_format=json

python3 - "$BASELINE" "$OUT" "$BUDGET_PCT" <<'EOF'
import json
import sys

baseline_path, out_path, budget_pct = sys.argv[1], sys.argv[2], sys.argv[3]
budget = float(budget_pct) / 100.0

def times(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: float(b["real_time"]) for b in doc["benchmarks"]}

base = times(baseline_path)
now = times(out_path)

failures = []

def require(name):
    if name not in now:
        failures.append(f"{name}: missing from the smoke run")
        return None
    return now[name]

batch = require("BM_ExecutePlannedJucq")
tuple_t = require("BM_ExecutePlannedJucqTuple")
dedup = require("BM_Deduplicate")
dedup_sort = require("BM_DeduplicateSort")

# Gate 1: the in-process batch-vs-tuple executor ratio. Machine-independent:
# both sides ran seconds apart on the same host.
if batch and tuple_t:
    ratio = tuple_t / batch
    base_ratio = None
    if "BM_ExecutePlannedJucqTuple" in base and "BM_ExecutePlannedJucq" in base:
        base_ratio = base["BM_ExecutePlannedJucqTuple"] / base["BM_ExecutePlannedJucq"]
    # Never below the PR's acceptance bar of 5x, and within budget of the
    # recorded ratio when the baseline has both columns.
    floor = 5.0
    if base_ratio is not None:
        floor = max(floor, base_ratio * (1.0 - budget))
    print(f"perf_smoke: batch {batch/1e6:.2f} ms, tuple {tuple_t/1e6:.2f} ms, "
          f"ratio {ratio:.1f}x (floor {floor:.1f}x)")
    if ratio < floor:
        failures.append(
            f"BM_ExecutePlannedJucq: batch/tuple ratio {ratio:.1f}x below "
            f"the floor {floor:.1f}x (budget {budget_pct}%)")

# Gate 2: the radix dedup must stay faster than the sort dedup.
if dedup and dedup_sort:
    print(f"perf_smoke: dedup radix {dedup/1e3:.0f} us, "
          f"sort {dedup_sort/1e3:.0f} us")
    if dedup > dedup_sort:
        failures.append(
            f"BM_Deduplicate: radix dedup ({dedup:.0f} ns) slower than the "
            f"sort path ({dedup_sort:.0f} ns)")

if failures:
    for f in failures:
        print(f"perf_smoke: FAIL: {f}", file=sys.stderr)
    sys.exit(1)
print("perf_smoke: OK")
EOF
