#!/usr/bin/env bash
# Telemetry smoke test: starts rdfopt_server on a small LUBM dataset, drives
# a few queries over the line protocol, scrapes the Prometheus endpoint
# (`!prom`) and the slow-query log (`!slowlog`), and validates both formats.
#
# Usage: ci/prom_smoke.sh [build_dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/examples/rdfopt_server"
PORT="${RDFOPT_SMOKE_PORT:-18094}"

if [[ ! -x "$SERVER" ]]; then
  echo "prom_smoke: $SERVER not built" >&2
  exit 1
fi

# --slow-ms 0: every request qualifies for the slow-query log, so the scrape
# below is guaranteed lines to validate.
"$SERVER" --port "$PORT" --slow-ms 0 --lubm 1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true' EXIT

python3 - "$PORT" <<'EOF'
import json
import socket
import sys
import time

port = int(sys.argv[1])

# Wait for the listener.
for attempt in range(100):
    try:
        probe = socket.create_connection(("127.0.0.1", port), timeout=1)
        probe.close()
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("server never started listening")

sock = socket.create_connection(("127.0.0.1", port), timeout=30)
reader = sock.makefile("r", encoding="utf-8")

def send(line):
    sock.sendall((line + "\n").encode("utf-8"))

def read_line():
    line = reader.readline()
    if not line:
        sys.exit("server closed the connection")
    return line.rstrip("\n")

def read_until_eof():
    lines = []
    while True:
        line = read_line()
        if line == "# EOF":
            return lines
        lines.append(line)

query = ("PREFIX ub: <http://lubm.example.org/univ#> "
         "SELECT ?x ?d WHERE { ?x ub:worksFor ?d . "
         "?x ub:doctoralDegreeFrom ?u . }")

# A couple of queries: one miss, one cache hit.
for expect_hit in (False, True):
    send(query)
    response = json.loads(read_line())
    assert response["ok"], response
    assert response["cache_hit"] == expect_hit, response
    assert response["row_count"] > 0, response

# --- !prom: Prometheus text exposition ---------------------------------
send("!prom")
prom = read_until_eof()
assert prom, "empty !prom response"
seen_types = {}
for line in prom:
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split(" ")
        assert kind in ("counter", "gauge", "summary"), line
        seen_types[name] = kind
        continue
    assert not line.startswith("#"), f"unexpected comment: {line}"
    # Every sample line is "name[{labels}] value".
    head, _, value = line.rpartition(" ")
    float(value)  # Must parse as a number.
    name = head.split("{", 1)[0]
    assert name, line
    for c in name:
        assert c.isalnum() or c in "_:", f"bad metric name char: {line}"
    assert name.startswith("rdfopt_"), f"unprefixed metric: {line}"

# The queries above must have left their marks.
prom_text = "\n".join(prom)
for required in (
    "rdfopt_service_queries",
    "rdfopt_service_total_ms_window",
    "rdfopt_engine_evaluate_ms",
    "rdfopt_cost_estimate_drift",
    "rdfopt_service_slow_queries",
    "rdfopt_views_lookups",
    "rdfopt_views_hits",
    "rdfopt_views_bytes",
):
    assert required in prom_text, f"missing metric: {required}"

# --- !views: the materialized-view catalog ------------------------------
send("!views")
views = json.loads(read_line())
assert views["enabled"] is True, views
for key in ("lookups", "hits", "offers", "admitted", "bytes", "entries"):
    assert key in views, f"!views missing {key}: {views}"
assert views["offers"] >= 1, f"no view was ever offered: {views}"
for entry in views["entries"]:
    for key in ("signature", "pinned", "resident", "rows", "observations"):
        assert key in entry, f"!views entry missing {key}: {entry}"

# --- !slowlog: JSON lines ----------------------------------------------
send("!slowlog")
slow = read_until_eof()
assert len(slow) >= 2, f"expected >=2 slow-log lines, got {len(slow)}"
for line in slow:
    record = json.loads(line)
    for key in ("canonical", "status", "plan_digest", "cache_hit", "epoch",
                "total_ms", "eval", "nodes"):
        assert key in record, f"slow-log line missing {key}: {line}"
    assert record["status"] == "ok", line
    int(record["plan_digest"], 16)
    assert record["nodes"], f"no per-node stats: {line}"
    for node in record["nodes"]:
        assert "kind" in node and "rows" in node and "ms" in node, line
# Miss first, hit second.
assert json.loads(slow[0])["cache_hit"] is False
assert json.loads(slow[1])["cache_hit"] is True
assert (json.loads(slow[0])["plan_digest"]
        == json.loads(slow[1])["plan_digest"]), "digest changed across cache"

send("!shutdown")
print("prom_smoke: OK "
      f"({len(prom)} exposition lines, {len(slow)} slow-log lines)")
EOF
