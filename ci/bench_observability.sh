#!/usr/bin/env bash
# Telemetry overhead sidecar: builds the engine twice — default (per-node
# accounting always on) and with -DRDFOPT_DISABLE_NODE_TELEMETRY=ON — runs
# bench_observability under both, and writes BENCH_observability.json
# combining the two runs plus the computed overhead on plan execution.
# The acceptance bar is <= 2% mean overhead on execute_planned_jucq.
#
# Usage: ci/bench_observability.sh [output.json]
set -euo pipefail

OUT="${1:-BENCH_observability.json}"
REPS="${RDFOPT_OBS_REPS:-30}"
JOBS="$(nproc)"

build_and_run() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$JOBS" --target bench_observability > /dev/null
  rm -f "$dir/obs.json"
  RDFOPT_OBS_REPS="$REPS" "$dir/bench/bench_observability" \
    --json "$dir/obs.json"
}

echo "== telemetry ON (default build)"
build_and_run build-obs-on -DRDFOPT_DISABLE_NODE_TELEMETRY=OFF

echo "== telemetry COMPILED OUT"
build_and_run build-obs-off -DRDFOPT_DISABLE_NODE_TELEMETRY=ON

python3 - build-obs-on/obs.json build-obs-off/obs.json "$OUT" <<'EOF'
import json
import sys

with_telemetry = json.load(open(sys.argv[1]))
without = json.load(open(sys.argv[2]))

def exec_mean(records):
    for r in records:
        if r["case"] == "execute_planned_jucq":
            return r["mean_ms"]
    sys.exit("execute_planned_jucq record missing")

on_ms = exec_mean(with_telemetry)
off_ms = exec_mean(without)
overhead_pct = 100.0 * (on_ms - off_ms) / off_ms

out = {
    "bench": "observability",
    "execute_planned_jucq": {
        "telemetry_on_mean_ms": on_ms,
        "telemetry_off_mean_ms": off_ms,
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": 2.0,
    },
    "telemetry_on": with_telemetry,
    "telemetry_off": without,
}
with open(sys.argv[3], "w") as f:
    json.dump(out, f, indent=1)
    f.write("\n")

print(f"execute_planned_jucq: on={on_ms:.3f} ms off={off_ms:.3f} ms "
      f"overhead={overhead_pct:+.2f}% (budget 2%)")
EOF
