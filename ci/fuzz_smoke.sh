#!/usr/bin/env bash
# Fuzz smoke: a short, budgeted fuzzing pass over the three harnesses
# (SPARQL parser, N-Triples reader, service canonicalizer). Under Clang
# each target fuzzes coverage-guided from its seed corpus for an equal
# slice of RDFOPT_FUZZ_SECONDS (default 60 total); under other compilers
# the harnesses replay the corpus once, which still exercises every seed
# through the full harness postconditions (and any checked-in crash
# reproducers).
#
# Usage: ci/fuzz_smoke.sh [build_dir]   (default: build-fuzz)
set -euo pipefail

BUILD_DIR="${1:-build-fuzz}"
TOTAL_SECONDS="${RDFOPT_FUZZ_SECONDS:-60}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# target:corpus pairs; the canonicalizer consumes SPARQL text, so it shares
# the parser corpus.
TARGETS=(
  "sparql_parser_fuzz:$REPO_ROOT/fuzz/corpus/sparql"
  "ntriples_fuzz:$REPO_ROOT/fuzz/corpus/ntriples"
  "canonical_fuzz:$REPO_ROOT/fuzz/corpus/sparql"
)

PER_TARGET=$(( TOTAL_SECONDS / ${#TARGETS[@]} ))

for entry in "${TARGETS[@]}"; do
  target="${entry%%:*}"
  corpus="${entry#*:}"
  bin="$BUILD_DIR/fuzz/$target"
  if [[ ! -x "$bin" ]]; then
    echo "fuzz_smoke: $bin not built (configure with -DRDFOPT_FUZZ=ON)" >&2
    exit 1
  fi
  if [[ ! -d "$corpus" ]]; then
    echo "fuzz_smoke: corpus $corpus missing" >&2
    exit 1
  fi
  # A libFuzzer binary understands -help=1; the standalone replay driver
  # takes only file arguments. Probe the build rather than the compiler so
  # the script works with any toolchain mix.
  if "$bin" -help=1 >/dev/null 2>&1; then
    echo "fuzz_smoke: $target — libFuzzer, ${PER_TARGET}s budget"
    scratch="$(mktemp -d)"
    "$bin" -max_total_time="$PER_TARGET" -timeout=10 -print_final_stats=1 \
      "$scratch" "$corpus"
    rm -rf "$scratch"
  else
    echo "fuzz_smoke: $target — replay driver (non-Clang build)"
    "$bin" "$corpus"/*
  fi
done

echo "fuzz_smoke: OK"
