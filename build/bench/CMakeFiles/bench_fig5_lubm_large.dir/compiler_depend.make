# Empty compiler generated dependencies file for bench_fig5_lubm_large.
# This may be replaced when dependencies are built.
