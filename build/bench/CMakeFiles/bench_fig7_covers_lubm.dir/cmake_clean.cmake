file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_covers_lubm.dir/bench_fig7_covers_lubm.cc.o"
  "CMakeFiles/bench_fig7_covers_lubm.dir/bench_fig7_covers_lubm.cc.o.d"
  "bench_fig7_covers_lubm"
  "bench_fig7_covers_lubm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_covers_lubm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
