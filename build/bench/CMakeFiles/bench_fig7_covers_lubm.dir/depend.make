# Empty dependencies file for bench_fig7_covers_lubm.
# This may be replaced when dependencies are built.
