file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dblp.dir/bench_fig6_dblp.cc.o"
  "CMakeFiles/bench_fig6_dblp.dir/bench_fig6_dblp.cc.o.d"
  "bench_fig6_dblp"
  "bench_fig6_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
