# Empty dependencies file for bench_fig10_saturation.
# This may be replaced when dependencies are built.
