file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_saturation.dir/bench_fig10_saturation.cc.o"
  "CMakeFiles/bench_fig10_saturation.dir/bench_fig10_saturation.cc.o.d"
  "bench_fig10_saturation"
  "bench_fig10_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
