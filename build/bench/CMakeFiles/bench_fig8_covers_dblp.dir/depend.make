# Empty dependencies file for bench_fig8_covers_dblp.
# This may be replaced when dependencies are built.
