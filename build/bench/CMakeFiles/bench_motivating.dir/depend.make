# Empty dependencies file for bench_motivating.
# This may be replaced when dependencies are built.
