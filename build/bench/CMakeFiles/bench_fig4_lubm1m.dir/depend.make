# Empty dependencies file for bench_fig4_lubm1m.
# This may be replaced when dependencies are built.
