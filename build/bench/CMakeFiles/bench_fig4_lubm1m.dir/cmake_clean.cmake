file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lubm1m.dir/bench_fig4_lubm1m.cc.o"
  "CMakeFiles/bench_fig4_lubm1m.dir/bench_fig4_lubm1m.cc.o.d"
  "bench_fig4_lubm1m"
  "bench_fig4_lubm1m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lubm1m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
