file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_costmodel.dir/bench_fig9_costmodel.cc.o"
  "CMakeFiles/bench_fig9_costmodel.dir/bench_fig9_costmodel.cc.o.d"
  "bench_fig9_costmodel"
  "bench_fig9_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
