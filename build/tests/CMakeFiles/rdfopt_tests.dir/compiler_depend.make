# Empty compiler generated dependencies file for rdfopt_tests.
# This may be replaced when dependencies are built.
