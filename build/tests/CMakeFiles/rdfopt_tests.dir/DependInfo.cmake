
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/answering_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/answering_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/answering_test.cc.o.d"
  "/root/repo/tests/calibration_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/calibration_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/calibration_test.cc.o.d"
  "/root/repo/tests/cardinality_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/cardinality_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/cardinality_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/cover_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/cover_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/cover_test.cc.o.d"
  "/root/repo/tests/ecov_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/ecov_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/ecov_test.cc.o.d"
  "/root/repo/tests/evaluator_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/evaluator_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/gcov_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/gcov_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/gcov_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/minimize_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/minimize_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/minimize_test.cc.o.d"
  "/root/repo/tests/operators_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/operators_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/operators_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/printer_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/printer_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/printer_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/rdf_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/rdf_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/rdf_test.cc.o.d"
  "/root/repo/tests/reformulator_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/reformulator_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/reformulator_test.cc.o.d"
  "/root/repo/tests/relation_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/relation_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/relation_test.cc.o.d"
  "/root/repo/tests/saturation_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/saturation_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/saturation_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/semantics_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/semantics_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/semantics_test.cc.o.d"
  "/root/repo/tests/snapshot_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/snapshot_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/statistics_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/statistics_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/statistics_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/subsumption_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/subsumption_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/subsumption_test.cc.o.d"
  "/root/repo/tests/triple_store_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/triple_store_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/triple_store_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/rdfopt_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/rdfopt_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdfopt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
