# Empty dependencies file for rdfopt.
# This may be replaced when dependencies are built.
