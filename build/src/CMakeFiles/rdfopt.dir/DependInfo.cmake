
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rdfopt.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/rdfopt.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/cost/calibration.cc" "src/CMakeFiles/rdfopt.dir/cost/calibration.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/cost/calibration.cc.o.d"
  "/root/repo/src/cost/cardinality.cc" "src/CMakeFiles/rdfopt.dir/cost/cardinality.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/cost/cardinality.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/rdfopt.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/engine/engine_profile.cc" "src/CMakeFiles/rdfopt.dir/engine/engine_profile.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/engine/engine_profile.cc.o.d"
  "/root/repo/src/engine/evaluator.cc" "src/CMakeFiles/rdfopt.dir/engine/evaluator.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/engine/evaluator.cc.o.d"
  "/root/repo/src/engine/explain.cc" "src/CMakeFiles/rdfopt.dir/engine/explain.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/engine/explain.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/CMakeFiles/rdfopt.dir/engine/operators.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/engine/operators.cc.o.d"
  "/root/repo/src/engine/relation.cc" "src/CMakeFiles/rdfopt.dir/engine/relation.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/engine/relation.cc.o.d"
  "/root/repo/src/optimizer/answering.cc" "src/CMakeFiles/rdfopt.dir/optimizer/answering.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/optimizer/answering.cc.o.d"
  "/root/repo/src/optimizer/cover.cc" "src/CMakeFiles/rdfopt.dir/optimizer/cover.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/optimizer/cover.cc.o.d"
  "/root/repo/src/optimizer/ecov.cc" "src/CMakeFiles/rdfopt.dir/optimizer/ecov.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/optimizer/ecov.cc.o.d"
  "/root/repo/src/optimizer/gcov.cc" "src/CMakeFiles/rdfopt.dir/optimizer/gcov.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/optimizer/gcov.cc.o.d"
  "/root/repo/src/rdf/dictionary.cc" "src/CMakeFiles/rdfopt.dir/rdf/dictionary.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/rdf/dictionary.cc.o.d"
  "/root/repo/src/rdf/graph.cc" "src/CMakeFiles/rdfopt.dir/rdf/graph.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/rdf/graph.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/CMakeFiles/rdfopt.dir/rdf/ntriples.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/rdf/ntriples.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/rdfopt.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/rdf/term.cc.o.d"
  "/root/repo/src/rdf/vocabulary.cc" "src/CMakeFiles/rdfopt.dir/rdf/vocabulary.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/rdf/vocabulary.cc.o.d"
  "/root/repo/src/reasoner/saturation.cc" "src/CMakeFiles/rdfopt.dir/reasoner/saturation.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/reasoner/saturation.cc.o.d"
  "/root/repo/src/reformulation/minimize.cc" "src/CMakeFiles/rdfopt.dir/reformulation/minimize.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/reformulation/minimize.cc.o.d"
  "/root/repo/src/reformulation/reformulator.cc" "src/CMakeFiles/rdfopt.dir/reformulation/reformulator.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/reformulation/reformulator.cc.o.d"
  "/root/repo/src/reformulation/subsumption.cc" "src/CMakeFiles/rdfopt.dir/reformulation/subsumption.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/reformulation/subsumption.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/rdfopt.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/schema/schema.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/CMakeFiles/rdfopt.dir/sparql/parser.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/sparql/parser.cc.o.d"
  "/root/repo/src/sparql/printer.cc" "src/CMakeFiles/rdfopt.dir/sparql/printer.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/sparql/printer.cc.o.d"
  "/root/repo/src/sparql/query.cc" "src/CMakeFiles/rdfopt.dir/sparql/query.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/sparql/query.cc.o.d"
  "/root/repo/src/sparql/sql.cc" "src/CMakeFiles/rdfopt.dir/sparql/sql.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/sparql/sql.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/CMakeFiles/rdfopt.dir/storage/snapshot.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/storage/snapshot.cc.o.d"
  "/root/repo/src/storage/statistics.cc" "src/CMakeFiles/rdfopt.dir/storage/statistics.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/storage/statistics.cc.o.d"
  "/root/repo/src/storage/triple_store.cc" "src/CMakeFiles/rdfopt.dir/storage/triple_store.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/storage/triple_store.cc.o.d"
  "/root/repo/src/workload/dblp.cc" "src/CMakeFiles/rdfopt.dir/workload/dblp.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/workload/dblp.cc.o.d"
  "/root/repo/src/workload/lubm.cc" "src/CMakeFiles/rdfopt.dir/workload/lubm.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/workload/lubm.cc.o.d"
  "/root/repo/src/workload/query_sets.cc" "src/CMakeFiles/rdfopt.dir/workload/query_sets.cc.o" "gcc" "src/CMakeFiles/rdfopt.dir/workload/query_sets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
