file(REMOVE_RECURSE
  "librdfopt.a"
)
