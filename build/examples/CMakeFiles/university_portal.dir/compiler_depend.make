# Empty compiler generated dependencies file for university_portal.
# This may be replaced when dependencies are built.
