file(REMOVE_RECURSE
  "CMakeFiles/university_portal.dir/university_portal.cpp.o"
  "CMakeFiles/university_portal.dir/university_portal.cpp.o.d"
  "university_portal"
  "university_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
