# Empty dependencies file for sparql_shell.
# This may be replaced when dependencies are built.
