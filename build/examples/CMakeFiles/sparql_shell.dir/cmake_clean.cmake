file(REMOVE_RECURSE
  "CMakeFiles/sparql_shell.dir/sparql_shell.cpp.o"
  "CMakeFiles/sparql_shell.dir/sparql_shell.cpp.o.d"
  "sparql_shell"
  "sparql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
