file(REMOVE_RECURSE
  "CMakeFiles/dynamic_updates.dir/dynamic_updates.cpp.o"
  "CMakeFiles/dynamic_updates.dir/dynamic_updates.cpp.o.d"
  "dynamic_updates"
  "dynamic_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
