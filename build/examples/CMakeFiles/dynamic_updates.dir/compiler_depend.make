# Empty compiler generated dependencies file for dynamic_updates.
# This may be replaced when dependencies are built.
