# Empty compiler generated dependencies file for bibliography_search.
# This may be replaced when dependencies are built.
