file(REMOVE_RECURSE
  "CMakeFiles/bibliography_search.dir/bibliography_search.cpp.o"
  "CMakeFiles/bibliography_search.dir/bibliography_search.cpp.o.d"
  "bibliography_search"
  "bibliography_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
