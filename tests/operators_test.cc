#include "engine/operators.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace rdfopt {
namespace {

TripleStore SmallStore() {
  return TripleStore::Build({
      {1, 10, 20},
      {1, 10, 21},
      {2, 10, 20},
      {20, 11, 30},
      {21, 11, 31},
      {5, 12, 5},  // Subject == object, for repeated-variable tests.
      {5, 12, 6},
  });
}

TEST(ScanAtomTest, ConstantPropertyScan) {
  TripleStore store = SmallStore();
  TriplePattern atom{PatternTerm::Var(0), PatternTerm::Const(10),
                     PatternTerm::Var(1)};
  Relation r = ScanAtom(store, atom);
  EXPECT_EQ(r.columns(), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(ScanAtomInputSize(store, atom), 3u);
}

TEST(ScanAtomTest, FullyBoundScan) {
  TripleStore store = SmallStore();
  TriplePattern atom{PatternTerm::Const(1), PatternTerm::Const(10),
                     PatternTerm::Const(20)};
  Relation r = ScanAtom(store, atom);
  EXPECT_EQ(r.arity(), 0u);
  EXPECT_EQ(r.num_rows(), 1u);  // One (empty) row: the triple exists.
}

TEST(ScanAtomTest, RepeatedVariableFilters) {
  TripleStore store = SmallStore();
  // ?x <12> ?x matches only (5,12,5).
  TriplePattern atom{PatternTerm::Var(0), PatternTerm::Const(12),
                     PatternTerm::Var(0)};
  Relation r = ScanAtom(store, atom);
  EXPECT_EQ(r.columns(), (std::vector<VarId>{0}));
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.at(0, 0), 5u);
  // The scan itself reads both <12> triples.
  EXPECT_EQ(ScanAtomInputSize(store, atom), 2u);
}

TEST(ScanAtomTest, VariablePropertyScan) {
  TripleStore store = SmallStore();
  TriplePattern atom{PatternTerm::Const(1), PatternTerm::Var(0),
                     PatternTerm::Var(1)};
  Relation r = ScanAtom(store, atom);
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.columns(), (std::vector<VarId>{0, 1}));
}

TEST(HashJoinTest, NaturalJoinOnSharedColumn) {
  Relation left({0, 1});
  left.AppendRow(std::vector<ValueId>{1, 20});
  left.AppendRow(std::vector<ValueId>{1, 21});
  left.AppendRow(std::vector<ValueId>{2, 20});
  Relation right({1, 2});
  right.AppendRow(std::vector<ValueId>{20, 30});
  right.AppendRow(std::vector<ValueId>{21, 31});

  Relation joined = HashJoin(left, right);
  EXPECT_EQ(joined.columns(), (std::vector<VarId>{0, 1, 2}));
  EXPECT_EQ(joined.num_rows(), 3u);

  std::set<std::vector<ValueId>> rows;
  for (size_t i = 0; i < joined.num_rows(); ++i) {
    rows.insert({joined.at(i, 0), joined.at(i, 1), joined.at(i, 2)});
  }
  EXPECT_TRUE(rows.count({1, 20, 30}));
  EXPECT_TRUE(rows.count({1, 21, 31}));
  EXPECT_TRUE(rows.count({2, 20, 30}));
}

TEST(HashJoinTest, MultiColumnJoinKey) {
  Relation left({0, 1});
  left.AppendRow(std::vector<ValueId>{1, 2});
  left.AppendRow(std::vector<ValueId>{1, 3});
  Relation right({0, 1, 2});
  right.AppendRow(std::vector<ValueId>{1, 2, 9});
  right.AppendRow(std::vector<ValueId>{1, 4, 9});
  Relation joined = HashJoin(left, right);
  EXPECT_EQ(joined.columns(), (std::vector<VarId>{0, 1, 2}));
  ASSERT_EQ(joined.num_rows(), 1u);
  EXPECT_EQ(joined.at(0, 2), 9u);
}

TEST(HashJoinTest, CartesianProductWhenNoSharedColumns) {
  Relation left({0});
  left.AppendRow(std::vector<ValueId>{1});
  left.AppendRow(std::vector<ValueId>{2});
  Relation right({1});
  right.AppendRow(std::vector<ValueId>{8});
  right.AppendRow(std::vector<ValueId>{9});
  right.AppendRow(std::vector<ValueId>{10});
  Relation joined = HashJoin(left, right);
  EXPECT_EQ(joined.num_rows(), 6u);
}

TEST(HashJoinTest, EmptyInputs) {
  Relation left({0});
  Relation right({0});
  right.AppendRow(std::vector<ValueId>{1});
  EXPECT_EQ(HashJoin(left, right).num_rows(), 0u);
  EXPECT_EQ(HashJoin(right, left).num_rows(), 0u);
}

TEST(HashJoinTest, JoinWithBooleanRelation) {
  // Zero-arity x non-empty: cartesian product semantics preserve the rows.
  Relation boolean({});
  boolean.AppendEmptyRow();
  Relation data({0});
  data.AppendRow(std::vector<ValueId>{4});
  Relation joined = HashJoin(boolean, data);
  EXPECT_EQ(joined.num_rows(), 1u);
  EXPECT_EQ(joined.columns(), (std::vector<VarId>{0}));
}

TEST(ProjectTest, ReordersColumns) {
  Relation in({0, 1});
  in.AppendRow(std::vector<ValueId>{1, 2});
  Relation out = ProjectWithBindings(in, {1, 0}, {});
  EXPECT_EQ(out.columns(), (std::vector<VarId>{1, 0}));
  EXPECT_EQ(out.at(0, 0), 2u);
  EXPECT_EQ(out.at(0, 1), 1u);
}

TEST(ProjectTest, ConstantFromBindings) {
  Relation in({0});
  in.AppendRow(std::vector<ValueId>{1});
  in.AppendRow(std::vector<ValueId>{2});
  Relation out = ProjectWithBindings(in, {0, 7}, {{7, 99}});
  EXPECT_EQ(out.columns(), (std::vector<VarId>{0, 7}));
  EXPECT_EQ(out.at(0, 1), 99u);
  EXPECT_EQ(out.at(1, 1), 99u);
}

TEST(ProjectTest, EmptyHeadGivesBooleanResult) {
  Relation in({0});
  in.AppendRow(std::vector<ValueId>{1});
  Relation out = ProjectWithBindings(in, {}, {});
  EXPECT_EQ(out.arity(), 0u);
  EXPECT_EQ(out.num_rows(), 1u);
}

TEST(UnionIntoTest, AlignsColumnsAndAppliesBindings) {
  Relation acc({0, 1});
  acc.AppendRow(std::vector<ValueId>{1, 2});
  // Input has column 0 only; column 1 supplied by a binding.
  Relation input({0});
  input.AppendRow(std::vector<ValueId>{5});
  UnionInto(&acc, input, {{1, 77}});
  ASSERT_EQ(acc.num_rows(), 2u);
  EXPECT_EQ(acc.at(1, 0), 5u);
  EXPECT_EQ(acc.at(1, 1), 77u);
}

TEST(UnionIntoTest, ReorderedInputColumns) {
  Relation acc({0, 1});
  Relation input({1, 0});
  input.AppendRow(std::vector<ValueId>{20, 10});
  UnionInto(&acc, input, {});
  ASSERT_EQ(acc.num_rows(), 1u);
  EXPECT_EQ(acc.at(0, 0), 10u);
  EXPECT_EQ(acc.at(0, 1), 20u);
}


TEST(IndexJoinAtomTest, ProbesBoundPositions) {
  TripleStore store = SmallStore();
  // Left binds ?x (subjects); atom is ?x <10> ?y.
  Relation left({0});
  left.AppendRow(std::vector<ValueId>{1});
  left.AppendRow(std::vector<ValueId>{3});  // No <10> triples for 3.
  TriplePattern atom{PatternTerm::Var(0), PatternTerm::Const(10),
                     PatternTerm::Var(1)};
  size_t probed = 0;
  Relation out = IndexJoinAtom(store, left, atom, &probed);
  EXPECT_EQ(out.columns(), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(out.num_rows(), 2u);  // (1,20), (1,21).
  EXPECT_EQ(probed, 2u);
}

TEST(IndexJoinAtomTest, AgreesWithHashJoin) {
  TripleStore store = SmallStore();
  TriplePattern first{PatternTerm::Var(0), PatternTerm::Const(10),
                      PatternTerm::Var(1)};
  TriplePattern second{PatternTerm::Var(1), PatternTerm::Const(11),
                       PatternTerm::Var(2)};
  Relation left = ScanAtom(store, first);
  Relation via_hash = HashJoin(left, ScanAtom(store, second));
  Relation via_index = IndexJoinAtom(store, left, second, nullptr);
  ASSERT_EQ(via_hash.num_rows(), via_index.num_rows());
  ASSERT_EQ(via_hash.columns(), via_index.columns());
  std::set<std::vector<ValueId>> hash_rows;
  std::set<std::vector<ValueId>> index_rows;
  for (size_t i = 0; i < via_hash.num_rows(); ++i) {
    hash_rows.insert(std::vector<ValueId>(via_hash.row(i).begin(),
                                          via_hash.row(i).end()));
    index_rows.insert(std::vector<ValueId>(via_index.row(i).begin(),
                                           via_index.row(i).end()));
  }
  EXPECT_EQ(hash_rows, index_rows);
}

TEST(IndexJoinAtomTest, MultipleBoundPositions) {
  TripleStore store = SmallStore();
  // Left binds both the subject and the object of the probe atom.
  Relation left({0, 1});
  left.AppendRow(std::vector<ValueId>{1, 20});
  left.AppendRow(std::vector<ValueId>{1, 22});  // (1,10,22) does not exist.
  TriplePattern atom{PatternTerm::Var(0), PatternTerm::Const(10),
                     PatternTerm::Var(1)};
  Relation out = IndexJoinAtom(store, left, atom, nullptr);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.at(0, 0), 1u);
  EXPECT_EQ(out.at(0, 1), 20u);
}

TEST(IndexJoinAtomTest, RepeatedFreshVariableFilters) {
  TripleStore store = SmallStore();
  // Probe ?z <12> ?z with the property bound by nothing: left binds no
  // position except via a cartesian driver row.
  Relation left({9});
  left.AppendRow(std::vector<ValueId>{777});
  TriplePattern atom{PatternTerm::Var(0), PatternTerm::Const(12),
                     PatternTerm::Var(0)};
  Relation out = IndexJoinAtom(store, left, atom, nullptr);
  // Only (5,12,5) matches the repeated variable; (5,12,6) filtered.
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.columns(), (std::vector<VarId>{9, 0}));
  EXPECT_EQ(out.at(0, 1), 5u);
}

TEST(IndexJoinAtomTest, EmptyLeft) {
  TripleStore store = SmallStore();
  Relation left({0});
  TriplePattern atom{PatternTerm::Var(0), PatternTerm::Const(10),
                     PatternTerm::Var(1)};
  size_t probed = 0;
  Relation out = IndexJoinAtom(store, left, atom, &probed);
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(probed, 0u);
}

TEST(IndexJoinAtomTest, VariablePropertyProbe) {
  TripleStore store = SmallStore();
  // Left binds the property position.
  Relation left({5});
  left.AppendRow(std::vector<ValueId>{10});
  TriplePattern atom{PatternTerm::Var(0), PatternTerm::Var(5),
                     PatternTerm::Var(1)};
  Relation out = IndexJoinAtom(store, left, atom, nullptr);
  EXPECT_EQ(out.num_rows(), 3u);  // All <10> triples.
  EXPECT_EQ(out.columns(), (std::vector<VarId>{5, 0, 1}));
}

}  // namespace
}  // namespace rdfopt
