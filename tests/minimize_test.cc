#include "reformulation/minimize.h"

#include <gtest/gtest.h>

#include "engine/evaluator.h"
#include "rdf/graph.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

// Schema mirroring the paper's footnote-3 example: only people have social
// security numbers.
class MinimizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dictionary& d = graph_.dict();
    person_ = d.InternIri("Person");
    agent_ = d.InternIri("Agent");
    ssn_ = d.InternIri("hasSSN");
    employs_ = d.InternIri("employs");
    works_for_ = d.InternIri("worksFor");
    const Vocabulary& v = graph_.vocab();
    graph_.AddEncoded(person_, v.rdfs_subclassof, agent_);
    graph_.AddEncoded(ssn_, v.rdfs_domain, person_);
    graph_.AddEncoded(employs_, v.rdfs_range, person_);
    graph_.AddEncoded(works_for_, v.rdfs_subpropertyof, employs_);
    graph_.FinalizeSchema();
  }

  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }

  Graph graph_;
  ValueId person_, agent_, ssn_, employs_, works_for_;
};

TEST_F(MinimizeTest, FootnoteThreeExample) {
  // "x is a person and x has a social security number": the type atom is
  // redundant (domain of hasSSN is Person).
  Query q = MustParse(
      "SELECT ?x WHERE { ?x rdf:type <Person> . ?x <hasSSN> ?n . }");
  MinimizationResult m =
      MinimizeQuery(q.cq, graph_.schema(), graph_.vocab());
  EXPECT_EQ(m.removed_atoms, (std::vector<size_t>{0}));
  ASSERT_EQ(m.query.atoms.size(), 1u);
  EXPECT_EQ(m.query.atoms[0].p, PatternTerm::Const(ssn_));
  EXPECT_EQ(m.query.head, q.cq.head);
}

TEST_F(MinimizeTest, SuperclassTypeAtomRedundant) {
  // (x type Agent) is implied by (x type Person).
  Query q = MustParse(
      "SELECT ?x WHERE { ?x rdf:type <Agent> . ?x rdf:type <Person> . }");
  MinimizationResult m =
      MinimizeQuery(q.cq, graph_.schema(), graph_.vocab());
  EXPECT_EQ(m.removed_atoms, (std::vector<size_t>{0}));
}

TEST_F(MinimizeTest, RangeEntailsObjectType) {
  // (y type Person) implied by (x employs y) via the range constraint.
  Query q = MustParse(
      "SELECT ?x ?y WHERE { ?x <employs> ?y . ?y rdf:type <Person> . }");
  MinimizationResult m =
      MinimizeQuery(q.cq, graph_.schema(), graph_.vocab());
  EXPECT_EQ(m.removed_atoms, (std::vector<size_t>{1}));
}

TEST_F(MinimizeTest, SubpropertyAtomEntailsSuperproperty) {
  // (x employs y) implied by (x worksFor y)... note worksFor <=sp employs.
  Query q = MustParse(
      "SELECT ?x ?y WHERE { ?x <employs> ?y . ?x <worksFor> ?y . }");
  MinimizationResult m =
      MinimizeQuery(q.cq, graph_.schema(), graph_.vocab());
  EXPECT_EQ(m.removed_atoms, (std::vector<size_t>{0}));
  EXPECT_EQ(m.query.atoms[0].p, PatternTerm::Const(works_for_));
}

TEST_F(MinimizeTest, NothingToRemove) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <hasSSN> ?n . ?x <worksFor> ?y . }");
  MinimizationResult m =
      MinimizeQuery(q.cq, graph_.schema(), graph_.vocab());
  EXPECT_TRUE(m.removed_atoms.empty());
  EXPECT_EQ(m.query.atoms.size(), 2u);
}

TEST_F(MinimizeTest, KeepsAtomWhoseVariableWouldBecomeUnbound) {
  // (y type Person) is entailed by (x employs y), but if it is the only
  // atom binding y... here y occurs in the employs atom, so removal is
  // fine; instead test a head variable bound only by the redundant atom:
  // impossible by construction (the entailing atom shares the variable), so
  // check the duplicate-atom edge: q(x) :- x hasSSN n . x hasSSN n.
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <hasSSN> ?n . ?x <hasSSN> ?n . }");
  MinimizationResult m =
      MinimizeQuery(q.cq, graph_.schema(), graph_.vocab());
  EXPECT_EQ(m.removed_atoms.size(), 1u);
  EXPECT_EQ(m.query.atoms.size(), 1u);
}

TEST_F(MinimizeTest, MutuallyRedundantPairKeepsOne) {
  // Two identical type atoms: exactly one survives.
  Query q = MustParse(
      "SELECT ?x WHERE { ?x rdf:type <Person> . ?x rdf:type <Person> . }");
  MinimizationResult m =
      MinimizeQuery(q.cq, graph_.schema(), graph_.vocab());
  EXPECT_EQ(m.query.atoms.size(), 1u);
}

TEST_F(MinimizeTest, DifferentSubjectsNotConfused) {
  Query q = MustParse(
      "SELECT ?x ?y WHERE { ?x rdf:type <Person> . ?y <hasSSN> ?n . "
      "?x <worksFor> ?y . }");
  MinimizationResult m =
      MinimizeQuery(q.cq, graph_.schema(), graph_.vocab());
  // (x type Person) is NOT entailed by (y hasSSN n) — different subject;
  // but it IS entailed by (x worksFor y): domain(employs) has no domain...
  // worksFor has no domain constraint, so nothing entails the type atom.
  EXPECT_TRUE(m.removed_atoms.empty());
}

TEST(AtomEntailsTest, ExactDuplicate) {
  Graph g;
  g.FinalizeSchema();
  TriplePattern atom{PatternTerm::Var(0), PatternTerm::Const(5),
                     PatternTerm::Var(1)};
  EXPECT_TRUE(AtomEntails(atom, atom, g.schema(), g.vocab()));
}

TEST(AtomEntailsTest, VariableClassNeverEntailed) {
  Graph g;
  Dictionary& d = g.dict();
  ValueId c = d.InternIri("C");
  ValueId p = d.InternIri("p");
  g.AddEncoded(p, g.vocab().rdfs_domain, c);
  g.FinalizeSchema();
  // (x type ?y) is not entailed by (x p z) — the class is a variable.
  TriplePattern by{PatternTerm::Var(0), PatternTerm::Const(p),
                   PatternTerm::Var(2)};
  TriplePattern atom{PatternTerm::Var(0),
                     PatternTerm::Const(g.vocab().rdf_type),
                     PatternTerm::Var(1)};
  EXPECT_FALSE(AtomEntails(by, atom, g.schema(), g.vocab()));
}

// End-to-end: minimization preserves answers on generated data.
TEST(MinimizeLubmTest, AnswersPreserved) {
  Graph g;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &g);
  g.FinalizeSchema();

  // takesCourse's domain is Student: the type atom is redundant.
  Result<Query> q = ParseQuery(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x rdf:type ub:Student . ?x ub:takesCourse ?c . }",
      &g.dict());
  ASSERT_TRUE(q.ok());
  MinimizationResult m =
      MinimizeQuery(q.ValueOrDie().cq, g.schema(), g.vocab());
  ASSERT_EQ(m.removed_atoms.size(), 1u);

  // Equal answers through saturation.
  TripleStore store = TripleStore::Build(g.data_triples());
  SaturationResult sat = Saturate(store, g.schema(), g.vocab());
  EngineProfile profile = NativeStoreProfile();
  Evaluator evaluator(&sat.store, &profile);
  Result<Relation> full = evaluator.EvaluateCQ(q.ValueOrDie().cq, nullptr);
  Result<Relation> reduced = evaluator.EvaluateCQ(m.query, nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(full.ValueOrDie().num_rows(), reduced.ValueOrDie().num_rows());
}

}  // namespace
}  // namespace rdfopt
