// Failure injection and resource-limit stress tests: the engine must fail
// *cleanly* (typed Status, no partial results treated as answers) under
// every limit an EngineProfile can impose, and recover for the next query.

#include <gtest/gtest.h>

#include "optimizer/answering.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

class StressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph();
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, graph_);
    graph_->FinalizeSchema();
    store_ = new TripleStore(TripleStore::Build(graph_->data_triples()));
    stats_ = new Statistics(Statistics::Compute(*store_));
  }

  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_->dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }

  static Graph* graph_;
  static TripleStore* store_;
  static Statistics* stats_;
};

Graph* StressTest::graph_ = nullptr;
TripleStore* StressTest::store_ = nullptr;
Statistics* StressTest::stats_ = nullptr;

TEST_F(StressTest, TimeoutsAreCleanAndRecoverable) {
  EngineProfile strict = NativeStoreProfile();
  strict.timeout_seconds = 0.0;  // Everything times out.
  Evaluator evaluator(store_, &strict);
  Query q = MustParse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y WHERE { ?x ub:takesCourse ?y . }");
  for (int i = 0; i < 3; ++i) {
    Result<Relation> r = evaluator.EvaluateCQ(q.cq, nullptr);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  }
  // The same evaluator object with a sane profile works again.
  EngineProfile sane = NativeStoreProfile();
  Evaluator ok_evaluator(store_, &sane);
  EXPECT_TRUE(ok_evaluator.EvaluateCQ(q.cq, nullptr).ok());
}

TEST_F(StressTest, PlanLimitSweepNeverCrashes) {
  // Sweep the plan-size limit across orders of magnitude: each setting must
  // either succeed or fail with kQueryTooComplex, never anything else.
  Query q = MustParse(LubmMotivatingQ1().text);
  for (size_t limit : {1u, 10u, 100u, 1000u, 10000u, 100000u}) {
    EngineProfile profile = NativeStoreProfile();
    profile.max_union_terms = limit;
    QueryAnswerer answerer(store_, nullptr, &graph_->schema(),
                           &graph_->vocab(), stats_, &profile);
    AnswerOptions options;
    options.strategy = Strategy::kUcq;
    Result<AnswerOutcome> r = answerer.Answer(q, options);
    if (r.ok()) {
      EXPECT_GE(limit, r.ValueOrDie().union_terms);
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kQueryTooComplex)
          << "limit " << limit;
    }
  }
}

TEST_F(StressTest, MemoryBudgetSweep) {
  Query q = MustParse(LubmMotivatingQ1().text);
  bool saw_failure = false;
  bool saw_success = false;
  for (size_t budget : {1u, 1000u, 1000000u, 1000000000u}) {
    EngineProfile profile = NativeStoreProfile();
    profile.max_materialized_cells = budget;
    QueryAnswerer answerer(store_, nullptr, &graph_->schema(),
                           &graph_->vocab(), stats_, &profile);
    AnswerOptions options;
    options.strategy = Strategy::kScq;  // Materializes all but one component.
    Result<AnswerOutcome> r = answerer.Answer(q, options);
    if (r.ok()) {
      saw_success = true;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << "budget " << budget;
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure);  // The 1-cell budget cannot fit anything.
  EXPECT_TRUE(saw_success);  // The 1G-cell budget fits everything.
}

TEST_F(StressTest, GcovSurvivesHostileProfiles) {
  // Even under absurdly tight limits GCov must return a typed error or a
  // correct answer — and under generous limits, the same answerer must then
  // succeed (no state corruption from prior failures).
  Query q = MustParse(LubmMotivatingQ2().text);
  EngineProfile hostile = NativeStoreProfile();
  hostile.max_union_terms = 2;
  hostile.max_materialized_cells = 8;
  QueryAnswerer answerer(store_, nullptr, &graph_->schema(),
                         &graph_->vocab(), stats_, &hostile);
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  options.optimizer_time_budget_s = 5.0;
  Result<AnswerOutcome> r = answerer.Answer(q, options);
  if (!r.ok()) {
    EXPECT_TRUE(r.status().code() == StatusCode::kQueryTooComplex ||
                r.status().code() == StatusCode::kResourceExhausted ||
                r.status().code() == StatusCode::kTimeout)
        << r.status().ToString();
  }
}

TEST_F(StressTest, ZeroOptimizerBudgetStillAnswers) {
  Query q = MustParse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x rdf:type ub:Professor . ?x ub:worksFor ?d . }");
  EngineProfile profile = NativeStoreProfile();
  QueryAnswerer answerer(store_, nullptr, &graph_->schema(),
                         &graph_->vocab(), stats_, &profile);
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  options.optimizer_time_budget_s = 0.0;  // Anytime: SCQ baseline survives.
  Result<AnswerOutcome> r = answerer.Answer(q, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.ValueOrDie().answers.num_rows(), 0u);
}

TEST_F(StressTest, RepeatedAnsweringIsStable) {
  // 20 consecutive answers with mixed strategies: identical results, no
  // drift in the reported union terms (oracle caches are per-call).
  Query q = MustParse(LubmMotivatingQ1().text);
  EngineProfile profile = NativeStoreProfile();
  QueryAnswerer answerer(store_, nullptr, &graph_->schema(),
                         &graph_->vocab(), stats_, &profile);
  size_t first_rows = 0;
  size_t first_terms = 0;
  for (int i = 0; i < 20; ++i) {
    AnswerOptions options;
    options.strategy = (i % 2 == 0) ? Strategy::kGcov : Strategy::kScq;
    Result<AnswerOutcome> r = answerer.Answer(q, options);
    ASSERT_TRUE(r.ok());
    if (i == 0) {
      first_rows = r.ValueOrDie().answers.num_rows();
    } else {
      EXPECT_EQ(r.ValueOrDie().answers.num_rows(), first_rows);
    }
    if (i == 1) {
      first_terms = r.ValueOrDie().union_terms;
    } else if (i % 2 == 1) {
      EXPECT_EQ(r.ValueOrDie().union_terms, first_terms);
    }
  }
}

TEST_F(StressTest, DeepSubclassChainSaturatesAndReformulates) {
  // A 200-deep subclass chain: closures, saturation and reformulation must
  // handle linear-depth hierarchies without recursion issues.
  Graph g;
  const Vocabulary& v = g.vocab();
  std::vector<ValueId> classes;
  for (int i = 0; i < 200; ++i) {
    classes.push_back(g.dict().InternIri("deep/C" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < 200; ++i) {
    g.AddEncoded(classes[i], v.rdfs_subclassof, classes[i + 1]);
  }
  ValueId a = g.dict().InternIri("deep/a");
  g.AddEncoded(a, v.rdf_type, classes[0]);
  g.FinalizeSchema();

  SaturationResult sat = SaturateGraph(g);
  EXPECT_EQ(sat.output_triples, 200u);  // One type fact per ancestor.

  Reformulator reformulator(&g.schema(), &g.vocab());
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  TriplePattern atom{PatternTerm::Var(x), PatternTerm::Const(v.rdf_type),
                     PatternTerm::Const(classes[199])};
  EXPECT_EQ(reformulator.CountAtomReformulations(atom, vars), 200u);
}

TEST_F(StressTest, WideUnionWithinLimitEvaluates) {
  // A UCQ of 5000 disjuncts (all identical, tiny): evaluates fine when the
  // profile allows it.
  Query q = MustParse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x ub:headOf ?d . }");
  UnionQuery ucq;
  ucq.head = q.cq.head;
  for (int i = 0; i < 5000; ++i) ucq.disjuncts.push_back(q.cq);
  EngineProfile profile = NativeStoreProfile();
  profile.union_term_overhead_us = 0.0;  // Keep the test fast.
  Evaluator evaluator(store_, &profile);
  Result<Relation> r = evaluator.EvaluateUCQ(ucq, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.ValueOrDie().num_rows(), 0u);
}

}  // namespace
}  // namespace rdfopt
