#include "engine/evaluator.h"

#include <set>

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "sparql/parser.h"

namespace rdfopt {
namespace {

// Small family/library dataset exercised through the SPARQL front end.
class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const char* s, const char* p, const char* o) {
      graph_.AddIri(s, p, o);
    };
    add("a", "knows", "b");
    add("b", "knows", "c");
    add("c", "knows", "a");
    add("a", "likes", "b");
    add("b", "likes", "b");
    store_ = TripleStore::Build(graph_.data_triples());
    profile_ = PostgresLikeProfile();
    evaluator_.emplace(&store_, &profile_);
  }

  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }

  Graph graph_;
  TripleStore store_;
  EngineProfile profile_;
  std::optional<Evaluator> evaluator_;
};

TEST_F(EvaluatorTest, SingleAtom) {
  Query q = MustParse("SELECT ?x ?y WHERE { ?x <knows> ?y . }");
  Result<Relation> r = evaluator_->EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 3u);
}

TEST_F(EvaluatorTest, TwoAtomJoin) {
  // Who knows someone who likes themselves? a knows b, b likes b.
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <knows> ?y . ?y <likes> ?y . }");
  Result<Relation> r = evaluator_->EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().num_rows(), 1u);
  EXPECT_EQ(r.ValueOrDie().at(0, 0), graph_.dict().LookupIri("a"));
}

TEST_F(EvaluatorTest, TriangleJoin) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <knows> ?y . ?y <knows> ?z . ?z <knows> ?x . }");
  Result<Relation> r = evaluator_->EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 3u);  // a, b, c each start a cycle.
}

TEST_F(EvaluatorTest, ProjectionDeduplicates) {
  // ?x <knows> ?y projected to ?x where x in {a,b,c}: 3 distinct.
  Query q = MustParse("SELECT ?x WHERE { ?x <knows> ?y . }");
  Result<Relation> r = evaluator_->EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 3u);

  // Projected to the object: b, c, a -> also 3; but <likes> objects dedup.
  Query q2 = MustParse("SELECT ?y WHERE { ?x <likes> ?y . }");
  Result<Relation> r2 = evaluator_->EvaluateCQ(q2.cq, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.ValueOrDie().num_rows(), 1u);  // Only b.
}

TEST_F(EvaluatorTest, EmptyResultKeepsSchema) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <knows> ?y . ?y <missing> ?x . }");
  Result<Relation> r = evaluator_->EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 0u);
  EXPECT_EQ(r.ValueOrDie().columns(), q.cq.head);
}

TEST_F(EvaluatorTest, AskQuery) {
  Query yes = MustParse("ASK WHERE { ?x <likes> ?x . }");
  Result<Relation> r = evaluator_->EvaluateCQ(yes.cq, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 1u);  // True.

  Query no = MustParse("ASK WHERE { ?x <hates> ?x . }");
  Result<Relation> r2 = evaluator_->EvaluateCQ(no.cq, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.ValueOrDie().num_rows(), 0u);  // False.
}

TEST_F(EvaluatorTest, Metricspopulated) {
  Query q = MustParse("SELECT ?x WHERE { ?x <knows> ?y . ?y <likes> ?y . }");
  EvalMetrics metrics;
  ASSERT_TRUE(evaluator_->EvaluateCQ(q.cq, &metrics).ok());
  EXPECT_EQ(metrics.rows_scanned, 5u);  // 3 knows + 2 likes.
  EXPECT_GT(metrics.join_input_rows, 0u);
  EXPECT_GE(metrics.elapsed_ms, 0.0);
}

TEST_F(EvaluatorTest, UcqUnionsAndDeduplicates) {
  Query a = MustParse("SELECT ?x ?y WHERE { ?x <knows> ?y . }");
  Query b = MustParse("SELECT ?x ?y WHERE { ?x <likes> ?y . }");
  UnionQuery ucq;
  ucq.head = a.cq.head;
  ucq.disjuncts.push_back(a.cq);
  // b parsed separately: same variable ids (x=0, y=1) by construction.
  ucq.disjuncts.push_back(b.cq);
  // Duplicate disjunct must not duplicate results.
  ucq.disjuncts.push_back(a.cq);

  Result<Relation> r = evaluator_->EvaluateUCQ(ucq, nullptr);
  ASSERT_TRUE(r.ok());
  // knows: (a,b),(b,c),(c,a); likes: (a,b),(b,b) — (a,b) is shared, so the
  // distinct union has 4 rows.
  EXPECT_EQ(r.ValueOrDie().num_rows(), 4u);
}

TEST_F(EvaluatorTest, UcqRespectsUnionTermLimit) {
  EngineProfile tight = profile_;
  tight.max_union_terms = 2;
  Evaluator limited(&store_, &tight);
  Query a = MustParse("SELECT ?x ?y WHERE { ?x <knows> ?y . }");
  UnionQuery ucq;
  ucq.head = a.cq.head;
  for (int i = 0; i < 3; ++i) ucq.disjuncts.push_back(a.cq);
  Result<Relation> r = limited.EvaluateUCQ(ucq, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kQueryTooComplex);
}

TEST_F(EvaluatorTest, JucqJoinsComponents) {
  Query a = MustParse("SELECT ?x ?y WHERE { ?x <knows> ?y . }");
  Query b = MustParse("SELECT ?x ?y WHERE { ?y <likes> ?y . ?x <knows> ?y }");
  // Component 1: knows(x,y); component 2: likes(y,y) with head (y).
  JoinOfUnions jucq;
  jucq.head = {0};  // ?x
  UnionQuery c1;
  c1.head = {0, 1};
  c1.disjuncts.push_back(a.cq);
  UnionQuery c2;
  c2.head = {1};
  ConjunctiveQuery likes;
  likes.head = {1};
  likes.atoms.push_back(b.cq.atoms[0]);
  c2.disjuncts.push_back(likes);
  jucq.components.push_back(c1);
  jucq.components.push_back(c2);

  Result<Relation> r = evaluator_->EvaluateJUCQ(jucq, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().num_rows(), 1u);
  EXPECT_EQ(r.ValueOrDie().at(0, 0), graph_.dict().LookupIri("a"));
}

TEST_F(EvaluatorTest, JucqMaterializationBudget) {
  EngineProfile tiny = profile_;
  tiny.max_materialized_cells = 1;  // Nothing fits.
  Evaluator limited(&store_, &tiny);
  Query a = MustParse("SELECT ?x ?y WHERE { ?x <knows> ?y . }");
  JoinOfUnions jucq;
  jucq.head = {0};
  UnionQuery c1;
  c1.head = {0, 1};
  c1.disjuncts.push_back(a.cq);
  jucq.components.push_back(c1);
  jucq.components.push_back(c1);
  Result<Relation> r = limited.EvaluateJUCQ(jucq, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EvaluatorTest, TimeoutFires) {
  EngineProfile instant = profile_;
  instant.timeout_seconds = 0.0;
  Evaluator limited(&store_, &instant);
  Query q = MustParse("SELECT ?x WHERE { ?x <knows> ?y . }");
  Result<Relation> r = limited.EvaluateCQ(q.cq, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(EvaluatorTest, ExplainCostIsFiniteAndMonotoneInTerms) {
  Statistics stats = Statistics::Compute(store_);
  CardinalityEstimator estimator(&store_, &stats);
  Query a = MustParse("SELECT ?x ?y WHERE { ?x <knows> ?y . }");
  JoinOfUnions small;
  small.head = {0, 1};
  UnionQuery c;
  c.head = {0, 1};
  c.disjuncts.push_back(a.cq);
  small.components.push_back(c);

  JoinOfUnions big = small;
  for (int i = 0; i < 50; ++i) big.components[0].disjuncts.push_back(a.cq);

  double cost_small = evaluator_->ExplainCost(small, estimator);
  double cost_big = evaluator_->ExplainCost(big, estimator);
  EXPECT_GT(cost_small, 0.0);
  EXPECT_GT(cost_big, cost_small);
}

TEST_F(EvaluatorTest, HeadBindingsEmitConstants) {
  // Disjunct q(x, y) :- x <knows> b with y bound to constant 42.
  Query a = MustParse("SELECT ?x ?y WHERE { ?x <knows> ?y . }");
  UnionQuery ucq;
  ucq.head = {0, 1};
  ConjunctiveQuery d;
  d.head = {0, 1};
  TriplePattern atom = a.cq.atoms[0];
  atom.o = PatternTerm::Const(graph_.dict().LookupIri("b"));
  d.atoms.push_back(atom);
  // Variable 1 no longer occurs in the atoms; the binding supplies it.
  d.head_bindings = {{1, 42}};
  ucq.disjuncts.push_back(d);
  Result<Relation> r = evaluator_->EvaluateUCQ(ucq, nullptr);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().num_rows(), 1u);
  EXPECT_EQ(r.ValueOrDie().at(0, 1), 42u);
}

}  // namespace
}  // namespace rdfopt
