// Differential suite for the batch execution engine (DESIGN.md §11): the
// vectorized engine (kBatchRows-wide operators, union-subplan factoring,
// radix-partitioned hash dedup) must produce the bit-identical row set AND
// row ordering of the seed tuple-at-a-time engine, at worker_threads 1 and
// 4, across the LUBM and DBLP evaluation query sets. Emulated per-row /
// per-term overheads are zeroed so the comparison exercises the real
// operator paths, not the latency model.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/evaluator.h"
#include "optimizer/cover.h"
#include "reformulation/reformulator.h"
#include "sparql/parser.h"
#include "workload/dblp.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

// Reformulations beyond this are skipped (a handful of the LUBM queries
// expand to hundreds of thousands of terms; they are covered by the plan
// limit tests, not here).
constexpr size_t kMaxTermsCompared = 4096;

struct Workload {
  Graph graph;
  TripleStore store;
};

Workload& Lubm() {
  static Workload& w = *[] {
    auto* w = new Workload();
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, &w->graph);
    w->graph.FinalizeSchema();
    w->store = TripleStore::Build(w->graph.data_triples());
    return w;
  }();
  return w;
}

Workload& Dblp() {
  static Workload& w = *[] {
    auto* w = new Workload();
    DblpOptions options;
    options.num_publications = 1500;
    GenerateDblp(options, &w->graph);
    w->graph.FinalizeSchema();
    w->store = TripleStore::Build(w->graph.data_triples());
    return w;
  }();
  return w;
}

/// The seed engine with the emulated latency model switched off: plans and
/// row-level behavior are those of the tuple engine, without the sleeps.
EngineProfile TupleProfile() {
  EngineProfile p = PostgresLikeProfile();
  p.tuple_us_per_row = 0.0;
  p.union_term_overhead_us = 0.0;
  p.materialization_us_per_row = 0.0;
  p.max_union_terms = 1u << 20;
  p.timeout_seconds = 300.0;
  return p;
}

/// The batch engine over the same base: vector_width = kBatchRows and
/// share_union_subplans = true (Vectorized also rescales the already-zero
/// overheads, a no-op here).
EngineProfile BatchProfile(size_t worker_threads) {
  EngineProfile p = Vectorized(TupleProfile());
  p.worker_threads = worker_threads;
  return p;
}

void ExpectIdenticalRelations(const Relation& a, const Relation& b,
                              const std::string& label) {
  ASSERT_EQ(a.columns(), b.columns()) << label;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.arity(); ++c) {
      ASSERT_EQ(a.at(r, c), b.at(r, c))
          << label << " row " << r << " col " << c;
    }
  }
}

/// Evaluates every in-range query of `set` under the tuple engine (the
/// reference) and under the batch engine at 1 and 4 workers, and requires
/// identical rows in identical order. `*compared` counts the queries
/// actually checked.
void RunDifferential(Workload* w, const std::vector<BenchmarkQuery>& set,
                     size_t* compared) {
  Reformulator reformulator(&w->graph.schema(), &w->graph.vocab());
  EngineProfile tuple_profile = TupleProfile();
  EngineProfile batch1 = BatchProfile(1);
  EngineProfile batch4 = BatchProfile(4);
  Evaluator tuple_engine(&w->store, &tuple_profile);
  Evaluator batch_engine1(&w->store, &batch1);
  Evaluator batch_engine4(&w->store, &batch4);

  *compared = 0;
  for (const BenchmarkQuery& bq : set) {
    Result<Query> parsed = ParseQuery(bq.text, &w->graph.dict());
    ASSERT_TRUE(parsed.ok()) << bq.name << ": " << parsed.status().ToString();
    Query q = parsed.TakeValue();
    Result<UnionQuery> ucq = reformulator.ReformulateCQ(q.cq, &q.vars);
    if (!ucq.ok() || ucq.ValueOrDie().size() > kMaxTermsCompared) {
      continue;  // Over the differential's term budget; skip, don't fail.
    }

    Result<Relation> reference =
        tuple_engine.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    ASSERT_TRUE(reference.ok())
        << bq.name << ": " << reference.status().ToString();
    Result<Relation> batch_seq =
        batch_engine1.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    ASSERT_TRUE(batch_seq.ok())
        << bq.name << ": " << batch_seq.status().ToString();
    Result<Relation> batch_par =
        batch_engine4.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    ASSERT_TRUE(batch_par.ok())
        << bq.name << ": " << batch_par.status().ToString();

    ExpectIdenticalRelations(reference.ValueOrDie(), batch_seq.ValueOrDie(),
                             bq.name + " (batch, 1 worker)");
    ExpectIdenticalRelations(reference.ValueOrDie(), batch_par.ValueOrDie(),
                             bq.name + " (batch, 4 workers)");
    ++*compared;
  }
}

TEST(BatchDifferentialTest, LubmQuerySetIdenticalRowsAndOrder) {
  size_t compared = 0;
  RunDifferential(&Lubm(), LubmQuerySet(), &compared);
  // Most of the 28 queries reformulate within the term budget; if this
  // drops, the suite silently lost its coverage.
  EXPECT_GE(compared, 20u);
}

TEST(BatchDifferentialTest, DblpQuerySetIdenticalRowsAndOrder) {
  size_t compared = 0;
  RunDifferential(&Dblp(), DblpQuerySet(), &compared);
  EXPECT_GE(compared, 6u);
}

TEST(BatchDifferentialTest, JucqScqCoverIdenticalAcrossEngines) {
  // The JUCQ path (per-component dedup + component joins + final project)
  // through the motivating q1 under its SCQ cover.
  Workload& w = Lubm();
  Result<Query> parsed = ParseQuery(LubmMotivatingQ1().text, &w.graph.dict());
  ASSERT_TRUE(parsed.ok());
  Query q = parsed.TakeValue();
  Reformulator reformulator(&w.graph.schema(), &w.graph.vocab());

  Cover cover = ScqCover(q.cq.atoms.size());
  VarTable vars = q.vars;
  Result<JoinOfUnions> jucq_result = CoverBasedReformulation(
      q.cq, cover, reformulator, &vars, /*max_disjuncts_per_fragment=*/1u << 20);
  ASSERT_TRUE(jucq_result.ok()) << jucq_result.status().ToString();
  const JoinOfUnions& jucq = jucq_result.ValueOrDie();

  EngineProfile tuple_profile = TupleProfile();
  EngineProfile batch = BatchProfile(4);
  Evaluator tuple_engine(&w.store, &tuple_profile);
  Evaluator batch_engine(&w.store, &batch);
  Result<Relation> reference = tuple_engine.EvaluateJUCQ(jucq, nullptr);
  Result<Relation> vectorized = batch_engine.EvaluateJUCQ(jucq, nullptr);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(vectorized.ok()) << vectorized.status().ToString();
  ExpectIdenticalRelations(reference.ValueOrDie(), vectorized.ValueOrDie(),
                           "q1 SCQ JUCQ");
}

}  // namespace
}  // namespace rdfopt
