#include "views/view_catalog.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cost/feedback.h"
#include "service/epoch_guard.h"
#include "views/view_advisor.h"

namespace rdfopt {
namespace {

// ---------------------------------------------------------------------------
// Helpers: tiny synthetic UCQ definitions and relations.
// ---------------------------------------------------------------------------

TriplePattern Atom(PatternTerm s, PatternTerm p, PatternTerm o) {
  TriplePattern a;
  a.s = s;
  a.p = p;
  a.o = o;
  return a;
}

/// q(?0) :- ?0 <p> ?1 — signatures differ by the property constant.
UnionQuery OneAtomUcq(ValueId p) {
  UnionQuery ucq;
  ucq.head = {0};
  ConjunctiveQuery d;
  d.head = {0};
  d.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(p), PatternTerm::Var(1)));
  ucq.disjuncts.push_back(d);
  return ucq;
}

Relation TwoColRelation(size_t rows, ValueId base = 100) {
  Relation r(std::vector<VarId>{0, 1});
  for (size_t i = 0; i < rows; ++i) {
    const ValueId row[2] = {static_cast<ValueId>(base + i),
                            static_cast<ValueId>(base + i + 1)};
    r.AppendRow(row);
  }
  return r;
}

/// Notes + offers `ucq`'s fragment at `epoch`; returns its signature.
std::string Admit(ViewCatalog* catalog, const UnionQuery& ucq, size_t rows,
                  Epoch epoch, double est_cost = 1000.0,
                  uint64_t observations = 1) {
  const std::string signature = ViewSignature(ucq);
  for (uint64_t i = 0; i < observations; ++i) {
    catalog->NoteComponent(signature, ucq, est_cost, ucq.size());
  }
  Relation r = TwoColRelation(rows);
  catalog->Offer(signature, r, epoch);
  return signature;
}

// ---------------------------------------------------------------------------
// ViewSignature: the keying contract (see cost/feedback.h).
// ---------------------------------------------------------------------------

TEST(ViewSignatureTest, InvariantUnderVariableRenaming) {
  UnionQuery a = OneAtomUcq(7);
  UnionQuery b = a;
  // Rename every variable: 0 -> 5, 1 -> 9.
  b.head = {5};
  b.disjuncts[0].head = {5};
  b.disjuncts[0].atoms[0].s = PatternTerm::Var(5);
  b.disjuncts[0].atoms[0].o = PatternTerm::Var(9);
  EXPECT_EQ(ViewSignature(a), ViewSignature(b));
}

TEST(ViewSignatureTest, SensitiveToConstantsHeadAndOrder) {
  UnionQuery base = OneAtomUcq(7);
  EXPECT_NE(ViewSignature(base), ViewSignature(OneAtomUcq(8)));

  // Head order matters: the head is the view's column layout.
  UnionQuery swapped = base;
  swapped.head = {1};
  swapped.disjuncts[0].head = {1};
  EXPECT_NE(ViewSignature(base), ViewSignature(swapped));

  // Disjunct order matters: the union's output order follows it.
  UnionQuery two = base;
  two.disjuncts.push_back(OneAtomUcq(8).disjuncts[0]);
  UnionQuery reversed = two;
  std::swap(reversed.disjuncts[0], reversed.disjuncts[1]);
  EXPECT_NE(ViewSignature(two), ViewSignature(reversed));

  // Head bindings are part of the result, hence of the key.
  UnionQuery bound = base;
  bound.disjuncts[0].head_bindings.emplace_back(1, ValueId{42});
  EXPECT_NE(ViewSignature(base), ViewSignature(bound));
}

// ---------------------------------------------------------------------------
// Catalog admission, lookup, eviction.
// ---------------------------------------------------------------------------

TEST(ViewCatalogTest, NoteOfferLookupRoundTrip) {
  ViewCatalog catalog;
  const std::string sig = Admit(&catalog, OneAtomUcq(7), 10, /*epoch=*/0);

  std::shared_ptr<const Relation> rows = catalog.Lookup(sig, 0);
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->num_rows(), 10u);
  EXPECT_EQ(rows->arity(), 2u);

  ViewCatalogStats stats = catalog.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ViewCatalogTest, OfferWithoutNoteIsRejected) {
  ViewCatalog catalog;
  Relation r = TwoColRelation(5);
  catalog.Offer("never-announced", r, 0);
  EXPECT_EQ(catalog.stats().rejected, 1u);
  EXPECT_EQ(catalog.Lookup("never-announced", 0), nullptr);
}

TEST(ViewCatalogTest, ZeroArityOfferIsRejected) {
  ViewCatalog catalog;
  UnionQuery ucq = OneAtomUcq(7);
  const std::string sig = ViewSignature(ucq);
  catalog.NoteComponent(sig, ucq, 10.0, 1);
  Relation boolean(std::vector<VarId>{});
  boolean.AppendEmptyRow();
  catalog.Offer(sig, boolean, 0);
  EXPECT_EQ(catalog.stats().rejected, 1u);
  EXPECT_EQ(catalog.Lookup(sig, 0), nullptr);
}

TEST(ViewCatalogTest, LookupFromAnotherEpochMisses) {
  ViewCatalog catalog;
  const std::string sig = Admit(&catalog, OneAtomUcq(7), 4, /*epoch=*/0);
  EXPECT_NE(catalog.Lookup(sig, 0), nullptr);
  EXPECT_EQ(catalog.Lookup(sig, 1), nullptr);
  EXPECT_EQ(catalog.stats().misses, 1u);
}

TEST(ViewCatalogTest, ByteBudgetEvictsLeastRecentlyUsed) {
  ViewCatalogOptions options;
  options.byte_budget = 2000;  // Fits two ~890-byte entries, not three.
  ViewCatalog catalog(options);
  const std::string a = Admit(&catalog, OneAtomUcq(1), 100, 0);
  const std::string b = Admit(&catalog, OneAtomUcq(2), 100, 0);
  ASSERT_NE(catalog.Lookup(a, 0), nullptr);  // Touch a: b becomes coldest.
  const std::string c = Admit(&catalog, OneAtomUcq(3), 100, 0);
  EXPECT_NE(catalog.Lookup(a, 0), nullptr);
  EXPECT_EQ(catalog.Lookup(b, 0), nullptr);
  EXPECT_NE(catalog.Lookup(c, 0), nullptr);
  EXPECT_EQ(catalog.stats().evictions, 1u);
  // The evicted entry's observation survives in the ledger.
  EXPECT_EQ(catalog.stats().entries, 3u);
}

TEST(ViewCatalogTest, EvictedRowsStayAliveForHolders) {
  ViewCatalogOptions options;
  options.byte_budget = 1000;  // One ~890-byte entry at a time.
  ViewCatalog catalog(options);
  const std::string a = Admit(&catalog, OneAtomUcq(1), 100, 0);
  std::shared_ptr<const Relation> held = catalog.Lookup(a, 0);
  ASSERT_NE(held, nullptr);
  Admit(&catalog, OneAtomUcq(2), 100, 0);  // Evicts a.
  EXPECT_EQ(catalog.Lookup(a, 0), nullptr);
  EXPECT_EQ(held->num_rows(), 100u);  // The substituted plan keeps its rows.
}

TEST(ViewCatalogTest, PinnedEntriesSurviveBudgetPressure) {
  ViewCatalogOptions options;
  options.byte_budget = 2000;
  ViewCatalog catalog(options);
  const std::string pinned = Admit(&catalog, OneAtomUcq(1), 100, 0);
  ASSERT_TRUE(catalog.SetPinned(pinned, true));
  Admit(&catalog, OneAtomUcq(2), 100, 0);
  Admit(&catalog, OneAtomUcq(3), 100, 0);  // Evicts #2, never the pin.
  EXPECT_NE(catalog.Lookup(pinned, 0), nullptr);
  EXPECT_EQ(catalog.stats().pinned, 1u);
}

// ---------------------------------------------------------------------------
// Epoch maintenance: invalidation, carry-forward, refresh, the off-by-one
// race through the shared guard.
// ---------------------------------------------------------------------------

TEST(EpochGuardTest, OnlyTheExactCurrentEpochIsAdmissible) {
  EXPECT_TRUE(EpochWriteAdmissible(3, 3));
  EXPECT_FALSE(EpochWriteAdmissible(2, 3));  // Stale writer.
  EXPECT_FALSE(EpochWriteAdmissible(4, 3));  // Writer ahead of the store.
}

TEST(ViewCatalogTest, StaleOfferFromOldEpochIsRejected) {
  ViewCatalog catalog;
  UnionQuery ucq = OneAtomUcq(7);
  const std::string sig = ViewSignature(ucq);

  // A request pins epoch 0 and announces the fragment...
  EpochViewResolver request(&catalog, /*epoch=*/0);
  request.NoteComponent(sig, ucq, 10.0, 1);

  // ...an update moves the catalog to epoch 1 while the request executes...
  catalog.BeginEpoch(1, {}, /*delta_is_complete=*/true);

  // ...and the request's late Offer must be dropped, not served to epoch 1.
  Relation rows = TwoColRelation(5);
  request.Offer(sig, rows);
  EXPECT_EQ(catalog.stats().stale_offers, 1u);
  EXPECT_EQ(catalog.Lookup(sig, 1), nullptr);
  EXPECT_EQ(catalog.Lookup(sig, 0), nullptr);
}

TEST(ViewCatalogTest, BeginEpochDropsUnpinnedMaterializations) {
  ViewCatalog catalog;
  const std::string sig = Admit(&catalog, OneAtomUcq(7), 5, 0);
  ASSERT_NE(catalog.Lookup(sig, 0), nullptr);
  std::vector<ViewCatalog::RefreshTask> tasks =
      catalog.BeginEpoch(1, {}, /*delta_is_complete=*/true);
  EXPECT_TRUE(tasks.empty());  // Nothing pinned, nothing to refresh.
  EXPECT_EQ(catalog.Lookup(sig, 1), nullptr);
  EXPECT_EQ(catalog.stats().invalidations, 1u);
  EXPECT_EQ(catalog.stats().bytes, 0u);
}

TEST(ViewCatalogTest, PinnedViewCarriesForwardWhenDeltaCannotTouchIt) {
  ViewCatalog catalog;
  const std::string sig = Admit(&catalog, OneAtomUcq(7), 5, 0);
  ASSERT_TRUE(catalog.SetPinned(sig, true));

  // Delta on a different property: no atom of the view matches it.
  Triple t;
  t.s = 1;
  t.p = 99;
  t.o = 2;
  std::vector<ViewCatalog::RefreshTask> tasks =
      catalog.BeginEpoch(1, {t}, /*delta_is_complete=*/true);
  EXPECT_TRUE(tasks.empty());
  EXPECT_NE(catalog.Lookup(sig, 1), nullptr);  // Adopted by the new epoch.
  EXPECT_EQ(catalog.stats().carry_forwards, 1u);
}

TEST(ViewCatalogTest, PinnedViewTouchedByDeltaIsHandedBackForRefresh) {
  ViewCatalog catalog;
  UnionQuery ucq = OneAtomUcq(7);
  const std::string sig = Admit(&catalog, ucq, 5, 0);
  ASSERT_TRUE(catalog.SetPinned(sig, true));

  Triple t;
  t.s = 1;
  t.p = 7;  // Matches the view's property constant.
  t.o = 2;
  std::vector<ViewCatalog::RefreshTask> tasks =
      catalog.BeginEpoch(1, {t}, /*delta_is_complete=*/true);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].signature, sig);
  EXPECT_EQ(ViewSignature(tasks[0].definition), sig);
  EXPECT_EQ(catalog.Lookup(sig, 1), nullptr);  // Stale rows dropped.

  // Maintenance completes the task against the new snapshot.
  catalog.InstallPinned(sig, TwoColRelation(9), 1);
  std::shared_ptr<const Relation> rows = catalog.Lookup(sig, 1);
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->num_rows(), 9u);
  EXPECT_EQ(catalog.stats().refreshes, 1u);
}

TEST(ViewCatalogTest, SchemaEpochForcesWholesaleRefresh) {
  ViewCatalog catalog;
  const std::string sig = Admit(&catalog, OneAtomUcq(7), 5, 0);
  ASSERT_TRUE(catalog.SetPinned(sig, true));
  // delta_is_complete=false: the caller cannot enumerate what changed.
  std::vector<ViewCatalog::RefreshTask> tasks =
      catalog.BeginEpoch(1, {}, /*delta_is_complete=*/false);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].signature, sig);
}

TEST(ViewCatalogTest, InstallPinnedFromOldEpochIsRejected) {
  ViewCatalog catalog;
  const std::string sig = Admit(&catalog, OneAtomUcq(7), 5, 0);
  ASSERT_TRUE(catalog.SetPinned(sig, true));
  catalog.BeginEpoch(1, {}, /*delta_is_complete=*/false);
  catalog.BeginEpoch(2, {}, /*delta_is_complete=*/false);
  // A refresh raced a second update: its epoch-1 result must not land.
  catalog.InstallPinned(sig, TwoColRelation(9), 1);
  EXPECT_EQ(catalog.Lookup(sig, 2), nullptr);
  EXPECT_EQ(catalog.Lookup(sig, 1), nullptr);
  EXPECT_GE(catalog.stats().stale_offers, 1u);
}

// ---------------------------------------------------------------------------
// Advisor: scoring, promotion, demotion.
// ---------------------------------------------------------------------------

TEST(ViewAdvisorTest, PromotesHottestFragmentsUpToTheLimit) {
  ViewCatalog catalog;
  // Three resident fragments: observations 5, 4 and 1 (same size/cost).
  const std::string hot = Admit(&catalog, OneAtomUcq(1), 10, 0, 1000.0, 5);
  const std::string warm = Admit(&catalog, OneAtomUcq(2), 10, 0, 1000.0, 4);
  const std::string cold = Admit(&catalog, OneAtomUcq(3), 10, 0, 1000.0, 1);

  ViewAdvisorOptions options;
  options.pin_limit = 2;
  options.min_observations = 3;
  ViewAdvisor advisor(options);
  ViewAdvisor::PassResult result = advisor.RunPass(&catalog);
  EXPECT_EQ(result.considered, 3u);
  EXPECT_EQ(result.promoted, 2u);
  EXPECT_EQ(result.demoted, 0u);

  std::vector<ViewInfo> entries = catalog.Entries();
  ASSERT_EQ(entries.size(), 3u);
  for (const ViewInfo& info : entries) {
    const bool expect_pinned =
        info.signature == hot || info.signature == warm;
    EXPECT_EQ(info.pinned, expect_pinned) << info.signature;
    (void)cold;
  }

  // A second pass over the unchanged ledger is a no-op (idempotent).
  result = advisor.RunPass(&catalog);
  EXPECT_EQ(result.promoted, 0u);
  EXPECT_EQ(result.demoted, 0u);
}

TEST(ViewAdvisorTest, DemotesPinnedFragmentWhenOutranked) {
  ViewCatalog catalog;
  ViewAdvisorOptions options;
  options.pin_limit = 1;
  options.min_observations = 1;
  ViewAdvisor advisor(options);

  const std::string first = Admit(&catalog, OneAtomUcq(1), 10, 0, 1000.0, 2);
  advisor.RunPass(&catalog);
  EXPECT_EQ(catalog.stats().pinned, 1u);

  // A much hotter fragment appears; the single pin slot changes hands.
  const std::string second =
      Admit(&catalog, OneAtomUcq(2), 10, 0, 1000.0, 10);
  ViewAdvisor::PassResult result = advisor.RunPass(&catalog);
  EXPECT_EQ(result.promoted, 1u);
  EXPECT_EQ(result.demoted, 1u);
  for (const ViewInfo& info : catalog.Entries()) {
    EXPECT_EQ(info.pinned, info.signature == second) << info.signature;
    (void)first;
  }
}

TEST(ViewAdvisorTest, ObservationFloorBlocksOneOffQueries) {
  ViewCatalog catalog;
  Admit(&catalog, OneAtomUcq(1), 10, 0, 1000.0, /*observations=*/2);
  ViewAdvisorOptions options;
  options.min_observations = 3;
  ViewAdvisor advisor(options);
  ViewAdvisor::PassResult result = advisor.RunPass(&catalog);
  EXPECT_EQ(result.considered, 1u);
  EXPECT_EQ(result.promoted, 0u);
  EXPECT_EQ(catalog.stats().pinned, 0u);
}

TEST(ViewAdvisorTest, ScorePrefersExpensiveFrequentAndSmall) {
  ViewInfo a;
  a.observations = 10;
  a.est_cost = 1000.0;
  a.bytes = 100;
  ViewInfo b = a;
  b.observations = 5;  // Less frequent.
  EXPECT_GT(ViewAdvisor::Score(a), ViewAdvisor::Score(b));
  b = a;
  b.est_cost = 10.0;  // Cheaper to recompute.
  EXPECT_GT(ViewAdvisor::Score(a), ViewAdvisor::Score(b));
  b = a;
  b.bytes = 100000;  // More expensive to keep.
  EXPECT_GT(ViewAdvisor::Score(a), ViewAdvisor::Score(b));
}

}  // namespace
}  // namespace rdfopt
