#include "common/status.h"

#include <gtest/gtest.h>

namespace rdfopt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kQueryTooComplex),
               "QueryTooComplex");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

// Admission-control rejections must be distinguishable from evaluation
// errors: a shed request (kResourceExhausted), a request whose deadline
// passed while queued (kDeadlineExceeded) and an evaluation that ran out of
// time (kTimeout) are three different codes.
TEST(StatusTest, AdmissionCodesAreDistinct) {
  Status shed = Status::ResourceExhausted("admission queue full");
  Status late = Status::DeadlineExceeded("deadline passed while queued");
  Status slow = Status::Timeout("evaluation exceeded budget");
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(shed.code(), late.code());
  EXPECT_NE(late.code(), slow.code());
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: deadline passed while queued");
}

TEST(StatusTest, DeadlineExceededFactory) {
  Status s = Status::DeadlineExceeded("too late");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "too late");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "hello");
}

Status Fails() { return Status::Timeout("too slow"); }
Status Propagates() {
  RDFOPT_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kTimeout);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Status UseHalf(int x, int* out) {
  RDFOPT_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rdfopt
