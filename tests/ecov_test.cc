#include "optimizer/ecov.h"

#include <set>

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "sparql/parser.h"

namespace rdfopt {
namespace {

// A star query of n atoms (all share ?a): the join graph is a clique, so
// every subset is connected and cover enumeration matches the pure
// set-cover combinatorics.
Query StarQuery(size_t n, Dictionary* dict) {
  std::string text = "SELECT ?a WHERE {";
  for (size_t i = 0; i < n; ++i) {
    text += " ?a <p" + std::to_string(i) + "> ?v" + std::to_string(i) + " .";
  }
  text += " }";
  Result<Query> q = ParseQuery(text, dict);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.TakeValue();
}

// Chain query: atom i shares a variable only with atoms i-1 and i+1.
Query ChainQuery(size_t n, Dictionary* dict) {
  std::string text = "SELECT ?v0 WHERE {";
  for (size_t i = 0; i < n; ++i) {
    text += " ?v" + std::to_string(i) + " <p" + std::to_string(i) + "> ?v" +
            std::to_string(i + 1) + " .";
  }
  text += " }";
  Result<Query> q = ParseQuery(text, dict);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.TakeValue();
}

size_t CountCovers(const ConjunctiveQuery& cq) {
  bool timed_out = false;
  std::vector<Cover> covers = EnumerateCovers(cq, 60.0, 10'000'000,
                                              &timed_out);
  EXPECT_FALSE(timed_out);
  return covers.size();
}

// The paper (§3) cites the number of minimal covers of an n-element set:
// 1 (n=1), 49 (n=4), 462 (n=5), 6424 (n=6). With a clique join graph our
// enumeration must reproduce exactly these counts.
TEST(EnumerateCoversTest, MinimalCoverCountsMatchThePaper) {
  Dictionary dict;
  EXPECT_EQ(CountCovers(StarQuery(1, &dict).cq), 1u);
  EXPECT_EQ(CountCovers(StarQuery(2, &dict).cq), 2u);
  EXPECT_EQ(CountCovers(StarQuery(3, &dict).cq), 8u);
  EXPECT_EQ(CountCovers(StarQuery(4, &dict).cq), 49u);
  EXPECT_EQ(CountCovers(StarQuery(5, &dict).cq), 462u);
  EXPECT_EQ(CountCovers(StarQuery(6, &dict).cq), 6424u);
}

// "In practice, however, we require each fragment to share a variable with
// another ... therefore the number of cover-based reformulations is smaller
// than the number of minimal covers" (§3): the chain join graph must yield
// strictly fewer covers than the clique.
TEST(EnumerateCoversTest, ConnectivityShrinksTheSpace) {
  Dictionary dict;
  size_t chain4 = CountCovers(ChainQuery(4, &dict).cq);
  EXPECT_LT(chain4, 49u);
  EXPECT_GE(chain4, 1u);
  size_t chain5 = CountCovers(ChainQuery(5, &dict).cq);
  EXPECT_LT(chain5, 462u);
}

TEST(EnumerateCoversTest, AllEnumeratedCoversAreValid) {
  Dictionary dict;
  Query q = ChainQuery(4, &dict);
  bool timed_out = false;
  std::vector<Cover> covers = EnumerateCovers(q.cq, 60.0, 1'000'000,
                                              &timed_out);
  for (const Cover& cover : covers) {
    EXPECT_TRUE(ValidateCover(q.cq, cover).ok()) << cover.Key();
  }
}

TEST(EnumerateCoversTest, CoversAreDistinct) {
  Dictionary dict;
  Query q = StarQuery(5, &dict);
  bool timed_out = false;
  std::vector<Cover> covers = EnumerateCovers(q.cq, 60.0, 1'000'000,
                                              &timed_out);
  std::set<std::string> keys;
  for (const Cover& cover : covers) keys.insert(cover.Key());
  EXPECT_EQ(keys.size(), covers.size());
}

TEST(EnumerateCoversTest, SingleAtom) {
  Dictionary dict;
  Query q = StarQuery(1, &dict);
  bool timed_out = false;
  std::vector<Cover> covers = EnumerateCovers(q.cq, 60.0, 100, &timed_out);
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0].fragments, (std::vector<std::vector<int>>{{0}}));
}

// Cost oracle preferring a specific cover; ECov must find it.
class RiggedOracle : public CoverCostOracle {
 public:
  explicit RiggedOracle(std::string preferred_key)
      : preferred_key_(std::move(preferred_key)) {}
  double CoverCost(const Cover& cover) override {
    ++calls;
    return cover.Key() == preferred_key_ ? 1.0 : 100.0;
  }
  double FragmentCost(const std::vector<int>&) override { return 1.0; }
  size_t calls = 0;
  std::string preferred_key_;
};

TEST(ExhaustiveCoverSearchTest, FindsTheRiggedOptimum) {
  Dictionary dict;
  Query q = ChainQuery(4, &dict);
  Cover preferred;
  preferred.fragments = {{0, 1}, {2, 3}};
  preferred.Canonicalize();
  RiggedOracle oracle(preferred.Key());
  CoverSearchResult result = ExhaustiveCoverSearch(q.cq, &oracle, 60.0);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.best_cover.Key(), preferred.Key());
  EXPECT_DOUBLE_EQ(result.best_cost, 1.0);
  EXPECT_EQ(result.covers_examined, oracle.calls);
  EXPECT_GT(result.covers_examined, 1u);
}

TEST(ExhaustiveCoverSearchTest, TimesOutOnTenAtomStar) {
  // Ten clique-connected atoms: the space is far too large to exhaust in a
  // few milliseconds (the paper's ECov times out on the 10-atom DBLP Q10).
  Dictionary dict;
  Query q = StarQuery(10, &dict);
  RiggedOracle oracle("none");
  CoverSearchResult result = ExhaustiveCoverSearch(q.cq, &oracle, 0.05);
  EXPECT_TRUE(result.timed_out);
}

}  // namespace
}  // namespace rdfopt
