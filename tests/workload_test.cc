#include <gtest/gtest.h>

#include "sparql/parser.h"
#include "workload/dblp.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

TEST(WorkloadRngTest, DeterministicAndBounded) {
  WorkloadRng a(42);
  WorkloadRng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  WorkloadRng c(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = c.Between(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(WorkloadRngTest, ChanceIsRoughlyCalibrated) {
  WorkloadRng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Chance(0.25) ? 1 : 0;
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

TEST(LubmGeneratorTest, DeterministicAcrossRuns) {
  Graph a;
  Graph b;
  LubmOptions options;
  options.num_universities = 1;
  size_t na = GenerateLubm(options, &a);
  size_t nb = GenerateLubm(options, &b);
  EXPECT_EQ(na, nb);
  ASSERT_EQ(a.data_triples().size(), b.data_triples().size());
  for (size_t i = 0; i < a.data_triples().size(); ++i) {
    EXPECT_EQ(a.data_triples()[i], b.data_triples()[i]);
  }
}

TEST(LubmGeneratorTest, ScalesWithUniversities) {
  Graph small;
  Graph large;
  LubmOptions one;
  one.num_universities = 1;
  LubmOptions three;
  three.num_universities = 3;
  size_t n1 = GenerateLubm(one, &small);
  size_t n3 = GenerateLubm(three, &large);
  EXPECT_GT(n3, 2 * n1);
  EXPECT_LT(n3, 4 * n1);
}

TEST(LubmGeneratorTest, StableEntryPointIrisExist) {
  Graph g;
  LubmOptions options;
  options.num_universities = 2;
  GenerateLubm(options, &g);
  EXPECT_NE(g.dict().LookupIri("http://lubm.example.org/data/univ0"),
            kInvalidValueId);
  EXPECT_NE(g.dict().LookupIri("http://lubm.example.org/data/univ0/dept0"),
            kInvalidValueId);
  EXPECT_NE(g.dict().LookupIri("http://lubm.example.org/data/univ1"),
            kInvalidValueId);
}

TEST(LubmGeneratorTest, SchemaIsRichEnough) {
  Graph g;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &g);
  g.FinalizeSchema();
  // LUBM-like richness: tens of classes, >= 14 constrained properties.
  EXPECT_GE(g.schema().AllClasses().size(), 35u);
  EXPECT_GE(g.schema().AllProperties().size(), 14u);
  // The subclass hierarchy has depth >= 4 (Person > Employee > Faculty >
  // Professor > FullProfessor).
  ValueId full = g.dict().LookupIri(
      "http://lubm.example.org/univ#FullProfessor");
  ASSERT_NE(full, kInvalidValueId);
  EXPECT_GE(g.schema().SuperClassesOf(full).size(), 5u);
}

TEST(LubmGeneratorTest, TripleTargetSizing) {
  EXPECT_EQ(LubmOptionsForTripleTarget(1).num_universities, 1u);
  size_t u = LubmOptionsForTripleTarget(1000 * 1000).num_universities;
  EXPECT_GE(u, 10u);
  EXPECT_LE(u, 30u);
}

TEST(DblpGeneratorTest, DeterministicAndScaled) {
  Graph a;
  DblpOptions options;
  options.num_publications = 500;
  size_t na = GenerateDblp(options, &a);
  Graph b;
  size_t nb = GenerateDblp(options, &b);
  EXPECT_EQ(na, nb);
  EXPECT_GT(na, 2000u);  // Several triples per publication.
  a.FinalizeSchema();
  EXPECT_GE(a.schema().AllClasses().size(), 18u);
  EXPECT_GE(a.schema().AllProperties().size(), 8u);
  EXPECT_NE(a.dict().LookupIri("http://dblp.example.org/rec/venue0"),
            kInvalidValueId);
}

TEST(QuerySetTest, SizesAndNames) {
  EXPECT_EQ(LubmQuerySet().size(), 28u);
  EXPECT_EQ(DblpQuerySet().size(), 10u);
  EXPECT_EQ(LubmQuerySet()[0].name, "Q01");
  EXPECT_EQ(LubmQuerySet()[27].name, "Q28");
  EXPECT_EQ(LubmMotivatingQ1().name, "Q07");
  EXPECT_EQ(LubmMotivatingQ2().name, "Q28");
}

TEST(QuerySetTest, AllQueriesParseAgainstTheirWorkload) {
  Graph lubm;
  LubmOptions lopt;
  lopt.num_universities = 1;
  GenerateLubm(lopt, &lubm);
  for (const BenchmarkQuery& q : LubmQuerySet()) {
    Result<Query> parsed = ParseQuery(q.text, &lubm.dict());
    ASSERT_TRUE(parsed.ok()) << q.name << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed.ValueOrDie().cq.IsConnected()) << q.name;
    EXPECT_GE(parsed.ValueOrDie().num_atoms(), 1u) << q.name;
  }

  Graph dblp;
  DblpOptions dopt;
  dopt.num_publications = 100;
  GenerateDblp(dopt, &dblp);
  for (const BenchmarkQuery& q : DblpQuerySet()) {
    Result<Query> parsed = ParseQuery(q.text, &dblp.dict());
    ASSERT_TRUE(parsed.ok()) << q.name << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed.ValueOrDie().cq.IsConnected()) << q.name;
  }
}

TEST(QuerySetTest, QueriesSpanAtomCountsOneToTen) {
  Graph lubm;
  LubmOptions lopt;
  lopt.num_universities = 1;
  GenerateLubm(lopt, &lubm);
  size_t min_atoms = 100;
  size_t max_atoms = 0;
  for (const BenchmarkQuery& q : LubmQuerySet()) {
    Result<Query> parsed = ParseQuery(q.text, &lubm.dict());
    ASSERT_TRUE(parsed.ok());
    min_atoms = std::min(min_atoms, parsed.ValueOrDie().num_atoms());
    max_atoms = std::max(max_atoms, parsed.ValueOrDie().num_atoms());
  }
  EXPECT_EQ(min_atoms, 1u);
  EXPECT_GE(max_atoms, 6u);

  Graph dblp;
  DblpOptions dopt;
  dopt.num_publications = 100;
  GenerateDblp(dopt, &dblp);
  Result<Query> q10 = ParseQuery(DblpQuerySet()[9].text, &dblp.dict());
  ASSERT_TRUE(q10.ok());
  EXPECT_EQ(q10.ValueOrDie().num_atoms(), 10u);
}

}  // namespace
}  // namespace rdfopt
