// Static plan verification (engine/plan_verifier.h): every plan the
// planner builds — CQ chains, reformulation unions, shared-subplan and
// hierarchy-range variants, over-limit plans, full JUCQ covers — must
// verify clean; and a corruption matrix of targeted mutations over those
// same plans must each be rejected under the expected invariant rule.

#include "engine/plan_verifier.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "engine/evaluator.h"
#include "rdf/hierarchy_encoding.h"
#include "optimizer/answering.h"
#include "rdf/graph.h"
#include "reasoner/saturation.h"
#include "reformulation/reformulator.h"
#include "sparql/parser.h"
#include "storage/statistics.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

/// Fine-grained LUBM (48 specialty leaf classes): reformulations fan out to
/// ~50-term unions, and the attached hierarchy encoding lets the
/// hierarchy-range profile collapse them into ScanRange intervals.
struct Workload {
  Graph graph;
  TripleStore store;
  SaturationResult sat;
  Statistics stats;

  Workload() {
    LubmOptions options;
    options.num_universities = 1;
    options.fine_grained_specializations = 48;
    GenerateLubm(options, &graph);
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
    store.AttachHierarchy(std::make_shared<const HierarchyEncoding>(
        HierarchyEncoding::Build(graph.schema(), graph.vocab().rdf_type)));
    sat = Saturate(store, graph.schema(), graph.vocab());
    stats = Statistics::Compute(store);
  }
};

Workload& Lubm() {
  static Workload& w = *new Workload();
  return w;
}

/// Postgres-like with the emulated latency model zeroed.
EngineProfile Fast() {
  EngineProfile p = PostgresLikeProfile();
  p.tuple_us_per_row = 0.0;
  p.union_term_overhead_us = 0.0;
  p.materialization_us_per_row = 0.0;
  p.max_union_terms = 1u << 20;
  p.timeout_seconds = 300.0;
  return p;
}

EngineProfile FastVector(bool hierarchy_ranges = false) {
  EngineProfile p = Vectorized(Fast());
  p.hierarchy_ranges = hierarchy_ranges;
  return p;
}

PlanNode* FindKind(PlanNode* node, PlanNodeKind kind) {
  if (node == nullptr) return nullptr;
  if (node->kind == kind) return node;
  for (auto& child : node->children) {
    if (PlanNode* found = FindKind(child.get(), kind)) return found;
  }
  return nullptr;
}

PlanNode* FindKind(PhysicalPlan* plan, PlanNodeKind kind) {
  for (auto& shared : plan->shared_subplans) {
    if (PlanNode* found = FindKind(shared.get(), kind)) return found;
  }
  return FindKind(plan->root.get(), kind);
}

/// Minimal in-test view resolver: remembers every offered fragment result
/// and serves it back on Lookup, so the second plan of the same UCQ carries
/// a kViewScan.
class StubViewResolver : public ViewResolver {
 public:
  void NoteComponent(const std::string&, const UnionQuery&, double,
                     size_t) override {}
  std::shared_ptr<const Relation> Lookup(
      const std::string& signature) override {
    auto it = store_.find(signature);
    return it == store_.end() ? nullptr : it->second;
  }
  void Offer(const std::string& signature, const Relation& rows) override {
    store_[signature] = std::make_shared<const Relation>(rows.Copy());
  }

 private:
  std::unordered_map<std::string, std::shared_ptr<const Relation>> store_;
};

bool HasRule(const PlanVerifyResult& result, const std::string& rule) {
  for (const PlanViolation& v : result.violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

class PlanVerifierTest : public ::testing::Test {
 protected:
  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &Lubm().graph.dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }

  UnionQuery Reformulate(Query* query) {
    Reformulator reformulator(&Lubm().graph.schema(), &Lubm().graph.vocab());
    Result<UnionQuery> ucq =
        reformulator.ReformulateCQ(query->cq, &query->vars);
    EXPECT_TRUE(ucq.ok()) << ucq.status().ToString();
    return ucq.TakeValue();
  }

  /// A verified-clean UCQ plan of the ub:Professor type query under
  /// `profile`; ~50 disjuncts in the fine-grained workload.
  PhysicalPlan ProfessorUcqPlan(const EngineProfile& profile) {
    Query q = MustParse(LubmQuerySet()[1].text);  // Q02: rdf:type Professor.
    UnionQuery ucq = Reformulate(&q);
    EXPECT_GT(ucq.size(), 10u);
    Evaluator engine(&Lubm().store, &profile);
    PhysicalPlan plan = engine.planner().PlanUCQ(ucq);
    PlanVerifyResult clean = VerifyPlan(plan, &Lubm().store,
                                        &Lubm().graph.dict());
    EXPECT_TRUE(clean.ok()) << clean.ToString();
    return plan;
  }

  /// A verified-clean plan containing kSharedRef nodes: the multi-atom
  /// motivating query under the batch profile, whose disjuncts repeat
  /// scans the planner factors into execute-once shared subplans.
  /// (Single-atom unions like the Professor query have nothing to share.)
  PhysicalPlan SharedUcqPlan() {
    Query q = MustParse(LubmQuerySet()[6].text);
    UnionQuery ucq = Reformulate(&q);
    const EngineProfile profile = FastVector();
    Evaluator engine(&Lubm().store, &profile);
    PhysicalPlan plan = engine.planner().PlanUCQ(ucq);
    EXPECT_FALSE(plan.shared_subplans.empty());
    PlanVerifyResult clean = VerifyPlan(plan, &Lubm().store,
                                        &Lubm().graph.dict());
    EXPECT_TRUE(clean.ok()) << clean.ToString();
    return plan;
  }

  /// A verified-clean plan whose Professor union is substituted by a
  /// kViewScan: plan once to harvest the fragment into `resolver`, execute
  /// to offer the rows, then plan again to substitute.
  PhysicalPlan ViewScanUcqPlan(StubViewResolver* resolver) {
    Query q = MustParse(LubmQuerySet()[1].text);
    UnionQuery ucq = Reformulate(&q);
    const EngineProfile profile = Fast();
    Evaluator engine(&Lubm().store, &profile);
    engine.set_views(resolver);
    PhysicalPlan first = engine.planner().PlanUCQ(ucq);
    EvalMetrics metrics;
    Result<Relation> rows = engine.ExecutePlan(&first, &metrics);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    PhysicalPlan plan = engine.planner().PlanUCQ(ucq);
    EXPECT_NE(FindKind(&plan, PlanNodeKind::kViewScan), nullptr)
        << "second plan of the same UCQ did not substitute the view";
    PlanVerifyResult clean =
        VerifyPlan(plan, &Lubm().store, &Lubm().graph.dict());
    EXPECT_TRUE(clean.ok()) << clean.ToString();
    return plan;
  }

  /// Expects `plan` to be rejected with at least one violation under
  /// `rule`; returns the result for further inspection.
  PlanVerifyResult ExpectRejected(const PhysicalPlan& plan,
                                  const std::string& rule) {
    PlanVerifyResult result =
        VerifyPlan(plan, &Lubm().store, &Lubm().graph.dict());
    EXPECT_FALSE(result.ok())
        << "corrupted plan passed verification (expected rule '" << rule
        << "')";
    EXPECT_TRUE(HasRule(result, rule))
        << "expected a '" << rule << "' violation, got:\n"
        << result.ToString();
    return result;
  }
};

// ---------------------------------------------------------------------------
// Every planner output verifies clean.

TEST_F(PlanVerifierTest, PlannerPlansVerifyCleanAcrossProfiles) {
  const EngineProfile plain = Fast();
  const EngineProfile vector = FastVector();
  const EngineProfile ranges = FastVector(/*hierarchy_ranges=*/true);
  // Single-atom small and large fan-out, plus the multi-atom motivating
  // query; plain, batch+shared, and hierarchy-range engines.
  for (size_t qi : {size_t{0}, size_t{1}, size_t{6}}) {
    Query q = MustParse(LubmQuerySet()[qi].text);
    UnionQuery ucq = Reformulate(&q);
    for (const EngineProfile* profile : {&plain, &vector, &ranges}) {
      Evaluator engine(&Lubm().store, profile);
      PhysicalPlan cq_plan = engine.planner().PlanCQ(q.cq);
      PlanVerifyResult cq_result =
          VerifyPlan(cq_plan, &Lubm().store, &Lubm().graph.dict());
      EXPECT_TRUE(cq_result.ok())
          << LubmQuerySet()[qi].name << " CQ / " << profile->name << ":\n"
          << cq_result.ToString();
      PhysicalPlan ucq_plan = engine.planner().PlanUCQ(ucq);
      PlanVerifyResult ucq_result =
          VerifyPlan(ucq_plan, &Lubm().store, &Lubm().graph.dict());
      EXPECT_TRUE(ucq_result.ok())
          << LubmQuerySet()[qi].name << " UCQ / " << profile->name << ":\n"
          << ucq_result.ToString();
    }
  }
}

TEST_F(PlanVerifierTest, SharedSubplanPlansVerifyClean) {
  // SharedUcqPlan verifies clean internally; pin that factoring actually
  // produced kSharedRef nodes so the shared-resolution rules were hit.
  PhysicalPlan plan = SharedUcqPlan();
  ASSERT_NE(FindKind(&plan, PlanNodeKind::kSharedRef), nullptr);
}

TEST_F(PlanVerifierTest, ScanRangePlansVerifyClean) {
  PhysicalPlan plan = ProfessorUcqPlan(FastVector(/*hierarchy_ranges=*/true));
  ASSERT_NE(FindKind(&plan, PlanNodeKind::kScanRange), nullptr)
      << "hierarchy profile built no ScanRange node; collapse regressed?";
}

TEST_F(PlanVerifierTest, OverLimitPlansVerifyClean) {
  EngineProfile tight = Fast();
  tight.max_union_terms = 4;
  Query q = MustParse(LubmQuerySet()[1].text);
  UnionQuery ucq = Reformulate(&q);
  ASSERT_GT(ucq.size(), 4u);
  Evaluator engine(&Lubm().store, &tight);
  PhysicalPlan plan = engine.planner().PlanUCQ(ucq);
  ASSERT_FALSE(plan.feasibility.ok());
  PlanVerifyResult result =
      VerifyPlan(plan, &Lubm().store, &Lubm().graph.dict());
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST_F(PlanVerifierTest, GcovJucqPlanVerifiesCleanAndGatePasses) {
  Workload& w = Lubm();
  EngineProfile profile = Fast();
  QueryAnswerer answerer(&w.store, &w.sat.store, &w.graph.schema(),
                         &w.graph.vocab(), &w.stats, &profile);
  Query q = MustParse(LubmQuerySet()[6].text);  // Multi-atom motivating q1.
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  options.keep_plan = true;
  options.verify_plans = true;  // The Release gate must pass valid plans.
  Result<AnswerOutcome> outcome = answerer.Answer(q, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome.ValueOrDie().plan.has_value());
  PlanVerifyResult result = VerifyPlan(*outcome.ValueOrDie().plan, &w.store,
                                       &w.graph.dict());
  EXPECT_TRUE(result.ok()) << result.ToString();
}

// ---------------------------------------------------------------------------
// Corruption matrix: each mutation of a clean plan is rejected under the
// expected rule.

TEST_F(PlanVerifierTest, RejectsDuplicateNodeIds) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  ASSERT_GE(plan.root->children.size(), 1u);
  plan.root->children[0]->id = plan.root->id;
  ExpectRejected(plan, "node-ids");
}

TEST_F(PlanVerifierTest, RejectsWrongNodeCount) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  plan.num_nodes += 3;
  ExpectRejected(plan, "node-ids");
}

TEST_F(PlanVerifierTest, RejectsMissingChild) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  plan.root->children.clear();  // Dedup loses its input.
  ExpectRejected(plan, "arity");
}

TEST_F(PlanVerifierTest, RejectsDanglingSharedRef) {
  PhysicalPlan plan = SharedUcqPlan();
  PlanNode* ref = FindKind(&plan, PlanNodeKind::kSharedRef);
  ASSERT_NE(ref, nullptr);
  ref->shared_index = 999;
  ExpectRejected(plan, "shared-refs");
}

TEST_F(PlanVerifierTest, RejectsSharedRefSchemaMismatch) {
  PhysicalPlan plan = SharedUcqPlan();
  PlanNode* ref = FindKind(&plan, PlanNodeKind::kSharedRef);
  ASSERT_NE(ref, nullptr);
  ref->out_columns.push_back(4242);  // No longer the target's schema.
  // Schema disagreements are arity-rule violations wherever they occur;
  // the diagnostic still names the shared target schema.
  PlanVerifyResult result = ExpectRejected(plan, "arity");
  EXPECT_NE(result.ToString().find("shared target schema"),
            std::string::npos)
      << result.ToString();
}

TEST_F(PlanVerifierTest, RejectsInvertedHidRange) {
  PhysicalPlan plan = ProfessorUcqPlan(FastVector(/*hierarchy_ranges=*/true));
  PlanNode* range = FindKind(&plan, PlanNodeKind::kScanRange);
  ASSERT_NE(range, nullptr);
  std::swap(range->range_lo, range->range_hi);
  ExpectRejected(plan, "scan-range");
}

TEST_F(PlanVerifierTest, RejectsHidRangeBeyondTheEncoding) {
  PhysicalPlan plan = ProfessorUcqPlan(FastVector(/*hierarchy_ranges=*/true));
  PlanNode* range = FindKind(&plan, PlanNodeKind::kScanRange);
  ASSERT_NE(range, nullptr);
  range->range_hi = 1u << 30;  // Far past the hid space.
  ExpectRejected(plan, "scan-range");
}

TEST_F(PlanVerifierTest, RejectsNonDrivingScanRange) {
  PhysicalPlan plan = ProfessorUcqPlan(FastVector(/*hierarchy_ranges=*/true));
  PlanNode* range = FindKind(&plan, PlanNodeKind::kScanRange);
  ASSERT_NE(range, nullptr);
  range->driving_scan = false;
  ExpectRejected(plan, "scan-range");
}

TEST_F(PlanVerifierTest, RejectsUnboundProjectionHead) {
  Query q = MustParse(LubmQuerySet()[6].text);
  const EngineProfile profile = Fast();
  Evaluator engine(&Lubm().store, &profile);
  PhysicalPlan plan = engine.planner().PlanCQ(q.cq);
  PlanNode* project = FindKind(&plan, PlanNodeKind::kProject);
  ASSERT_NE(project, nullptr);
  // A head variable no child produces and no binding covers.
  project->head.push_back(4242);
  project->out_columns.push_back(4242);
  ExpectRejected(plan, "bindings");
}

TEST_F(PlanVerifierTest, RejectsUnboundUnionHead) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  PlanNode* union_node = FindKind(&plan, PlanNodeKind::kUnionAll);
  ASSERT_NE(union_node, nullptr);
  union_node->head.push_back(4242);
  union_node->out_columns.push_back(4242);
  ExpectRejected(plan, "bindings");
}

TEST_F(PlanVerifierTest, RejectsOversizedVectorWidth) {
  PhysicalPlan plan = ProfessorUcqPlan(FastVector());
  plan.vector_width = kBatchRows * 2;  // Selection vectors hold one batch.
  ExpectRejected(plan, "batch-width");
}

TEST_F(PlanVerifierTest, RejectsMorselsLargerThanTheDisjunctList) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  PlanNode* union_node = FindKind(&plan, PlanNodeKind::kUnionAll);
  ASSERT_NE(union_node, nullptr);
  union_node->morsel_size = union_node->union_terms + 10;
  ExpectRejected(plan, "parallel");
}

TEST_F(PlanVerifierTest, RejectsDisjunctChildMismatch) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  PlanNode* union_node = FindKind(&plan, PlanNodeKind::kUnionAll);
  ASSERT_NE(union_node, nullptr);
  ASSERT_FALSE(union_node->disjuncts.empty());
  union_node->disjuncts.pop_back();  // Merge order now undefined.
  ExpectRejected(plan, "parallel");
}

TEST_F(PlanVerifierTest, RejectsFeasibilityMismatchBothWays) {
  // Feasible plan claiming infeasibility...
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  plan.feasibility = Status::QueryTooComplex("forged");
  ExpectRejected(plan, "feasibility");

  // ...and an over-limit plan claiming to be executable.
  EngineProfile tight = Fast();
  tight.max_union_terms = 4;
  Query q = MustParse(LubmQuerySet()[1].text);
  UnionQuery ucq = Reformulate(&q);
  Evaluator engine(&Lubm().store, &tight);
  PhysicalPlan over = engine.planner().PlanUCQ(ucq);
  ASSERT_FALSE(over.feasibility.ok());
  over.feasibility = Status::OK();
  ExpectRejected(over, "feasibility");
}

TEST_F(PlanVerifierTest, RejectsParallelSafeOverLimitUnion) {
  EngineProfile tight = Fast();
  tight.max_union_terms = 4;
  Query q = MustParse(LubmQuerySet()[1].text);
  UnionQuery ucq = Reformulate(&q);
  Evaluator engine(&Lubm().store, &tight);
  PhysicalPlan plan = engine.planner().PlanUCQ(ucq);
  PlanNode* union_node = FindKind(&plan, PlanNodeKind::kUnionAll);
  ASSERT_NE(union_node, nullptr);
  ASSERT_TRUE(union_node->over_limit);
  union_node->parallel_safe = true;
  ExpectRejected(plan, "parallel");
}

TEST_F(PlanVerifierTest, RejectsDuplicateOutputColumns) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  ASSERT_FALSE(plan.root->out_columns.empty());
  plan.root->out_columns.push_back(plan.root->out_columns[0]);
  ExpectRejected(plan, "arity");
}

TEST_F(PlanVerifierTest, RejectsInvalidAtomConstant) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  PlanNode* scan = FindKind(&plan, PlanNodeKind::kAtomScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_FALSE(scan->atom.p.is_var());
  scan->atom.p = PatternTerm();  // kInvalidValueId: matches nothing.
  ExpectRejected(plan, "dict-domain");
}

TEST_F(PlanVerifierTest, RejectsConstantsOutsideTheDictionary) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  PlanNode* scan = FindKind(&plan, PlanNodeKind::kAtomScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_FALSE(scan->atom.p.is_var());
  scan->atom.p = PatternTerm::Const(
      static_cast<ValueId>(Lubm().graph.dict().size() + 7));
  ExpectRejected(plan, "dict-domain");
}

TEST_F(PlanVerifierTest, RejectsNonFiniteEstimates) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  plan.root->est_rows = std::nan("");
  ExpectRejected(plan, "estimates");
}

// --- kViewScan mutations (view-resolution / view-schema rules). ---

TEST_F(PlanVerifierTest, ViewSubstitutedPlansVerifyClean) {
  StubViewResolver resolver;
  PhysicalPlan plan = ViewScanUcqPlan(&resolver);  // Verifies internally.
  ASSERT_NE(FindKind(&plan, PlanNodeKind::kViewScan), nullptr);
}

TEST_F(PlanVerifierTest, RejectsViewScanWithoutPinnedRows) {
  StubViewResolver resolver;
  PhysicalPlan plan = ViewScanUcqPlan(&resolver);
  PlanNode* view = FindKind(&plan, PlanNodeKind::kViewScan);
  ASSERT_NE(view, nullptr);
  view->view_rows.reset();  // Catalog eviction must not strand the plan.
  ExpectRejected(plan, "view-resolution");
}

TEST_F(PlanVerifierTest, RejectsViewScanWithEmptySignature) {
  StubViewResolver resolver;
  PhysicalPlan plan = ViewScanUcqPlan(&resolver);
  PlanNode* view = FindKind(&plan, PlanNodeKind::kViewScan);
  ASSERT_NE(view, nullptr);
  view->view_signature.clear();
  ExpectRejected(plan, "view-resolution");
}

TEST_F(PlanVerifierTest, RejectsViewScanAritySkew) {
  StubViewResolver resolver;
  PhysicalPlan plan = ViewScanUcqPlan(&resolver);
  PlanNode* view = FindKind(&plan, PlanNodeKind::kViewScan);
  ASSERT_NE(view, nullptr);
  ASSERT_FALSE(view->out_columns.empty());
  // The catalog served rows of a different shape than the node announces.
  view->view_rows = std::make_shared<const Relation>(
      Relation{std::vector<VarId>{}});
  ExpectRejected(plan, "view-schema");
}

TEST_F(PlanVerifierTest, RejectsViewScanStandingForZeroTerms) {
  StubViewResolver resolver;
  PhysicalPlan plan = ViewScanUcqPlan(&resolver);
  PlanNode* view = FindKind(&plan, PlanNodeKind::kViewScan);
  ASSERT_NE(view, nullptr);
  view->union_terms = 0;
  ExpectRejected(plan, "view-resolution");
}

// ---------------------------------------------------------------------------
// Diagnostics and hooks.

TEST_F(PlanVerifierTest, RenderingMarksTheOffendingNode) {
  PhysicalPlan plan = SharedUcqPlan();
  PlanNode* ref = FindKind(&plan, PlanNodeKind::kSharedRef);
  ASSERT_NE(ref, nullptr);
  ref->shared_index = 999;
  PlanVerifyResult result =
      VerifyPlan(plan, &Lubm().store, &Lubm().graph.dict());
  ASSERT_FALSE(result.ok());
  const std::string rendering = RenderPlanWithViolations(plan, result);
  EXPECT_NE(rendering.find("<-- VIOLATION [shared-refs]"), std::string::npos)
      << rendering;
  EXPECT_NE(rendering.find("SharedRef"), std::string::npos) << rendering;
}

TEST_F(PlanVerifierTest, VerifyPlanOrErrorCarriesTheDiagnosis) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  plan.vector_width = kBatchRows * 4;
  Status st = VerifyPlanOrError(plan, &Lubm().store, &Lubm().graph.dict());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("plan verification failed"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("batch-width"), std::string::npos)
      << st.message();
}

TEST_F(PlanVerifierTest, VerifyPlansOptionRefusesCorruptPlansInRelease) {
  // The shell/service-level gate: a corrupt plan must surface as kInternal,
  // not execute. Exercised through VerifyPlanOrError (the exact call
  // AnswerByCover makes under AnswerOptions::verify_plans).
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  plan.root->children.clear();
  Status st = VerifyPlanOrError(plan, &Lubm().store);
  EXPECT_FALSE(st.ok());
}

#ifndef RDFOPT_DISABLE_CHECKS
#ifndef NDEBUG
[[noreturn]] void ThrowOnCheckFailure(const CheckFailureInfo& info) {
  throw std::runtime_error(info.ToString());
}
#endif

TEST_F(PlanVerifierTest, DebugCheckPlanFiresOnlyInDebugBuilds) {
  PhysicalPlan plan = ProfessorUcqPlan(Fast());
  plan.num_nodes += 1;
#ifdef NDEBUG
  // Compiled out: corrupt plans pass silently (the Release gate is
  // AnswerOptions::verify_plans).
  DebugCheckPlan(plan, &Lubm().store, "test-site");
#else
  CheckFailureHandler prev = SetCheckFailureHandler(&ThrowOnCheckFailure);
  try {
    EXPECT_THROW(DebugCheckPlan(plan, &Lubm().store, "test-site"),
                 std::runtime_error);
  } catch (...) {
    SetCheckFailureHandler(prev);
    throw;
  }
  SetCheckFailureHandler(prev);
#endif
}
#endif  // RDFOPT_DISABLE_CHECKS

}  // namespace
}  // namespace rdfopt
