#include "sparql/sql.h"

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "reformulation/reformulator.h"
#include "rdf/graph.h"
#include "sparql/parser.h"

namespace rdfopt {
namespace {

bool ContainsOnce(const std::string& haystack, const std::string& needle) {
  size_t first = haystack.find(needle);
  if (first == std::string::npos) return false;
  return haystack.find(needle, first + 1) == std::string::npos;
}

class SqlTest : public ::testing::Test {
 protected:
  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }
  Dictionary dict_;
};

TEST_F(SqlTest, SingleAtomCq) {
  Query q = MustParse("SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . }");
  ValueId p = dict_.LookupIri("http://ex/p");
  std::string sql = ToSql(q.cq, q.vars);
  EXPECT_TRUE(ContainsOnce(sql, "SELECT DISTINCT t0.s AS x, t0.o AS y"));
  EXPECT_TRUE(ContainsOnce(sql, "FROM triples t0"));
  EXPECT_TRUE(ContainsOnce(sql, "t0.p = " + std::to_string(p)));
}

TEST_F(SqlTest, JoinConditionsFollowSharedVariables) {
  Query q = MustParse(
      "SELECT ?x ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/q> ?z . }");
  std::string sql = ToSql(q.cq, q.vars);
  EXPECT_TRUE(ContainsOnce(sql, "t1.s = t0.o"));
  EXPECT_TRUE(ContainsOnce(sql, "FROM triples t0, triples t1"));
}

TEST_F(SqlTest, RepeatedVariableInOneAtom) {
  Query q = MustParse("SELECT ?x WHERE { ?x <http://ex/p> ?x . }");
  std::string sql = ToSql(q.cq, q.vars);
  EXPECT_TRUE(ContainsOnce(sql, "t0.o = t0.s"));
}

TEST_F(SqlTest, ConstantsBecomeEqualityPredicates) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://ex/p> \"1996\" . }");
  ValueId lit = dict_.Lookup(Term::Literal("1996"));
  std::string sql = ToSql(q.cq, q.vars);
  EXPECT_TRUE(ContainsOnce(sql, "t0.o = " + std::to_string(lit)));
}

TEST_F(SqlTest, AskQuerySelectsLiteral) {
  Query q = MustParse("ASK WHERE { ?x <http://ex/p> ?y . }");
  std::string sql = ToSql(q.cq, q.vars);
  EXPECT_TRUE(ContainsOnce(sql, "SELECT DISTINCT 1 AS ask"));
}

TEST_F(SqlTest, HeadBindingBecomesLiteralColumn) {
  // Disjunct with y bound to a constant (Example 4's q(x, Book) shape).
  Query q = MustParse("SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . }");
  ConjunctiveQuery cq = q.cq;
  cq.atoms[0].o = PatternTerm::Const(77);
  cq.head_bindings = {{1, 99}};
  std::string sql = ToSql(cq, q.vars);
  EXPECT_TRUE(ContainsOnce(sql, "99 AS y"));
}

TEST_F(SqlTest, UnionQueryJoinsDisjunctsWithUnion) {
  Query q = MustParse("SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . }");
  UnionQuery ucq;
  ucq.head = q.cq.head;
  ucq.disjuncts.push_back(q.cq);
  ucq.disjuncts.push_back(q.cq);
  std::string sql = ToSql(ucq, q.vars);
  EXPECT_TRUE(ContainsOnce(sql, "\nUNION\n"));
}

TEST_F(SqlTest, JucqNestsComponentsAndJoins) {
  Query q = MustParse(
      "SELECT ?x ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/q> ?z . }");
  // Parse order: head vars first (x=0, z=1), then y=2.
  JoinOfUnions jucq;
  jucq.head = q.cq.head;
  UnionQuery c0;
  c0.head = {0, 2};  // x, y.
  ConjunctiveQuery d0;
  d0.head = c0.head;
  d0.atoms.push_back(q.cq.atoms[0]);
  c0.disjuncts.push_back(d0);
  UnionQuery c1;
  c1.head = {2, 1};  // y, z.
  ConjunctiveQuery d1;
  d1.head = c1.head;
  d1.atoms.push_back(q.cq.atoms[1]);
  c1.disjuncts.push_back(d1);
  jucq.components = {c0, c1};

  std::string sql = ToSql(jucq, q.vars);
  EXPECT_TRUE(ContainsOnce(sql, ") f0"));
  EXPECT_TRUE(ContainsOnce(sql, ") f1"));
  EXPECT_TRUE(ContainsOnce(sql, "f1.y = f0.y"));
  EXPECT_TRUE(ContainsOnce(sql, "SELECT DISTINCT f0.x AS x, f1.z AS z"));
}

TEST_F(SqlTest, DecodeValuesWrapsWithDictionaryJoin) {
  Query q = MustParse("SELECT ?x WHERE { ?x <http://ex/p> ?y . }");
  JoinOfUnions jucq;
  jucq.head = q.cq.head;
  UnionQuery c;
  c.head = q.cq.head;
  c.disjuncts.push_back(q.cq);
  jucq.components.push_back(c);
  SqlOptions options;
  options.decode_values = true;
  std::string sql = ToSql(jucq, q.vars, options);
  EXPECT_TRUE(ContainsOnce(sql, "d_x.value AS x"));
  EXPECT_TRUE(ContainsOnce(sql, "d_x.id = q.x"));
  EXPECT_TRUE(ContainsOnce(sql, "dict d_x"));
}

TEST_F(SqlTest, CustomTableNames) {
  Query q = MustParse("SELECT ?x WHERE { ?x <http://ex/p> ?y . }");
  SqlOptions options;
  options.triples_table = "facts";
  std::string sql = ToSql(q.cq, q.vars, options);
  EXPECT_TRUE(ContainsOnce(sql, "FROM facts t0"));
}

TEST_F(SqlTest, ColumnNamesAreSanitized) {
  VarTable vars;
  VarId f = vars.Fresh();  // "_f0".
  EXPECT_EQ(SqlColumnName(f, vars), "_f0");
  VarId x = vars.GetOrCreate("x");
  EXPECT_EQ(SqlColumnName(x, vars), "x");
}

TEST_F(SqlTest, ReformulatedQueryProducesValidShapedSql) {
  // End-to-end: the Example 4 schema, the type query, full UCQ SQL.
  Graph g;
  Dictionary& d = g.dict();
  ValueId book = d.InternIri("Book");
  ValueId publication = d.InternIri("Publication");
  ValueId written_by = d.InternIri("writtenBy");
  const Vocabulary& v = g.vocab();
  g.AddEncoded(book, v.rdfs_subclassof, publication);
  g.AddEncoded(written_by, v.rdfs_domain, book);
  g.FinalizeSchema();

  Result<Query> q = ParseQuery("SELECT ?x ?y WHERE { ?x rdf:type ?y . }",
                               &g.dict());
  ASSERT_TRUE(q.ok());
  Reformulator reformulator(&g.schema(), &g.vocab());
  VarTable vars = q.ValueOrDie().vars;
  Result<UnionQuery> ucq =
      reformulator.ReformulateCQ(q.ValueOrDie().cq, &vars);
  ASSERT_TRUE(ucq.ok());

  std::string sql = ToSql(ucq.ValueOrDie(), vars);
  // One SELECT per disjunct, joined by UNION.
  size_t selects = 0;
  size_t pos = 0;
  while ((pos = sql.find("SELECT DISTINCT", pos)) != std::string::npos) {
    ++selects;
    pos += 1;
  }
  EXPECT_EQ(selects, ucq.ValueOrDie().size());
  // The instantiated disjuncts bind y to a class id literal.
  EXPECT_NE(sql.find(std::to_string(book) + " AS y"), std::string::npos);
}

}  // namespace
}  // namespace rdfopt
