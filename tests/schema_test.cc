#include "schema/schema.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace rdfopt {
namespace {

// Fixed ids for readability. Classes 1..9, properties 20..29.
constexpr ValueId kBook = 1, kPublication = 2, kWork = 3, kPerson = 4,
                  kAuthor = 5, kNovel = 6;
constexpr ValueId kWrittenBy = 20, kHasAuthor = 21, kContributor = 22,
                  kHasTitle = 23;

class SchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Novel < Book < Publication < Work; Author < Person.
    schema_.AddSubClass(kNovel, kBook);
    schema_.AddSubClass(kBook, kPublication);
    schema_.AddSubClass(kPublication, kWork);
    schema_.AddSubClass(kAuthor, kPerson);
    // writtenBy < hasAuthor < contributor.
    schema_.AddSubProperty(kWrittenBy, kHasAuthor);
    schema_.AddSubProperty(kHasAuthor, kContributor);
    schema_.AddDomain(kWrittenBy, kBook);
    schema_.AddRange(kHasAuthor, kAuthor);
    schema_.AddDomain(kHasTitle, kWork);
    schema_.Finalize();
  }
  Schema schema_;
};

TEST_F(SchemaTest, SubClassClosureIsReflexiveTransitive) {
  EXPECT_EQ(schema_.SubClassesOf(kWork),
            (std::vector<ValueId>{kBook, kPublication, kWork, kNovel}));
  EXPECT_EQ(schema_.SubClassesOf(kNovel), (std::vector<ValueId>{kNovel}));
  EXPECT_EQ(schema_.SuperClassesOf(kNovel),
            (std::vector<ValueId>{kBook, kPublication, kWork, kNovel}));
}

TEST_F(SchemaTest, UnknownNodesAreReflexive) {
  constexpr ValueId kUnknown = 999;
  EXPECT_EQ(schema_.SubClassesOf(kUnknown), (std::vector<ValueId>{kUnknown}));
  EXPECT_EQ(schema_.SuperPropertiesOf(kUnknown),
            (std::vector<ValueId>{kUnknown}));
  EXPECT_TRUE(schema_.EntailedDomainClasses(kUnknown).empty());
  EXPECT_FALSE(schema_.IsSchemaClass(kUnknown));
}

TEST_F(SchemaTest, SubPropertyClosure) {
  EXPECT_EQ(schema_.SubPropertiesOf(kContributor),
            (std::vector<ValueId>{kWrittenBy, kHasAuthor, kContributor}));
  EXPECT_EQ(schema_.SuperPropertiesOf(kWrittenBy),
            (std::vector<ValueId>{kWrittenBy, kHasAuthor, kContributor}));
}

TEST_F(SchemaTest, EntailedDomainFollowsSubPropertyAndSubClass) {
  // writtenBy's declared domain Book entails Book, Publication, Work.
  EXPECT_EQ(schema_.EntailedDomainClasses(kWrittenBy),
            (std::vector<ValueId>{kBook, kPublication, kWork}));
  // hasAuthor has no declared or inherited domain.
  EXPECT_TRUE(schema_.EntailedDomainClasses(kHasAuthor).empty());
}

TEST_F(SchemaTest, EntailedRangeInheritsThroughSubProperty) {
  // writtenBy inherits hasAuthor's range Author (and its superclass Person).
  EXPECT_EQ(schema_.EntailedRangeClasses(kWrittenBy),
            (std::vector<ValueId>{kPerson, kAuthor}));
  EXPECT_EQ(schema_.EntailedRangeClasses(kHasAuthor),
            (std::vector<ValueId>{kPerson, kAuthor}));
  EXPECT_TRUE(schema_.EntailedRangeClasses(kContributor).empty());
}

TEST_F(SchemaTest, InverseDomainMaps) {
  // Which properties entail membership in Publication via their domain?
  EXPECT_EQ(schema_.PropertiesWithDomainEntailing(kPublication),
            (std::vector<ValueId>{kWrittenBy}));
  // Work: writtenBy (via Book < Work) and hasTitle (declared).
  EXPECT_EQ(schema_.PropertiesWithDomainEntailing(kWork),
            (std::vector<ValueId>{kWrittenBy, kHasTitle}));
  // Novel: nothing (domains only propagate upward).
  EXPECT_TRUE(schema_.PropertiesWithDomainEntailing(kNovel).empty());
}

TEST_F(SchemaTest, InverseRangeMaps) {
  EXPECT_EQ(schema_.PropertiesWithRangeEntailing(kPerson),
            (std::vector<ValueId>{kWrittenBy, kHasAuthor}));
  EXPECT_EQ(schema_.PropertiesWithRangeEntailing(kAuthor),
            (std::vector<ValueId>{kWrittenBy, kHasAuthor}));
}

TEST_F(SchemaTest, AllClassesAndProperties) {
  EXPECT_EQ(schema_.AllClasses(),
            (std::vector<ValueId>{kBook, kPublication, kWork, kPerson,
                                  kAuthor, kNovel}));
  EXPECT_EQ(schema_.AllProperties(),
            (std::vector<ValueId>{kWrittenBy, kHasAuthor, kContributor,
                                  kHasTitle}));
}

TEST(SchemaCycleTest, SubclassCyclesTerminate) {
  Schema s;
  s.AddSubClass(1, 2);
  s.AddSubClass(2, 3);
  s.AddSubClass(3, 1);  // Cycle.
  s.Finalize();
  EXPECT_EQ(s.SubClassesOf(1), (std::vector<ValueId>{1, 2, 3}));
  EXPECT_EQ(s.SuperClassesOf(2), (std::vector<ValueId>{1, 2, 3}));
}

TEST(SchemaCycleTest, SelfLoopIsHarmless) {
  Schema s;
  s.AddSubClass(1, 1);
  s.Finalize();
  EXPECT_EQ(s.SubClassesOf(1), (std::vector<ValueId>{1}));
}

TEST(SchemaTest2, DiamondHierarchy) {
  // 1 < 2, 1 < 3, 2 < 4, 3 < 4: closure of 1 must reach 4 exactly once.
  Schema s;
  s.AddSubClass(1, 2);
  s.AddSubClass(1, 3);
  s.AddSubClass(2, 4);
  s.AddSubClass(3, 4);
  s.Finalize();
  EXPECT_EQ(s.SuperClassesOf(1), (std::vector<ValueId>{1, 2, 3, 4}));
  EXPECT_EQ(s.SubClassesOf(4), (std::vector<ValueId>{1, 2, 3, 4}));
}

TEST(SchemaTest2, MultipleDomainsAccumulate) {
  Schema s;
  s.AddDomain(10, 1);
  s.AddDomain(10, 2);
  s.Finalize();
  EXPECT_EQ(s.EntailedDomainClasses(10), (std::vector<ValueId>{1, 2}));
}

TEST(SchemaTest2, EquivalenceComparesClosures) {
  Schema a;
  a.AddSubClass(1, 2);
  a.AddSubClass(2, 3);
  a.Finalize();

  // Same closure, different declared edges (adds the transitive edge).
  Schema b;
  b.AddSubClass(1, 2);
  b.AddSubClass(2, 3);
  b.AddSubClass(1, 3);
  b.Finalize();
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_TRUE(b.EquivalentTo(a));

  Schema c;
  c.AddSubClass(1, 2);
  c.Finalize();
  EXPECT_FALSE(a.EquivalentTo(c));
}

TEST(SchemaTest2, RefinalizeAfterUpdate) {
  Schema s;
  s.AddSubClass(1, 2);
  s.Finalize();
  EXPECT_EQ(s.SuperClassesOf(1), (std::vector<ValueId>{1, 2}));
  s.AddSubClass(2, 3);
  EXPECT_FALSE(s.finalized());
  s.Finalize();
  EXPECT_EQ(s.SuperClassesOf(1), (std::vector<ValueId>{1, 2, 3}));
}

}  // namespace
}  // namespace rdfopt
