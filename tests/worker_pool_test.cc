#include "common/worker_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace rdfopt {
namespace {

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  Status st = pool.ParallelFor(100, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(WorkerPoolTest, ZeroThreadsDegradesToCallerOnly) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::atomic<int> count{0};
  Status st = pool.ParallelFor(10, [&](size_t) {
    ++count;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count.load(), 10);
}

TEST(WorkerPoolTest, ResultsIndependentOfThreadCount) {
  // Per-index outputs land in per-index slots, so any merge that walks the
  // slots in index order is deterministic regardless of pool size.
  std::vector<size_t> out_seq(64, 0), out_par(64, 0);
  WorkerPool seq(0), par(4);
  auto fill = [](std::vector<size_t>* out) {
    return [out](size_t i) {
      (*out)[i] = i * i + 1;
      return Status::OK();
    };
  };
  ASSERT_TRUE(seq.ParallelFor(64, fill(&out_seq)).ok());
  ASSERT_TRUE(par.ParallelFor(64, fill(&out_par)).ok());
  EXPECT_EQ(out_seq, out_par);
}

TEST(WorkerPoolTest, FirstErrorWinsBySmallestIndex) {
  WorkerPool pool(4);
  Status st = pool.ParallelFor(50, [&](size_t i) {
    if (i == 7) return Status::InvalidArgument("bad seven");
    if (i == 23) return Status::Timeout("late twenty-three");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("bad seven"), std::string::npos);
}

TEST(WorkerPoolTest, CancelledNeverMasksTheRootCause) {
  // Tasks that observe cancellation report kCancelled; ParallelFor must
  // surface the real failure even when a cancelled task has a smaller index.
  WorkerPool pool(2);
  std::atomic<bool> cancelled{false};
  Status st = pool.ParallelFor(20, [&](size_t i) {
    if (cancelled.load()) return Status::Cancelled("observed cancel");
    if (i == 10) {
      cancelled.store(true);
      return Status::ResourceExhausted("budget blown");
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(WorkerPoolTest, ExceptionsBecomeInternalStatus) {
  WorkerPool pool(2);
  Status st = pool.ParallelFor(8, [&](size_t i) -> Status {
    if (i == 3) throw std::runtime_error("boom");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos);
}

TEST(WorkerPoolTest, PoolIsReusableAcrossBatches) {
  WorkerPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    Status st = pool.ParallelFor(17, [&](size_t) {
      ++count;
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << "round " << round;
    ASSERT_EQ(count.load(), 17) << "round " << round;
  }
}

TEST(WorkerPoolTest, FailedBatchLeavesPoolUsable) {
  WorkerPool pool(2);
  ASSERT_FALSE(pool.ParallelFor(5, [](size_t i) {
    return i == 0 ? Status::Internal("once") : Status::OK();
  }).ok());
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.ParallelFor(5, [&](size_t) {
    ++count;
    return Status::OK();
  }).ok());
  EXPECT_EQ(count.load(), 5);
}

TEST(WorkerPoolTest, NestedParallelForDoesNotDeadlock) {
  // Help-first scheduling: the outer task's thread drains inner batches
  // itself, so nesting can never wait on a thread that is waiting on it.
  WorkerPool pool(2);
  std::atomic<int> inner_total{0};
  Status st = pool.ParallelFor(6, [&](size_t) {
    return pool.ParallelFor(6, [&](size_t) {
      ++inner_total;
      return Status::OK();
    });
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(inner_total.load(), 36);
}

TEST(WorkerPoolTest, SingleTaskRunsInline) {
  WorkerPool pool(4);
  std::atomic<int> count{0};
  ASSERT_TRUE(pool.ParallelFor(1, [&](size_t) {
    ++count;
    return Status::OK();
  }).ok());
  EXPECT_EQ(count.load(), 1);
  ASSERT_TRUE(pool.ParallelFor(0, [&](size_t) {
    ++count;
    return Status::OK();
  }).ok());
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace rdfopt
