#include "reasoner/saturation.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

// The running example of the paper (Examples 1-2, Figure 3): a book, its
// author, and the four RDFS constraints.
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* doc =
        "<Book> <http://www.w3.org/2000/01/rdf-schema#subClassOf> "
        "<Publication> .\n"
        "<writtenBy> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> "
        "<hasAuthor> .\n"
        "<writtenBy> <http://www.w3.org/2000/01/rdf-schema#domain> <Book> .\n"
        "<writtenBy> <http://www.w3.org/2000/01/rdf-schema#range> <Person> "
        ".\n"
        "<doi1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Book> .\n"
        "<doi1> <writtenBy> _:b1 .\n"
        "<doi1> <hasTitle> \"Game of Thrones\" .\n"
        "_:b1 <hasName> \"George R. R. Martin\" .\n"
        "<doi1> <publishedIn> \"1996\" .\n";
    ASSERT_TRUE(ParseNTriples(doc, &graph_).ok());
    graph_.FinalizeSchema();
  }

  ValueId Id(const char* iri) { return graph_.dict().LookupIri(iri); }

  Graph graph_;
};

TEST_F(PaperExampleTest, SaturationDerivesFigure3DashedEdges) {
  SaturationResult sat = SaturateGraph(graph_);
  const Vocabulary& v = graph_.vocab();
  ValueId doi1 = Id("doi1");
  ValueId b1 = graph_.dict().Lookup(Term::Blank("b1"));

  // Implicit triples of Figure 3:
  EXPECT_TRUE(sat.store.Contains({doi1, Id("hasAuthor"), b1}));
  EXPECT_TRUE(sat.store.Contains({doi1, v.rdf_type, Id("Publication")}));
  EXPECT_TRUE(sat.store.Contains({b1, v.rdf_type, Id("Person")}));
  // Explicit triples are preserved.
  EXPECT_TRUE(sat.store.Contains({doi1, v.rdf_type, Id("Book")}));
  EXPECT_TRUE(sat.store.Contains({doi1, Id("writtenBy"), b1}));
  // Exactly 3 derived triples.
  EXPECT_EQ(sat.input_triples, 5u);
  EXPECT_EQ(sat.output_triples, 8u);
  EXPECT_EQ(sat.derived_triples(), 3u);
}

TEST_F(PaperExampleTest, SaturationIsIdempotent) {
  SaturationResult once = SaturateGraph(graph_);
  SaturationResult twice =
      Saturate(once.store, graph_.schema(), graph_.vocab());
  EXPECT_EQ(once.output_triples, twice.output_triples);
  EXPECT_EQ(twice.derived_triples(), 0u);
}

TEST_F(PaperExampleTest, MatchesNaiveFixpoint) {
  SaturationResult fast = SaturateGraph(graph_);
  std::vector<Triple> naive = NaiveFixpointSaturation(
      graph_.data_triples(), graph_.schema_triples(), graph_.vocab());
  TripleStore naive_store = TripleStore::Build(std::move(naive));
  ASSERT_EQ(fast.store.size(), naive_store.size());
  auto fast_all = fast.store.All();
  auto naive_all = naive_store.All();
  for (size_t i = 0; i < fast_all.size(); ++i) {
    EXPECT_EQ(fast_all[i], naive_all[i]);
  }
}

TEST(SaturationTest, SubPropertyChainDerivesAllAncestors) {
  Graph g;
  const Vocabulary& v = g.vocab();
  ValueId p1 = g.dict().InternIri("p1");
  ValueId p2 = g.dict().InternIri("p2");
  ValueId p3 = g.dict().InternIri("p3");
  g.AddEncoded(p1, v.rdfs_subpropertyof, p2);
  g.AddEncoded(p2, v.rdfs_subpropertyof, p3);
  ValueId a = g.dict().InternIri("a");
  ValueId b = g.dict().InternIri("b");
  g.AddEncoded(a, p1, b);
  g.FinalizeSchema();

  SaturationResult sat = SaturateGraph(g);
  EXPECT_TRUE(sat.store.Contains({a, p2, b}));
  EXPECT_TRUE(sat.store.Contains({a, p3, b}));
  EXPECT_EQ(sat.output_triples, 3u);
}

TEST(SaturationTest, DomainOfSuperPropertyApplies) {
  // p1 < p2, domain(p2) = C, C < D: (a p1 b) must entail both type facts.
  Graph g;
  const Vocabulary& v = g.vocab();
  ValueId p1 = g.dict().InternIri("p1");
  ValueId p2 = g.dict().InternIri("p2");
  ValueId c = g.dict().InternIri("C");
  ValueId d = g.dict().InternIri("D");
  g.AddEncoded(p1, v.rdfs_subpropertyof, p2);
  g.AddEncoded(p2, v.rdfs_domain, c);
  g.AddEncoded(c, v.rdfs_subclassof, d);
  ValueId a = g.dict().InternIri("a");
  ValueId b = g.dict().InternIri("b");
  g.AddEncoded(a, p1, b);
  g.FinalizeSchema();

  SaturationResult sat = SaturateGraph(g);
  EXPECT_TRUE(sat.store.Contains({a, v.rdf_type, c}));
  EXPECT_TRUE(sat.store.Contains({a, v.rdf_type, d}));
  EXPECT_TRUE(sat.store.Contains({a, p2, b}));
}

TEST(SaturationTest, RangeAppliesToObject) {
  Graph g;
  const Vocabulary& v = g.vocab();
  ValueId p = g.dict().InternIri("p");
  ValueId c = g.dict().InternIri("C");
  g.AddEncoded(p, v.rdfs_range, c);
  ValueId a = g.dict().InternIri("a");
  ValueId b = g.dict().InternIri("b");
  g.AddEncoded(a, p, b);
  g.FinalizeSchema();
  SaturationResult sat = SaturateGraph(g);
  EXPECT_TRUE(sat.store.Contains({b, v.rdf_type, c}));
  EXPECT_FALSE(sat.store.Contains({a, v.rdf_type, c}));
}

TEST(SaturationTest, NoSchemaNoDerivations) {
  Graph g;
  ValueId p = g.dict().InternIri("p");
  g.AddEncoded(g.dict().InternIri("a"), p, g.dict().InternIri("b"));
  g.FinalizeSchema();
  SaturationResult sat = SaturateGraph(g);
  EXPECT_EQ(sat.derived_triples(), 0u);
}

TEST(SaturationTest, LubmSampleMatchesNaiveFixpoint) {
  Graph g;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &g);
  g.FinalizeSchema();

  // Naive fixpoint is quadratic; restrict to a sample of the data.
  std::vector<Triple> sample(g.data_triples().begin(),
                             g.data_triples().begin() + 2000);
  TripleStore sample_store = TripleStore::Build(sample);
  SaturationResult fast = Saturate(sample_store, g.schema(), g.vocab());
  std::vector<Triple> naive =
      NaiveFixpointSaturation(sample, g.schema_triples(), g.vocab());
  TripleStore naive_store = TripleStore::Build(std::move(naive));
  EXPECT_EQ(fast.store.size(), naive_store.size());
}


TEST(IncrementalSaturationTest, MatchesFullResaturation) {
  Graph g;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &g);
  g.FinalizeSchema();

  // Split the data: initial load + a later delta.
  std::vector<Triple> all = g.data_triples();
  size_t split = all.size() - 500;
  std::vector<Triple> initial(all.begin(), all.begin() + split);
  std::vector<Triple> delta(all.begin() + split, all.end());

  SaturationResult base =
      Saturate(TripleStore::Build(initial), g.schema(), g.vocab());
  SaturationResult incremental =
      IncrementalSaturate(base.store, delta, g.schema(), g.vocab());
  SaturationResult full =
      Saturate(TripleStore::Build(all), g.schema(), g.vocab());

  ASSERT_EQ(incremental.store.size(), full.store.size());
  for (size_t i = 0; i < full.store.size(); ++i) {
    EXPECT_EQ(incremental.store.All()[i], full.store.All()[i]);
  }
}

TEST(IncrementalSaturationTest, EmptyDeltaIsIdentity) {
  Graph g;
  const Vocabulary& v = g.vocab();
  ValueId c = g.dict().InternIri("C");
  ValueId d = g.dict().InternIri("D");
  g.AddEncoded(c, v.rdfs_subclassof, d);
  ValueId a = g.dict().InternIri("a");
  g.AddEncoded(a, v.rdf_type, c);
  g.FinalizeSchema();
  SaturationResult base = SaturateGraph(g);
  SaturationResult inc =
      IncrementalSaturate(base.store, {}, g.schema(), g.vocab());
  EXPECT_EQ(inc.store.size(), base.store.size());
}

TEST(IncrementalSaturationTest, DeltaEntailmentsAppear) {
  Graph g;
  const Vocabulary& v = g.vocab();
  ValueId p = g.dict().InternIri("p");
  ValueId c = g.dict().InternIri("C");
  g.AddEncoded(p, v.rdfs_domain, c);
  ValueId a0 = g.dict().InternIri("a0");
  ValueId b0 = g.dict().InternIri("b0");
  g.AddEncoded(a0, p, b0);
  g.FinalizeSchema();
  SaturationResult base = SaturateGraph(g);

  ValueId a1 = g.dict().InternIri("a1");
  ValueId b1 = g.dict().InternIri("b1");
  SaturationResult inc = IncrementalSaturate(base.store, {{a1, p, b1}},
                                             g.schema(), g.vocab());
  EXPECT_TRUE(inc.store.Contains({a1, p, b1}));
  EXPECT_TRUE(inc.store.Contains({a1, v.rdf_type, c}));
  EXPECT_TRUE(inc.store.Contains({a0, v.rdf_type, c}));  // Old kept.
}

}  // namespace
}  // namespace rdfopt
