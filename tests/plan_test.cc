#include "engine/plan.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "engine/evaluator.h"
#include "engine/explain.h"
#include "engine/planner.h"
#include "optimizer/answering.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

TriplePattern VarAtom(VarId s, VarId o, VarId p) {
  return TriplePattern{PatternTerm::Var(s), PatternTerm::Var(p),
                       PatternTerm::Var(o)};
}

TEST(GreedyAtomOrderTest, StartsWithTheSmallestScan) {
  // Disconnected atoms: pure smallest-first.
  std::vector<TriplePattern> atoms = {VarAtom(0, 1, 10), VarAtom(2, 3, 11),
                                      VarAtom(4, 5, 12)};
  std::vector<size_t> order = GreedyAtomOrder(atoms, {100.0, 10.0, 1.0});
  EXPECT_EQ(order, (std::vector<size_t>{2, 1, 0}));
}

TEST(GreedyAtomOrderTest, PrefersConnectedOverSmaller) {
  // After the smallest atom (?z ?q), the connected (?y ?z) atom wins even
  // though the disconnected (?x ?y) atom has the smaller scan.
  std::vector<TriplePattern> atoms = {VarAtom(0, 1, 10), VarAtom(1, 2, 11),
                                      VarAtom(2, 3, 12)};
  std::vector<size_t> order = GreedyAtomOrder(atoms, {5.0, 50.0, 1.0});
  EXPECT_EQ(order, (std::vector<size_t>{2, 1, 0}));
}

TEST(GreedyAtomOrderTest, TiesResolveToTheLowestIndex) {
  std::vector<TriplePattern> atoms = {VarAtom(0, 1, 10), VarAtom(0, 2, 11),
                                      VarAtom(0, 3, 12)};
  std::vector<size_t> order = GreedyAtomOrder(atoms, {7.0, 7.0, 7.0});
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}));
}

// Planner structure tests over a tiny hand-built graph.
class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const char* s, const char* p, const char* o) {
      graph_.AddIri(s, p, o);
    };
    add("a", "knows", "b");
    add("b", "knows", "c");
    add("c", "knows", "a");
    add("a", "likes", "b");
    add("b", "likes", "b");
    store_ = TripleStore::Build(graph_.data_triples());
    profile_ = PostgresLikeProfile();
    estimator_.emplace(&store_, nullptr);
    evaluator_.emplace(&store_, &profile_, &*estimator_);
  }

  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }

  Planner MakePlanner() { return Planner(&*estimator_, &profile_); }

  Graph graph_;
  TripleStore store_;
  EngineProfile profile_;
  std::optional<CardinalityEstimator> estimator_;
  std::optional<Evaluator> evaluator_;
};

TEST_F(PlannerTest, PlanCqShapeAndPreorderIds) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <knows> ?y . ?y <likes> ?y . }");
  PhysicalPlan plan = MakePlanner().PlanCQ(q.cq);
  ASSERT_NE(plan.root, nullptr);
  EXPECT_EQ(plan.shape, PlanShape::kCq);
  EXPECT_TRUE(plan.feasibility.ok());
  EXPECT_EQ(plan.root->kind, PlanNodeKind::kDedup);
  ASSERT_EQ(plan.root->children.size(), 1u);
  EXPECT_EQ(plan.root->children[0]->kind, PlanNodeKind::kProject);
  EXPECT_GT(plan.est_cost(), 0.0);
  EXPECT_GT(plan.root->est_rows, 0.0);

  // Ids are a dense preorder numbering; no node is marked executed yet.
  int expected = 0;
  plan.ForEachNode([&](const PlanNode& node) {
    EXPECT_EQ(node.id, expected++);
    EXPECT_FALSE(node.executed);
    EXPECT_EQ(node.actual_rows, 0u);
  });
  EXPECT_EQ(expected, plan.num_nodes);
}

TEST_F(PlannerTest, ExecutePlanFillsActualsAndResetClearsThem) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <knows> ?y . ?y <likes> ?y . }");
  PhysicalPlan plan = MakePlanner().PlanCQ(q.cq);
  Result<Relation> first = evaluator_->ExecutePlan(&plan, nullptr);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.ValueOrDie().num_rows(), 1u);
  EXPECT_TRUE(plan.root->executed);
  EXPECT_EQ(plan.root->actual_rows, 1u);

  plan.ResetActuals();
  plan.ForEachNode([&](const PlanNode& node) {
    EXPECT_FALSE(node.executed);
    EXPECT_EQ(node.actual_rows, 0u);
  });

  // The same plan executes again (ExecutePlan resets internally too).
  Result<Relation> second = evaluator_->ExecutePlan(&plan, nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.ValueOrDie().num_rows(), 1u);
}

TEST_F(PlannerTest, OverLimitUnionIsRenderedButNotExecutable) {
  profile_.max_union_terms = 2;
  Query q = MustParse("SELECT ?x ?y WHERE { ?x <knows> ?y . }");
  UnionQuery ucq;
  ucq.head = q.cq.head;
  for (int i = 0; i < 5; ++i) ucq.disjuncts.push_back(q.cq);

  PhysicalPlan plan = MakePlanner().PlanUCQ(ucq);
  EXPECT_FALSE(plan.feasibility.ok());
  EXPECT_EQ(plan.feasibility.message(), UnionLimitMessage(5, profile_));
  ASSERT_NE(plan.root, nullptr);
  const PlanNode* u = plan.root->children[0].get();
  ASSERT_EQ(u->kind, PlanNodeKind::kUnionAll);
  EXPECT_TRUE(u->over_limit);
  EXPECT_EQ(u->union_terms, 5u);          // Authoritative term count...
  EXPECT_LT(u->children.size(), 5u);      // ...only a sample is planned.

  // The plan still renders for EXPLAIN, but executing it reports the same
  // kQueryTooComplex the feasibility check recorded.
  std::string text = ExplainPlan(plan, q.vars, graph_.dict());
  EXPECT_NE(text.find("exceeds the plan limit"), std::string::npos);
  Result<Relation> r = evaluator_->ExecutePlan(&plan, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kQueryTooComplex);
  EXPECT_EQ(r.status().message(), plan.feasibility.message());
}

TEST_F(PlannerTest, CombineComponentsGreedySmallestConnectedFirst) {
  Planner planner = MakePlanner();
  // (est rows, output columns) per component.
  std::vector<std::pair<double, std::vector<VarId>>> inputs = {
      {1000.0, {0, 1}}, {10.0, {1, 2}}, {50.0, {2, 3}}};
  Planner::ComponentCombination comb = planner.CombineComponents(inputs);
  // Start with the smallest (1), then the smallest sharing a column (2 via
  // column 2; component 0 shares column 1 but is larger), then 0.
  EXPECT_EQ(comb.order, (std::vector<size_t>{1, 2, 0}));
  EXPECT_EQ(comb.pipelined, 0u);  // Largest estimate stays pipelined.
  EXPECT_GT(comb.combine_cost, 0.0);
  EXPECT_GE(comb.est_rows, 0.0);
}

TEST_F(PlannerTest, SingleComponentCombinesForFree) {
  Planner planner = MakePlanner();
  Planner::ComponentCombination comb =
      planner.CombineComponents({{42.0, {0, 1}}});
  EXPECT_EQ(comb.order, (std::vector<size_t>{0}));
  EXPECT_EQ(comb.pipelined, 0u);
  EXPECT_DOUBLE_EQ(comb.combine_cost, 0.0);
}

TEST_F(PlannerTest, ExplainCostIsThePlannedCost) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <knows> ?y . ?y <likes> ?y . }");
  UnionQuery ucq;
  ucq.head = q.cq.head;
  ucq.disjuncts.push_back(q.cq);
  JoinOfUnions jucq;
  jucq.head = q.cq.head;
  jucq.components.push_back(ucq);
  PhysicalPlan plan = MakePlanner().PlanJUCQ(jucq);
  EXPECT_DOUBLE_EQ(evaluator_->ExplainCost(jucq, *estimator_),
                   plan.est_cost());
}

// The tentpole regression: EXPLAIN and the executor consume the same plan
// tree, so the join order EXPLAIN prints — the atom order within every
// disjunct and the component join order — must be exactly the order the
// executor runs. Node ids are the correlation key: EXPLAIN prints them as
// "[#id]" and each operator's trace span carries a "node" attribute.
class PlanOrderConsistencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph();
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, graph_);
    graph_->FinalizeSchema();
    store_ = new TripleStore(TripleStore::Build(graph_->data_triples()));
    stats_ = new Statistics(Statistics::Compute(*store_));
    profile_ = new EngineProfile(PostgresLikeProfile());
    answerer_ = new QueryAnswerer(store_, /*saturated=*/nullptr,
                                  &graph_->schema(), &graph_->vocab(), stats_,
                                  profile_);
  }

  /// All "[#id]" markers in `text`, line by line, keyed by the component
  /// whose section the line is in (-1 before the first component header;
  /// the final join line is skipped).
  static std::map<int, std::vector<int>> ExplainIdsByComponent(
      const std::string& text) {
    std::map<int, std::vector<int>> ids;
    int component = -1;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      std::string line = text.substr(pos, end - pos);
      pos = end + 1;
      if (line.rfind("  component ", 0) == 0) {
        component = std::atoi(line.c_str() + 12);
        continue;  // The component header carries the dedup id, not an op.
      }
      if (line.rfind("  final:", 0) == 0) continue;
      size_t mark = line.rfind("  [#");
      if (mark == std::string::npos) continue;
      ids[component].push_back(std::atoi(line.c_str() + mark + 4));
    }
    return ids;
  }

  /// The "(join order: a, b, ...)" component indices of the final line.
  static std::vector<int> ExplainJoinOrder(const std::string& text) {
    std::vector<int> order;
    size_t pos = text.find("(join order:");
    if (pos == std::string::npos) return order;
    pos += 12;
    while (pos < text.size() && text[pos] != ')') {
      if (std::isdigit(static_cast<unsigned char>(text[pos]))) {
        order.push_back(std::atoi(text.c_str() + pos));
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
          ++pos;
        }
      } else {
        ++pos;
      }
    }
    return order;
  }

  static Graph* graph_;
  static TripleStore* store_;
  static Statistics* stats_;
  static EngineProfile* profile_;
  static QueryAnswerer* answerer_;
};

Graph* PlanOrderConsistencyTest::graph_ = nullptr;
TripleStore* PlanOrderConsistencyTest::store_ = nullptr;
Statistics* PlanOrderConsistencyTest::stats_ = nullptr;
EngineProfile* PlanOrderConsistencyTest::profile_ = nullptr;
QueryAnswerer* PlanOrderConsistencyTest::answerer_ = nullptr;

TEST_F(PlanOrderConsistencyTest, ExplainOrderMatchesExecutionOrder) {
  Result<Query> q = ParseQuery(LubmMotivatingQ1().text, &graph_->dict());
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // SCQ: one component per atom, so the component join order is exercised.
  AnswerOptions options;
  options.strategy = Strategy::kScq;
  options.keep_reformulation = true;
  Result<AnswerOutcome> r = answerer_->Answer(q.ValueOrDie(), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  AnswerOutcome o = r.TakeValue();
  ASSERT_TRUE(o.plan.has_value());
  ASSERT_GT(o.num_components, 1u);

  const std::string text =
      ExplainPlan(*o.plan, *o.jucq_vars, graph_->dict());
  std::map<int, std::vector<int>> explain_ids = ExplainIdsByComponent(text);
  std::vector<int> explain_join_order = ExplainJoinOrder(text);
  ASSERT_EQ(explain_join_order.size(), o.num_components);

  // Re-execute the exact same plan under a trace session.
  TraceSession session;
  Result<Relation> rerun = [&] {
    ScopedTraceSession scoped(&session);
    return answerer_->evaluator().ExecutePlan(&*o.plan, nullptr);
  }();
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun.ValueOrDie().num_rows(), o.answers.num_rows());

  // Node id -> component index, from the plan itself.
  std::map<int, int> dedup_component;
  o.plan->ForEachNode([&](const PlanNode& node) {
    if (node.kind == PlanNodeKind::kDedup && node.component >= 0) {
      dedup_component[node.id] = node.component;
    }
  });

  // Walk the span list in open (= execution) order: the engine.ucq span
  // sequence is the executed component order, and every operator span under
  // one contributes that component's executed node sequence.
  const std::vector<TraceSpanRecord>& spans = session.spans();
  std::vector<int> executed_component_order;
  std::map<int, int> span_component;  // Span index -> component.
  std::map<int, std::vector<int>> executed_ids;
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpanRecord& span = spans[i];
    if (span.name == "engine.ucq") {
      const TraceSpanRecord::Attribute* node = span.FindAttribute("node");
      ASSERT_NE(node, nullptr);
      int component = dedup_component.at(std::stoi(node->value));
      span_component[static_cast<int>(i)] = component;
      executed_component_order.push_back(component);
      continue;
    }
    if (span.name != "op.scan" && span.name != "op.index_join" &&
        span.name != "op.hash_join") {
      continue;
    }
    // Find the enclosing component, if any.
    int parent = span.parent;
    while (parent >= 0 && span_component.find(parent) == span_component.end()) {
      parent = spans[static_cast<size_t>(parent)].parent;
    }
    if (parent < 0) continue;
    const TraceSpanRecord::Attribute* node = span.FindAttribute("node");
    ASSERT_NE(node, nullptr);
    executed_ids[span_component.at(parent)].push_back(
        std::stoi(node->value));
  }

  // Component join order: EXPLAIN's final line vs. the engine.ucq spans.
  EXPECT_EQ(executed_component_order,
            std::vector<int>(explain_join_order.begin(),
                             explain_join_order.end()));

  // Per-component operator order. EXPLAIN samples only the first terms of a
  // union and omits hash-probe scans; the executor skips short-circuited
  // subtrees. So compare the two sequences restricted to their common ids —
  // order must agree exactly.
  size_t compared = 0;
  for (const auto& [component, printed] : explain_ids) {
    ASSERT_GE(component, 0) << "operator line outside any component:\n"
                            << text;
    std::set<int> printed_set(printed.begin(), printed.end());
    const std::vector<int>& executed = executed_ids[component];
    std::set<int> executed_set(executed.begin(), executed.end());
    std::vector<int> printed_common;
    for (int id : printed) {
      if (executed_set.count(id) != 0) printed_common.push_back(id);
    }
    std::vector<int> executed_common;
    for (int id : executed) {
      if (printed_set.count(id) != 0) executed_common.push_back(id);
    }
    EXPECT_EQ(printed_common, executed_common)
        << "component " << component << " order mismatch:\n"
        << text;
    compared += printed_common.size();
  }
  EXPECT_GT(compared, 0u);

  // EXPLAIN ANALYZE on the executed plan shows estimates alongside actuals.
  ExplainOptions analyze;
  analyze.analyze = true;
  const std::string analyzed =
      ExplainPlan(*o.plan, *o.jucq_vars, graph_->dict(), analyze);
  EXPECT_NE(analyzed.find("(actual "), std::string::npos);
  EXPECT_NE(analyzed.find("~"), std::string::npos);
}

TEST_F(PlanOrderConsistencyTest, GcovKeepsPlanAndAnswersMatchExecution) {
  Result<Query> q = ParseQuery(LubmMotivatingQ1().text, &graph_->dict());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  options.keep_reformulation = true;
  Result<AnswerOutcome> r = answerer_->Answer(q.ValueOrDie(), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  AnswerOutcome o = r.TakeValue();
  ASSERT_TRUE(o.plan.has_value());
  // The kept plan is the executed one: its root actuals are the answer
  // count, and the estimate annotations survive next to them.
  ASSERT_NE(o.plan->root, nullptr);
  EXPECT_TRUE(o.plan->root->executed);
  EXPECT_EQ(o.plan->root->actual_rows, o.answers.num_rows());
  EXPECT_GT(o.plan->est_cost(), 0.0);
}

}  // namespace
}  // namespace rdfopt
