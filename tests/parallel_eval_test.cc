// Determinism of the parallel executor (DESIGN.md §9): at any
// worker_threads setting, answers, EvalMetrics totals, EXPLAIN ANALYZE
// actuals and trace span structure must be identical to the sequential run.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "engine/evaluator.h"
#include "optimizer/cover.h"
#include "reformulation/reformulator.h"
#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

struct ParallelBench {
  Graph graph;
  TripleStore store;
  EngineProfile profile;

  ParallelBench() {
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, &graph);
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
    profile = PostgresLikeProfile();
    profile.max_union_terms = 1u << 20;
    profile.timeout_seconds = 300.0;
  }
};

ParallelBench& Bench() {
  static ParallelBench& bench = *new ParallelBench();
  return bench;
}

// The five integer counters; elapsed_ms is wall clock and may differ.
std::vector<size_t> Counters(const EvalMetrics& m) {
  return {m.rows_scanned, m.join_input_rows, m.union_terms,
          m.rows_materialized, m.duplicates_removed};
}

void ExpectIdenticalRelations(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.columns(), b.columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.arity(); ++c) {
      ASSERT_EQ(a.at(r, c), b.at(r, c)) << "row " << r << " col " << c;
    }
  }
}

// Reformulates a benchmark query to its UCQ (q_ref).
UnionQuery MustReformulate(const std::string& text, Query* parsed_out) {
  ParallelBench& bench = Bench();
  Result<Query> parsed = ParseQuery(text, &bench.graph.dict());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  *parsed_out = parsed.TakeValue();
  Reformulator reformulator(&bench.graph.schema(), &bench.graph.vocab());
  Result<UnionQuery> ucq =
      reformulator.ReformulateCQ(parsed_out->cq, &parsed_out->vars);
  EXPECT_TRUE(ucq.ok()) << ucq.status().ToString();
  return ucq.TakeValue();
}

TEST(ParallelEvalTest, UcqIdenticalRowsAndMetricsAcrossThreadCounts) {
  ParallelBench& bench = Bench();
  Query q;
  UnionQuery ucq = MustReformulate(LubmMotivatingQ1().text, &q);
  ASSERT_GT(ucq.size(), 100u);  // A real fan-out, not a toy.

  EngineProfile seq_profile = bench.profile;
  seq_profile.worker_threads = 1;
  EngineProfile par_profile = bench.profile;
  par_profile.worker_threads = 4;
  Evaluator sequential(&bench.store, &seq_profile);
  Evaluator parallel(&bench.store, &par_profile);

  EvalMetrics seq_metrics, par_metrics;
  Result<Relation> seq = sequential.EvaluateUCQ(ucq, &seq_metrics);
  Result<Relation> par = parallel.EvaluateUCQ(ucq, &par_metrics);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  ExpectIdenticalRelations(seq.ValueOrDie(), par.ValueOrDie());
  EXPECT_EQ(Counters(seq_metrics), Counters(par_metrics));
  EXPECT_GT(par_metrics.duplicates_removed, 0u);  // Dedup exercised.
}

TEST(ParallelEvalTest, JucqIdenticalAcrossThreadCounts) {
  ParallelBench& bench = Bench();
  Result<Query> parsed =
      ParseQuery(LubmMotivatingQ1().text, &bench.graph.dict());
  ASSERT_TRUE(parsed.ok());
  Query q = parsed.TakeValue();
  Reformulator reformulator(&bench.graph.schema(), &bench.graph.vocab());

  // The SCQ extreme point: one component per atom, so the evaluation joins
  // parallel unions with parallel component-pair execution on top.
  Cover cover = ScqCover(q.cq.atoms.size());
  VarTable vars = q.vars;
  Result<JoinOfUnions> jucq = CoverBasedReformulation(
      q.cq, cover, reformulator, &vars, /*max_disjuncts_per_fragment=*/1u << 20);
  ASSERT_TRUE(jucq.ok()) << jucq.status().ToString();

  EngineProfile seq_profile = bench.profile;
  seq_profile.worker_threads = 1;
  Evaluator sequential(&bench.store, &seq_profile);
  EvalMetrics seq_metrics;
  Result<Relation> seq =
      sequential.EvaluateJUCQ(jucq.ValueOrDie(), &seq_metrics);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  for (size_t threads : {2u, 4u}) {
    EngineProfile par_profile = bench.profile;
    par_profile.worker_threads = threads;
    Evaluator parallel(&bench.store, &par_profile);
    EvalMetrics par_metrics;
    Result<Relation> par =
        parallel.EvaluateJUCQ(jucq.ValueOrDie(), &par_metrics);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    ExpectIdenticalRelations(seq.ValueOrDie(), par.ValueOrDie());
    EXPECT_EQ(Counters(seq_metrics), Counters(par_metrics))
        << threads << " threads";
  }
}

TEST(ParallelEvalTest, TraceSpanStructureMatchesSequential) {
  ParallelBench& bench = Bench();
  Query q;
  UnionQuery ucq = MustReformulate(LubmMotivatingQ1().text, &q);

  auto spans_of = [&](size_t threads) {
    EngineProfile profile = bench.profile;
    profile.worker_threads = threads;
    Evaluator evaluator(&bench.store, &profile);
    TraceSession session;
    ScopedTraceSession scoped(&session);
    EXPECT_TRUE(evaluator.EvaluateUCQ(ucq, nullptr).ok());
    // (name, parent, depth) triples in recorded order; workers' spans are
    // adopted in disjunct order, so the flat encoding must match exactly.
    std::vector<std::string> flat;
    for (const TraceSpanRecord& s : session.spans()) {
      flat.push_back(s.name + "@" + std::to_string(s.parent) + "/" +
                     std::to_string(s.depth));
    }
    EXPECT_EQ(session.dropped_spans(), 0u);
    return flat;
  };

  std::vector<std::string> seq = spans_of(1);
  std::vector<std::string> par = spans_of(4);
  ASSERT_GT(seq.size(), ucq.size());  // At least one span per disjunct.
  EXPECT_EQ(seq, par);
}

TEST(ParallelEvalTest, ExplainActualsMatchSequential) {
  ParallelBench& bench = Bench();
  Query q;
  UnionQuery ucq = MustReformulate(LubmMotivatingQ1().text, &q);

  auto actuals_of = [&](size_t threads) {
    EngineProfile profile = bench.profile;
    profile.worker_threads = threads;
    Evaluator evaluator(&bench.store, &profile);
    Planner planner = evaluator.planner();
    PhysicalPlan plan = planner.PlanUCQ(ucq);
    EXPECT_TRUE(evaluator.ExecutePlan(&plan, nullptr).ok());
    std::vector<size_t> actuals;
    plan.ForEachNode([&](const PlanNode& node) {
      actuals.push_back(node.actual_rows);
    });
    return actuals;
  };

  EXPECT_EQ(actuals_of(1), actuals_of(4));
}

TEST(ParallelEvalTest, BatchEngineIdenticalRowsAndMetricsAcrossThreadCounts) {
  // The batch engine (PR 7): kBatchRows-wide operators plus union-subplan
  // factoring must keep the same determinism contract — shared subplans run
  // once on the coordinator, workers borrow them read-only, and the
  // morsel-ordered merge is bit-identical to the sequential run.
  ParallelBench& bench = Bench();
  Query q;
  UnionQuery ucq = MustReformulate(LubmMotivatingQ1().text, &q);

  EngineProfile seq_profile = Vectorized(bench.profile);
  seq_profile.worker_threads = 1;
  EngineProfile par_profile = Vectorized(bench.profile);
  par_profile.worker_threads = 4;
  Evaluator sequential(&bench.store, &seq_profile);
  Evaluator parallel(&bench.store, &par_profile);

  EvalMetrics seq_metrics, par_metrics;
  Result<Relation> seq = sequential.EvaluateUCQ(ucq, &seq_metrics);
  Result<Relation> par = parallel.EvaluateUCQ(ucq, &par_metrics);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  ExpectIdenticalRelations(seq.ValueOrDie(), par.ValueOrDie());
  EXPECT_EQ(Counters(seq_metrics), Counters(par_metrics));

  // And the batch engine's rows match the seed tuple engine's exactly.
  EngineProfile tuple_profile = bench.profile;
  tuple_profile.worker_threads = 1;
  Evaluator tuple_engine(&bench.store, &tuple_profile);
  Result<Relation> reference = tuple_engine.EvaluateUCQ(ucq, nullptr);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ExpectIdenticalRelations(reference.ValueOrDie(), par.ValueOrDie());
}

TEST(ParallelEvalTest, ErrorsPropagateFromWorkers) {
  ParallelBench& bench = Bench();
  Query q;
  UnionQuery ucq = MustReformulate(LubmMotivatingQ1().text, &q);

  EngineProfile instant = bench.profile;
  instant.worker_threads = 4;
  instant.timeout_seconds = 0.0;
  Evaluator timed_out(&bench.store, &instant);
  Result<Relation> r = timed_out.EvaluateUCQ(ucq, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);

  EngineProfile tiny = bench.profile;
  tiny.worker_threads = 4;
  tiny.max_materialized_cells = 1;
  Evaluator budgeted(&bench.store, &tiny);
  Result<Query> parsed =
      ParseQuery(LubmMotivatingQ1().text, &bench.graph.dict());
  ASSERT_TRUE(parsed.ok());
  Reformulator reformulator(&bench.graph.schema(), &bench.graph.vocab());
  Cover cover = ScqCover(parsed.ValueOrDie().cq.atoms.size());
  VarTable vars = parsed.ValueOrDie().vars;
  Result<JoinOfUnions> jucq =
      CoverBasedReformulation(parsed.ValueOrDie().cq, cover, reformulator,
                              &vars, 1u << 20);
  ASSERT_TRUE(jucq.ok());
  Result<Relation> rb = budgeted.EvaluateJUCQ(jucq.ValueOrDie(), nullptr);
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(rb.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace rdfopt
