#include "optimizer/answering.h"

#include <set>

#include <gtest/gtest.h>

#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

// Shared fixture: one small LUBM database + saturation, reused across tests.
class AnsweringTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph();
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, graph_);
    graph_->FinalizeSchema();
    store_ = new TripleStore(TripleStore::Build(graph_->data_triples()));
    SaturationResult sat =
        Saturate(*store_, graph_->schema(), graph_->vocab());
    saturated_ = new TripleStore(std::move(sat.store));
    stats_ = new Statistics(Statistics::Compute(*store_));
    profile_ = new EngineProfile(PostgresLikeProfile());
    answerer_ = new QueryAnswerer(store_, saturated_, &graph_->schema(),
                                  &graph_->vocab(), stats_, profile_);
  }

  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_->dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }

  std::set<std::vector<ValueId>> RowSet(const Relation& r) {
    std::set<std::vector<ValueId>> rows;
    for (size_t i = 0; i < r.num_rows(); ++i) {
      rows.insert(std::vector<ValueId>(r.row(i).begin(), r.row(i).end()));
    }
    return rows;
  }

  static Graph* graph_;
  static TripleStore* store_;
  static TripleStore* saturated_;
  static Statistics* stats_;
  static EngineProfile* profile_;
  static QueryAnswerer* answerer_;
};

Graph* AnsweringTest::graph_ = nullptr;
TripleStore* AnsweringTest::store_ = nullptr;
TripleStore* AnsweringTest::saturated_ = nullptr;
Statistics* AnsweringTest::stats_ = nullptr;
EngineProfile* AnsweringTest::profile_ = nullptr;
QueryAnswerer* AnsweringTest::answerer_ = nullptr;

TEST_F(AnsweringTest, AllStrategiesAgreeOnMotivatingQ1) {
  Query q = MustParse(LubmMotivatingQ1().text);
  std::set<std::vector<ValueId>> reference;
  bool have_reference = false;
  for (Strategy s : {Strategy::kSaturation, Strategy::kUcq, Strategy::kScq,
                     Strategy::kEcov, Strategy::kGcov}) {
    AnswerOptions options;
    options.strategy = s;
    Result<AnswerOutcome> r = answerer_->Answer(q, options);
    ASSERT_TRUE(r.ok()) << StrategyName(s) << ": " << r.status().ToString();
    std::set<std::vector<ValueId>> rows = RowSet(r.ValueOrDie().answers);
    if (!have_reference) {
      reference = rows;
      have_reference = true;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(rows, reference) << StrategyName(s);
    }
  }
}

TEST_F(AnsweringTest, ReformulationFindsImplicitAnswers) {
  // Members of dept0 include undergrads asserted via memberOf and faculty
  // asserted only via worksFor (a subproperty): reformulation must see both.
  Query q = MustParse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x ub:memberOf "
      "<http://lubm.example.org/data/univ0/dept0> . }");
  AnswerOptions direct;
  direct.strategy = Strategy::kUcq;
  Result<AnswerOutcome> full = answerer_->Answer(q, direct);
  ASSERT_TRUE(full.ok());

  // Direct evaluation on the non-saturated store misses the implicit part.
  EngineProfile profile = PostgresLikeProfile();
  Evaluator raw(store_, &profile);
  Result<Relation> direct_rows = raw.EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(direct_rows.ok());
  EXPECT_GT(full.ValueOrDie().answers.num_rows(),
            direct_rows.ValueOrDie().num_rows());
}

TEST_F(AnsweringTest, UcqStrategyUsesSingleComponent) {
  Query q = MustParse(LubmMotivatingQ1().text);
  AnswerOptions options;
  options.strategy = Strategy::kUcq;
  Result<AnswerOutcome> r = answerer_->Answer(q, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_components, 1u);
  EXPECT_EQ(r.ValueOrDie().chosen_cover.fragments.size(), 1u);
  // Q07's UCQ reformulation is the product of the per-atom counts.
  EXPECT_GT(r.ValueOrDie().union_terms, 1000u);
}

TEST_F(AnsweringTest, ScqStrategyUsesOneComponentPerAtom) {
  Query q = MustParse(LubmMotivatingQ1().text);
  AnswerOptions options;
  options.strategy = Strategy::kScq;
  Result<AnswerOutcome> r = answerer_->Answer(q, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_components, q.cq.atoms.size());
}

TEST_F(AnsweringTest, GcovProducesValidCoverAndMetrics) {
  Query q = MustParse(LubmMotivatingQ1().text);
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  Result<AnswerOutcome> r = answerer_->Answer(q, options);
  ASSERT_TRUE(r.ok());
  const AnswerOutcome& o = r.ValueOrDie();
  EXPECT_TRUE(ValidateCover(q.cq, o.chosen_cover).ok());
  EXPECT_GT(o.covers_examined, 0u);
  EXPECT_GE(o.optimize_ms, 0.0);
  EXPECT_GT(o.union_terms, 0u);
}

TEST_F(AnsweringTest, UcqFailsOnHugeReformulationGcovSurvives) {
  // Q28 (the paper's q2): its UCQ reformulation exceeds every profile's
  // plan limit, while GCov picks an evaluable JUCQ.
  Query q = MustParse(LubmMotivatingQ2().text);
  AnswerOptions ucq;
  ucq.strategy = Strategy::kUcq;
  Result<AnswerOutcome> r_ucq = answerer_->Answer(q, ucq);
  ASSERT_FALSE(r_ucq.ok());
  EXPECT_EQ(r_ucq.status().code(), StatusCode::kQueryTooComplex);

  AnswerOptions gcov;
  gcov.strategy = Strategy::kGcov;
  Result<AnswerOutcome> r_gcov = answerer_->Answer(q, gcov);
  ASSERT_TRUE(r_gcov.ok()) << r_gcov.status().ToString();

  AnswerOptions sat;
  sat.strategy = Strategy::kSaturation;
  Result<AnswerOutcome> r_sat = answerer_->Answer(q, sat);
  ASSERT_TRUE(r_sat.ok());
  EXPECT_EQ(RowSet(r_gcov.ValueOrDie().answers),
            RowSet(r_sat.ValueOrDie().answers));
}

TEST_F(AnsweringTest, SaturationRequiresSaturatedStore) {
  QueryAnswerer no_sat(store_, nullptr, &graph_->schema(), &graph_->vocab(),
                       stats_, profile_);
  Query q = MustParse(LubmMotivatingQ1().text);
  AnswerOptions options;
  options.strategy = Strategy::kSaturation;
  Result<AnswerOutcome> r = no_sat.Answer(q, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnsweringTest, DisconnectedQueryRejectedForCoverStrategies) {
  Query q = MustParse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y WHERE { ?x ub:memberOf ?d . ?y ub:teacherOf ?c . }");
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  Result<AnswerOutcome> r = answerer_->Answer(q, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnsweringTest, EngineCostModelModeWorks) {
  Query q = MustParse(LubmMotivatingQ1().text);
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  options.use_engine_cost_model = true;
  Result<AnswerOutcome> r = answerer_->Answer(q, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  AnswerOptions sat;
  sat.strategy = Strategy::kSaturation;
  Result<AnswerOutcome> r_sat = answerer_->Answer(q, sat);
  ASSERT_TRUE(r_sat.ok());
  EXPECT_EQ(RowSet(r.ValueOrDie().answers),
            RowSet(r_sat.ValueOrDie().answers));
}

TEST_F(AnsweringTest, PruningDropsEmptyDisjunctsAndPreservesAnswers) {
  Query q = MustParse(LubmMotivatingQ1().text);
  AnswerOptions plain;
  plain.strategy = Strategy::kUcq;
  Result<AnswerOutcome> r_plain = answerer_->Answer(q, plain);
  ASSERT_TRUE(r_plain.ok());

  AnswerOptions pruned = plain;
  pruned.prune_empty_disjuncts = true;
  Result<AnswerOutcome> r_pruned = answerer_->Answer(q, pruned);
  ASSERT_TRUE(r_pruned.ok());

  EXPECT_GT(r_pruned.ValueOrDie().pruned_union_terms, 0u);
  EXPECT_LT(r_pruned.ValueOrDie().union_terms,
            r_plain.ValueOrDie().union_terms);
  EXPECT_EQ(RowSet(r_pruned.ValueOrDie().answers),
            RowSet(r_plain.ValueOrDie().answers));
}

TEST_F(AnsweringTest, MinimizationRemovesRedundantAtomKeepsAnswers) {
  // takesCourse's domain is Student: the type atom is redundant.
  Query q = MustParse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x rdf:type ub:Student . ?x ub:takesCourse ?c . }");
  AnswerOptions plain;
  plain.strategy = Strategy::kGcov;
  Result<AnswerOutcome> r_plain = answerer_->Answer(q, plain);
  ASSERT_TRUE(r_plain.ok());

  AnswerOptions minimized = plain;
  minimized.minimize_query = true;
  Result<AnswerOutcome> r_min = answerer_->Answer(q, minimized);
  ASSERT_TRUE(r_min.ok());
  EXPECT_EQ(r_min.ValueOrDie().minimized_atoms, 1u);
  EXPECT_EQ(RowSet(r_min.ValueOrDie().answers),
            RowSet(r_plain.ValueOrDie().answers));
  // The minimized query reformulates to fewer union terms.
  EXPECT_LE(r_min.ValueOrDie().union_terms,
            r_plain.ValueOrDie().union_terms);
}

TEST_F(AnsweringTest, LiteralScanSumAblationStillCorrect) {
  Query q = MustParse(LubmMotivatingQ1().text);
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  options.literal_scan_sums = true;
  Result<AnswerOutcome> r = answerer_->Answer(q, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  AnswerOptions sat;
  sat.strategy = Strategy::kSaturation;
  Result<AnswerOutcome> truth = answerer_->Answer(q, sat);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(RowSet(r.ValueOrDie().answers),
            RowSet(truth.ValueOrDie().answers));
}

TEST_F(AnsweringTest, KeepReformulationExposesTheJucq) {
  Query q = MustParse(LubmMotivatingQ1().text);
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  options.keep_reformulation = true;
  Result<AnswerOutcome> r = answerer_->Answer(q, options);
  ASSERT_TRUE(r.ok());
  const AnswerOutcome& o = r.ValueOrDie();
  ASSERT_TRUE(o.jucq.has_value());
  ASSERT_TRUE(o.jucq_vars.has_value());
  EXPECT_EQ(o.jucq->components.size(), o.num_components);
  size_t terms = 0;
  for (const UnionQuery& c : o.jucq->components) terms += c.size();
  EXPECT_EQ(terms, o.union_terms);
  // Without the flag the outcome stays lean.
  options.keep_reformulation = false;
  Result<AnswerOutcome> r2 = answerer_->Answer(q, options);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.ValueOrDie().jucq.has_value());
}

TEST_F(AnsweringTest, SubsumptionPruningPreservesAnswers) {
  Query q = MustParse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . ?x ub:headOf ?d . }");
  AnswerOptions plain;
  plain.strategy = Strategy::kUcq;
  Result<AnswerOutcome> a = answerer_->Answer(q, plain);
  ASSERT_TRUE(a.ok());
  AnswerOptions pruned = plain;
  pruned.prune_subsumed_disjuncts = true;
  Result<AnswerOutcome> b = answerer_->Answer(q, pruned);
  ASSERT_TRUE(b.ok());
  EXPECT_LT(b.ValueOrDie().union_terms, a.ValueOrDie().union_terms);
  EXPECT_GT(b.ValueOrDie().pruned_union_terms, 0u);
  EXPECT_EQ(RowSet(b.ValueOrDie().answers), RowSet(a.ValueOrDie().answers));
}

TEST_F(AnsweringTest, StrategyNames) {
  EXPECT_EQ(StrategyName(Strategy::kUcq), "UCQ");
  EXPECT_EQ(StrategyName(Strategy::kScq), "SCQ");
  EXPECT_EQ(StrategyName(Strategy::kEcov), "ECov");
  EXPECT_EQ(StrategyName(Strategy::kGcov), "GCov");
  EXPECT_EQ(StrategyName(Strategy::kSaturation), "Saturation");
}

}  // namespace
}  // namespace rdfopt
