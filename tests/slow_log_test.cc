#include "service/slow_log.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.h"
#include "service/query_service.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

using rdfopt::testing::IsValidJson;

SlowQueryLog::Record SampleRecord(double total_ms = 250.0) {
  SlowQueryLog::Record record;
  record.canonical_query = "q(?v0) :- ?v0 <p> <o>";
  record.plan_digest = 0xdeadbeefcafef00dULL;
  record.cache_hit = true;
  record.epoch = 3;
  record.queue_wait_ms = 1.5;
  record.evaluate_ms = total_ms - 2.0;
  record.total_ms = total_ms;
  record.eval.rows_scanned = 100;
  record.eval.hash_probes = 40;
  record.eval.bytes_materialized = 800;
  PlanNodeStats node;
  node.id = 7;
  node.kind = "AtomScan";
  node.actual_rows = 100;
  node.actual_ms = 0.2;
  node.rows_scanned = 100;
  record.nodes.push_back(node);
  return record;
}

TEST(SlowQueryLogTest, RenderLineIsValidJsonWithExpectedKeys) {
  std::string line = SlowQueryLog::RenderLine(SampleRecord());
  std::string error;
  ASSERT_TRUE(IsValidJson(line, &error)) << error << "\n" << line;
  EXPECT_NE(line.find("\"canonical\":"), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"cache_hit\":true"), std::string::npos);
  EXPECT_NE(line.find("\"epoch\":3"), std::string::npos);
  // uint64 digests travel as fixed-width hex strings, not JSON numbers.
  EXPECT_NE(line.find("\"plan_digest\":\"deadbeefcafef00d\""),
            std::string::npos);
  EXPECT_NE(line.find("\"total_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"eval\":{"), std::string::npos);
  EXPECT_NE(line.find("\"hash_probes\":40"), std::string::npos);
  EXPECT_NE(line.find("\"nodes\":[{"), std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"AtomScan\""), std::string::npos);
  // One line: no embedded newlines to break JSON-lines consumers.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog::Options options;
  options.threshold_ms = 100.0;
  SlowQueryLog log(options);

  log.MaybeRecord(SampleRecord(/*total_ms=*/50.0));  // Fast and ok: dropped.
  EXPECT_EQ(log.size(), 0u);
  log.MaybeRecord(SampleRecord(/*total_ms=*/150.0));
  EXPECT_EQ(log.size(), 1u);

  // Failed requests always qualify, however fast.
  SlowQueryLog::Record failed = SampleRecord(/*total_ms=*/1.0);
  failed.status = Status::ResourceExhausted("admission queue full");
  log.MaybeRecord(failed);
  EXPECT_EQ(log.size(), 2u);
  std::vector<std::string> lines = log.Lines();
  EXPECT_NE(lines[1].find("admission queue full"), std::string::npos);
}

TEST(SlowQueryLogTest, ThresholdIsRuntimeAdjustable) {
  SlowQueryLog::Options options;
  options.threshold_ms = 100.0;
  SlowQueryLog log(options);
  log.set_threshold_ms(10.0);
  EXPECT_DOUBLE_EQ(log.threshold_ms(), 10.0);
  log.MaybeRecord(SampleRecord(/*total_ms=*/50.0));
  EXPECT_EQ(log.size(), 1u);
}

TEST(SlowQueryLogTest, SamplingKeepsEveryNth) {
  SlowQueryLog::Options options;
  options.threshold_ms = 0.0;
  options.sample_every = 3;
  SlowQueryLog log(options);
  for (int i = 0; i < 9; ++i) log.MaybeRecord(SampleRecord());
  EXPECT_EQ(log.size(), 3u);
}

TEST(SlowQueryLogTest, CapacityKeepsNewest) {
  SlowQueryLog::Options options;
  options.threshold_ms = 0.0;
  options.capacity = 2;
  SlowQueryLog log(options);
  for (int i = 0; i < 5; ++i) {
    SlowQueryLog::Record record = SampleRecord();
    record.epoch = static_cast<Epoch>(i);
    log.MaybeRecord(record);
  }
  EXPECT_EQ(log.size(), 2u);
  std::vector<std::string> lines = log.Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"epoch\":4"), std::string::npos);

  // Lines(max) returns only the newest max.
  EXPECT_EQ(log.Lines(1).size(), 1u);
  EXPECT_NE(log.Lines(1)[0].find("\"epoch\":4"), std::string::npos);

  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(SlowLogServiceTest, ServiceRecordsSlowQueriesWithPlanDetail) {
  Graph graph;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &graph);

  ServiceOptions service_options;
  service_options.slow_query_ms = 0.0;  // Everything qualifies.
  QueryService service(&graph, PostgresLikeProfile(), service_options);

  const char* text =
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?d WHERE { ?x ub:worksFor ?d . ?x ub:doctoralDegreeFrom "
      "?u . }";
  Result<ServiceOutcome> result = service.AnswerText(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ServiceOutcome& outcome = result.ValueOrDie();
  EXPECT_NE(outcome.plan_digest, 0u);
  EXPECT_FALSE(outcome.node_stats.empty());

  ASSERT_EQ(service.slow_log()->size(), 1u);
  std::string line = service.slow_log()->Lines()[0];
  std::string error;
  ASSERT_TRUE(IsValidJson(line, &error)) << error << "\n" << line;
  EXPECT_NE(line.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(line.find("\"nodes\":[{"), std::string::npos);
  EXPECT_EQ(line.find("\"plan_digest\":\"0000000000000000\""),
            std::string::npos);

  // The cache-hit repeat logs the same plan digest.
  Result<ServiceOutcome> again = service.AnswerText(text);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.ValueOrDie().cache_hit);
  EXPECT_EQ(again.ValueOrDie().plan_digest, outcome.plan_digest);
  ASSERT_EQ(service.slow_log()->size(), 2u);
  EXPECT_NE(service.slow_log()->Lines()[1].find("\"cache_hit\":true"),
            std::string::npos);
}

TEST(SlowLogServiceTest, FastQueriesAreNotRecorded) {
  Graph graph;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &graph);

  ServiceOptions service_options;
  service_options.slow_query_ms = 60'000.0;  // Nothing qualifies.
  QueryService service(&graph, PostgresLikeProfile(), service_options);

  const char* text =
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x ub:worksFor ?d . }";
  Result<ServiceOutcome> result = service.AnswerText(text);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(service.slow_log()->size(), 0u);
}

}  // namespace
}  // namespace rdfopt
