// Unit tests for the LiteMat-style hierarchy encoding (DESIGN.md §12):
// DFS-preorder hid assignment must give every class/property subtree a
// contiguous interval, with multi-parent and cycle fallout exposed as
// residuals such that
//   SubClassesOf(C) == interval(C) ∪ residuals(C)   (disjointly)
// for every schema node, in both the class and the property hid space.

#include "rdf/hierarchy_encoding.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "storage/triple_store.h"

namespace rdfopt {
namespace {

// Fixed ids for readability. Classes 1..19, properties 20..29.
constexpr ValueId kWork = 1, kPublication = 2, kBook = 3, kNovel = 4,
                  kArticle = 5, kPerson = 6, kAuthor = 7;
constexpr ValueId kContributor = 20, kHasAuthor = 21, kWrittenBy = 22,
                  kHasEditor = 23;
constexpr ValueId kRdfType = 90;

std::set<ValueId> IntervalMembers(const HierarchyEncoding& enc,
                                  HierarchyInterval iv, bool class_space) {
  std::set<ValueId> out;
  for (uint32_t hid = iv.lo; hid < iv.hi; ++hid) {
    out.insert(class_space ? enc.ClassOfHid(hid) : enc.PropertyOfHid(hid));
  }
  return out;
}

/// The §12 invariant for one node: the closure equals the owned interval
/// plus the residual list, with no overlap between the two.
void ExpectCoversClosure(const Schema& schema, const HierarchyEncoding& enc,
                         ValueId node, bool class_space) {
  const HierarchyInterval iv =
      class_space ? enc.ClassInterval(node) : enc.PropertyInterval(node);
  ASSERT_TRUE(iv.valid()) << "node " << node;
  std::set<ValueId> covered = IntervalMembers(enc, iv, class_space);
  const std::vector<ValueId>& residuals =
      class_space ? enc.ClassResiduals(node) : enc.PropertyResiduals(node);
  for (ValueId r : residuals) {
    EXPECT_TRUE(covered.insert(r).second)
        << "node " << node << ": residual " << r
        << " already inside the owned interval";
  }
  const std::vector<ValueId> closure = class_space
                                           ? schema.SubClassesOf(node)
                                           : schema.SubPropertiesOf(node);
  EXPECT_EQ(covered, std::set<ValueId>(closure.begin(), closure.end()))
      << "node " << node;
}

TEST(HierarchyEncodingTest, TreeSubtreesAreContiguousIntervals) {
  // Work > Publication > {Book > Novel, Article}; Person > Author.
  Schema schema;
  schema.AddSubClass(kPublication, kWork);
  schema.AddSubClass(kBook, kPublication);
  schema.AddSubClass(kNovel, kBook);
  schema.AddSubClass(kArticle, kPublication);
  schema.AddSubClass(kAuthor, kPerson);
  schema.Finalize();

  HierarchyEncoding enc = HierarchyEncoding::Build(schema, kRdfType);
  EXPECT_EQ(enc.rdf_type(), kRdfType);
  EXPECT_EQ(enc.num_class_hids(), 7u);

  for (ValueId c : {kWork, kPublication, kBook, kNovel, kArticle, kPerson,
                    kAuthor}) {
    ExpectCoversClosure(schema, enc, c, /*class_space=*/true);
    // A tree has no multi-parent fallout.
    EXPECT_TRUE(enc.ClassResiduals(c).empty()) << "class " << c;
    // hids round-trip.
    EXPECT_EQ(enc.ClassOfHid(enc.ClassHid(c)), c);
    // The node's own hid is the base of its subtree interval (DFS preorder).
    EXPECT_EQ(enc.ClassHid(c), enc.ClassInterval(c).lo);
  }
  // Subtree sizes match closure sizes when there are no residuals.
  EXPECT_EQ(enc.ClassInterval(kWork).size(), 5u);
  EXPECT_EQ(enc.ClassInterval(kPublication).size(), 4u);
  EXPECT_EQ(enc.ClassInterval(kBook).size(), 2u);
  EXPECT_EQ(enc.ClassInterval(kNovel).size(), 1u);
  // Disjoint roots get disjoint intervals.
  const HierarchyInterval work = enc.ClassInterval(kWork);
  const HierarchyInterval person = enc.ClassInterval(kPerson);
  EXPECT_TRUE(work.hi <= person.lo || person.hi <= work.lo);
}

TEST(HierarchyEncodingTest, DiamondChildOwnedByOneParentResidualInOther) {
  // Diamond: Novel < Book, Novel < Article, Book < Work, Article < Work.
  Schema schema;
  schema.AddSubClass(kBook, kWork);
  schema.AddSubClass(kArticle, kWork);
  schema.AddSubClass(kNovel, kBook);
  schema.AddSubClass(kNovel, kArticle);
  schema.Finalize();

  HierarchyEncoding enc = HierarchyEncoding::Build(schema, kRdfType);
  EXPECT_EQ(enc.num_class_hids(), 4u);

  // Novel is owned by exactly one of its parents; the other sees it as a
  // residual. Which parent wins is an implementation detail (DFS order),
  // but ownership must be exclusive and the closure invariant must hold.
  const bool in_book =
      enc.ClassHid(kNovel) >= enc.ClassInterval(kBook).lo &&
      enc.ClassHid(kNovel) < enc.ClassInterval(kBook).hi;
  const bool in_article =
      enc.ClassHid(kNovel) >= enc.ClassInterval(kArticle).lo &&
      enc.ClassHid(kNovel) < enc.ClassInterval(kArticle).hi;
  EXPECT_NE(in_book, in_article);
  const ValueId other = in_book ? kArticle : kBook;
  EXPECT_EQ(enc.ClassResiduals(other), std::vector<ValueId>{kNovel});

  for (ValueId c : {kWork, kBook, kArticle, kNovel}) {
    ExpectCoversClosure(schema, enc, c, /*class_space=*/true);
  }
  // The diamond's apex owns everything: all four classes fall inside its
  // interval, so it needs no residuals.
  EXPECT_EQ(enc.ClassInterval(kWork).size(), 4u);
  EXPECT_TRUE(enc.ClassResiduals(kWork).empty());
}

TEST(HierarchyEncodingTest, CycleMembersStayMutuallyReachable) {
  // Book ≼ Publication ≼ Book (equivalence cycle) hanging under Work.
  Schema schema;
  schema.AddSubClass(kBook, kPublication);
  schema.AddSubClass(kPublication, kBook);
  schema.AddSubClass(kPublication, kWork);
  schema.Finalize();

  HierarchyEncoding enc = HierarchyEncoding::Build(schema, kRdfType);
  EXPECT_EQ(enc.num_class_hids(), 3u);
  // Every node still gets exactly one hid and the closure invariant holds —
  // for cycle members the closure includes each other.
  for (ValueId c : {kWork, kPublication, kBook}) {
    ExpectCoversClosure(schema, enc, c, /*class_space=*/true);
    EXPECT_NE(enc.ClassHid(c), HierarchyEncoding::kInvalidHid);
  }
}

TEST(HierarchyEncodingTest, PropertySpaceIsIndependentOfClassSpace) {
  Schema schema;
  schema.AddSubClass(kBook, kWork);
  schema.AddSubProperty(kHasAuthor, kContributor);
  schema.AddSubProperty(kWrittenBy, kHasAuthor);
  schema.AddSubProperty(kHasEditor, kContributor);
  schema.Finalize();

  HierarchyEncoding enc = HierarchyEncoding::Build(schema, kRdfType);
  EXPECT_EQ(enc.num_class_hids(), 2u);
  EXPECT_EQ(enc.num_property_hids(), 4u);
  for (ValueId p : {kContributor, kHasAuthor, kWrittenBy, kHasEditor}) {
    ExpectCoversClosure(schema, enc, p, /*class_space=*/false);
    EXPECT_EQ(enc.PropertyOfHid(enc.PropertyHid(p)), p);
  }
  EXPECT_EQ(enc.PropertyInterval(kContributor).size(), 4u);
  EXPECT_EQ(enc.PropertyInterval(kHasAuthor).size(), 2u);
  // Properties are invisible to the class space and vice versa.
  EXPECT_EQ(enc.ClassHid(kContributor), HierarchyEncoding::kInvalidHid);
  EXPECT_EQ(enc.PropertyHid(kBook), HierarchyEncoding::kInvalidHid);
}

TEST(HierarchyEncodingTest, UnknownNodesYieldInvalidLookups) {
  Schema schema;
  schema.AddSubClass(kBook, kWork);
  schema.Finalize();
  HierarchyEncoding enc = HierarchyEncoding::Build(schema, kRdfType);

  constexpr ValueId kUnknown = 999;
  EXPECT_EQ(enc.ClassHid(kUnknown), HierarchyEncoding::kInvalidHid);
  EXPECT_FALSE(enc.ClassInterval(kUnknown).valid());
  EXPECT_TRUE(enc.ClassResiduals(kUnknown).empty());
  EXPECT_EQ(enc.PropertyHid(kUnknown), HierarchyEncoding::kInvalidHid);
  EXPECT_FALSE(enc.PropertyInterval(kUnknown).valid());
  EXPECT_TRUE(enc.PropertyResiduals(kUnknown).empty());
}

TEST(HierarchyEncodingTest, TripleStoreHidRangeMatchesPerClassScans) {
  // Work > {Book, Article}; instances typed at the leaves plus one at the
  // root. The shadow index must return exactly the union of the per-class
  // type scans for the root's interval.
  Schema schema;
  schema.AddSubClass(kBook, kWork);
  schema.AddSubClass(kArticle, kWork);
  schema.Finalize();

  constexpr ValueId kB1 = 100, kB2 = 101, kA1 = 102, kW1 = 103, kX = 104,
                    kLikes = 30;
  std::vector<Triple> triples = {
      {kB1, kRdfType, kBook},  {kB2, kRdfType, kBook},
      {kA1, kRdfType, kArticle}, {kW1, kRdfType, kWork},
      {kX, kLikes, kB1},
  };
  TripleStore store = TripleStore::Build(triples);
  store.AttachHierarchy(std::make_shared<const HierarchyEncoding>(
      HierarchyEncoding::Build(schema, kRdfType)));
  const HierarchyEncoding& enc = *store.hierarchy();

  const HierarchyInterval work = enc.ClassInterval(kWork);
  EXPECT_EQ(store.CountClassHidRange(work.lo, work.hi), 4u);
  std::set<ValueId> subjects;
  for (const Triple& t : store.MatchClassHidRange(work.lo, work.hi)) {
    EXPECT_EQ(t.p, kRdfType);
    subjects.insert(t.s);
  }
  EXPECT_EQ(subjects, (std::set<ValueId>{kB1, kB2, kA1, kW1}));

  const HierarchyInterval book = enc.ClassInterval(kBook);
  EXPECT_EQ(store.CountClassHidRange(book.lo, book.hi), 2u);
  // Non-type triples never enter the class shadow index.
  EXPECT_EQ(store.CountClassHidRange(0, enc.num_class_hids()), 4u);
}

}  // namespace
}  // namespace rdfopt
