// Semantic corner cases of query answering: cartesian products, boolean
// filters, variable-property queries, schema-property queries, empty
// stores — each checked against the RDF semantics (evaluation over the
// saturation).

#include <set>

#include <gtest/gtest.h>

#include "optimizer/answering.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

std::set<std::vector<ValueId>> RowSet(const Relation& r) {
  std::set<std::vector<ValueId>> rows;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    rows.insert(std::vector<ValueId>(r.row(i).begin(), r.row(i).end()));
  }
  return rows;
}

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const char* s, const char* p, const char* o) {
      graph_.AddIri(s, p, o);
    };
    // Small zoo: two properties, one subproperty, one domain constraint.
    graph_.AddIri("feeds", std::string(kRdfsSubPropertyOf), "caresFor");
    graph_.AddIri("caresFor", std::string(kRdfsDomain), "Keeper");
    add("alice", "feeds", "rex");
    add("bob", "caresFor", "lea");
    add("rex", "bites", "bob");
    graph_.FinalizeSchema();
    store_ = TripleStore::Build(graph_.data_triples());
    SaturationResult sat = Saturate(store_, graph_.schema(), graph_.vocab());
    saturated_ = std::move(sat.store);
    profile_ = NativeStoreProfile();
  }

  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }

  Graph graph_;
  TripleStore store_;
  TripleStore saturated_;
  EngineProfile profile_;
};

TEST_F(SemanticsTest, CartesianProductQueryEvaluates) {
  // Two disconnected atoms: 1 feeds x 1 bites = 1x1 product rows.
  Query q = MustParse(
      "SELECT ?a ?b WHERE { ?a <feeds> ?x . ?y <bites> ?b . }");
  Evaluator evaluator(&store_, &profile_);
  Result<Relation> r = evaluator.EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 1u);
  EXPECT_EQ(r.ValueOrDie().at(0, 0), graph_.dict().LookupIri("alice"));
  EXPECT_EQ(r.ValueOrDie().at(0, 1), graph_.dict().LookupIri("bob"));
}

TEST_F(SemanticsTest, AllConstantAtomActsAsFilter) {
  Query positive = MustParse(
      "SELECT ?a WHERE { ?a <feeds> ?x . <rex> <bites> <bob> . }");
  Evaluator evaluator(&store_, &profile_);
  Result<Relation> r1 = evaluator.EvaluateCQ(positive.cq, nullptr);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.ValueOrDie().num_rows(), 1u);

  Query negative = MustParse(
      "SELECT ?a WHERE { ?a <feeds> ?x . <rex> <bites> <lea> . }");
  Result<Relation> r2 = evaluator.EvaluateCQ(negative.cq, nullptr);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.ValueOrDie().num_rows(), 0u);
}

TEST_F(SemanticsTest, VariablePropertyQueryFindsDerivedTriples) {
  // q(p) :- alice ?p rex: explicit feeds, derived caresFor.
  Query q = MustParse("SELECT ?p WHERE { <alice> ?p <rex> . }");
  Statistics stats = Statistics::Compute(store_);
  QueryAnswerer answerer(&store_, &saturated_, &graph_.schema(),
                         &graph_.vocab(), &stats, &profile_);
  AnswerOptions gcov;
  gcov.strategy = Strategy::kGcov;
  Result<AnswerOutcome> r = answerer.Answer(q, gcov);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<std::vector<ValueId>> rows = RowSet(r.ValueOrDie().answers);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows.count({graph_.dict().LookupIri("feeds")}));
  EXPECT_TRUE(rows.count({graph_.dict().LookupIri("caresFor")}));
}

TEST_F(SemanticsTest, DerivedTypeReachableThroughVariableProperty) {
  // q(o) :- alice ?p ?o with p->rdf:type: alice is a derived Keeper.
  Query q = MustParse("SELECT ?o WHERE { <alice> ?p ?o . }");
  Statistics stats = Statistics::Compute(store_);
  QueryAnswerer answerer(&store_, &saturated_, &graph_.schema(),
                         &graph_.vocab(), &stats, &profile_);
  AnswerOptions ucq;
  ucq.strategy = Strategy::kUcq;
  Result<AnswerOutcome> r = answerer.Answer(q, ucq);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<std::vector<ValueId>> rows = RowSet(r.ValueOrDie().answers);
  EXPECT_TRUE(rows.count({graph_.dict().LookupIri("Keeper")}));
  EXPECT_TRUE(rows.count({graph_.dict().LookupIri("rex")}));

  // Cross-check against the saturation strategy.
  AnswerOptions sat;
  sat.strategy = Strategy::kSaturation;
  Result<AnswerOutcome> truth = answerer.Answer(q, sat);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(rows, RowSet(truth.ValueOrDie().answers));
}

TEST_F(SemanticsTest, SchemaPropertyQueriesReturnEmptyConsistently) {
  // Constraint triples live in the schema, not in the data: a BGP over
  // rdfs:subPropertyOf matches nothing, under every strategy (this is the
  // paper's DB-fragment scoping: queries target application data).
  Query q = MustParse("SELECT ?a ?b WHERE { ?a rdfs:subPropertyOf ?b . }");
  Statistics stats = Statistics::Compute(store_);
  QueryAnswerer answerer(&store_, &saturated_, &graph_.schema(),
                         &graph_.vocab(), &stats, &profile_);
  for (Strategy s : {Strategy::kUcq, Strategy::kGcov,
                     Strategy::kSaturation}) {
    AnswerOptions options;
    options.strategy = s;
    Result<AnswerOutcome> r = answerer.Answer(q, options);
    ASSERT_TRUE(r.ok()) << StrategyName(s);
    EXPECT_EQ(r.ValueOrDie().answers.num_rows(), 0u) << StrategyName(s);
  }
}

TEST_F(SemanticsTest, EmptyStoreAnswersEmpty) {
  TripleStore empty = TripleStore::Build({});
  SaturationResult sat = Saturate(empty, graph_.schema(), graph_.vocab());
  Statistics stats = Statistics::Compute(empty);
  QueryAnswerer answerer(&empty, &sat.store, &graph_.schema(),
                         &graph_.vocab(), &stats, &profile_);
  Query q = MustParse("SELECT ?a WHERE { ?a <feeds> ?x . }");
  for (Strategy s : {Strategy::kUcq, Strategy::kScq, Strategy::kGcov,
                     Strategy::kEcov, Strategy::kSaturation}) {
    AnswerOptions options;
    options.strategy = s;
    Result<AnswerOutcome> r = answerer.Answer(q, options);
    ASSERT_TRUE(r.ok()) << StrategyName(s) << r.status().ToString();
    EXPECT_EQ(r.ValueOrDie().answers.num_rows(), 0u);
  }
}

TEST_F(SemanticsTest, AskSemanticsThroughReformulation) {
  // ASK { ?x rdf:type Keeper }: only derivable facts make it true.
  Query q = MustParse("ASK WHERE { ?x rdf:type <Keeper> . }");
  Statistics stats = Statistics::Compute(store_);
  QueryAnswerer answerer(&store_, &saturated_, &graph_.schema(),
                         &graph_.vocab(), &stats, &profile_);
  AnswerOptions gcov;
  gcov.strategy = Strategy::kGcov;
  Result<AnswerOutcome> r = answerer.Answer(q, gcov);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().answers.num_rows(), 1u);  // True.
  EXPECT_EQ(r.ValueOrDie().answers.arity(), 0u);

  // Direct evaluation on the raw store would say false: no explicit Keeper.
  Evaluator raw(&store_, &profile_);
  Result<Relation> direct = raw.EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.ValueOrDie().num_rows(), 0u);
}

TEST_F(SemanticsTest, DuplicateAtomsDoNotDuplicateAnswers) {
  Query q = MustParse(
      "SELECT ?a WHERE { ?a <feeds> ?x . ?a <feeds> ?x . }");
  Evaluator evaluator(&store_, &profile_);
  Result<Relation> r = evaluator.EvaluateCQ(q.cq, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 1u);
}

}  // namespace
}  // namespace rdfopt
