#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "storage/statistics.h"

namespace rdfopt {
namespace {

CostConstants TestConstants() {
  CostConstants k;
  k.c_db = 100.0;
  k.c_t = 1.0;
  k.c_j = 2.0;
  k.c_m = 3.0;
  k.c_l = 0.5;
  k.c_k = 0.1;
  k.dedup_spill_rows = 1000.0;
  k.c_union_term = 4.0;
  return k;
}

TEST(PaperCostModelTest, UniqueCostRegimes) {
  PaperCostModel model(TestConstants());
  EXPECT_DOUBLE_EQ(model.UniqueCost(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.UniqueCost(1.0), 0.0);
  // Hashing regime: c_l * n.
  EXPECT_DOUBLE_EQ(model.UniqueCost(100.0), 50.0);
  // Spill regime: c_k * n * log2(n).
  double n = 4096.0;
  EXPECT_DOUBLE_EQ(model.UniqueCost(n), 0.1 * n * 12.0);
}

TEST(PaperCostModelTest, UcqCostComposition) {
  PaperCostModel model(TestConstants());
  UcqCostInputs u;
  u.num_disjuncts = 10;
  u.scan_sum = 500.0;
  u.est_result = 100.0;
  // (c_t + c_j)*scan + c_union_term*n + c_l*result.
  EXPECT_DOUBLE_EQ(model.UcqCost(u), 3.0 * 500.0 + 4.0 * 10 + 0.5 * 100.0);
}

TEST(PaperCostModelTest, SingleComponentHasNoJoinOrMatCost) {
  PaperCostModel model(TestConstants());
  UcqCostInputs u;
  u.num_disjuncts = 1;
  u.scan_sum = 100.0;
  u.est_result = 10.0;
  double expected = 100.0 /*c_db*/ + model.UcqCost(u) +
                    model.UniqueCost(10.0) /*final*/;
  EXPECT_DOUBLE_EQ(model.JucqCost({u}, 10.0), expected);
}

TEST(PaperCostModelTest, LargestComponentIsPipelined) {
  PaperCostModel model(TestConstants());
  UcqCostInputs small;
  small.num_disjuncts = 1;
  small.scan_sum = 10.0;
  small.est_result = 5.0;
  UcqCostInputs large;
  large.num_disjuncts = 1;
  large.scan_sum = 1000.0;
  large.est_result = 500.0;

  double cost = model.JucqCost({small, large}, 5.0);
  // Join cost is linear in the estimated component results; materialization
  // is charged on the small component's result only (the large one is
  // pipelined).
  double expected = 100.0 + model.UcqCost(small) + model.UcqCost(large) +
                    2.0 * (5.0 + 500.0) + 3.0 * 5.0 + model.UniqueCost(5.0);
  EXPECT_DOUBLE_EQ(cost, expected);
}

TEST(PaperCostModelTest, MoreComponentsMoreJoinCost) {
  PaperCostModel model(TestConstants());
  UcqCostInputs u;
  u.num_disjuncts = 1;
  u.scan_sum = 100.0;
  u.est_result = 50.0;
  double two = model.JucqCost({u, u}, 50.0);
  double three = model.JucqCost({u, u, u}, 50.0);
  EXPECT_GT(three, two);
}

TEST(ComputeUcqCostInputsTest, AggregatesFromMaterializedUcq) {
  TripleStore store = TripleStore::Build({
      {1, 10, 20},
      {2, 10, 21},
      {3, 11, 20},
  });
  Statistics stats = Statistics::Compute(store);
  CardinalityEstimator estimator(&store, &stats);

  UnionQuery ucq;
  ucq.head = {0, 1};
  ConjunctiveQuery cq1;
  cq1.head = {0, 1};
  cq1.atoms.push_back(TriplePattern{
      PatternTerm::Var(0), PatternTerm::Const(10), PatternTerm::Var(1)});
  ConjunctiveQuery cq2;
  cq2.head = {0, 1};
  cq2.atoms.push_back(TriplePattern{
      PatternTerm::Var(0), PatternTerm::Const(11), PatternTerm::Var(1)});
  ucq.disjuncts = {cq1, cq2};

  UcqCostInputs inputs = ComputeUcqCostInputs(ucq, estimator);
  EXPECT_EQ(inputs.num_disjuncts, 2u);
  EXPECT_DOUBLE_EQ(inputs.scan_sum, 3.0);    // 2 + 1.
  EXPECT_DOUBLE_EQ(inputs.est_result, 3.0);  // 2 + 1.
}

}  // namespace
}  // namespace rdfopt
