#include "common/trace.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "json_checker.h"
#include "optimizer/answering.h"
#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

using rdfopt::testing::IsValidJson;

TEST(TraceSpanTest, NoSessionMeansNoRecordingAndNoCrash) {
  ASSERT_EQ(TraceSession::Current(), nullptr);
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
  // Attributes on an inactive span are discarded without formatting.
  span.Attr("key", "value");
  span.Attr("cost", 1.5);
  span.Attr("rows", uint64_t{42});
  span.Attr("flag", true);
}

TEST(TraceSpanTest, SpansNestByConstructionOrder) {
  TraceSession session;
  ScopedTraceSession scoped(&session);
  {
    TraceSpan outer("outer");
    ASSERT_TRUE(outer.active());
    {
      TraceSpan middle("middle");
      TraceSpan inner("inner");
      (void)middle;
      (void)inner;
    }
    TraceSpan sibling("sibling");
    (void)sibling;
  }
  ASSERT_EQ(session.spans().size(), 4u);
  const TraceSpanRecord& outer = session.spans()[0];
  const TraceSpanRecord& middle = session.spans()[1];
  const TraceSpanRecord& inner = session.spans()[2];
  const TraceSpanRecord& sibling = session.spans()[3];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(middle.parent, 0);
  EXPECT_EQ(middle.depth, 1);
  EXPECT_EQ(inner.parent, 1);
  EXPECT_EQ(inner.depth, 2);
  EXPECT_EQ(sibling.parent, 0);
  EXPECT_EQ(sibling.depth, 1);
  for (const TraceSpanRecord& span : session.spans()) {
    EXPECT_FALSE(span.open);
    EXPECT_GE(span.duration_ms, 0.0);
    EXPECT_GE(span.start_ms, 0.0);
  }
  // Children start after and end before their parent closes.
  EXPECT_GE(inner.start_ms, outer.start_ms);
  EXPECT_LE(inner.start_ms + inner.duration_ms,
            outer.start_ms + outer.duration_ms + 1e-6);
}

TEST(TraceSpanTest, AttributesAreRecordedWithNumericTags) {
  TraceSession session;
  ScopedTraceSession scoped(&session);
  {
    TraceSpan span("attrs");
    span.Attr("label", "hello");
    span.Attr("cost", 12.5);
    span.Attr("rows", uint64_t{7});
    span.Attr("flag", true);
  }
  const TraceSpanRecord* span = session.FindSpan("attrs");
  ASSERT_NE(span, nullptr);
  ASSERT_EQ(span->attributes.size(), 4u);
  const TraceSpanRecord::Attribute* label = span->FindAttribute("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->value, "hello");
  EXPECT_FALSE(label->numeric);
  const TraceSpanRecord::Attribute* cost = span->FindAttribute("cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->value, "12.5");
  EXPECT_TRUE(cost->numeric);
  const TraceSpanRecord::Attribute* rows = span->FindAttribute("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->value, "7");
  EXPECT_TRUE(rows->numeric);
  EXPECT_EQ(span->FindAttribute("missing"), nullptr);
}

TEST(TraceSpanTest, NonFiniteAttributesStayValidJson) {
  TraceSession session;
  ScopedTraceSession scoped(&session);
  {
    TraceSpan span("inf");
    span.Attr("cost", std::numeric_limits<double>::infinity());
  }
  const TraceSpanRecord* span = session.FindSpan("inf");
  ASSERT_NE(span, nullptr);
  EXPECT_FALSE(span->attributes[0].numeric);  // Quoted, not a bare `inf`.
  std::string error;
  EXPECT_TRUE(IsValidJson(session.ToJson(), &error)) << error;
}

TEST(TraceSessionTest, SpanCapDropsButKeepsCounting) {
  TraceSession session;
  session.set_max_spans(2);
  ScopedTraceSession scoped(&session);
  {
    TraceSpan a("a");
    TraceSpan b("b");
    TraceSpan c("c");  // Dropped.
    EXPECT_TRUE(a.active());
    EXPECT_TRUE(b.active());
    EXPECT_FALSE(c.active());
    c.Attr("ignored", uint64_t{1});
  }
  EXPECT_EQ(session.spans().size(), 2u);
  EXPECT_EQ(session.dropped_spans(), 1u);
  EXPECT_NE(session.ToString().find("dropped"), std::string::npos);
}

TEST(TraceSessionTest, ClearResetsSpansAndClock) {
  TraceSession session;
  ScopedTraceSession scoped(&session);
  { TraceSpan span("first"); }
  ASSERT_EQ(session.spans().size(), 1u);
  session.Clear();
  EXPECT_TRUE(session.spans().empty());
  EXPECT_EQ(session.dropped_spans(), 0u);
  { TraceSpan span("second"); }
  ASSERT_EQ(session.spans().size(), 1u);
  EXPECT_EQ(session.spans()[0].name, "second");
  EXPECT_EQ(session.spans()[0].parent, -1);
}

TEST(TraceSessionTest, InstallReturnsPreviousAndScopedRestores) {
  TraceSession a;
  TraceSession b;
  ASSERT_EQ(TraceSession::Current(), nullptr);
  {
    ScopedTraceSession scope_a(&a);
    EXPECT_EQ(TraceSession::Current(), &a);
    {
      ScopedTraceSession scope_b(&b);
      EXPECT_EQ(TraceSession::Current(), &b);
    }
    EXPECT_EQ(TraceSession::Current(), &a);
  }
  EXPECT_EQ(TraceSession::Current(), nullptr);
}

TEST(TraceSessionTest, ToStringIndentsAndTruncates) {
  TraceSession session;
  ScopedTraceSession scoped(&session);
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
    (void)outer;
    (void)inner;
  }
  std::string tree = session.ToString();
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("\n  inner"), std::string::npos);  // One level in.
  std::string truncated = session.ToString(/*max_lines=*/1);
  EXPECT_NE(truncated.find("more spans"), std::string::npos);
}

TEST(TraceSessionTest, ToJsonIsValidAndNested) {
  TraceSession session;
  ScopedTraceSession scoped(&session);
  {
    TraceSpan outer("outer");
    outer.Attr("note", "quote\"and\\slash\n");
    TraceSpan inner("inner");
    inner.Attr("rows", uint64_t{3});
  }
  std::string json = session.ToJson();
  std::string error;
  EXPECT_TRUE(IsValidJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
}

// Cross-strategy observability: the same query answered through UCQ, SCQ
// and GCov must produce identical answers, and every outcome's rolled-up
// EvalMetrics must stay internally consistent with the outcome-level
// accounting and the global metrics registry.
class CrossStrategyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph();
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, graph_);
    graph_->FinalizeSchema();
    store_ = new TripleStore(TripleStore::Build(graph_->data_triples()));
    SaturationResult sat =
        Saturate(*store_, graph_->schema(), graph_->vocab());
    saturated_ = new TripleStore(std::move(sat.store));
    stats_ = new Statistics(Statistics::Compute(*store_));
    profile_ = new EngineProfile(PostgresLikeProfile());
    answerer_ = new QueryAnswerer(store_, saturated_, &graph_->schema(),
                                  &graph_->vocab(), stats_, profile_);
  }

  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_->dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }

  static std::set<std::vector<ValueId>> RowSet(const Relation& r) {
    std::set<std::vector<ValueId>> rows;
    for (size_t i = 0; i < r.num_rows(); ++i) {
      rows.insert(std::vector<ValueId>(r.row(i).begin(), r.row(i).end()));
    }
    return rows;
  }

  static Graph* graph_;
  static TripleStore* store_;
  static TripleStore* saturated_;
  static Statistics* stats_;
  static EngineProfile* profile_;
  static QueryAnswerer* answerer_;
};

Graph* CrossStrategyTest::graph_ = nullptr;
TripleStore* CrossStrategyTest::store_ = nullptr;
TripleStore* CrossStrategyTest::saturated_ = nullptr;
Statistics* CrossStrategyTest::stats_ = nullptr;
EngineProfile* CrossStrategyTest::profile_ = nullptr;
QueryAnswerer* CrossStrategyTest::answerer_ = nullptr;

TEST_F(CrossStrategyTest, StrategiesAgreeAndMetricsStayConsistent) {
  Query q = MustParse(LubmMotivatingQ1().text);
  MetricCounter* engine_union_terms =
      MetricsRegistry::Global().GetCounter("engine.union_terms");
  MetricCounter* queries =
      MetricsRegistry::Global().GetCounter("optimizer.queries");

  std::set<std::vector<ValueId>> reference;
  bool have_reference = false;
  for (Strategy s : {Strategy::kUcq, Strategy::kScq, Strategy::kGcov}) {
    AnswerOptions options;
    options.strategy = s;
    uint64_t union_terms_before = engine_union_terms->value();
    uint64_t queries_before = queries->value();
    Result<AnswerOutcome> r = answerer_->Answer(q, options);
    ASSERT_TRUE(r.ok()) << StrategyName(s) << ": " << r.status().ToString();
    const AnswerOutcome& o = r.ValueOrDie();

    // Identical answer sets across strategies.
    if (!have_reference) {
      reference = RowSet(o.answers);
      have_reference = true;
    } else {
      EXPECT_EQ(RowSet(o.answers), reference) << StrategyName(s);
    }

    // Rolled-up EvalMetrics vs. outcome-level accounting: the evaluator
    // counted exactly the union terms the reformulation assembled, and
    // evaluate_ms is derived from the authoritative eval.elapsed_ms.
    EXPECT_EQ(o.eval.union_terms, o.union_terms) << StrategyName(s);
    EXPECT_DOUBLE_EQ(o.evaluate_ms, o.eval.elapsed_ms) << StrategyName(s);
    EXPECT_GT(o.eval.rows_scanned + o.eval.join_input_rows, 0u)
        << StrategyName(s);

    // Registry deltas match the outcome.
    EXPECT_EQ(engine_union_terms->value() - union_terms_before,
              o.union_terms)
        << StrategyName(s);
    EXPECT_EQ(queries->value() - queries_before, 1u) << StrategyName(s);
  }
}

TEST_F(CrossStrategyTest, GcovTraceCarriesPipelinePhasesAndCounters) {
  Query q = MustParse(LubmMotivatingQ1().text);
  TraceSession session;
  ScopedTraceSession scoped(&session);
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  Result<AnswerOutcome> r = answerer_->Answer(q, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const AnswerOutcome& o = r.ValueOrDie();

  const TraceSpanRecord* root = session.FindSpan("answer.query");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(root->FindAttribute("strategy"), nullptr);
  EXPECT_EQ(root->FindAttribute("strategy")->value, "GCov");

  const TraceSpanRecord* search = session.FindSpan("answer.cover_search");
  ASSERT_NE(search, nullptr);
  ASSERT_NE(search->FindAttribute("covers_examined"), nullptr);
  EXPECT_EQ(search->FindAttribute("covers_examined")->value,
            std::to_string(o.covers_examined));
  EXPECT_NE(session.FindSpan("cover.candidate"), nullptr);
  EXPECT_NE(session.FindSpan("answer.reformulate"), nullptr);
  const TraceSpanRecord* evaluate = session.FindSpan("answer.evaluate");
  ASSERT_NE(evaluate, nullptr);
  EXPECT_NE(evaluate->FindAttribute("est_cost"), nullptr);
  EXPECT_NE(evaluate->FindAttribute("actual_ms"), nullptr);
  ASSERT_NE(session.FindSpan("engine.jucq"), nullptr);

  // Per-component spans roll up into the lump-sum EvalMetrics: the
  // engine.ucq spans' union_terms sum to the outcome's count, and there is
  // one per JUCQ component.
  size_t component_spans = 0;
  uint64_t span_union_terms = 0;
  uint64_t span_rows_scanned = 0;
  for (const TraceSpanRecord& span : session.spans()) {
    if (span.name != "engine.ucq") continue;
    ++component_spans;
    const TraceSpanRecord::Attribute* terms =
        span.FindAttribute("union_terms");
    ASSERT_NE(terms, nullptr);
    span_union_terms += std::stoull(terms->value);
    const TraceSpanRecord::Attribute* scanned =
        span.FindAttribute("rows_scanned");
    ASSERT_NE(scanned, nullptr);
    span_rows_scanned += std::stoull(scanned->value);
  }
  EXPECT_EQ(component_spans, o.num_components);
  EXPECT_EQ(span_union_terms, o.union_terms);
  EXPECT_EQ(span_union_terms, o.eval.union_terms);
  EXPECT_EQ(span_rows_scanned, o.eval.rows_scanned);

  std::string error;
  EXPECT_TRUE(IsValidJson(session.ToJson(), &error)) << error;
}

}  // namespace
}  // namespace rdfopt
