#include "reformulation/subsumption.h"

#include <set>

#include <gtest/gtest.h>

#include "engine/evaluator.h"
#include "rdf/graph.h"
#include "reasoner/saturation.h"
#include "reformulation/reformulator.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

TriplePattern Atom(PatternTerm s, PatternTerm p, PatternTerm o) {
  return TriplePattern{s, p, o};
}

TEST(CqSubsumesTest, GenericTypeAtomSubsumesInstantiated) {
  // q(x, y) :- x type y  subsumes  q(x, y=Book) :- x type Book.
  constexpr ValueId kType = 1, kBook = 2;
  ConjunctiveQuery general;
  general.head = {0, 1};
  general.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(kType),
           PatternTerm::Var(1)));
  ConjunctiveQuery specific;
  specific.head = {0, 1};
  specific.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(kType),
           PatternTerm::Const(kBook)));
  specific.head_bindings = {{1, kBook}};
  EXPECT_TRUE(CqSubsumes(general, specific));
  EXPECT_FALSE(CqSubsumes(specific, general));
}

TEST(CqSubsumesTest, ExtraAtomMakesQueryMoreSpecific) {
  // q(x) :- x p y  subsumes  q(x) :- x p y . x q z.
  ConjunctiveQuery general;
  general.head = {0};
  general.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(5), PatternTerm::Var(1)));
  ConjunctiveQuery specific = general;
  specific.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(6), PatternTerm::Var(2)));
  EXPECT_TRUE(CqSubsumes(general, specific));
  EXPECT_FALSE(CqSubsumes(specific, general));
}

TEST(CqSubsumesTest, VariableMapsToConstant) {
  // q(x) :- x p y  subsumes  q(x) :- x p c.
  ConjunctiveQuery general;
  general.head = {0};
  general.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(5), PatternTerm::Var(1)));
  ConjunctiveQuery specific;
  specific.head = {0};
  specific.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(5),
           PatternTerm::Const(9)));
  EXPECT_TRUE(CqSubsumes(general, specific));
  EXPECT_FALSE(CqSubsumes(specific, general));
}

TEST(CqSubsumesTest, HeadVariableMustMapToItself) {
  // q(x) :- x p y  does NOT subsume  q(x) :- z p x  (x plays another role).
  ConjunctiveQuery general;
  general.head = {0};
  general.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(5), PatternTerm::Var(1)));
  ConjunctiveQuery specific;
  specific.head = {0};
  specific.atoms.push_back(
      Atom(PatternTerm::Var(1), PatternTerm::Const(5), PatternTerm::Var(0)));
  EXPECT_FALSE(CqSubsumes(general, specific));
}

TEST(CqSubsumesTest, DifferentHeadsNeverSubsume) {
  ConjunctiveQuery a;
  a.head = {0};
  a.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(5), PatternTerm::Var(1)));
  ConjunctiveQuery b = a;
  b.head = {0, 1};
  EXPECT_FALSE(CqSubsumes(a, b));
  EXPECT_FALSE(CqSubsumes(b, a));
}

TEST(CqSubsumesTest, EquivalentQueriesSubsumeEachOther) {
  // Same query with a duplicated atom: equivalent both ways.
  ConjunctiveQuery a;
  a.head = {0};
  a.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(5), PatternTerm::Var(1)));
  ConjunctiveQuery b = a;
  b.atoms.push_back(b.atoms[0]);
  EXPECT_TRUE(CqSubsumes(a, b));
  EXPECT_TRUE(CqSubsumes(b, a));
}

TEST(CqSubsumesTest, MismatchedBindingsBlockSubsumption) {
  ConjunctiveQuery a;
  a.head = {0};
  a.head_bindings = {{0, 7}};
  a.atoms.push_back(
      Atom(PatternTerm::Var(1), PatternTerm::Const(5), PatternTerm::Var(2)));
  ConjunctiveQuery b = a;
  b.head_bindings = {{0, 8}};
  EXPECT_FALSE(CqSubsumes(a, b));
  EXPECT_FALSE(CqSubsumes(b, a));
}

TEST(PruneSubsumedTest, RemovesInstantiatedTypeDisjuncts) {
  // UCQ: { q(x,y):- x type y,  q(x,Book):- x type Book,
  //        q(x,Pub):- x type Pub } -> only the generic disjunct survives.
  constexpr ValueId kType = 1, kBook = 2, kPub = 3;
  UnionQuery ucq;
  ucq.head = {0, 1};
  ConjunctiveQuery generic;
  generic.head = {0, 1};
  generic.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(kType),
           PatternTerm::Var(1)));
  ucq.disjuncts.push_back(generic);
  for (ValueId cls : {kBook, kPub}) {
    ConjunctiveQuery inst;
    inst.head = {0, 1};
    inst.atoms.push_back(Atom(PatternTerm::Var(0), PatternTerm::Const(kType),
                              PatternTerm::Const(cls)));
    inst.head_bindings = {{1, cls}};
    ucq.disjuncts.push_back(inst);
  }
  EXPECT_EQ(PruneSubsumedDisjuncts(&ucq), 2u);
  ASSERT_EQ(ucq.size(), 1u);
  EXPECT_EQ(ucq.disjuncts[0], generic);
}

TEST(PruneSubsumedTest, KeepsFirstOfEquivalentPair) {
  ConjunctiveQuery a;
  a.head = {0};
  a.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(5), PatternTerm::Var(1)));
  ConjunctiveQuery b = a;
  b.atoms.push_back(b.atoms[0]);  // Equivalent.
  UnionQuery ucq;
  ucq.head = a.head;
  ucq.disjuncts = {a, b};
  EXPECT_EQ(PruneSubsumedDisjuncts(&ucq), 1u);
  ASSERT_EQ(ucq.size(), 1u);
  EXPECT_EQ(ucq.disjuncts[0].atoms.size(), 1u);
}

TEST(PruneSubsumedTest, NoFalsePositives) {
  ConjunctiveQuery a;
  a.head = {0};
  a.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(5), PatternTerm::Var(1)));
  ConjunctiveQuery b;
  b.head = {0};
  b.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(6), PatternTerm::Var(1)));
  UnionQuery ucq;
  ucq.head = a.head;
  ucq.disjuncts = {a, b};
  EXPECT_EQ(PruneSubsumedDisjuncts(&ucq), 0u);
  EXPECT_EQ(ucq.size(), 2u);
}

// End-to-end: pruning a real reformulation preserves its answers.
TEST(PruneSubsumedTest, ReformulationAnswersPreserved) {
  Graph g;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &g);
  g.FinalizeSchema();
  TripleStore store = TripleStore::Build(g.data_triples());
  EngineProfile profile = NativeStoreProfile();
  Evaluator evaluator(&store, &profile);
  Reformulator reformulator(&g.schema(), &g.vocab());

  Result<Query> q = ParseQuery(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . }",
      &g.dict());
  ASSERT_TRUE(q.ok());
  VarTable vars = q.ValueOrDie().vars;
  Result<UnionQuery> ucq =
      reformulator.ReformulateCQ(q.ValueOrDie().cq, &vars);
  ASSERT_TRUE(ucq.ok());

  UnionQuery pruned = ucq.ValueOrDie();
  size_t dropped = PruneSubsumedDisjuncts(&pruned);
  // Every per-class identity copy (x type C) is subsumed by the generic
  // (x type y) disjunct: a large fraction must be pruned.
  EXPECT_GT(dropped, 30u);
  EXPECT_LT(pruned.size(), ucq.ValueOrDie().size());

  Result<Relation> full = evaluator.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
  Result<Relation> reduced = evaluator.EvaluateUCQ(pruned, nullptr);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(reduced.ok());
  std::set<std::vector<ValueId>> full_rows;
  std::set<std::vector<ValueId>> reduced_rows;
  for (size_t i = 0; i < full.ValueOrDie().num_rows(); ++i) {
    full_rows.insert(std::vector<ValueId>(full.ValueOrDie().row(i).begin(),
                                          full.ValueOrDie().row(i).end()));
  }
  for (size_t i = 0; i < reduced.ValueOrDie().num_rows(); ++i) {
    reduced_rows.insert(
        std::vector<ValueId>(reduced.ValueOrDie().row(i).begin(),
                             reduced.ValueOrDie().row(i).end()));
  }
  EXPECT_EQ(full_rows, reduced_rows);
}

}  // namespace
}  // namespace rdfopt
