#include "cost/calibration.h"

#include <gtest/gtest.h>

namespace rdfopt {
namespace {

TEST(FitTest, SlopeAndInterceptOfPerfectLine) {
  std::vector<std::pair<double, double>> samples = {
      {1.0, 12.0}, {2.0, 14.0}, {3.0, 16.0}, {4.0, 18.0}};
  EXPECT_NEAR(FitSlope(samples), 2.0, 1e-9);
  EXPECT_NEAR(FitIntercept(samples), 10.0, 1e-9);
}

TEST(FitTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitSlope({}), 0.0);
  EXPECT_DOUBLE_EQ(FitSlope({{1.0, 5.0}}), 0.0);
  // All x equal: slope undefined, returns 0.
  EXPECT_DOUBLE_EQ(FitSlope({{2.0, 1.0}, {2.0, 9.0}}), 0.0);
  EXPECT_DOUBLE_EQ(FitIntercept({}), 0.0);
}

// The calibration run is timing-dependent; assert structure, not values:
// every fitted constant must be finite and non-negative, and the per-tuple
// constants must be "small" (well under a millisecond per tuple).
TEST(CalibrationTest, FitsSaneConstants) {
  CalibrationReport report = CalibrateProfile(PostgresLikeProfile(),
                                              /*repetitions=*/1);
  const CostConstants& k = report.fitted;
  for (double v : {k.c_db, k.c_t, k.c_j, k.c_m, k.c_l, k.c_k,
                   k.c_union_term}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1e6);
  }
  EXPECT_LT(k.c_t, 1000.0);  // Microseconds per tuple, must be << 1ms.
  EXPECT_FALSE(report.scan_samples.empty());
  EXPECT_FALSE(report.join_samples.empty());
  EXPECT_FALSE(report.union_term_samples.empty());
  EXPECT_FALSE(report.mat_samples.empty());
  // Scans must take measurably longer as they grow.
  EXPECT_GT(report.scan_samples.back().second,
            report.scan_samples.front().second * 0.5);
}

// The DB2-like profile physically spins per union term, so its fitted
// per-term constant must exceed the native store's.
TEST(CalibrationTest, UnionTermOverheadReflectsProfile) {
  CalibrationReport heavy = CalibrateProfile(Db2LikeProfile(),
                                             /*repetitions=*/1);
  CalibrationReport light = CalibrateProfile(NativeStoreProfile(),
                                             /*repetitions=*/1);
  EXPECT_GT(heavy.fitted.c_union_term, light.fitted.c_union_term);
}

}  // namespace
}  // namespace rdfopt
