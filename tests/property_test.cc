// Property-based tests of the central soundness/completeness invariant
// (paper Theorem 3.1 and the reformulation correctness it builds on):
//
//   for every database, every query and every cover C,
//     eval(cover-based JUCQ reformulation, db) == eval(query, saturate(db)).
//
// Queries and covers are generated randomly over randomly generated
// databases; TEST_P sweeps several database shapes.

#include <set>

#include <gtest/gtest.h>

#include "optimizer/answering.h"
#include "reformulation/minimize.h"
#include "optimizer/ecov.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "workload/dblp.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

std::set<std::vector<ValueId>> RowSet(const Relation& r) {
  std::set<std::vector<ValueId>> rows;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    rows.insert(std::vector<ValueId>(r.row(i).begin(), r.row(i).end()));
  }
  return rows;
}

/// A random database: random class/property hierarchies plus random triples
/// biased so that entailment actually fires.
struct RandomDb {
  Graph graph;
  std::vector<ValueId> classes;
  std::vector<ValueId> properties;
  std::vector<ValueId> resources;

  explicit RandomDb(uint64_t seed, size_t num_classes = 8,
                    size_t num_properties = 6, size_t num_resources = 40,
                    size_t num_triples = 220) {
    WorkloadRng rng(seed);
    Dictionary& d = graph.dict();
    const Vocabulary& v = graph.vocab();
    for (size_t i = 0; i < num_classes; ++i) {
      classes.push_back(d.InternIri("C" + std::to_string(i)));
    }
    for (size_t i = 0; i < num_properties; ++i) {
      properties.push_back(d.InternIri("p" + std::to_string(i)));
    }
    for (size_t i = 0; i < num_resources; ++i) {
      resources.push_back(d.InternIri("r" + std::to_string(i)));
    }
    // Random forest-ish subclass edges (child id < parent id: acyclic).
    for (size_t i = 0; i + 1 < num_classes; ++i) {
      if (rng.Chance(0.7)) {
        size_t parent = i + 1 + rng.Uniform(num_classes - i - 1);
        graph.AddEncoded(classes[i], v.rdfs_subclassof, classes[parent]);
      }
    }
    for (size_t i = 0; i + 1 < num_properties; ++i) {
      if (rng.Chance(0.5)) {
        size_t parent = i + 1 + rng.Uniform(num_properties - i - 1);
        graph.AddEncoded(properties[i], v.rdfs_subpropertyof,
                         properties[parent]);
      }
    }
    for (ValueId p : properties) {
      if (rng.Chance(0.5)) {
        graph.AddEncoded(p, v.rdfs_domain,
                         classes[rng.Uniform(num_classes)]);
      }
      if (rng.Chance(0.5)) {
        graph.AddEncoded(p, v.rdfs_range,
                         classes[rng.Uniform(num_classes)]);
      }
    }
    for (size_t i = 0; i < num_triples; ++i) {
      ValueId s = resources[rng.Uniform(num_resources)];
      if (rng.Chance(0.3)) {
        graph.AddEncoded(s, v.rdf_type, classes[rng.Uniform(num_classes)]);
      } else {
        graph.AddEncoded(s, properties[rng.Uniform(num_properties)],
                         resources[rng.Uniform(num_resources)]);
      }
    }
    graph.FinalizeSchema();
  }
};

/// A random connected BGP query over the database's vocabulary: the first
/// atom's subject is a fresh variable, every later atom's subject is drawn
/// from the variables already used (guaranteeing connectivity).
ConjunctiveQuery RandomQuery(const RandomDb& db, WorkloadRng* rng,
                             VarTable* vars, size_t num_atoms) {
  const Vocabulary& v = db.graph.vocab();
  ConjunctiveQuery cq;
  std::vector<VarId> pool;
  auto fresh = [&] {
    VarId var = vars->GetOrCreate("v" + std::to_string(vars->size()));
    pool.push_back(var);
    return var;
  };

  for (size_t i = 0; i < num_atoms; ++i) {
    PatternTerm s = (i == 0)
                        ? PatternTerm::Var(fresh())
                        : PatternTerm::Var(pool[rng->Uniform(pool.size())]);
    TriplePattern atom;
    if (rng->Chance(0.35)) {
      // Type atom: object is a class constant or a fresh variable.
      PatternTerm o =
          rng->Chance(0.6)
              ? PatternTerm::Const(db.classes[rng->Uniform(
                    db.classes.size())])
              : PatternTerm::Var(fresh());
      atom = TriplePattern{s, PatternTerm::Const(v.rdf_type), o};
    } else {
      PatternTerm p =
          rng->Chance(0.9)
              ? PatternTerm::Const(db.properties[rng->Uniform(
                    db.properties.size())])
              : PatternTerm::Var(fresh());
      PatternTerm o =
          rng->Chance(0.5)
              ? PatternTerm::Var(fresh())
              : PatternTerm::Const(db.resources[rng->Uniform(
                    db.resources.size())]);
      atom = TriplePattern{s, p, o};
    }
    cq.atoms.push_back(atom);
  }
  // Head: a random non-empty subset of the variables.
  for (VarId var : cq.AllVariables()) {
    if (rng->Chance(0.5) || cq.head.empty()) cq.head.push_back(var);
  }
  return cq;
}

class ReformulationSoundnessTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ReformulationSoundnessTest, AllCoversMatchSaturation) {
  const uint64_t seed = GetParam();
  RandomDb db(seed);
  TripleStore store = TripleStore::Build(db.graph.data_triples());
  SaturationResult sat =
      Saturate(store, db.graph.schema(), db.graph.vocab());
  EngineProfile profile = NativeStoreProfile();
  Evaluator evaluator(&store, &profile);
  Evaluator sat_evaluator(&sat.store, &profile);
  Reformulator reformulator(&db.graph.schema(), &db.graph.vocab());

  WorkloadRng rng(seed * 31 + 1);
  for (int trial = 0; trial < 6; ++trial) {
    VarTable vars;
    ConjunctiveQuery cq =
        RandomQuery(db, &rng, &vars, 1 + rng.Uniform(3));
    if (!cq.IsConnected()) continue;

    // Ground truth: direct evaluation against the saturated store.
    Result<Relation> expected = sat_evaluator.EvaluateCQ(cq, nullptr);
    ASSERT_TRUE(expected.ok());
    std::set<std::vector<ValueId>> truth = RowSet(expected.ValueOrDie());

    // Every enumerated cover must reproduce it on the non-saturated store.
    bool timed_out = false;
    std::vector<Cover> covers = EnumerateCovers(cq, 30.0, 2000, &timed_out);
    ASSERT_FALSE(covers.empty());
    for (const Cover& cover : covers) {
      VarTable cover_vars = vars;
      Result<JoinOfUnions> jucq = CoverBasedReformulation(
          cq, cover, reformulator, &cover_vars, 1'000'000);
      ASSERT_TRUE(jucq.ok()) << jucq.status().ToString();
      Result<Relation> got =
          evaluator.EvaluateJUCQ(jucq.ValueOrDie(), nullptr);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(RowSet(got.ValueOrDie()), truth)
          << "seed " << seed << " trial " << trial << " cover "
          << cover.Key();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReformulationSoundnessTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// The saturation fast path must equal the naive fixpoint on random
// databases (not just the hand-built cases of saturation_test).
class SaturationEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SaturationEquivalenceTest, FastPathMatchesNaiveFixpoint) {
  RandomDb db(GetParam(), /*num_classes=*/6, /*num_properties=*/5,
              /*num_resources=*/25, /*num_triples=*/120);
  TripleStore store = TripleStore::Build(db.graph.data_triples());
  SaturationResult fast =
      Saturate(store, db.graph.schema(), db.graph.vocab());
  std::vector<Triple> naive = NaiveFixpointSaturation(
      db.graph.data_triples(), db.graph.schema_triples(), db.graph.vocab());
  TripleStore naive_store = TripleStore::Build(std::move(naive));
  ASSERT_EQ(fast.store.size(), naive_store.size());
  for (size_t i = 0; i < fast.store.size(); ++i) {
    EXPECT_EQ(fast.store.All()[i], naive_store.All()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaturationEquivalenceTest,
                         ::testing::Range<uint64_t>(100, 112));

// Minimization must preserve answers on random databases and queries.
class MinimizationSoundnessTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MinimizationSoundnessTest, MinimizedQueryKeepsAnswers) {
  const uint64_t seed = GetParam();
  RandomDb db(seed);
  TripleStore store = TripleStore::Build(db.graph.data_triples());
  SaturationResult sat =
      Saturate(store, db.graph.schema(), db.graph.vocab());
  EngineProfile profile = NativeStoreProfile();
  Evaluator sat_evaluator(&sat.store, &profile);

  WorkloadRng rng(seed * 17 + 3);
  for (int trial = 0; trial < 8; ++trial) {
    VarTable vars;
    ConjunctiveQuery cq = RandomQuery(db, &rng, &vars, 2 + rng.Uniform(3));
    MinimizationResult m =
        MinimizeQuery(cq, db.graph.schema(), db.graph.vocab());
    ASSERT_EQ(m.query.atoms.size() + m.removed_atoms.size(),
              cq.atoms.size());
    if (m.removed_atoms.empty()) continue;

    Result<Relation> full = sat_evaluator.EvaluateCQ(cq, nullptr);
    Result<Relation> reduced = sat_evaluator.EvaluateCQ(m.query, nullptr);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(reduced.ok());
    EXPECT_EQ(RowSet(full.ValueOrDie()), RowSet(reduced.ValueOrDie()))
        << "seed " << seed << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizationSoundnessTest,
                         ::testing::Range<uint64_t>(200, 210));

// Data-aware pruning must preserve answers: a pruned disjunct contains an
// atom with no matching triple, so it cannot contribute rows.
class PruningSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PruningSoundnessTest, PrunedJucqKeepsAnswers) {
  const uint64_t seed = GetParam();
  RandomDb db(seed);
  TripleStore store = TripleStore::Build(db.graph.data_triples());
  SaturationResult sat =
      Saturate(store, db.graph.schema(), db.graph.vocab());
  Statistics stats = Statistics::Compute(store);
  EngineProfile profile = NativeStoreProfile();
  QueryAnswerer answerer(&store, &sat.store, &db.graph.schema(),
                         &db.graph.vocab(), &stats, &profile);

  WorkloadRng rng(seed * 13 + 7);
  for (int trial = 0; trial < 5; ++trial) {
    VarTable vars;
    Query query;
    query.cq = RandomQuery(db, &rng, &vars, 1 + rng.Uniform(3));
    query.vars = vars;
    if (!query.cq.IsConnected()) continue;

    AnswerOptions plain;
    plain.strategy = Strategy::kUcq;
    Result<AnswerOutcome> a = answerer.Answer(query, plain);
    AnswerOptions pruned = plain;
    pruned.prune_empty_disjuncts = true;
    Result<AnswerOutcome> b = answerer.Answer(query, pruned);
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) continue;
    EXPECT_EQ(RowSet(a.ValueOrDie().answers), RowSet(b.ValueOrDie().answers))
        << "seed " << seed << " trial " << trial;
    EXPECT_LE(b.ValueOrDie().union_terms, a.ValueOrDie().union_terms);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningSoundnessTest,
                         ::testing::Range<uint64_t>(300, 308));

// UCQ / SCQ / GCov / ECov agree on every LUBM benchmark query that all of
// them can evaluate at test scale.
TEST(StrategyAgreementTest, LubmQueriesAgreeAcrossStrategies) {
  Graph graph;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &graph);
  graph.FinalizeSchema();
  TripleStore store = TripleStore::Build(graph.data_triples());
  SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
  Statistics stats = Statistics::Compute(store);
  EngineProfile profile = NativeStoreProfile();
  QueryAnswerer answerer(&store, &sat.store, &graph.schema(), &graph.vocab(),
                         &stats, &profile);

  // A representative slice (the full set runs in the integration test).
  for (const char* name : {"Q02", "Q05", "Q08", "Q12", "Q17", "Q21", "Q25"}) {
    const BenchmarkQuery* bq = nullptr;
    for (const auto& q : LubmQuerySet()) {
      if (q.name == name) bq = &q;
    }
    ASSERT_NE(bq, nullptr);
    Result<Query> parsed = ParseQuery(bq->text, &graph.dict());
    ASSERT_TRUE(parsed.ok());
    const Query& query = parsed.ValueOrDie();

    AnswerOptions sat_opts;
    sat_opts.strategy = Strategy::kSaturation;
    Result<AnswerOutcome> truth = answerer.Answer(query, sat_opts);
    ASSERT_TRUE(truth.ok()) << name;
    std::set<std::vector<ValueId>> expected =
        RowSet(truth.ValueOrDie().answers);

    for (Strategy s : {Strategy::kUcq, Strategy::kScq, Strategy::kGcov,
                       Strategy::kEcov}) {
      AnswerOptions opts;
      opts.strategy = s;
      Result<AnswerOutcome> got = answerer.Answer(query, opts);
      ASSERT_TRUE(got.ok()) << name << " " << StrategyName(s) << ": "
                            << got.status().ToString();
      EXPECT_EQ(RowSet(got.ValueOrDie().answers), expected)
          << name << " " << StrategyName(s);
    }
  }
}

}  // namespace
}  // namespace rdfopt
