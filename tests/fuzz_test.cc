// Randomized robustness tests: the parsers must never crash or hang on
// arbitrary input — every outcome is a value (parsed or typed error).

#include <string>

#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

// Characters weighted toward the parsers' structural tokens so that random
// strings actually exercise deep paths, not just the first-token error.
std::string RandomNoise(WorkloadRng* rng, size_t max_len) {
  static const char kAlphabet[] =
      "<>\"?{}. \n\tabcPREFIXSELECTWHEREask:/#_\\rdf";
  size_t len = rng->Uniform(max_len) + 1;
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)];
  }
  return out;
}

// Mutates a valid input by splicing random noise into it.
std::string Mutate(const std::string& base, WorkloadRng* rng) {
  std::string out = base;
  size_t pos = rng->Uniform(out.size() + 1);
  if (rng->Chance(0.5)) {
    out.insert(pos, RandomNoise(rng, 8));
  } else if (!out.empty()) {
    out.erase(pos % out.size(), rng->Uniform(4) + 1);
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, SparqlParserNeverCrashes) {
  WorkloadRng rng(GetParam());
  Dictionary dict;
  for (int i = 0; i < 300; ++i) {
    std::string input = RandomNoise(&rng, 120);
    Result<Query> r = ParseQuery(input, &dict);
    if (r.ok()) {
      // Anything that parses must satisfy the parser's postconditions.
      EXPECT_FALSE(r.ValueOrDie().cq.atoms.empty());
    }
  }
}

TEST_P(ParserFuzzTest, SparqlParserSurvivesMutatedValidQueries) {
  WorkloadRng rng(GetParam() * 7 + 1);
  Dictionary dict;
  const std::string base =
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . ?x ub:memberOf \"d\" . }";
  for (int i = 0; i < 300; ++i) {
    std::string input = Mutate(base, &rng);
    Result<Query> r = ParseQuery(input, &dict);
    (void)r;  // ok or error; must not crash.
  }
}

TEST_P(ParserFuzzTest, NTriplesParserNeverCrashes) {
  WorkloadRng rng(GetParam() * 13 + 5);
  for (int i = 0; i < 300; ++i) {
    Graph g;
    std::string input = RandomNoise(&rng, 150);
    Status st = ParseNTriples(input, &g);
    (void)st;
  }
}

TEST_P(ParserFuzzTest, NTriplesParserSurvivesMutatedValidDocs) {
  WorkloadRng rng(GetParam() * 31 + 9);
  const std::string base =
      "<http://ex/s> <http://ex/p> \"lit \\\"x\\\" \\n y\" .\n"
      "_:b1 <http://ex/q> <http://ex/o> .\n";
  for (int i = 0; i < 300; ++i) {
    Graph g;
    std::string input = Mutate(base, &rng);
    Status st = ParseNTriples(input, &g);
    (void)st;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace rdfopt
