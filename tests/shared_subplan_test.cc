// Union-subplan factoring (DESIGN.md §11): with
// EngineProfile::share_union_subplans, atom scans common to two or more
// disjunct chains of a union become execute-once shared subplans; the
// chains reference them through kSharedRef leaves. These tests pin (a) when
// the pass fires, (b) result identity with the unshared plan, (c) the
// EXPLAIN ANALYZE contract that scan work is attributed to the shared node
// exactly once — never per consuming branch — and (d) determinism of the
// parallel executor over borrowed shared relations.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/evaluator.h"
#include "engine/explain.h"
#include "reformulation/reformulator.h"
#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

struct SharedEnv {
  Graph graph;
  TripleStore store;

  SharedEnv() {
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, &graph);
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
  }
};

SharedEnv& Env() {
  static SharedEnv& env = *new SharedEnv();
  return env;
}

/// Postgres-like behavior with the emulated latency model zeroed, so the
/// suite runs at real-operator speed.
EngineProfile FastBase() {
  EngineProfile p = PostgresLikeProfile();
  p.tuple_us_per_row = 0.0;
  p.union_term_overhead_us = 0.0;
  p.materialization_us_per_row = 0.0;
  p.max_union_terms = 1u << 20;
  p.timeout_seconds = 300.0;
  return p;
}

UnionQuery ReformulatedQ1(Query* q_out) {
  SharedEnv& env = Env();
  Result<Query> parsed =
      ParseQuery(LubmMotivatingQ1().text, &env.graph.dict());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  *q_out = parsed.TakeValue();
  Reformulator reformulator(&env.graph.schema(), &env.graph.vocab());
  Result<UnionQuery> ucq =
      reformulator.ReformulateCQ(q_out->cq, &q_out->vars);
  EXPECT_TRUE(ucq.ok()) << ucq.status().ToString();
  return ucq.TakeValue();
}

size_t CountKind(const PhysicalPlan& plan, PlanNodeKind kind) {
  size_t n = 0;
  plan.ForEachNode([&](const PlanNode& node) {
    if (node.kind == kind) ++n;
  });
  return n;
}

TEST(SharedSubplanTest, FactoringFiresOnlyWhenEnabled) {
  SharedEnv& env = Env();
  Query q;
  UnionQuery ucq = ReformulatedQ1(&q);
  ASSERT_GT(ucq.size(), 100u);  // A real fan-out.

  EngineProfile off = FastBase();
  ASSERT_FALSE(off.share_union_subplans);  // Seed default: sharing off.
  Evaluator seed_engine(&env.store, &off);
  PhysicalPlan unshared = seed_engine.planner().PlanUCQ(ucq);
  EXPECT_TRUE(unshared.shared_subplans.empty());
  EXPECT_EQ(CountKind(unshared, PlanNodeKind::kSharedRef), 0u);
  EXPECT_EQ(unshared.vector_width, 1u);

  EngineProfile on = Vectorized(FastBase());
  Evaluator batch_engine(&env.store, &on);
  PhysicalPlan shared = batch_engine.planner().PlanUCQ(ucq);
  ASSERT_FALSE(shared.shared_subplans.empty());
  EXPECT_EQ(shared.vector_width, kBatchRows);
  // Every shared subplan is referenced by at least two chains (that is the
  // factoring criterion), and every reference carries its target's index.
  std::vector<size_t> refs(shared.shared_subplans.size(), 0);
  shared.ForEachNode([&](const PlanNode& node) {
    if (node.kind != PlanNodeKind::kSharedRef) return;
    ASSERT_GE(node.shared_index, 0);
    ASSERT_LT(static_cast<size_t>(node.shared_index),
              shared.shared_subplans.size());
    ++refs[static_cast<size_t>(node.shared_index)];
  });
  for (size_t i = 0; i < refs.size(); ++i) {
    EXPECT_GE(refs[i], 2u) << "shared subplan s" << i;
  }
  // Shared subplans never reference other shared subplans in this pass.
  for (const auto& sp : shared.shared_subplans) {
    EXPECT_EQ(sp->kind, PlanNodeKind::kAtomScan);
  }
}

TEST(SharedSubplanTest, SingleChainPlansNeverShare) {
  SharedEnv& env = Env();
  Result<Query> parsed =
      ParseQuery(LubmMotivatingQ1().text, &env.graph.dict());
  ASSERT_TRUE(parsed.ok());
  EngineProfile on = Vectorized(FastBase());
  Evaluator engine(&env.store, &on);
  PhysicalPlan plan = engine.planner().PlanCQ(parsed.ValueOrDie().cq);
  EXPECT_TRUE(plan.shared_subplans.empty());
  EXPECT_EQ(CountKind(plan, PlanNodeKind::kSharedRef), 0u);
}

TEST(SharedSubplanTest, SharedResultsIdenticalToUnshared) {
  SharedEnv& env = Env();
  Query q;
  UnionQuery ucq = ReformulatedQ1(&q);

  EngineProfile off = FastBase();
  EngineProfile on = off;
  on.share_union_subplans = true;  // Same width: isolates the factoring.
  Evaluator unshared_engine(&env.store, &off);
  Evaluator shared_engine(&env.store, &on);

  Result<Relation> a = unshared_engine.EvaluateUCQ(ucq, nullptr);
  Result<Relation> b = shared_engine.EvaluateUCQ(ucq, nullptr);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a.ValueOrDie().columns(), b.ValueOrDie().columns());
  ASSERT_EQ(a.ValueOrDie().num_rows(), b.ValueOrDie().num_rows());
  for (size_t r = 0; r < a.ValueOrDie().num_rows(); ++r) {
    for (size_t c = 0; c < a.ValueOrDie().arity(); ++c) {
      ASSERT_EQ(a.ValueOrDie().at(r, c), b.ValueOrDie().at(r, c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(SharedSubplanTest, AnalyzeCountersAttributedOnce) {
  SharedEnv& env = Env();
  Query q;
  UnionQuery ucq = ReformulatedQ1(&q);

  EngineProfile off = FastBase();
  EngineProfile on = off;
  on.share_union_subplans = true;
  Evaluator unshared_engine(&env.store, &off);
  Evaluator shared_engine(&env.store, &on);

  PhysicalPlan unshared = unshared_engine.planner().PlanUCQ(ucq);
  PhysicalPlan shared = shared_engine.planner().PlanUCQ(ucq);
  EvalMetrics unshared_metrics, shared_metrics;
  ASSERT_TRUE(unshared_engine.ExecutePlan(&unshared, &unshared_metrics).ok());
  ASSERT_TRUE(shared_engine.ExecutePlan(&shared, &shared_metrics).ok());

  // The factored plan scans each shared atom once instead of once per
  // consuming branch: strictly fewer index entries read overall.
  EXPECT_LT(shared_metrics.rows_scanned, unshared_metrics.rows_scanned);

  // Per-node attribution: the shared node owns its scan counters; the
  // kSharedRef consumers record the reuse (actual_rows) but no scan work.
  size_t shared_with_scan_work = 0;
  for (const auto& sp : shared.shared_subplans) {
    EXPECT_TRUE(sp->executed) << "shared s" << sp->shared_index;
    // A shared scan over an empty reformulated class reads 0 entries, so
    // rows_scanned > 0 is not universal — but it must hold somewhere.
    if (sp->rows_scanned > 0) ++shared_with_scan_work;
  }
  EXPECT_GT(shared_with_scan_work, 0u);
  size_t refs_executed = 0;
  shared.ForEachNode([&](const PlanNode& node) {
    if (node.kind != PlanNodeKind::kSharedRef || !node.executed) return;
    ++refs_executed;
    EXPECT_EQ(node.rows_scanned, 0u) << "ref #" << node.id;
    EXPECT_EQ(node.actual_rows,
              shared.shared_subplans[static_cast<size_t>(node.shared_index)]
                  ->actual_rows)
        << "ref #" << node.id;
  });
  EXPECT_GT(refs_executed, 0u);

  // Summing rows_scanned over the scan nodes (ForEachNode visits the shared
  // subplans too) reproduces the metrics total — nothing is double-counted
  // through the refs. Join nodes are excluded: they reuse the field for
  // join input rows.
  size_t per_scan_total = 0;
  shared.ForEachNode([&](const PlanNode& node) {
    if (node.kind == PlanNodeKind::kAtomScan) {
      per_scan_total += node.rows_scanned;
    }
  });
  EXPECT_EQ(per_scan_total, shared_metrics.rows_scanned);
}

TEST(SharedSubplanTest, ExplainRendersSharedNodesAndVectorWidth) {
  SharedEnv& env = Env();
  Query q;
  UnionQuery ucq = ReformulatedQ1(&q);
  EngineProfile on = Vectorized(FastBase());
  Evaluator engine(&env.store, &on);
  PhysicalPlan plan = engine.planner().PlanUCQ(ucq);

  std::string text = ExplainPlan(plan, q.vars, env.graph.dict());
  EXPECT_NE(text.find("[vector=1024]"), std::string::npos) << text;
  EXPECT_NE(text.find("shared s0: scan"), std::string::npos) << text;
  EXPECT_NE(text.find("execute once"), std::string::npos) << text;
  EXPECT_NE(text.find("[shared s"), std::string::npos) << text;

  // Width 1 plans keep the seed header (golden stability).
  EngineProfile off = FastBase();
  Evaluator seed_engine(&env.store, &off);
  PhysicalPlan seed_plan = seed_engine.planner().PlanUCQ(ucq);
  std::string seed_text = ExplainPlan(seed_plan, q.vars, env.graph.dict());
  EXPECT_EQ(seed_text.find("[vector="), std::string::npos);
  EXPECT_EQ(seed_text.find("shared"), std::string::npos);
}

TEST(SharedSubplanTest, ParallelExecutionIdenticalWithSharing) {
  SharedEnv& env = Env();
  Query q;
  UnionQuery ucq = ReformulatedQ1(&q);

  auto run = [&](size_t threads) {
    EngineProfile p = Vectorized(FastBase());
    p.worker_threads = threads;
    Evaluator engine(&env.store, &p);
    EvalMetrics metrics;
    Result<Relation> r = engine.EvaluateUCQ(ucq, &metrics);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::make_pair(r.TakeValue(), metrics);
  };

  auto [seq_rows, seq_metrics] = run(1);
  auto [par_rows, par_metrics] = run(4);
  ASSERT_EQ(seq_rows.columns(), par_rows.columns());
  ASSERT_EQ(seq_rows.num_rows(), par_rows.num_rows());
  for (size_t r = 0; r < seq_rows.num_rows(); ++r) {
    for (size_t c = 0; c < seq_rows.arity(); ++c) {
      ASSERT_EQ(seq_rows.at(r, c), par_rows.at(r, c))
          << "row " << r << " col " << c;
    }
  }
  EXPECT_EQ(seq_metrics.rows_scanned, par_metrics.rows_scanned);
  EXPECT_EQ(seq_metrics.union_terms, par_metrics.union_terms);
  EXPECT_EQ(seq_metrics.duplicates_removed, par_metrics.duplicates_removed);
}

TEST(SharedSubplanTest, PlanDigestDistinguishesSharing) {
  SharedEnv& env = Env();
  Query q;
  UnionQuery ucq = ReformulatedQ1(&q);
  EngineProfile off = FastBase();
  EngineProfile on = off;
  on.share_union_subplans = true;
  Evaluator a(&env.store, &off);
  Evaluator b(&env.store, &on);
  PhysicalPlan unshared = a.planner().PlanUCQ(ucq);
  PhysicalPlan shared = b.planner().PlanUCQ(ucq);
  EXPECT_NE(PlanDigest(unshared), PlanDigest(shared));
}

}  // namespace
}  // namespace rdfopt
