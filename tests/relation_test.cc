#include "engine/relation.h"

#include <gtest/gtest.h>

namespace rdfopt {
namespace {

TEST(RelationTest, AppendAndAccess) {
  Relation r({0, 1});
  r.AppendRow(std::vector<ValueId>{10, 20});
  r.AppendRow(std::vector<ValueId>{11, 21});
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.at(0, 0), 10u);
  EXPECT_EQ(r.at(1, 1), 21u);
  EXPECT_EQ(r.row(1)[0], 11u);
  EXPECT_EQ(r.num_cells(), 4u);
}

TEST(RelationTest, ColumnIndex) {
  Relation r({5, 3, 8});
  EXPECT_EQ(r.ColumnIndex(5), 0);
  EXPECT_EQ(r.ColumnIndex(3), 1);
  EXPECT_EQ(r.ColumnIndex(8), 2);
  EXPECT_EQ(r.ColumnIndex(9), -1);
}

TEST(RelationTest, DeduplicatePreservesFirstOccurrenceOrder) {
  Relation r({0});
  for (ValueId v : {3u, 1u, 3u, 2u, 1u, 3u}) {
    r.AppendRow(std::vector<ValueId>{v});
  }
  size_t removed = r.Deduplicate();
  EXPECT_EQ(removed, 3u);
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.at(0, 0), 3u);
  EXPECT_EQ(r.at(1, 0), 1u);
  EXPECT_EQ(r.at(2, 0), 2u);
}

TEST(RelationTest, DeduplicateMultiColumn) {
  Relation r({0, 1});
  r.AppendRow(std::vector<ValueId>{1, 2});
  r.AppendRow(std::vector<ValueId>{2, 1});  // Different row, same values.
  r.AppendRow(std::vector<ValueId>{1, 2});
  EXPECT_EQ(r.Deduplicate(), 1u);
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST(RelationTest, DeduplicateEmpty) {
  Relation r({0, 1});
  EXPECT_EQ(r.Deduplicate(), 0u);
  EXPECT_EQ(r.num_rows(), 0u);
}

TEST(RelationTest, ZeroArityBooleanSemantics) {
  Relation r({});
  EXPECT_EQ(r.num_rows(), 0u);
  r.AppendEmptyRow();
  r.AppendEmptyRow();
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.Deduplicate(), 1u);
  EXPECT_EQ(r.num_rows(), 1u);
}

TEST(RelationTest, MoveSemantics) {
  Relation r({0});
  r.AppendRow(std::vector<ValueId>{7});
  Relation moved = std::move(r);
  EXPECT_EQ(moved.num_rows(), 1u);
  EXPECT_EQ(moved.at(0, 0), 7u);
}

TEST(HashRowTest, OrderSensitive) {
  std::vector<ValueId> a = {1, 2};
  std::vector<ValueId> b = {2, 1};
  EXPECT_NE(HashRow({a.data(), 2}), HashRow({b.data(), 2}));
}

}  // namespace
}  // namespace rdfopt
