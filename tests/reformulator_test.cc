#include "reformulation/reformulator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "sparql/parser.h"
#include "sparql/printer.h"

namespace rdfopt {
namespace {

/// The schema of the paper's Examples 2/4: Book < Publication;
/// writtenBy < hasAuthor; domain(writtenBy) = Book; range(writtenBy) =
/// Person.
class Example4Test : public ::testing::Test {
 protected:
  void SetUp() override {
    Dictionary& d = graph_.dict();
    book_ = d.InternIri("Book");
    publication_ = d.InternIri("Publication");
    person_ = d.InternIri("Person");
    written_by_ = d.InternIri("writtenBy");
    has_author_ = d.InternIri("hasAuthor");
    const Vocabulary& v = graph_.vocab();
    graph_.AddEncoded(book_, v.rdfs_subclassof, publication_);
    graph_.AddEncoded(written_by_, v.rdfs_subpropertyof, has_author_);
    graph_.AddEncoded(written_by_, v.rdfs_domain, book_);
    graph_.AddEncoded(written_by_, v.rdfs_range, person_);
    graph_.FinalizeSchema();
    reformulator_.emplace(&graph_.schema(), &graph_.vocab());
  }

  std::set<std::string> ReformulationSet(const TriplePattern& atom,
                                         VarTable* vars) {
    std::set<std::string> out;
    for (const AtomReformulation& ref :
         reformulator_->ReformulateAtom(atom, vars)) {
      std::string s = ToString(ref.atom, *vars, graph_.dict());
      for (const auto& [var, value] : ref.substitution) {
        s += " {" + vars->name(var) + "->" +
             graph_.dict().term(value).Encoded() + "}";
      }
      out.insert(s);
    }
    return out;
  }

  Graph graph_;
  ValueId book_, publication_, person_, written_by_, has_author_;
  std::optional<Reformulator> reformulator_;
};

TEST_F(Example4Test, TypeConstantBook) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  TriplePattern atom{PatternTerm::Var(x),
                     PatternTerm::Const(graph_.vocab().rdf_type),
                     PatternTerm::Const(book_)};
  std::vector<AtomReformulation> refs =
      reformulator_->ReformulateAtom(atom, &vars);
  // (x type Book) and (x writtenBy fresh). The paper's Example 4 also lists
  // (x hasAuthor z) via the superproperty of writtenBy, which is not
  // RDFS-sound on databases with explicit hasAuthor triples; we implement
  // the sound variant (see DESIGN.md).
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].atom, atom);  // Identity first.
  EXPECT_EQ(refs[1].atom.p, PatternTerm::Const(written_by_));
  EXPECT_TRUE(refs[1].atom.o.is_var());
  EXPECT_NE(refs[1].atom.o.var(), x);  // Fresh variable.
}

TEST_F(Example4Test, TypeConstantPublicationUsesSubclassAndDomain) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  TriplePattern atom{PatternTerm::Var(x),
                     PatternTerm::Const(graph_.vocab().rdf_type),
                     PatternTerm::Const(publication_)};
  EXPECT_EQ(reformulator_->CountAtomReformulations(atom, vars), 3u);
  std::set<std::string> refs = ReformulationSet(atom, &vars);
  EXPECT_TRUE(refs.count("?x " + Term::Iri(std::string(kRdfType)).Encoded() +
                         " <Publication>"));
  EXPECT_TRUE(refs.count("?x " + Term::Iri(std::string(kRdfType)).Encoded() +
                         " <Book>"));
}

TEST_F(Example4Test, TypeConstantPersonUsesRange) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  TriplePattern atom{PatternTerm::Var(x),
                     PatternTerm::Const(graph_.vocab().rdf_type),
                     PatternTerm::Const(person_)};
  std::vector<AtomReformulation> refs =
      reformulator_->ReformulateAtom(atom, &vars);
  ASSERT_EQ(refs.size(), 2u);
  // (fresh writtenBy x).
  EXPECT_EQ(refs[1].atom.p, PatternTerm::Const(written_by_));
  EXPECT_TRUE(refs[1].atom.s.is_var());
  EXPECT_EQ(refs[1].atom.o, PatternTerm::Var(x));
}

TEST_F(Example4Test, PlainPropertyUsesSubproperties) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  VarId z = vars.GetOrCreate("z");
  TriplePattern atom{PatternTerm::Var(x), PatternTerm::Const(has_author_),
                     PatternTerm::Var(z)};
  std::vector<AtomReformulation> refs =
      reformulator_->ReformulateAtom(atom, &vars);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].atom.p, PatternTerm::Const(has_author_));
  EXPECT_EQ(refs[1].atom.p, PatternTerm::Const(written_by_));

  // writtenBy itself has no subproperties.
  TriplePattern leaf{PatternTerm::Var(x), PatternTerm::Const(written_by_),
                     PatternTerm::Var(z)};
  EXPECT_EQ(reformulator_->CountAtomReformulations(leaf, vars), 1u);
}

TEST_F(Example4Test, TypeVariableEnumeratesSchemaClasses) {
  // The sound subset of the paper's Example 4 output: 8 reformulations
  // (the paper's 11 minus the three superproperty-expansion items).
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  VarId y = vars.GetOrCreate("y");
  TriplePattern atom{PatternTerm::Var(x),
                     PatternTerm::Const(graph_.vocab().rdf_type),
                     PatternTerm::Var(y)};
  EXPECT_EQ(reformulator_->CountAtomReformulations(atom, vars), 8u);

  std::set<std::string> refs = ReformulationSet(atom, &vars);
  const std::string type = Term::Iri(std::string(kRdfType)).Encoded();
  EXPECT_TRUE(refs.count("?x " + type + " ?y"));                      // (0)
  EXPECT_TRUE(refs.count("?x " + type + " <Book> {y-><Book>}"));      // (1)
  EXPECT_TRUE(
      refs.count("?x " + type + " <Publication> {y-><Publication>}"));  // (4)
  EXPECT_TRUE(
      refs.count("?x " + type + " <Book> {y-><Publication>}"));      // (5)
  EXPECT_TRUE(refs.count("?x " + type + " <Person> {y-><Person>}"));  // (8)
  // (2), (6), (9): writtenBy expansions with the three substitutions.
  size_t written_by_count = 0;
  for (const std::string& r : refs) {
    if (r.find("<writtenBy>") != std::string::npos) ++written_by_count;
  }
  EXPECT_EQ(written_by_count, 3u);
}

TEST_F(Example4Test, PropertyVariableEnumeratesSchemaProperties) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  VarId p = vars.GetOrCreate("p");
  VarId z = vars.GetOrCreate("z");
  TriplePattern atom{PatternTerm::Var(x), PatternTerm::Var(p),
                     PatternTerm::Var(z)};
  std::vector<AtomReformulation> refs =
      reformulator_->ReformulateAtom(atom, &vars);
  // Identity; p->hasAuthor with {hasAuthor, writtenBy}; p->writtenBy with
  // {writtenBy}; p->rdf:type expansion: identity (x type z) plus per-class
  // expansions (Book:2, Publication:3, Person:2).
  EXPECT_EQ(refs.size(), 1 + 2 + 1 + 8u);
  EXPECT_EQ(refs[0].atom, atom);
  // Every non-identity reformulation instantiates p.
  for (size_t i = 1; i < refs.size(); ++i) {
    bool binds_p = false;
    for (const auto& [var, value] : refs[i].substitution) {
      binds_p |= (var == p);
    }
    EXPECT_TRUE(binds_p) << i;
  }
}

TEST_F(Example4Test, CqReformulationIsCrossProduct) {
  // q(x) :- x type Book . x hasAuthor a  => 2 x 2 = 4 disjuncts.
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  VarId a = vars.GetOrCreate("a");
  ConjunctiveQuery cq;
  cq.head = {x};
  cq.atoms.push_back(TriplePattern{
      PatternTerm::Var(x), PatternTerm::Const(graph_.vocab().rdf_type),
      PatternTerm::Const(book_)});
  cq.atoms.push_back(TriplePattern{PatternTerm::Var(x),
                                   PatternTerm::Const(has_author_),
                                   PatternTerm::Var(a)});
  EXPECT_EQ(reformulator_->EstimateDisjuncts(cq, vars), 4u);
  Result<UnionQuery> ucq = reformulator_->ReformulateCQ(cq, &vars);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq.ValueOrDie().size(), 4u);
}

TEST_F(Example4Test, HeadBindingsRecordedForDistinguishedVariables) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  VarId y = vars.GetOrCreate("y");
  ConjunctiveQuery cq;
  cq.head = {x, y};
  cq.atoms.push_back(TriplePattern{
      PatternTerm::Var(x), PatternTerm::Const(graph_.vocab().rdf_type),
      PatternTerm::Var(y)});
  Result<UnionQuery> ucq = reformulator_->ReformulateCQ(cq, &vars);
  ASSERT_TRUE(ucq.ok());
  size_t bound = 0;
  for (const ConjunctiveQuery& d : ucq.ValueOrDie().disjuncts) {
    for (const auto& [var, value] : d.head_bindings) {
      EXPECT_EQ(var, y);
      ++bound;
      // y must no longer occur in the substituted atoms.
      std::vector<VarId> atom_vars = d.AllVariables();
      EXPECT_FALSE(std::binary_search(atom_vars.begin(), atom_vars.end(), y));
    }
  }
  EXPECT_EQ(bound, 7u);  // All but the identity disjunct.
}

TEST_F(Example4Test, SharedClassVariableUnifiesConsistently) {
  // q(x1, x2) :- x1 type y . x2 type y: both atoms instantiate y; only
  // matching instantiations survive (plus combinations with the identity).
  VarTable vars;
  VarId x1 = vars.GetOrCreate("x1");
  VarId x2 = vars.GetOrCreate("x2");
  VarId y = vars.GetOrCreate("y");
  ConjunctiveQuery cq;
  cq.head = {x1, x2};
  const PatternTerm type = PatternTerm::Const(graph_.vocab().rdf_type);
  cq.atoms.push_back(
      TriplePattern{PatternTerm::Var(x1), type, PatternTerm::Var(y)});
  cq.atoms.push_back(
      TriplePattern{PatternTerm::Var(x2), type, PatternTerm::Var(y)});
  Result<UnionQuery> ucq = reformulator_->ReformulateCQ(cq, &vars);
  ASSERT_TRUE(ucq.ok());
  // Upper bound is 8 x 8 = 64; conflicting y-instantiations are dropped.
  EXPECT_LT(ucq.ValueOrDie().size(), 64u);
  for (const ConjunctiveQuery& d : ucq.ValueOrDie().disjuncts) {
    // No disjunct may bind y to two different classes: head_bindings holds
    // at most one entry for y.
    size_t y_bindings = 0;
    for (const auto& [var, value] : d.head_bindings) {
      y_bindings += (var == y) ? 1 : 0;
    }
    EXPECT_LE(y_bindings, 1u);
  }
}

TEST_F(Example4Test, MaxDisjunctsGuard) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  VarId y = vars.GetOrCreate("y");
  ConjunctiveQuery cq;
  cq.head = {x, y};
  cq.atoms.push_back(TriplePattern{
      PatternTerm::Var(x), PatternTerm::Const(graph_.vocab().rdf_type),
      PatternTerm::Var(y)});
  Result<UnionQuery> r = reformulator_->ReformulateCQ(cq, &vars, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kQueryTooComplex);
}

TEST_F(Example4Test, DeduplicationRemovesEquivalentDisjuncts) {
  // (x type Book) and (x type Publication) both expand to (x writtenBy _);
  // within one atom's set the fresh-renamed duplicates must not repeat.
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  TriplePattern atom{PatternTerm::Var(x),
                     PatternTerm::Const(graph_.vocab().rdf_type),
                     PatternTerm::Const(publication_)};
  std::vector<AtomReformulation> refs =
      reformulator_->ReformulateAtom(atom, &vars);
  std::set<std::string> keys;
  for (const AtomReformulation& ref : refs) {
    ConjunctiveQuery cq;
    cq.atoms.push_back(ref.atom);
    keys.insert(CanonicalKey(cq, 1));
  }
  EXPECT_EQ(keys.size(), refs.size());
}

TEST_F(Example4Test, NonSchemaPropertyReformulatesToItself) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  ValueId has_title = graph_.dict().InternIri("hasTitle");
  TriplePattern atom{PatternTerm::Var(x), PatternTerm::Const(has_title),
                     PatternTerm::Var(vars.GetOrCreate("t"))};
  EXPECT_EQ(reformulator_->CountAtomReformulations(atom, vars), 1u);
}

TEST_F(Example4Test, NonSchemaClassReformulatesToItself) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  ValueId gadget = graph_.dict().InternIri("Gadget");
  TriplePattern atom{PatternTerm::Var(x),
                     PatternTerm::Const(graph_.vocab().rdf_type),
                     PatternTerm::Const(gadget)};
  EXPECT_EQ(reformulator_->CountAtomReformulations(atom, vars), 1u);
}

}  // namespace
}  // namespace rdfopt
