#include "storage/snapshot.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "workload/lubm.h"

namespace rdfopt {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/rdfopt_snapshot_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripsLubmGraph) {
  Graph original;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &original);
  original.FinalizeSchema();

  ASSERT_TRUE(SaveGraphSnapshot(original, path_).ok());
  Result<Graph> loaded = LoadGraphSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const Graph& g = loaded.ValueOrDie();
  EXPECT_EQ(g.dict().size(), original.dict().size());
  ASSERT_EQ(g.num_data_triples(), original.num_data_triples());
  ASSERT_EQ(g.num_schema_triples(), original.num_schema_triples());
  for (size_t i = 0; i < g.num_data_triples(); ++i) {
    EXPECT_EQ(g.data_triples()[i], original.data_triples()[i]);
  }
  // Dictionary content, not just size.
  for (ValueId id = 0; id < 100; ++id) {
    EXPECT_EQ(g.dict().term(id), original.dict().term(id));
  }
  // Schema closures survive (loaded graph is pre-finalized).
  EXPECT_TRUE(g.schema().finalized());
  EXPECT_TRUE(g.schema().EquivalentTo(original.schema()));
}

TEST_F(SnapshotTest, RoundTripsAllTermKinds) {
  Graph original;
  original.Add(Term::Iri("http://ex/s"), Term::Iri("http://ex/p"),
               Term::Literal("a literal with spaces"));
  original.Add(Term::Blank("b1"), Term::Iri("http://ex/p"),
               Term::Literal(""));
  original.FinalizeSchema();
  ASSERT_TRUE(SaveGraphSnapshot(original, path_).ok());
  Result<Graph> loaded = LoadGraphSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().num_data_triples(), 2u);
  EXPECT_NE(loaded.ValueOrDie().dict().Lookup(Term::Blank("b1")),
            kInvalidValueId);
}

TEST_F(SnapshotTest, MissingFile) {
  Result<Graph> r = LoadGraphSnapshot(path_ + ".does-not-exist");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, RejectsForeignFile) {
  std::ofstream out(path_, std::ios::binary);
  out << "not a snapshot at all";
  out.close();
  Result<Graph> r = LoadGraphSnapshot(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  Graph original;
  original.AddIri("http://ex/s", "http://ex/p", "http://ex/o");
  ASSERT_TRUE(SaveGraphSnapshot(original, path_).ok());
  // Truncate the file in the middle.
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() / 2));
  out.close();
  Result<Graph> r = LoadGraphSnapshot(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace rdfopt
