#include "optimizer/cover.h"

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "sparql/parser.h"

namespace rdfopt {
namespace {

// A 4-atom chain query: atoms i and i+1 share a variable.
class CoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Query> q = ParseQuery(
        "SELECT ?a ?e WHERE { ?a <p0> ?b . ?b <p1> ?c . ?c <p2> ?d . "
        "?d <p3> ?e . }",
        &graph_.dict());
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    query_ = q.TakeValue();
  }
  Graph graph_;
  Query query_;
};

TEST_F(CoverTest, UcqAndScqCoversAreValid) {
  EXPECT_TRUE(ValidateCover(query_.cq, UcqCover(4)).ok());
  EXPECT_TRUE(ValidateCover(query_.cq, ScqCover(4)).ok());
}

TEST_F(CoverTest, OverlappingFragmentsAreValid) {
  Cover cover;
  cover.fragments = {{0, 1}, {1, 2}, {2, 3}};
  EXPECT_TRUE(ValidateCover(query_.cq, cover).ok());
}

TEST_F(CoverTest, RejectsUncoveredAtom) {
  Cover cover;
  cover.fragments = {{0, 1}, {1, 2}};
  EXPECT_FALSE(ValidateCover(query_.cq, cover).ok());
}

TEST_F(CoverTest, RejectsIncludedFragment) {
  Cover cover;
  cover.fragments = {{0, 1, 2, 3}, {1, 2}};
  EXPECT_FALSE(ValidateCover(query_.cq, cover).ok());
}

TEST_F(CoverTest, RejectsDisconnectedFragment) {
  // Atoms 0 and 2 share no variable in the chain.
  Cover cover;
  cover.fragments = {{0, 2}, {1, 3}};
  EXPECT_FALSE(ValidateCover(query_.cq, cover).ok());
}

TEST_F(CoverTest, RejectsEmptyAndOutOfRange) {
  Cover empty;
  EXPECT_FALSE(ValidateCover(query_.cq, empty).ok());
  Cover bad;
  bad.fragments = {{0, 1, 2, 3}, {}};
  EXPECT_FALSE(ValidateCover(query_.cq, bad).ok());
  Cover oob;
  oob.fragments = {{0, 1, 2, 9}};
  EXPECT_FALSE(ValidateCover(query_.cq, oob).ok());
}

TEST_F(CoverTest, AtomAdjacencyOfChain) {
  std::vector<std::vector<bool>> adj = AtomAdjacency(query_.cq);
  EXPECT_TRUE(adj[0][1]);
  EXPECT_TRUE(adj[1][2]);
  EXPECT_TRUE(adj[2][3]);
  EXPECT_FALSE(adj[0][2]);
  EXPECT_FALSE(adj[0][3]);
}

TEST_F(CoverTest, CoverQueryHeadPerDefinition34) {
  // Cover {{0,1},{2,3}}: shared variable is ?c (atoms 1 and 2).
  Cover cover;
  cover.fragments = {{0, 1}, {2, 3}};
  ConjunctiveQuery f0 = BuildCoverQuery(query_.cq, cover, 0);
  // Head: distinguished ?a (in fragment) + join var ?c. Variable ids follow
  // first occurrence: a=0, e=1 (head), then b=2, c=3, d=4.
  VarId a = 0, c = 3, e = 1;
  EXPECT_EQ(f0.head, (std::vector<VarId>{a, c}));
  EXPECT_EQ(f0.atoms.size(), 2u);

  ConjunctiveQuery f1 = BuildCoverQuery(query_.cq, cover, 1);
  EXPECT_EQ(f1.head, (std::vector<VarId>{e, c}));
}

TEST_F(CoverTest, CoverQueryHeadWithOverlap) {
  // Overlapping fragments share their overlap atoms' variables.
  Cover cover;
  cover.fragments = {{0, 1}, {1, 2, 3}};
  ConjunctiveQuery f0 = BuildCoverQuery(query_.cq, cover, 0);
  // ?b (id 2) and ?c (id 3), the vars of the shared atom 1, join;
  // ?a (id 0) is distinguished.
  EXPECT_EQ(f0.head, (std::vector<VarId>{0, 2, 3}));
}

TEST_F(CoverTest, CanonicalizeSortsFragments) {
  Cover cover;
  cover.fragments = {{3, 2}, {1, 0}};
  cover.Canonicalize();
  EXPECT_EQ(cover.fragments, (std::vector<std::vector<int>>{{0, 1}, {2, 3}}));
  Cover same;
  same.fragments = {{0, 1}, {2, 3}};
  EXPECT_EQ(cover.Key(), same.Key());
}

TEST_F(CoverTest, RemoveRedundantFragments) {
  // {0,1,2} + {1,2} is invalid (inclusion); use the paper's §4.3 example
  // shape: {{0,1,3},{0,2},{2,3}} where {2,3} is redundant.
  Result<Query> q4 = ParseQuery(
      "SELECT ?a WHERE { ?a <p0> ?b . ?a <p1> ?c . ?a <p2> ?d . "
      "?a <p3> ?e . }",
      &graph_.dict());
  ASSERT_TRUE(q4.ok());
  const ConjunctiveQuery& cq = q4.ValueOrDie().cq;
  Cover cover;
  cover.fragments = {{0, 1, 3}, {0, 2}, {2, 3}};
  RemoveRedundantFragments(cq, &cover, {});
  EXPECT_EQ(cover.fragments.size(), 2u);
  EXPECT_TRUE(ValidateCover(cq, cover).ok());
}

TEST_F(CoverTest, RedundancyRemovalPrefersExpensiveFragments) {
  Result<Query> q4 = ParseQuery(
      "SELECT ?a WHERE { ?a <p0> ?b . ?a <p1> ?c . ?a <p2> ?d . }",
      &graph_.dict());
  ASSERT_TRUE(q4.ok());
  const ConjunctiveQuery& cq = q4.ValueOrDie().cq;
  // Both {0,1} and {1,2} are redundant w.r.t. the rest; with costs making
  // {1,2} the most expensive, it must be removed first (and then {0,1} is
  // no longer redundant).
  Cover cover;
  cover.fragments = {{0, 1}, {1, 2}, {0, 2}};
  RemoveRedundantFragments(cq, &cover, {1.0, 100.0, 1.0});
  ASSERT_EQ(cover.fragments.size(), 2u);
  EXPECT_EQ(cover.fragments[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(cover.fragments[1], (std::vector<int>{0, 2}));
}

TEST_F(CoverTest, NoRemovalWhenNothingRedundant) {
  Cover cover;
  cover.fragments = {{0, 1}, {2, 3}};
  Cover before = cover;
  RemoveRedundantFragments(query_.cq, &cover, {});
  EXPECT_EQ(cover, before);
}

}  // namespace
}  // namespace rdfopt
