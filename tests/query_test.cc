#include "sparql/query.h"

#include <gtest/gtest.h>

namespace rdfopt {
namespace {

TriplePattern Atom(PatternTerm s, PatternTerm p, PatternTerm o) {
  return TriplePattern{s, p, o};
}

TEST(PatternTermTest, VarAndConstDistinct) {
  EXPECT_NE(PatternTerm::Var(3), PatternTerm::Const(3));
  EXPECT_EQ(PatternTerm::Var(3), PatternTerm::Var(3));
  EXPECT_TRUE(PatternTerm::Var(3).is_var());
  EXPECT_FALSE(PatternTerm::Const(3).is_var());
}

TEST(PatternTermTest, DefaultIsInvalidConstant) {
  PatternTerm t;
  EXPECT_FALSE(t.is_var());
  EXPECT_EQ(t.value(), kInvalidValueId);
}

TEST(TriplePatternTest, AppendVariablesInPositionOrder) {
  TriplePattern atom =
      Atom(PatternTerm::Var(2), PatternTerm::Const(9), PatternTerm::Var(1));
  std::vector<VarId> vars;
  atom.AppendVariables(&vars);
  EXPECT_EQ(vars, (std::vector<VarId>{2, 1}));
}

TEST(TriplePatternTest, SharesVariableWith) {
  TriplePattern a =
      Atom(PatternTerm::Var(0), PatternTerm::Const(9), PatternTerm::Var(1));
  TriplePattern b =
      Atom(PatternTerm::Var(1), PatternTerm::Const(8), PatternTerm::Var(2));
  TriplePattern c =
      Atom(PatternTerm::Var(3), PatternTerm::Const(9), PatternTerm::Var(4));
  EXPECT_TRUE(a.SharesVariableWith(b));
  EXPECT_FALSE(a.SharesVariableWith(c));
  // An atom with a variable shares with itself.
  EXPECT_TRUE(a.SharesVariableWith(a));
}

TEST(VarTableTest, GetOrCreateAndFresh) {
  VarTable vars;
  VarId x = vars.GetOrCreate("x");
  VarId y = vars.GetOrCreate("y");
  EXPECT_EQ(x, vars.GetOrCreate("x"));
  EXPECT_NE(x, y);
  VarId f = vars.Fresh();
  EXPECT_EQ(vars.name(f)[0], '_');
  EXPECT_EQ(vars.size(), 3u);
}

TEST(ConjunctiveQueryTest, AllVariablesSortedUnique) {
  ConjunctiveQuery cq;
  cq.atoms.push_back(
      Atom(PatternTerm::Var(3), PatternTerm::Const(9), PatternTerm::Var(1)));
  cq.atoms.push_back(
      Atom(PatternTerm::Var(1), PatternTerm::Var(2), PatternTerm::Const(5)));
  EXPECT_EQ(cq.AllVariables(), (std::vector<VarId>{1, 2, 3}));
}

TEST(ConjunctiveQueryTest, Connectivity) {
  ConjunctiveQuery connected;
  connected.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(9), PatternTerm::Var(1)));
  connected.atoms.push_back(
      Atom(PatternTerm::Var(1), PatternTerm::Const(8), PatternTerm::Var(2)));
  EXPECT_TRUE(connected.IsConnected());

  ConjunctiveQuery disconnected = connected;
  disconnected.atoms.push_back(
      Atom(PatternTerm::Var(7), PatternTerm::Const(8), PatternTerm::Var(8)));
  EXPECT_FALSE(disconnected.IsConnected());

  ConjunctiveQuery single;
  single.atoms.push_back(
      Atom(PatternTerm::Const(1), PatternTerm::Const(2),
           PatternTerm::Const(3)));
  EXPECT_TRUE(single.IsConnected());
}

TEST(CanonicalKeyTest, InvariantUnderFreshRenaming) {
  // Two CQs equal up to renaming of fresh variables (ids >= 2).
  ConjunctiveQuery a;
  a.head = {0};
  a.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(9), PatternTerm::Var(5)));
  ConjunctiveQuery b;
  b.head = {0};
  b.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(9), PatternTerm::Var(7)));
  EXPECT_EQ(CanonicalKey(a, 2), CanonicalKey(b, 2));
}

TEST(CanonicalKeyTest, DistinguishesOriginalVariables) {
  ConjunctiveQuery a;
  a.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(9), PatternTerm::Var(1)));
  ConjunctiveQuery b;
  b.atoms.push_back(
      Atom(PatternTerm::Var(1), PatternTerm::Const(9), PatternTerm::Var(0)));
  EXPECT_NE(CanonicalKey(a, 2), CanonicalKey(b, 2));
}

TEST(CanonicalKeyTest, DistinguishesHeadBindings) {
  ConjunctiveQuery a;
  a.head = {0};
  a.atoms.push_back(
      Atom(PatternTerm::Var(1), PatternTerm::Const(9), PatternTerm::Const(3)));
  ConjunctiveQuery b = a;
  a.head_bindings = {{0, 42}};
  b.head_bindings = {{0, 43}};
  EXPECT_NE(CanonicalKey(a, 2), CanonicalKey(b, 2));
}

TEST(CanonicalKeyTest, FreshRenamingFollowsOccurrenceOrder) {
  // (f7, p, f5) and (f5, p, f7) both canonicalize to (f0, p, f1).
  ConjunctiveQuery a;
  a.atoms.push_back(
      Atom(PatternTerm::Var(7), PatternTerm::Const(9), PatternTerm::Var(5)));
  ConjunctiveQuery b;
  b.atoms.push_back(
      Atom(PatternTerm::Var(5), PatternTerm::Const(9), PatternTerm::Var(7)));
  EXPECT_EQ(CanonicalKey(a, 2), CanonicalKey(b, 2));
  // But swapping one for an original variable differs.
  ConjunctiveQuery c;
  c.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(9), PatternTerm::Var(5)));
  EXPECT_NE(CanonicalKey(a, 2), CanonicalKey(c, 2));
}

}  // namespace
}  // namespace rdfopt
