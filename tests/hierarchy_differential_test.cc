// Differential suite for the hierarchy-range collapse (DESIGN.md §12): a
// plan whose reformulation union was collapsed to ScanRange intervals must
// produce exactly the same answer set as the uncollapsed union-of-scans
// plan, across the LUBM and DBLP evaluation query sets, on the deep
// fine-grained LUBM hierarchy (including multi-parent residual unions), at
// 1 and 4 workers, and across an epoch-crossing data update through the
// query service. Range and union plans enumerate branches in different
// orders, so cross-plan-shape comparisons sort rows canonically first;
// same-plan worker-count comparisons stay bit-identical (rows AND order).

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/evaluator.h"
#include "rdf/hierarchy_encoding.h"
#include "reformulation/reformulator.h"
#include "service/query_service.h"
#include "sparql/parser.h"
#include "workload/dblp.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

constexpr size_t kMaxTermsCompared = 4096;

struct Workload {
  Graph graph;
  TripleStore store;

  void Finish() {
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
    store.AttachHierarchy(std::make_shared<const HierarchyEncoding>(
        HierarchyEncoding::Build(graph.schema(), graph.vocab().rdf_type)));
  }
};

Workload& Lubm() {
  static Workload& w = *[] {
    auto* w = new Workload();
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, &w->graph);
    w->Finish();
    return w;
  }();
  return w;
}

/// The deep-hierarchy regime the collapse targets: specialty leaf classes
/// under the professor ranks, professors typed at the leaves. 48 leaves
/// keeps the uncollapsed reference engine fast enough for the TSan job
/// while still forcing ~50-term type unions (the bench uses 240).
Workload& LubmFineGrained() {
  static Workload& w = *[] {
    auto* w = new Workload();
    LubmOptions options;
    options.num_universities = 1;
    options.fine_grained_specializations = 48;
    GenerateLubm(options, &w->graph);
    w->Finish();
    return w;
  }();
  return w;
}

Workload& Dblp() {
  static Workload& w = *[] {
    auto* w = new Workload();
    DblpOptions options;
    options.num_publications = 1500;
    GenerateDblp(options, &w->graph);
    w->Finish();
    return w;
  }();
  return w;
}

/// Batch engine, emulated overheads zeroed, with or without the collapse.
EngineProfile Profile(bool hierarchy_ranges, size_t worker_threads = 1) {
  EngineProfile p = Vectorized(PostgresLikeProfile());
  p.tuple_us_per_row = 0.0;
  p.union_term_overhead_us = 0.0;
  p.materialization_us_per_row = 0.0;
  p.max_union_terms = 1u << 20;
  p.timeout_seconds = 300.0;
  p.hierarchy_ranges = hierarchy_ranges;
  p.worker_threads = worker_threads;
  return p;
}

std::vector<std::vector<ValueId>> SortedRows(const Relation& rel) {
  std::vector<std::vector<ValueId>> rows(rel.num_rows());
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    rows[r].reserve(rel.arity());
    for (size_t c = 0; c < rel.arity(); ++c) {
      rows[r].push_back(rel.at(r, c));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectSameRowSet(const Relation& a, const Relation& b,
                      const std::string& label) {
  ASSERT_EQ(a.columns(), b.columns()) << label;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
  EXPECT_EQ(SortedRows(a), SortedRows(b)) << label;
}

void ExpectIdenticalRelations(const Relation& a, const Relation& b,
                              const std::string& label) {
  ASSERT_EQ(a.columns(), b.columns()) << label;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.arity(); ++c) {
      ASSERT_EQ(a.at(r, c), b.at(r, c))
          << label << " row " << r << " col " << c;
    }
  }
}

/// For every in-range query of `set`: the range-collapsed engine must agree
/// with the plain union engine on the answer set, and with itself
/// bit-identically at 1 vs 4 workers. `*collapsed` counts queries whose
/// plan actually collapsed at least one union term.
void RunDifferential(Workload* w, const std::vector<BenchmarkQuery>& set,
                     size_t* collapsed) {
  Reformulator reformulator(&w->graph.schema(), &w->graph.vocab());
  EngineProfile union_profile = Profile(false);
  EngineProfile range1 = Profile(true, 1);
  EngineProfile range4 = Profile(true, 4);
  Evaluator union_engine(&w->store, &union_profile);
  Evaluator range_engine1(&w->store, &range1);
  Evaluator range_engine4(&w->store, &range4);

  *collapsed = 0;
  for (const BenchmarkQuery& bq : set) {
    Result<Query> parsed = ParseQuery(bq.text, &w->graph.dict());
    ASSERT_TRUE(parsed.ok()) << bq.name << ": " << parsed.status().ToString();
    Query q = parsed.TakeValue();
    Result<UnionQuery> ucq = reformulator.ReformulateCQ(q.cq, &q.vars);
    if (!ucq.ok() || ucq.ValueOrDie().size() > kMaxTermsCompared) {
      continue;  // Over the differential's term budget; skip, don't fail.
    }

    PhysicalPlan range_plan = range_engine1.planner().PlanUCQ(ucq.ValueOrDie());
    if (range_plan.union_terms < ucq.ValueOrDie().size()) {
      ++*collapsed;
    }

    Result<Relation> reference =
        union_engine.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    ASSERT_TRUE(reference.ok())
        << bq.name << ": " << reference.status().ToString();
    Result<Relation> range_seq =
        range_engine1.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    ASSERT_TRUE(range_seq.ok())
        << bq.name << ": " << range_seq.status().ToString();
    Result<Relation> range_par =
        range_engine4.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    ASSERT_TRUE(range_par.ok())
        << bq.name << ": " << range_par.status().ToString();

    ExpectSameRowSet(reference.ValueOrDie(), range_seq.ValueOrDie(),
                     bq.name + " (range vs union)");
    ExpectIdenticalRelations(range_seq.ValueOrDie(), range_par.ValueOrDie(),
                             bq.name + " (range, 1 vs 4 workers)");
  }
}

TEST(HierarchyDifferentialTest, LubmQuerySetSameAnswers) {
  size_t collapsed = 0;
  RunDifferential(&Lubm(), LubmQuerySet(), &collapsed);
  // The stock LUBM ontology already has collapsible type hierarchies; if no
  // plan collapses the differential is vacuous.
  EXPECT_GE(collapsed, 1u);
}

TEST(HierarchyDifferentialTest, LubmFineGrainedQuerySetSameAnswers) {
  size_t collapsed = 0;
  RunDifferential(&LubmFineGrained(), LubmQuerySet(), &collapsed);
  EXPECT_GE(collapsed, 1u);
}

TEST(HierarchyDifferentialTest, DblpQuerySetSameAnswers) {
  size_t collapsed = 0;
  RunDifferential(&Dblp(), DblpQuerySet(), &collapsed);
}

TEST(HierarchyDifferentialTest, MultiParentResidualBranchesStayCorrect) {
  // Diamond: TeachingProf and ResearchProf under Prof, HybridProf under
  // both. HybridProf is interval-owned by one parent and a residual of the
  // other, so a query over the non-owning parent must execute a ScanRange
  // branch PLUS a residual scan branch — and still match the plain union.
  Workload w;
  const char* kSc = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
  const char* kType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
  w.graph.AddIri("http://ex/TeachingProf", kSc, "http://ex/Prof");
  w.graph.AddIri("http://ex/ResearchProf", kSc, "http://ex/Prof");
  w.graph.AddIri("http://ex/HybridProf", kSc, "http://ex/TeachingProf");
  w.graph.AddIri("http://ex/HybridProf", kSc, "http://ex/ResearchProf");
  w.graph.AddIri("http://ex/alice", kType, "http://ex/TeachingProf");
  w.graph.AddIri("http://ex/bob", kType, "http://ex/ResearchProf");
  w.graph.AddIri("http://ex/carol", kType, "http://ex/HybridProf");
  w.Finish();

  Reformulator reformulator(&w.graph.schema(), &w.graph.vocab());
  EngineProfile union_profile = Profile(false);
  EngineProfile range_profile = Profile(true);
  Evaluator union_engine(&w.store, &union_profile);
  Evaluator range_engine(&w.store, &range_profile);

  for (const char* cls :
       {"http://ex/Prof", "http://ex/TeachingProf", "http://ex/ResearchProf"}) {
    const std::string text =
        std::string("SELECT ?x WHERE { ?x rdf:type <") + cls + "> }";
    Result<Query> parsed = ParseQuery(text, &w.graph.dict());
    ASSERT_TRUE(parsed.ok()) << cls;
    Query q = parsed.TakeValue();
    Result<UnionQuery> ucq = reformulator.ReformulateCQ(q.cq, &q.vars);
    ASSERT_TRUE(ucq.ok()) << cls;

    Result<Relation> reference =
        union_engine.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    Result<Relation> ranged =
        range_engine.EvaluateUCQ(ucq.ValueOrDie(), nullptr);
    ASSERT_TRUE(reference.ok()) << cls;
    ASSERT_TRUE(ranged.ok()) << cls;
    ExpectSameRowSet(reference.ValueOrDie(), ranged.ValueOrDie(), cls);
  }

  // The non-owning diamond parent keeps exactly one residual.
  const HierarchyEncoding& enc = *w.store.hierarchy();
  const ValueId teaching = w.graph.dict().InternIri("http://ex/TeachingProf");
  const ValueId research = w.graph.dict().InternIri("http://ex/ResearchProf");
  EXPECT_EQ(enc.ClassResiduals(teaching).size() +
                enc.ClassResiduals(research).size(),
            1u);
}

TEST(HierarchyDifferentialTest, EpochCrossingReencodeThroughService) {
  // A data-only update must carry the hierarchy encoding to the new epoch's
  // snapshot (same hid assignment, rebuilt shadow index) and answers must
  // reflect the new triples through the collapsed plan.
  Graph graph;
  const char* kSc = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
  const char* kType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
  graph.AddIri("http://ex/Student", kSc, "http://ex/Person");
  graph.AddIri("http://ex/Professor", kSc, "http://ex/Person");
  graph.AddIri("http://ex/alice", kType, "http://ex/Student");
  graph.AddIri("http://ex/bob", kType, "http://ex/Professor");

  QueryService range_service(&graph, Profile(true));
  QueryService union_service(&graph, Profile(false));
  const std::string q = "SELECT ?x WHERE { ?x rdf:type <http://ex/Person> }";

  Result<ServiceOutcome> r1 = range_service.AnswerText(q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.ValueOrDie().answers.num_rows(), 2u);

  // Data-only update: a new Student. The schema is unchanged, so the update
  // takes the merge path and must re-attach the prior epoch's encoding.
  Triple t;
  t.s = graph.dict().InternIri("http://ex/carol");
  t.p = graph.dict().InternIri(kType);
  t.o = graph.dict().InternIri("http://ex/Student");
  ASSERT_TRUE(range_service.ApplyUpdate({t}).ok());
  ASSERT_TRUE(union_service.ApplyUpdate({t}).ok());
  EXPECT_EQ(range_service.epoch(), 1u);

  Result<ServiceOutcome> r2 = range_service.AnswerText(q);
  Result<ServiceOutcome> u2 = union_service.AnswerText(q);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_TRUE(u2.ok()) << u2.status().ToString();
  EXPECT_EQ(r2.ValueOrDie().answers.num_rows(), 3u);
  ExpectSameRowSet(r2.ValueOrDie().answers, u2.ValueOrDie().answers,
                   "epoch-1 range vs union");

  // Schema-crossing update: a new subclass plus an instance forces a full
  // rebuild, which re-derives the encoding from the new schema.
  std::vector<Triple> delta(2);
  delta[0].s = graph.dict().InternIri("http://ex/Postdoc");
  delta[0].p = graph.dict().InternIri(kSc);
  delta[0].o = graph.dict().InternIri("http://ex/Person");
  delta[1].s = graph.dict().InternIri("http://ex/dana");
  delta[1].p = graph.dict().InternIri(kType);
  delta[1].o = graph.dict().InternIri("http://ex/Postdoc");
  ASSERT_TRUE(range_service.ApplyUpdate(delta).ok());
  ASSERT_TRUE(union_service.ApplyUpdate(delta).ok());

  Result<ServiceOutcome> r3 = range_service.AnswerText(q);
  Result<ServiceOutcome> u3 = union_service.AnswerText(q);
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  ASSERT_TRUE(u3.ok()) << u3.status().ToString();
  EXPECT_EQ(r3.ValueOrDie().answers.num_rows(), 4u);
  ExpectSameRowSet(r3.ValueOrDie().answers, u3.ValueOrDie().answers,
                   "epoch-2 range vs union");
}

}  // namespace
}  // namespace rdfopt
