#include "sparql/parser.h"

#include <gtest/gtest.h>

#include "rdf/vocabulary.h"
#include "sparql/printer.h"

namespace rdfopt {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Result<Query> Parse(std::string_view text) {
    return ParseQuery(text, &dict_);
  }
  Dictionary dict_;
};

TEST_F(ParserTest, SimpleSelect) {
  Result<Query> r = Parse(
      "SELECT ?x WHERE { ?x <http://ex/p> <http://ex/o> . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Query& q = r.ValueOrDie();
  EXPECT_EQ(q.cq.head.size(), 1u);
  EXPECT_EQ(q.cq.atoms.size(), 1u);
  EXPECT_TRUE(q.cq.atoms[0].s.is_var());
  EXPECT_FALSE(q.cq.atoms[0].p.is_var());
  EXPECT_EQ(dict_.term(q.cq.atoms[0].p.value()).lexical, "http://ex/p");
}

TEST_F(ParserTest, MultipleAtomsAndSharedVariables) {
  Result<Query> r = Parse(
      "SELECT ?x ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/q> ?z . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Query& q = r.ValueOrDie();
  ASSERT_EQ(q.cq.atoms.size(), 2u);
  EXPECT_EQ(q.cq.atoms[0].o.var(), q.cq.atoms[1].s.var());
  EXPECT_TRUE(q.cq.IsConnected());
}

TEST_F(ParserTest, PredeclaredRdfPrefixAndA) {
  Result<Query> r = Parse("SELECT ?x WHERE { ?x rdf:type ?y . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<Query> r2 = Parse("SELECT ?x WHERE { ?x a ?y . }");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r.ValueOrDie().cq.atoms[0].p, r2.ValueOrDie().cq.atoms[0].p);
  EXPECT_EQ(dict_.term(r.ValueOrDie().cq.atoms[0].p.value()).lexical,
            std::string(kRdfType));
}

TEST_F(ParserTest, CustomPrefix) {
  Result<Query> r = Parse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x ub:degreeFrom ?y . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(dict_.term(r.ValueOrDie().cq.atoms[0].p.value()).lexical,
            "http://lubm.example.org/univ#degreeFrom");
}

TEST_F(ParserTest, LiteralsInObjectPosition) {
  Result<Query> r = Parse(
      "SELECT ?x WHERE { ?x <http://ex/publishedIn> \"1996\" . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const PatternTerm& o = r.ValueOrDie().cq.atoms[0].o;
  ASSERT_FALSE(o.is_var());
  EXPECT_EQ(dict_.term(o.value()).kind, TermKind::kLiteral);
}

TEST_F(ParserTest, AskQueryHasEmptyHead) {
  Result<Query> r = Parse("ASK WHERE { ?x <http://ex/p> ?y . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().cq.head.empty());
}

TEST_F(ParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(Parse("select ?x where { ?x <p> <o> . }").ok());
  EXPECT_TRUE(Parse("SeLeCt ?x WhErE { ?x <p> <o> . }").ok());
}

TEST_F(ParserTest, TrailingDotOptional) {
  EXPECT_TRUE(Parse("SELECT ?x WHERE { ?x <p> <o> }").ok());
  EXPECT_TRUE(Parse("SELECT ?x WHERE { ?x <p> ?y . ?y <q> <o> }").ok());
}

TEST_F(ParserTest, CommentsSkipped) {
  EXPECT_TRUE(Parse("# leading\nSELECT ?x # mid\nWHERE { ?x <p> <o> . }")
                  .ok());
}

TEST_F(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT WHERE { ?x <p> <o> . }").ok());
  EXPECT_FALSE(Parse("SELECT ?x { ?x <p> <o> . }").ok());          // No WHERE.
  EXPECT_FALSE(Parse("SELECT ?x WHERE { }").ok());                 // Empty BGP.
  EXPECT_FALSE(Parse("SELECT ?x WHERE { ?x <p> }").ok());          // 2 terms.
  EXPECT_FALSE(Parse("SELECT ?z WHERE { ?x <p> <o> . }").ok());    // Unbound.
  EXPECT_FALSE(Parse("SELECT ?x WHERE { ?x zz:p <o> . }").ok());   // Prefix.
  EXPECT_FALSE(Parse("SELECT ?x WHERE { ?x <p> <o> . } junk").ok());
  EXPECT_FALSE(Parse("SELECT ?x WHERE { ?x <p <o> . }").ok());
}

TEST_F(ParserTest, SameConstantInternsOnce) {
  Result<Query> r = Parse(
      "SELECT ?x ?y WHERE { ?x <http://ex/p> <http://ex/c> . "
      "?y <http://ex/q> <http://ex/c> . }");
  ASSERT_TRUE(r.ok());
  const Query& q = r.ValueOrDie();
  EXPECT_EQ(q.cq.atoms[0].o.value(), q.cq.atoms[1].o.value());
}

TEST_F(ParserTest, PrinterRoundTripShape) {
  Result<Query> r = Parse(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . ?x ub:memberOf ?z . }");
  ASSERT_TRUE(r.ok());
  std::string text = ToString(r.ValueOrDie(), dict_);
  EXPECT_NE(text.find("q(?x, ?y)"), std::string::npos);
  EXPECT_NE(text.find("?x"), std::string::npos);
  EXPECT_NE(text.find("memberOf"), std::string::npos);
}

}  // namespace
}  // namespace rdfopt
