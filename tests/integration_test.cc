// End-to-end integration tests: full workloads, all benchmark queries, all
// strategies, cross-checked against saturation-based answering.

#include <set>

#include <gtest/gtest.h>

#include "optimizer/answering.h"
#include "sparql/parser.h"
#include "workload/dblp.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

std::set<std::vector<ValueId>> RowSet(const Relation& r) {
  std::set<std::vector<ValueId>> rows;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    rows.insert(std::vector<ValueId>(r.row(i).begin(), r.row(i).end()));
  }
  return rows;
}

struct Workbench {
  Graph graph;
  TripleStore store;
  TripleStore saturated;
  Statistics stats;
  EngineProfile profile;

  explicit Workbench(bool dblp) {
    if (dblp) {
      DblpOptions options;
      options.num_publications = 4000;
      GenerateDblp(options, &graph);
    } else {
      LubmOptions options;
      options.num_universities = 1;
      GenerateLubm(options, &graph);
    }
    graph.FinalizeSchema();
    store = TripleStore::Build(graph.data_triples());
    SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
    saturated = std::move(sat.store);
    stats = Statistics::Compute(store);
    profile = NativeStoreProfile();
  }

  QueryAnswerer MakeAnswerer() const {
    return QueryAnswerer(&store, &saturated, &graph.schema(), &graph.vocab(),
                         &stats, &profile);
  }
};

Workbench& LubmBench() {
  static Workbench& bench = *new Workbench(/*dblp=*/false);
  return bench;
}
Workbench& DblpBench() {
  static Workbench& bench = *new Workbench(/*dblp=*/true);
  return bench;
}

// Per-query parameterized sweep: on every LUBM benchmark query, GCov and
// SCQ answers must equal saturation answers (and with pruning/minimization
// enabled too).
class LubmQuerySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LubmQuerySweep, GcovAndScqMatchSaturation) {
  Workbench& bench = LubmBench();
  QueryAnswerer answerer = bench.MakeAnswerer();
  const BenchmarkQuery& bq = LubmQuerySet()[GetParam()];
  Result<Query> parsed = ParseQuery(bq.text, &bench.graph.dict());
  ASSERT_TRUE(parsed.ok()) << bq.name;
  const Query& query = parsed.ValueOrDie();

  AnswerOptions sat_opts;
  sat_opts.strategy = Strategy::kSaturation;
  Result<AnswerOutcome> truth = answerer.Answer(query, sat_opts);
  ASSERT_TRUE(truth.ok()) << bq.name;
  std::set<std::vector<ValueId>> expected = RowSet(truth.ValueOrDie().answers);

  AnswerOptions gcov_opts;
  gcov_opts.strategy = Strategy::kGcov;
  Result<AnswerOutcome> gcov = answerer.Answer(query, gcov_opts);
  ASSERT_TRUE(gcov.ok()) << bq.name << ": " << gcov.status().ToString();
  EXPECT_EQ(RowSet(gcov.ValueOrDie().answers), expected) << bq.name;

  AnswerOptions scq_opts;
  scq_opts.strategy = Strategy::kScq;
  Result<AnswerOutcome> scq = answerer.Answer(query, scq_opts);
  ASSERT_TRUE(scq.ok()) << bq.name << ": " << scq.status().ToString();
  EXPECT_EQ(RowSet(scq.ValueOrDie().answers), expected) << bq.name;

  AnswerOptions tuned = gcov_opts;
  tuned.prune_empty_disjuncts = true;
  tuned.minimize_query = true;
  Result<AnswerOutcome> opt = answerer.Answer(query, tuned);
  ASSERT_TRUE(opt.ok()) << bq.name << ": " << opt.status().ToString();
  EXPECT_EQ(RowSet(opt.ValueOrDie().answers), expected) << bq.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, LubmQuerySweep, ::testing::Range<size_t>(0, 28),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return LubmQuerySet()[info.param].name;
    });

class DblpQuerySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(DblpQuerySweep, GcovMatchesSaturation) {
  Workbench& bench = DblpBench();
  QueryAnswerer answerer = bench.MakeAnswerer();
  const BenchmarkQuery& bq = DblpQuerySet()[GetParam()];
  Result<Query> parsed = ParseQuery(bq.text, &bench.graph.dict());
  ASSERT_TRUE(parsed.ok()) << bq.name;
  const Query& query = parsed.ValueOrDie();

  AnswerOptions sat_opts;
  sat_opts.strategy = Strategy::kSaturation;
  Result<AnswerOutcome> truth = answerer.Answer(query, sat_opts);
  ASSERT_TRUE(truth.ok()) << bq.name;

  AnswerOptions gcov_opts;
  gcov_opts.strategy = Strategy::kGcov;
  gcov_opts.optimizer_time_budget_s = 20.0;
  Result<AnswerOutcome> got = answerer.Answer(query, gcov_opts);
  ASSERT_TRUE(got.ok()) << bq.name << ": " << got.status().ToString();
  EXPECT_EQ(RowSet(got.ValueOrDie().answers),
            RowSet(truth.ValueOrDie().answers))
      << bq.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, DblpQuerySweep, ::testing::Range<size_t>(0, 10),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return DblpQuerySet()[info.param].name;
    });

// The motivating examples reproduce the paper's qualitative Table 1/3
// structure: the type-variable atom dominates the reformulation count, and
// the products match the per-atom counts.
TEST(IntegrationLubm, MotivatingExampleArithmetic) {
  Workbench& bench = LubmBench();
  Result<Query> parsed =
      ParseQuery(LubmMotivatingQ1().text, &bench.graph.dict());
  ASSERT_TRUE(parsed.ok());
  const Query& q1 = parsed.ValueOrDie();
  ASSERT_EQ(q1.cq.atoms.size(), 3u);

  Reformulator reformulator(&bench.graph.schema(), &bench.graph.vocab());
  size_t n_type = reformulator.CountAtomReformulations(q1.cq.atoms[0],
                                                       q1.vars);
  size_t n_degree = reformulator.CountAtomReformulations(q1.cq.atoms[1],
                                                         q1.vars);
  size_t n_member = reformulator.CountAtomReformulations(q1.cq.atoms[2],
                                                         q1.vars);
  // Table 1 shape: t1 in the hundreds, t2 = 4 (degreeFrom + 3 subprops),
  // t3 = 3 (memberOf, worksFor, headOf).
  EXPECT_GT(n_type, 100u);
  EXPECT_EQ(n_degree, 4u);
  EXPECT_EQ(n_member, 3u);
  EXPECT_EQ(reformulator.EstimateDisjuncts(q1.cq, q1.vars),
            n_type * n_degree * n_member);

  VarTable vars = q1.vars;
  Result<UnionQuery> ucq = reformulator.ReformulateCQ(q1.cq, &vars);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq.ValueOrDie().size(), n_type * n_degree * n_member);
}

// Engine-profile failure modes (paper §5.2): the UCQ reformulation of Q28
// exceeds every profile's plan limit; GCov completes on all profiles.
TEST(IntegrationLubm, ProfileFailureModes) {
  Workbench& bench = LubmBench();
  for (const EngineProfile* profile :
       {&Db2LikeProfile(), &PostgresLikeProfile(), &MysqlLikeProfile()}) {
    QueryAnswerer answerer(&bench.store, &bench.saturated,
                           &bench.graph.schema(), &bench.graph.vocab(),
                           &bench.stats, profile);
    Result<Query> parsed =
        ParseQuery(LubmMotivatingQ2().text, &bench.graph.dict());
    ASSERT_TRUE(parsed.ok());
    AnswerOptions ucq;
    ucq.strategy = Strategy::kUcq;
    Result<AnswerOutcome> r_ucq = answerer.Answer(parsed.ValueOrDie(), ucq);
    EXPECT_FALSE(r_ucq.ok()) << profile->name;

    AnswerOptions gcov;
    gcov.strategy = Strategy::kGcov;
    Result<AnswerOutcome> r_gcov =
        answerer.Answer(parsed.ValueOrDie(), gcov);
    EXPECT_TRUE(r_gcov.ok())
        << profile->name << ": " << r_gcov.status().ToString();
  }
}

// GCov's choice is deterministic for a fixed database and profile.
TEST(IntegrationLubm, GcovIsDeterministic) {
  Workbench& bench = LubmBench();
  QueryAnswerer answerer = bench.MakeAnswerer();
  Result<Query> parsed =
      ParseQuery(LubmMotivatingQ1().text, &bench.graph.dict());
  ASSERT_TRUE(parsed.ok());
  AnswerOptions options;
  options.strategy = Strategy::kGcov;
  Result<AnswerOutcome> a = answerer.Answer(parsed.ValueOrDie(), options);
  Result<AnswerOutcome> b = answerer.Answer(parsed.ValueOrDie(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().chosen_cover.Key(),
            b.ValueOrDie().chosen_cover.Key());
  EXPECT_EQ(a.ValueOrDie().covers_examined, b.ValueOrDie().covers_examined);
}

// Updates: reformulation needs no maintenance — after adding triples and
// rebuilding only the store, reformulated answers match a fresh saturation.
TEST(IntegrationLubm, ReformulationIsRobustToUpdates) {
  Graph graph;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &graph);
  graph.FinalizeSchema();

  // Insert a new professor after the initial load.
  Dictionary& d = graph.dict();
  ValueId prof = d.InternIri("http://lubm.example.org/data/new-prof");
  ValueId works_for =
      d.LookupIri("http://lubm.example.org/univ#worksFor");
  ValueId dept0 = d.LookupIri("http://lubm.example.org/data/univ0/dept0");
  ASSERT_NE(works_for, kInvalidValueId);
  graph.AddEncoded(prof, works_for, dept0);

  TripleStore store = TripleStore::Build(graph.data_triples());
  SaturationResult sat = Saturate(store, graph.schema(), graph.vocab());
  Statistics stats = Statistics::Compute(store);
  EngineProfile profile = NativeStoreProfile();
  QueryAnswerer answerer(&store, &sat.store, &graph.schema(), &graph.vocab(),
                         &stats, &profile);

  Result<Query> parsed = ParseQuery(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x WHERE { ?x ub:memberOf "
      "<http://lubm.example.org/data/univ0/dept0> . }",
      &graph.dict());
  ASSERT_TRUE(parsed.ok());
  AnswerOptions gcov;
  gcov.strategy = Strategy::kGcov;
  Result<AnswerOutcome> got = answerer.Answer(parsed.ValueOrDie(), gcov);
  ASSERT_TRUE(got.ok());
  // The new professor is found through the worksFor < memberOf constraint.
  std::set<std::vector<ValueId>> rows = RowSet(got.ValueOrDie().answers);
  EXPECT_TRUE(rows.count({prof}));
}

}  // namespace
}  // namespace rdfopt
