#include "common/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.h"

namespace rdfopt {
namespace {

using rdfopt::testing::IsValidJson;

TEST(MetricCounterTest, AddIncrementValueReset) {
  MetricCounter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add(5);
  counter.Increment();
  EXPECT_EQ(counter.value(), 6u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricCounterTest, ConcurrentAddsDoNotLoseUpdates) {
  MetricCounter counter;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricHistogramTest, EmptyHistogramIsZero) {
  MetricHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(MetricHistogramTest, CountSumMinMaxAreExact) {
  MetricHistogram h;
  h.Observe(2.0);
  h.Observe(8.0);
  h.Observe(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(MetricHistogramTest, QuantilesAreOrderedAndBounded) {
  MetricHistogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  double p50 = h.Quantile(0.50);
  double p95 = h.Quantile(0.95);
  double p99 = h.Quantile(0.99);
  // The exponential buckets are coarse, so only assert ordering plus loose
  // bounds around the true quantiles (50, 95, 99 of uniform 1..100).
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 70.0);
  EXPECT_GE(p95, 50.0);
  EXPECT_LE(p99, 100.0);  // Clamped to the observed max.
  EXPECT_GE(h.Quantile(0.0), 1.0);  // Clamped to the observed min.
  EXPECT_LE(h.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
}

TEST(MetricHistogramTest, SingleSampleQuantilesCollapse) {
  MetricHistogram h;
  h.Observe(3.25);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 3.25);
}

TEST(MetricHistogramTest, ResetClears) {
  MetricHistogram h;
  h.Observe(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  MetricsRegistry registry;
  MetricCounter* a = registry.GetCounter("test.counter");
  MetricCounter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  MetricHistogram* ha = registry.GetHistogram("test.histogram");
  MetricHistogram* hb = registry.GetHistogram("test.histogram");
  EXPECT_EQ(ha, hb);
  // Pointers survive Reset (instruments are zeroed in place).
  a->Add(3);
  registry.Reset();
  EXPECT_EQ(a, registry.GetCounter("test.counter"));
  EXPECT_EQ(a->value(), 0u);
}

TEST(MetricsRegistryTest, ToJsonIsValidAndContainsInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("optimizer.queries")->Add(7);
  MetricHistogram* h = registry.GetHistogram("engine.evaluate_ms");
  h->Observe(1.5);
  h->Observe(4.0);

  std::string compact = registry.ToJson();
  std::string error;
  ASSERT_TRUE(IsValidJson(compact, &error)) << error << "\n" << compact;
  EXPECT_NE(compact.find("\"optimizer.queries\":7"), std::string::npos);
  EXPECT_NE(compact.find("\"engine.evaluate_ms\""), std::string::npos);
  EXPECT_NE(compact.find("\"count\":2"), std::string::npos);
  EXPECT_NE(compact.find("\"p95\""), std::string::npos);

  std::string pretty = registry.ToJson(/*indent=*/2);
  ASSERT_TRUE(IsValidJson(pretty, &error)) << error << "\n" << pretty;
  EXPECT_NE(pretty.find('\n'), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyRegistryToJsonIsValid) {
  MetricsRegistry registry;
  std::string error;
  EXPECT_TRUE(IsValidJson(registry.ToJson(), &error)) << error;
  EXPECT_TRUE(IsValidJson(registry.ToJson(/*indent=*/2), &error)) << error;
}

TEST(MetricsRegistryTest, GlobalToJsonIsValid) {
  // Other tests in the process may already have reported into the global
  // registry; whatever its contents, the snapshot must be well-formed.
  MetricsRegistry::Global().GetCounter("test.global_probe")->Increment();
  std::string error;
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_TRUE(IsValidJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("test.global_probe"), std::string::npos);
}

}  // namespace
}  // namespace rdfopt
