#include "common/metrics.h"

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_checker.h"

namespace rdfopt {
namespace {

using rdfopt::testing::IsValidJson;

TEST(MetricCounterTest, AddIncrementValueReset) {
  MetricCounter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add(5);
  counter.Increment();
  EXPECT_EQ(counter.value(), 6u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricCounterTest, ConcurrentAddsDoNotLoseUpdates) {
  MetricCounter counter;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricHistogramTest, EmptyHistogramIsZero) {
  MetricHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(MetricHistogramTest, CountSumMinMaxAreExact) {
  MetricHistogram h;
  h.Observe(2.0);
  h.Observe(8.0);
  h.Observe(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(MetricHistogramTest, QuantilesAreOrderedAndBounded) {
  MetricHistogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  double p50 = h.Quantile(0.50);
  double p95 = h.Quantile(0.95);
  double p99 = h.Quantile(0.99);
  // The exponential buckets are coarse, so only assert ordering plus loose
  // bounds around the true quantiles (50, 95, 99 of uniform 1..100).
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 70.0);
  EXPECT_GE(p95, 50.0);
  EXPECT_LE(p99, 100.0);  // Clamped to the observed max.
  EXPECT_GE(h.Quantile(0.0), 1.0);  // Clamped to the observed min.
  EXPECT_LE(h.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
}

TEST(MetricHistogramTest, SingleSampleQuantilesCollapse) {
  MetricHistogram h;
  h.Observe(3.25);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 3.25);
}

TEST(MetricHistogramTest, ResetClears) {
  MetricHistogram h;
  h.Observe(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(MetricGaugeTest, SetAddIncrementDecrement) {
  MetricGauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(10);
  g.Add(-3);
  g.Increment();
  g.Decrement();
  g.Decrement();
  EXPECT_EQ(g.value(), 6);
  g.Set(-4);  // Gauges move both ways, including below zero.
  EXPECT_EQ(g.value(), -4);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricGaugeTest, ConcurrentAddsBalanceOut) {
  MetricGauge g;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        g.Increment();
        g.Decrement();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricWindowedHistogramTest, EmptySnapshotIsZero) {
  MetricWindowedHistogram h;
  MetricWindowedHistogram::Snapshot s = h.WindowSnapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(MetricWindowedHistogramTest, SnapshotCoversRecentObservations) {
  MetricWindowedHistogram h(/*window_seconds=*/60.0, /*num_slices=*/6);
  h.Observe(2.0);
  h.Observe(8.0);
  h.Observe(0.5);
  MetricWindowedHistogram::Snapshot s = h.WindowSnapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 10.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, 8.0);  // Clamped to the observed max.
}

TEST(MetricWindowedHistogramTest, OldObservationsAgeOut) {
  MetricWindowedHistogram h(/*window_seconds=*/60.0, /*num_slices=*/6);
  h.Observe(1000.0);  // A startup spike.
  h.AdvanceClockForTest(30.0);
  h.Observe(1.0);
  // Both still inside the window.
  EXPECT_EQ(h.WindowSnapshot().count, 2u);
  EXPECT_DOUBLE_EQ(h.WindowSnapshot().max, 1000.0);
  // Move past the window: the spike must be gone, the recent sample kept
  // only while its own slice is live.
  h.AdvanceClockForTest(45.0);  // Spike is 75s old, sample is 45s old.
  MetricWindowedHistogram::Snapshot s = h.WindowSnapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  h.AdvanceClockForTest(30.0);  // Sample is 75s old.
  EXPECT_EQ(h.WindowSnapshot().count, 0u);
  // The instrument keeps accepting observations after everything aged out.
  h.Observe(2.0);
  EXPECT_EQ(h.WindowSnapshot().count, 1u);
}

TEST(MetricWindowedHistogramTest, SliceReuseDropsOnlyStaleData) {
  // 6 slices of 10s: an observation every 15s keeps rotating through
  // slices; the window must always hold the last ~60s worth.
  MetricWindowedHistogram h(/*window_seconds=*/60.0, /*num_slices=*/6);
  for (int i = 0; i < 8; ++i) {
    h.Observe(static_cast<double>(i + 1));
    h.AdvanceClockForTest(15.0);
  }
  // At t=120s the live slices cover t=70..120: the observations at
  // t=75,90,105 (values 6..8) remain; the one at t=60 is a full window old
  // and its slice has rotated out.
  MetricWindowedHistogram::Snapshot s = h.WindowSnapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 6.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

TEST(MetricWindowedHistogramTest, ResetClears) {
  MetricWindowedHistogram h;
  h.Observe(5.0);
  h.Reset();
  EXPECT_EQ(h.WindowSnapshot().count, 0u);
  h.Observe(2.0);
  EXPECT_EQ(h.WindowSnapshot().count, 1u);
}

TEST(MetricWindowedHistogramTest, ConcurrentObservesDoNotLoseSamples) {
  MetricWindowedHistogram h;
  constexpr int kThreads = 4;
  constexpr int kObsPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObsPerThread; ++i) h.Observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.WindowSnapshot().count,
            static_cast<uint64_t>(kThreads) * kObsPerThread);
}

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  MetricsRegistry registry;
  MetricCounter* a = registry.GetCounter("test.counter");
  MetricCounter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  MetricHistogram* ha = registry.GetHistogram("test.histogram");
  MetricHistogram* hb = registry.GetHistogram("test.histogram");
  EXPECT_EQ(ha, hb);
  MetricGauge* ga = registry.GetGauge("test.gauge");
  EXPECT_EQ(ga, registry.GetGauge("test.gauge"));
  MetricWindowedHistogram* wa = registry.GetWindowedHistogram("test.window");
  EXPECT_EQ(wa, registry.GetWindowedHistogram("test.window"));
  // Pointers survive Reset (instruments are zeroed in place).
  a->Add(3);
  ga->Set(5);
  wa->Observe(1.0);
  registry.Reset();
  EXPECT_EQ(a, registry.GetCounter("test.counter"));
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(ga->value(), 0);
  EXPECT_EQ(wa->WindowSnapshot().count, 0u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndReportOnNewInstrumentKinds) {
  // Registration races: threads hammering GetGauge/GetWindowedHistogram for
  // overlapping names while reporting. TSan coverage for the new maps.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 1'000; ++i) {
        std::string name = "race.gauge." + std::to_string(i % 7);
        registry.GetGauge(name)->Add(t % 2 == 0 ? 1 : -1);
        registry.GetWindowedHistogram("race.window")->Observe(1.0);
        registry.GetCounter("race.counter")->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("race.counter")->value(), 4'000u);
  EXPECT_EQ(registry.GetWindowedHistogram("race.window")->WindowSnapshot().count,
            4'000u);
}

TEST(MetricsRegistryTest, ToJsonIsValidAndContainsInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("optimizer.queries")->Add(7);
  MetricHistogram* h = registry.GetHistogram("engine.evaluate_ms");
  h->Observe(1.5);
  h->Observe(4.0);

  std::string compact = registry.ToJson();
  std::string error;
  ASSERT_TRUE(IsValidJson(compact, &error)) << error << "\n" << compact;
  EXPECT_NE(compact.find("\"optimizer.queries\":7"), std::string::npos);
  EXPECT_NE(compact.find("\"engine.evaluate_ms\""), std::string::npos);
  EXPECT_NE(compact.find("\"count\":2"), std::string::npos);
  EXPECT_NE(compact.find("\"p95\""), std::string::npos);

  std::string pretty = registry.ToJson(/*indent=*/2);
  ASSERT_TRUE(IsValidJson(pretty, &error)) << error << "\n" << pretty;
  EXPECT_NE(pretty.find('\n'), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyRegistryToJsonIsValid) {
  MetricsRegistry registry;
  std::string error;
  EXPECT_TRUE(IsValidJson(registry.ToJson(), &error)) << error;
  EXPECT_TRUE(IsValidJson(registry.ToJson(/*indent=*/2), &error)) << error;
}

TEST(MetricsRegistryTest, ToJsonIncludesGaugesAndWindowed) {
  MetricsRegistry registry;
  registry.GetGauge("service.queue_depth")->Set(3);
  registry.GetWindowedHistogram("service.total_ms")->Observe(12.0);
  std::string json = registry.ToJson();
  std::string error;
  ASSERT_TRUE(IsValidJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"service.queue_depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\"windowed\""), std::string::npos);
  EXPECT_NE(json.find("\"service.total_ms\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExpositionFormat) {
  MetricsRegistry registry;
  registry.GetCounter("engine.rows_scanned")->Add(42);
  registry.GetGauge("service.queue_depth")->Set(-2);
  registry.GetHistogram("engine.evaluate_ms")->Observe(3.0);
  registry.GetWindowedHistogram("service.total_ms")->Observe(7.0);

  std::string text = registry.ToPrometheusText();
  // Names are prefixed and dots mangled to underscores.
  EXPECT_NE(text.find("# TYPE rdfopt_engine_rows_scanned counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("rdfopt_engine_rows_scanned 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfopt_service_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("rdfopt_service_queue_depth -2\n"), std::string::npos);
  // Lifetime histograms export as summaries with quantile labels.
  EXPECT_NE(text.find("# TYPE rdfopt_engine_evaluate_ms summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("rdfopt_engine_evaluate_ms{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("rdfopt_engine_evaluate_ms_count 1\n"),
            std::string::npos);
  // Windowed histograms export as quantile+window labelled gauges.
  EXPECT_NE(text.find("# TYPE rdfopt_service_total_ms_window gauge\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("rdfopt_service_total_ms_window{quantile=\"0.99\",window="),
      std::string::npos);
  // The scrape terminator doubles as the server's end-of-response marker.
  EXPECT_TRUE(text.size() >= 6 && text.substr(text.size() - 6) == "# EOF\n")
      << text;
  // Every non-comment line is "name[{labels}] value".
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.rfind("# ", 0) == 0) continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    for (char c : line.substr(0, line.find_first_of("{ "))) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad metric name char in: " << line;
    }
  }
}

TEST(MetricsRegistryTest, GlobalToJsonIsValid) {
  // Other tests in the process may already have reported into the global
  // registry; whatever its contents, the snapshot must be well-formed.
  MetricsRegistry::Global().GetCounter("test.global_probe")->Increment();
  std::string error;
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_TRUE(IsValidJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("test.global_probe"), std::string::npos);
}

}  // namespace
}  // namespace rdfopt
