#include "cost/feedback.h"

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cost/cardinality.h"
#include "engine/evaluator.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "service/query_service.h"
#include "sparql/query.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

TriplePattern Atom(PatternTerm s, PatternTerm p, PatternTerm o) {
  return TriplePattern{s, p, o};
}

ConjunctiveQuery TwoAtomCq() {
  // q(x) :- x p y . x q z  (p = 1, q = 2 as constants).
  ConjunctiveQuery cq;
  cq.head = {0};
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(1), PatternTerm::Var(1)));
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(2), PatternTerm::Var(2)));
  return cq;
}

TEST(FragmentSignatureTest, InvariantUnderAtomOrderAndRenaming) {
  ConjunctiveQuery a = TwoAtomCq();

  // Same fragment, atoms swapped, variables renamed (x->7, y->3, z->5).
  ConjunctiveQuery b;
  b.head = {7};
  b.atoms.push_back(
      Atom(PatternTerm::Var(7), PatternTerm::Const(2), PatternTerm::Var(5)));
  b.atoms.push_back(
      Atom(PatternTerm::Var(7), PatternTerm::Const(1), PatternTerm::Var(3)));

  EXPECT_EQ(FragmentSignature(a), FragmentSignature(b));
}

TEST(FragmentSignatureTest, HeadIsExcluded) {
  ConjunctiveQuery a = TwoAtomCq();
  ConjunctiveQuery b = TwoAtomCq();
  b.head = {0, 1};  // Different projection, same conjunction body.
  EXPECT_EQ(FragmentSignature(a), FragmentSignature(b));
}

TEST(FragmentSignatureTest, ConstantsAndStructureMatter) {
  ConjunctiveQuery a = TwoAtomCq();

  ConjunctiveQuery different_const = TwoAtomCq();
  different_const.atoms[1].p = PatternTerm::Const(3);
  EXPECT_NE(FragmentSignature(a), FragmentSignature(different_const));

  // Breaking the join (different subject variables) changes the signature.
  ConjunctiveQuery disconnected = TwoAtomCq();
  disconnected.atoms[1].s = PatternTerm::Var(9);
  EXPECT_NE(FragmentSignature(a), FragmentSignature(disconnected));
}

TEST(EstimateFeedbackStoreTest, RecordsEwmaOfActuals) {
  EstimateFeedbackStore store;
  ConjunctiveQuery cq = TwoAtomCq();
  EXPECT_FALSE(store.Lookup(cq).has_value());

  store.Record(cq, /*estimated_rows=*/100.0, /*actual_rows=*/10);
  ASSERT_TRUE(store.Lookup(cq).has_value());
  EXPECT_DOUBLE_EQ(*store.Lookup(cq), 10.0);

  // alpha = 0.5: 0.5 * 30 + 0.5 * 10 = 20.
  store.Record(cq, /*estimated_rows=*/100.0, /*actual_rows=*/30);
  EXPECT_DOUBLE_EQ(*store.Lookup(cq), 20.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(EstimateFeedbackStoreTest, LookupIsAlphaInvariant) {
  EstimateFeedbackStore store;
  ConjunctiveQuery cq = TwoAtomCq();
  store.Record(cq, 100.0, 42);

  // A renamed, reordered variant of the same fragment hits the same entry.
  ConjunctiveQuery renamed;
  renamed.head = {4};
  renamed.atoms.push_back(
      Atom(PatternTerm::Var(4), PatternTerm::Const(2), PatternTerm::Var(6)));
  renamed.atoms.push_back(
      Atom(PatternTerm::Var(4), PatternTerm::Const(1), PatternTerm::Var(8)));
  ASSERT_TRUE(store.Lookup(renamed).has_value());
  EXPECT_DOUBLE_EQ(*store.Lookup(renamed), 42.0);
}

TEST(EstimateFeedbackStoreTest, FifoEvictionBoundsTheStore) {
  EstimateFeedbackStore::Options options;
  options.max_entries = 2;
  EstimateFeedbackStore store(options);

  std::vector<ConjunctiveQuery> cqs;
  for (ValueId p = 1; p <= 3; ++p) {
    ConjunctiveQuery cq;
    cq.head = {0};
    cq.atoms.push_back(Atom(PatternTerm::Var(0), PatternTerm::Const(p),
                            PatternTerm::Var(1)));
    cqs.push_back(cq);
    store.Record(cq, 1.0, 5);
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.Lookup(cqs[0]).has_value());  // Oldest evicted.
  EXPECT_TRUE(store.Lookup(cqs[1]).has_value());
  EXPECT_TRUE(store.Lookup(cqs[2]).has_value());
}

TEST(EstimateFeedbackStoreTest, ClearDropsEverything) {
  EstimateFeedbackStore store;
  store.Record(TwoAtomCq(), 10.0, 5);
  EXPECT_EQ(store.size(), 1u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Lookup(TwoAtomCq()).has_value());
}

TEST(EstimateFeedbackStoreTest, RecordObservesDriftHistogram) {
  MetricHistogram* drift =
      MetricsRegistry::Global().GetHistogram("cost.estimate_drift");
  const uint64_t before = drift->count();
  EstimateFeedbackStore store;
  // 10x under-estimate: drift ratio ~ (100+1)/(10+1) ~ 9.2.
  store.Record(TwoAtomCq(), /*estimated_rows=*/10.0, /*actual_rows=*/100);
  EXPECT_EQ(drift->count(), before + 1);
  EXPECT_GE(drift->max(), 5.0);
}

/// Skewed star data that breaks the estimator's independence assumption:
/// subject 1000 holds 91 of the 100 p-triples and the only q-triple, so
/// q(x) :- x p y . x q z returns 91 rows while the uniform estimate says
/// ~10. The feedback loop exists exactly for this case.
class FeedbackLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Triple> triples;
    for (ValueId i = 0; i < 91; ++i) triples.push_back({1000, 1, 2000 + i});
    for (ValueId j = 1; j <= 9; ++j) triples.push_back({1000 + j, 1, 5000});
    triples.push_back({1000, 2, 3000});
    store_ = TripleStore::Build(std::move(triples));
    stats_ = Statistics::Compute(store_);
    profile_ = PostgresLikeProfile();
  }

  /// The chain root of the single union term: holds the conjunction's
  /// est_rows (and after execution its actual_rows).
  static const PlanNode* ChainRoot(const PhysicalPlan& plan) {
    const PlanNode* dedup = plan.root.get();
    const PlanNode* union_all = dedup->children[0].get();
    return union_all->children[0].get();
  }

  TripleStore store_;
  Statistics stats_;
  EngineProfile profile_;
};

TEST_F(FeedbackLoopTest, SecondPlanningUsesObservedCardinality) {
  CardinalityEstimator estimator(&store_, &stats_);
  EstimateFeedbackStore feedback;
  estimator.set_feedback(&feedback);

  UnionQuery ucq;
  ucq.head = {0};
  ucq.disjuncts.push_back(TwoAtomCq());

  // First planning: no observations yet, the independence estimate (~10)
  // is far from the true 91 rows.
  Planner planner(&estimator, &profile_);
  PhysicalPlan first = planner.PlanUCQ(ucq);
  const double first_estimate = ChainRoot(first)->est_rows;
  EXPECT_NEAR(first_estimate, 10.0, 5.0);

  // Execute with feedback wired: the evaluator records each executed
  // disjunct's (estimate, actual) pair into the store.
  Evaluator evaluator(&store_, &profile_);
  evaluator.set_feedback(&feedback);
  EvalMetrics metrics;
  Result<Relation> result = evaluator.ExecutePlan(&first, &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ChainRoot(first)->actual_rows, 91u);
  ASSERT_EQ(feedback.size(), 1u);

  // Second planning of the same fragment: the estimator now returns the
  // observed cardinality instead of re-deriving the misestimate.
  PhysicalPlan second = planner.PlanUCQ(ucq);
  EXPECT_DOUBLE_EQ(ChainRoot(second)->est_rows, 91.0);
  EXPECT_NE(ChainRoot(second)->est_rows, first_estimate);
}

TEST_F(FeedbackLoopTest, FeedbackIsOptIn) {
  // Without set_feedback, recording into a store must not change what a
  // plain estimator derives — paper-reproduction runs stay order-blind.
  CardinalityEstimator estimator(&store_, &stats_);
  const double before = estimator.EstimateCQ(TwoAtomCq());
  EstimateFeedbackStore feedback;
  feedback.Record(TwoAtomCq(), before, 91);
  EXPECT_DOUBLE_EQ(estimator.EstimateCQ(TwoAtomCq()), before);
}

TEST(FeedbackServiceTest, ServiceAccumulatesFeedbackAndResetsOnEpoch) {
  Graph graph;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &graph);

  ServiceOptions service_options;
  service_options.enable_feedback = true;
  QueryService service(&graph, PostgresLikeProfile(), service_options);
  EXPECT_EQ(service.feedback_entries(), 0u);

  const char* text =
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?d WHERE { ?x ub:worksFor ?d . ?x ub:doctoralDegreeFrom "
      "?u . }";
  Result<ServiceOutcome> first = service.AnswerText(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(service.feedback_entries(), 0u);

  // Same query again (cache hit): answers must be identical even though the
  // estimator now sees observed cardinalities.
  Result<ServiceOutcome> second = service.AnswerText(text);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.ValueOrDie().answers.num_rows(),
            first.ValueOrDie().answers.num_rows());

  // An epoch bump swaps in a fresh snapshot with an empty store: stale
  // observations must not steer planning against the new data.
  service.Refresh();
  EXPECT_EQ(service.feedback_entries(), 0u);
}

}  // namespace
}  // namespace rdfopt
