#include "sparql/printer.h"

#include <gtest/gtest.h>

#include "engine/explain.h"
#include "reasoner/saturation.h"
#include "reformulation/reformulator.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  Query MustParse(const std::string& text) {
    Result<Query> q = ParseQuery(text, &dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return q.TakeValue();
  }
  Dictionary dict_;
};

TEST_F(PrinterTest, TermForms) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <http://ex/p> \"1996\" . }");
  EXPECT_EQ(ToString(q.cq.atoms[0].s, q.vars, dict_), "?x");
  EXPECT_EQ(ToString(q.cq.atoms[0].p, q.vars, dict_), "<http://ex/p>");
  EXPECT_EQ(ToString(q.cq.atoms[0].o, q.vars, dict_), "\"1996\"");
}

TEST_F(PrinterTest, CqRendering) {
  Query q = MustParse(
      "SELECT ?x ?z WHERE { ?x <p> ?y . ?y <q> ?z . }");
  std::string text = ToString(q.cq, q.vars, dict_);
  EXPECT_EQ(text, "q(?x, ?z) :- ?x <p> ?y . ?y <q> ?z");
}

TEST_F(PrinterTest, AskRendering) {
  Query q = MustParse("ASK WHERE { ?x <p> ?y . }");
  std::string text = ToString(q.cq, q.vars, dict_);
  EXPECT_EQ(text, "q() :- ?x <p> ?y");
}

TEST_F(PrinterTest, UnionRendering) {
  Query q = MustParse("SELECT ?x WHERE { ?x <p> ?y . }");
  UnionQuery ucq;
  ucq.head = q.cq.head;
  ucq.disjuncts = {q.cq, q.cq};
  std::string text = ToString(ucq, q.vars, dict_);
  EXPECT_NE(text.find("UNION"), std::string::npos);
}

TEST_F(PrinterTest, JucqSummaryElidesLargeComponents) {
  Query q = MustParse("SELECT ?x WHERE { ?x <p> ?y . }");
  JoinOfUnions jucq;
  jucq.head = q.cq.head;
  UnionQuery small;
  small.head = q.cq.head;
  small.disjuncts = {q.cq};
  UnionQuery large;
  large.head = q.cq.head;
  for (int i = 0; i < 20; ++i) large.disjuncts.push_back(q.cq);
  jucq.components = {small, large};
  std::string text = ToString(jucq, q.vars, dict_);
  EXPECT_NE(text.find("JOIN of 2 UCQ(s)"), std::string::npos);
  EXPECT_NE(text.find("20 disjunct(s) (listing elided)"),
            std::string::npos);
  EXPECT_NE(text.find("1 disjunct(s):"), std::string::npos);
}

TEST(ExplainTest, PlanShowsScanProbeAndPipelining) {
  Graph g;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &g);
  g.FinalizeSchema();
  TripleStore store = TripleStore::Build(g.data_triples());
  Statistics stats = Statistics::Compute(store);
  CardinalityEstimator estimator(&store, &stats);
  Reformulator reformulator(&g.schema(), &g.vocab());

  Result<Query> q = ParseQuery(
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . ?x ub:memberOf "
      "<http://lubm.example.org/data/univ0/dept0> . }",
      &g.dict());
  ASSERT_TRUE(q.ok());

  // Two-component JUCQ: the type fragment and the memberOf fragment.
  VarTable vars = q.ValueOrDie().vars;
  ConjunctiveQuery f0;
  f0.head = {0, 1};
  f0.atoms.push_back(q.ValueOrDie().cq.atoms[0]);
  ConjunctiveQuery f1;
  f1.head = {0};
  f1.atoms.push_back(q.ValueOrDie().cq.atoms[1]);
  Result<UnionQuery> u0 = reformulator.ReformulateCQ(f0, &vars);
  Result<UnionQuery> u1 = reformulator.ReformulateCQ(f1, &vars);
  ASSERT_TRUE(u0.ok());
  ASSERT_TRUE(u1.ok());
  JoinOfUnions jucq;
  jucq.head = q.ValueOrDie().cq.head;
  jucq.components = {u0.TakeValue(), u1.TakeValue()};

  std::string plan = ExplainJucqPlan(jucq, vars, g.dict(), estimator,
                                     PostgresLikeProfile());
  EXPECT_NE(plan.find("JUCQ plan (2 component(s))"), std::string::npos);
  EXPECT_NE(plan.find("[pipelined]"), std::string::npos);
  EXPECT_NE(plan.find("[materialized]"), std::string::npos);
  EXPECT_NE(plan.find("scan"), std::string::npos);
  EXPECT_NE(plan.find("final: hash join"), std::string::npos);
  EXPECT_NE(plan.find("more term(s)"), std::string::npos);
}

TEST(ExplainTest, FlagsOverLimitComponents) {
  Dictionary dict;
  Result<Query> q = ParseQuery("SELECT ?x WHERE { ?x <p> ?y . }", &dict);
  ASSERT_TRUE(q.ok());
  JoinOfUnions jucq;
  jucq.head = q.ValueOrDie().cq.head;
  UnionQuery huge;
  huge.head = jucq.head;
  for (int i = 0; i < 50; ++i) huge.disjuncts.push_back(q.ValueOrDie().cq);
  jucq.components = {huge};

  EngineProfile tiny = PostgresLikeProfile();
  tiny.max_union_terms = 10;
  TripleStore store = TripleStore::Build({});
  Statistics stats = Statistics::Compute(store);
  CardinalityEstimator estimator(&store, &stats);
  std::string plan =
      ExplainJucqPlan(jucq, q.ValueOrDie().vars, dict, estimator, tiny);
  EXPECT_NE(plan.find("exceeds the plan limit"), std::string::npos);
}

}  // namespace
}  // namespace rdfopt
