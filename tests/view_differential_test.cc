// Views-on ≡ views-off differential (DESIGN.md §14): answering with the
// materialized-view subsystem enabled must produce bit-identical rows in
// identical order to answering without it — across workloads (LUBM, DBLP),
// worker counts (1, 4), strategies, and mid-stream epoch updates that
// invalidate substituted views.
//
// Method: two services over two separately built but identical graphs,
// differing only in enable_views. The plan cache is disabled so every
// request replans, which makes repeats substitute from the catalog (with
// the cache on, a repeat is a plan-cache hit and never replans — views
// would only engage across *distinct* queries sharing fragments). Estimate
// feedback is disabled on both sides: feedback stores diverge once views
// skip some unions (substituted components record no per-disjunct actuals),
// and diverged estimates change plan shapes, hence row order — so the
// subsystems are compared under history-free planning, the mode the
// bit-identical guarantee is stated for.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine_profile.h"
#include "service/query_service.h"
#include "workload/dblp.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

enum class Load { kLubm, kDblp };

void Generate(Load load, Graph* graph) {
  if (load == Load::kLubm) {
    LubmOptions options;
    options.num_universities = 1;
    options.fine_grained_specializations = 16;
    GenerateLubm(options, graph);
  } else {
    GenerateDblp(DblpOptionsForTripleTarget(20000), graph);
  }
  graph->FinalizeSchema();
}

std::vector<std::string> QueryTexts(Load load) {
  std::vector<std::string> texts;
  if (load == Load::kLubm) {
    // Distinct queries sharing hot fragments (the Professor/Faculty type
    // unions), then the whole list again so substitution definitely fires.
    for (size_t qi : {size_t{1}, size_t{7}, size_t{0}, size_t{19},
                      size_t{9}}) {
      texts.push_back(LubmQuerySet()[qi].text);
    }
  } else {
    for (size_t qi : {size_t{0}, size_t{4}, size_t{6}, size_t{7}}) {
      texts.push_back(DblpQuerySet()[qi].text);
    }
  }
  const size_t distinct = texts.size();
  for (size_t i = 0; i < distinct; ++i) texts.push_back(texts[i]);
  return texts;
}

/// Exact row-major cell sequence: equality means bit-identical rows AND
/// ordering, the full strength of the substitution guarantee.
std::vector<ValueId> FlatRows(const Relation& r) {
  return std::vector<ValueId>(r.cells_data(),
                              r.cells_data() + r.num_cells());
}

ServiceOptions Options(Strategy strategy, bool enable_views) {
  ServiceOptions options;
  options.answer.strategy = strategy;
  options.enable_cache = false;     // Replan every request (see header).
  options.enable_feedback = false;  // History-free planning on both sides.
  options.enable_views = enable_views;
  options.view_advisor_interval = 4;  // Exercise pinning mid-stream.
  options.view_min_observations = 2;
  return options;
}

void RunDifferential(Load load, Strategy strategy, size_t workers,
                     bool epoch_churn,
                     const EngineProfile& base = PostgresLikeProfile()) {
  Graph graph_off;
  Graph graph_on;
  Generate(load, &graph_off);
  Generate(load, &graph_on);

  EngineProfile profile = base;
  profile.worker_threads = workers;

  QueryService off(&graph_off, profile, Options(strategy, false));
  QueryService on(&graph_on, profile, Options(strategy, true));

  const std::vector<std::string> texts = QueryTexts(load);
  auto compare_stream = [&](const char* phase) {
    for (size_t i = 0; i < texts.size(); ++i) {
      Result<ServiceOutcome> r_off = off.AnswerText(texts[i]);
      Result<ServiceOutcome> r_on = on.AnswerText(texts[i]);
      ASSERT_TRUE(r_off.ok()) << phase << " q" << i << ": "
                              << r_off.status().ToString();
      ASSERT_TRUE(r_on.ok()) << phase << " q" << i << ": "
                             << r_on.status().ToString();
      const Relation& a = r_off.ValueOrDie().answers;
      const Relation& b = r_on.ValueOrDie().answers;
      ASSERT_EQ(a.columns().size(), b.columns().size());
      ASSERT_EQ(a.num_rows(), b.num_rows())
          << phase << " q" << i << ": row count diverged";
      ASSERT_EQ(FlatRows(a), FlatRows(b))
          << phase << " q" << i << ": rows or ordering diverged";
    }
  };

  compare_stream("initial");
  // Not vacuous: the views side must actually have substituted.
  EXPECT_GT(on.stats().views.hits, 0u) << "no substitution ever happened";
  EXPECT_GT(on.stats().views.admitted, 0u);

  if (!epoch_churn) return;

  // Mid-stream update touching the hottest fragment (a new FullProfessor /
  // Article instance lands inside the substituted type unions), applied
  // identically to both services: views must invalidate, both sides must
  // see the new data, and answers must stay bit-identical.
  auto apply = [&](QueryService* service, Graph* graph) {
    Triple t;
    if (load == Load::kLubm) {
      t.s = graph->dict().InternIri(
          "http://lubm.example.org/data/late_professor");
      t.p = graph->dict().InternIri(
          "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
      t.o = graph->dict().InternIri(
          "http://lubm.example.org/univ#FullProfessor");
    } else {
      t.s = graph->dict().InternIri("http://dblp.example.org/rec/late_pub");
      t.p = graph->dict().InternIri(
          "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
      t.o = graph->dict().InternIri("http://dblp.example.org/bib#Article");
    }
    ASSERT_TRUE(service->ApplyUpdate({t}).ok());
  };
  const uint64_t invalidations_before = on.stats().views.invalidations +
                                        on.stats().views.refreshes;
  apply(&off, &graph_off);
  apply(&on, &graph_on);
  EXPECT_GT(
      on.stats().views.invalidations + on.stats().views.refreshes,
      invalidations_before)
      << "the update did not invalidate or refresh any materialized view";

  compare_stream("post-update");
  // The substituted fragments reflect the new epoch's data, not stale rows:
  // the first query's result must now include the late instance.
  Result<ServiceOutcome> grown = on.AnswerText(texts[0]);
  ASSERT_TRUE(grown.ok());
  EXPECT_GT(grown.ValueOrDie().answers.num_rows(), 0u);
}

// LUBM, singleton covers (every atom its own component — the shared-fragment
// scenario), serial and parallel, with mid-stream epoch churn.
TEST(ViewDifferentialTest, LubmScqSingleWorkerWithEpochChurn) {
  RunDifferential(Load::kLubm, Strategy::kScq, 1, /*epoch_churn=*/true);
}

TEST(ViewDifferentialTest, LubmScqFourWorkersWithEpochChurn) {
  RunDifferential(Load::kLubm, Strategy::kScq, 4, /*epoch_churn=*/true);
}

// Whole-query views: a UCQ cover has one component, so the view is the
// entire reformulated union.
TEST(ViewDifferentialTest, LubmUcqSingleWorker) {
  RunDifferential(Load::kLubm, Strategy::kUcq, 1, /*epoch_churn=*/false);
}

// Cost-chosen JUCQ covers, and the batch engine with union-subplan
// factoring: substitution must truncate the orphaned shared subplans.
TEST(ViewDifferentialTest, LubmGcovSharedSubplansFourWorkers) {
  EngineProfile batch = Vectorized(PostgresLikeProfile());
  ASSERT_TRUE(batch.share_union_subplans);
  RunDifferential(Load::kLubm, Strategy::kGcov, 4, /*epoch_churn=*/false,
                  batch);
}

TEST(ViewDifferentialTest, DblpScqSingleWorkerWithEpochChurn) {
  RunDifferential(Load::kDblp, Strategy::kScq, 1, /*epoch_churn=*/true);
}

TEST(ViewDifferentialTest, DblpUcqFourWorkers) {
  RunDifferential(Load::kDblp, Strategy::kUcq, 4, /*epoch_churn=*/false);
}

}  // namespace
}  // namespace rdfopt
