#include "cost/cardinality.h"

#include <gtest/gtest.h>

#include "engine/evaluator.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "workload/lubm.h"

namespace rdfopt {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Star-shaped data: 100 subjects with p, 10 of them with q.
    std::vector<Triple> triples;
    for (ValueId i = 0; i < 100; ++i) {
      triples.push_back({1000 + i, 1, 2000 + i % 10});
    }
    for (ValueId i = 0; i < 10; ++i) {
      triples.push_back({1000 + i, 2, 3000});
    }
    store_ = TripleStore::Build(std::move(triples));
    stats_ = Statistics::Compute(store_);
    estimator_.emplace(&store_, &stats_);
  }

  TriplePattern Atom(PatternTerm s, PatternTerm p, PatternTerm o) {
    return TriplePattern{s, p, o};
  }

  TripleStore store_;
  Statistics stats_;
  std::optional<CardinalityEstimator> estimator_;
};

TEST_F(CardinalityTest, SinglePatternIsExact) {
  EXPECT_DOUBLE_EQ(estimator_->EstimateAtom(Atom(
                       PatternTerm::Var(0), PatternTerm::Const(1),
                       PatternTerm::Var(1))),
                   100.0);
  EXPECT_DOUBLE_EQ(estimator_->EstimateAtom(Atom(
                       PatternTerm::Var(0), PatternTerm::Const(2),
                       PatternTerm::Var(1))),
                   10.0);
  EXPECT_DOUBLE_EQ(estimator_->EstimateAtom(Atom(
                       PatternTerm::Var(0), PatternTerm::Const(1),
                       PatternTerm::Const(2000))),
                   10.0);
  EXPECT_DOUBLE_EQ(estimator_->EstimateAtom(Atom(
                       PatternTerm::Var(0), PatternTerm::Var(1),
                       PatternTerm::Var(2))),
                   110.0);
}

TEST_F(CardinalityTest, DistinctEstimates) {
  TriplePattern p_scan =
      Atom(PatternTerm::Var(0), PatternTerm::Const(1), PatternTerm::Var(1));
  EXPECT_DOUBLE_EQ(estimator_->EstimateDistinct(p_scan, 0), 100.0);
  EXPECT_DOUBLE_EQ(estimator_->EstimateDistinct(p_scan, 1), 10.0);
  // A variable not in the atom has one "distinct value" (no constraint).
  EXPECT_DOUBLE_EQ(estimator_->EstimateDistinct(p_scan, 9), 1.0);
}

TEST_F(CardinalityTest, JoinEstimateUsesIndependence) {
  // p(x, y) join q(x, z): 100 * 10 / max distinct x (100) = 10.
  ConjunctiveQuery cq;
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(1), PatternTerm::Var(1)));
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(2), PatternTerm::Var(2)));
  EXPECT_NEAR(estimator_->EstimateCQ(cq), 10.0, 1e-9);
}

TEST_F(CardinalityTest, EmptyAtomGivesZero) {
  ConjunctiveQuery cq;
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(99), PatternTerm::Var(1)));
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(1), PatternTerm::Var(2)));
  EXPECT_DOUBLE_EQ(estimator_->EstimateCQ(cq), 0.0);
}

TEST_F(CardinalityTest, UcqSumsDisjuncts) {
  UnionQuery ucq;
  ConjunctiveQuery cq;
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(2), PatternTerm::Var(1)));
  ucq.disjuncts.push_back(cq);
  ucq.disjuncts.push_back(cq);
  EXPECT_DOUBLE_EQ(estimator_->EstimateUCQ(ucq), 20.0);
}

TEST_F(CardinalityTest, JoinOfEstimatedInputs) {
  // Two inputs of 100 and 10 rows sharing column 0.
  double est = estimator_->EstimateJoin(
      {{100.0, {0, 1}}, {10.0, {0, 2}}});
  EXPECT_NEAR(est, 10.0, 1e-9);
  // Disjoint columns: cartesian product.
  double cart = estimator_->EstimateJoin({{100.0, {0}}, {10.0, {1}}});
  EXPECT_NEAR(cart, 1000.0, 1e-9);
}

TEST_F(CardinalityTest, PlanWorkOfSingleAtomIsItsScan) {
  ConjunctiveQuery cq;
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(1), PatternTerm::Var(1)));
  EXPECT_DOUBLE_EQ(estimator_->EstimateCqPlanWork(cq), 100.0);
}

TEST_F(CardinalityTest, PlanWorkStartsFromTheSmallestAtom) {
  // q(x) :- x p y . x q z: the plan scans q (10 rows), probes p.
  // work = 10 (scan) + 10 (probe drivers) + est output.
  ConjunctiveQuery cq;
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(1), PatternTerm::Var(1)));
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(2), PatternTerm::Var(2)));
  double out = estimator_->EstimateCQ(cq);  // ~10.
  EXPECT_DOUBLE_EQ(estimator_->EstimateCqPlanWork(cq), 10.0 + 10.0 + out);
  // Far below the literal per-triple sum (110).
  EXPECT_LT(estimator_->EstimateCqPlanWork(cq), 110.0);
}

TEST_F(CardinalityTest, PlanWorkOfEmptyQueryIsZero) {
  ConjunctiveQuery cq;
  EXPECT_DOUBLE_EQ(estimator_->EstimateCqPlanWork(cq), 0.0);
}

TEST_F(CardinalityTest, PlanWorkZeroWhenFirstAtomEmpty) {
  ConjunctiveQuery cq;
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(99), PatternTerm::Var(1)));
  cq.atoms.push_back(
      Atom(PatternTerm::Var(0), PatternTerm::Const(1), PatternTerm::Var(2)));
  EXPECT_DOUBLE_EQ(estimator_->EstimateCqPlanWork(cq), 0.0);
}

// On generated data, CQ estimates should stay within a couple of orders of
// magnitude of the true result (sanity envelope, not precision).
TEST(CardinalityLubmTest, EstimatesWithinEnvelope) {
  Graph g;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &g);
  g.FinalizeSchema();
  TripleStore store = TripleStore::Build(g.data_triples());
  Statistics stats = Statistics::Compute(store);
  CardinalityEstimator estimator(&store, &stats);
  EngineProfile profile = PostgresLikeProfile();
  Evaluator evaluator(&store, &profile);

  const char* queries[] = {
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y WHERE { ?x ub:takesCourse ?y . }",
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?y ?c WHERE { ?x ub:advisor ?y . ?y ub:teacherOf ?c . }",
      "PREFIX ub: <http://lubm.example.org/univ#>\n"
      "SELECT ?x ?d WHERE { ?x ub:worksFor ?d . ?x ub:doctoralDegreeFrom "
      "?u . }",
  };
  for (const char* text : queries) {
    Result<Query> q = ParseQuery(text, &g.dict());
    ASSERT_TRUE(q.ok());
    ConjunctiveQuery body = q.ValueOrDie().cq;
    body.head = body.AllVariables();  // No projection: compare raw rows.
    Result<Relation> r = evaluator.EvaluateCQ(body, nullptr);
    ASSERT_TRUE(r.ok());
    double actual = static_cast<double>(r.ValueOrDie().num_rows());
    double estimate = estimator.EstimateCQ(q.ValueOrDie().cq);
    if (actual > 0) {
      EXPECT_LT(estimate / actual, 100.0) << text;
      EXPECT_GT(estimate / actual, 0.01) << text;
    }
  }
}

}  // namespace
}  // namespace rdfopt
