// Golden-file tests pinning the EXPLAIN and EXPLAIN ANALYZE output for two
// fixed LUBM queries. The rendered text is the user-facing contract of the
// plan layer (shell `.explain`, docs); any change to the plan shape, the
// join orders or the formatting shows up as a readable diff against
// tests/golden/*.txt.
//
// To regenerate after an intentional change:
//   RDFOPT_UPDATE_GOLDENS=1 ./rdfopt_tests --gtest_filter='ExplainGolden*'

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "engine/evaluator.h"
#include "engine/explain.h"
#include "engine/view_resolver.h"
#include "optimizer/answering.h"
#include "reformulation/reformulator.h"
#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

#ifndef RDFOPT_GOLDEN_DIR
#define RDFOPT_GOLDEN_DIR "tests/golden"
#endif

namespace rdfopt {
namespace {

class ExplainGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph();
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, graph_);
    graph_->FinalizeSchema();
    store_ = new TripleStore(TripleStore::Build(graph_->data_triples()));
    stats_ = new Statistics(Statistics::Compute(*store_));
    profile_ = new EngineProfile(PostgresLikeProfile());
    answerer_ = new QueryAnswerer(store_, /*saturated=*/nullptr,
                                  &graph_->schema(), &graph_->vocab(), stats_,
                                  profile_);
  }

  /// Executes `text` under SCQ with the plan kept, so both the estimate-only
  /// EXPLAIN and the post-execution EXPLAIN ANALYZE render from the same
  /// (executed) plan. SCQ is a fixed cover: no optimizer search, fully
  /// deterministic output.
  AnswerOutcome MustAnswerScq(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_->dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    AnswerOptions options;
    options.strategy = Strategy::kScq;
    options.keep_reformulation = true;
    Result<AnswerOutcome> r = answerer_->Answer(q.ValueOrDie(), options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.TakeValue();
  }

  static void CheckGolden(const std::string& name,
                          const std::string& actual) {
    const std::string path = std::string(RDFOPT_GOLDEN_DIR) + "/" + name;
    if (std::getenv("RDFOPT_UPDATE_GOLDENS") != nullptr) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " (regenerate with RDFOPT_UPDATE_GOLDENS=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), actual)
        << name << " drifted; if intentional, regenerate with "
        << "RDFOPT_UPDATE_GOLDENS=1";
  }

  static Graph* graph_;
  static TripleStore* store_;
  static Statistics* stats_;
  static EngineProfile* profile_;
  static QueryAnswerer* answerer_;
};

Graph* ExplainGoldenTest::graph_ = nullptr;
TripleStore* ExplainGoldenTest::store_ = nullptr;
Statistics* ExplainGoldenTest::stats_ = nullptr;
EngineProfile* ExplainGoldenTest::profile_ = nullptr;
QueryAnswerer* ExplainGoldenTest::answerer_ = nullptr;

TEST_F(ExplainGoldenTest, MotivatingQ1ExplainAndAnalyze) {
  AnswerOutcome o = MustAnswerScq(LubmMotivatingQ1().text);
  ASSERT_TRUE(o.plan.has_value());
  CheckGolden("lubm_q1_scq_explain.txt",
              ExplainPlan(*o.plan, *o.jucq_vars, graph_->dict()));
  ExplainOptions analyze;
  analyze.analyze = true;
  // Per-node wall times are nondeterministic; keep them out of the golden.
  analyze.analyze_timing = false;
  CheckGolden("lubm_q1_scq_explain_analyze.txt",
              ExplainPlan(*o.plan, *o.jucq_vars, graph_->dict(), analyze));
}

TEST_F(ExplainGoldenTest, MotivatingQ1BatchEngineSharedExplainAndAnalyze) {
  // The batch engine's plan for q1's UCQ reformulation: the [vector=1024]
  // header, the shared-subplan preamble (union-subplan factoring), the
  // "[shared sN + hash join ...]" chain references, and — under ANALYZE —
  // scan counters attributed to each shared node exactly once, with the
  // consuming refs showing reuse (actual rows) but no scan work.
  Result<Query> parsed =
      ParseQuery(LubmMotivatingQ1().text, &graph_->dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Query q = parsed.TakeValue();
  Reformulator reformulator(&graph_->schema(), &graph_->vocab());
  Result<UnionQuery> ucq = reformulator.ReformulateCQ(q.cq, &q.vars);
  ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();

  EngineProfile batch = Vectorized(PostgresLikeProfile());
  batch.timeout_seconds = 300.0;
  Evaluator evaluator(store_, &batch);
  Planner planner = evaluator.planner();
  PhysicalPlan plan = planner.PlanUCQ(ucq.ValueOrDie());
  ASSERT_TRUE(evaluator.ExecutePlan(&plan, nullptr).ok());

  CheckGolden("lubm_q1_batch_shared_explain.txt",
              ExplainPlan(plan, q.vars, graph_->dict()));
  ExplainOptions analyze;
  analyze.analyze = true;
  // Per-node wall times are nondeterministic; keep them out of the golden.
  analyze.analyze_timing = false;
  CheckGolden("lubm_q1_batch_shared_explain_analyze.txt",
              ExplainPlan(plan, q.vars, graph_->dict(), analyze));
}

/// Remembers every offered fragment result and serves it back, so the second
/// planning of the same query substitutes kViewScan nodes (DESIGN.md §14).
class GoldenViewResolver : public ViewResolver {
 public:
  void NoteComponent(const std::string&, const UnionQuery&, double,
                     size_t) override {}
  std::shared_ptr<const Relation> Lookup(
      const std::string& signature) override {
    auto it = store_.find(signature);
    return it == store_.end() ? nullptr : it->second;
  }
  void Offer(const std::string& signature, const Relation& rows) override {
    store_[signature] = std::make_shared<const Relation>(rows.Copy());
  }

 private:
  std::unordered_map<std::string, std::shared_ptr<const Relation>> store_;
};

TEST_F(ExplainGoldenTest, MotivatingQ1ViewSubstitutedExplain) {
  // Q1 answered twice through a view resolver: the first pass harvests each
  // component's deduplicated result, the second substitutes them, so every
  // component renders as a materialized-view read ("[view: <sig>]") instead
  // of its union term chains — the user-facing face of plan substitution.
  GoldenViewResolver views;
  answerer_->EnableViews(&views);
  (void)MustAnswerScq(LubmMotivatingQ1().text);
  AnswerOutcome o = MustAnswerScq(LubmMotivatingQ1().text);
  answerer_->EnableViews(nullptr);
  ASSERT_TRUE(o.plan.has_value());
  CheckGolden("lubm_q1_scq_view_explain.txt",
              ExplainPlan(*o.plan, *o.jucq_vars, graph_->dict()));
}

TEST_F(ExplainGoldenTest, MotivatingQ2ExplainAndAnalyze) {
  // The paper's q2: its one-component UCQ reformulation is over every
  // profile's plan limit, but the SCQ cover stays feasible — six components,
  // exercising the materialize/pipeline split and the component join order.
  AnswerOutcome o = MustAnswerScq(LubmMotivatingQ2().text);
  ASSERT_TRUE(o.plan.has_value());
  CheckGolden("lubm_q2_scq_explain.txt",
              ExplainPlan(*o.plan, *o.jucq_vars, graph_->dict()));
  ExplainOptions analyze;
  analyze.analyze = true;
  // Per-node wall times are nondeterministic; keep them out of the golden.
  analyze.analyze_timing = false;
  CheckGolden("lubm_q2_scq_explain_analyze.txt",
              ExplainPlan(*o.plan, *o.jucq_vars, graph_->dict(), analyze));
}

}  // namespace
}  // namespace rdfopt
