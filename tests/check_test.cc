// Contract-layer tests (common/check.h): macro evaluation discipline (the
// condition once, the message never on the passing path), failure reports,
// the hookable handler, lazy context frames, and the Result<T> value-access
// contract that used to be UB under NDEBUG.

#include "common/check.h"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"

namespace rdfopt {
namespace {

CheckFailureInfo g_last_info;

[[noreturn]] void ThrowingHandler(const CheckFailureInfo& info) {
  g_last_info = info;
  throw std::runtime_error(info.ToString());
}

/// Installs the throwing handler so contract failures become observable
/// exceptions instead of process death; restores the previous handler on
/// exit.
class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_last_info = CheckFailureInfo{};
    previous_ = SetCheckFailureHandler(&ThrowingHandler);
  }
  void TearDown() override { SetCheckFailureHandler(previous_); }

 private:
  CheckFailureHandler previous_ = nullptr;
};

std::string Touch(int* counter) {
  ++*counter;
  return "touched";
}

TEST_F(CheckTest, PassingCheckEvaluatesConditionExactlyOnce) {
  int evals = 0;
  RDFOPT_CHECK(++evals == 1) << "never reached";
#ifdef RDFOPT_DISABLE_CHECKS
  // The measurement-only build compiles the condition out entirely.
  EXPECT_EQ(evals, 0);
#else
  EXPECT_EQ(evals, 1);
#endif
}

TEST_F(CheckTest, PassingCheckNeverBuildsTheMessage) {
  int built = 0;
  RDFOPT_CHECK(true) << Touch(&built);
  EXPECT_EQ(built, 0) << "message stream evaluated on the passing path";
}

#ifndef RDFOPT_DISABLE_CHECKS

TEST_F(CheckTest, FailureReportsFileLineConditionAndMessage) {
  const int a = 1, b = 2;
  try {
    RDFOPT_CHECK(a == b) << "a=" << a << " b=" << b;
    FAIL() << "failed check did not fire the handler";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
    EXPECT_NE(what.find("RDFOPT_CHECK(a == b) failed"), std::string::npos)
        << what;
    EXPECT_NE(what.find("a=1 b=2"), std::string::npos) << what;
  }
  EXPECT_STREQ(g_last_info.condition, "a == b");
  EXPECT_GT(g_last_info.line, 0);
  EXPECT_EQ(g_last_info.message, "a=1 b=2");
  EXPECT_TRUE(g_last_info.context_dump.empty());
}

TEST_F(CheckTest, CheckOkPassesSilentlyOnOkStatus) {
  RDFOPT_CHECK_OK(Status::OK());
}

TEST_F(CheckTest, CheckOkReportsTheStatusText) {
  EXPECT_THROW(RDFOPT_CHECK_OK(Status::InvalidArgument("bad arg")),
               std::runtime_error);
  EXPECT_NE(g_last_info.message.find("InvalidArgument: bad arg"),
            std::string::npos)
      << g_last_info.message;
}

TEST_F(CheckTest, CheckOkAcceptsResults) {
  Result<int> ok_result = 42;
  RDFOPT_CHECK_OK(ok_result);
  Result<int> err_result = Status::NotFound("no such row");
  EXPECT_THROW(RDFOPT_CHECK_OK(err_result), std::runtime_error);
  EXPECT_NE(g_last_info.message.find("NotFound: no such row"),
            std::string::npos)
      << g_last_info.message;
}

TEST_F(CheckTest, ScopedContextFramesDumpOutermostFirst) {
  ScopedCheckContext outer([] { return std::string("outer frame"); });
  {
    ScopedCheckContext inner([] { return std::string("inner frame"); });
    EXPECT_THROW(RDFOPT_CHECK(false) << "with context", std::runtime_error);
  }
  const std::string& dump = g_last_info.context_dump;
  const size_t outer_pos = dump.find("outer frame");
  const size_t inner_pos = dump.find("inner frame");
  ASSERT_NE(outer_pos, std::string::npos) << dump;
  ASSERT_NE(inner_pos, std::string::npos) << dump;
  EXPECT_LT(outer_pos, inner_pos) << dump;
}

TEST_F(CheckTest, ContextDumpsAreLazy) {
  int dumped = 0;
  ScopedCheckContext frame([&dumped] {
    ++dumped;
    return std::string("expensive rendering");
  });
  RDFOPT_CHECK(true) << "passes";
  EXPECT_EQ(dumped, 0) << "context dump rendered without a failure";
  EXPECT_THROW(RDFOPT_CHECK(false) << "fails", std::runtime_error);
  EXPECT_EQ(dumped, 1);
}

TEST_F(CheckTest, ExpiredContextFramesDoNotDump) {
  {
    ScopedCheckContext frame([] { return std::string("stale frame"); });
  }
  EXPECT_THROW(RDFOPT_CHECK(false) << "after scope", std::runtime_error);
  EXPECT_TRUE(g_last_info.context_dump.empty())
      << g_last_info.context_dump;
}

TEST_F(CheckTest, ErrorResultValueAccessIsFatalWithTheStatusMessage) {
  Result<int> r = Status::Timeout("query budget exhausted");
  EXPECT_THROW((void)r.ValueOrDie(), std::runtime_error);
  EXPECT_NE(g_last_info.message.find("Timeout: query budget exhausted"),
            std::string::npos)
      << g_last_info.message;
  EXPECT_THROW((void)r.TakeValue(), std::runtime_error);
}

TEST_F(CheckTest, ResultFromOkStatusIsFatal) {
  // An OK status carries no value; constructing a Result from it would make
  // every later access UB, so the constructor itself is the contract point.
  EXPECT_THROW(Result<int>{Status::OK()}, std::runtime_error);
}

TEST_F(CheckTest, SetHandlerReturnsThePreviousOne) {
  // nullptr restores the default abort handler; the previous (throwing)
  // handler comes back so scoped installs can nest.
  CheckFailureHandler prev = SetCheckFailureHandler(nullptr);
  EXPECT_EQ(prev, &ThrowingHandler);
  SetCheckFailureHandler(&ThrowingHandler);
}

#endif  // RDFOPT_DISABLE_CHECKS

TEST_F(CheckTest, DcheckMatchesTheBuildType) {
#ifdef NDEBUG
  // Release: the condition is type-checked but never evaluated.
  int evals = 0;
  RDFOPT_DCHECK([&evals] {
    ++evals;
    return false;
  }());
  EXPECT_EQ(evals, 0) << "RDFOPT_DCHECK evaluated its condition under NDEBUG";
  RDFOPT_DCHECK_OK(Status::Internal("never constructed"));
#elif !defined(RDFOPT_DISABLE_CHECKS)
  // Debug: identical to RDFOPT_CHECK.
  EXPECT_THROW(RDFOPT_DCHECK(false) << "debug contract", std::runtime_error);
#endif
}

}  // namespace
}  // namespace rdfopt
