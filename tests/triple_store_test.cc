#include "storage/triple_store.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "workload/lubm.h"

namespace rdfopt {
namespace {

TEST(TripleStoreTest, BuildDeduplicates) {
  TripleStore store = TripleStore::Build(
      {{1, 2, 3}, {1, 2, 3}, {1, 2, 4}, {1, 2, 3}});
  EXPECT_EQ(store.size(), 2u);
}

TEST(TripleStoreTest, EmptyStore) {
  TripleStore store = TripleStore::Build({});
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.CountMatches(kAnyValue, kAnyValue, kAnyValue), 0u);
  EXPECT_TRUE(store.properties().empty());
}

class MatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Subjects 1-3, properties 10-11, objects 20-22.
    store_ = TripleStore::Build({
        {1, 10, 20},
        {1, 10, 21},
        {1, 11, 20},
        {2, 10, 20},
        {2, 11, 22},
        {3, 11, 21},
    });
  }
  TripleStore store_;
};

TEST_F(MatchTest, AllEightPatternShapes) {
  // (s,p,o)
  EXPECT_EQ(store_.CountMatches(1, 10, 20), 1u);
  EXPECT_EQ(store_.CountMatches(1, 10, 22), 0u);
  // (s,p,*)
  EXPECT_EQ(store_.CountMatches(1, 10, kAnyValue), 2u);
  // (s,*,o)
  EXPECT_EQ(store_.CountMatches(1, kAnyValue, 20), 2u);
  // (s,*,*)
  EXPECT_EQ(store_.CountMatches(1, kAnyValue, kAnyValue), 3u);
  // (*,p,o)
  EXPECT_EQ(store_.CountMatches(kAnyValue, 10, 20), 2u);
  // (*,p,*)
  EXPECT_EQ(store_.CountMatches(kAnyValue, 11, kAnyValue), 3u);
  // (*,*,o)
  EXPECT_EQ(store_.CountMatches(kAnyValue, kAnyValue, 21), 2u);
  // (*,*,*)
  EXPECT_EQ(store_.CountMatches(kAnyValue, kAnyValue, kAnyValue), 6u);
}

TEST_F(MatchTest, MatchContentsAreCorrect) {
  std::span<const Triple> range = store_.Match(kAnyValue, 10, kAnyValue);
  ASSERT_EQ(range.size(), 3u);
  for (const Triple& t : range) EXPECT_EQ(t.p, 10u);
}

TEST_F(MatchTest, ContainsChecksExactTriple) {
  EXPECT_TRUE(store_.Contains({3, 11, 21}));
  EXPECT_FALSE(store_.Contains({3, 11, 20}));
}

TEST_F(MatchTest, PropertiesAreSortedDistinct) {
  EXPECT_EQ(store_.properties(), (std::vector<ValueId>{10, 11}));
}

TEST_F(MatchTest, DistinctCountsPerProperty) {
  EXPECT_EQ(store_.CountDistinctSubjectsOfProperty(10), 2u);  // 1, 2.
  EXPECT_EQ(store_.CountDistinctObjectsOfProperty(10), 2u);   // 20, 21.
  EXPECT_EQ(store_.CountDistinctSubjectsOfProperty(11), 3u);
  EXPECT_EQ(store_.CountDistinctObjectsOfProperty(11), 3u);
  EXPECT_EQ(store_.CountDistinctSubjectsOfProperty(99), 0u);
}

TEST(TripleStoreMergeTest, EqualsBuildOfConcatenation) {
  TripleStore a = TripleStore::Build({{1, 10, 20}, {2, 10, 21}, {3, 11, 5}});
  TripleStore b = TripleStore::Build({{2, 10, 21}, {4, 12, 9}, {1, 10, 22}});
  TripleStore merged = TripleStore::Merge(a, b);

  std::vector<Triple> all(a.All().begin(), a.All().end());
  all.insert(all.end(), b.All().begin(), b.All().end());
  TripleStore rebuilt = TripleStore::Build(std::move(all));

  ASSERT_EQ(merged.size(), rebuilt.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.All()[i], rebuilt.All()[i]);
  }
  EXPECT_EQ(merged.properties(), rebuilt.properties());
  // All four indexes answer consistently.
  EXPECT_EQ(merged.CountMatches(kAnyValue, 10, kAnyValue),
            rebuilt.CountMatches(kAnyValue, 10, kAnyValue));
  EXPECT_EQ(merged.CountMatches(kAnyValue, kAnyValue, 21),
            rebuilt.CountMatches(kAnyValue, kAnyValue, 21));
  EXPECT_EQ(merged.CountMatches(2, kAnyValue, kAnyValue),
            rebuilt.CountMatches(2, kAnyValue, kAnyValue));
  EXPECT_EQ(merged.CountMatches(kAnyValue, 10, 21),
            rebuilt.CountMatches(kAnyValue, 10, 21));
}

TEST(TripleStoreMergeTest, MergeWithEmpty) {
  TripleStore a = TripleStore::Build({{1, 10, 20}});
  TripleStore empty = TripleStore::Build({});
  EXPECT_EQ(TripleStore::Merge(a, empty).size(), 1u);
  EXPECT_EQ(TripleStore::Merge(empty, a).size(), 1u);
  EXPECT_EQ(TripleStore::Merge(empty, empty).size(), 0u);
}

// Cross-check Match against a brute-force filter on a generated dataset.
TEST(TripleStoreRandomizedTest, MatchAgreesWithBruteForce) {
  Graph g;
  LubmOptions options;
  options.num_universities = 1;
  GenerateLubm(options, &g);
  TripleStore store = TripleStore::Build(g.data_triples());
  std::vector<Triple> all(store.All().begin(), store.All().end());

  WorkloadRng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Triple& probe = all[rng.Uniform(all.size())];
    ValueId s = rng.Chance(0.5) ? probe.s : kAnyValue;
    ValueId p = rng.Chance(0.5) ? probe.p : kAnyValue;
    ValueId o = rng.Chance(0.5) ? probe.o : kAnyValue;
    size_t expected = 0;
    for (const Triple& t : all) {
      if ((s == kAnyValue || t.s == s) && (p == kAnyValue || t.p == p) &&
          (o == kAnyValue || t.o == o)) {
        ++expected;
      }
    }
    EXPECT_EQ(store.CountMatches(s, p, o), expected)
        << "pattern (" << s << "," << p << "," << o << ")";
  }
}

}  // namespace
}  // namespace rdfopt
