#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/vocabulary.h"

namespace rdfopt {
namespace {

TEST(TermTest, EncodedRoundTrip) {
  for (const Term& t : {Term::Iri("http://a.example/x"),
                        Term::Literal("Game of Thrones"),
                        Term::Blank("b1")}) {
    Result<Term> parsed = Term::FromEncoded(t.Encoded());
    ASSERT_TRUE(parsed.ok()) << t.Encoded();
    EXPECT_EQ(parsed.ValueOrDie(), t);
  }
}

TEST(TermTest, EncodingIsUnambiguous) {
  // The same lexical form as IRI, literal and blank node must encode
  // differently.
  EXPECT_NE(Term::Iri("x").Encoded(), Term::Literal("x").Encoded());
  EXPECT_NE(Term::Iri("x").Encoded(), Term::Blank("x").Encoded());
  EXPECT_NE(Term::Literal("x").Encoded(), Term::Blank("x").Encoded());
}

TEST(TermTest, FromEncodedRejectsGarbage) {
  EXPECT_FALSE(Term::FromEncoded("").ok());
  EXPECT_FALSE(Term::FromEncoded("<unterminated").ok());
  EXPECT_FALSE(Term::FromEncoded("\"unterminated").ok());
  EXPECT_FALSE(Term::FromEncoded("plain").ok());
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  ValueId a = d.InternIri("http://a.example/x");
  ValueId b = d.InternIri("http://a.example/x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, IdsAreDenseAndDecodable) {
  Dictionary d;
  ValueId a = d.InternIri("http://a.example/x");
  ValueId b = d.InternLiteral("1996");
  ValueId c = d.InternBlank("b1");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(d.term(a).lexical, "http://a.example/x");
  EXPECT_EQ(d.term(b).kind, TermKind::kLiteral);
  EXPECT_EQ(d.term(c).kind, TermKind::kBlank);
}

TEST(DictionaryTest, KindsDoNotCollide) {
  Dictionary d;
  ValueId iri = d.InternIri("x");
  ValueId lit = d.InternLiteral("x");
  ValueId blank = d.InternBlank("x");
  EXPECT_NE(iri, lit);
  EXPECT_NE(iri, blank);
  EXPECT_NE(lit, blank);
}

TEST(DictionaryTest, LookupMissReturnsInvalid) {
  Dictionary d;
  EXPECT_EQ(d.LookupIri("http://nope.example/"), kInvalidValueId);
}

TEST(DictionaryTest, FreshBlankIsUnique) {
  Dictionary d;
  d.InternBlank("g0");  // Collides with the first generated label.
  ValueId fresh1 = d.FreshBlank();
  ValueId fresh2 = d.FreshBlank();
  EXPECT_NE(fresh1, fresh2);
  EXPECT_NE(d.term(fresh1).lexical, "g0");
}

TEST(VocabularyTest, SchemaPropertyDetection) {
  Dictionary d;
  Vocabulary v = Vocabulary::InternInto(&d);
  EXPECT_TRUE(v.IsSchemaProperty(v.rdfs_subclassof));
  EXPECT_TRUE(v.IsSchemaProperty(v.rdfs_subpropertyof));
  EXPECT_TRUE(v.IsSchemaProperty(v.rdfs_domain));
  EXPECT_TRUE(v.IsSchemaProperty(v.rdfs_range));
  EXPECT_FALSE(v.IsSchemaProperty(v.rdf_type));
}

TEST(VocabularyTest, PrefixExpansion) {
  EXPECT_EQ(ExpandWellKnownPrefix("rdf:type"), std::string(kRdfType));
  EXPECT_EQ(ExpandWellKnownPrefix("rdfs:domain"), std::string(kRdfsDomain));
  EXPECT_EQ(ExpandWellKnownPrefix("ub:Person"), "ub:Person");
}

TEST(GraphTest, RoutesSchemaTriples) {
  Graph g;
  g.AddIri("http://ex/Book", std::string(kRdfsSubClassOf),
           "http://ex/Publication");
  g.AddIri("http://ex/doi1", std::string(kRdfType), "http://ex/Book");
  EXPECT_EQ(g.num_schema_triples(), 1u);
  EXPECT_EQ(g.num_data_triples(), 1u);
  g.FinalizeSchema();
  ValueId book = g.dict().LookupIri("http://ex/Book");
  ValueId pub = g.dict().LookupIri("http://ex/Publication");
  EXPECT_EQ(g.schema().SuperClassesOf(book),
            (std::vector<ValueId>{std::min(book, pub), std::max(book, pub)}));
}

TEST(GraphTest, AllFourConstraintKindsRouted) {
  Graph g;
  g.AddIri("http://ex/a", std::string(kRdfsSubClassOf), "http://ex/b");
  g.AddIri("http://ex/p", std::string(kRdfsSubPropertyOf), "http://ex/q");
  g.AddIri("http://ex/p", std::string(kRdfsDomain), "http://ex/a");
  g.AddIri("http://ex/p", std::string(kRdfsRange), "http://ex/b");
  EXPECT_EQ(g.num_schema_triples(), 4u);
  EXPECT_EQ(g.num_data_triples(), 0u);
  EXPECT_EQ(g.schema().num_constraints(), 4u);
}

TEST(NTriplesTest, ParsesTriplesCommentsAndBlankLines) {
  Graph g;
  const char* doc =
      "# a comment\n"
      "\n"
      "<http://ex/doi1> <http://ex/hasTitle> \"Game of Thrones\" .\n"
      "<http://ex/doi1> <http://ex/writtenBy> _:b1 .  # trailing comment\n"
      "_:b1 <http://ex/hasName> \"George R. R. Martin\" .";
  ASSERT_TRUE(ParseNTriples(doc, &g).ok());
  EXPECT_EQ(g.num_data_triples(), 3u);
}

TEST(NTriplesTest, RejectsMalformedLines) {
  Graph g;
  EXPECT_FALSE(ParseNTriples("<http://a> <http://b> .\n", &g).ok());
  EXPECT_FALSE(ParseNTriples("<http://a> <http://b> <http://c>\n", &g).ok());
  EXPECT_FALSE(ParseNTriples("<a> <b> <c> . extra\n", &g).ok());
  EXPECT_FALSE(ParseNTriples("<a <b> <c> .\n", &g).ok());
}

TEST(NTriplesTest, LiteralEscapes) {
  Graph g;
  const char* doc =
      "<s> <p> \"line one\\nline two\\t\\\"quoted\\\" back\\\\slash\" .\n";
  ASSERT_TRUE(ParseNTriples(doc, &g).ok());
  ASSERT_EQ(g.num_data_triples(), 1u);
  const Term& lit = g.dict().term(g.data_triples()[0].o);
  EXPECT_EQ(lit.kind, TermKind::kLiteral);
  EXPECT_EQ(lit.lexical, "line one\nline two\t\"quoted\" back\\slash");
}

TEST(NTriplesTest, EscapedLiteralRoundTrip) {
  Graph g;
  g.Add(Term::Iri("s"), Term::Iri("p"),
        Term::Literal("a \"b\"\nc\\d\te\rf"));
  std::string text = SerializeNTriples(g);
  Graph g2;
  ASSERT_TRUE(ParseNTriples(text, &g2).ok()) << text;
  ASSERT_EQ(g2.num_data_triples(), 1u);
  EXPECT_EQ(g2.dict().term(g2.data_triples()[0].o).lexical,
            "a \"b\"\nc\\d\te\rf");
}

TEST(NTriplesTest, RejectsBadEscapes) {
  Graph g;
  EXPECT_FALSE(ParseNTriples("<s> <p> \"bad \\q escape\" .\n", &g).ok());
  EXPECT_FALSE(ParseNTriples("<s> <p> \"dangling\\", &g).ok());
}

TEST(NTriplesTest, EscapeHelper) {
  EXPECT_EQ(EscapeNTriplesLiteral("plain"), "plain");
  EXPECT_EQ(EscapeNTriplesLiteral("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeNTriplesLiteral("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeNTriplesLiteral("a\\b"), "a\\\\b");
}

TEST(NTriplesTest, SerializeRoundTrip) {
  Graph g;
  g.AddIri("http://ex/Book", std::string(kRdfsSubClassOf),
           "http://ex/Publication");
  g.Add(Term::Iri("http://ex/doi1"), Term::Iri("http://ex/writtenBy"),
        Term::Blank("b1"));
  g.Add(Term::Iri("http://ex/doi1"), Term::Iri("http://ex/publishedIn"),
        Term::Literal("1996"));
  std::string text = SerializeNTriples(g);

  Graph g2;
  ASSERT_TRUE(ParseNTriples(text, &g2).ok());
  EXPECT_EQ(g2.num_data_triples(), g.num_data_triples());
  EXPECT_EQ(g2.num_schema_triples(), g.num_schema_triples());
  EXPECT_EQ(SerializeNTriples(g2), text);
}

TEST(TripleTest, OrderingComparators) {
  Triple a{1, 2, 3};
  Triple b{1, 3, 2};
  EXPECT_TRUE(OrderSpo()(a, b));
  EXPECT_TRUE(OrderPso()(a, b));   // p: 2 < 3.
  EXPECT_TRUE(OrderPos()(a, b));
  EXPECT_FALSE(OrderOsp()(a, b));  // o: 3 > 2.
}

TEST(TripleTest, HashDistinguishesPermutations) {
  TripleHash h;
  EXPECT_NE(h(Triple{1, 2, 3}), h(Triple{3, 2, 1}));
  EXPECT_NE(h(Triple{1, 2, 3}), h(Triple{2, 1, 3}));
  EXPECT_EQ(h(Triple{1, 2, 3}), h(Triple{1, 2, 3}));
}

}  // namespace
}  // namespace rdfopt
