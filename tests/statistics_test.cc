#include "storage/statistics.h"

#include <gtest/gtest.h>

namespace rdfopt {
namespace {

TEST(StatisticsTest, GlobalCounts) {
  TripleStore store = TripleStore::Build({
      {1, 10, 20},
      {1, 10, 21},
      {2, 10, 20},
      {2, 11, 1},
      {3, 11, 21},
  });
  Statistics stats = Statistics::Compute(store);
  EXPECT_EQ(stats.total_triples(), 5u);
  EXPECT_EQ(stats.distinct_subjects(), 3u);   // 1, 2, 3.
  EXPECT_EQ(stats.distinct_properties(), 2u);
  EXPECT_EQ(stats.distinct_objects(), 3u);    // 20, 21, 1.
}

TEST(StatisticsTest, PerPropertyStats) {
  TripleStore store = TripleStore::Build({
      {1, 10, 20},
      {1, 10, 21},
      {2, 10, 20},
      {2, 11, 1},
  });
  Statistics stats = Statistics::Compute(store);
  PropertyStats p10 = stats.ForProperty(10);
  EXPECT_EQ(p10.count, 3u);
  EXPECT_EQ(p10.distinct_subjects, 2u);
  EXPECT_EQ(p10.distinct_objects, 2u);
  PropertyStats p11 = stats.ForProperty(11);
  EXPECT_EQ(p11.count, 1u);
  EXPECT_EQ(p11.distinct_subjects, 1u);
  EXPECT_EQ(p11.distinct_objects, 1u);
}

TEST(StatisticsTest, MissingPropertyIsZeroed) {
  TripleStore store = TripleStore::Build({{1, 10, 20}});
  Statistics stats = Statistics::Compute(store);
  PropertyStats missing = stats.ForProperty(999);
  EXPECT_EQ(missing.count, 0u);
  EXPECT_EQ(missing.distinct_subjects, 0u);
  EXPECT_EQ(missing.distinct_objects, 0u);
}

TEST(StatisticsTest, EmptyStore) {
  TripleStore store = TripleStore::Build({});
  Statistics stats = Statistics::Compute(store);
  EXPECT_EQ(stats.total_triples(), 0u);
  EXPECT_EQ(stats.distinct_subjects(), 0u);
  EXPECT_EQ(stats.distinct_objects(), 0u);
}

}  // namespace
}  // namespace rdfopt
