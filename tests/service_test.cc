#include "service/query_service.h"

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "service/admission.h"
#include "service/canonical.h"
#include "service/query_cache.h"
#include "sparql/parser.h"
#include "workload/lubm.h"
#include "workload/query_sets.h"

namespace rdfopt {
namespace {

std::set<std::vector<ValueId>> RowSet(const Relation& r) {
  std::set<std::vector<ValueId>> rows;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    rows.insert(std::vector<ValueId>(r.row(i).begin(), r.row(i).end()));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

class ServiceCanonicalTest : public ::testing::Test {
 protected:
  std::string KeyOf(const std::string& text) {
    Result<Query> q = ParseQuery(text, &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return Canonicalize(q.ValueOrDie().cq).key;
  }

  Graph graph_;
};

TEST_F(ServiceCanonicalTest, AlphaEquivalentQueriesShareKey) {
  std::string a =
      "SELECT ?x WHERE { ?x <http://ex/p> ?y . ?y <http://ex/q> ?z }";
  std::string b =
      "SELECT ?u WHERE { ?u <http://ex/p> ?v . ?v <http://ex/q> ?w }";
  EXPECT_EQ(KeyOf(a), KeyOf(b));
}

TEST_F(ServiceCanonicalTest, AtomPermutationSharesKey) {
  std::string a =
      "SELECT ?x WHERE { ?x <http://ex/p> ?y . ?y <http://ex/q> ?z }";
  std::string b =
      "SELECT ?x WHERE { ?y <http://ex/q> ?z . ?x <http://ex/p> ?y }";
  EXPECT_EQ(KeyOf(a), KeyOf(b));
}

TEST_F(ServiceCanonicalTest, RepeatedVariableIsDistinguished) {
  EXPECT_NE(KeyOf("SELECT ?x WHERE { ?x <http://ex/p> ?x }"),
            KeyOf("SELECT ?x WHERE { ?x <http://ex/p> ?y }"));
}

TEST_F(ServiceCanonicalTest, HeadOrderIsSignificant) {
  EXPECT_NE(KeyOf("SELECT ?x ?y WHERE { ?x <http://ex/p> ?y }"),
            KeyOf("SELECT ?y ?x WHERE { ?x <http://ex/p> ?y }"));
}

TEST_F(ServiceCanonicalTest, DifferentConstantsDiffer) {
  EXPECT_NE(KeyOf("SELECT ?x WHERE { ?x <http://ex/p> ?y }"),
            KeyOf("SELECT ?x WHERE { ?x <http://ex/q> ?y }"));
}

// The hard case for greedy labeling: a headless symmetric chain, where the
// first atom choice is a tie resolved by comparing full completions.
TEST_F(ServiceCanonicalTest, HeadlessChainPermutationsShareKey) {
  std::string a = "ASK WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z }";
  std::string b = "ASK WHERE { ?b <http://ex/p> ?c . ?a <http://ex/p> ?b }";
  EXPECT_EQ(KeyOf(a), KeyOf(b));
}

TEST_F(ServiceCanonicalTest, CanonicalQueryIsAnswerableForm) {
  Result<Query> q = ParseQuery(
      "SELECT ?n ?m WHERE { ?n <http://ex/p> ?m . ?m <http://ex/q> ?k }",
      &graph_.dict());
  ASSERT_TRUE(q.ok());
  CanonicalizedQuery canonical = Canonicalize(q.ValueOrDie().cq);
  // Head variables get the first canonical ids, in head order.
  ASSERT_EQ(canonical.query.cq.head.size(), 2u);
  EXPECT_EQ(canonical.query.cq.head[0], 0u);
  EXPECT_EQ(canonical.query.cq.head[1], 1u);
  // Every variable has a synthesized name in the canonical VarTable.
  EXPECT_EQ(canonical.query.vars.size(), 3u);
  EXPECT_EQ(canonical.query.vars.name(0), "c0");
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

std::shared_ptr<CachedPlanEntry> MakeEntry(Epoch epoch, size_t bytes) {
  auto entry = std::make_shared<CachedPlanEntry>();
  entry->epoch = epoch;
  entry->bytes = bytes;
  return entry;
}

TEST(ServicePlanCacheTest, GetReturnsWhatPutStored) {
  QueryPlanCache cache(1 << 20);
  cache.Put("k", MakeEntry(0, 100), 0);
  EXPECT_NE(cache.Get("k", 0), nullptr);
  EXPECT_EQ(cache.Get("absent", 0), nullptr);
  QueryPlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ServicePlanCacheTest, EpochIsPartOfTheKey) {
  QueryPlanCache cache(1 << 20);
  cache.Put("k", MakeEntry(0, 100), 0);
  EXPECT_EQ(cache.Get("k", 1), nullptr);  // Stale epoch: unreachable.
  EXPECT_NE(cache.Get("k", 0), nullptr);
}

TEST(ServicePlanCacheTest, StalePutIsDropped) {
  QueryPlanCache cache(1 << 20);
  // The inserting query pinned epoch 0 but an update moved the world to 1.
  cache.Put("k", MakeEntry(0, 100), 1);
  EXPECT_EQ(cache.Get("k", 0), nullptr);
  EXPECT_EQ(cache.stats().stale_puts, 1u);
}

TEST(ServicePlanCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  QueryPlanCache cache(100);
  cache.Put("a", MakeEntry(0, 40), 0);
  cache.Put("b", MakeEntry(0, 40), 0);
  ASSERT_NE(cache.Get("a", 0), nullptr);  // a becomes most-recently-used.
  EXPECT_EQ(cache.Put("c", MakeEntry(0, 40), 0), 1u);  // Evicts b, the LRU.
  EXPECT_EQ(cache.Get("b", 0), nullptr);
  EXPECT_NE(cache.Get("a", 0), nullptr);
  EXPECT_NE(cache.Get("c", 0), nullptr);
  QueryPlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.bytes, 100u);
}

TEST(ServicePlanCacheTest, OversizedEntryIsRefused) {
  QueryPlanCache cache(100);
  cache.Put("big", MakeEntry(0, 101), 0);
  EXPECT_EQ(cache.Get("big", 0), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServicePlanCacheTest, EvictedEntryStaysAliveForHolders) {
  QueryPlanCache cache(100);
  cache.Put("a", MakeEntry(0, 60), 0);
  std::shared_ptr<const CachedPlanEntry> held = cache.Get("a", 0);
  ASSERT_NE(held, nullptr);
  cache.Put("b", MakeEntry(0, 60), 0);  // Evicts a.
  EXPECT_EQ(cache.Get("a", 0), nullptr);
  EXPECT_EQ(held->bytes, 60u);  // The pinned entry is still valid.
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

std::chrono::steady_clock::time_point After(int ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

TEST(ServiceAdmissionTest, ShedsWhenQueueFull) {
  AdmissionController admission(/*max_concurrent=*/1, /*max_queue=*/0);
  ASSERT_TRUE(admission.Acquire(After(1000)).ok());
  Status second = admission.Acquire(After(1000));
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.stats().shed, 1u);
  admission.Release();
}

TEST(ServiceAdmissionTest, DeadlinePassesWhileQueued) {
  AdmissionController admission(/*max_concurrent=*/1, /*max_queue=*/4);
  ASSERT_TRUE(admission.Acquire(After(5000)).ok());
  Status waited = admission.Acquire(After(30));
  EXPECT_EQ(waited.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.stats().deadline_exceeded, 1u);
  admission.Release();
  // The freed slot is still grantable after the failed wait.
  ASSERT_TRUE(admission.Acquire(After(1000)).ok());
  admission.Release();
}

TEST(ServiceAdmissionTest, WaitersAdmittedInArrivalOrder) {
  AdmissionController admission(/*max_concurrent=*/1, /*max_queue=*/4);
  ASSERT_TRUE(admission.Acquire(After(5000)).ok());

  std::mutex order_mu;
  std::vector<int> order;
  auto waiter = [&](int id) {
    ASSERT_TRUE(admission.Acquire(After(5000)).ok());
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(id);
    }
    admission.Release();
  };
  std::thread first(waiter, 1);
  while (admission.stats().waiting < 1) std::this_thread::yield();
  std::thread second(waiter, 2);
  while (admission.stats().waiting < 2) std::this_thread::yield();

  admission.Release();
  first.join();
  second.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  AdmissionController::Stats s = admission.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.running, 0u);
  EXPECT_EQ(s.waiting, 0u);
}

// ---------------------------------------------------------------------------
// QueryService over LUBM: cache hits skip the pipeline, answers stay
// identical, concurrency is deterministic.
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph();
    LubmOptions options;
    options.num_universities = 1;
    GenerateLubm(options, graph_);
    graph_->FinalizeSchema();
  }

  static ServiceOptions DefaultOptions() {
    ServiceOptions options;
    options.max_concurrent = 8;
    options.max_queue = 64;
    return options;
  }

  static Graph* graph_;
};

Graph* ServiceTest::graph_ = nullptr;

TEST_F(ServiceTest, RepeatQuerySkipsReformulationAndPlanning) {
  QueryService service(graph_, PostgresLikeProfile(), DefaultOptions());
  MetricCounter* hits =
      MetricsRegistry::Global().GetCounter("service.cache_hits");
  const uint64_t hits_before = hits->value();

  Result<ServiceOutcome> miss = service.AnswerText(LubmMotivatingQ1().text);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss.ValueOrDie().cache_hit);
  EXPECT_FALSE(miss.ValueOrDie().answers.num_rows() == 0);

  TraceSession session;
  ScopedTraceSession scoped(&session);
  Result<ServiceOutcome> hit = service.AnswerText(LubmMotivatingQ1().text);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(hit.ValueOrDie().cache_hit);
  EXPECT_EQ(hits->value(), hits_before + 1);

  // The acceptance criterion: the warm path never enters cover search,
  // reformulation or planning — only execution.
  EXPECT_EQ(session.FindSpan("answer.cover_search"), nullptr);
  EXPECT_EQ(session.FindSpan("answer.reformulate"), nullptr);
  EXPECT_EQ(session.FindSpan("answer.plan"), nullptr);
  EXPECT_EQ(session.FindSpan("answer.query"), nullptr);
  EXPECT_NE(session.FindSpan("service.execute"), nullptr);
  EXPECT_NE(session.FindSpan("service.query"), nullptr);

  // Identical rows, zero re-derivation time.
  EXPECT_EQ(RowSet(hit.ValueOrDie().answers),
            RowSet(miss.ValueOrDie().answers));
  EXPECT_EQ(hit.ValueOrDie().optimize_ms, 0.0);
  EXPECT_EQ(hit.ValueOrDie().reformulate_ms, 0.0);
  EXPECT_EQ(hit.ValueOrDie().plan_ms, 0.0);
  EXPECT_EQ(hit.ValueOrDie().chosen_cover, miss.ValueOrDie().chosen_cover);
}

TEST_F(ServiceTest, AlphaVariantHitsTheSameEntry) {
  QueryService service(graph_, PostgresLikeProfile(), DefaultOptions());
  std::string a =
      "PREFIX ub: <http://lubm.example.org/univ#> "
      "SELECT ?x ?y WHERE { ?x ub:advisor ?y . ?x rdf:type ub:Student }";
  std::string b =
      "PREFIX ub: <http://lubm.example.org/univ#> "
      "SELECT ?s ?a WHERE { ?s rdf:type ub:Student . ?s ub:advisor ?a }";
  Result<ServiceOutcome> first = service.AnswerText(a);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.ValueOrDie().cache_hit);
  Result<ServiceOutcome> second = service.AnswerText(b);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.ValueOrDie().cache_hit);
  EXPECT_EQ(RowSet(first.ValueOrDie().answers),
            RowSet(second.ValueOrDie().answers));
  // Column names follow each *submitted* query, not the canonical form.
  EXPECT_EQ(first.ValueOrDie().columns, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(second.ValueOrDie().columns, (std::vector<std::string>{"s", "a"}));
}

TEST_F(ServiceTest, ConcurrentClientsGetSerialAnswers) {
  QueryService service(graph_, PostgresLikeProfile(), DefaultOptions());
  const std::vector<std::string> texts = {
      LubmMotivatingQ1().text,
      "PREFIX ub: <http://lubm.example.org/univ#> "
      "SELECT ?x ?y WHERE { ?x rdf:type ub:Faculty . ?y ub:advisor ?x }"};

  // Serial reference rows, computed before any concurrency.
  std::vector<std::set<std::vector<ValueId>>> reference;
  for (const std::string& text : texts) {
    Result<ServiceOutcome> r = service.AnswerText(text);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(RowSet(r.ValueOrDie().answers));
  }

  constexpr int kThreads = 8;
  constexpr int kReps = 3;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (size_t qi = 0; qi < texts.size(); ++qi) {
          Result<ServiceOutcome> r = service.AnswerText(texts[qi]);
          if (!r.ok()) {
            ++failures;
            continue;
          }
          if (RowSet(r.ValueOrDie().answers) != reference[qi]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  QueryService::Stats stats = service.stats();
  EXPECT_GE(stats.cache.hits, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.admission.running, 0u);
}

// ---------------------------------------------------------------------------
// Epochs and invalidation, on a small purpose-built graph.
// ---------------------------------------------------------------------------

TEST(ServiceEpochTest, DataUpdateInvalidatesAndAnswersReflectNewState) {
  Graph graph;
  graph.AddIri("http://ex/alice", "http://ex/knows", "http://ex/bob");
  QueryService service(&graph, PostgresLikeProfile());
  const std::string q = "SELECT ?x WHERE { ?x <http://ex/knows> ?y }";

  Result<ServiceOutcome> r1 = service.AnswerText(q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.ValueOrDie().answers.num_rows(), 1u);
  EXPECT_EQ(r1.ValueOrDie().epoch, 0u);
  ASSERT_TRUE(service.AnswerText(q).ValueOrDie().cache_hit);

  Triple t;
  t.s = graph.dict().InternIri("http://ex/carol");
  t.p = graph.dict().InternIri("http://ex/knows");
  t.o = graph.dict().InternIri("http://ex/dave");
  ASSERT_TRUE(service.ApplyUpdate({t}).ok());
  EXPECT_EQ(service.epoch(), 1u);

  // The warmed entry is keyed to epoch 0: the next call misses, replans
  // against the new snapshot and sees the new triple.
  Result<ServiceOutcome> r2 = service.AnswerText(q);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2.ValueOrDie().cache_hit);
  EXPECT_EQ(r2.ValueOrDie().epoch, 1u);
  EXPECT_EQ(r2.ValueOrDie().answers.num_rows(), 2u);

  // And the epoch-1 entry is immediately warm again.
  Result<ServiceOutcome> r3 = service.AnswerText(q);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.ValueOrDie().cache_hit);
  EXPECT_EQ(r3.ValueOrDie().answers.num_rows(), 2u);
}

TEST(ServiceEpochTest, SchemaUpdateRebuildsReformulationWorld) {
  Graph graph;
  graph.AddIri("http://ex/alice", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
               "http://ex/Student");
  graph.AddIri("http://ex/Student",
               "http://www.w3.org/2000/01/rdf-schema#subClassOf",
               "http://ex/Person");
  QueryService service(&graph, PostgresLikeProfile());
  const std::string q =
      "SELECT ?x WHERE { ?x rdf:type <http://ex/Person> }";

  Result<ServiceOutcome> r1 = service.AnswerText(q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  // Reformulation rewrites Person to its subclasses: alice qualifies.
  EXPECT_EQ(r1.ValueOrDie().answers.num_rows(), 1u);

  // Add a new subclass plus an instance of it, in one update: the schema
  // triple forces a full rebuild under a fresh epoch.
  std::vector<Triple> delta(2);
  delta[0].s = graph.dict().InternIri("http://ex/Professor");
  delta[0].p = graph.dict().InternIri(
      "http://www.w3.org/2000/01/rdf-schema#subClassOf");
  delta[0].o = graph.dict().InternIri("http://ex/Person");
  delta[1].s = graph.dict().InternIri("http://ex/bob");
  delta[1].p = graph.dict().InternIri(
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  delta[1].o = graph.dict().InternIri("http://ex/Professor");
  ASSERT_TRUE(service.ApplyUpdate(delta).ok());

  Result<ServiceOutcome> r2 = service.AnswerText(q);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2.ValueOrDie().cache_hit);
  EXPECT_EQ(r2.ValueOrDie().answers.num_rows(), 2u);
}

TEST(ServiceEpochTest, CacheDisabledAlwaysMisses) {
  Graph graph;
  graph.AddIri("http://ex/a", "http://ex/p", "http://ex/b");
  ServiceOptions options;
  options.enable_cache = false;
  QueryService service(&graph, PostgresLikeProfile(), options);
  const std::string q = "SELECT ?x WHERE { ?x <http://ex/p> ?y }";
  EXPECT_FALSE(service.AnswerText(q).ValueOrDie().cache_hit);
  EXPECT_FALSE(service.AnswerText(q).ValueOrDie().cache_hit);
  EXPECT_EQ(service.stats().cache.entries, 0u);
}

}  // namespace
}  // namespace rdfopt
