#ifndef RDFOPT_TESTS_JSON_CHECKER_H_
#define RDFOPT_TESTS_JSON_CHECKER_H_

// Minimal strict JSON validator (recursive descent over the RFC 8259
// grammar) used by the observability tests to check that
// MetricsRegistry::ToJson / TraceSession::ToJson emit well-formed
// documents without pulling in a JSON library.

#include <cctype>
#include <string>

namespace rdfopt::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool Validate(std::string* error) {
    pos_ = 0;
    error_.clear();
    SkipWs();
    bool ok = ParseValue() && (SkipWs(), pos_ == text_.size());
    if (!ok && error_.empty()) {
      error_ = "trailing content at offset " + std::to_string(pos_);
    }
    if (!ok && error != nullptr) *error = error_;
    return ok;
  }

 private:
  bool Fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return Fail("literal");
    }
    return true;
  }

  bool ParseValue() {
    if (pos_ >= text_.size()) return Fail("value expected");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("':'");
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return Fail("'}' or ','");
      if (text_[pos_] == '}') return ++pos_, true;
      if (text_[pos_] != ',') return Fail("','");
      ++pos_;
    }
  }

  bool ParseArray() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return Fail("']' or ','");
      if (text_[pos_] == ']') return ++pos_, true;
      if (text_[pos_] != ',') return Fail("','");
      ++pos_;
    }
  }

  bool ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("'\"'");
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') return ++pos_, true;
      if (c < 0x20) return Fail("unescaped control char");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("\\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("digit");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

inline bool IsValidJson(const std::string& text, std::string* error = nullptr) {
  return JsonChecker(text).Validate(error);
}

}  // namespace rdfopt::testing

#endif  // RDFOPT_TESTS_JSON_CHECKER_H_
