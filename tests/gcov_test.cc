#include "optimizer/gcov.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "optimizer/ecov.h"
#include "rdf/graph.h"
#include "sparql/parser.h"

namespace rdfopt {
namespace {

Query ParseOrDie(const std::string& text, Dictionary* dict) {
  Result<Query> q = ParseQuery(text, dict);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.TakeValue();
}

// Oracle with a deterministic synthetic cost: prefers covers with few
// fragments of bounded size (a smooth landscape GCov can descend).
class SyntheticOracle : public CoverCostOracle {
 public:
  double CoverCost(const Cover& cover) override {
    ++calls;
    double cost = 0.0;
    for (const std::vector<int>& f : cover.fragments) {
      cost += std::pow(3.0, static_cast<double>(f.size()));  // Big frag: bad.
    }
    cost += 10.0 * static_cast<double>(cover.fragments.size());
    return cost;
  }
  double FragmentCost(const std::vector<int>& fragment) override {
    return std::pow(3.0, static_cast<double>(fragment.size()));
  }
  size_t calls = 0;
};

TEST(GcovTest, StartsFromScqAndImproves) {
  Dictionary dict;
  Query q = ParseOrDie(
      "SELECT ?a WHERE { ?a <p0> ?b . ?a <p1> ?c . ?a <p2> ?d . "
      "?a <p3> ?e . }",
      &dict);
  SyntheticOracle oracle;
  CoverSearchResult result = GreedyCoverSearch(q.cq, &oracle, 30.0);
  EXPECT_FALSE(result.timed_out);
  EXPECT_TRUE(ValidateCover(q.cq, result.best_cover).ok());
  // SCQ cover costs 4*3 + 40 = 52; pairs cost 2*9 + 20 = 38: must improve.
  EXPECT_LE(result.best_cost, 38.0);
  EXPECT_GE(result.covers_examined, 2u);
}

TEST(GcovTest, MatchesEcovOnSmallQueries) {
  Dictionary dict;
  for (const char* text : {
           "SELECT ?a WHERE { ?a <p0> ?b . ?b <p1> ?c . ?c <p2> ?d . }",
           "SELECT ?a WHERE { ?a <p0> ?b . ?a <p1> ?c . ?a <p2> ?d . "
           "?a <p3> ?e . }",
       }) {
    Query q = ParseOrDie(text, &dict);
    SyntheticOracle oracle_g;
    CoverSearchResult gcov = GreedyCoverSearch(q.cq, &oracle_g, 30.0);
    SyntheticOracle oracle_e;
    CoverSearchResult ecov = ExhaustiveCoverSearch(q.cq, &oracle_e, 30.0);
    // The landscape is monotone along GCov moves, so GCov reaches the
    // global optimum here.
    EXPECT_DOUBLE_EQ(gcov.best_cost, ecov.best_cost) << text;
  }
}

TEST(GcovTest, SingleAtomQuery) {
  Dictionary dict;
  Query q = ParseOrDie("SELECT ?a WHERE { ?a <p> ?b . }", &dict);
  SyntheticOracle oracle;
  CoverSearchResult result = GreedyCoverSearch(q.cq, &oracle, 30.0);
  EXPECT_EQ(result.best_cover.fragments,
            (std::vector<std::vector<int>>{{0}}));
}

// When every grouping is infeasible, GCov must stay at the SCQ cover.
class AllInfeasibleOracle : public CoverCostOracle {
 public:
  double CoverCost(const Cover& cover) override {
    for (const std::vector<int>& f : cover.fragments) {
      if (f.size() > 1) return std::numeric_limits<double>::infinity();
    }
    return 5.0;
  }
  double FragmentCost(const std::vector<int>& fragment) override {
    return fragment.size() > 1 ? std::numeric_limits<double>::infinity()
                               : 1.0;
  }
};

TEST(GcovTest, KeepsScqWhenGroupingIsInfeasible) {
  Dictionary dict;
  Query q = ParseOrDie(
      "SELECT ?a WHERE { ?a <p0> ?b . ?a <p1> ?c . }", &dict);
  AllInfeasibleOracle oracle;
  CoverSearchResult result = GreedyCoverSearch(q.cq, &oracle, 30.0);
  EXPECT_EQ(result.best_cover.Key(), ScqCover(2).Key());
  EXPECT_DOUBLE_EQ(result.best_cost, 5.0);
}

// Moves only consider join-connected atoms: on a chain, atom 0 can never
// be grouped directly with atom 2.
TEST(GcovTest, MovesRespectConnectivity) {
  Dictionary dict;
  Query q = ParseOrDie(
      "SELECT ?v0 WHERE { ?v0 <p0> ?v1 . ?v1 <p1> ?v2 . ?v2 <p2> ?v3 . }",
      &dict);
  SyntheticOracle oracle;
  CoverSearchResult result = GreedyCoverSearch(q.cq, &oracle, 30.0);
  EXPECT_TRUE(ValidateCover(q.cq, result.best_cover).ok());
  for (const std::vector<int>& f : result.best_cover.fragments) {
    EXPECT_TRUE(FragmentConnected(f, AtomAdjacency(q.cq)));
  }
}

// GCov is anytime: with a zero budget it still returns the SCQ baseline.
TEST(GcovTest, AnytimeWithZeroBudget) {
  Dictionary dict;
  Query q = ParseOrDie(
      "SELECT ?a WHERE { ?a <p0> ?b . ?a <p1> ?c . ?a <p2> ?d . }", &dict);
  SyntheticOracle oracle;
  CoverSearchResult result = GreedyCoverSearch(q.cq, &oracle, 0.0);
  EXPECT_TRUE(ValidateCover(q.cq, result.best_cover).ok());
}

TEST(GcovTest, ExploresFewerCoversThanEcovOnLargerQuery) {
  // 6-atom star: ECov's space has 6424 covers; GCov must examine far fewer.
  Dictionary dict;
  std::string text = "SELECT ?a WHERE {";
  for (int i = 0; i < 6; ++i) {
    text += " ?a <p" + std::to_string(i) + "> ?v" + std::to_string(i) + " .";
  }
  text += " }";
  Query q = ParseOrDie(text, &dict);
  SyntheticOracle oracle_g;
  CoverSearchResult gcov = GreedyCoverSearch(q.cq, &oracle_g, 30.0);
  SyntheticOracle oracle_e;
  CoverSearchResult ecov = ExhaustiveCoverSearch(q.cq, &oracle_e, 30.0);
  EXPECT_EQ(ecov.covers_examined, 6424u);
  EXPECT_LT(gcov.covers_examined, ecov.covers_examined / 4);
}

}  // namespace
}  // namespace rdfopt
