// Fuzz target: the service-layer canonicalizer. Whatever the parser
// accepts, Canonicalize must (a) not crash, (b) be idempotent — the
// canonical form canonicalizes to itself — and (c) produce a key that is a
// pure function of the canonical query. A violation here is a plan-cache
// corruption bug: two runs of the same query landing on different entries,
// or worse, different queries sharing one.

#include <string>
#include <string_view>

#include "fuzz/fuzz_target.h"
#include "rdf/dictionary.h"
#include "service/canonical.h"
#include "sparql/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 1 << 16) return 0;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  rdfopt::Dictionary dict;
  rdfopt::Result<rdfopt::Query> parsed = rdfopt::ParseQuery(input, &dict);
  if (!parsed.ok()) return 0;

  const rdfopt::CanonicalizedQuery first =
      rdfopt::Canonicalize(parsed.ValueOrDie().cq);
  // Determinism: same input, same key.
  const rdfopt::CanonicalizedQuery again =
      rdfopt::Canonicalize(parsed.ValueOrDie().cq);
  if (first.key != again.key) __builtin_trap();
  // Idempotence: the canonical form is its own canonical form.
  const rdfopt::CanonicalizedQuery fixpoint =
      rdfopt::Canonicalize(first.query.cq);
  if (fixpoint.key != first.key) __builtin_trap();
  return 0;
}
