#ifndef RDFOPT_FUZZ_FUZZ_TARGET_H_
#define RDFOPT_FUZZ_FUZZ_TARGET_H_

#include <cstddef>
#include <cstdint>

// The libFuzzer entry point every harness defines. Under Clang the runtime
// (-fsanitize=fuzzer) drives it with mutated inputs; under other compilers
// standalone_driver.cc replays corpus files through the same symbol, so one
// harness source serves both the fuzzing CI job and a plain gcc build.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#endif  // RDFOPT_FUZZ_FUZZ_TARGET_H_
