// Fuzz target: the SPARQL parser must treat arbitrary bytes as a value —
// parsed Query or typed error Status — never a crash, hang, or contract
// failure. Parsed queries additionally survive the printer (the common
// "accepts it, then dies rendering it" failure mode).

#include <string>
#include <string_view>

#include "fuzz/fuzz_target.h"
#include "rdf/dictionary.h"
#include "sparql/parser.h"
#include "sparql/printer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Bound the input so a pathological token sequence can't turn one unit of
  // fuzz budget into a multi-second parse.
  if (size > 1 << 16) return 0;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  rdfopt::Dictionary dict;
  rdfopt::Result<rdfopt::Query> parsed = rdfopt::ParseQuery(input, &dict);
  if (parsed.ok()) {
    // Everything the parser accepted must render back to text.
    (void)rdfopt::ToString(parsed.ValueOrDie(), dict);
  } else {
    // Errors carry a message; forcing it catches dangling string_views into
    // the (now-dead) input buffer.
    (void)parsed.status().ToString().size();
  }
  return 0;
}
