// Replay driver for non-Clang builds: runs each file named on the command
// line through LLVMFuzzerTestOneInput once. No mutation, no coverage — it
// exists so the harnesses build and the corpus replays everywhere, while
// the Clang CI job links the real libFuzzer runtime against the same
// harness sources.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/fuzz_target.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s corpus-file...\n"
                 "(standalone replay build; compile with Clang and "
                 "-DRDFOPT_FUZZ=ON for coverage-guided fuzzing)\n",
                 argv[0]);
    return 0;  // No inputs is not a failure: CI may pass an empty glob.
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::fprintf(stderr, "ok: %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}
