// Fuzz target: the N-Triples reader over arbitrary bytes. Accepted input
// must yield a structurally sound Graph (every stored triple's terms
// resolve through the dictionary); rejected input must yield a typed
// ParseError, never a crash.

#include <string_view>

#include "fuzz/fuzz_target.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 1 << 16) return 0;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  rdfopt::Graph graph;
  rdfopt::Status st = rdfopt::ParseNTriples(input, &graph);
  if (st.ok()) {
    // Every id the reader minted must round-trip through the dictionary.
    for (const rdfopt::Triple& t : graph.data_triples()) {
      (void)graph.dict().term(t.s);
      (void)graph.dict().term(t.p);
      (void)graph.dict().term(t.o);
    }
    // Schema finalization (DFS over whatever subsumption statements the
    // input happened to contain) must hold for arbitrary constraint soups.
    graph.FinalizeSchema();
  } else {
    (void)st.ToString().size();
  }
  return 0;
}
