#ifndef RDFOPT_OPTIMIZER_COVER_H_
#define RDFOPT_OPTIMIZER_COVER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "reformulation/reformulator.h"
#include "sparql/query.h"

namespace rdfopt {

/// A cover of a BGP query (paper Def. 3.3): a set of fragments — non-empty
/// subsets of the query's atom indices — whose union is all atoms, with no
/// fragment included in another, and (for multi-fragment covers) every
/// fragment sharing a variable with some other fragment. We additionally
/// require each fragment to be variable-connected internally, "so that cover
/// queries ... do not feature cartesian products" (§3).
struct Cover {
  /// Each fragment is a sorted list of atom indices; fragments are kept in
  /// lexicographic order (canonical form).
  std::vector<std::vector<int>> fragments;

  /// Restores canonical form after mutation.
  void Canonicalize();

  /// Canonical identity key (fragments must be canonicalized).
  std::string Key() const;

  bool operator==(const Cover& other) const = default;
};

/// The UCQ extreme point: one fragment holding every atom.
Cover UcqCover(size_t num_atoms);
/// The SCQ extreme point: one singleton fragment per atom (paper [13]).
Cover ScqCover(size_t num_atoms);

/// Atom-level join graph: adjacency[i][j] iff atoms i and j share a variable.
std::vector<std::vector<bool>> AtomAdjacency(const ConjunctiveQuery& cq);

/// True iff the fragment's atoms form one connected component of the join
/// graph.
bool FragmentConnected(const std::vector<int>& fragment,
                       const std::vector<std::vector<bool>>& adjacency);

/// Checks all Def. 3.3 conditions plus internal fragment connectivity.
Status ValidateCover(const ConjunctiveQuery& cq, const Cover& cover);

/// The cover query of fragment `fragment_index` (paper Def. 3.4): its body
/// is the fragment's atoms; its head is the query's distinguished variables
/// occurring in the fragment plus the variables shared with any other
/// fragment.
ConjunctiveQuery BuildCoverQuery(const ConjunctiveQuery& cq,
                                 const Cover& cover, size_t fragment_index);

/// Drops fragments contained in the union of the other fragments, examining
/// candidates in decreasing `fragment_costs` order (GCov keeps "fragments
/// sorted in the decreasing order of their cost" and removes redundant ones,
/// §4.3). Removal is skipped when it would break cover validity. Costs
/// align with `cover->fragments` by index; pass an empty vector to order by
/// descending fragment size instead.
void RemoveRedundantFragments(const ConjunctiveQuery& cq, Cover* cover,
                              std::vector<double> fragment_costs);

/// Theorem 3.1: the cover-based JUCQ reformulation — one component per
/// fragment, each the CQ-to-UCQ reformulation of its cover query. Fresh
/// variables extend `vars`. Fails (kQueryTooComplex) if any fragment's
/// reformulation exceeds `max_disjuncts_per_fragment`.
Result<JoinOfUnions> CoverBasedReformulation(const ConjunctiveQuery& cq,
                                             const Cover& cover,
                                             const Reformulator& reformulator,
                                             VarTable* vars,
                                             size_t max_disjuncts_per_fragment);

/// Cost oracle the cover-search algorithms query; implemented by the
/// answering layer on top of the §4.1 model or the engine's EXPLAIN.
/// Infeasible covers (reformulation or plan over engine limits) cost
/// +infinity.
class CoverCostOracle {
 public:
  virtual ~CoverCostOracle() = default;

  /// Estimated evaluation cost of the cover-based reformulation of `cover`.
  virtual double CoverCost(const Cover& cover) = 0;

  /// Estimated evaluation cost of one fragment's reformulated UCQ (used to
  /// order redundancy elimination).
  virtual double FragmentCost(const std::vector<int>& fragment) = 0;
};

}  // namespace rdfopt

#endif  // RDFOPT_OPTIMIZER_COVER_H_
