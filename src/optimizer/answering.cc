#include "optimizer/answering.h"

#include <algorithm>
#include <limits>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "engine/plan_verifier.h"
#include "engine/planner.h"
#include "optimizer/gcov.h"
#include "reformulation/minimize.h"
#include "reformulation/subsumption.h"

namespace rdfopt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Registry epilogue for one Answer() call (success or failure).
void RecordAnswerMetrics(const AnswerOutcome* outcome, const Status& status) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static MetricCounter* queries = registry.GetCounter("optimizer.queries");
  static MetricCounter* errors = registry.GetCounter("optimizer.errors");
  static MetricCounter* covers =
      registry.GetCounter("optimizer.covers_examined");
  static MetricCounter* timeouts =
      registry.GetCounter("optimizer.search_timeouts");
  static MetricHistogram* optimize_ms =
      registry.GetHistogram("optimizer.optimize_ms");
  static MetricHistogram* reformulate_ms =
      registry.GetHistogram("optimizer.reformulate_ms");
  static MetricHistogram* total_ms =
      registry.GetHistogram("optimizer.total_ms");
  queries->Increment();
  if (outcome == nullptr) {
    (void)status;
    errors->Increment();
    return;
  }
  covers->Add(outcome->covers_examined);
  if (outcome->optimizer_timed_out) timeouts->Increment();
  optimize_ms->Observe(outcome->optimize_ms);
  reformulate_ms->Observe(outcome->reformulate_ms);
  total_ms->Observe(outcome->total_ms());
}
}  // namespace

std::string_view StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kUcq:
      return "UCQ";
    case Strategy::kScq:
      return "SCQ";
    case Strategy::kEcov:
      return "ECov";
    case Strategy::kGcov:
      return "GCov";
    case Strategy::kSaturation:
      return "Saturation";
  }
  return "Unknown";
}

CachingCoverCostOracle::CachingCoverCostOracle(
    const ConjunctiveQuery& cq, const VarTable& vars,
    const Reformulator* reformulator, const CardinalityEstimator* estimator,
    const Evaluator* evaluator, const AnswerOptions& options)
    : cq_(cq),
      scratch_vars_(vars),
      reformulator_(reformulator),
      estimator_(estimator),
      evaluator_(evaluator),
      options_(options),
      // Fragments whose reformulation exceeds the engine's plan limit can
      // never be evaluated, so they are never materialized either (their
      // cost is +inf and assembling them fails with kQueryTooComplex, which
      // is also what the engine itself would report).
      effective_disjunct_cap_(
          std::min(options.max_reformulation_disjuncts,
                   evaluator->profile().max_union_terms)) {}

const CachingCoverCostOracle::FragmentEntry&
CachingCoverCostOracle::GetFragment(const std::vector<int>& fragment) {
  FragmentKey key = 0;
  for (int atom : fragment) key |= uint64_t{1} << atom;
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  FragmentEntry entry;
  // Cache with the widest head (every original variable of the fragment);
  // cover-specific heads are subsets applied at assembly time.
  ConjunctiveQuery fragment_cq;
  for (int atom : fragment) {
    fragment_cq.atoms.push_back(cq_.atoms[static_cast<size_t>(atom)]);
  }
  fragment_cq.head = fragment_cq.AllVariables();

  size_t estimate =
      reformulator_->EstimateDisjuncts(fragment_cq, scratch_vars_);
  if (estimate <= effective_disjunct_cap_) {
    Result<UnionQuery> ucq = reformulator_->ReformulateCQ(
        fragment_cq, &scratch_vars_, effective_disjunct_cap_);
    if (ucq.ok()) {
      entry.ucq = ucq.TakeValue();
      // With hierarchy ranges on, fragments are priced (and declared
      // feasible) on their post-collapse term counts — the terms the engine
      // will actually run (cost_model.h, the hierarchy-aware overload).
      const HierarchyEncoding* encoding =
          evaluator_->profile().hierarchy_ranges
              ? estimator_->store()->hierarchy()
              : nullptr;
      entry.inputs =
          options_.literal_scan_sums
              ? ComputeUcqCostInputsLiteral(entry.ucq, *estimator_)
              : ComputeUcqCostInputs(entry.ucq, *estimator_, encoding);
      entry.feasible = true;
      if (options_.use_engine_cost_model) {
        // Plan the fragment's component once; its cost and result estimate
        // do not depend on the head a cover projects it to, so every
        // candidate cover containing this fragment prices it from the cache
        // instead of re-planning.
        Planner planner(estimator_, &evaluator_->profile());
        PhysicalPlan plan = planner.PlanUCQ(entry.ucq);
        entry.engine_cost = plan.est_cost();
        entry.engine_est_rows = plan.root->est_rows;
      }
    }
  }
  return cache_.emplace(key, std::move(entry)).first->second;
}

double CachingCoverCostOracle::FragmentCost(const std::vector<int>& fragment) {
  const FragmentEntry& entry = GetFragment(fragment);
  if (!entry.feasible ||
      entry.inputs.num_disjuncts > evaluator_->profile().max_union_terms) {
    return kInf;
  }
  PaperCostModel model(evaluator_->profile().cost);
  return model.UcqCost(entry.inputs);
}

double CachingCoverCostOracle::CoverCost(const Cover& cover) {
  TraceSpan span("cover.candidate");
  if (span.active()) span.Attr("cover", cover.Key());
  double cost = CoverCostImpl(cover);
  span.Attr("est_cost", cost);
  span.Attr("fragments", cover.fragments.size());
  return cost;
}

double CachingCoverCostOracle::CoverCostImpl(const Cover& cover) {
  std::vector<UcqCostInputs> components;
  std::vector<std::pair<double, std::vector<VarId>>> join_inputs;
  std::vector<std::pair<double, std::vector<VarId>>> engine_inputs;
  double engine_component_cost = 0.0;
  components.reserve(cover.fragments.size());
  for (size_t i = 0; i < cover.fragments.size(); ++i) {
    const FragmentEntry& entry = GetFragment(cover.fragments[i]);
    if (!entry.feasible ||
        entry.inputs.num_disjuncts > evaluator_->profile().max_union_terms) {
      return kInf;
    }
    components.push_back(entry.inputs);
    ConjunctiveQuery cover_query = BuildCoverQuery(cq_, cover, i);
    if (options_.use_engine_cost_model) {
      engine_component_cost += entry.engine_cost;
      engine_inputs.emplace_back(entry.engine_est_rows, cover_query.head);
    }
    join_inputs.emplace_back(entry.inputs.est_result,
                             std::move(cover_query.head));
  }

  if (options_.use_engine_cost_model) {
    // Fig 9 alternative: the est_cost annotation of the plan the engine
    // would run, assembled from the cached per-fragment component costs
    // plus the planner's component-combination pricing — no reformulation
    // or re-planning per candidate.
    const CostConstants& k = evaluator_->profile().cost;
    Planner::ComponentCombination comb =
        evaluator_->planner().CombineComponents(engine_inputs);
    return k.c_db + engine_component_cost + comb.combine_cost +
           k.c_l * comb.est_rows;
  }

  PaperCostModel model(evaluator_->profile().cost);
  double est_final = estimator_->EstimateJoin(join_inputs);
  return model.JucqCost(components, est_final);
}

Result<JoinOfUnions> CachingCoverCostOracle::AssembleJucq(const Cover& cover,
                                                          VarTable* vars,
                                                          size_t* pruned) {
  JoinOfUnions jucq;
  jucq.head = cq_.head;
  for (size_t i = 0; i < cover.fragments.size(); ++i) {
    const FragmentEntry& entry = GetFragment(cover.fragments[i]);
    if (!entry.feasible) {
      return Status::QueryTooComplex(
          "fragment reformulation exceeds the materialization cap of " +
          std::to_string(effective_disjunct_cap_) + " disjuncts");
    }
    ConjunctiveQuery cover_query = BuildCoverQuery(cq_, cover, i);
    UnionQuery component;
    component.head = cover_query.head;
    component.disjuncts.reserve(entry.ucq.disjuncts.size());
    for (const ConjunctiveQuery& cached : entry.ucq.disjuncts) {
      if (options_.prune_empty_disjuncts && DisjunctIsEmpty(cached)) {
        if (pruned != nullptr) ++*pruned;
        continue;
      }
      ConjunctiveQuery disjunct = cached;
      disjunct.head = cover_query.head;
      // head_bindings cached for the widest head remain valid: projection
      // only consults bindings of variables in the (narrower) head.
      component.disjuncts.push_back(std::move(disjunct));
    }
    if (options_.prune_subsumed_disjuncts &&
        component.disjuncts.size() <= options_.subsumption_pruning_limit) {
      size_t dropped = PruneSubsumedDisjuncts(&component);
      if (pruned != nullptr) *pruned += dropped;
    }
    jucq.components.push_back(std::move(component));
  }
  *vars = scratch_vars_;
  return jucq;
}

bool CachingCoverCostOracle::DisjunctIsEmpty(
    const ConjunctiveQuery& disjunct) const {
  const TripleStore& store = evaluator_->store();
  for (const TriplePattern& atom : disjunct.atoms) {
    ValueId s = atom.s.is_var() ? kAnyValue : atom.s.value();
    ValueId p = atom.p.is_var() ? kAnyValue : atom.p.value();
    ValueId o = atom.o.is_var() ? kAnyValue : atom.o.value();
    if (store.CountMatches(s, p, o) == 0) return true;
  }
  return false;
}

QueryAnswerer::QueryAnswerer(const TripleStore* data,
                             const TripleStore* saturated,
                             const Schema* schema, const Vocabulary* vocab,
                             const Statistics* statistics,
                             const EngineProfile* profile)
    : data_(data),
      saturated_(saturated),
      schema_(schema),
      vocab_(vocab),
      reformulator_(schema, vocab),
      estimator_(data, statistics),
      // The answerer's evaluator plans with the statistics-backed estimator
      // (estimator_ is declared before evaluator_, so this is safe); the
      // saturation evaluator keeps its own statistics-free one — data-store
      // statistics would be wrong for the saturated store.
      evaluator_(data, profile, &estimator_),
      saturated_evaluator_(saturated, profile) {}

Result<AnswerOutcome> QueryAnswerer::AnswerBySaturation(
    const Query& query) const {
  if (saturated_ == nullptr) {
    return Status::InvalidArgument(
        "saturation strategy requested but no saturated store was provided");
  }
  AnswerOutcome outcome;
  {
    TraceSpan span("answer.evaluate");
    RDFOPT_ASSIGN_OR_RETURN(
        outcome.answers, saturated_evaluator_.EvaluateCQ(query.cq,
                                                         &outcome.eval));
    span.Attr("rows", outcome.answers.num_rows());
  }
  // Derived, not independently timed (see AnswerOutcome::evaluate_ms).
  outcome.evaluate_ms = outcome.eval.elapsed_ms;
  outcome.union_terms = 1;
  outcome.num_components = 1;
  return outcome;
}

Result<AnswerOutcome> QueryAnswerer::AnswerByCover(
    const Query& query, const Cover& cover, CachingCoverCostOracle* oracle,
    AnswerOutcome outcome) const {
  RDFOPT_RETURN_NOT_OK(ValidateCover(query.cq, cover));
  outcome.chosen_cover = cover;

  Stopwatch reformulate_timer;
  VarTable vars;
  JoinOfUnions jucq;
  {
    TraceSpan span("answer.reformulate");
    RDFOPT_ASSIGN_OR_RETURN(
        jucq, oracle->AssembleJucq(cover, &vars,
                                   &outcome.pruned_union_terms));
    outcome.reformulate_ms = reformulate_timer.ElapsedMillis();
    outcome.num_components = jucq.components.size();
    for (const UnionQuery& component : jucq.components) {
      outcome.union_terms += component.size();
    }
    span.Attr("components", outcome.num_components);
    span.Attr("union_terms", outcome.union_terms);
    if (outcome.pruned_union_terms > 0) {
      span.Attr("pruned_union_terms", outcome.pruned_union_terms);
    }
  }

  Stopwatch plan_timer;
  PhysicalPlan plan;
  {
    TraceSpan span("answer.plan");
    plan = evaluator_.planner().PlanJUCQ(jucq);
    outcome.plan_ms = plan_timer.ElapsedMillis();
    span.Attr("nodes", plan.num_nodes);
    span.Attr("est_cost", plan.est_cost());
  }

  // Release-mode plan verification gate (debug builds verify inside the
  // planner itself): refuse to execute a structurally invalid plan.
  if (oracle->options().verify_plans) {
    RDFOPT_RETURN_NOT_OK(VerifyPlanOrError(plan, &evaluator_.store()));
  }

  {
    TraceSpan span("answer.evaluate");
    if (span.active()) {
      // Estimated vs. actual: the chosen cover's predicted cost (cached —
      // the search already computed every fragment) next to the measured
      // evaluation below. This is the Fig 9 misprediction view per query.
      span.Attr("est_cost", oracle->CoverCost(cover));
      span.Attr("cover", cover.Key());
    }
    RDFOPT_ASSIGN_OR_RETURN(outcome.answers,
                            evaluator_.ExecutePlan(&plan, &outcome.eval));
    span.Attr("actual_ms", outcome.eval.elapsed_ms);
    span.Attr("rows", outcome.answers.num_rows());
  }
  // Derived, not independently timed (see AnswerOutcome::evaluate_ms).
  outcome.evaluate_ms = outcome.eval.elapsed_ms;
  if (oracle->options().keep_reformulation) {
    outcome.jucq = std::move(jucq);
    outcome.jucq_vars = std::move(vars);
  }
  if (oracle->options().keep_reformulation || oracle->options().keep_plan) {
    outcome.plan = std::move(plan);
  }
  return outcome;
}

Result<AnswerOutcome> QueryAnswerer::Answer(
    const Query& query, const AnswerOptions& options) const {
  TraceSpan span("answer.query");
  if (span.active()) {
    span.Attr("strategy", StrategyName(options.strategy));
    span.Attr("atoms", query.cq.atoms.size());
  }
  Result<AnswerOutcome> result = AnswerImpl(query, options);
  if (result.ok()) {
    const AnswerOutcome& outcome = result.ValueOrDie();
    RecordAnswerMetrics(&outcome, Status::OK());
    span.Attr("answers", outcome.answers.num_rows());
    span.Attr("total_ms", outcome.total_ms());
  } else {
    RecordAnswerMetrics(nullptr, result.status());
    if (span.active()) {
      span.Attr("error", StatusCodeName(result.status().code()));
    }
  }
  return result;
}

Result<AnswerOutcome> QueryAnswerer::AnswerImpl(
    const Query& query, const AnswerOptions& options) const {
  if (query.cq.atoms.empty()) {
    return Status::InvalidArgument("query has no atoms");
  }
  if (options.strategy == Strategy::kSaturation) {
    return AnswerBySaturation(query);
  }

  // Optional constraint-aware minimization (paper footnote 3).
  Query minimized;
  const Query* effective = &query;
  size_t minimized_atoms = 0;
  if (options.minimize_query) {
    TraceSpan minimize_span("answer.minimize");
    MinimizationResult m = MinimizeQuery(query.cq, *schema_, *vocab_);
    minimize_span.Attr("removed_atoms", m.removed_atoms.size());
    if (!m.removed_atoms.empty()) {
      minimized.vars = query.vars;
      minimized.cq = std::move(m.query);
      minimized_atoms = m.removed_atoms.size();
      effective = &minimized;
    }
  }

  if (!effective->cq.IsConnected()) {
    return Status::InvalidArgument(
        "cover-based strategies require a variable-connected BGP");
  }

  CachingCoverCostOracle oracle(effective->cq, effective->vars,
                                &reformulator_, &estimator_, &evaluator_,
                                options);
  const size_t n = effective->cq.atoms.size();
  AnswerOutcome base;
  base.minimized_atoms = minimized_atoms;

  switch (options.strategy) {
    case Strategy::kUcq:
      return AnswerByCover(*effective, UcqCover(n), &oracle, std::move(base));
    case Strategy::kScq:
      return AnswerByCover(*effective, ScqCover(n), &oracle, std::move(base));
    case Strategy::kEcov:
    case Strategy::kGcov: {
      CoverSearchResult search;
      {
        TraceSpan span("answer.cover_search");
        search = options.strategy == Strategy::kEcov
                     ? ExhaustiveCoverSearch(effective->cq, &oracle,
                                             options.optimizer_time_budget_s)
                     : GreedyCoverSearch(effective->cq, &oracle,
                                         options.optimizer_time_budget_s);
        span.Attr("covers_examined", search.covers_examined);
        span.Attr("best_cost", search.best_cost);
        if (search.timed_out) span.Attr("timed_out", true);
        if (span.active() && !search.best_cover.fragments.empty()) {
          span.Attr("best_cover", search.best_cover.Key());
        }
      }
      if (search.best_cover.fragments.empty()) {
        return Status::Timeout("cover search produced no cover within " +
                               std::to_string(
                                   options.optimizer_time_budget_s) +
                               "s");
      }
      if (search.best_cost == kInf) {
        return Status::QueryTooComplex(
            "every examined cover is infeasible on this engine profile");
      }
      base.optimize_ms = search.elapsed_ms;
      base.covers_examined = search.covers_examined;
      base.optimizer_timed_out = search.timed_out;
      return AnswerByCover(*effective, search.best_cover, &oracle,
                           std::move(base));
    }
    case Strategy::kSaturation:
      break;  // Handled above.
  }
  return Status::Internal("unreachable strategy dispatch");
}

}  // namespace rdfopt
