#include "optimizer/gcov.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>

#include "common/stopwatch.h"

namespace rdfopt {

namespace {

// A developed move: the cover resulting from applying it, with its cost.
struct PendingMove {
  Cover cover;
  double cost;
};

// Applies the move "add atom t to fragment f of `cover`": grows the
// fragment, removes redundant fragments (most expensive first, per the
// paper) and canonicalizes. Returns false if the result is not a valid
// cover (e.g. the grown fragment swallowed the whole cover illegally).
bool ApplyMove(const ConjunctiveQuery& cq, const Cover& cover,
               size_t fragment_index, int atom, CoverCostOracle* oracle,
               Cover* out) {
  *out = cover;
  std::vector<int>& fragment = out->fragments[fragment_index];
  fragment.push_back(atom);
  std::sort(fragment.begin(), fragment.end());

  std::vector<double> costs;
  costs.reserve(out->fragments.size());
  for (const std::vector<int>& f : out->fragments) {
    costs.push_back(oracle->FragmentCost(f));
  }
  RemoveRedundantFragments(cq, out, std::move(costs));
  return ValidateCover(cq, *out).ok();
}

}  // namespace

CoverSearchResult GreedyCoverSearch(const ConjunctiveQuery& cq,
                                    CoverCostOracle* oracle,
                                    double time_budget_seconds) {
  Stopwatch timer;
  CoverSearchResult result;
  const size_t n = cq.atoms.size();
  std::vector<std::vector<bool>> adjacency = AtomAdjacency(cq);

  Cover best = ScqCover(n);
  double best_cost = oracle->CoverCost(best);
  result.covers_examined = 1;

  // Moves sorted by increasing estimated cost (multimap = the paper's
  // sorted `moves` list; head() = begin()).
  std::multimap<double, Cover> moves;
  std::unordered_set<std::string> analysed;
  analysed.insert(best.Key());

  // Develops every move applicable to `cover`; `threshold_strict` selects
  // between the <= of line 6 (initial cover) and the < of line 15.
  auto develop = [&](const Cover& cover, bool threshold_strict) {
    for (size_t fi = 0; fi < cover.fragments.size(); ++fi) {
      const std::vector<int>& fragment = cover.fragments[fi];
      for (int t = 0; t < static_cast<int>(n); ++t) {
        if (std::binary_search(fragment.begin(), fragment.end(), t)) continue;
        bool connected = false;
        for (int f_atom : fragment) {
          connected |= adjacency[static_cast<size_t>(f_atom)]
                                [static_cast<size_t>(t)];
        }
        if (!connected) continue;
        Cover next;
        if (!ApplyMove(cq, cover, fi, t, oracle, &next)) continue;
        if (!analysed.insert(next.Key()).second) continue;
        double cost = oracle->CoverCost(next);
        ++result.covers_examined;
        bool promising =
            threshold_strict ? cost < best_cost : cost <= best_cost;
        if (promising) moves.emplace(cost, std::move(next));
      }
    }
  };

  develop(best, /*threshold_strict=*/false);

  while (!moves.empty()) {
    if (timer.ElapsedSeconds() > time_budget_seconds) {
      result.timed_out = true;
      break;
    }
    auto head = moves.begin();
    double cost = head->first;
    Cover cover = std::move(head->second);
    moves.erase(head);
    if (cost <= best_cost) {
      best_cost = cost;
      best = cover;
    }
    develop(cover, /*threshold_strict=*/true);
  }

  result.best_cover = std::move(best);
  result.best_cost = best_cost;
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace rdfopt
