#ifndef RDFOPT_OPTIMIZER_ECOV_H_
#define RDFOPT_OPTIMIZER_ECOV_H_

#include <vector>

#include "optimizer/cover.h"

namespace rdfopt {

/// Outcome of a cover-space search (ECov or GCov).
struct CoverSearchResult {
  Cover best_cover;
  double best_cost = 0.0;
  /// Number of covers whose cost the search estimated (the paper's
  /// "#covers explored", Figs 7-8).
  size_t covers_examined = 0;
  double elapsed_ms = 0.0;
  /// True when the time budget expired before the space was exhausted
  /// (paper: ECov on the 10-atom DBLP Q10).
  bool timed_out = false;
};

/// Enumerates the minimal covers of `cq` (every fragment owns at least one
/// atom no other fragment has — the space whose size the paper bounds by the
/// minimal-set-cover counts 1, 49, 462, 6424 for n = 1, 4, 5, 6), subject to
/// Def. 3.3 and fragment connectivity. Stops early when the time budget or
/// `max_covers` is hit, setting `*timed_out`.
std::vector<Cover> EnumerateCovers(const ConjunctiveQuery& cq,
                                   double time_budget_seconds,
                                   size_t max_covers, bool* timed_out);

/// ECov (paper §4.2): exhaustively estimates the cost of every enumerated
/// cover and returns a cheapest one — the "golden standard" GCov is compared
/// against. `best_cost` is +infinity if every cover is infeasible.
CoverSearchResult ExhaustiveCoverSearch(const ConjunctiveQuery& cq,
                                        CoverCostOracle* oracle,
                                        double time_budget_seconds);

}  // namespace rdfopt

#endif  // RDFOPT_OPTIMIZER_ECOV_H_
