#ifndef RDFOPT_OPTIMIZER_GCOV_H_
#define RDFOPT_OPTIMIZER_GCOV_H_

#include "optimizer/cover.h"
#include "optimizer/ecov.h"

namespace rdfopt {

/// GCov (paper Algorithm 1): the greedy, anytime query-cover search.
///
/// Starts from the one-atom-per-fragment cover C0 (the SCQ point). A *move*
/// adds to one fragment an extra atom connected to it by a join variable,
/// then drops fragments made redundant by the addition. Moves whose
/// resulting cover does not cost more than the best cover so far are kept in
/// a list sorted by increasing estimated cost; the search repeatedly applies
/// the most promising move, updates the best cover, and develops the new
/// cover's moves — a breadth-first greedy exploration of a small part of the
/// cover space.
///
/// Stops when no promising move remains or the time budget expires
/// (`timed_out`); either way the best cover found so far is returned
/// (anytime behaviour, §4.3).
CoverSearchResult GreedyCoverSearch(const ConjunctiveQuery& cq,
                                    CoverCostOracle* oracle,
                                    double time_budget_seconds);

}  // namespace rdfopt

#endif  // RDFOPT_OPTIMIZER_GCOV_H_
