#include "optimizer/cover.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace rdfopt {

void Cover::Canonicalize() {
  for (std::vector<int>& fragment : fragments) {
    std::sort(fragment.begin(), fragment.end());
  }
  std::sort(fragments.begin(), fragments.end());
}

std::string Cover::Key() const {
  std::string key;
  for (const std::vector<int>& fragment : fragments) {
    for (int atom : fragment) {
      key += std::to_string(atom);
      key += ',';
    }
    key += '|';
  }
  return key;
}

Cover UcqCover(size_t num_atoms) {
  Cover cover;
  cover.fragments.emplace_back(num_atoms);
  std::iota(cover.fragments.back().begin(), cover.fragments.back().end(), 0);
  return cover;
}

Cover ScqCover(size_t num_atoms) {
  Cover cover;
  for (size_t i = 0; i < num_atoms; ++i) {
    cover.fragments.push_back({static_cast<int>(i)});
  }
  return cover;
}

std::vector<std::vector<bool>> AtomAdjacency(const ConjunctiveQuery& cq) {
  const size_t n = cq.atoms.size();
  std::vector<std::vector<bool>> adjacency(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (cq.atoms[i].SharesVariableWith(cq.atoms[j])) {
        adjacency[i][j] = adjacency[j][i] = true;
      }
    }
  }
  return adjacency;
}

bool FragmentConnected(const std::vector<int>& fragment,
                       const std::vector<std::vector<bool>>& adjacency) {
  if (fragment.size() <= 1) return !fragment.empty();
  std::vector<bool> reached(fragment.size(), false);
  std::vector<size_t> stack = {0};
  reached[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    size_t at = stack.back();
    stack.pop_back();
    for (size_t j = 0; j < fragment.size(); ++j) {
      if (!reached[j] &&
          adjacency[static_cast<size_t>(fragment[at])]
                   [static_cast<size_t>(fragment[j])]) {
        reached[j] = true;
        ++count;
        stack.push_back(j);
      }
    }
  }
  return count == fragment.size();
}

namespace {

// Do two fragments share a query variable?
bool FragmentsJoin(const ConjunctiveQuery& cq, const std::vector<int>& a,
                   const std::vector<int>& b) {
  for (int i : a) {
    for (int j : b) {
      if (cq.atoms[static_cast<size_t>(i)].SharesVariableWith(
              cq.atoms[static_cast<size_t>(j)])) {
        return true;
      }
    }
  }
  return false;
}

bool IsSubset(const std::vector<int>& a, const std::vector<int>& b) {
  // Both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

Status ValidateCover(const ConjunctiveQuery& cq, const Cover& cover) {
  const size_t n = cq.atoms.size();
  if (cover.fragments.empty()) {
    return Status::InvalidArgument("cover has no fragments");
  }
  std::vector<bool> covered(n, false);
  for (const std::vector<int>& fragment : cover.fragments) {
    if (fragment.empty()) {
      return Status::InvalidArgument("cover contains an empty fragment");
    }
    if (!std::is_sorted(fragment.begin(), fragment.end()) ||
        std::adjacent_find(fragment.begin(), fragment.end()) !=
            fragment.end()) {
      return Status::InvalidArgument("fragment not sorted/unique");
    }
    for (int atom : fragment) {
      if (atom < 0 || static_cast<size_t>(atom) >= n) {
        return Status::InvalidArgument("fragment references atom " +
                                       std::to_string(atom) +
                                       " outside the query");
      }
      covered[static_cast<size_t>(atom)] = true;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!covered[i]) {
      return Status::InvalidArgument("atom " + std::to_string(i) +
                                     " not covered");
    }
  }
  for (size_t i = 0; i < cover.fragments.size(); ++i) {
    for (size_t j = 0; j < cover.fragments.size(); ++j) {
      if (i != j && IsSubset(cover.fragments[i], cover.fragments[j])) {
        return Status::InvalidArgument("fragment " + std::to_string(i) +
                                       " included in fragment " +
                                       std::to_string(j));
      }
    }
  }
  std::vector<std::vector<bool>> adjacency = AtomAdjacency(cq);
  for (size_t i = 0; i < cover.fragments.size(); ++i) {
    if (!FragmentConnected(cover.fragments[i], adjacency)) {
      return Status::InvalidArgument("fragment " + std::to_string(i) +
                                     " is not variable-connected");
    }
    if (cover.fragments.size() > 1) {
      bool joins = false;
      for (size_t j = 0; j < cover.fragments.size() && !joins; ++j) {
        if (i != j) {
          joins = FragmentsJoin(cq, cover.fragments[i], cover.fragments[j]);
        }
      }
      if (!joins) {
        return Status::InvalidArgument(
            "fragment " + std::to_string(i) +
            " does not join with any other fragment");
      }
    }
  }
  return Status::OK();
}

ConjunctiveQuery BuildCoverQuery(const ConjunctiveQuery& cq,
                                 const Cover& cover, size_t fragment_index) {
  const std::vector<int>& fragment = cover.fragments[fragment_index];
  ConjunctiveQuery out;
  out.atoms.reserve(fragment.size());
  for (int atom : fragment) {
    out.atoms.push_back(cq.atoms[static_cast<size_t>(atom)]);
  }

  std::vector<VarId> fragment_vars = out.AllVariables();
  auto in_fragment = [&](VarId v) {
    return std::binary_search(fragment_vars.begin(), fragment_vars.end(), v);
  };

  // Distinguished variables of q occurring in the fragment, in head order.
  for (VarId v : cq.head) {
    if (in_fragment(v) &&
        std::find(out.head.begin(), out.head.end(), v) == out.head.end()) {
      out.head.push_back(v);
    }
  }
  // Variables shared with another fragment (the join variables).
  std::set<VarId> other_vars;
  for (size_t j = 0; j < cover.fragments.size(); ++j) {
    if (j == fragment_index) continue;
    for (int atom : cover.fragments[j]) {
      std::vector<VarId> vars;
      cq.atoms[static_cast<size_t>(atom)].AppendVariables(&vars);
      other_vars.insert(vars.begin(), vars.end());
    }
  }
  for (VarId v : fragment_vars) {
    if (other_vars.count(v) > 0 &&
        std::find(out.head.begin(), out.head.end(), v) == out.head.end()) {
      out.head.push_back(v);
    }
  }
  return out;
}

void RemoveRedundantFragments(const ConjunctiveQuery& cq, Cover* cover,
                              std::vector<double> fragment_costs) {
  if (cover->fragments.size() <= 1) return;
  // Examination order: by decreasing cost, or by decreasing size if no costs.
  std::vector<size_t> order(cover->fragments.size());
  std::iota(order.begin(), order.end(), 0);
  if (fragment_costs.size() == cover->fragments.size()) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return fragment_costs[a] > fragment_costs[b];
    });
  } else {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cover->fragments[a].size() > cover->fragments[b].size();
    });
  }

  std::vector<bool> removed(cover->fragments.size(), false);
  for (size_t idx : order) {
    // Union of the atoms of all other (surviving) fragments.
    std::set<int> others;
    for (size_t j = 0; j < cover->fragments.size(); ++j) {
      if (j == idx || removed[j]) continue;
      others.insert(cover->fragments[j].begin(), cover->fragments[j].end());
    }
    bool redundant = true;
    for (int atom : cover->fragments[idx]) {
      redundant &= others.count(atom) > 0;
    }
    if (!redundant) continue;
    // Tentatively remove; keep the removal only if the cover stays valid.
    Cover candidate;
    for (size_t j = 0; j < cover->fragments.size(); ++j) {
      if (j != idx && !removed[j]) candidate.fragments.push_back(
          cover->fragments[j]);
    }
    candidate.Canonicalize();
    if (ValidateCover(cq, candidate).ok()) removed[idx] = true;
  }

  Cover out;
  for (size_t j = 0; j < cover->fragments.size(); ++j) {
    if (!removed[j]) out.fragments.push_back(std::move(cover->fragments[j]));
  }
  out.Canonicalize();
  *cover = std::move(out);
}

Result<JoinOfUnions> CoverBasedReformulation(
    const ConjunctiveQuery& cq, const Cover& cover,
    const Reformulator& reformulator, VarTable* vars,
    size_t max_disjuncts_per_fragment) {
  JoinOfUnions jucq;
  jucq.head = cq.head;
  for (size_t i = 0; i < cover.fragments.size(); ++i) {
    ConjunctiveQuery cover_query = BuildCoverQuery(cq, cover, i);
    RDFOPT_ASSIGN_OR_RETURN(
        UnionQuery component,
        reformulator.ReformulateCQ(cover_query, vars,
                                   max_disjuncts_per_fragment));
    jucq.components.push_back(std::move(component));
  }
  return jucq;
}

}  // namespace rdfopt
