#ifndef RDFOPT_OPTIMIZER_ANSWERING_H_
#define RDFOPT_OPTIMIZER_ANSWERING_H_

#include <optional>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "cost/cost_model.h"
#include "engine/evaluator.h"
#include "optimizer/cover.h"
#include "optimizer/ecov.h"
#include "reasoner/saturation.h"
#include "sparql/query.h"

namespace rdfopt {

/// The query answering strategies compared throughout the paper's
/// evaluation (§5): the two fixed reformulations, the two cost-based cover
/// searches, and the saturation baseline.
enum class Strategy {
  kUcq,         ///< Single-fragment cover: the classic UCQ reformulation.
  kScq,         ///< Singleton cover: the SCQ reformulation of [13].
  kEcov,        ///< JUCQ chosen by exhaustive cover search.
  kGcov,        ///< JUCQ chosen by the greedy Algorithm 1.
  kSaturation,  ///< Direct evaluation against the saturated store.
};

std::string_view StrategyName(Strategy strategy);

struct AnswerOptions {
  Strategy strategy = Strategy::kGcov;
  /// Budget for ECov/GCov search (the paper's anytime stop condition).
  double optimizer_time_budget_s = 30.0;
  /// Hard cap on disjuncts materialized per fragment; fragments estimated
  /// above min(cap, engine plan limit) are treated as infeasible without
  /// being materialized.
  size_t max_reformulation_disjuncts = 2'000'000;
  /// Fig 9 alternative: rank covers with the engine's internal EXPLAIN
  /// estimate instead of the §4.1 model.
  bool use_engine_cost_model = false;
  /// Hybrid optimization in the spirit of [11] (paper §1): before shipping a
  /// JUCQ to the engine, drop disjuncts containing an atom whose constant
  /// positions match nothing in the current store — they contribute no
  /// answers on this database. Reduces plan size at the price of a
  /// data-dependent reformulation (must be redone after updates).
  bool prune_empty_disjuncts = false;
  /// Ablation: cost fragments with the literal eq. (2) per-triple
  /// cardinality sums instead of the plan-aware work measure (see
  /// cost_model.h). Exists to quantify the design choice.
  bool literal_scan_sums = false;
  /// Ablation: apply MinimizeQuery before reformulating (removes atoms
  /// redundant w.r.t. the constraints, paper footnote 3).
  bool minimize_query = false;
  /// Keep the evaluated JUCQ in the outcome (for EXPLAIN/SQL export; it can
  /// be large, so off by default).
  bool keep_reformulation = false;
  /// Keep only the executed physical plan in the outcome, without retaining
  /// the (much larger) JUCQ and its variable table. The query service uses
  /// this to harvest plans for its cache. Implied by keep_reformulation.
  bool keep_plan = false;
  /// Drop disjuncts subsumed by other disjuncts of the same component
  /// (classic CQ-containment pruning; data-independent, unlike
  /// prune_empty_disjuncts). Quadratic, so applied only to components of at
  /// most `subsumption_pruning_limit` disjuncts.
  bool prune_subsumed_disjuncts = false;
  size_t subsumption_pruning_limit = 4096;
  /// Run the static plan verifier (engine/plan_verifier.h) on every built
  /// plan before executing it, in all build types; verification failures
  /// surface as kInternal instead of executing a corrupt plan. Debug builds
  /// always verify regardless of this flag. Costs one structural walk per
  /// plan (microseconds), so it is safe to leave on in production when plan
  /// integrity matters more than the last percent of planning latency.
  bool verify_plans = false;
};

/// Everything measured about answering one query; the raw material of every
/// experiment table/figure.
struct AnswerOutcome {
  Relation answers{std::vector<VarId>{}};
  /// Evaluator-measured counters and wall-clock. `eval.elapsed_ms` is the
  /// *authoritative* evaluation time, measured inside the engine around the
  /// whole JUCQ evaluation.
  EvalMetrics eval;
  /// Cover selected (for kUcq/kScq: the corresponding fixed cover).
  Cover chosen_cover;
  double optimize_ms = 0.0;     ///< Cover search (zero for fixed strategies).
  double reformulate_ms = 0.0;  ///< Building the final JUCQ's UCQs.
  double plan_ms = 0.0;         ///< Building the physical plan.
  /// Engine evaluation time. Derived: always equal to `eval.elapsed_ms`
  /// (kept as a top-level field so the phase split optimize/reformulate/
  /// evaluate reads uniformly); do not time it independently.
  double evaluate_ms = 0.0;
  size_t covers_examined = 0;
  bool optimizer_timed_out = false;
  /// Total union terms across the evaluated JUCQ's components.
  size_t union_terms = 0;
  /// Disjuncts dropped by data-aware pruning (prune_empty_disjuncts).
  size_t pruned_union_terms = 0;
  /// Atoms dropped by query minimization (minimize_query).
  size_t minimized_atoms = 0;
  size_t num_components = 0;
  /// The evaluated JUCQ and the variable table covering its fresh
  /// variables; populated only with AnswerOptions::keep_reformulation.
  std::optional<JoinOfUnions> jucq;
  std::optional<VarTable> jucq_vars;
  /// The executed physical plan, with per-node actual row counts — feeds
  /// EXPLAIN / EXPLAIN ANALYZE in the shell and the service's plan cache.
  /// Populated with AnswerOptions::keep_reformulation or keep_plan.
  std::optional<PhysicalPlan> plan;

  double total_ms() const {
    return optimize_ms + reformulate_ms + plan_ms + evaluate_ms;
  }
};

/// Cost oracle over the §4.1 model (or the engine's EXPLAIN), with
/// per-fragment caching of reformulations and aggregates: the paper's
/// optimizer time is dominated by "intensive calls to the reformulation and
/// cardinality estimation algorithms", which the cache bounds to one per
/// distinct fragment.
class CachingCoverCostOracle : public CoverCostOracle {
 public:
  CachingCoverCostOracle(const ConjunctiveQuery& cq, const VarTable& vars,
                         const Reformulator* reformulator,
                         const CardinalityEstimator* estimator,
                         const Evaluator* evaluator,
                         const AnswerOptions& options);

  double CoverCost(const Cover& cover) override;
  double FragmentCost(const std::vector<int>& fragment) override;

  const AnswerOptions& options() const { return options_; }

  /// Reuses the cache to produce the executable JUCQ of `cover` (fragment
  /// UCQs with proper cover-query heads). `vars` receives fresh variables.
  /// When the options enable data-aware pruning, empty-on-this-store
  /// disjuncts are dropped and counted into `*pruned`, if non-null.
  Result<JoinOfUnions> AssembleJucq(const Cover& cover, VarTable* vars,
                                    size_t* pruned = nullptr);

 private:
  /// CoverCost minus the per-candidate trace span.
  double CoverCostImpl(const Cover& cover);

  struct FragmentEntry {
    bool feasible = false;
    UnionQuery ucq;  // Head = all original variables of the fragment.
    UcqCostInputs inputs;
    /// Engine-model (Fig 9 alternative) cost and result estimate of the
    /// fragment's component plan. Head-independent, so cacheable per
    /// fragment: candidate covers are priced from these without re-planning
    /// the fragment. Computed only under use_engine_cost_model.
    double engine_cost = 0.0;
    double engine_est_rows = 0.0;
  };
  using FragmentKey = uint64_t;  // Atom-index bitmask.

  const FragmentEntry& GetFragment(const std::vector<int>& fragment);
  /// True iff some atom of the disjunct matches nothing in the store.
  bool DisjunctIsEmpty(const ConjunctiveQuery& disjunct) const;

  const ConjunctiveQuery& cq_;
  VarTable scratch_vars_;
  const Reformulator* reformulator_;
  const CardinalityEstimator* estimator_;
  const Evaluator* evaluator_;
  AnswerOptions options_;
  size_t effective_disjunct_cap_;
  std::unordered_map<FragmentKey, FragmentEntry> cache_;
};

/// The query answering front end of Figure 1: reformulation algorithm +
/// cover optimizer + evaluation engine behind one call.
///
/// Observability: when a TraceSession is installed on the calling thread
/// (common/trace.h), Answer records a span tree — answer.query with
/// minimize / cover_search (one cover.candidate child per examined cover,
/// carrying its estimated cost) / reformulate / evaluate children, the
/// latter nesting the engine's per-component and per-operator spans — and
/// every call reports into MetricsRegistry::Global() (optimizer.* counters,
/// optimizer.*_ms histograms).
class QueryAnswerer {
 public:
  /// `saturated` may be null if kSaturation is never requested. All pointees
  /// must outlive the answerer. `schema` must be finalized.
  QueryAnswerer(const TripleStore* data, const TripleStore* saturated,
                const Schema* schema, const Vocabulary* vocab,
                const Statistics* statistics, const EngineProfile* profile);

  Result<AnswerOutcome> Answer(const Query& query,
                               const AnswerOptions& options) const;

  /// Closes the telemetry feedback loop on this answerer: the estimator
  /// consults `feedback` during planning and the evaluator records executed
  /// disjuncts' actuals into it (cost/feedback.h). Opt-in — the default
  /// (disabled) keeps answering history-free, which the paper benches and
  /// golden plans rely on. Null disables. The pointee must outlive the
  /// answerer.
  void EnableFeedback(EstimateFeedbackStore* feedback) {
    estimator_.set_feedback(feedback);
    evaluator_.set_feedback(feedback);
  }

  /// Wires the materialized-view resolver (DESIGN.md §14) into the final
  /// plan build and execution: planned components are announced to (and
  /// substituted from) the catalog, and freshly computed component results
  /// are offered back. Opt-in like EnableFeedback — disabled, answering
  /// never touches views, which the paper benches and golden plans rely on.
  /// The cover-search oracle prices fragments with its own resolver-free
  /// planner, so cover choice is identical with views on or off. Null
  /// disables. The pointee must outlive the answerer.
  void EnableViews(ViewResolver* views) { evaluator_.set_views(views); }

  const Evaluator& evaluator() const { return evaluator_; }
  const Reformulator& reformulator() const { return reformulator_; }
  const CardinalityEstimator& estimator() const { return estimator_; }

 private:
  /// Strategy dispatch; `Answer` wraps it with the query-level trace span
  /// and the registry metrics epilogue.
  Result<AnswerOutcome> AnswerImpl(const Query& query,
                                   const AnswerOptions& options) const;
  Result<AnswerOutcome> AnswerBySaturation(const Query& query) const;
  Result<AnswerOutcome> AnswerByCover(const Query& query, const Cover& cover,
                                      CachingCoverCostOracle* oracle,
                                      AnswerOutcome outcome) const;

  const TripleStore* data_;
  const TripleStore* saturated_;
  const Schema* schema_;
  const Vocabulary* vocab_;
  Reformulator reformulator_;
  CardinalityEstimator estimator_;
  Evaluator evaluator_;
  Evaluator saturated_evaluator_;
};

}  // namespace rdfopt

#endif  // RDFOPT_OPTIMIZER_ANSWERING_H_
