#include "optimizer/ecov.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <unordered_set>

#include "common/stopwatch.h"

namespace rdfopt {

namespace {

using Mask = uint32_t;

int LowestZero(Mask covered, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((covered & (Mask{1} << i)) == 0) return static_cast<int>(i);
  }
  return -1;
}

struct Enumerator {
  size_t n;
  std::vector<Mask> fragments;  // All connected subsets, as bitmasks.
  Stopwatch timer;
  double budget_seconds;
  size_t max_covers;
  bool timed_out = false;
  std::unordered_set<std::string> seen;
  std::vector<Cover> out;
  // Optional streaming consumer: when set, covers are handed over as they
  // are found instead of being collected into `out`.
  std::function<void(Cover)> consumer;
  size_t emitted = 0;

  void Emit(const std::vector<Mask>& chosen) {
    // Minimality: every fragment owns an atom no other fragment covers.
    for (size_t i = 0; i < chosen.size(); ++i) {
      Mask others = 0;
      for (size_t j = 0; j < chosen.size(); ++j) {
        if (j != i) others |= chosen[j];
      }
      if ((chosen[i] & ~others) == 0) return;
    }
    Cover cover;
    for (Mask m : chosen) {
      std::vector<int> fragment;
      for (size_t i = 0; i < n; ++i) {
        if (m & (Mask{1} << i)) fragment.push_back(static_cast<int>(i));
      }
      cover.fragments.push_back(std::move(fragment));
    }
    cover.Canonicalize();
    if (!seen.insert(cover.Key()).second) return;
    ++emitted;
    if (consumer) {
      consumer(std::move(cover));
    } else {
      out.push_back(std::move(cover));
    }
  }

  void Dfs(Mask covered, std::vector<Mask>* chosen) {
    if (timed_out) return;
    if (emitted >= max_covers || timer.ElapsedSeconds() > budget_seconds) {
      timed_out = true;
      return;
    }
    const Mask full = (n == 32) ? ~Mask{0} : ((Mask{1} << n) - 1);
    if (covered == full) {
      Emit(*chosen);
      return;
    }
    int next = LowestZero(covered, n);
    for (Mask f : fragments) {
      if ((f & (Mask{1} << next)) == 0) continue;
      // No mutual inclusion with already-chosen fragments.
      bool ok = true;
      for (Mask c : *chosen) {
        if ((c & f) == c || (c & f) == f) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      chosen->push_back(f);
      Dfs(covered | f, chosen);
      chosen->pop_back();
      if (timed_out) return;
    }
  }
};

}  // namespace

namespace {

// Shared setup: builds the connected-fragment list; returns false when the
// query is out of enumeration range.
bool InitEnumerator(const ConjunctiveQuery& cq, double time_budget_seconds,
                    size_t max_covers, Enumerator* e) {
  const size_t n = cq.atoms.size();
  if (n == 0 || n > 24) return false;
  e->n = n;
  e->budget_seconds = time_budget_seconds;
  e->max_covers = max_covers;
  std::vector<std::vector<bool>> adjacency = AtomAdjacency(cq);
  for (Mask m = 1; m < (Mask{1} << n); ++m) {
    std::vector<int> fragment;
    for (size_t i = 0; i < n; ++i) {
      if (m & (Mask{1} << i)) fragment.push_back(static_cast<int>(i));
    }
    if (FragmentConnected(fragment, adjacency)) e->fragments.push_back(m);
  }
  return true;
}

}  // namespace

std::vector<Cover> EnumerateCovers(const ConjunctiveQuery& cq,
                                   double time_budget_seconds,
                                   size_t max_covers, bool* timed_out) {
  Enumerator e;
  if (!InitEnumerator(cq, time_budget_seconds, max_covers, &e)) {
    if (timed_out != nullptr) *timed_out = cq.atoms.size() > 24;
    return {};
  }
  std::vector<Mask> chosen;
  e.Dfs(0, &chosen);

  // Enforce the fragment-joins condition of Def. 3.3 (rarely violated:
  // only by covers whose fragments touch via constants-only atoms).
  std::vector<Cover> result;
  result.reserve(e.out.size());
  for (Cover& cover : e.out) {
    if (ValidateCover(cq, cover).ok()) result.push_back(std::move(cover));
  }
  if (timed_out != nullptr) *timed_out = e.timed_out;
  return result;
}

CoverSearchResult ExhaustiveCoverSearch(const ConjunctiveQuery& cq,
                                        CoverCostOracle* oracle,
                                        double time_budget_seconds) {
  Stopwatch timer;
  CoverSearchResult result;
  result.best_cost = std::numeric_limits<double>::infinity();

  // Stream covers out of the enumeration so ECov is anytime too: on
  // timeout, the best cover among those already costed is returned (the
  // paper reports ECov timing out on the 10-atom DBLP query).
  Enumerator e;
  if (!InitEnumerator(cq, time_budget_seconds, /*max_covers=*/5'000'000,
                      &e)) {
    result.timed_out = cq.atoms.size() > 24;
    return result;
  }
  e.consumer = [&](Cover cover) {
    if (!ValidateCover(cq, cover).ok()) return;
    double cost = oracle->CoverCost(cover);
    ++result.covers_examined;
    if (cost < result.best_cost) {
      result.best_cost = cost;
      result.best_cover = std::move(cover);
    }
  };
  std::vector<Mask> chosen;
  e.Dfs(0, &chosen);
  result.timed_out = e.timed_out;
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace rdfopt
