#ifndef RDFOPT_REASONER_SATURATION_H_
#define RDFOPT_REASONER_SATURATION_H_

#include <vector>

#include "rdf/graph.h"
#include "rdf/triple.h"
#include "rdf/vocabulary.h"
#include "schema/schema.h"
#include "storage/triple_store.h"

namespace rdfopt {

/// Outcome of a saturation run; sizes feed the saturation-vs-reformulation
/// comparison (paper §5.3 / Fig 10).
struct SaturationResult {
  TripleStore store;           ///< Explicit plus entailed data triples.
  size_t input_triples = 0;    ///< Distinct explicit triples.
  size_t output_triples = 0;   ///< Distinct triples after saturation.

  /// Entailed triples that were not explicit.
  size_t derived_triples() const { return output_triples - input_triples; }
};

/// Computes the saturation (closure) of the data triples w.r.t. the RDFS
/// constraints (paper §2.1): the fixpoint of the immediate-entailment rules
/// of the database fragment.
///
/// Because `Schema::Finalize()` precomputes the reflexive-transitive
/// subproperty/subclass closures and the *entailed* domain/range class sets,
/// one pass over the data suffices: RDFS derivations from a non-type triple
/// are exactly its superproperty copies plus the entailed domain/range type
/// facts, and derivations from a type fact are exactly its superclass
/// copies — no derived triple can trigger a rule not already covered by the
/// closures. (Verified against a naive fixpoint in the test suite.)
///
/// `schema` must be finalized.
SaturationResult Saturate(const TripleStore& store, const Schema& schema,
                          const Vocabulary& vocab);

/// Convenience: builds a store from the graph's data triples and saturates it
/// against the graph's (finalized) schema.
SaturationResult SaturateGraph(const Graph& graph);

/// Incremental maintenance under insertions (paper §1: saturation "must be
/// recomputed upon updates"; [4] studies the maintenance cost this bounds).
/// Because the database fragment's instance-level rules each have a single
/// data-triple premise (once the schema closures are precomputed), the
/// saturation of (old ∪ delta) equals old-saturation ∪ saturation(delta):
/// only the delta is reasoned over, then merged. Schema updates still
/// require full resaturation.
SaturationResult IncrementalSaturate(const TripleStore& saturated,
                                     const std::vector<Triple>& delta,
                                     const Schema& schema,
                                     const Vocabulary& vocab);

/// Reference implementation: naive fixpoint applying the immediate
/// entailment rules (Fig 2 semantics) until no new triple appears. Exists to
/// cross-check `Saturate` in tests; quadratic, do not use on large stores.
std::vector<Triple> NaiveFixpointSaturation(std::vector<Triple> triples,
                                            const std::vector<Triple>& schema,
                                            const Vocabulary& vocab);

}  // namespace rdfopt

#endif  // RDFOPT_REASONER_SATURATION_H_
