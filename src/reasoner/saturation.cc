#include "reasoner/saturation.h"

#include <unordered_set>

namespace rdfopt {

SaturationResult Saturate(const TripleStore& store, const Schema& schema,
                          const Vocabulary& vocab) {
  std::vector<Triple> out;
  out.reserve(store.size() * 2);
  for (const Triple& t : store.All()) {
    if (t.p == vocab.rdf_type) {
      for (ValueId cls : schema.SuperClassesOf(t.o)) {
        out.push_back(Triple{t.s, vocab.rdf_type, cls});
      }
      continue;
    }
    for (ValueId q : schema.SuperPropertiesOf(t.p)) {
      out.push_back(Triple{t.s, q, t.o});
    }
    for (ValueId cls : schema.EntailedDomainClasses(t.p)) {
      out.push_back(Triple{t.s, vocab.rdf_type, cls});
    }
    for (ValueId cls : schema.EntailedRangeClasses(t.p)) {
      out.push_back(Triple{t.o, vocab.rdf_type, cls});
    }
  }
  SaturationResult result;
  result.input_triples = store.size();
  result.store = TripleStore::Build(std::move(out));
  result.output_triples = result.store.size();
  return result;
}

SaturationResult SaturateGraph(const Graph& graph) {
  TripleStore store = TripleStore::Build(graph.data_triples());
  return Saturate(store, graph.schema(), graph.vocab());
}

SaturationResult IncrementalSaturate(const TripleStore& saturated,
                                     const std::vector<Triple>& delta,
                                     const Schema& schema,
                                     const Vocabulary& vocab) {
  SaturationResult delta_result =
      Saturate(TripleStore::Build(delta), schema, vocab);
  SaturationResult result;
  result.input_triples = saturated.size();
  result.store = TripleStore::Merge(saturated, delta_result.store);
  result.output_triples = result.store.size();
  return result;
}

std::vector<Triple> NaiveFixpointSaturation(std::vector<Triple> triples,
                                            const std::vector<Triple>& schema,
                                            const Vocabulary& vocab) {
  std::unordered_set<Triple, TripleHash> known(triples.begin(), triples.end());
  auto add = [&](Triple t, std::vector<Triple>* frontier) {
    if (known.insert(t).second) frontier->push_back(t);
  };

  std::vector<Triple> frontier(known.begin(), known.end());
  while (!frontier.empty()) {
    std::vector<Triple> next;
    for (const Triple& t : frontier) {
      for (const Triple& c : schema) {
        if (c.p == vocab.rdfs_subclassof) {
          // (s type c1), c1 sc c2 => (s type c2)
          if (t.p == vocab.rdf_type && t.o == c.s) {
            add(Triple{t.s, vocab.rdf_type, c.o}, &next);
          }
        } else if (c.p == vocab.rdfs_subpropertyof) {
          // (s p1 o), p1 sp p2 => (s p2 o)
          if (t.p == c.s) add(Triple{t.s, c.o, t.o}, &next);
        } else if (c.p == vocab.rdfs_domain) {
          // (s p o), domain(p)=c1 => (s type c1)
          if (t.p == c.s) add(Triple{t.s, vocab.rdf_type, c.o}, &next);
        } else if (c.p == vocab.rdfs_range) {
          // (s p o), range(p)=c1 => (o type c1)
          if (t.p == c.s) add(Triple{t.o, vocab.rdf_type, c.o}, &next);
        }
      }
    }
    frontier = std::move(next);
  }
  return {known.begin(), known.end()};
}

}  // namespace rdfopt
