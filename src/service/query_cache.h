#ifndef RDFOPT_SERVICE_QUERY_CACHE_H_
#define RDFOPT_SERVICE_QUERY_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/plan.h"
#include "optimizer/cover.h"
#include "storage/epoch.h"

namespace rdfopt {

/// Everything the answering pipeline produced for one canonical query at one
/// epoch, minus the answers themselves: the chosen cover and the physical
/// plan built for it. A cache hit re-executes `plan` (cloned — see
/// PhysicalPlan::Clone) against the pinned snapshot and skips reformulation,
/// cover search and planning entirely.
struct CachedPlanEntry {
  Epoch epoch = 0;
  Cover cover;
  PhysicalPlan plan;  ///< Immutable template; clone before executing.
  size_t union_terms = 0;
  size_t num_components = 0;
  double est_cost = 0.0;
  size_t bytes = 0;  ///< Self-estimated footprint, fixed at insertion.
};

/// Rough heap footprint of a plan tree, for the cache's byte budget. An
/// estimate is all that is needed: the budget exists to bound memory, not to
/// account it exactly.
size_t EstimatePlanBytes(const PhysicalPlan& plan);

/// Thread-safe LRU cache of reformulation/plan results, keyed by
/// (canonical query key, epoch) and bounded by a byte budget.
///
/// The epoch is part of the key, which is the whole invalidation story:
/// after a store mutation bumps the epoch, entries computed under the old
/// epoch can never be looked up again and are reclaimed by ordinary LRU
/// eviction (stale entries stop being touched, so they drift to the cold
/// end). `Put` additionally refuses entries stamped with a non-current
/// epoch, so an in-flight query that raced with a mutation cannot insert a
/// plan the next reader would take for fresh.
class QueryPlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t stale_puts = 0;  ///< Puts dropped for carrying an old epoch.
    size_t entries = 0;
    size_t bytes = 0;
  };

  explicit QueryPlanCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  QueryPlanCache(const QueryPlanCache&) = delete;
  QueryPlanCache& operator=(const QueryPlanCache&) = delete;

  /// Returns the entry for (key, epoch) and marks it most-recently-used, or
  /// nullptr. The shared_ptr keeps the entry alive across eviction, so the
  /// caller may clone the plan outside any lock.
  std::shared_ptr<const CachedPlanEntry> Get(const std::string& key,
                                             Epoch epoch);

  /// Inserts `entry` under (key, entry->epoch), evicting least-recently-used
  /// entries until the byte budget holds; returns how many entries this
  /// insertion evicted. Dropped without effect when `entry->epoch !=
  /// current_epoch` (the caller's pinned snapshot went stale mid-flight) or
  /// when the entry alone exceeds the whole budget. `entry->bytes` must be
  /// set (see EstimatePlanBytes).
  size_t Put(const std::string& key,
             std::shared_ptr<const CachedPlanEntry> entry,
             Epoch current_epoch);

  void Clear();

  Stats stats() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const CachedPlanEntry>>;

  // Callers hold mu_.
  void EvictUntilWithinBudget(size_t budget);

  const size_t max_bytes_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t stale_puts_ = 0;
};

}  // namespace rdfopt

#endif  // RDFOPT_SERVICE_QUERY_CACHE_H_
