#include "service/canonical.h"

#include <algorithm>
#include <array>
#include <unordered_map>

namespace rdfopt {

namespace {

using Assignment = std::unordered_map<VarId, VarId>;

/// Ordering rank of one pattern term under a partial canonical assignment:
/// constants sort before already-assigned variables, which sort before
/// not-yet-assigned ones; within a class, by value / canonical id / local
/// first-occurrence pattern. The unassigned rank uses the variable's
/// first-occurrence index *within the atom*, which distinguishes
/// `?a p ?a` from `?a p ?b` without depending on input naming.
struct TermRank {
  int kind;
  uint64_t value;
  auto operator<=>(const TermRank&) const = default;
};

using AtomRank = std::array<TermRank, 3>;

AtomRank RankAtom(const TriplePattern& atom, const Assignment& assigned) {
  std::unordered_map<VarId, uint64_t> local;
  auto rank = [&](const PatternTerm& t) -> TermRank {
    if (!t.is_var()) return {0, t.value()};
    auto it = assigned.find(t.var());
    if (it != assigned.end()) return {1, it->second};
    uint64_t index = local.emplace(t.var(), local.size()).first->second;
    return {2, index};
  };
  return {rank(atom.s), rank(atom.p), rank(atom.o)};
}

void AssignVar(Assignment* assigned, VarId v) {
  assigned->emplace(v, static_cast<VarId>(assigned->size()));
}

/// Commits the atom's not-yet-assigned variables in s,p,o order.
void AssignAtomVars(Assignment* assigned, const TriplePattern& atom) {
  for (const PatternTerm* t : {&atom.s, &atom.p, &atom.o}) {
    if (t->is_var() && !assigned->contains(t->var())) {
      AssignVar(assigned, t->var());
    }
  }
}

void AppendTerm(std::string* out, const PatternTerm& t) {
  if (t.is_var()) {
    *out += '?';
    *out += std::to_string(t.var());
  } else {
    *out += '#';
    *out += std::to_string(t.value());
  }
}

/// Serializes `atom` under `assigned`, which must cover all its variables.
void AppendAtom(std::string* out, const TriplePattern& atom,
                const Assignment& assigned) {
  auto map = [&](const PatternTerm& t) {
    return t.is_var() ? PatternTerm::Var(assigned.at(t.var())) : t;
  };
  *out += '(';
  AppendTerm(out, map(atom.s));
  *out += ' ';
  AppendTerm(out, map(atom.p));
  *out += ' ';
  AppendTerm(out, map(atom.o));
  *out += ')';
}

size_t MinRankedAtom(const std::vector<const TriplePattern*>& remaining,
                     const Assignment& assigned,
                     std::vector<size_t>* tied_with_min) {
  size_t best = 0;
  AtomRank best_rank = RankAtom(*remaining[0], assigned);
  if (tied_with_min != nullptr) tied_with_min->assign(1, 0);
  for (size_t i = 1; i < remaining.size(); ++i) {
    AtomRank rank = RankAtom(*remaining[i], assigned);
    if (rank < best_rank) {
      best = i;
      best_rank = rank;
      if (tied_with_min != nullptr) tied_with_min->assign(1, i);
    } else if (tied_with_min != nullptr && rank == best_rank) {
      tied_with_min->push_back(i);
    }
  }
  return best;
}

/// Runs the greedy emission to completion (first-index tie-breaking) and
/// returns the serialized atom sequence. Used to score tied candidates:
/// copies its inputs, never commits anything.
std::string SimulateCompletion(Assignment assigned,
                               std::vector<const TriplePattern*> remaining) {
  std::string out;
  while (!remaining.empty()) {
    size_t pick = MinRankedAtom(remaining, assigned, nullptr);
    const TriplePattern* atom = remaining[pick];
    AssignAtomVars(&assigned, *atom);
    AppendAtom(&out, *atom, assigned);
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));
  }
  return out;
}

}  // namespace

CanonicalizedQuery Canonicalize(const ConjunctiveQuery& cq) {
  Assignment assigned;

  // Head variables are anchored by position: the i-th head slot of every
  // α-equivalent input names the same output column.
  for (VarId v : cq.head) {
    if (!assigned.contains(v)) AssignVar(&assigned, v);
  }

  // Greedily emit the minimally-ranked remaining atom, then commit its new
  // variables in s,p,o order. The ranking depends only on constants and on
  // canonical ids assigned so far, never on input order or input names.
  // When several atoms tie for the minimum (symmetric shapes, e.g. headless
  // chains), each tied candidate's full greedy completion is simulated and
  // the lexicographically smallest one wins — which again is a property of
  // the query's shape, not of its input order.
  std::vector<const TriplePattern*> remaining;
  remaining.reserve(cq.atoms.size());
  for (const TriplePattern& atom : cq.atoms) remaining.push_back(&atom);

  ConjunctiveQuery canonical;
  canonical.atoms.reserve(cq.atoms.size());
  std::vector<size_t> tied;
  while (!remaining.empty()) {
    size_t pick = MinRankedAtom(remaining, assigned, &tied);
    if (tied.size() > 1) {
      std::string best_completion;
      for (size_t candidate : tied) {
        Assignment trial_assigned = assigned;
        std::vector<const TriplePattern*> trial_remaining = remaining;
        const TriplePattern* atom = trial_remaining[candidate];
        AssignAtomVars(&trial_assigned, *atom);
        std::string completion;
        AppendAtom(&completion, *atom, trial_assigned);
        trial_remaining.erase(trial_remaining.begin() +
                              static_cast<ptrdiff_t>(candidate));
        completion += SimulateCompletion(std::move(trial_assigned),
                                         std::move(trial_remaining));
        if (best_completion.empty() || completion < best_completion) {
          best_completion = std::move(completion);
          pick = candidate;
        }
      }
    }
    const TriplePattern& atom = *remaining[pick];
    AssignAtomVars(&assigned, atom);
    TriplePattern mapped;
    auto map = [&](const PatternTerm& t) {
      return t.is_var() ? PatternTerm::Var(assigned.at(t.var())) : t;
    };
    mapped.s = map(atom.s);
    mapped.p = map(atom.p);
    mapped.o = map(atom.o);
    canonical.atoms.push_back(mapped);
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));
  }

  canonical.head.reserve(cq.head.size());
  for (VarId v : cq.head) canonical.head.push_back(assigned.at(v));
  // Parsed queries carry no head bindings; remap for totality (the service
  // only canonicalizes parsed queries, but the function shouldn't care).
  canonical.head_bindings.reserve(cq.head_bindings.size());
  for (const auto& [var, value] : cq.head_bindings) {
    canonical.head_bindings.emplace_back(assigned.at(var), value);
  }
  std::sort(canonical.head_bindings.begin(), canonical.head_bindings.end());

  CanonicalizedQuery result;
  result.key.reserve(16 * canonical.atoms.size() + 8 * canonical.head.size());
  result.key += 'H';
  for (VarId v : canonical.head) {
    result.key += '?';
    result.key += std::to_string(v);
    result.key += ',';
  }
  result.key += '|';
  for (const TriplePattern& atom : canonical.atoms) {
    result.key += '(';
    AppendTerm(&result.key, atom.s);
    result.key += ' ';
    AppendTerm(&result.key, atom.p);
    result.key += ' ';
    AppendTerm(&result.key, atom.o);
    result.key += ')';
  }
  for (const auto& [var, value] : canonical.head_bindings) {
    result.key += "|b?";
    result.key += std::to_string(var);
    result.key += "=#";
    result.key += std::to_string(value);
  }

  for (size_t i = 0; i < assigned.size(); ++i) {
    result.query.vars.GetOrCreate("c" + std::to_string(i));
  }
  result.query.cq = std::move(canonical);
  return result;
}

}  // namespace rdfopt
