#include "service/admission.h"

#include "common/metrics.h"

namespace rdfopt {

namespace {

/// Live admission gauges (`service.queue_depth`, `service.run_slots_in_use`),
/// exported via `!prom`. Process-wide: with several controllers in one
/// process (tests), the last writer wins — acceptable for gauges that exist
/// to watch the one serving instance.
struct AdmissionGauges {
  MetricGauge* queue_depth;
  MetricGauge* run_slots_in_use;
};

AdmissionGauges& Gauges() {
  static AdmissionGauges g = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return AdmissionGauges{r.GetGauge("service.queue_depth"),
                           r.GetGauge("service.run_slots_in_use")};
  }();
  return g;
}

}  // namespace

Status AdmissionController::Acquire(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  // Fast path: a free slot and nobody queued ahead.
  if (running_ < max_concurrent_ && waiting_.empty()) {
    ++running_;
    ++admitted_;
    Gauges().run_slots_in_use->Set(static_cast<int64_t>(running_));
    return Status::OK();
  }
  if (waiting_.size() >= max_queue_) {
    ++shed_;
    return Status::ResourceExhausted("admission queue full");
  }
  const uint64_t ticket = next_ticket_++;
  waiting_.insert(ticket);
  Gauges().queue_depth->Set(static_cast<int64_t>(waiting_.size()));
  const bool admitted = cv_.wait_until(lock, deadline, [&] {
    // FIFO: only the oldest waiter may take a freed slot.
    return running_ < max_concurrent_ && *waiting_.begin() == ticket;
  });
  waiting_.erase(ticket);
  Gauges().queue_depth->Set(static_cast<int64_t>(waiting_.size()));
  if (!admitted) {
    ++deadline_exceeded_;
    // Our departure may make the next waiter eligible.
    cv_.notify_all();
    return Status::DeadlineExceeded("deadline passed while queued");
  }
  ++running_;
  ++admitted_;
  Gauges().run_slots_in_use->Set(static_cast<int64_t>(running_));
  // A slot may still be free for the new head of the queue.
  cv_.notify_all();
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
    Gauges().run_slots_in_use->Set(static_cast<int64_t>(running_));
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.running = running_;
  s.waiting = waiting_.size();
  s.admitted = admitted_;
  s.shed = shed_;
  s.deadline_exceeded = deadline_exceeded_;
  return s;
}

}  // namespace rdfopt
