#include "service/admission.h"

namespace rdfopt {

Status AdmissionController::Acquire(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  // Fast path: a free slot and nobody queued ahead.
  if (running_ < max_concurrent_ && waiting_.empty()) {
    ++running_;
    ++admitted_;
    return Status::OK();
  }
  if (waiting_.size() >= max_queue_) {
    ++shed_;
    return Status::ResourceExhausted("admission queue full");
  }
  const uint64_t ticket = next_ticket_++;
  waiting_.insert(ticket);
  const bool admitted = cv_.wait_until(lock, deadline, [&] {
    // FIFO: only the oldest waiter may take a freed slot.
    return running_ < max_concurrent_ && *waiting_.begin() == ticket;
  });
  waiting_.erase(ticket);
  if (!admitted) {
    ++deadline_exceeded_;
    // Our departure may make the next waiter eligible.
    cv_.notify_all();
    return Status::DeadlineExceeded("deadline passed while queued");
  }
  ++running_;
  ++admitted_;
  // A slot may still be free for the new head of the queue.
  cv_.notify_all();
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.running = running_;
  s.waiting = waiting_.size();
  s.admitted = admitted_;
  s.shed = shed_;
  s.deadline_exceeded = deadline_exceeded_;
  return s;
}

}  // namespace rdfopt
