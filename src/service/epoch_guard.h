#ifndef RDFOPT_SERVICE_EPOCH_GUARD_H_
#define RDFOPT_SERVICE_EPOCH_GUARD_H_

#include "storage/epoch.h"

namespace rdfopt {

/// The shared stale-write rule of every epoch-keyed derived-artifact store
/// (the query plan cache and the materialized-view catalog).
///
/// The race it guards: a request pins the snapshot of epoch N at admission;
/// an update installs epoch N+1 while the request is still planning or
/// executing; the request finishes and tries to publish its derived artifact
/// (a plan, a materialized fragment result). The artifact was computed from
/// epoch-N data, so publishing it into a store that now answers for epoch
/// N+1 would serve stale results — the classic off-by-one epoch race.
///
/// The rule is exact equality of the stamp and the store's current epoch:
/// `stamped < current` is the race above, and `stamped > current` means the
/// writer saw a snapshot the store has not adopted yet (possible during an
/// install, when the epoch counter advances before the new snapshot/catalog
/// state is published) — admitting that would be stale the other way around.
/// QueryPlanCache::Put and ViewCatalog::Offer both funnel through this one
/// predicate so their rejection semantics cannot drift apart.
inline bool EpochWriteAdmissible(Epoch stamped, Epoch current) {
  return stamped == current;
}

}  // namespace rdfopt

#endif  // RDFOPT_SERVICE_EPOCH_GUARD_H_
