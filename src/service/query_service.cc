#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "engine/plan_verifier.h"
#include "reasoner/saturation.h"
#include "sparql/parser.h"
#include "storage/statistics.h"

namespace rdfopt {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Releases an admission slot on scope exit.
class SlotGuard {
 public:
  explicit SlotGuard(AdmissionController* admission) : admission_(admission) {}
  ~SlotGuard() { admission_->Release(); }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;

 private:
  AdmissionController* admission_;
};

struct ServiceMetrics {
  MetricCounter* queries;
  MetricCounter* cache_hits;
  MetricCounter* cache_misses;
  MetricCounter* cache_evictions;
  MetricCounter* shed;
  MetricCounter* deadline_exceeded;
  MetricCounter* epoch_bumps;
  MetricGauge* epoch;
  MetricHistogram* queue_wait_ms;
  MetricHistogram* total_ms;
  /// Trailing-window twin of service.total_ms: the p99-over-last-minute
  /// signal `!prom` exports for alerting.
  MetricWindowedHistogram* total_ms_window;
};

ServiceMetrics& Metrics() {
  static ServiceMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    ServiceMetrics out;
    out.queries = r.GetCounter("service.queries");
    out.cache_hits = r.GetCounter("service.cache_hits");
    out.cache_misses = r.GetCounter("service.cache_misses");
    out.cache_evictions = r.GetCounter("service.cache_evictions");
    out.shed = r.GetCounter("service.shed");
    out.deadline_exceeded = r.GetCounter("service.deadline_exceeded");
    out.epoch_bumps = r.GetCounter("service.epoch_bumps");
    out.epoch = r.GetGauge("service.epoch");
    out.queue_wait_ms = r.GetHistogram("service.queue_wait_ms");
    out.total_ms = r.GetHistogram("service.total_ms");
    out.total_ms_window = r.GetWindowedHistogram("service.total_ms");
    return out;
  }();
  return m;
}

}  // namespace

QueryService::QueryService(Graph* graph, const EngineProfile& profile,
                           ServiceOptions options)
    : graph_(graph),
      profile_(profile),
      options_(std::move(options)),
      cache_(options_.cache_bytes),
      admission_(options_.max_concurrent, options_.max_queue),
      slow_log_(SlowQueryLog::Options{options_.slow_query_ms,
                                      options_.slow_log_capacity,
                                      options_.slow_log_sample}),
      views_(ViewCatalogOptions{options_.view_bytes,
                                ViewCatalogOptions{}.max_ledger_entries}),
      view_advisor_(ViewAdvisorOptions{options_.view_pin_limit,
                                       options_.view_min_observations}) {
  std::lock_guard<std::mutex> lock(graph_mu_);
  InstallSnapshot(BuildSnapshotLocked(epoch_.Current()));
  Metrics().epoch->Set(static_cast<int64_t>(epoch_.Current()));
}

std::shared_ptr<const QueryService::Snapshot> QueryService::CurrentSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void QueryService::InstallSnapshot(std::shared_ptr<const Snapshot> snapshot) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

Schema QueryService::ReplaySchemaLocked() const {
  Schema schema;
  const Vocabulary& vocab = graph_->vocab();
  for (const Triple& t : graph_->schema_triples()) {
    if (t.p == vocab.rdfs_subclassof) {
      schema.AddSubClass(t.s, t.o);
    } else if (t.p == vocab.rdfs_subpropertyof) {
      schema.AddSubProperty(t.s, t.o);
    } else if (t.p == vocab.rdfs_domain) {
      schema.AddDomain(t.s, t.o);
    } else if (t.p == vocab.rdfs_range) {
      schema.AddRange(t.s, t.o);
    }
  }
  schema.Finalize();
  return schema;
}

std::shared_ptr<const QueryService::Snapshot>
QueryService::BuildSnapshotLocked(Epoch epoch) const {
  Schema schema = ReplaySchemaLocked();
  TripleStore data = TripleStore::Build(graph_->data_triples());
  if (profile_.hierarchy_ranges) {
    // Epoch re-encode protocol (DESIGN.md §12): every snapshot carries its
    // own hierarchy encoding, rebuilt from the epoch's schema. In-flight
    // queries pin their snapshot and keep planning/scanning against the old
    // hid assignment; new requests see the new one.
    data.AttachHierarchy(std::make_shared<const HierarchyEncoding>(
        HierarchyEncoding::Build(schema, graph_->vocab().rdf_type)));
  }
  TripleStore saturated = Saturate(data, schema, graph_->vocab()).store;
  Statistics stats = Statistics::Compute(data);
  return std::make_shared<Snapshot>(epoch, std::move(data),
                                    std::move(saturated), std::move(stats),
                                    std::move(schema),
                                    options_.enable_feedback);
}

Status QueryService::ApplyUpdate(const std::vector<Triple>& additions) {
  std::lock_guard<std::mutex> lock(graph_mu_);
  const size_t schema_before = graph_->num_schema_triples();
  std::vector<Triple> data_delta;
  data_delta.reserve(additions.size());
  for (const Triple& t : additions) {
    if (!graph_->dict().Contains(t.s) || !graph_->dict().Contains(t.p) ||
        !graph_->dict().Contains(t.o)) {
      return Status::InvalidArgument("update triple uses un-interned ids");
    }
    graph_->AddEncoded(t.s, t.p, t.o);
    if (!graph_->vocab().IsSchemaProperty(t.p)) data_delta.push_back(t);
  }
  const Epoch epoch = epoch_.Advance();
  Metrics().epoch_bumps->Increment();
  Metrics().epoch->Set(static_cast<int64_t>(epoch));
  if (graph_->num_schema_triples() != schema_before) {
    // Schema changed: closures, saturation and every derived artifact must
    // be recomputed from scratch — including pinned views, whose
    // carry-forward test only covers data deltas.
    std::shared_ptr<const Snapshot> next = BuildSnapshotLocked(epoch);
    InstallSnapshot(next);
    if (options_.enable_views) {
      MaintainViews(next, data_delta, /*delta_is_complete=*/false);
    }
    return Status::OK();
  }
  // Data-only delta: merge the sorted indexes and reason over the delta
  // alone (saturation distributes over union in the DB fragment; see
  // IncrementalSaturate).
  std::shared_ptr<const Snapshot> current = CurrentSnapshot();
  TripleStore data =
      TripleStore::Merge(current->data, TripleStore::Build(data_delta));
  if (current->data.hierarchy_ptr() != nullptr) {
    // Schema unchanged, so the hid assignment carries over; only the shadow
    // index is rebuilt over the merged triples.
    data.AttachHierarchy(current->data.hierarchy_ptr());
  }
  TripleStore saturated =
      IncrementalSaturate(current->saturated, data_delta, current->schema,
                          graph_->vocab())
          .store;
  Statistics stats = Statistics::Compute(data);
  std::shared_ptr<const Snapshot> next = std::make_shared<Snapshot>(
      epoch, std::move(data), std::move(saturated), std::move(stats),
      ReplaySchemaLocked(), options_.enable_feedback);
  InstallSnapshot(next);
  if (options_.enable_views) {
    MaintainViews(next, data_delta, /*delta_is_complete=*/true);
  }
  return Status::OK();
}

void QueryService::Refresh() {
  std::lock_guard<std::mutex> lock(graph_mu_);
  const Epoch epoch = epoch_.Advance();
  Metrics().epoch_bumps->Increment();
  Metrics().epoch->Set(static_cast<int64_t>(epoch));
  std::shared_ptr<const Snapshot> next = BuildSnapshotLocked(epoch);
  InstallSnapshot(next);
  if (options_.enable_views) {
    // Out-of-band graph change: no delta to reason about, refresh wholesale.
    MaintainViews(next, {}, /*delta_is_complete=*/false);
  }
}

void QueryService::MaintainViews(
    const std::shared_ptr<const Snapshot>& snapshot,
    const std::vector<Triple>& data_delta, bool delta_is_complete) {
  std::vector<ViewCatalog::RefreshTask> tasks =
      views_.BeginEpoch(snapshot->epoch, data_delta, delta_is_complete);
  for (ViewCatalog::RefreshTask& task : tasks) {
    // Deliberately no resolver on this evaluator: re-materialization must
    // compute from base data, never substitute the rows being replaced.
    Evaluator evaluator(&snapshot->data, &profile_, &snapshot->estimator);
    PhysicalPlan plan = evaluator.planner().PlanUCQ(task.definition);
    if (!plan.feasibility.ok()) {
      views_.Drop(task.signature);
      continue;
    }
    EvalMetrics eval;
    Result<Relation> rows = evaluator.ExecutePlan(&plan, &eval);
    if (!rows.ok()) {
      views_.Drop(task.signature);
      continue;
    }
    views_.InstallPinned(task.signature, rows.TakeValue(), snapshot->epoch);
  }
}

Result<ServiceOutcome> QueryService::AnswerText(std::string_view text,
                                                const RequestOptions& request) {
  Result<Query> parsed = [&] {
    std::lock_guard<std::mutex> lock(graph_mu_);
    return ParseQuery(text, &graph_->dict());
  }();
  RDFOPT_RETURN_NOT_OK(parsed.status());
  return Answer(parsed.ValueOrDie(), request);
}

std::vector<std::string> QueryService::DecodeRow(const Relation& relation,
                                                 size_t row) const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  std::vector<std::string> out;
  out.reserve(relation.arity());
  for (size_t col = 0; col < relation.arity(); ++col) {
    out.push_back(graph_->dict().term(relation.at(row, col)).lexical);
  }
  return out;
}

Result<ServiceOutcome> QueryService::Answer(const Query& query,
                                            const RequestOptions& request) {
  const Clock::time_point start = Clock::now();
  Metrics().queries->Increment();
  TraceSpan span("service.query");

  CanonicalizedQuery canonical;
  {
    TraceSpan canon_span("service.canonicalize");
    canonical = Canonicalize(query.cq);
    canon_span.Attr("key", canonical.key);
  }

  // Every exit path below feeds the slow-query log: failed requests always
  // qualify, successful ones when total_ms crosses the threshold.
  const auto record_failure = [&](const Status& status, double queue_wait_ms,
                                  Epoch epoch) {
    if (!options_.enable_slow_log) return;
    SlowQueryLog::Record rec;
    rec.canonical_query = canonical.key;
    rec.status = status;
    rec.epoch = epoch;
    rec.queue_wait_ms = queue_wait_ms;
    rec.total_ms = MsSince(start);
    slow_log_.MaybeRecord(rec);
  };

  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(deadline_ms));

  double queue_wait_ms = 0.0;
  {
    TraceSpan admit_span("service.admit");
    const Status admitted = admission_.Acquire(deadline);
    queue_wait_ms = MsSince(start);
    admit_span.Attr("queue_wait_ms", queue_wait_ms);
    Metrics().queue_wait_ms->Observe(queue_wait_ms);
    if (!admitted.ok()) {
      if (admitted.code() == StatusCode::kResourceExhausted) {
        Metrics().shed->Increment();
      } else {
        Metrics().deadline_exceeded->Increment();
      }
      span.Attr("rejected", admitted.ToString());
      record_failure(admitted, queue_wait_ms, epoch_.Current());
      return admitted;
    }
  }
  SlotGuard slot(&admission_);

  // Thread the remaining deadline and the per-request memory budget into the
  // engine's own limits; evaluation never loosens the profile.
  EngineProfile request_profile = profile_;
  const double remaining_s =
      std::chrono::duration<double>(deadline - Clock::now()).count();
  request_profile.timeout_seconds =
      std::min(request_profile.timeout_seconds, std::max(remaining_s, 1e-3));
  if (request.max_materialized_cells > 0) {
    request_profile.max_materialized_cells = std::min(
        request_profile.max_materialized_cells, request.max_materialized_cells);
  }

  std::shared_ptr<const Snapshot> snapshot = CurrentSnapshot();
  Result<ServiceOutcome> result =
      AnswerOnSnapshot(canonical, snapshot, request_profile);
  if (!result.ok()) {
    record_failure(result.status(), queue_wait_ms, snapshot->epoch);
    return result;
  }
  ServiceOutcome outcome = result.TakeValue();

  outcome.columns.reserve(query.cq.head.size());
  for (VarId v : query.cq.head) outcome.columns.push_back(query.vars.name(v));
  outcome.queue_wait_ms = queue_wait_ms;
  outcome.total_ms = MsSince(start);
  Metrics().total_ms->Observe(outcome.total_ms);
  Metrics().total_ms_window->Observe(outcome.total_ms);
  span.Attr("cache_hit", outcome.cache_hit);
  span.Attr("epoch", static_cast<uint64_t>(outcome.epoch));
  span.Attr("rows", static_cast<uint64_t>(outcome.answers.num_rows()));
  if (options_.enable_slow_log &&
      outcome.total_ms >= slow_log_.threshold_ms()) {
    SlowQueryLog::Record rec;
    rec.canonical_query = canonical.key;
    rec.plan_digest = outcome.plan_digest;
    rec.cache_hit = outcome.cache_hit;
    rec.epoch = outcome.epoch;
    rec.queue_wait_ms = outcome.queue_wait_ms;
    rec.optimize_ms = outcome.optimize_ms;
    rec.reformulate_ms = outcome.reformulate_ms;
    rec.plan_ms = outcome.plan_ms;
    rec.evaluate_ms = outcome.evaluate_ms;
    rec.total_ms = outcome.total_ms;
    rec.vector_width = outcome.vector_width;
    rec.eval = outcome.eval;
    rec.nodes = outcome.node_stats;
    slow_log_.MaybeRecord(rec);
  }
  // The advisor piggybacks on the query stream: every Nth answered query
  // triggers one scoring pass over the catalog's ledger (no extra threads).
  if (options_.enable_views && options_.view_advisor_interval > 0 &&
      (advisor_tick_.fetch_add(1, std::memory_order_relaxed) + 1) %
              options_.view_advisor_interval ==
          0) {
    view_advisor_.RunPass(&views_);
  }
  return outcome;
}

Result<ServiceOutcome> QueryService::AnswerOnSnapshot(
    const CanonicalizedQuery& canonical,
    const std::shared_ptr<const Snapshot>& snapshot,
    const EngineProfile& request_profile) {
  ServiceOutcome outcome;
  outcome.epoch = snapshot->epoch;

  // Views are resolved through a per-request adapter pinning the snapshot's
  // epoch, so a request that races an update can neither read rows from
  // another epoch nor publish its results into one (epoch_guard.h).
  EpochViewResolver view_resolver(&views_, snapshot->epoch);
  const bool use_views = options_.enable_views &&
                         options_.answer.strategy != Strategy::kSaturation;

  // Saturation answering builds no reusable physical plan, so it bypasses
  // the cache entirely.
  const bool use_cache = options_.enable_cache &&
                         options_.answer.strategy != Strategy::kSaturation;

  std::shared_ptr<const CachedPlanEntry> entry;
  if (use_cache) {
    TraceSpan lookup_span("service.lookup");
    entry = cache_.Get(canonical.key, snapshot->epoch);
    lookup_span.Attr("hit", entry != nullptr);
  }

  if (entry != nullptr) {
    // Hit: skip reformulation, cover search and planning; clone the plan
    // template (execution writes actuals into the tree) and evaluate against
    // the pinned snapshot.
    Metrics().cache_hits->Increment();
    outcome.cache_hit = true;
    outcome.chosen_cover = entry->cover;
    outcome.union_terms = entry->union_terms;
    outcome.num_components = entry->num_components;
    PhysicalPlan plan = entry->plan.Clone();
    // Clone is the other producer of executable plans (besides the planner);
    // a Clone bug would corrupt every hit of the entry, so it gets the same
    // debug-build structural verification as freshly planned trees.
    DebugCheckPlan(plan, &snapshot->data, "plan-cache clone");
    Evaluator evaluator(&snapshot->data, &request_profile,
                        &snapshot->estimator);
    // Cache hits keep feeding the feedback loop: their actuals refresh the
    // fragment EWMAs even though no planning happens on this path.
    if (options_.enable_feedback) evaluator.set_feedback(&snapshot->feedback);
    // Cached plans still carry harvest stamps (and possibly view scans
    // pinned at plan time), so hits keep offering fragment results too.
    if (use_views) evaluator.set_views(&view_resolver);
    TraceSpan exec_span("service.execute");
    RDFOPT_ASSIGN_OR_RETURN(outcome.answers,
                            evaluator.ExecutePlan(&plan, &outcome.eval));
    outcome.evaluate_ms = outcome.eval.elapsed_ms;
    outcome.plan_digest = PlanDigest(plan);
    outcome.node_stats = CollectNodeStats(plan);
    outcome.vector_width = plan.vector_width;
    exec_span.Attr("rows", static_cast<uint64_t>(outcome.answers.num_rows()));
    return outcome;
  }

  if (use_cache) Metrics().cache_misses->Increment();

  // Miss: run the full pipeline on the *canonical* query — not the submitted
  // one — so hit and miss paths execute literally the same query and produce
  // byte-identical rows. keep_plan harvests the executed plan for the cache.
  QueryAnswerer answerer(&snapshot->data, &snapshot->saturated,
                         &snapshot->schema, &graph_->vocab(), &snapshot->stats,
                         &request_profile);
  if (options_.enable_feedback) answerer.EnableFeedback(&snapshot->feedback);
  if (use_views) answerer.EnableViews(&view_resolver);
  AnswerOptions answer_options = options_.answer;
  // The slow-query log wants per-node timings even when caching is off.
  answer_options.keep_plan = use_cache || options_.enable_slow_log;
  RDFOPT_ASSIGN_OR_RETURN(AnswerOutcome answered,
                          answerer.Answer(canonical.query, answer_options));

  outcome.answers = std::move(answered.answers);
  outcome.eval = answered.eval;
  outcome.chosen_cover = answered.chosen_cover;
  outcome.optimize_ms = answered.optimize_ms;
  outcome.reformulate_ms = answered.reformulate_ms;
  outcome.plan_ms = answered.plan_ms;
  outcome.evaluate_ms = answered.evaluate_ms;
  outcome.union_terms = answered.union_terms;
  outcome.num_components = answered.num_components;
  if (answered.plan.has_value()) {
    outcome.plan_digest = PlanDigest(*answered.plan);
    // Harvest the per-operator accounting before the plan's actuals are
    // reset for the cache below.
    outcome.node_stats = CollectNodeStats(*answered.plan);
    outcome.vector_width = answered.plan->vector_width;
  }

  if (use_cache && answered.plan.has_value() &&
      answered.plan->feasibility.ok()) {
    auto cached = std::make_shared<CachedPlanEntry>();
    cached->epoch = snapshot->epoch;
    cached->cover = outcome.chosen_cover;
    cached->plan = std::move(*answered.plan);
    cached->plan.ResetActuals();
    cached->union_terms = outcome.union_terms;
    cached->num_components = outcome.num_components;
    cached->est_cost = cached->plan.est_cost();
    cached->bytes = canonical.key.size() + EstimatePlanBytes(cached->plan);
    const size_t evicted =
        cache_.Put(canonical.key, std::move(cached), epoch_.Current());
    if (evicted > 0) Metrics().cache_evictions->Add(evicted);
  }
  return outcome;
}

QueryService::Stats QueryService::stats() const {
  Stats s;
  s.epoch = epoch_.Current();
  s.cache = cache_.stats();
  s.admission = admission_.stats();
  s.views = views_.stats();
  return s;
}

}  // namespace rdfopt
