#ifndef RDFOPT_SERVICE_SLOW_LOG_H_
#define RDFOPT_SERVICE_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/evaluator.h"
#include "storage/epoch.h"

namespace rdfopt {

/// Per-plan-node roll-up carried from an executed plan into ServiceOutcome
/// and the slow-query log: the per-operator accounting (engine/plan.h) in a
/// plain-data form that outlives the plan tree.
struct PlanNodeStats {
  int id = -1;
  std::string_view kind;  ///< PlanNodeKindName — static storage.
  /// For SharedRef nodes and shared-subplan roots: the index of the
  /// execute-once shared subplan (union-subplan factoring); -1 otherwise.
  int shared_index = -1;
  size_t actual_rows = 0;
  double actual_ms = 0.0;
  size_t rows_scanned = 0;
  size_t hash_probes = 0;
  size_t bytes_materialized = 0;
};

/// Structured slow-query log (DESIGN.md §8): a bounded ring of JSON-lines
/// records for requests that were slow (>= threshold) or failed. Each line
/// is one self-contained JSON object — canonical query, outcome status,
/// plan digest, cache hit/miss, snapshot epoch, queue wait, phase times,
/// resource totals, and per-node timings — so `grep | jq` works on the
/// shell's `.slowlog` / the server's `!slowlog` output directly.
///
/// Sampling: with `sample_every = N`, every Nth qualifying request is
/// rendered and kept; the rest only bump the `service.slow_queries`
/// counter. Rendering a record costs ~1µs per plan node, so sampling is the
/// overload valve, not the common-case cost.
///
/// Thread-safe; the service records from concurrent request threads.
class SlowQueryLog {
 public:
  struct Options {
    double threshold_ms = 100.0;  ///< Requests at/above qualify; failed
                                  ///< requests qualify regardless.
    size_t capacity = 128;        ///< Most recent records kept.
    size_t sample_every = 1;      ///< Keep every Nth qualifying record.
  };

  SlowQueryLog() : SlowQueryLog(Options{}) {}
  explicit SlowQueryLog(Options options);

  /// Everything one log line is rendered from.
  struct Record {
    std::string canonical_query;  ///< Canonical key of the request.
    Status status = Status::OK();
    uint64_t plan_digest = 0;  ///< 0 when no plan was kept/built.
    bool cache_hit = false;
    Epoch epoch = 0;
    double queue_wait_ms = 0.0;
    double optimize_ms = 0.0;
    double reformulate_ms = 0.0;
    double plan_ms = 0.0;
    double evaluate_ms = 0.0;
    double total_ms = 0.0;
    size_t vector_width = 1;  ///< Batch size of the executed plan (1 =
                              ///< tuple-at-a-time).
    EvalMetrics eval;  ///< Resource totals of the evaluation.
    std::vector<PlanNodeStats> nodes;
  };

  /// Applies the qualification rule (slow or failed) and sampling; safe to
  /// call for every request.
  void MaybeRecord(const Record& record);

  /// The most recent records as JSON lines, oldest first. `max` > 0 limits
  /// to the newest `max` lines.
  std::vector<std::string> Lines(size_t max = 0) const;

  void Clear();

  size_t size() const;
  double threshold_ms() const {
    return threshold_ms_.load(std::memory_order_relaxed);
  }
  /// Runtime-adjustable (the shell's `.slowlog <ms>`).
  void set_threshold_ms(double ms) {
    threshold_ms_.store(ms, std::memory_order_relaxed);
  }

  /// Renders one record to its JSON line (exposed for tests).
  static std::string RenderLine(const Record& record);

 private:
  const Options options_;
  std::atomic<double> threshold_ms_;
  std::atomic<uint64_t> qualifying_{0};  ///< Sampling clock.
  mutable std::mutex mu_;
  std::deque<std::string> lines_;
};

/// Flattens an executed plan's per-operator accounting into PlanNodeStats
/// rows (preorder; nodes that never executed are skipped).
struct PhysicalPlan;
std::vector<PlanNodeStats> CollectNodeStats(const PhysicalPlan& plan);

}  // namespace rdfopt

#endif  // RDFOPT_SERVICE_SLOW_LOG_H_
