#ifndef RDFOPT_SERVICE_ADMISSION_H_
#define RDFOPT_SERVICE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>

#include "common/status.h"

namespace rdfopt {

/// Bounded run-slot semaphore with a deadline-aware FIFO wait queue — the
/// service's overload valve.
///
/// At most `max_concurrent` requests hold a run slot at once. When all slots
/// are taken, up to `max_queue` further requests wait, and are admitted
/// strictly in arrival order (tickets, so no waiter can starve). Beyond
/// that, requests are shed immediately with kResourceExhausted: under
/// overload the service degrades by rejecting cheaply, not by queueing
/// unboundedly and timing everything out. A waiter whose deadline passes
/// before a slot frees gives up with kDeadlineExceeded — distinct from
/// kTimeout, which means evaluation *ran* and exceeded its budget.
class AdmissionController {
 public:
  AdmissionController(size_t max_concurrent, size_t max_queue)
      : max_concurrent_(max_concurrent == 0 ? 1 : max_concurrent),
        max_queue_(max_queue) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a run slot is acquired (OK — caller must Release()), the
  /// queue is full (kResourceExhausted, immediate), or `deadline` passes
  /// while waiting (kDeadlineExceeded).
  Status Acquire(std::chrono::steady_clock::time_point deadline);

  /// Returns a slot acquired by a successful Acquire().
  void Release();

  struct Stats {
    size_t running = 0;
    size_t waiting = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t deadline_exceeded = 0;
  };
  Stats stats() const;

 private:
  const size_t max_concurrent_;
  const size_t max_queue_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t running_ = 0;
  uint64_t next_ticket_ = 0;
  /// Tickets of current waiters; the minimum is next in line.
  std::set<uint64_t> waiting_;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t deadline_exceeded_ = 0;
};

}  // namespace rdfopt

#endif  // RDFOPT_SERVICE_ADMISSION_H_
