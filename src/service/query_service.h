#ifndef RDFOPT_SERVICE_QUERY_SERVICE_H_
#define RDFOPT_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "cost/feedback.h"
#include "engine/engine_profile.h"
#include "engine/evaluator.h"
#include "optimizer/answering.h"
#include "rdf/graph.h"
#include "service/admission.h"
#include "service/canonical.h"
#include "service/query_cache.h"
#include "service/slow_log.h"
#include "storage/epoch.h"
#include "views/view_advisor.h"
#include "views/view_catalog.h"

namespace rdfopt {

/// Configuration of a QueryService instance.
struct ServiceOptions {
  /// Answering strategy and knobs used on cache misses (see answering.h).
  AnswerOptions answer;
  /// Byte budget of the reformulation/plan cache; 0 effectively disables
  /// caching by capacity (prefer `enable_cache = false` for intent).
  size_t cache_bytes = 64ull << 20;
  bool enable_cache = true;
  /// Run slots: queries evaluating at once. Waiters queue FIFO behind them.
  size_t max_concurrent = 4;
  /// Wait-queue depth beyond which requests are shed (kResourceExhausted).
  size_t max_queue = 64;
  /// Deadline applied when a request specifies none: covers queue wait plus
  /// evaluation.
  double default_deadline_ms = 30'000.0;
  /// Estimate feedback (cost/feedback.h): each snapshot owns a store the
  /// evaluator records executed disjuncts' actuals into and the estimator
  /// consults on later plannings, so misestimated fragments self-correct.
  /// Scoped to the snapshot — an epoch bump starts clean, since stale
  /// observations must not steer planning against new data.
  bool enable_feedback = true;
  /// Slow-query log (service/slow_log.h): requests slower than
  /// `slow_query_ms` (or failed) are recorded as JSON lines, keeping the
  /// newest `slow_log_capacity`, sampled 1-in-`slow_log_sample`.
  bool enable_slow_log = true;
  double slow_query_ms = 100.0;
  size_t slow_log_capacity = 128;
  size_t slow_log_sample = 1;
  /// Materialized fragment views (DESIGN.md §14, views/view_catalog.h):
  /// component results are cached by ViewSignature and substituted into
  /// later plans, with a log-mining advisor pinning the hottest fragments.
  /// Off by default — views change nothing about planning decisions, but
  /// the paper-reproduction surfaces stay byte-for-byte history-free.
  bool enable_views = false;
  /// Byte budget of materialized view rows (pinned + unpinned).
  size_t view_bytes = 16ull << 20;
  /// Run an advisor scoring pass every this many queries; 0 disables the
  /// advisor (views stay purely opportunistic/LRU).
  size_t view_advisor_interval = 64;
  /// Advisor knobs: most views pinned at once, and how often a fragment
  /// must have been planned before pinning (see view_advisor.h).
  size_t view_pin_limit = 8;
  uint64_t view_min_observations = 3;
};

/// Per-request overrides.
struct RequestOptions {
  /// End-to-end deadline (queue wait + evaluation); 0 = service default.
  /// Becomes the evaluation timeout for whatever time is left after
  /// admission, so a request never runs past its deadline by more than one
  /// executor timeout check.
  double deadline_ms = 0.0;
  /// Per-query materialization budget in cells, tightening (never loosening)
  /// the engine profile's; 0 = profile default.
  size_t max_materialized_cells = 0;
};

/// What one service request produced.
struct ServiceOutcome {
  Relation answers{std::vector<VarId>{}};
  /// Names of the answer columns, in the submitted query's head order (the
  /// relation's VarIds are canonical ids, meaningless to the caller).
  std::vector<std::string> columns;
  EvalMetrics eval;
  bool cache_hit = false;
  Epoch epoch = 0;  ///< Epoch of the snapshot the answer was computed from.
  Cover chosen_cover;
  double queue_wait_ms = 0.0;
  double optimize_ms = 0.0;     ///< Zero on cache hits: the work was skipped.
  double reformulate_ms = 0.0;  ///< Zero on cache hits.
  double plan_ms = 0.0;         ///< Zero on cache hits.
  double evaluate_ms = 0.0;
  double total_ms = 0.0;  ///< Wall-clock including canonicalize/queue/cache.
  size_t union_terms = 0;
  size_t num_components = 0;
  /// Structural fingerprint of the executed plan (engine/plan.h PlanDigest);
  /// 0 when no plan was available (saturation strategy without caching).
  uint64_t plan_digest = 0;
  /// Per-operator accounting of the executed plan, flattened out of the plan
  /// tree (empty when no plan was available). Feeds the slow-query log.
  std::vector<PlanNodeStats> node_stats;
  /// Batch size of the executed plan (1 = tuple-at-a-time engine).
  size_t vector_width = 1;
};

/// The concurrent front door to the answering pipeline (DESIGN.md §10): a
/// thread-safe facade over canonicalization, a reformulation/plan cache,
/// admission control and epoch-based invalidation.
///
/// The paper's pipeline spends its time in reformulation, cover search and
/// planning — work that depends only on (query, schema, statistics), not on
/// who asks or when. The service memoizes exactly that work: queries are
/// canonicalized (α-equivalent / atom-permuted inputs collapse to one key),
/// and the chosen cover + physical plan are cached per (canonical query,
/// epoch), so a repeat query goes straight to execution. Store mutations
/// advance the epoch and swap in a new immutable snapshot; old cache entries
/// become unreachable (their key embeds the stale epoch) and age out, while
/// in-flight queries keep the snapshot they pinned — no locks are held
/// during evaluation.
///
/// Concurrency contract: `Answer`, `AnswerText`, `ApplyUpdate`, `Refresh`,
/// `stats` and `DecodeRow` may be called from any thread concurrently. The
/// `Graph` must not be mutated externally while the service exists (the
/// service owns its mutation path).
class QueryService {
 public:
  /// `graph` must outlive the service. The constructor builds the initial
  /// snapshot (store, saturation, statistics, schema closures) from the
  /// graph's current content; the schema need not be finalized (the service
  /// replays constraint triples into its own finalized per-snapshot Schema).
  QueryService(Graph* graph, const EngineProfile& profile,
               ServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Answers `query` (already parsed against the service's dictionary).
  /// Errors: kResourceExhausted (shed at admission, or the engine's
  /// materialization budget), kDeadlineExceeded (deadline passed while
  /// queued), kTimeout (evaluation exceeded the remaining deadline or the
  /// profile timeout), or any answering-layer error.
  Result<ServiceOutcome> Answer(const Query& query,
                                const RequestOptions& request = {});

  /// Parses (serialized internally: interning mutates the dictionary) and
  /// answers.
  Result<ServiceOutcome> AnswerText(std::string_view text,
                                    const RequestOptions& request = {});

  /// Appends triples (data and/or schema) to the graph and installs a new
  /// snapshot under a fresh epoch. Data-only deltas are incremental
  /// (TripleStore::Merge + IncrementalSaturate); a delta containing schema
  /// triples triggers a full rebuild. In-flight queries finish on their
  /// pinned snapshot; the plan cache invalidates lazily via the epoch key.
  Status ApplyUpdate(const std::vector<Triple>& additions);

  /// Rebuilds the snapshot from the graph under a fresh epoch without adding
  /// anything — the hook for out-of-band graph changes made before the
  /// service existed, and a blunt full cache invalidation.
  void Refresh();

  /// Decodes one answer row to term strings under the same lock that guards
  /// dictionary growth, so servers can format results concurrently with
  /// AnswerText calls.
  std::vector<std::string> DecodeRow(const Relation& relation,
                                     size_t row) const;

  struct Stats {
    Epoch epoch = 0;
    QueryPlanCache::Stats cache;
    AdmissionController::Stats admission;
    ViewCatalogStats views;
  };
  Stats stats() const;

  Epoch epoch() const { return epoch_.Current(); }
  const EngineProfile& profile() const { return profile_; }
  const ServiceOptions& options() const { return options_; }

  /// The slow-query log (always present; empty when enable_slow_log is
  /// false). Shell `.slowlog` and the server's `!slowlog` read it;
  /// `set_threshold_ms` adjusts the cutoff at runtime.
  SlowQueryLog* slow_log() { return &slow_log_; }
  const SlowQueryLog* slow_log() const { return &slow_log_; }

  /// Entries currently in the active snapshot's estimate-feedback store.
  size_t feedback_entries() const { return CurrentSnapshot()->feedback.size(); }

  /// The materialized-view catalog (always present; only consulted by the
  /// answering paths when enable_views is set). Shell `.views` and the
  /// server's `!views` read it; tests drive it directly.
  ViewCatalog* views() { return &views_; }
  const ViewCatalog* views() const { return &views_; }

 private:
  /// One immutable database state: everything the answering pipeline reads.
  /// Built once per epoch, shared read-only afterwards; requests pin it with
  /// a shared_ptr so updates never invalidate memory under an evaluation.
  struct Snapshot {
    Snapshot(Epoch e, TripleStore d, TripleStore sat, Statistics st,
             Schema sch, bool enable_feedback)
        : epoch(e),
          data(std::move(d)),
          saturated(std::move(sat)),
          stats(std::move(st)),
          schema(std::move(sch)),
          estimator(&data, &stats) {
      if (enable_feedback) estimator.set_feedback(&feedback);
    }

    const Epoch epoch;
    const TripleStore data;
    const TripleStore saturated;
    const Statistics stats;
    const Schema schema;
    /// Estimate feedback scoped to this snapshot's data: born empty with
    /// each epoch, filled by evaluations against it. Mutable because
    /// requests hold the snapshot const — the store is internally
    /// synchronized.
    mutable EstimateFeedbackStore feedback;
    /// Points into this Snapshot's own data/stats (members initialize in
    /// declaration order; the snapshot is heap-pinned and never moved).
    /// Non-const only so the constructor can wire `feedback`; treated as
    /// immutable afterwards.
    CardinalityEstimator estimator;
  };

  std::shared_ptr<const Snapshot> CurrentSnapshot() const;
  void InstallSnapshot(std::shared_ptr<const Snapshot> snapshot);
  /// Full rebuild from the graph's current content. Caller holds graph_mu_.
  std::shared_ptr<const Snapshot> BuildSnapshotLocked(Epoch epoch) const;
  /// Replays the graph's constraint triples into a finalized Schema. Caller
  /// holds graph_mu_.
  Schema ReplaySchemaLocked() const;

  Result<ServiceOutcome> AnswerOnSnapshot(
      const CanonicalizedQuery& canonical,
      const std::shared_ptr<const Snapshot>& snapshot,
      const EngineProfile& request_profile);

  /// View maintenance at an epoch change (DESIGN.md §14): advances the
  /// catalog to `snapshot`'s epoch, handing it the data delta for the
  /// carry-forward test (`delta_is_complete` false on schema epochs, which
  /// forces a wholesale refresh), then re-materializes the returned pinned
  /// views against `snapshot` — with no resolver wired, so a refresh can
  /// never substitute the stale rows it is replacing.
  void MaintainViews(const std::shared_ptr<const Snapshot>& snapshot,
                     const std::vector<Triple>& data_delta,
                     bool delta_is_complete);

  Graph* const graph_;
  const EngineProfile profile_;
  const ServiceOptions options_;

  EpochCounter epoch_;
  QueryPlanCache cache_;
  AdmissionController admission_;
  SlowQueryLog slow_log_;
  ViewCatalog views_;
  ViewAdvisor view_advisor_;
  /// Queries answered since the last advisor pass (view_advisor_interval).
  std::atomic<uint64_t> advisor_tick_{0};

  /// Serializes dictionary/graph mutation (query parsing interns constants,
  /// updates append triples) and dictionary reads (DecodeRow).
  mutable std::mutex graph_mu_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Snapshot> snapshot_;
};

}  // namespace rdfopt

#endif  // RDFOPT_SERVICE_QUERY_SERVICE_H_
