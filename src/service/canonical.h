#ifndef RDFOPT_SERVICE_CANONICAL_H_
#define RDFOPT_SERVICE_CANONICAL_H_

#include <string>

#include "sparql/query.h"

namespace rdfopt {

/// A BGP query normalized into the service's cache identity.
///
/// Two parsed queries that differ only in variable names (α-equivalence) or
/// in the order of their triple patterns describe the same answering work:
/// the same reformulation, the same cover choice, the same physical plan.
/// Canonicalization maps both onto one representative so the plan cache sees
/// one key.
struct CanonicalizedQuery {
  /// The canonical form: variables renumbered 0..n-1 (head variables first,
  /// in head order; body-only variables in canonical atom order), atoms
  /// reordered canonically, with synthesized names "c0".."cN-1" so the query
  /// is answerable as-is (reformulation draws fresh "_f*" variables on top).
  Query query;
  /// Stable serialization of `query.cq` — the cache key (the cache pairs it
  /// with the data epoch). Equal keys imply literally identical canonical
  /// queries, hence identical answer rows in identical column order.
  std::string key;
};

/// Canonicalizes `cq`. Soundness is unconditional: the key is a
/// serialization of the canonical query itself, so a key collision *is*
/// syntactic equality of the canonical forms. Completeness (every pair of
/// α-equivalent / atom-permuted inputs mapping to one key) holds for the
/// practical case: variables are renamed by head position and first
/// canonical use, and atoms are picked greedily by a (constants, assigned
/// variables, local variable pattern) ranking that is independent of input
/// atom order. Queries with non-trivial automorphisms may canonicalize to
/// different-but-equivalent keys depending on input order — a missed cache
/// hit, never a wrong answer.
CanonicalizedQuery Canonicalize(const ConjunctiveQuery& cq);

}  // namespace rdfopt

#endif  // RDFOPT_SERVICE_CANONICAL_H_
