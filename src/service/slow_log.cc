#include "service/slow_log.h"

#include <cinttypes>
#include <cstdio>

#include "common/json_writer.h"
#include "common/metrics.h"
#include "engine/plan.h"

namespace rdfopt {

SlowQueryLog::SlowQueryLog(Options options)
    : options_(options), threshold_ms_(options.threshold_ms) {}

std::string SlowQueryLog::RenderLine(const Record& record) {
  JsonWriter json;
  json.BeginObject();
  json.Key("canonical").Value(record.canonical_query);
  json.Key("status").Value(record.status.ok() ? "ok"
                                              : record.status.ToString());
  json.Key("cache_hit").Value(record.cache_hit);
  json.Key("epoch").Value(static_cast<uint64_t>(record.epoch));
  // Hex string: a JSON number cannot carry a full uint64 losslessly.
  char digest[20];
  std::snprintf(digest, sizeof(digest), "%016" PRIx64, record.plan_digest);
  json.Key("plan_digest").Value(digest);
  json.Key("queue_wait_ms").Value(record.queue_wait_ms);
  json.Key("optimize_ms").Value(record.optimize_ms);
  json.Key("reformulate_ms").Value(record.reformulate_ms);
  json.Key("plan_ms").Value(record.plan_ms);
  json.Key("evaluate_ms").Value(record.evaluate_ms);
  json.Key("total_ms").Value(record.total_ms);
  json.Key("vector_width").Value(static_cast<uint64_t>(record.vector_width));
  json.Key("eval").BeginObject();
  json.Key("rows_scanned").Value(static_cast<uint64_t>(record.eval.rows_scanned));
  json.Key("join_input_rows")
      .Value(static_cast<uint64_t>(record.eval.join_input_rows));
  json.Key("hash_probes").Value(static_cast<uint64_t>(record.eval.hash_probes));
  json.Key("union_terms").Value(static_cast<uint64_t>(record.eval.union_terms));
  json.Key("rows_materialized")
      .Value(static_cast<uint64_t>(record.eval.rows_materialized));
  json.Key("bytes_materialized")
      .Value(static_cast<uint64_t>(record.eval.bytes_materialized));
  json.Key("duplicates_removed")
      .Value(static_cast<uint64_t>(record.eval.duplicates_removed));
  json.EndObject();
  json.Key("nodes").BeginArray();
  for (const PlanNodeStats& node : record.nodes) {
    json.BeginObject();
    json.Key("id").Value(node.id);
    json.Key("kind").Value(node.kind);
    if (node.shared_index >= 0) json.Key("shared").Value(node.shared_index);
    json.Key("rows").Value(static_cast<uint64_t>(node.actual_rows));
    json.Key("ms").Value(node.actual_ms);
    json.Key("scanned").Value(static_cast<uint64_t>(node.rows_scanned));
    json.Key("probes").Value(static_cast<uint64_t>(node.hash_probes));
    json.Key("bytes").Value(static_cast<uint64_t>(node.bytes_materialized));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

void SlowQueryLog::MaybeRecord(const Record& record) {
  const bool qualifies =
      !record.status.ok() || record.total_ms >= threshold_ms();
  if (!qualifies) return;

  static MetricCounter* slow_queries =
      MetricsRegistry::Global().GetCounter("service.slow_queries");
  static MetricCounter* sampled_out =
      MetricsRegistry::Global().GetCounter("service.slow_log_sampled_out");
  slow_queries->Increment();

  const uint64_t seq =
      qualifying_.fetch_add(1, std::memory_order_relaxed);
  const size_t every = options_.sample_every == 0 ? 1 : options_.sample_every;
  if (seq % every != 0) {
    sampled_out->Increment();
    return;
  }

  std::string line = RenderLine(record);
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(std::move(line));
  while (lines_.size() > options_.capacity) lines_.pop_front();
}

std::vector<std::string> SlowQueryLog::Lines(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = lines_.size();
  if (max > 0 && max < n) n = max;
  return {lines_.end() - static_cast<ptrdiff_t>(n), lines_.end()};
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

std::vector<PlanNodeStats> CollectNodeStats(const PhysicalPlan& plan) {
  std::vector<PlanNodeStats> out;
  out.reserve(static_cast<size_t>(plan.num_nodes));
  plan.ForEachNode([&out](const PlanNode& node) {
    if (!node.executed) return;
    PlanNodeStats stats;
    stats.id = node.id;
    stats.kind = PlanNodeKindName(node.kind);
    stats.shared_index = node.shared_index;
    stats.actual_rows = node.actual_rows;
    stats.actual_ms = node.actual_ms;
    stats.rows_scanned = node.rows_scanned;
    stats.hash_probes = node.hash_probes;
    stats.bytes_materialized = node.bytes_materialized;
    out.push_back(stats);
  });
  return out;
}

}  // namespace rdfopt
