#include "service/query_cache.h"

#include "service/epoch_guard.h"

namespace rdfopt {

namespace {

size_t AtomsBytes(const std::vector<ConjunctiveQuery>& disjuncts) {
  size_t bytes = 0;
  for (const ConjunctiveQuery& cq : disjuncts) {
    bytes += sizeof(ConjunctiveQuery);
    bytes += cq.atoms.capacity() * sizeof(TriplePattern);
    bytes += cq.head.capacity() * sizeof(VarId);
    bytes += cq.head_bindings.capacity() * sizeof(std::pair<VarId, ValueId>);
  }
  return bytes;
}

}  // namespace

size_t EstimatePlanBytes(const PhysicalPlan& plan) {
  size_t bytes = sizeof(PhysicalPlan);
  plan.ForEachNode([&bytes](const PlanNode& node) {
    bytes += sizeof(PlanNode);
    bytes += node.children.capacity() * sizeof(std::unique_ptr<PlanNode>);
    bytes += node.head.capacity() * sizeof(VarId);
    bytes += node.out_columns.capacity() * sizeof(VarId);
    bytes += node.bindings.capacity() * sizeof(std::pair<VarId, ValueId>);
    bytes += AtomsBytes(node.disjuncts);
  });
  return bytes;
}

std::shared_ptr<const CachedPlanEntry> QueryPlanCache::Get(
    const std::string& key, Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || it->second->second->epoch != epoch) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

size_t QueryPlanCache::Put(const std::string& key,
                           std::shared_ptr<const CachedPlanEntry> entry,
                           Epoch current_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!EpochWriteAdmissible(entry->epoch, current_epoch)) {
    ++stale_puts_;
    return 0;
  }
  if (entry->bytes > max_bytes_) return 0;  // Would evict everything for one.
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Same canonical query re-inserted: either a stale-epoch entry being
    // replaced by a fresh one, or two concurrent misses of the same query.
    // The newcomer wins; the old shared_ptr stays valid for its holders.
    bytes_ -= it->second->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  bytes_ += entry->bytes;
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  const uint64_t before = evictions_;
  EvictUntilWithinBudget(max_bytes_);
  return static_cast<size_t>(evictions_ - before);
}

void QueryPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  EvictUntilWithinBudget(0);
}

QueryPlanCache::Stats QueryPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.stale_puts = stale_puts_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void QueryPlanCache::EvictUntilWithinBudget(size_t budget) {
  while (bytes_ > budget && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.second->bytes;
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace rdfopt
