#ifndef RDFOPT_SPARQL_QUERY_H_
#define RDFOPT_SPARQL_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/term.h"

namespace rdfopt {

/// Index of a query variable inside its query's VarTable.
using VarId = uint32_t;

/// One position of a triple pattern: a variable or a dictionary-encoded
/// constant. Blank nodes in queries are treated as non-distinguished
/// variables (paper §2.2), so only these two cases exist.
class PatternTerm {
 public:
  /// Default: an invalid constant (kInvalidValueId); matches nothing.
  PatternTerm() : is_var_(false), id_(kInvalidValueId) {}

  static PatternTerm Var(VarId v) { return PatternTerm(true, v); }
  static PatternTerm Const(ValueId c) { return PatternTerm(false, c); }

  bool is_var() const { return is_var_; }
  VarId var() const { return id_; }
  ValueId value() const { return id_; }

  bool operator==(const PatternTerm& other) const = default;
  auto operator<=>(const PatternTerm& other) const = default;

 private:
  PatternTerm(bool is_var, uint32_t id) : is_var_(is_var), id_(id) {}

  bool is_var_;
  uint32_t id_;
};

/// A triple pattern (query atom): subject, property, object.
struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  bool operator==(const TriplePattern& other) const = default;
  auto operator<=>(const TriplePattern& other) const = default;

  /// Variables of this atom, in s,p,o position order (duplicates possible).
  void AppendVariables(std::vector<VarId>* out) const;

  /// True iff the two atoms share at least one variable (the join condition
  /// of cover fragments, paper Def. 3.3).
  bool SharesVariableWith(const TriplePattern& other) const;
};

/// Names of a query's variables; VarId is an index into this table.
/// Reformulation extends it with fresh non-distinguished variables.
class VarTable {
 public:
  /// Id of `name`, creating it if new.
  VarId GetOrCreate(std::string_view name);

  /// A fresh variable, named uniquely ("_f0", "_f1", ...).
  VarId Fresh();

  const std::string& name(VarId v) const { return names_[v]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  uint64_t next_fresh_ = 0;
};

/// A conjunctive query q(head) :- atoms (a BGP query, paper §2.2). The head
/// variables are the distinguished variables.
///
/// `head_bindings` supports reformulation-time instantiation of
/// distinguished variables: in paper Example 4, `q(x, y) :- x rdf:type y`
/// reformulates to disjuncts like `q(x, Book) :- x writtenBy z`, where the
/// head variable y no longer occurs in any atom but is fixed to the constant
/// Book. Such disjuncts keep y in `head` and record (y -> Book) here; the
/// evaluator emits the constant column. Parsed queries have no bindings.
struct ConjunctiveQuery {
  std::vector<VarId> head;
  std::vector<TriplePattern> atoms;
  std::vector<std::pair<VarId, ValueId>> head_bindings;

  bool operator==(const ConjunctiveQuery& other) const = default;

  /// All variables occurring in the atoms, deduplicated, sorted.
  std::vector<VarId> AllVariables() const;

  /// True iff the atoms form one variable-connected component (no cartesian
  /// product). Single-atom queries are connected.
  bool IsConnected() const;
};

/// A union of conjunctive queries with a common head.
struct UnionQuery {
  std::vector<VarId> head;
  std::vector<ConjunctiveQuery> disjuncts;

  size_t size() const { return disjuncts.size(); }
};

/// A join of UCQs (paper Def. 3.1): the generalization containing UCQ
/// (one component) and SCQ (one single-atom-rooted component per atom) as
/// extreme points.
struct JoinOfUnions {
  std::vector<VarId> head;
  std::vector<UnionQuery> components;
};

/// A parsed query: the root CQ plus its variable names.
struct Query {
  VarTable vars;
  ConjunctiveQuery cq;

  size_t num_atoms() const { return cq.atoms.size(); }
};

/// Canonical string key of a CQ for duplicate elimination, invariant under
/// renaming of variables with id >= `num_original_vars` (the fresh variables
/// introduced by reformulation): such variables are renumbered in first
/// occurrence order.
std::string CanonicalKey(const ConjunctiveQuery& cq, size_t num_original_vars);

/// 64-bit hash of CanonicalKey's equivalence class, computed without
/// building the string; used on the hot reformulation path where hundreds
/// of thousands of disjuncts are deduplicated (hash collisions would only
/// drop a duplicate-equivalent disjunct with probability ~N²/2^64).
uint64_t CanonicalHash(const ConjunctiveQuery& cq, size_t num_original_vars);

}  // namespace rdfopt

#endif  // RDFOPT_SPARQL_QUERY_H_
