#include "sparql/query.h"

#include <algorithm>
#include <unordered_map>

namespace rdfopt {

void TriplePattern::AppendVariables(std::vector<VarId>* out) const {
  if (s.is_var()) out->push_back(s.var());
  if (p.is_var()) out->push_back(p.var());
  if (o.is_var()) out->push_back(o.var());
}

bool TriplePattern::SharesVariableWith(const TriplePattern& other) const {
  std::vector<VarId> mine;
  AppendVariables(&mine);
  std::vector<VarId> theirs;
  other.AppendVariables(&theirs);
  for (VarId v : mine) {
    for (VarId w : theirs) {
      if (v == w) return true;
    }
  }
  return false;
}

VarId VarTable::GetOrCreate(std::string_view name) {
  for (VarId v = 0; v < names_.size(); ++v) {
    if (names_[v] == name) return v;
  }
  names_.emplace_back(name);
  return static_cast<VarId>(names_.size() - 1);
}

VarId VarTable::Fresh() {
  // Fresh names start with '_', which the parser rejects in user variables,
  // so collisions with user names are impossible.
  names_.push_back("_f" + std::to_string(next_fresh_++));
  return static_cast<VarId>(names_.size() - 1);
}

std::vector<VarId> ConjunctiveQuery::AllVariables() const {
  std::vector<VarId> vars;
  for (const TriplePattern& atom : atoms) atom.AppendVariables(&vars);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

bool ConjunctiveQuery::IsConnected() const {
  if (atoms.size() <= 1) return true;
  // Union-find over atoms joined by shared variables.
  std::vector<size_t> parent(atoms.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms[i].SharesVariableWith(atoms[j])) {
        parent[find(i)] = find(j);
      }
    }
  }
  size_t root = find(0);
  for (size_t i = 1; i < atoms.size(); ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

uint64_t CanonicalHash(const ConjunctiveQuery& cq,
                       size_t num_original_vars) {
  uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ull;
    h ^= h >> 29;
  };
  // Fresh variables renumbered in first-occurrence order, like CanonicalKey.
  std::unordered_map<VarId, uint32_t> fresh_rename;
  auto mix_term = [&](const PatternTerm& t) {
    if (!t.is_var()) {
      mix(0xC0000000ull | t.value());
      return;
    }
    if (t.var() < num_original_vars) {
      mix(0x80000000ull | t.var());
      return;
    }
    auto it = fresh_rename
                  .emplace(t.var(), static_cast<uint32_t>(fresh_rename.size()))
                  .first;
    mix(0x40000000ull | it->second);
  };
  for (VarId v : cq.head) mix(0x10000000ull | v);
  for (const auto& [v, c] : cq.head_bindings) {
    mix(0x20000000ull | v);
    mix(c);
  }
  for (const TriplePattern& atom : cq.atoms) {
    mix_term(atom.s);
    mix_term(atom.p);
    mix_term(atom.o);
  }
  return h;
}

std::string CanonicalKey(const ConjunctiveQuery& cq,
                         size_t num_original_vars) {
  std::unordered_map<VarId, uint32_t> fresh_rename;
  auto term_key = [&](const PatternTerm& t) -> std::string {
    if (!t.is_var()) return "c" + std::to_string(t.value());
    if (t.var() < num_original_vars) return "v" + std::to_string(t.var());
    auto it = fresh_rename
                  .emplace(t.var(), static_cast<uint32_t>(fresh_rename.size()))
                  .first;
    return "f" + std::to_string(it->second);
  };
  std::string key;
  for (VarId v : cq.head) {
    key += "h" + std::to_string(v) + ",";
  }
  key += "|";
  for (const auto& [v, c] : cq.head_bindings) {
    key += "b" + std::to_string(v) + "=" + std::to_string(c) + ",";
  }
  key += "|";
  for (const TriplePattern& atom : cq.atoms) {
    key += term_key(atom.s) + " " + term_key(atom.p) + " " + term_key(atom.o) +
           ". ";
  }
  return key;
}

}  // namespace rdfopt
