#ifndef RDFOPT_SPARQL_PRINTER_H_
#define RDFOPT_SPARQL_PRINTER_H_

#include <string>

#include "rdf/dictionary.h"
#include "sparql/query.h"

namespace rdfopt {

/// Human-readable renderings of queries, used by examples, diagnostics and
/// test failure messages. Variables print as `?name`, constants in their
/// canonical N-Triples encoding.

std::string ToString(const PatternTerm& term, const VarTable& vars,
                     const Dictionary& dict);

std::string ToString(const TriplePattern& atom, const VarTable& vars,
                     const Dictionary& dict);

/// `q(?x, ?y) :- ?x <p> ?y . ?y a <C> .`
std::string ToString(const ConjunctiveQuery& cq, const VarTable& vars,
                     const Dictionary& dict);

/// One disjunct per line, prefixed by `UNION`.
std::string ToString(const UnionQuery& ucq, const VarTable& vars,
                     const Dictionary& dict);

/// Structural summary: heads and per-component disjunct counts; full CQ
/// listings for small components.
std::string ToString(const JoinOfUnions& jucq, const VarTable& vars,
                     const Dictionary& dict);

std::string ToString(const Query& query, const Dictionary& dict);

}  // namespace rdfopt

#endif  // RDFOPT_SPARQL_PRINTER_H_
