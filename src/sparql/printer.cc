#include "sparql/printer.h"

namespace rdfopt {

std::string ToString(const PatternTerm& term, const VarTable& vars,
                     const Dictionary& dict) {
  if (term.is_var()) return "?" + vars.name(term.var());
  return dict.term(term.value()).Encoded();
}

std::string ToString(const TriplePattern& atom, const VarTable& vars,
                     const Dictionary& dict) {
  return ToString(atom.s, vars, dict) + " " + ToString(atom.p, vars, dict) +
         " " + ToString(atom.o, vars, dict);
}

namespace {

std::string HeadToString(const std::vector<VarId>& head,
                         const VarTable& vars) {
  std::string out = "q(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += "?" + vars.name(head[i]);
  }
  out += ")";
  return out;
}

}  // namespace

std::string ToString(const ConjunctiveQuery& cq, const VarTable& vars,
                     const Dictionary& dict) {
  std::string out = HeadToString(cq.head, vars) + " :- ";
  for (size_t i = 0; i < cq.atoms.size(); ++i) {
    if (i > 0) out += " . ";
    out += ToString(cq.atoms[i], vars, dict);
  }
  return out;
}

std::string ToString(const UnionQuery& ucq, const VarTable& vars,
                     const Dictionary& dict) {
  std::string out;
  for (size_t i = 0; i < ucq.disjuncts.size(); ++i) {
    if (i > 0) out += "\nUNION ";
    out += ToString(ucq.disjuncts[i], vars, dict);
  }
  return out;
}

std::string ToString(const JoinOfUnions& jucq, const VarTable& vars,
                     const Dictionary& dict) {
  constexpr size_t kFullListingLimit = 8;
  std::string out = "JUCQ " + HeadToString(jucq.head, vars) + " = JOIN of " +
                    std::to_string(jucq.components.size()) + " UCQ(s):\n";
  for (size_t i = 0; i < jucq.components.size(); ++i) {
    const UnionQuery& component = jucq.components[i];
    out += "  [" + std::to_string(i) + "] " +
           HeadToString(component.head, vars) + ", " +
           std::to_string(component.size()) + " disjunct(s)";
    if (component.size() <= kFullListingLimit) {
      out += ":\n";
      for (const ConjunctiveQuery& cq : component.disjuncts) {
        out += "      " + ToString(cq, vars, dict) + "\n";
      }
    } else {
      out += " (listing elided)\n";
    }
  }
  return out;
}

std::string ToString(const Query& query, const Dictionary& dict) {
  return ToString(query.cq, query.vars, dict);
}

}  // namespace rdfopt
