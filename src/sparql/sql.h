#ifndef RDFOPT_SPARQL_SQL_H_
#define RDFOPT_SPARQL_SQL_H_

#include <string>

#include "sparql/query.h"

namespace rdfopt {

/// SQL generation over the paper's relational encoding (§5.1): a
/// dictionary-encoded table `Triples(s, p, o)` (integers) plus a dictionary
/// table `Dict(id, value)`. This is how the paper deploys reformulations on
/// PostgreSQL/DB2/MySQL; downstream users with a real RDBMS can ship the
/// JUCQ chosen by GCov as one SQL statement.
///
/// Shapes produced:
///  * CQ    -> SELECT DISTINCT ... FROM triples t0, triples t1 WHERE ...
///  * UCQ   -> SELECT ... UNION SELECT ... (set semantics = UNION)
///  * JUCQ  -> SELECT DISTINCT ... FROM (<ucq>) f0, (<ucq>) f1
///             WHERE f0.x = f1.x ...
///
/// Head variables bound to constants by reformulation (head_bindings) become
/// literal select items, exactly like the q(x, Book) disjuncts of Example 4.
struct SqlOptions {
  std::string triples_table = "triples";
  std::string dict_table = "dict";
  /// Wrap the query in a final join against the dictionary, returning
  /// lexical values instead of integer ids.
  bool decode_values = false;
  /// Pretty-print with newlines between clauses/terms.
  bool pretty = true;
};

/// Column-safe identifier for a query variable ("x", "v_1", ...).
std::string SqlColumnName(VarId var, const VarTable& vars);

std::string ToSql(const ConjunctiveQuery& cq, const VarTable& vars,
                  const SqlOptions& options = {});

std::string ToSql(const UnionQuery& ucq, const VarTable& vars,
                  const SqlOptions& options = {});

std::string ToSql(const JoinOfUnions& jucq, const VarTable& vars,
                  const SqlOptions& options = {});

}  // namespace rdfopt

#endif  // RDFOPT_SPARQL_SQL_H_
