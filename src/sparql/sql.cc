#include "sparql/sql.h"

#include <cctype>
#include <vector>

#include "common/check.h"

namespace rdfopt {

namespace {

const char* Sep(const SqlOptions& options) {
  return options.pretty ? "\n" : " ";
}

// Occurrence of a variable: atom index + position (0=s, 1=p, 2=o).
struct Occurrence {
  int atom = -1;
  int pos = -1;
  bool valid() const { return atom >= 0; }
};

const char* kPosColumn[3] = {"s", "p", "o"};

Occurrence FirstOccurrence(const ConjunctiveQuery& cq, VarId var) {
  for (size_t a = 0; a < cq.atoms.size(); ++a) {
    const PatternTerm* terms[3] = {&cq.atoms[a].s, &cq.atoms[a].p,
                                   &cq.atoms[a].o};
    for (int p = 0; p < 3; ++p) {
      if (terms[p]->is_var() && terms[p]->var() == var) {
        return Occurrence{static_cast<int>(a), p};
      }
    }
  }
  return Occurrence{};
}

std::string Ref(const Occurrence& occ) {
  return "t" + std::to_string(occ.atom) + "." + kPosColumn[occ.pos];
}

}  // namespace

std::string SqlColumnName(VarId var, const VarTable& vars) {
  std::string name = vars.name(var);
  std::string out;
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "v" + out;
  }
  return out;
}

std::string ToSql(const ConjunctiveQuery& cq, const VarTable& vars,
                  const SqlOptions& options) {
  RDFOPT_CHECK(!cq.atoms.empty()) << "ToSql of an atom-less CQ";
  const char* sep = Sep(options);

  std::string select = "SELECT DISTINCT ";
  if (cq.head.empty()) {
    select += "1 AS ask";
  }
  for (size_t i = 0; i < cq.head.size(); ++i) {
    if (i > 0) select += ", ";
    VarId var = cq.head[i];
    Occurrence occ = FirstOccurrence(cq, var);
    if (occ.valid()) {
      select += Ref(occ);
    } else {
      // Bound by reformulation-time instantiation.
      ValueId value = kInvalidValueId;
      for (const auto& [v, c] : cq.head_bindings) {
        if (v == var) value = c;
      }
      RDFOPT_CHECK(value != kInvalidValueId) << "unbound head variable";
      select += std::to_string(value);
    }
    select += " AS " + SqlColumnName(var, vars);
  }

  std::string from = "FROM ";
  for (size_t a = 0; a < cq.atoms.size(); ++a) {
    if (a > 0) from += ", ";
    from += options.triples_table + " t" + std::to_string(a);
  }

  std::vector<std::string> predicates;
  for (size_t a = 0; a < cq.atoms.size(); ++a) {
    const PatternTerm* terms[3] = {&cq.atoms[a].s, &cq.atoms[a].p,
                                   &cq.atoms[a].o};
    for (int p = 0; p < 3; ++p) {
      std::string lhs = "t" + std::to_string(a) + "." + kPosColumn[p];
      if (!terms[p]->is_var()) {
        predicates.push_back(lhs + " = " + std::to_string(terms[p]->value()));
        continue;
      }
      VarId var = terms[p]->var();
      Occurrence first = FirstOccurrence(cq, var);
      if (first.atom == static_cast<int>(a) && first.pos == p) {
        continue;  // Defining occurrence.
      }
      predicates.push_back(lhs + " = " + Ref(first));
    }
  }

  std::string sql = select + sep + from;
  if (!predicates.empty()) {
    sql += sep;
    sql += "WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += predicates[i];
    }
  }
  return sql;
}

std::string ToSql(const UnionQuery& ucq, const VarTable& vars,
                  const SqlOptions& options) {
  RDFOPT_CHECK(!ucq.disjuncts.empty()) << "ToSql of an empty union";
  const char* sep = Sep(options);
  std::string sql;
  for (size_t i = 0; i < ucq.disjuncts.size(); ++i) {
    if (i > 0) {
      sql += sep;
      sql += "UNION";  // Set semantics, as the paper requires.
      sql += sep;
    }
    sql += ToSql(ucq.disjuncts[i], vars, options);
  }
  return sql;
}

std::string ToSql(const JoinOfUnions& jucq, const VarTable& vars,
                  const SqlOptions& options) {
  RDFOPT_CHECK(!jucq.components.empty()) << "ToSql of a component-less JUCQ";
  const char* sep = Sep(options);

  // Which component first exposes each variable?
  auto component_of = [&](VarId var) -> int {
    for (size_t c = 0; c < jucq.components.size(); ++c) {
      for (VarId v : jucq.components[c].head) {
        if (v == var) return static_cast<int>(c);
      }
    }
    return -1;
  };

  std::string select = "SELECT DISTINCT ";
  if (jucq.head.empty()) select += "1 AS ask";
  for (size_t i = 0; i < jucq.head.size(); ++i) {
    if (i > 0) select += ", ";
    int c = component_of(jucq.head[i]);
    RDFOPT_CHECK(c >= 0) << "JUCQ head variable not exposed by any component";
    std::string column = SqlColumnName(jucq.head[i], vars);
    select += "f" + std::to_string(c) + "." + column + " AS " + column;
  }

  std::string from = "FROM ";
  for (size_t c = 0; c < jucq.components.size(); ++c) {
    if (c > 0) from += ", ";
    from += "(";
    from += Sep(options);
    from += ToSql(jucq.components[c], vars, options);
    from += Sep(options);
    from += ") f" + std::to_string(c);
  }

  // Join predicates: every later exposure of a variable equals its first.
  std::vector<std::string> predicates;
  for (size_t c = 1; c < jucq.components.size(); ++c) {
    for (VarId v : jucq.components[c].head) {
      int first = component_of(v);
      if (first >= 0 && first < static_cast<int>(c)) {
        std::string column = SqlColumnName(v, vars);
        predicates.push_back("f" + std::to_string(c) + "." + column + " = f" +
                             std::to_string(first) + "." + column);
      }
    }
  }

  std::string sql = select + sep + from;
  if (!predicates.empty()) {
    sql += sep;
    sql += "WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += predicates[i];
    }
  }

  if (options.decode_values) {
    // Wrap: join each output column against the dictionary.
    std::string outer = "SELECT ";
    for (size_t i = 0; i < jucq.head.size(); ++i) {
      if (i > 0) outer += ", ";
      std::string column = SqlColumnName(jucq.head[i], vars);
      outer += "d_" + column + ".value AS " + column;
    }
    if (jucq.head.empty()) outer += "q.ask AS ask";
    outer += sep;
    outer += "FROM (" + std::string(sep) + sql + sep + ") q";
    for (VarId v : jucq.head) {
      std::string column = SqlColumnName(v, vars);
      outer += ", " + options.dict_table + " d_" + column;
    }
    if (!jucq.head.empty()) {
      outer += sep;
      outer += "WHERE ";
      for (size_t i = 0; i < jucq.head.size(); ++i) {
        if (i > 0) outer += " AND ";
        std::string column = SqlColumnName(jucq.head[i], vars);
        outer += "d_" + column + ".id = q." + column;
      }
    }
    return outer;
  }
  return sql;
}

}  // namespace rdfopt
