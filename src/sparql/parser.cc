#include "sparql/parser.h"

#include <cctype>
#include <unordered_map>

#include "rdf/vocabulary.h"

namespace rdfopt {

namespace {

bool IsNameStart(char c) { return std::isalpha(static_cast<unsigned char>(c)); }
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

// ASCII-case-insensitive keyword comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// Propagates an error Status into any Result<T> return type.
#define PARSER_RETURN_NOT_OK(expr)        \
  do {                                    \
    ::rdfopt::Status _st = (expr);        \
    if (!_st.ok()) return _st;            \
  } while (0)
// Unpacks a Result expression or propagates its error Status.
#define PARSER_ASSIGN_OR_RETURN(lhs, expr) \
  {                                        \
    auto _res = (expr);                    \
    if (!_res.ok()) return _res.status();  \
    lhs = _res.TakeValue();                \
  }

class Parser {
 public:
  Parser(std::string_view text, Dictionary* dict) : text_(text), dict_(dict) {
    prefixes_["rdf"] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    prefixes_["rdfs"] = "http://www.w3.org/2000/01/rdf-schema#";
  }

  Result<Query> Parse() {
    Query query;
    PARSER_RETURN_NOT_OK(ParsePrefixes());
    SkipWs();
    bool is_ask = false;
    if (TryKeyword("ASK")) {
      is_ask = true;
    } else if (!TryKeyword("SELECT")) {
      return Error("expected SELECT or ASK");
    }
    if (!is_ask) {
      for (;;) {
        SkipWs();
        if (Peek() != '?') break;
        std::string name;
        PARSER_RETURN_NOT_OK(ReadVarName(&name));
        query.cq.head.push_back(query.vars.GetOrCreate(name));
      }
      if (query.cq.head.empty()) {
        return Error(
            "SELECT requires at least one variable (use ASK for boolean "
            "queries)");
      }
    }
    if (!TryKeyword("WHERE")) return Error("expected WHERE");
    SkipWs();
    if (!TryConsume('{')) return Error("expected '{'");
    for (;;) {
      SkipWs();
      if (TryConsume('}')) break;
      TriplePattern atom{PatternTerm::Const(0), PatternTerm::Const(0),
                         PatternTerm::Const(0)};
      PARSER_ASSIGN_OR_RETURN(atom.s, ParsePatternTerm(&query, false));
      PARSER_ASSIGN_OR_RETURN(atom.p, ParsePatternTerm(&query, true));
      PARSER_ASSIGN_OR_RETURN(atom.o, ParsePatternTerm(&query, false));
      query.cq.atoms.push_back(atom);
      SkipWs();
      if (TryConsume('.')) continue;
      SkipWs();
      if (TryConsume('}')) break;
      return Error("expected '.' or '}' after triple pattern");
    }
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content after query");
    if (query.cq.atoms.empty()) return Error("empty BGP");

    // Every head variable must be bound by some atom.
    std::vector<VarId> body_vars = query.cq.AllVariables();
    for (VarId v : query.cq.head) {
      bool found = false;
      for (VarId w : body_vars) found |= (w == v);
      if (!found) {
        return Error("head variable ?" + query.vars.name(v) +
                     " does not occur in the BGP");
      }
    }
    return query;
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool TryConsume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool TryKeyword(std::string_view kw) {
    SkipWs();
    if (pos_ + kw.size() > text_.size()) return false;
    std::string_view candidate = text_.substr(pos_, kw.size());
    if (!EqualsIgnoreCase(candidate, kw)) return false;
    size_t after = pos_ + kw.size();
    if (after < text_.size() && IsNameChar(text_[after])) return false;
    pos_ = after;
    return true;
  }

  Status ReadVarName(std::string* out) {
    if (Peek() != '?') return Error("expected '?'");
    ++pos_;
    if (!IsNameStart(Peek())) {
      return Error("variable name must start with a letter");
    }
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    *out = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParsePrefixes() {
    for (;;) {
      if (!TryKeyword("PREFIX")) return Status::OK();
      SkipWs();
      size_t start = pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
      std::string pname(text_.substr(start, pos_ - start));
      if (pname.empty() || !TryConsume(':')) {
        return Error("malformed PREFIX declaration");
      }
      SkipWs();
      if (!TryConsume('<')) return Error("expected '<' after prefix");
      size_t iri_start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
      if (pos_ == text_.size()) return Error("unterminated IRI");
      prefixes_[pname] = std::string(text_.substr(iri_start, pos_ - iri_start));
      ++pos_;  // '>'
    }
  }

  Result<PatternTerm> ParsePatternTerm(Query* query, bool property_position) {
    SkipWs();
    char c = Peek();
    if (c == '?') {
      std::string name;
      PARSER_RETURN_NOT_OK(ReadVarName(&name));
      return PatternTerm::Var(query->vars.GetOrCreate(name));
    }
    if (c == '<') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
      if (pos_ == text_.size()) return Result<PatternTerm>(
          Error("unterminated IRI"));
      std::string iri(text_.substr(start, pos_ - start));
      ++pos_;
      return PatternTerm::Const(dict_->InternIri(iri));
    }
    if (c == '"') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ == text_.size()) return Result<PatternTerm>(
          Error("unterminated literal"));
      std::string lit(text_.substr(start, pos_ - start));
      ++pos_;
      return PatternTerm::Const(dict_->InternLiteral(lit));
    }
    if (IsNameStart(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
      std::string name(text_.substr(start, pos_ - start));
      if (Peek() == ':') {
        ++pos_;
        size_t lstart = pos_;
        while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
        std::string local(text_.substr(lstart, pos_ - lstart));
        auto it = prefixes_.find(name);
        if (it == prefixes_.end()) {
          return Result<PatternTerm>(Error("undeclared prefix '" + name +
                                           ":'"));
        }
        return PatternTerm::Const(dict_->InternIri(it->second + local));
      }
      if (property_position && name == "a") {
        return PatternTerm::Const(
            dict_->InternIri(std::string(kRdfType)));
      }
      return Result<PatternTerm>(
          Error("bare name '" + name + "' is not a valid term"));
    }
    return Result<PatternTerm>(
        Error(std::string("unexpected character '") + c + "'"));
  }

  Status Error(std::string msg) const {
    return Status::ParseError("query position " + std::to_string(pos_) + ": " +
                              std::move(msg));
  }

  std::string_view text_;
  Dictionary* dict_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

#undef PARSER_RETURN_NOT_OK
#undef PARSER_ASSIGN_OR_RETURN

}  // namespace

Result<Query> ParseQuery(std::string_view text, Dictionary* dict) {
  Parser parser(text, dict);
  return parser.Parse();
}

}  // namespace rdfopt
