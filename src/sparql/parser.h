#ifndef RDFOPT_SPARQL_PARSER_H_
#define RDFOPT_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "sparql/query.h"

namespace rdfopt {

/// Parses the BGP (conjunctive) subset of SPARQL the paper targets (§2.2).
///
/// Grammar (keywords case-insensitive):
///
///   query    := prefix* (select | ask)
///   prefix   := 'PREFIX' pname ':' '<' iri '>'
///   select   := 'SELECT' var+ 'WHERE' '{' patterns '}'
///   ask      := 'ASK' 'WHERE' '{' patterns '}'          (boolean query)
///   patterns := pattern ('.' pattern)* '.'?
///   pattern  := pterm pterm pterm
///   pterm    := var | '<' iri '>' | pname ':' local | '"' chars '"'
///             | 'a'                                     (= rdf:type)
///   var      := '?' [A-Za-z][A-Za-z0-9_]*
///
/// The `rdf:` and `rdfs:` prefixes are predeclared. Constants are interned
/// into `dict` (a constant absent from the data simply matches nothing).
/// Every head variable must occur in some pattern. Blank nodes in queries are
/// not accepted; per the paper they are equivalent to fresh
/// non-distinguished variables, so use a variable instead.
Result<Query> ParseQuery(std::string_view text, Dictionary* dict);

}  // namespace rdfopt

#endif  // RDFOPT_SPARQL_PARSER_H_
