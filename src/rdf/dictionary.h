#ifndef RDFOPT_RDF_DICTIONARY_H_
#define RDFOPT_RDF_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace rdfopt {

/// Two-way mapping between RDF values and dense integer ids.
///
/// Mirrors the paper's setup (§5.1): "the Triples(s,p,o) table's data are
/// dictionary-encoded, using a unique integer for each distinct value. The
/// dictionary is stored as a separate table, indexed both by the code and by
/// the encoded value." Here the code->value index is a vector and the
/// value->code index a hash map over the canonical term encoding.
class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id of `term`, inserting it if absent. Ids are dense and
  /// assigned in first-seen order.
  ValueId Intern(const Term& term);

  /// Shorthand interners for the common kinds.
  ValueId InternIri(std::string_view iri) {
    return Intern(Term::Iri(std::string(iri)));
  }
  ValueId InternLiteral(std::string_view value) {
    return Intern(Term::Literal(std::string(value)));
  }
  ValueId InternBlank(std::string_view label) {
    return Intern(Term::Blank(std::string(label)));
  }

  /// Returns the id of `term`, or kInvalidValueId if it was never interned.
  ValueId Lookup(const Term& term) const;
  ValueId LookupIri(std::string_view iri) const;

  /// Decodes an id. Asserts on out-of-range ids in debug builds.
  const Term& term(ValueId id) const { return terms_[id]; }

  bool Contains(ValueId id) const { return id < terms_.size(); }
  size_t size() const { return terms_.size(); }

  /// Allocates a fresh blank node, guaranteed distinct from all existing
  /// values; used by the saturation reasoner and tests.
  ValueId FreshBlank();

 private:
  std::vector<Term> terms_;
  // Keyed by Term::Encoded(); owns its key strings.
  std::unordered_map<std::string, ValueId> index_;
  uint64_t next_blank_ = 0;
};

}  // namespace rdfopt

#endif  // RDFOPT_RDF_DICTIONARY_H_
