#include "rdf/hierarchy_encoding.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace rdfopt {

namespace {

/// DFS-preorder hid assignment over one subsumption space (classes or
/// properties). Roots are nodes without direct supers, visited in ValueId
/// order; children in sorted ValueId order; a node already visited through
/// an earlier parent is skipped (first-parent ownership). Nodes reachable
/// only through a cycle have no root above them — a leftover pass promotes
/// them, in ValueId order, to roots of their own.
void BuildSpace(
    const std::vector<ValueId>& all_nodes,  // sorted
    const std::function<std::vector<ValueId>(ValueId)>& direct_subs,
    const std::function<std::vector<ValueId>(ValueId)>& direct_supers,
    const std::function<std::vector<ValueId>(ValueId)>& closure,
    std::unordered_map<ValueId, uint32_t>* hid_of,
    std::vector<ValueId>* by_hid,
    std::unordered_map<ValueId, HierarchyInterval>* interval_of,
    std::unordered_map<ValueId, std::vector<ValueId>>* residuals_of) {
  by_hid->reserve(all_nodes.size());
  uint32_t counter = 0;
  std::unordered_set<ValueId> visited;

  struct Frame {
    ValueId node;
    std::vector<ValueId> kids;
    size_t next = 0;
  };
  std::vector<Frame> stack;

  auto enter = [&](ValueId node) {
    visited.insert(node);
    uint32_t hid = counter++;
    (*hid_of)[node] = hid;
    by_hid->push_back(node);
    (*interval_of)[node].lo = hid;
    stack.push_back(Frame{node, direct_subs(node), 0});
  };

  auto dfs_from = [&](ValueId root) {
    if (visited.count(root)) return;
    enter(root);
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next >= top.kids.size()) {
        (*interval_of)[top.node].hi = counter;
        stack.pop_back();
        continue;
      }
      ValueId kid = top.kids[top.next++];
      // `enter` may reallocate the stack; do not touch `top` after it.
      if (!visited.count(kid)) enter(kid);
    }
  };

  for (ValueId node : all_nodes) {
    if (direct_supers(node).empty()) dfs_from(node);
  }
  // Cycle-only components: every member has a direct super, so none was a
  // root above. Promote the smallest unvisited member of each.
  for (ValueId node : all_nodes) dfs_from(node);

  // Residuals: closure members whose owned hid lies outside the interval.
  for (ValueId node : all_nodes) {
    HierarchyInterval iv = (*interval_of)[node];
    std::vector<ValueId> residual;
    for (ValueId member : closure(node)) {
      auto it = hid_of->find(member);
      // Closure members are schema nodes of this space, so always present.
      uint32_t hid = it->second;
      if (hid < iv.lo || hid >= iv.hi) residual.push_back(member);
    }
    if (!residual.empty()) {
      std::sort(residual.begin(), residual.end());
      (*residuals_of)[node] = std::move(residual);
    }
  }
}

}  // namespace

HierarchyEncoding HierarchyEncoding::Build(const Schema& schema,
                                           ValueId rdf_type) {
  HierarchyEncoding enc;
  enc.rdf_type_ = rdf_type;
  BuildSpace(
      schema.AllClasses(),
      [&](ValueId c) { return schema.DirectSubClassesOf(c); },
      [&](ValueId c) { return schema.DirectSuperClassesOf(c); },
      [&](ValueId c) { return schema.SubClassesOf(c); }, &enc.class_hid_,
      &enc.class_by_hid_, &enc.class_interval_, &enc.class_residuals_);
  BuildSpace(
      schema.AllProperties(),
      [&](ValueId p) { return schema.DirectSubPropertiesOf(p); },
      [&](ValueId p) { return schema.DirectSuperPropertiesOf(p); },
      [&](ValueId p) { return schema.SubPropertiesOf(p); }, &enc.prop_hid_,
      &enc.prop_by_hid_, &enc.prop_interval_, &enc.prop_residuals_);
  return enc;
}

const std::vector<ValueId>& HierarchyEncoding::ResidualsOf(
    const ResidualMap& map, ValueId id) {
  static const std::vector<ValueId> kEmpty;
  auto it = map.find(id);
  return it == map.end() ? kEmpty : it->second;
}

}  // namespace rdfopt
