#ifndef RDFOPT_RDF_GRAPH_H_
#define RDFOPT_RDF_GRAPH_H_

#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/vocabulary.h"
#include "schema/schema.h"

namespace rdfopt {

/// An RDF database in the sense of the paper's DB fragment (§2.3): a set of
/// data triples plus RDFS constraints, sharing one dictionary.
///
/// Insertion routes triples by property: the four RDFS constraint properties
/// go to the in-memory `Schema`, everything else (including `rdf:type`
/// assertions) is a data triple destined for the Triples(s,p,o) table.
/// The graph is an append log; duplicate elimination happens when a
/// `TripleStore` is built from it.
class Graph {
 public:
  Graph() : vocab_(Vocabulary::InternInto(&dict_)) {}
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }
  const Vocabulary& vocab() const { return vocab_; }

  /// Interns the terms and adds the triple.
  void Add(const Term& s, const Term& p, const Term& o);

  /// Adds a triple of already-interned ids.
  void AddEncoded(ValueId s, ValueId p, ValueId o);

  /// Convenience for tests and generators: all three terms are IRIs.
  void AddIri(std::string_view s, std::string_view p, std::string_view o);

  const std::vector<Triple>& data_triples() const { return data_; }
  const std::vector<Triple>& schema_triples() const { return schema_triples_; }

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  /// Finalizes the schema closures; call once loading is done.
  void FinalizeSchema() { schema_.Finalize(); }

  size_t num_data_triples() const { return data_.size(); }
  size_t num_schema_triples() const { return schema_triples_.size(); }

 private:
  Dictionary dict_;
  Vocabulary vocab_;
  Schema schema_;
  std::vector<Triple> data_;
  std::vector<Triple> schema_triples_;
};

}  // namespace rdfopt

#endif  // RDFOPT_RDF_GRAPH_H_
