#ifndef RDFOPT_RDF_TRIPLE_H_
#define RDFOPT_RDF_TRIPLE_H_

#include <cstddef>
#include <functional>
#include <tuple>

#include "rdf/term.h"

namespace rdfopt {

/// A dictionary-encoded RDF triple `s p o` (paper Fig. 2, top).
struct Triple {
  ValueId s = kInvalidValueId;
  ValueId p = kInvalidValueId;
  ValueId o = kInvalidValueId;

  bool operator==(const Triple& other) const = default;
};

/// Sort orders used by the storage indexes. Lexicographic comparators over
/// the named component permutation.
struct OrderSpo {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};
struct OrderPso {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.s, a.o) < std::tie(b.p, b.s, b.o);
  }
};
struct OrderPos {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
  }
};
struct OrderOsp {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.o, a.s, a.p) < std::tie(b.o, b.s, b.p);
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    // 64-bit mix of the three 32-bit components (splitmix64-style).
    uint64_t h = (static_cast<uint64_t>(t.s) << 32) | t.p;
    h ^= static_cast<uint64_t>(t.o) * 0x9E3779B97F4A7C15ull;
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBull;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

}  // namespace rdfopt

#endif  // RDFOPT_RDF_TRIPLE_H_
