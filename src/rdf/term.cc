#include "rdf/term.h"

namespace rdfopt {

std::string Term::Encoded() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kLiteral:
      return "\"" + lexical + "\"";
    case TermKind::kBlank:
      return "_:" + lexical;
  }
  return lexical;
}

Result<Term> Term::FromEncoded(std::string_view encoded) {
  if (encoded.empty()) {
    return Status::ParseError("empty term encoding");
  }
  if (encoded.front() == '<') {
    if (encoded.size() < 2 || encoded.back() != '>') {
      return Status::ParseError("unterminated IRI: " + std::string(encoded));
    }
    return Term::Iri(std::string(encoded.substr(1, encoded.size() - 2)));
  }
  if (encoded.front() == '"') {
    if (encoded.size() < 2 || encoded.back() != '"') {
      return Status::ParseError("unterminated literal: " +
                                std::string(encoded));
    }
    return Term::Literal(std::string(encoded.substr(1, encoded.size() - 2)));
  }
  if (encoded.size() >= 2 && encoded[0] == '_' && encoded[1] == ':') {
    return Term::Blank(std::string(encoded.substr(2)));
  }
  return Status::ParseError("unrecognized term encoding: " +
                            std::string(encoded));
}

}  // namespace rdfopt
