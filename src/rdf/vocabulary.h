#ifndef RDFOPT_RDF_VOCABULARY_H_
#define RDFOPT_RDF_VOCABULARY_H_

#include <string_view>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfopt {

/// Full IRIs of the RDF/RDFS built-ins the database fragment uses
/// (paper Fig. 2): the class-membership property and the four schema
/// constraint properties.
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr std::string_view kRdfsSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr std::string_view kRdfsDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr std::string_view kRdfsRange =
    "http://www.w3.org/2000/01/rdf-schema#range";

/// Ids of the built-ins inside one dictionary. Interned eagerly so that the
/// hot paths (triple routing, reformulation rules) compare integers, never
/// strings.
struct Vocabulary {
  ValueId rdf_type = kInvalidValueId;
  ValueId rdfs_subclassof = kInvalidValueId;
  ValueId rdfs_subpropertyof = kInvalidValueId;
  ValueId rdfs_domain = kInvalidValueId;
  ValueId rdfs_range = kInvalidValueId;

  /// Interns the five built-ins into `dict` and records their ids.
  static Vocabulary InternInto(Dictionary* dict);

  /// True iff `p` is one of the four RDFS constraint properties (Fig. 2,
  /// bottom), i.e. the triple belongs to the schema, not to the data.
  bool IsSchemaProperty(ValueId p) const {
    return p == rdfs_subclassof || p == rdfs_subpropertyof ||
           p == rdfs_domain || p == rdfs_range;
  }
};

/// Expands the conventional prefixes used throughout the code base and the
/// query parser: `rdf:`, `rdfs:`. Returns the input unchanged when no known
/// prefix matches.
std::string ExpandWellKnownPrefix(std::string_view qname);

}  // namespace rdfopt

#endif  // RDFOPT_RDF_VOCABULARY_H_
