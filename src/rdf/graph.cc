#include "rdf/graph.h"

namespace rdfopt {

void Graph::Add(const Term& s, const Term& p, const Term& o) {
  AddEncoded(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void Graph::AddIri(std::string_view s, std::string_view p,
                   std::string_view o) {
  AddEncoded(dict_.InternIri(s), dict_.InternIri(p), dict_.InternIri(o));
}

void Graph::AddEncoded(ValueId s, ValueId p, ValueId o) {
  if (vocab_.IsSchemaProperty(p)) {
    schema_triples_.push_back(Triple{s, p, o});
    if (p == vocab_.rdfs_subclassof) {
      schema_.AddSubClass(s, o);
    } else if (p == vocab_.rdfs_subpropertyof) {
      schema_.AddSubProperty(s, o);
    } else if (p == vocab_.rdfs_domain) {
      schema_.AddDomain(s, o);
    } else {
      schema_.AddRange(s, o);
    }
    return;
  }
  data_.push_back(Triple{s, p, o});
}

}  // namespace rdfopt
