#include "rdf/vocabulary.h"

#include <string>

namespace rdfopt {

Vocabulary Vocabulary::InternInto(Dictionary* dict) {
  Vocabulary v;
  v.rdf_type = dict->InternIri(kRdfType);
  v.rdfs_subclassof = dict->InternIri(kRdfsSubClassOf);
  v.rdfs_subpropertyof = dict->InternIri(kRdfsSubPropertyOf);
  v.rdfs_domain = dict->InternIri(kRdfsDomain);
  v.rdfs_range = dict->InternIri(kRdfsRange);
  return v;
}

std::string ExpandWellKnownPrefix(std::string_view qname) {
  constexpr std::string_view kRdfPrefix = "rdf:";
  constexpr std::string_view kRdfsPrefix = "rdfs:";
  if (qname.substr(0, kRdfPrefix.size()) == kRdfPrefix) {
    return "http://www.w3.org/1999/02/22-rdf-syntax-ns#" +
           std::string(qname.substr(kRdfPrefix.size()));
  }
  if (qname.substr(0, kRdfsPrefix.size()) == kRdfsPrefix) {
    return "http://www.w3.org/2000/01/rdf-schema#" +
           std::string(qname.substr(kRdfsPrefix.size()));
  }
  return std::string(qname);
}

}  // namespace rdfopt
