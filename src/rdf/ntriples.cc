#include "rdf/ntriples.h"

#include <cctype>
#include <vector>

namespace rdfopt {

namespace {

// Cursor over one line. Methods return false / error on malformed input.
class LineScanner {
 public:
  LineScanner(std::string_view line, size_t line_no)
      : line_(line), line_no_(line_no) {}

  void SkipWs() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEndOrComment() {
    SkipWs();
    return pos_ >= line_.size() || line_[pos_] == '#';
  }

  Result<Term> ReadTerm() {
    SkipWs();
    if (pos_ >= line_.size()) return Error("expected term, found end of line");
    char c = line_[pos_];
    if (c == '<') {
      size_t end = line_.find('>', pos_);
      if (end == std::string_view::npos) return Error("unterminated IRI");
      Term t = Term::Iri(std::string(line_.substr(pos_ + 1, end - pos_ - 1)));
      pos_ = end + 1;
      return t;
    }
    if (c == '"') {
      std::string value;
      size_t at = pos_ + 1;
      for (;;) {
        if (at >= line_.size()) return Error("unterminated literal");
        char ch = line_[at];
        if (ch == '"') break;
        if (ch == '\\') {
          if (at + 1 >= line_.size()) {
            return Error("dangling escape in literal");
          }
          char esc = line_[at + 1];
          switch (esc) {
            case '\\':
              value += '\\';
              break;
            case '"':
              value += '"';
              break;
            case 'n':
              value += '\n';
              break;
            case 't':
              value += '\t';
              break;
            case 'r':
              value += '\r';
              break;
            default:
              return Error(std::string("unknown escape '\\") + esc +
                           "' in literal");
          }
          at += 2;
          continue;
        }
        value += ch;
        ++at;
      }
      pos_ = at + 1;
      return Term::Literal(std::move(value));
    }
    if (c == '_' && pos_ + 1 < line_.size() && line_[pos_ + 1] == ':') {
      size_t end = pos_ + 2;
      while (end < line_.size() &&
             !std::isspace(static_cast<unsigned char>(line_[end])) &&
             line_[end] != '.') {
        ++end;
      }
      if (end == pos_ + 2) return Error("empty blank node label");
      Term t = Term::Blank(std::string(line_.substr(pos_ + 2, end - pos_ - 2)));
      pos_ = end;
      return t;
    }
    return Error(std::string("unexpected character '") + c + "' in term");
  }

  Status ExpectDot() {
    SkipWs();
    if (pos_ >= line_.size() || line_[pos_] != '.') {
      return Error("expected '.' terminating triple").status();
    }
    ++pos_;
    if (!AtEndOrComment()) {
      return Error("trailing content after '.'").status();
    }
    return Status::OK();
  }

 private:
  Result<Term> Error(std::string msg) const {
    return Status::ParseError("line " + std::to_string(line_no_) + ": " +
                              std::move(msg));
  }

  std::string_view line_;
  size_t line_no_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseNTriples(std::string_view text, Graph* graph) {
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    start = end + 1;

    LineScanner scanner(line, line_no);
    if (scanner.AtEndOrComment()) {
      if (end == text.size()) break;
      continue;
    }
    Result<Term> s = scanner.ReadTerm();
    if (!s.ok()) return s.status();
    Result<Term> p = scanner.ReadTerm();
    if (!p.ok()) return p.status();
    Result<Term> o = scanner.ReadTerm();
    if (!o.ok()) return o.status();
    RDFOPT_RETURN_NOT_OK(scanner.ExpectDot());
    graph->Add(s.ValueOrDie(), p.ValueOrDie(), o.ValueOrDie());
    if (end == text.size()) break;
  }
  return Status::OK();
}

std::string EscapeNTriplesLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

// Term::Encoded() is the raw dictionary key; serialization additionally
// escapes literal contents so the output re-parses.
std::string SerializeTerm(const Term& term) {
  if (term.kind == TermKind::kLiteral) {
    return "\"" + EscapeNTriplesLiteral(term.lexical) + "\"";
  }
  return term.Encoded();
}

}  // namespace

std::string SerializeNTriples(const Graph& graph) {
  std::string out;
  const Dictionary& dict = graph.dict();
  auto append = [&](const std::vector<Triple>& triples) {
    for (const Triple& t : triples) {
      out += SerializeTerm(dict.term(t.s));
      out += ' ';
      out += SerializeTerm(dict.term(t.p));
      out += ' ';
      out += SerializeTerm(dict.term(t.o));
      out += " .\n";
    }
  };
  append(graph.schema_triples());
  append(graph.data_triples());
  return out;
}

}  // namespace rdfopt
