#ifndef RDFOPT_RDF_HIERARCHY_ENCODING_H_
#define RDFOPT_RDF_HIERARCHY_ENCODING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "schema/schema.h"

namespace rdfopt {

/// A contiguous half-open interval of hierarchical ids (see below).
struct HierarchyInterval {
  uint32_t lo = 0;
  uint32_t hi = 0;  ///< Exclusive.
  bool valid() const { return hi > lo; }
  uint32_t size() const { return hi - lo; }
};

/// LiteMat-style hierarchy-aware encoding (DESIGN.md §12): assigns every
/// schema class and property a *hierarchical id* ("hid") by a DFS preorder
/// over the subsumption DAG, so the subtree owned by a node C occupies the
/// contiguous interval `[lo(C), hi(C))` of the hid space. A reformulated
/// atom `?x rdf:type <C>` — normally an N-branch union over SubClassesOf(C)
/// — then collapses to one index range scan over that interval (the engine's
/// ScanRange operator), plus a small residual union for closure members
/// reachable only through another parent.
///
/// Raw dictionary ValueIds are NOT renumbered: the Dictionary is shared,
/// append-only and pinned by snapshots, so the encoding is a side table
/// mapping class/property ValueIds to hids and back, attached per snapshot
/// (TripleStore::AttachHierarchy) so re-encodes are epoch-scoped. Class and
/// property hids live in separate spaces: classes order the POS index
/// (rdf:type objects), properties the PSO index.
///
/// Multi-parent nodes (the subsumption relation is a DAG, not a tree): each
/// node is owned by the first parent the DFS reaches it through. For every
/// other ancestor A the node falls outside `[lo(A), hi(A))` and appears in
/// `ClassResiduals(A)` / `PropertyResiduals(A)`; callers emit those as
/// ordinary single-constant scan branches, per LiteMat. By construction,
///   SubClassesOf(C) == { classes with hid in ClassInterval(C) }
///                       ∪ ClassResiduals(C)       (disjointly),
/// and likewise for properties. Cycles (A ≼ B ≼ A) are handled: one cycle
/// member is promoted to a root, the rest become its residual-covered
/// descendants.
class HierarchyEncoding {
 public:
  static constexpr uint32_t kInvalidHid = 0xffffffffu;

  /// Builds the encoding from a finalized schema. `rdf_type` is recorded for
  /// consumers that need to identify type triples (TripleStore's shadow
  /// index build); pass kInvalidValueId when the vocabulary has none.
  static HierarchyEncoding Build(const Schema& schema, ValueId rdf_type);

  ValueId rdf_type() const { return rdf_type_; }

  // --- Class hid space -----------------------------------------------------
  size_t num_class_hids() const { return class_by_hid_.size(); }
  /// hid of `cls`, or kInvalidHid when the class is unknown to the schema.
  uint32_t ClassHid(ValueId cls) const { return HidOf(class_hid_, cls); }
  /// The class owning `hid` (valid hids only).
  ValueId ClassOfHid(uint32_t hid) const { return class_by_hid_[hid]; }
  const std::vector<ValueId>& classes_by_hid() const { return class_by_hid_; }
  /// Owned-subtree interval of `cls`; !valid() for unknown classes.
  HierarchyInterval ClassInterval(ValueId cls) const {
    return IntervalOf(class_interval_, cls);
  }
  /// Closure members of `cls` not covered by ClassInterval (multi-parent /
  /// cycle fallout). Sorted by ValueId; empty for unknown classes.
  const std::vector<ValueId>& ClassResiduals(ValueId cls) const {
    return ResidualsOf(class_residuals_, cls);
  }

  // --- Property hid space --------------------------------------------------
  size_t num_property_hids() const { return prop_by_hid_.size(); }
  uint32_t PropertyHid(ValueId property) const {
    return HidOf(prop_hid_, property);
  }
  ValueId PropertyOfHid(uint32_t hid) const { return prop_by_hid_[hid]; }
  const std::vector<ValueId>& properties_by_hid() const {
    return prop_by_hid_;
  }
  HierarchyInterval PropertyInterval(ValueId property) const {
    return IntervalOf(prop_interval_, property);
  }
  const std::vector<ValueId>& PropertyResiduals(ValueId property) const {
    return ResidualsOf(prop_residuals_, property);
  }

 private:
  using HidMap = std::unordered_map<ValueId, uint32_t>;
  using IntervalMap = std::unordered_map<ValueId, HierarchyInterval>;
  using ResidualMap = std::unordered_map<ValueId, std::vector<ValueId>>;

  static uint32_t HidOf(const HidMap& map, ValueId id) {
    auto it = map.find(id);
    return it == map.end() ? kInvalidHid : it->second;
  }
  static HierarchyInterval IntervalOf(const IntervalMap& map, ValueId id) {
    auto it = map.find(id);
    return it == map.end() ? HierarchyInterval{} : it->second;
  }
  static const std::vector<ValueId>& ResidualsOf(const ResidualMap& map,
                                                 ValueId id);

  ValueId rdf_type_ = kInvalidValueId;

  HidMap class_hid_;
  std::vector<ValueId> class_by_hid_;
  IntervalMap class_interval_;
  ResidualMap class_residuals_;  // Only nodes with residuals are present.

  HidMap prop_hid_;
  std::vector<ValueId> prop_by_hid_;
  IntervalMap prop_interval_;
  ResidualMap prop_residuals_;
};

}  // namespace rdfopt

#endif  // RDFOPT_RDF_HIERARCHY_ENCODING_H_
