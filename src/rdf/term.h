#ifndef RDFOPT_RDF_TERM_H_
#define RDFOPT_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rdfopt {

/// Kind of an RDF value (paper §2.1: URIs, literals, blank nodes).
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// A decoded RDF value: an IRI, a literal, or a blank node.
///
/// `lexical` holds the IRI text (without angle brackets), the literal value
/// (without quotes) or the blank-node label (without the `_:` prefix). Terms
/// are value types; the dictionary-encoded `ValueId` is what circulates in
/// the storage and evaluation layers.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;

  static Term Iri(std::string iri) {
    return Term{TermKind::kIri, std::move(iri)};
  }
  static Term Literal(std::string value) {
    return Term{TermKind::kLiteral, std::move(value)};
  }
  static Term Blank(std::string label) {
    return Term{TermKind::kBlank, std::move(label)};
  }

  bool operator==(const Term& other) const = default;

  /// Canonical single-string encoding used as the dictionary key:
  /// `<iri>`, `"literal"`, `_:label`. Unambiguous because the first character
  /// determines the kind.
  std::string Encoded() const;

  /// Parses the canonical encoding produced by `Encoded()`.
  static Result<Term> FromEncoded(std::string_view encoded);
};

/// Dictionary-encoded identifier of an RDF value (paper §5.1: the Triples
/// table is dictionary-encoded with a unique integer per distinct value).
using ValueId = uint32_t;

/// Sentinel for "no value" / lookup miss.
inline constexpr ValueId kInvalidValueId = 0xFFFFFFFFu;

}  // namespace rdfopt

#endif  // RDFOPT_RDF_TERM_H_
