#ifndef RDFOPT_RDF_NTRIPLES_H_
#define RDFOPT_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfopt {

/// Parses an N-Triples-style document into `graph`.
///
/// Supported line grammar (a pragmatic subset of W3C N-Triples, enough for
/// the synthetic workloads and tests):
///
///   line    := ws* (triple)? comment? '\n'
///   triple  := term ws+ term ws+ term ws* '.'
///   term    := '<' iri '>' | '"' chars '"' | '_:' label
///   comment := '#' anything
///
/// Literals support the W3C escape sequences \\ \" \n \t \r (decoded on
/// parse, re-encoded on serialization); no datatype/lang tags.
Status ParseNTriples(std::string_view text, Graph* graph);

/// Escapes a literal value for serialization (backslash, quote, newline,
/// tab, carriage return); exposed for tests.
std::string EscapeNTriplesLiteral(std::string_view value);

/// Serializes the graph (schema triples first, then data triples) in the same
/// format. Inverse of ParseNTriples up to triple ordering and duplicates.
std::string SerializeNTriples(const Graph& graph);

}  // namespace rdfopt

#endif  // RDFOPT_RDF_NTRIPLES_H_
