#include "rdf/dictionary.h"

#include <cassert>

namespace rdfopt {

ValueId Dictionary::Intern(const Term& term) {
  std::string key = term.Encoded();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

ValueId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term.Encoded());
  return it == index_.end() ? kInvalidValueId : it->second;
}

ValueId Dictionary::LookupIri(std::string_view iri) const {
  return Lookup(Term::Iri(std::string(iri)));
}

ValueId Dictionary::FreshBlank() {
  // Loop in case a user already interned a blank node with a colliding label.
  for (;;) {
    Term candidate = Term::Blank("g" + std::to_string(next_blank_++));
    if (Lookup(candidate) == kInvalidValueId) return Intern(candidate);
  }
}

}  // namespace rdfopt
