#ifndef RDFOPT_COMMON_JSON_WRITER_H_
#define RDFOPT_COMMON_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace rdfopt {

/// Minimal append-only JSON builder shared by the observability exporters
/// (TraceSession::ToJson, MetricsRegistry::ToJson, the bench --json writer).
/// Handles commas, string escaping and optional pretty-printing; it does not
/// validate key/value alternation beyond what the emit order implies.
class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per nesting level.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(std::string_view key) {
    Separate();
    AppendQuoted(key);
    out_ += ':';
    if (indent_ > 0) out_ += ' ';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(std::string_view value) {
    Separate();
    AppendQuoted(value);
    return *this;
  }
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }
  JsonWriter& Value(bool value) { return Raw(value ? "true" : "false"); }
  JsonWriter& Value(double value) {
    if (!std::isfinite(value)) return Raw("null");  // JSON has no Inf/NaN.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(buf);
  }
  JsonWriter& Value(uint64_t value) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return Raw(buf);
  }
  JsonWriter& Value(int64_t value) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return Raw(buf);
  }
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }

  /// Emits `text` verbatim as the next value — it must itself be valid JSON
  /// (used to splice pre-rendered sub-documents into a record).
  JsonWriter& Raw(std::string_view text) {
    Separate();
    out_.append(text);
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  static void AppendEscaped(std::string* out, std::string_view text) {
    for (char c : text) {
      switch (c) {
        case '"':
          *out += "\\\"";
          break;
        case '\\':
          *out += "\\\\";
          break;
        case '\n':
          *out += "\\n";
          break;
        case '\r':
          *out += "\\r";
          break;
        case '\t':
          *out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            *out += buf;
          } else {
            *out += c;
          }
      }
    }
  }

 private:
  JsonWriter& Open(char bracket) {
    Separate();
    out_ += bracket;
    needs_comma_.push_back(false);
    return *this;
  }

  JsonWriter& Close(char bracket) {
    bool had_items = !needs_comma_.empty() && needs_comma_.back();
    if (!needs_comma_.empty()) needs_comma_.pop_back();
    if (indent_ > 0 && had_items) {
      out_ += '\n';
      AppendIndent();
    }
    out_ += bracket;
    return *this;
  }

  /// Inserts the comma/newline owed before the next item at this level.
  void Separate() {
    if (pending_value_) {
      // Value directly follows its key: no separator.
      pending_value_ = false;
      return;
    }
    if (needs_comma_.empty()) return;
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
    if (indent_ > 0) {
      out_ += '\n';
      AppendIndent();
    }
  }

  void AppendIndent() {
    out_.append(static_cast<size_t>(indent_) * needs_comma_.size(), ' ');
  }

  void AppendQuoted(std::string_view text) {
    out_ += '"';
    AppendEscaped(&out_, text);
    out_ += '"';
  }

  int indent_;
  bool pending_value_ = false;
  std::string out_;
  std::vector<bool> needs_comma_;
};

}  // namespace rdfopt

#endif  // RDFOPT_COMMON_JSON_WRITER_H_
