#include "common/stopwatch.h"

namespace rdfopt {

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

int64_t Stopwatch::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start_)
      .count();
}

}  // namespace rdfopt
