#include "common/status.h"

namespace rdfopt {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kQueryTooComplex:
      return "QueryTooComplex";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rdfopt
