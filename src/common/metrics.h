#ifndef RDFOPT_COMMON_METRICS_H_
#define RDFOPT_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rdfopt {

/// Process-wide named counters, gauges and histograms (see DESIGN.md
/// "Observability"). Unlike a TraceSession — one span tree per query —
/// the registry accumulates across queries: `engine.union_terms`,
/// `optimizer.covers_examined`, the `engine.evaluate_ms` latency histogram
/// with p50/p95/p99, etc.
///
/// Instruments are created on first use and never deleted, so call sites
/// cache the pointer in a function-local static:
///
///   static MetricCounter* terms =
///       MetricsRegistry::Global().GetCounter("engine.union_terms");
///   terms->Add(n);
///
/// Counters and gauges are lock-free; histogram observation takes a short
/// mutex. `Reset()` zeroes every instrument in place (for tests and the
/// shell).
///
/// Concurrency contract: `Add`/`Increment`/`Set`/`Observe` and the
/// registry's `GetCounter`/`GetGauge`/`GetHistogram`/`GetWindowedHistogram`
/// may be called from any thread concurrently — the parallel union/JUCQ
/// executor (engine/evaluator.cc, worker_threads > 1) reports from pool
/// workers, so every increment must stay race-free. Totals are sums of
/// atomic adds and therefore independent of the thread count and
/// interleaving.

class MetricCounter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (queue depth, run slots in use, current epoch):
/// unlike a counter it moves both ways and is exported as-is, never rated.
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Shared exponential bucket scheme of the histogram instruments: bucket i
/// holds samples in (bound(i-1), bound(i)] with bound(i) = 0.001 * 2^i,
/// covering ~1µs .. ~10^16 (values in ms).
inline constexpr size_t kMetricNumBuckets = 64;
size_t MetricBucketIndex(double value);
double MetricBucketUpperBound(size_t index);

/// Fixed-bucket exponential histogram for non-negative samples (latencies in
/// ms, row counts), accumulating over the process lifetime; quantiles
/// interpolate within the winning bucket and are clamped to the exact
/// observed min/max.
class MetricHistogram {
 public:
  static constexpr size_t kNumBuckets = kMetricNumBuckets;

  void Observe(double value);

  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Estimated q-quantile (q in [0,1]); 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Rolling time-windowed histogram: the same exponential buckets as
/// MetricHistogram, but quantiles cover only the trailing window (p99 over
/// the last minute, not the process lifetime — a process-lifetime p99 can
/// never recover from one startup spike, which makes it useless for
/// alerting).
///
/// Implementation: the window is divided into `num_slices` time slices, each
/// its own bucket array. An observation lands in the slice owning the
/// current instant; slices whose time range has rotated out of the window
/// are lazily zeroed and reused. A snapshot merges the live slices, so it
/// covers between (window - slice) and window seconds of history depending
/// on where in the current slice "now" falls. min/max are per-slice exact,
/// window-level conservative (the min/max of live slices).
class MetricWindowedHistogram {
 public:
  explicit MetricWindowedHistogram(double window_seconds = 60.0,
                                   size_t num_slices = 6);

  void Observe(double value);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  /// Merged view of the trailing window.
  Snapshot WindowSnapshot() const;

  double window_seconds() const { return window_seconds_; }

  void Reset();

  /// Shifts this instrument's notion of "now" forward — lets tests age
  /// observations out of the window without sleeping.
  void AdvanceClockForTest(double seconds);

 private:
  struct Slice {
    int64_t index = -1;  ///< Global slice number, -1 = empty/stale.
    std::array<uint64_t, kMetricNumBuckets> buckets{};
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// Global slice number of the current instant.
  int64_t NowSliceIndex() const;
  double QuantileLocked(const std::array<uint64_t, kMetricNumBuckets>& buckets,
                        uint64_t count, double q, double lo_clamp,
                        double hi_clamp) const;

  const double window_seconds_;
  const double slice_seconds_;

  mutable std::mutex mu_;
  std::vector<Slice> slices_;
  std::chrono::steady_clock::time_point origin_;
  double test_offset_seconds_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the pipeline reports into.
  static MetricsRegistry& Global();

  /// Returns the named instrument, creating it on first use. Pointers are
  /// stable for the registry's lifetime. The window parameters of
  /// GetWindowedHistogram apply on first use only (later calls return the
  /// existing instrument unchanged).
  MetricCounter* GetCounter(std::string_view name);
  MetricGauge* GetGauge(std::string_view name);
  MetricHistogram* GetHistogram(std::string_view name);
  MetricWindowedHistogram* GetWindowedHistogram(std::string_view name,
                                                double window_seconds = 60.0,
                                                size_t num_slices = 6);

  /// Snapshot: {"counters":{name:value,...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,p50,p95,p99},...},
  /// "windowed":{name:{window_s,count,sum,min,max,p50,p95,p99},...}}
  /// with names in sorted order. `indent` > 0 pretty-prints.
  std::string ToJson(int indent = 0) const;

  /// Prometheus text-exposition snapshot (one scrape): counters as
  /// `counter`, gauges as `gauge`, histograms as `summary` with
  /// quantile-labelled lines plus _sum/_count, windowed histograms as
  /// gauges labelled {quantile,window}. Names are mangled
  /// `engine.evaluate_ms` -> `rdfopt_engine_evaluate_ms`. Ends with the
  /// OpenMetrics `# EOF` terminator, which also serves as the end-of-scrape
  /// marker on rdfopt_server's line protocol (`!prom`).
  std::string ToPrometheusText() const;

  /// Zeroes every registered instrument (instruments stay registered, so
  /// cached pointers remain valid). For tests and the shell's baseline.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>>
      histograms_;
  std::map<std::string, std::unique_ptr<MetricWindowedHistogram>, std::less<>>
      windowed_;
};

}  // namespace rdfopt

#endif  // RDFOPT_COMMON_METRICS_H_
