#ifndef RDFOPT_COMMON_METRICS_H_
#define RDFOPT_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace rdfopt {

/// Process-wide named counters and histograms (see DESIGN.md
/// "Observability"). Unlike a TraceSession — one span tree per query —
/// the registry accumulates across queries: `engine.union_terms`,
/// `optimizer.covers_examined`, the `engine.evaluate_ms` latency histogram
/// with p50/p95/p99, etc.
///
/// Instruments are created on first use and never deleted, so call sites
/// cache the pointer in a function-local static:
///
///   static MetricCounter* terms =
///       MetricsRegistry::Global().GetCounter("engine.union_terms");
///   terms->Add(n);
///
/// Counters are lock-free; histogram observation takes a short mutex.
/// `Reset()` zeroes every instrument in place (for tests and the shell).
///
/// Concurrency contract: `Add`/`Increment`/`Observe` and the registry's
/// `GetCounter`/`GetHistogram` may be called from any thread concurrently —
/// the parallel union/JUCQ executor (engine/evaluator.cc, worker_threads >
/// 1) reports from pool workers, so every increment must stay race-free.
/// Totals are sums of atomic adds and therefore independent of the thread
/// count and interleaving.

class MetricCounter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket exponential histogram for non-negative samples (latencies in
/// ms, row counts). Bucket i holds samples in (bound(i-1), bound(i)] with
/// bound(i) = 0.001 * 2^i, covering ~1µs .. ~10^16; quantiles interpolate
/// within the winning bucket and are clamped to the exact observed min/max.
class MetricHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Observe(double value);

  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Estimated q-quantile (q in [0,1]); 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  static size_t BucketIndex(double value);
  static double BucketUpperBound(size_t index);

  mutable std::mutex mu_;
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the pipeline reports into.
  static MetricsRegistry& Global();

  /// Returns the named instrument, creating it on first use. Pointers are
  /// stable for the registry's lifetime.
  MetricCounter* GetCounter(std::string_view name);
  MetricHistogram* GetHistogram(std::string_view name);

  /// Snapshot: {"counters":{name:value,...},"histograms":{name:{count,sum,
  /// min,max,p50,p95,p99},...}} with names in sorted order. `indent` > 0
  /// pretty-prints.
  std::string ToJson(int indent = 0) const;

  /// Zeroes every registered instrument (instruments stay registered, so
  /// cached pointers remain valid). For tests and the shell's baseline.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>>
      histograms_;
};

}  // namespace rdfopt

#endif  // RDFOPT_COMMON_METRICS_H_
