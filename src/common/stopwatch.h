#ifndef RDFOPT_COMMON_STOPWATCH_H_
#define RDFOPT_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace rdfopt {

/// Monotonic wall-clock stopwatch used for benchmark timing, the optimizer
/// time budgets (GCov/ECov timeouts) and the engine query timeout.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const;
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rdfopt

#endif  // RDFOPT_COMMON_STOPWATCH_H_
