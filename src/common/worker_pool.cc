#include "common/worker_pool.h"

#include <algorithm>
#include <exception>

namespace rdfopt {

WorkerPool::WorkerPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::RunTask(const std::shared_ptr<Batch>& batch, size_t index) {
  if (!batch->cancelled.load(std::memory_order_acquire)) {
    Status st = [&]() -> Status {
      try {
        return (*batch->fn)(index);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("worker task threw: ") + e.what());
      } catch (...) {
        return Status::Internal("worker task threw a non-exception");
      }
    }();
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->failures.emplace_back(index, std::move(st));
      batch->cancelled.store(true, std::memory_order_release);
    }
  }
  // Skipped (post-cancellation) tasks count as done so the batch drains.
  if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch->n) {
    std::lock_guard<std::mutex> lock(batch->mu);
    batch->all_done.notify_all();
  }
}

void WorkerPool::DrainBatch(const std::shared_ptr<Batch>& batch) {
  while (true) {
    size_t index = batch->next.fetch_add(1, std::memory_order_acq_rel);
    if (index >= batch->n) return;
    RunTask(batch, index);
  }
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !pending_.empty(); });
      if (pending_.empty()) {
        if (shutdown_) return;
        continue;
      }
      batch = pending_.front();  // Peek: siblings work the same batch.
    }
    DrainBatch(batch);
    {
      // Fully claimed: stop advertising it (any observer may remove it).
      std::lock_guard<std::mutex> lock(mu_);
      auto it = std::find(pending_.begin(), pending_.end(), batch);
      if (it != pending_.end()) pending_.erase(it);
    }
  }
}

Status WorkerPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  if (!threads_.empty() && n > 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(batch);
    }
    work_available_.notify_all();
  }
  // Help-first: the caller claims tasks too, so a nested ParallelFor issued
  // from inside a task makes progress even when every worker is busy.
  DrainBatch(batch);
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->all_done.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(pending_.begin(), pending_.end(), batch);
    if (it != pending_.end()) pending_.erase(it);
  }

  if (batch->failures.empty()) return Status::OK();
  // First-error-wins by task index; a kCancelled produced by cooperative
  // cancellation of sibling work never masks the error that triggered it.
  std::sort(batch->failures.begin(), batch->failures.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [index, st] : batch->failures) {
    if (st.code() != StatusCode::kCancelled) return st;
  }
  return batch->failures.front().second;
}

}  // namespace rdfopt
