#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json_writer.h"

namespace rdfopt {

size_t MetricBucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // Also catches NaN.
  // Smallest i with 0.001 * 2^i >= value.
  double scaled = value / 0.001;
  int exponent = static_cast<int>(std::ceil(std::log2(scaled)));
  if (exponent < 0) return 0;
  return std::min(static_cast<size_t>(exponent), kMetricNumBuckets - 1);
}

double MetricBucketUpperBound(size_t index) {
  return 0.001 * std::ldexp(1.0, static_cast<int>(index));
}

namespace {

/// Quantile estimate over one exponential-bucket array: find the bucket
/// holding the rank-q sample, interpolate linearly inside it, clamp to the
/// exact observed [lo_clamp, hi_clamp].
double BucketQuantile(const std::array<uint64_t, kMetricNumBuckets>& buckets,
                      uint64_t count, double q, double lo_clamp,
                      double hi_clamp) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kMetricNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      double lo = i == 0 ? 0.0 : MetricBucketUpperBound(i - 1);
      double hi = MetricBucketUpperBound(i);
      double fraction = static_cast<double>(rank - cumulative) /
                        static_cast<double>(buckets[i]);
      double estimate = lo + (hi - lo) * fraction;
      return std::clamp(estimate, lo_clamp, hi_clamp);
    }
    cumulative += buckets[i];
  }
  return hi_clamp;
}

}  // namespace

void MetricHistogram::Observe(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[MetricBucketIndex(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

uint64_t MetricHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double MetricHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double MetricHistogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double MetricHistogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double MetricHistogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return BucketQuantile(buckets_, count_, q, min_, max_);
}

void MetricHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricWindowedHistogram::MetricWindowedHistogram(double window_seconds,
                                                 size_t num_slices)
    : window_seconds_(window_seconds > 0.0 ? window_seconds : 60.0),
      slice_seconds_(window_seconds_ /
                     static_cast<double>(std::max<size_t>(num_slices, 1))),
      slices_(std::max<size_t>(num_slices, 1)),
      origin_(std::chrono::steady_clock::now()) {}

int64_t MetricWindowedHistogram::NowSliceIndex() const {
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    origin_)
          .count() +
      test_offset_seconds_;
  return static_cast<int64_t>(elapsed / slice_seconds_);
}

void MetricWindowedHistogram::Observe(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowSliceIndex();
  Slice& slice = slices_[static_cast<size_t>(now) % slices_.size()];
  if (slice.index != now) {
    // The slot last held a slice that has rotated out; reuse it.
    slice.index = now;
    slice.buckets.fill(0);
    slice.count = 0;
    slice.sum = 0.0;
    slice.min = 0.0;
    slice.max = 0.0;
  }
  ++slice.buckets[MetricBucketIndex(value)];
  if (slice.count == 0 || value < slice.min) slice.min = value;
  if (slice.count == 0 || value > slice.max) slice.max = value;
  ++slice.count;
  slice.sum += value;
}

MetricWindowedHistogram::Snapshot MetricWindowedHistogram::WindowSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowSliceIndex();
  int64_t oldest_live = now - static_cast<int64_t>(slices_.size()) + 1;

  std::array<uint64_t, kMetricNumBuckets> merged{};
  Snapshot snap;
  for (const Slice& slice : slices_) {
    if (slice.index < oldest_live || slice.index > now || slice.count == 0) {
      continue;  // Stale (rotated out) or never used.
    }
    for (size_t i = 0; i < kMetricNumBuckets; ++i) {
      merged[i] += slice.buckets[i];
    }
    if (snap.count == 0 || slice.min < snap.min) snap.min = slice.min;
    if (snap.count == 0 || slice.max > snap.max) snap.max = slice.max;
    snap.count += slice.count;
    snap.sum += slice.sum;
  }
  if (snap.count == 0) return snap;
  snap.p50 = BucketQuantile(merged, snap.count, 0.50, snap.min, snap.max);
  snap.p95 = BucketQuantile(merged, snap.count, 0.95, snap.min, snap.max);
  snap.p99 = BucketQuantile(merged, snap.count, 0.99, snap.min, snap.max);
  return snap;
}

void MetricWindowedHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slice& slice : slices_) slice = Slice{};
}

void MetricWindowedHistogram::AdvanceClockForTest(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  test_offset_seconds_ += seconds;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instruments must outlive all static destructors.
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

MetricCounter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return it->second.get();
}

MetricGauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MetricGauge>())
             .first;
  }
  return it->second.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  }
  return it->second.get();
}

MetricWindowedHistogram* MetricsRegistry::GetWindowedHistogram(
    std::string_view name, double window_seconds, size_t num_slices) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windowed_.find(name);
  if (it == windowed_.end()) {
    it = windowed_
             .emplace(std::string(name),
                      std::make_unique<MetricWindowedHistogram>(window_seconds,
                                                                num_slices))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json(indent);
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).Value(counter->value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name).Value(gauge->value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("count").Value(histogram->count());
    json.Key("sum").Value(histogram->sum());
    json.Key("min").Value(histogram->min());
    json.Key("max").Value(histogram->max());
    json.Key("p50").Value(histogram->Quantile(0.50));
    json.Key("p95").Value(histogram->Quantile(0.95));
    json.Key("p99").Value(histogram->Quantile(0.99));
    json.EndObject();
  }
  json.EndObject();
  json.Key("windowed").BeginObject();
  for (const auto& [name, windowed] : windowed_) {
    MetricWindowedHistogram::Snapshot snap = windowed->WindowSnapshot();
    json.Key(name).BeginObject();
    json.Key("window_s").Value(windowed->window_seconds());
    json.Key("count").Value(snap.count);
    json.Key("sum").Value(snap.sum);
    json.Key("min").Value(snap.min);
    json.Key("max").Value(snap.max);
    json.Key("p50").Value(snap.p50);
    json.Key("p95").Value(snap.p95);
    json.Key("p99").Value(snap.p99);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

namespace {

/// `engine.evaluate_ms` -> `rdfopt_engine_evaluate_ms`: Prometheus metric
/// names admit [a-zA-Z0-9_:] only.
std::string PrometheusName(const std::string& name) {
  std::string out = "rdfopt_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus floats: plain shortest-round-trip decimal; the exposition
/// format has no NaN/Inf needs here (all inputs are finite).
std::string PrometheusNumber(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " summary\n";
    out += pname + "{quantile=\"0.5\"} " +
           PrometheusNumber(histogram->Quantile(0.50)) + "\n";
    out += pname + "{quantile=\"0.95\"} " +
           PrometheusNumber(histogram->Quantile(0.95)) + "\n";
    out += pname + "{quantile=\"0.99\"} " +
           PrometheusNumber(histogram->Quantile(0.99)) + "\n";
    out += pname + "_sum " + PrometheusNumber(histogram->sum()) + "\n";
    out += pname + "_count " + std::to_string(histogram->count()) + "\n";
  }
  for (const auto& [name, windowed] : windowed_) {
    MetricWindowedHistogram::Snapshot snap = windowed->WindowSnapshot();
    std::string pname = PrometheusName(name) + "_window";
    std::string window_label =
        "window=\"" + PrometheusNumber(windowed->window_seconds()) + "s\"";
    out += "# TYPE " + pname + " gauge\n";
    out += pname + "{quantile=\"0.5\"," + window_label + "} " +
           PrometheusNumber(snap.p50) + "\n";
    out += pname + "{quantile=\"0.95\"," + window_label + "} " +
           PrometheusNumber(snap.p95) + "\n";
    out += pname + "{quantile=\"0.99\"," + window_label + "} " +
           PrometheusNumber(snap.p99) + "\n";
    out += pname + "_count{" + window_label + "} " +
           std::to_string(snap.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, windowed] : windowed_) windowed->Reset();
}

}  // namespace rdfopt
