#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/json_writer.h"

namespace rdfopt {

size_t MetricHistogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // Also catches NaN.
  // Smallest i with 0.001 * 2^i >= value.
  double scaled = value / 0.001;
  int exponent = static_cast<int>(std::ceil(std::log2(scaled)));
  if (exponent < 0) return 0;
  return std::min(static_cast<size_t>(exponent), kNumBuckets - 1);
}

double MetricHistogram::BucketUpperBound(size_t index) {
  return 0.001 * std::ldexp(1.0, static_cast<int>(index));
}

void MetricHistogram::Observe(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[BucketIndex(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

uint64_t MetricHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double MetricHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double MetricHistogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double MetricHistogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double MetricHistogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based), then the bucket holding it.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count_));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= rank) {
      // Linear interpolation inside the bucket's range.
      double lo = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      double hi = BucketUpperBound(i);
      double fraction = buckets_[i] == 0
                            ? 0.0
                            : static_cast<double>(rank - cumulative) /
                                  static_cast<double>(buckets_[i]);
      double estimate = lo + (hi - lo) * fraction;
      return std::clamp(estimate, min_, max_);
    }
    cumulative += buckets_[i];
  }
  return max_;
}

void MetricHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instruments must outlive all static destructors.
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

MetricCounter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return it->second.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json(indent);
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).Value(counter->value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("count").Value(histogram->count());
    json.Key("sum").Value(histogram->sum());
    json.Key("min").Value(histogram->min());
    json.Key("max").Value(histogram->max());
    json.Key("p50").Value(histogram->Quantile(0.50));
    json.Key("p95").Value(histogram->Quantile(0.95));
    json.Key("p99").Value(histogram->Quantile(0.99));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace rdfopt
