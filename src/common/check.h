#ifndef RDFOPT_COMMON_CHECK_H_
#define RDFOPT_COMMON_CHECK_H_

#include <functional>
#include <sstream>
#include <string>

namespace rdfopt {

/// Invariant-checking macros (DESIGN.md §13). Three tiers:
///
///   RDFOPT_CHECK(cond) << "context " << value;
///     Always-on contract, every build type. A failed check is a bug in the
///     engine, never a data- or user-dependent condition; user-facing
///     failures go through Status. The message stream is only evaluated on
///     failure, so streaming arbitrary context is free on the passing path.
///
///   RDFOPT_DCHECK(cond) << ...;
///     Debug-only contract for checks too hot for release (per-row loops).
///     Compiled out entirely under NDEBUG: the condition is NOT evaluated,
///     so it must be side-effect free.
///
///   RDFOPT_CHECK_OK(status_expr);
///     Asserts a Status (or Result) is OK; the failure message carries the
///     status's ToString(). RDFOPT_DCHECK_OK is the debug-only variant.
///
/// Failure invokes the installed CheckFailureHandler (default: write the
/// report to stderr and abort) after appending the dumps of every
/// ScopedCheckContext frame on the calling thread — the hook the engine
/// uses to attach a rendered plan or trace tail to a contract failure.
/// Handlers must not return; tests install a throwing handler to assert on
/// contract failures without dying (see SetCheckFailureHandler).

/// Everything known about one contract failure.
struct CheckFailureInfo {
  const char* file = nullptr;
  int line = 0;
  const char* condition = nullptr;  ///< The stringified expression.
  std::string message;              ///< Streamed-in context, may be empty.
  std::string context_dump;         ///< ScopedCheckContext frames, if any.

  /// "file:line: RDFOPT_CHECK(cond) failed: message" plus the context dump.
  std::string ToString() const;
};

/// Must not return: abort, _exit or throw. Throwing handlers are how tests
/// observe contract failures; the default handler prints and aborts.
using CheckFailureHandler = void (*)(const CheckFailureInfo&);

/// Installs `handler` process-wide and returns the previous one. Passing
/// nullptr restores the default abort handler. Not thread-safe against
/// concurrent failures mid-swap; tests install handlers up front.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

/// Registers a lazy context dump for the current thread's contract
/// failures: if a check fails while the frame is alive, `dump()` is invoked
/// and its result appended to the failure report. Used to attach expensive
/// renderings (EXPLAIN of the executing plan) only when something actually
/// goes wrong. Frames nest; dumps print outermost first.
class ScopedCheckContext {
 public:
  explicit ScopedCheckContext(std::function<std::string()> dump);
  ~ScopedCheckContext();

  ScopedCheckContext(const ScopedCheckContext&) = delete;
  ScopedCheckContext& operator=(const ScopedCheckContext&) = delete;

 private:
  ScopedCheckContext* prev_;
  std::function<std::string()> dump_;
  friend std::string CollectCheckContext();
};

/// Concatenated dumps of the calling thread's live context frames.
std::string CollectCheckContext();

namespace internal {

/// Collects the streamed message and fires the failure handler from its
/// destructor, so `RDFOPT_CHECK(x) << a << b;` reports after the whole
/// message is built. The destructor does not return normally (the handler
/// aborts or throws).
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}
  [[noreturn]] ~CheckFailureStream() noexcept(false);

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

/// Makes the ternary in RDFOPT_CHECK type-check: both arms void. Binds
/// looser than << so the whole streamed chain is swallowed on the passing
/// path.
struct CheckVoidifier {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#ifndef RDFOPT_DISABLE_CHECKS
#define RDFOPT_CHECK(cond)                                          \
  (__builtin_expect(static_cast<bool>(cond), 1))                    \
      ? (void)0                                                     \
      : ::rdfopt::internal::CheckVoidifier() &                      \
            ::rdfopt::internal::CheckFailureStream(__FILE__, __LINE__, #cond) \
                .stream()
#else
// Baseline-only build (cmake -DRDFOPT_DISABLE_CHECKS=ON) for measuring the
// cost of the always-on contracts; the dead `while (false)` keeps condition
// and message type-checked without evaluating either. Never ship this.
#define RDFOPT_CHECK(cond)                                          \
  while (false)                                                     \
  (static_cast<bool>(cond))                                         \
      ? (void)0                                                     \
      : ::rdfopt::internal::CheckVoidifier() &                      \
            ::rdfopt::internal::CheckFailureStream(__FILE__, __LINE__, #cond) \
                .stream()
#endif

/// Asserts `expr` (a Status, or anything with ok() and a status()/ToString)
/// is OK; reports the status text on failure. Evaluates `expr` once.
#define RDFOPT_CHECK_OK(expr)                                            \
  do {                                                                   \
    const auto& _rdfopt_check_st = (expr);                               \
    RDFOPT_CHECK(_rdfopt_check_st.ok())                                  \
        << "status: " << ::rdfopt::internal::StatusText(_rdfopt_check_st); \
  } while (0)

#ifndef NDEBUG
#define RDFOPT_DCHECK(cond) RDFOPT_CHECK(cond)
#define RDFOPT_DCHECK_OK(expr) RDFOPT_CHECK_OK(expr)
#else
// Dead `while (false)` keeps the condition and message type-checked (so a
// Release-only build break is impossible) while evaluating neither.
#define RDFOPT_DCHECK(cond) \
  while (false) RDFOPT_CHECK(cond)
#define RDFOPT_DCHECK_OK(expr) \
  while (false) RDFOPT_CHECK_OK(expr)
#endif

namespace internal {

/// Failure text of a Status-like object (Status has ToString; Result
/// carries a status()).
template <typename T>
std::string StatusText(const T& status_like) {
  if constexpr (requires { status_like.ToString(); }) {
    return status_like.ToString();
  } else {
    return status_like.status().ToString();
  }
}

}  // namespace internal

}  // namespace rdfopt

#endif  // RDFOPT_COMMON_CHECK_H_
