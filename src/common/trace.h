#ifndef RDFOPT_COMMON_TRACE_H_
#define RDFOPT_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"

namespace rdfopt {

/// Per-query tracing for the answering pipeline (see DESIGN.md
/// "Observability"). A `TraceSession` collects a tree of timed spans —
/// parse → minimize → cover-search → reformulate → evaluate, with
/// per-cover-candidate and per-operator children — each carrying key/value
/// attributes (row counters, estimated vs. actual costs).
///
/// Instrumented code opens spans through the RAII `TraceSpan`, which reads
/// the thread-local current session. When no session is installed the span
/// constructor is a single pointer load and branch, and attributes are never
/// formatted: tracing is zero-cost when off.
///
/// Threading model: a session's span buffer is written by exactly one thread
/// at a time — install one session per thread that answers queries. Parallel
/// workers inside one query (engine/evaluator.cc) do not write into the
/// coordinator's session concurrently; each worker records into its own
/// scratch session, and after the workers join the coordinator adopts those
/// buffers in deterministic task order via AdoptChildSpans, re-parenting the
/// workers' spans under its currently open span (e.g. `op.scan` spans from
/// union workers end up under the one `engine.ucq` parent, exactly where the
/// sequential executor would have put them). Reading the session clock
/// (ElapsedMillis) is safe from any thread.

/// One recorded span. Spans are stored flat in open order; the tree is
/// encoded by `parent` (index into the session's span vector, -1 for roots).
struct TraceSpanRecord {
  struct Attribute {
    std::string key;
    std::string value;
    /// True when `value` is the textual form of a number (emitted unquoted
    /// in JSON).
    bool numeric = false;
  };

  std::string name;
  int parent = -1;
  int depth = 0;
  double start_ms = 0.0;     ///< Offset from the session clock's start.
  double duration_ms = 0.0;  ///< Filled when the span closes.
  bool open = false;         ///< Still running (unclosed at export time).
  std::vector<Attribute> attributes;

  const Attribute* FindAttribute(std::string_view key) const;
};

class TraceSession {
 public:
  TraceSession() = default;
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The session receiving this thread's spans; null when tracing is off.
  static TraceSession* Current();
  /// Installs `session` (null uninstalls) and returns the previous one.
  static TraceSession* Install(TraceSession* session);

  /// Drops all recorded spans and restarts the session clock; call between
  /// queries to get one tree per query.
  void Clear();

  /// Milliseconds since construction or the last Clear(); the timeline span
  /// start offsets are measured on. Thread-safe (pure read).
  double ElapsedMillis() const { return clock_.ElapsedMillis(); }

  /// Appends every span of `child` to this session, re-parenting the child's
  /// roots under this session's innermost open span (or as roots). Child
  /// span start offsets are shifted by `start_offset_ms`, the point on this
  /// session's timeline where the child session's clock started. Closed-over
  /// spans keep their recorded durations; the child session is not modified.
  /// Spans over this session's cap are dropped (counted in dropped_spans),
  /// and the child's own dropped count carries over. Must be called from the
  /// thread that owns this session, after the child's writer has finished.
  void AdoptChildSpans(const TraceSession& child, double start_offset_ms);

  const std::vector<TraceSpanRecord>& spans() const { return spans_; }
  /// First span with `name`, or null (test/inspection convenience).
  const TraceSpanRecord* FindSpan(std::string_view name) const;

  /// Spans not recorded because the session hit `max_spans` (their children
  /// attach to the nearest recorded ancestor).
  size_t dropped_spans() const { return dropped_; }
  void set_max_spans(size_t max_spans) { max_spans_ = max_spans; }

  /// Indented tree, one span per line: name, duration, attributes. With
  /// `max_lines` > 0 the output is truncated with an elision marker.
  std::string ToString(size_t max_lines = 0) const;
  /// Nested JSON: {"spans":[{"name":...,"duration_ms":...,"attributes":{...},
  /// "children":[...]}],"dropped_spans":N}.
  std::string ToJson() const;

  // Internals used by TraceSpan; not part of the instrumentation API.
  int OpenSpan(const char* name);
  void CloseSpan(int index);
  void AddAttribute(int index, std::string_view key, std::string value,
                    bool numeric);

 private:
  Stopwatch clock_;
  std::vector<TraceSpanRecord> spans_;
  std::vector<int> open_stack_;
  size_t max_spans_ = 50'000;
  size_t dropped_ = 0;
};

/// RAII span handle. Constructing one on a thread with no installed session
/// records nothing and costs one thread-local read.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : session_(TraceSession::Current()) {
    if (session_ != nullptr) index_ = session_->OpenSpan(name);
  }
  ~TraceSpan() {
    if (session_ != nullptr && index_ >= 0) session_->CloseSpan(index_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when the span is being recorded; guard attribute computations
  /// that themselves allocate (e.g. building a cover key string).
  bool active() const { return session_ != nullptr && index_ >= 0; }

  void Attr(std::string_view key, std::string_view value) {
    if (active()) {
      session_->AddAttribute(index_, key, std::string(value), false);
    }
  }
  void Attr(std::string_view key, const char* value) {
    Attr(key, std::string_view(value));
  }
  void Attr(std::string_view key, double value);
  void Attr(std::string_view key, uint64_t value);  // Also size_t.
  void Attr(std::string_view key, int value) {
    Attr(key, static_cast<uint64_t>(value < 0 ? 0 : value));
  }
  void Attr(std::string_view key, bool value) {
    if (active()) {
      session_->AddAttribute(index_, key, value ? "true" : "false", true);
    }
  }

 private:
  TraceSession* session_;
  int index_ = -1;
};

/// Installs a session for the current scope and restores the previous one on
/// exit (shell `.trace on`, bench --json runs, tests).
class ScopedTraceSession {
 public:
  explicit ScopedTraceSession(TraceSession* session)
      : previous_(TraceSession::Install(session)) {}
  ~ScopedTraceSession() { TraceSession::Install(previous_); }
  ScopedTraceSession(const ScopedTraceSession&) = delete;
  ScopedTraceSession& operator=(const ScopedTraceSession&) = delete;

 private:
  TraceSession* previous_;
};

}  // namespace rdfopt

#endif  // RDFOPT_COMMON_TRACE_H_
