#ifndef RDFOPT_COMMON_STATUS_H_
#define RDFOPT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace rdfopt {

/// Error category for a failed operation.
///
/// The engine never throws: every fallible operation returns a `Status` or a
/// `Result<T>`. Codes mirror the failure modes the paper observes when an
/// RDBMS is handed an oversized reformulation (resource exhaustion, timeouts)
/// plus the usual parse/lookup errors.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  /// The query shape exceeds a hard engine limit (e.g. too many union terms);
  /// models DB2's "stack depth limit exceeded" on huge UCQs (paper, fn. 1).
  kQueryTooComplex,
  /// A materialized intermediate result exceeded the engine memory budget;
  /// models the I/O exceptions the paper reports for large-reformulation
  /// queries.
  kResourceExhausted,
  /// Evaluation or search exceeded its time budget (paper: 2h query timeout,
  /// ECov timeout on the 10-atom DBLP query).
  kTimeout,
  /// The caller-supplied deadline for the whole request passed before the
  /// work could start (e.g. while queued behind the service's admission
  /// controller). Distinct from kTimeout, which means evaluation *ran* and
  /// exceeded its budget; a deadline rejection did no evaluation work at all.
  kDeadlineExceeded,
  /// Work abandoned because a sibling task already failed (first-error-wins
  /// cancellation in the parallel executor); never the root cause of a
  /// failure and never reported past WorkerPool::ParallelFor.
  kCancelled,
  kInternal,
};

/// Human-readable name of a status code ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a context message.
///
/// Cheap to copy in the OK case (empty message). Follows the Arrow/RocksDB
/// idiom: construct via the named factories, test with `ok()`, propagate with
/// `RDFOPT_RETURN_NOT_OK`.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status QueryTooComplex(std::string msg) {
    return Status(StatusCode::kQueryTooComplex, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error Result is a contract violation, fatal in every build type (it used
/// to be UB under NDEBUG); callers on fallible paths test `ok()` first.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error: allows `return Status::...;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    RDFOPT_CHECK(!status_.ok())
        << "Result constructed from OK status without value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const {
    CheckHoldsValue();
    return *value_;
  }
  T& ValueOrDie() {
    CheckHoldsValue();
    return *value_;
  }
  /// Moves the value out; the Result must hold a value.
  T TakeValue() {
    CheckHoldsValue();
    return std::move(*value_);
  }

 private:
  /// Fatal (all build types) when this Result holds an error: yielding a
  /// moved-from/empty optional's value would be UB, and the error it hides
  /// is exactly the message worth dying with.
  void CheckHoldsValue() const {
    RDFOPT_CHECK(ok()) << "value of an error Result accessed; "
                       << status_.ToString();
  }

  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status to the caller.
#define RDFOPT_RETURN_NOT_OK(expr)      \
  do {                                  \
    ::rdfopt::Status _st = (expr);      \
    if (!_st.ok()) return _st;          \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define RDFOPT_ASSIGN_OR_RETURN(lhs, expr)       \
  RDFOPT_ASSIGN_OR_RETURN_IMPL(                  \
      RDFOPT_STATUS_CONCAT(_result_, __LINE__), lhs, expr)

#define RDFOPT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = tmp.TakeValue();

#define RDFOPT_STATUS_CONCAT_IMPL(a, b) a##b
#define RDFOPT_STATUS_CONCAT(a, b) RDFOPT_STATUS_CONCAT_IMPL(a, b)

}  // namespace rdfopt

#endif  // RDFOPT_COMMON_STATUS_H_
