#ifndef RDFOPT_COMMON_WORKER_POOL_H_
#define RDFOPT_COMMON_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace rdfopt {

/// A fixed-size worker pool for intra-query parallelism (parallel UNION
/// branches and JUCQ component evaluation, see DESIGN.md §9).
///
/// Work is submitted in *batches* through ParallelFor: the batch's tasks are
/// claimed from a shared atomic cursor by the pool's worker threads AND by
/// the calling thread, which participates until the batch completes
/// ("help-first" scheduling). Because a waiting caller always executes tasks
/// of its own batch instead of blocking idle, nested ParallelFor calls from
/// inside a task cannot deadlock: every wait makes progress on the finite
/// task DAG.
///
/// Status/exception capture: each task returns a Status; a thrown exception
/// is converted to Status::Internal. The first failure cancels the batch —
/// tasks not yet started are skipped, in-flight tasks drain before
/// ParallelFor returns — and the reported Status is the failure with the
/// smallest task index, preferring "real" errors over kCancelled statuses
/// produced by cooperative cancellation of sibling work.
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: every batch then runs
  /// entirely on the calling thread, preserving the ParallelFor contract).
  explicit WorkerPool(size_t num_threads);
  /// Joins all workers; no batch may be in flight.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(0) .. fn(n-1), distributed over the workers and the calling
  /// thread; returns when every started task has finished. Tasks of one
  /// batch may run in any order and concurrently; a reusable pool may run
  /// many batches sequentially or (from nested tasks) concurrently.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

 private:
  /// One in-flight ParallelFor call; heap-allocated and shared so late
  /// workers can complete their bookkeeping safely.
  struct Batch {
    size_t n = 0;
    const std::function<Status(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};       ///< Claim cursor.
    std::atomic<size_t> done{0};       ///< Completed (or skipped) tasks.
    std::atomic<bool> cancelled{false};
    std::mutex mu;                     ///< Guards failures + completion CV.
    std::condition_variable all_done;
    /// (task index, status) of every failed task; resolved to one Status
    /// after the batch drains.
    std::vector<std::pair<size_t, Status>> failures;
  };

  /// Claims and runs tasks of `batch` until none are left unclaimed.
  static void DrainBatch(const std::shared_ptr<Batch>& batch);
  /// Runs one task, recording failure/cancellation; returns after marking
  /// the task done (notifying the batch when it was the last).
  static void RunTask(const std::shared_ptr<Batch>& batch, size_t index);

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  /// Batches with unclaimed tasks, oldest first; workers drain the front.
  std::vector<std::shared_ptr<Batch>> pending_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rdfopt

#endif  // RDFOPT_COMMON_WORKER_POOL_H_
