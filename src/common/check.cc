#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace rdfopt {

std::string CheckFailureInfo::ToString() const {
  std::string out;
  out += file != nullptr ? file : "?";
  out += ':';
  out += std::to_string(line);
  out += ": RDFOPT_CHECK(";
  out += condition != nullptr ? condition : "?";
  out += ") failed";
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  if (!context_dump.empty()) {
    out += "\n--- check context ---\n";
    out += context_dump;
    if (out.back() != '\n') out += '\n';
    out += "---------------------";
  }
  return out;
}

namespace {

[[noreturn]] void DefaultCheckFailureHandler(const CheckFailureInfo& info) {
  std::string report = info.ToString();
  std::fprintf(stderr, "%s\n", report.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<CheckFailureHandler> g_handler{&DefaultCheckFailureHandler};

thread_local ScopedCheckContext* g_context_top = nullptr;

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  if (handler == nullptr) handler = &DefaultCheckFailureHandler;
  return g_handler.exchange(handler);
}

ScopedCheckContext::ScopedCheckContext(std::function<std::string()> dump)
    : prev_(g_context_top), dump_(std::move(dump)) {
  g_context_top = this;
}

ScopedCheckContext::~ScopedCheckContext() { g_context_top = prev_; }

std::string CollectCheckContext() {
  // Outermost frame first: walk to the bottom of the stack, then unwind.
  std::vector<const ScopedCheckContext*> frames;
  for (const ScopedCheckContext* f = g_context_top; f != nullptr;
       f = f->prev_) {
    frames.push_back(f);
  }
  std::string out;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if ((*it)->dump_) {
      if (!out.empty() && out.back() != '\n') out += '\n';
      out += (*it)->dump_();
    }
  }
  return out;
}

namespace internal {

CheckFailureStream::~CheckFailureStream() noexcept(false) {
  CheckFailureInfo info;
  info.file = file_;
  info.line = line_;
  info.condition = condition_;
  info.message = stream_.str();
  info.context_dump = CollectCheckContext();
  g_handler.load()(info);
  // The handler must abort or throw; if a buggy handler returns, die rather
  // than let execution continue past a failed contract.
  std::abort();
}

}  // namespace internal

}  // namespace rdfopt
