#include "common/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json_writer.h"

namespace rdfopt {

namespace {
thread_local TraceSession* g_current_session = nullptr;

std::string FormatNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string FormatNumber(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}
}  // namespace

const TraceSpanRecord::Attribute* TraceSpanRecord::FindAttribute(
    std::string_view key) const {
  for (const Attribute& attr : attributes) {
    if (attr.key == key) return &attr;
  }
  return nullptr;
}

TraceSession* TraceSession::Current() { return g_current_session; }

TraceSession* TraceSession::Install(TraceSession* session) {
  TraceSession* previous = g_current_session;
  g_current_session = session;
  return previous;
}

void TraceSession::Clear() {
  spans_.clear();
  open_stack_.clear();
  dropped_ = 0;
  clock_.Restart();
}

const TraceSpanRecord* TraceSession::FindSpan(std::string_view name) const {
  for (const TraceSpanRecord& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

void TraceSession::AdoptChildSpans(const TraceSession& child,
                                   double start_offset_ms) {
  const int adopt_parent = open_stack_.empty() ? -1 : open_stack_.back();
  const int adopt_depth =
      adopt_parent < 0 ? 0
                       : spans_[static_cast<size_t>(adopt_parent)].depth + 1;
  // Child indices shift by the current size; dropped children stay dropped.
  const int base = static_cast<int>(spans_.size());
  for (const TraceSpanRecord& record : child.spans()) {
    if (spans_.size() >= max_spans_) {
      ++dropped_;
      continue;
    }
    TraceSpanRecord adopted = record;
    adopted.start_ms += start_offset_ms;
    if (adopted.parent < 0) {
      adopted.parent = adopt_parent;
      adopted.depth = adopt_depth;
    } else {
      adopted.parent += base;
      adopted.depth += adopt_depth;
    }
    spans_.push_back(std::move(adopted));
  }
  dropped_ += child.dropped_spans();
}

int TraceSession::OpenSpan(const char* name) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return -1;
  }
  TraceSpanRecord span;
  span.name = name;
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.depth = span.parent < 0
                   ? 0
                   : spans_[static_cast<size_t>(span.parent)].depth + 1;
  span.start_ms = clock_.ElapsedMillis();
  span.open = true;
  int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(index);
  return index;
}

void TraceSession::CloseSpan(int index) {
  if (index < 0 || static_cast<size_t>(index) >= spans_.size()) return;
  TraceSpanRecord& span = spans_[static_cast<size_t>(index)];
  span.duration_ms = clock_.ElapsedMillis() - span.start_ms;
  span.open = false;
  // RAII destruction order makes `index` the top of the stack; tolerate
  // out-of-order closes (e.g. a span outliving a Clear()) by unwinding.
  while (!open_stack_.empty()) {
    int top = open_stack_.back();
    open_stack_.pop_back();
    if (top == index) break;
  }
}

void TraceSession::AddAttribute(int index, std::string_view key,
                                std::string value, bool numeric) {
  if (index < 0 || static_cast<size_t>(index) >= spans_.size()) return;
  spans_[static_cast<size_t>(index)].attributes.push_back(
      {std::string(key), std::move(value), numeric});
}

void TraceSpan::Attr(std::string_view key, double value) {
  if (active()) {
    // Non-finite values (e.g. the +inf cost of an infeasible cover) are not
    // representable as JSON numbers; store them as strings.
    session_->AddAttribute(index_, key, FormatNumber(value),
                           std::isfinite(value));
  }
}

void TraceSpan::Attr(std::string_view key, uint64_t value) {
  if (active()) {
    session_->AddAttribute(index_, key, FormatNumber(value), true);
  }
}

std::string TraceSession::ToString(size_t max_lines) const {
  std::string out;
  size_t lines = 0;
  for (const TraceSpanRecord& span : spans_) {
    if (max_lines > 0 && lines >= max_lines) {
      out += "  ... (" + FormatNumber(uint64_t{spans_.size() - lines}) +
             " more spans)\n";
      break;
    }
    out.append(static_cast<size_t>(span.depth) * 2, ' ');
    out += span.name;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "  %.3f ms", span.duration_ms);
    out += buf;
    if (span.open) out += " (open)";
    for (const TraceSpanRecord::Attribute& attr : span.attributes) {
      out += "  ";
      out += attr.key;
      out += '=';
      out += attr.value;
    }
    out += '\n';
    ++lines;
  }
  if (dropped_ > 0) {
    out += "  (" + FormatNumber(uint64_t{dropped_}) +
           " spans dropped at the session cap)\n";
  }
  return out;
}

namespace {
void WriteSpanJson(const std::vector<TraceSpanRecord>& spans,
                   const std::vector<std::vector<int>>& children, int index,
                   JsonWriter* json) {
  const TraceSpanRecord& span = spans[static_cast<size_t>(index)];
  json->BeginObject();
  json->Key("name").Value(std::string_view(span.name));
  json->Key("start_ms").Value(span.start_ms);
  json->Key("duration_ms").Value(span.duration_ms);
  if (span.open) json->Key("open").Value(true);
  if (!span.attributes.empty()) {
    json->Key("attributes").BeginObject();
    for (const TraceSpanRecord::Attribute& attr : span.attributes) {
      json->Key(attr.key);
      if (attr.numeric) {
        json->Raw(attr.value);
      } else {
        json->Value(std::string_view(attr.value));
      }
    }
    json->EndObject();
  }
  if (!children[static_cast<size_t>(index)].empty()) {
    json->Key("children").BeginArray();
    for (int child : children[static_cast<size_t>(index)]) {
      WriteSpanJson(spans, children, child, json);
    }
    json->EndArray();
  }
  json->EndObject();
}
}  // namespace

std::string TraceSession::ToJson() const {
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[static_cast<size_t>(spans_[i].parent)].push_back(
          static_cast<int>(i));
    }
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("spans").BeginArray();
  for (int root : roots) WriteSpanJson(spans_, children, root, &json);
  json.EndArray();
  json.Key("dropped_spans").Value(uint64_t{dropped_});
  json.EndObject();
  return json.TakeString();
}

}  // namespace rdfopt
