#ifndef RDFOPT_WORKLOAD_QUERY_SETS_H_
#define RDFOPT_WORKLOAD_QUERY_SETS_H_

#include <string>
#include <vector>

namespace rdfopt {

/// One benchmark query: a name ("Q07") and its SPARQL text.
struct BenchmarkQuery {
  std::string name;
  std::string text;
};

/// The 28 LUBM-style evaluation queries (paper §5.1, Table 4 top). The
/// original query texts are not part of the paper text we reproduce from, so
/// these are re-authored to span the same structural variety: 1-6 atoms,
/// UCQ-reformulation sizes from 1 to several hundred thousand union terms,
/// result sizes from empty to a large fraction of the dataset, and no
/// redundant triples. Q07 and Q28 are the paper's motivating examples q1
/// and q2 (§3) with this generator's constants.
const std::vector<BenchmarkQuery>& LubmQuerySet();

/// The 10 DBLP-style evaluation queries (Table 4 bottom); Q10 is the
/// 10-atom query whose cover space defeats ECov (paper §5.2, Fig 8).
const std::vector<BenchmarkQuery>& DblpQuerySet();

/// The motivating examples of §3 (also LubmQuerySet()[6] and [27]).
const BenchmarkQuery& LubmMotivatingQ1();
const BenchmarkQuery& LubmMotivatingQ2();

}  // namespace rdfopt

#endif  // RDFOPT_WORKLOAD_QUERY_SETS_H_
