#include "workload/query_sets.h"

namespace rdfopt {

namespace {

constexpr char kUbPrefix[] =
    "PREFIX ub: <http://lubm.example.org/univ#>\n";
constexpr char kBibPrefix[] =
    "PREFIX bib: <http://dblp.example.org/bib#>\n";
constexpr char kUniv0[] = "<http://lubm.example.org/data/univ0>";
constexpr char kDept0[] = "<http://lubm.example.org/data/univ0/dept0>";
constexpr char kVenue0[] = "<http://dblp.example.org/rec/venue0>";

BenchmarkQuery Lubm(const char* name, const std::string& body) {
  return {name, std::string(kUbPrefix) + body};
}
BenchmarkQuery Dblp(const char* name, const std::string& body) {
  return {name, std::string(kBibPrefix) + body};
}

std::vector<BenchmarkQuery> MakeLubmQueries() {
  std::vector<BenchmarkQuery> qs;
  // -- Single atoms, increasing reformulation size.
  qs.push_back(Lubm("Q01",
      "SELECT ?x WHERE { ?x rdf:type ub:FullProfessor . }"));
  qs.push_back(Lubm("Q02",
      "SELECT ?x WHERE { ?x rdf:type ub:Professor . }"));
  qs.push_back(Lubm("Q03",
      "SELECT ?x WHERE { ?x rdf:type ub:Person . }"));
  qs.push_back(Lubm("Q04",
      "SELECT ?x ?y WHERE { ?x ub:degreeFrom ?y . }"));
  qs.push_back(Lubm("Q05",
      "SELECT ?x ?y WHERE { ?x ub:memberOf ?y . }"));
  qs.push_back(Lubm("Q06",
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . }"));
  // -- The paper's motivating example q1 (three atoms, one type-variable).
  qs.push_back(Lubm("Q07",
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . "
      "?x ub:degreeFrom " + std::string(kUniv0) + " . "
      "?x ub:memberOf " + std::string(kDept0) + " . }"));
  // -- Two-to-four atom joins over the hierarchy.
  qs.push_back(Lubm("Q08",
      "SELECT ?x ?y WHERE { ?x rdf:type ub:Professor . "
      "?x ub:degreeFrom ?y . }"));
  qs.push_back(Lubm("Q09",
      "SELECT ?x ?p ?c WHERE { ?x rdf:type ub:Student . "
      "?x ub:advisor ?p . ?p ub:teacherOf ?c . ?x ub:takesCourse ?c . }"));
  qs.push_back(Lubm("Q10",
      "SELECT ?x WHERE { ?x ub:worksFor " + std::string(kDept0) + " . "
      "?x rdf:type ub:Faculty . }"));
  qs.push_back(Lubm("Q11",
      "SELECT ?x ?y WHERE { ?x ub:publicationAuthor ?y . "
      "?x rdf:type ub:Article . }"));
  qs.push_back(Lubm("Q12",
      "SELECT ?x ?y ?z WHERE { ?x rdf:type ?y . ?x ub:worksFor ?z . "
      "?z ub:subOrganizationOf " + std::string(kUniv0) + " . }"));
  qs.push_back(Lubm("Q13",
      "SELECT ?x WHERE { ?x ub:headOf ?d . "
      "?d ub:subOrganizationOf " + std::string(kUniv0) + " . }"));
  qs.push_back(Lubm("Q14",
      "SELECT ?x ?y WHERE { ?x ub:memberOf ?z . ?y ub:memberOf ?z . "
      "?x ub:advisor ?y . }"));
  qs.push_back(Lubm("Q15",
      "SELECT ?x ?y ?v WHERE { ?x rdf:type ?v . ?x ub:takesCourse ?y . "
      "?y rdf:type ub:GraduateCourse . }"));
  qs.push_back(Lubm("Q16",
      "SELECT ?x WHERE { ?x rdf:type ub:Organization . }"));
  qs.push_back(Lubm("Q17",
      "SELECT ?p ?d WHERE { ?p ub:worksFor ?d . "
      "?d rdf:type ub:Department . }"));
  qs.push_back(Lubm("Q18",
      "SELECT ?s ?c ?p WHERE { ?s ub:takesCourse ?c . "
      "?p ub:teacherOf ?c . ?p rdf:type ub:FullProfessor . }"));
  qs.push_back(Lubm("Q19",
      "SELECT ?x ?y WHERE { ?x rdf:type ub:Faculty . ?y ub:advisor ?x . }"));
  qs.push_back(Lubm("Q20",
      "SELECT ?x WHERE { ?x rdf:type ub:Employee . "
      "?x ub:degreeFrom " + std::string(kUniv0) + " . }"));
  qs.push_back(Lubm("Q21",
      "SELECT ?x ?y ?z WHERE { ?x ub:advisor ?y . ?y ub:headOf ?z . }"));
  qs.push_back(Lubm("Q22",
      "SELECT ?x ?y WHERE { ?x ub:teacherOf ?c . "
      "?y ub:teachingAssistantOf ?c . }"));
  qs.push_back(Lubm("Q23",
      "SELECT ?x ?u WHERE { ?x rdf:type ?u . ?x ub:headOf ?d . }"));
  qs.push_back(Lubm("Q24",
      "SELECT ?x ?y ?u ?v WHERE { ?x rdf:type ?u . ?y rdf:type ?v . "
      "?x ub:advisor ?y . }"));
  qs.push_back(Lubm("Q25",
      "SELECT ?x ?z WHERE { ?x rdf:type ub:GraduateStudent . "
      "?x ub:memberOf ?z . "
      "?z ub:subOrganizationOf " + std::string(kUniv0) + " . }"));
  qs.push_back(Lubm("Q26",
      "SELECT ?p WHERE { ?p rdf:type ub:Publication . "
      "?p ub:publicationAuthor ?a . ?a rdf:type ub:Chair . }"));
  qs.push_back(Lubm("Q27",
      "SELECT ?x ?y ?z WHERE { ?x ub:memberOf ?z . ?y ub:memberOf ?z . "
      "?x ub:doctoralDegreeFrom " + std::string(kUniv0) + " . "
      "?y ub:mastersDegreeFrom " + std::string(kUniv0) + " . }"));
  // -- The paper's motivating example q2 (six atoms, two type-variables):
  //    its UCQ reformulation is infeasible on every engine profile.
  qs.push_back(Lubm("Q28",
      "SELECT ?x ?u ?y ?v ?z WHERE { ?x rdf:type ?u . ?y rdf:type ?v . "
      "?x ub:mastersDegreeFrom " + std::string(kUniv0) + " . "
      "?y ub:doctoralDegreeFrom " + std::string(kUniv0) + " . "
      "?x ub:memberOf ?z . ?y ub:memberOf ?z . }"));
  return qs;
}

std::vector<BenchmarkQuery> MakeDblpQueries() {
  std::vector<BenchmarkQuery> qs;
  qs.push_back(Dblp("Q01",
      "SELECT ?x WHERE { ?x rdf:type bib:Article . }"));
  qs.push_back(Dblp("Q02",
      "SELECT ?x ?y WHERE { ?x bib:contributor ?y . }"));
  qs.push_back(Dblp("Q03",
      "SELECT ?x ?y WHERE { ?x bib:publishedIn ?y . }"));
  qs.push_back(Dblp("Q04",
      "SELECT ?x WHERE { ?x rdf:type bib:Person . }"));
  qs.push_back(Dblp("Q05",
      "SELECT ?x ?v WHERE { ?x bib:publishedIn ?v . "
      "?v rdf:type bib:Conference . }"));
  qs.push_back(Dblp("Q06",
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . "
      "?x bib:publishedIn " + std::string(kVenue0) + " . }"));
  qs.push_back(Dblp("Q07",
      "SELECT ?x ?y WHERE { ?x bib:cites ?y . ?y rdf:type bib:Thesis . }"));
  qs.push_back(Dblp("Q08",
      "SELECT ?x ?a WHERE { ?x bib:authoredBy ?a . ?x bib:partOf ?p . "
      "?p rdf:type bib:Proceedings . }"));
  qs.push_back(Dblp("Q09",
      "SELECT ?x ?y ?a WHERE { ?x bib:contributor ?a . "
      "?y bib:contributor ?a . ?x bib:cites ?y . }"));
  // Ten atoms: the cover space is too large for exhaustive search (the
  // paper's ECov times out on DBLP Q10).
  qs.push_back(Dblp("Q10",
      "SELECT ?x ?y ?u ?v WHERE { ?x rdf:type ?u . ?y rdf:type ?v . "
      "?x bib:contributor ?a . ?y bib:contributor ?a . "
      "?x bib:publishedIn ?w . ?y bib:publishedIn ?w . "
      "?x bib:cites ?z . ?y bib:cites ?z . "
      "?x bib:year ?yr . ?y bib:year ?yr . }"));
  return qs;
}

}  // namespace

const std::vector<BenchmarkQuery>& LubmQuerySet() {
  static const auto& queries =
      *new std::vector<BenchmarkQuery>(MakeLubmQueries());
  return queries;
}

const std::vector<BenchmarkQuery>& DblpQuerySet() {
  static const auto& queries =
      *new std::vector<BenchmarkQuery>(MakeDblpQueries());
  return queries;
}

const BenchmarkQuery& LubmMotivatingQ1() { return LubmQuerySet()[6]; }
const BenchmarkQuery& LubmMotivatingQ2() { return LubmQuerySet()[27]; }

}  // namespace rdfopt
