#ifndef RDFOPT_WORKLOAD_LUBM_H_
#define RDFOPT_WORKLOAD_LUBM_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"

namespace rdfopt {

/// Deterministic pseudo-random generator (splitmix64) used by the workload
/// generators; self-contained so generated datasets are bit-identical across
/// platforms and standard-library versions.
class WorkloadRng {
 public:
  explicit WorkloadRng(uint64_t seed) : state_(seed) {}

  uint64_t Next();
  /// Uniform integer in [0, bound); bound > 0.
  uint64_t Uniform(uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi);
  /// True with probability `p`.
  bool Chance(double p);

 private:
  uint64_t state_;
};

/// Our LUBM-style university benchmark (paper §5.1 uses LUBM [26] at 1M and
/// 100M triples): a Univ-Bench-like RDFS ontology — 38 classes and 14
/// constrained properties with subclass/subproperty/domain/range statements
/// — plus a scalable synthetic data generator with LUBM-like entity ratios
/// (universities > departments > faculty/students/courses/publications).
///
/// IRIs are stable across scales: <http://lubm.example.org/univ#Class>,
/// <http://lubm.example.org/data/univN[/deptM[/entityK]]>, so the benchmark
/// queries can reference constants like univ0 or univ0/dept0 at any scale.
struct LubmOptions {
  size_t num_universities = 2;
  uint64_t seed = 20150323;  // EDBT 2015.
  /// When > 0, the ontology additionally declares this many leaf
  /// "SpecialtyK" classes, round-robined as direct subclasses of
  /// FullProfessor / AssociateProfessor / AssistantProfessor, and every
  /// professor of those ranks is typed at one of its rank's specialty
  /// leaves instead of at the rank. A query over ub:Professor then
  /// reformulates into hundreds of type disjuncts — the deep-hierarchy
  /// regime the hierarchy-range collapse (DESIGN.md §12) targets. 0 (the
  /// default) leaves the generated dataset bit-identical to earlier
  /// versions.
  size_t fine_grained_specializations = 0;
};

/// Adds the LUBM-style schema and data to `graph` (which may be empty) and
/// returns the number of data triples added. Call graph->FinalizeSchema()
/// afterwards.
size_t GenerateLubm(const LubmOptions& options, Graph* graph);

/// Number of universities that yields roughly `target_triples` data triples.
LubmOptions LubmOptionsForTripleTarget(size_t target_triples);

/// The ontology namespace prefix used in queries: "http://lubm.example.org/univ#".
extern const char kLubmNs[];
/// Instance namespace: "http://lubm.example.org/data/".
extern const char kLubmData[];

}  // namespace rdfopt

#endif  // RDFOPT_WORKLOAD_LUBM_H_
