#include "workload/lubm.h"

#include <algorithm>
#include <vector>

#include "rdf/vocabulary.h"

namespace rdfopt {

const char kLubmNs[] = "http://lubm.example.org/univ#";
const char kLubmData[] = "http://lubm.example.org/data/";

uint64_t WorkloadRng::Next() {
  // splitmix64.
  state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t WorkloadRng::Uniform(uint64_t bound) { return Next() % bound; }

uint64_t WorkloadRng::Between(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

bool WorkloadRng::Chance(double p) {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
}

namespace {

/// Interned ids of the LUBM-style vocabulary, plus schema emission.
struct LubmVocab {
  // Classes.
  ValueId organization, university, department, research_group, program,
      institute, college;
  ValueId person, employee, faculty, professor, full_professor,
      associate_professor, assistant_professor, visiting_professor, chair,
      dean, lecturer, post_doc, administrative_staff, clerical_staff,
      systems_staff;
  ValueId student, undergraduate_student, graduate_student,
      teaching_assistant, research_assistant;
  ValueId work, course, graduate_course, research, publication, article,
      journal_article, conference_paper, technical_report, book, manual_cls,
      software;
  // Constrained properties.
  ValueId member_of, works_for, head_of, sub_organization_of, degree_from,
      undergraduate_degree_from, masters_degree_from, doctoral_degree_from,
      teacher_of, takes_course, teaching_assistant_of, advisor,
      publication_author, research_project;
  // Unconstrained (plain) properties.
  ValueId name, email, telephone;

  ValueId rdf_type;
  ValueId subclassof, subpropertyof, domain, range;

  /// Leaf specialty classes per professor rank (see
  /// LubmOptions::fine_grained_specializations); empty at the default 0.
  std::vector<ValueId> specialties[3];  // full / associate / assistant.
};

LubmVocab InternVocab(Graph* graph, size_t fine_grained) {
  Dictionary& d = graph->dict();
  auto cls = [&](const char* local) {
    return d.InternIri(std::string(kLubmNs) + local);
  };
  LubmVocab v;
  v.organization = cls("Organization");
  v.university = cls("University");
  v.department = cls("Department");
  v.research_group = cls("ResearchGroup");
  v.program = cls("Program");
  v.institute = cls("Institute");
  v.college = cls("College");
  v.person = cls("Person");
  v.employee = cls("Employee");
  v.faculty = cls("Faculty");
  v.professor = cls("Professor");
  v.full_professor = cls("FullProfessor");
  v.associate_professor = cls("AssociateProfessor");
  v.assistant_professor = cls("AssistantProfessor");
  v.visiting_professor = cls("VisitingProfessor");
  v.chair = cls("Chair");
  v.dean = cls("Dean");
  v.lecturer = cls("Lecturer");
  v.post_doc = cls("PostDoc");
  v.administrative_staff = cls("AdministrativeStaff");
  v.clerical_staff = cls("ClericalStaff");
  v.systems_staff = cls("SystemsStaff");
  v.student = cls("Student");
  v.undergraduate_student = cls("UndergraduateStudent");
  v.graduate_student = cls("GraduateStudent");
  v.teaching_assistant = cls("TeachingAssistant");
  v.research_assistant = cls("ResearchAssistant");
  v.work = cls("Work");
  v.course = cls("Course");
  v.graduate_course = cls("GraduateCourse");
  v.research = cls("Research");
  v.publication = cls("Publication");
  v.article = cls("Article");
  v.journal_article = cls("JournalArticle");
  v.conference_paper = cls("ConferencePaper");
  v.technical_report = cls("TechnicalReport");
  v.book = cls("Book");
  v.manual_cls = cls("Manual");
  v.software = cls("Software");

  v.member_of = cls("memberOf");
  v.works_for = cls("worksFor");
  v.head_of = cls("headOf");
  v.sub_organization_of = cls("subOrganizationOf");
  v.degree_from = cls("degreeFrom");
  v.undergraduate_degree_from = cls("undergraduateDegreeFrom");
  v.masters_degree_from = cls("mastersDegreeFrom");
  v.doctoral_degree_from = cls("doctoralDegreeFrom");
  v.teacher_of = cls("teacherOf");
  v.takes_course = cls("takesCourse");
  v.teaching_assistant_of = cls("teachingAssistantOf");
  v.advisor = cls("advisor");
  v.publication_author = cls("publicationAuthor");
  v.research_project = cls("researchProject");
  v.name = cls("name");
  v.email = cls("emailAddress");
  v.telephone = cls("telephone");

  for (size_t i = 0; i < fine_grained; ++i) {
    v.specialties[i % 3].push_back(
        cls(("Specialty" + std::to_string(i)).c_str()));
  }

  v.rdf_type = graph->vocab().rdf_type;
  v.subclassof = graph->vocab().rdfs_subclassof;
  v.subpropertyof = graph->vocab().rdfs_subpropertyof;
  v.domain = graph->vocab().rdfs_domain;
  v.range = graph->vocab().rdfs_range;
  return v;
}

void EmitSchema(const LubmVocab& v, Graph* g) {
  auto sc = [&](ValueId sub, ValueId super) {
    g->AddEncoded(sub, v.subclassof, super);
  };
  auto sp = [&](ValueId sub, ValueId super) {
    g->AddEncoded(sub, v.subpropertyof, super);
  };
  auto dom = [&](ValueId p, ValueId c) { g->AddEncoded(p, v.domain, c); };
  auto rng = [&](ValueId p, ValueId c) { g->AddEncoded(p, v.range, c); };

  // Organizations.
  sc(v.university, v.organization);
  sc(v.department, v.organization);
  sc(v.research_group, v.organization);
  sc(v.program, v.organization);
  sc(v.institute, v.organization);
  sc(v.college, v.organization);
  // People.
  sc(v.employee, v.person);
  sc(v.faculty, v.employee);
  sc(v.professor, v.faculty);
  sc(v.full_professor, v.professor);
  sc(v.associate_professor, v.professor);
  sc(v.assistant_professor, v.professor);
  sc(v.visiting_professor, v.professor);
  sc(v.chair, v.professor);
  sc(v.dean, v.professor);
  sc(v.lecturer, v.faculty);
  sc(v.post_doc, v.faculty);
  sc(v.administrative_staff, v.employee);
  sc(v.clerical_staff, v.administrative_staff);
  sc(v.systems_staff, v.administrative_staff);
  sc(v.student, v.person);
  sc(v.undergraduate_student, v.student);
  sc(v.graduate_student, v.student);
  sc(v.teaching_assistant, v.graduate_student);
  sc(v.research_assistant, v.graduate_student);
  // Works.
  sc(v.course, v.work);
  sc(v.graduate_course, v.course);
  sc(v.research, v.work);
  sc(v.publication, v.work);
  sc(v.article, v.publication);
  sc(v.journal_article, v.article);
  sc(v.conference_paper, v.article);
  sc(v.technical_report, v.article);
  sc(v.book, v.publication);
  sc(v.manual_cls, v.publication);
  sc(v.software, v.publication);
  // Fine-grained professor specialty leaves (empty at the default 0).
  const ValueId rank_of[3] = {v.full_professor, v.associate_professor,
                              v.assistant_professor};
  for (int r = 0; r < 3; ++r) {
    for (ValueId specialty : v.specialties[r]) sc(specialty, rank_of[r]);
  }

  // Properties.
  dom(v.member_of, v.person);
  rng(v.member_of, v.organization);
  sp(v.works_for, v.member_of);
  dom(v.works_for, v.employee);
  sp(v.head_of, v.works_for);
  dom(v.head_of, v.faculty);
  dom(v.sub_organization_of, v.organization);
  rng(v.sub_organization_of, v.organization);
  dom(v.degree_from, v.person);
  rng(v.degree_from, v.university);
  sp(v.undergraduate_degree_from, v.degree_from);
  sp(v.masters_degree_from, v.degree_from);
  sp(v.doctoral_degree_from, v.degree_from);
  dom(v.teacher_of, v.faculty);
  rng(v.teacher_of, v.course);
  dom(v.takes_course, v.student);
  rng(v.takes_course, v.course);
  dom(v.teaching_assistant_of, v.teaching_assistant);
  rng(v.teaching_assistant_of, v.course);
  dom(v.advisor, v.person);
  rng(v.advisor, v.professor);
  dom(v.publication_author, v.publication);
  rng(v.publication_author, v.person);
  dom(v.research_project, v.research_group);
  rng(v.research_project, v.research);
  // name/emailAddress/telephone stay unconstrained on purpose: atoms over
  // them reformulate only to themselves.
}

/// Per-university data emission with LUBM-like ratios.
class UniversityEmitter {
 public:
  UniversityEmitter(const LubmVocab& v, Graph* g, WorkloadRng* rng)
      : v_(v), g_(g), rng_(rng), dict_(g->dict()) {}

  size_t EmitUniversity(size_t u, size_t num_universities) {
    triples_emitted_ = 0;
    num_universities_ = num_universities;
    std::string base = std::string(kLubmData) + "univ" + std::to_string(u);
    univ_ = dict_.InternIri(base);
    Type(univ_, v_.university);

    const size_t num_depts = rng_->Between(12, 18);
    for (size_t dep = 0; dep < num_depts; ++dep) {
      EmitDepartment(base, dep);
    }
    return triples_emitted_;
  }

 private:
  void Add(ValueId s, ValueId p, ValueId o) {
    g_->AddEncoded(s, p, o);
    ++triples_emitted_;
  }
  void Type(ValueId s, ValueId c) { Add(s, v_.rdf_type, c); }
  ValueId Iri(const std::string& iri) { return dict_.InternIri(iri); }
  ValueId Lit(const std::string& value) { return dict_.InternLiteral(value); }

  ValueId RandomUniversity() {
    return Iri(std::string(kLubmData) + "univ" +
               std::to_string(rng_->Uniform(num_universities_)));
  }

  void EmitPerson(ValueId person, const std::string& iri) {
    Add(person, v_.name, Lit("name-of-" + iri.substr(iri.rfind('/') + 1)));
    if (rng_->Chance(0.8)) {
      Add(person, v_.email,
          Lit(iri.substr(iri.rfind('/') + 1) + "@lubm.example.org"));
    }
  }

  void EmitDepartment(const std::string& univ_base, size_t dep) {
    std::string dbase = univ_base + "/dept" + std::to_string(dep);
    ValueId dept = Iri(dbase);
    Type(dept, v_.department);
    Add(dept, v_.sub_organization_of, univ_);

    // Courses first, so teachers/students can reference them.
    const size_t num_courses = rng_->Between(25, 40);
    const size_t num_grad_courses = rng_->Between(12, 20);
    std::vector<ValueId> courses;
    std::vector<ValueId> grad_courses;
    for (size_t c = 0; c < num_courses; ++c) {
      ValueId course = Iri(dbase + "/course" + std::to_string(c));
      Type(course, v_.course);
      courses.push_back(course);
    }
    for (size_t c = 0; c < num_grad_courses; ++c) {
      ValueId course = Iri(dbase + "/gradCourse" + std::to_string(c));
      Type(course, v_.graduate_course);
      grad_courses.push_back(course);
    }

    // Research groups.
    const size_t num_groups = rng_->Between(4, 8);
    for (size_t gidx = 0; gidx < num_groups; ++gidx) {
      ValueId group = Iri(dbase + "/group" + std::to_string(gidx));
      Type(group, v_.research_group);
      Add(group, v_.sub_organization_of, dept);
      ValueId project = Iri(dbase + "/project" + std::to_string(gidx));
      Type(project, v_.research);
      Add(group, v_.research_project, project);
    }

    // Faculty.
    struct Rank {
      ValueId cls;
      size_t lo, hi;
      const char* label;
    };
    const Rank ranks[] = {
        {v_.full_professor, 6, 9, "full"},
        {v_.associate_professor, 8, 12, "assoc"},
        {v_.assistant_professor, 6, 10, "assist"},
        {v_.lecturer, 3, 5, "lect"},
    };
    std::vector<ValueId> professors;
    size_t pub_counter = 0;
    for (const Rank& rank : ranks) {
      size_t count = rng_->Between(rank.lo, rank.hi);
      for (size_t i = 0; i < count; ++i) {
        std::string piri =
            dbase + "/" + rank.label + std::to_string(i);
        ValueId prof = Iri(piri);
        // With fine-grained specializations, professors of the three
        // specialized ranks are typed at a leaf specialty (round-robin);
        // reasoning still derives the rank, but raw type triples sit at the
        // leaves — the regime where reformulations explode.
        const std::vector<ValueId>* specialties =
            rank.cls == v_.full_professor        ? &v_.specialties[0]
            : rank.cls == v_.associate_professor ? &v_.specialties[1]
            : rank.cls == v_.assistant_professor ? &v_.specialties[2]
                                                 : nullptr;
        if (specialties != nullptr && !specialties->empty()) {
          Type(prof, (*specialties)[specialty_counter_++ %
                                    specialties->size()]);
        } else {
          Type(prof, rank.cls);
        }
        Add(prof, v_.works_for, dept);
        Add(prof, v_.undergraduate_degree_from, RandomUniversity());
        if (rank.cls != v_.lecturer) {
          Add(prof, v_.masters_degree_from, RandomUniversity());
          Add(prof, v_.doctoral_degree_from, RandomUniversity());
          professors.push_back(prof);
        }
        EmitPerson(prof, piri);
        // Teaching.
        Add(prof, v_.teacher_of,
            courses[rng_->Uniform(courses.size())]);
        if (rng_->Chance(0.5)) {
          Add(prof, v_.teacher_of,
              grad_courses[rng_->Uniform(grad_courses.size())]);
        }
        // Publications.
        size_t pubs = rng_->Between(4, 10);
        for (size_t k = 0; k < pubs; ++k) {
          std::string pub_iri =
              dbase + "/pub" + std::to_string(pub_counter++);
          ValueId pub = Iri(pub_iri);
          const ValueId pub_classes[] = {
              v_.journal_article, v_.conference_paper, v_.technical_report,
              v_.book, v_.software};
          Type(pub, pub_classes[rng_->Uniform(5)]);
          Add(pub, v_.publication_author, prof);
        }
      }
    }
    // Department chair: an extra head professor.
    if (!professors.empty()) {
      ValueId chair = professors[rng_->Uniform(professors.size())];
      Add(chair, v_.head_of, dept);
      Type(chair, v_.chair);
    }

    // Undergraduate students.
    const size_t num_ug = rng_->Between(90, 140);
    for (size_t i = 0; i < num_ug; ++i) {
      std::string siri = dbase + "/ug" + std::to_string(i);
      ValueId s = Iri(siri);
      Type(s, v_.undergraduate_student);
      Add(s, v_.member_of, dept);
      size_t taking = rng_->Between(2, 4);
      for (size_t k = 0; k < taking; ++k) {
        Add(s, v_.takes_course, courses[rng_->Uniform(courses.size())]);
      }
      if (rng_->Chance(0.15)) EmitPerson(s, siri);
    }

    // Graduate students.
    const size_t num_grad = rng_->Between(30, 50);
    for (size_t i = 0; i < num_grad; ++i) {
      std::string siri = dbase + "/grad" + std::to_string(i);
      ValueId s = Iri(siri);
      double roll = rng_->Chance(0.2) ? 1.0 : 0.0;
      if (roll > 0.0) {
        Type(s, rng_->Chance(0.5) ? v_.teaching_assistant
                                  : v_.research_assistant);
      } else {
        Type(s, v_.graduate_student);
      }
      Add(s, v_.member_of, dept);
      Add(s, v_.undergraduate_degree_from, RandomUniversity());
      if (rng_->Chance(0.3)) {
        Add(s, v_.masters_degree_from, RandomUniversity());
      }
      size_t taking = rng_->Between(1, 3);
      for (size_t k = 0; k < taking; ++k) {
        Add(s, v_.takes_course,
            grad_courses[rng_->Uniform(grad_courses.size())]);
      }
      if (!professors.empty()) {
        Add(s, v_.advisor, professors[rng_->Uniform(professors.size())]);
      }
      if (rng_->Chance(0.2)) EmitPerson(s, siri);
    }
  }

  const LubmVocab& v_;
  Graph* g_;
  WorkloadRng* rng_;
  Dictionary& dict_;
  ValueId univ_ = kInvalidValueId;
  size_t num_universities_ = 0;
  size_t triples_emitted_ = 0;
  size_t specialty_counter_ = 0;
};

}  // namespace

size_t GenerateLubm(const LubmOptions& options, Graph* graph) {
  LubmVocab vocab =
      InternVocab(graph, options.fine_grained_specializations);
  EmitSchema(vocab, graph);
  WorkloadRng rng(options.seed);
  UniversityEmitter emitter(vocab, graph, &rng);
  size_t total = 0;
  for (size_t u = 0; u < options.num_universities; ++u) {
    total += emitter.EmitUniversity(u, options.num_universities);
  }
  return total;
}

LubmOptions LubmOptionsForTripleTarget(size_t target_triples) {
  // One university is ~55k data triples with the ratios above.
  constexpr size_t kTriplesPerUniversity = 55000;
  LubmOptions options;
  options.num_universities =
      std::max<size_t>(1, (target_triples + kTriplesPerUniversity / 2) /
                              kTriplesPerUniversity);
  return options;
}

}  // namespace rdfopt
