#ifndef RDFOPT_WORKLOAD_DBLP_H_
#define RDFOPT_WORKLOAD_DBLP_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rdfopt {

/// DBLP-style bibliographic workload (paper §5.1 uses the 8M-triple DBLP
/// dataset [29]): a publication/author/venue ontology — 21 classes, 8
/// constrained properties — and a scalable synthetic generator.
///
/// IRIs: <http://dblp.example.org/bib#Class> for the vocabulary and
/// <http://dblp.example.org/rec/...> for instances; venue0 and author0 exist
/// at every scale for the benchmark queries.
struct DblpOptions {
  size_t num_publications = 60000;
  uint64_t seed = 8646;  // INRIA RR number of the paper.
};

/// Adds schema and data to `graph`; returns the number of data triples.
/// Call graph->FinalizeSchema() afterwards.
size_t GenerateDblp(const DblpOptions& options, Graph* graph);

/// Publication count that yields roughly `target_triples` data triples.
DblpOptions DblpOptionsForTripleTarget(size_t target_triples);

extern const char kDblpNs[];    ///< "http://dblp.example.org/bib#"
extern const char kDblpData[];  ///< "http://dblp.example.org/rec/"

}  // namespace rdfopt

#endif  // RDFOPT_WORKLOAD_DBLP_H_
