#include "workload/dblp.h"

#include <algorithm>
#include <string>
#include <vector>

#include "workload/lubm.h"  // WorkloadRng.

namespace rdfopt {

const char kDblpNs[] = "http://dblp.example.org/bib#";
const char kDblpData[] = "http://dblp.example.org/rec/";

namespace {

struct DblpVocab {
  // Classes.
  ValueId work, publication, article, journal_article, conference_paper,
      editorial, book, monograph, proceedings, thesis, phd_thesis,
      masters_thesis, web_document;
  ValueId agent, person, author_cls, editor_cls;
  ValueId venue, journal, conference, workshop;
  // Constrained properties.
  ValueId contributor, creator, authored_by, edited_by, published_in,
      presented_at, part_of, cites;
  // Plain properties.
  ValueId year, title;

  ValueId rdf_type, subclassof, subpropertyof, domain, range;
};

DblpVocab InternVocab(Graph* graph) {
  Dictionary& d = graph->dict();
  auto id = [&](const char* local) {
    return d.InternIri(std::string(kDblpNs) + local);
  };
  DblpVocab v;
  v.work = id("Work");
  v.publication = id("Publication");
  v.article = id("Article");
  v.journal_article = id("JournalArticle");
  v.conference_paper = id("ConferencePaper");
  v.editorial = id("Editorial");
  v.book = id("Book");
  v.monograph = id("Monograph");
  v.proceedings = id("Proceedings");
  v.thesis = id("Thesis");
  v.phd_thesis = id("PhdThesis");
  v.masters_thesis = id("MastersThesis");
  v.web_document = id("WebDocument");
  v.agent = id("Agent");
  v.person = id("Person");
  v.author_cls = id("Author");
  v.editor_cls = id("Editor");
  v.venue = id("Venue");
  v.journal = id("Journal");
  v.conference = id("Conference");
  v.workshop = id("Workshop");

  v.contributor = id("contributor");
  v.creator = id("creator");
  v.authored_by = id("authoredBy");
  v.edited_by = id("editedBy");
  v.published_in = id("publishedIn");
  v.presented_at = id("presentedAt");
  v.part_of = id("partOf");
  v.cites = id("cites");
  v.year = id("year");
  v.title = id("title");

  v.rdf_type = graph->vocab().rdf_type;
  v.subclassof = graph->vocab().rdfs_subclassof;
  v.subpropertyof = graph->vocab().rdfs_subpropertyof;
  v.domain = graph->vocab().rdfs_domain;
  v.range = graph->vocab().rdfs_range;
  return v;
}

void EmitSchema(const DblpVocab& v, Graph* g) {
  auto sc = [&](ValueId sub, ValueId super) {
    g->AddEncoded(sub, v.subclassof, super);
  };
  auto sp = [&](ValueId sub, ValueId super) {
    g->AddEncoded(sub, v.subpropertyof, super);
  };
  auto dom = [&](ValueId p, ValueId c) { g->AddEncoded(p, v.domain, c); };
  auto rng = [&](ValueId p, ValueId c) { g->AddEncoded(p, v.range, c); };

  sc(v.publication, v.work);
  sc(v.article, v.publication);
  sc(v.journal_article, v.article);
  sc(v.conference_paper, v.article);
  sc(v.editorial, v.article);
  sc(v.book, v.publication);
  sc(v.monograph, v.book);
  sc(v.proceedings, v.book);
  sc(v.thesis, v.publication);
  sc(v.phd_thesis, v.thesis);
  sc(v.masters_thesis, v.thesis);
  sc(v.web_document, v.publication);
  sc(v.person, v.agent);
  sc(v.author_cls, v.person);
  sc(v.editor_cls, v.person);
  sc(v.journal, v.venue);
  sc(v.conference, v.venue);
  sc(v.workshop, v.conference);

  dom(v.contributor, v.work);
  rng(v.contributor, v.person);
  sp(v.creator, v.contributor);
  sp(v.authored_by, v.creator);
  dom(v.authored_by, v.publication);
  rng(v.authored_by, v.author_cls);
  sp(v.edited_by, v.contributor);
  rng(v.edited_by, v.editor_cls);
  dom(v.published_in, v.article);
  rng(v.published_in, v.venue);
  sp(v.presented_at, v.published_in);
  dom(v.presented_at, v.conference_paper);
  rng(v.presented_at, v.conference);
  dom(v.part_of, v.publication);
  rng(v.part_of, v.proceedings);
  dom(v.cites, v.publication);
  rng(v.cites, v.publication);
}

}  // namespace

size_t GenerateDblp(const DblpOptions& options, Graph* graph) {
  DblpVocab v = InternVocab(graph);
  EmitSchema(v, graph);
  WorkloadRng rng(options.seed);
  Dictionary& d = graph->dict();
  size_t emitted = 0;
  auto add = [&](ValueId s, ValueId p, ValueId o) {
    graph->AddEncoded(s, p, o);
    ++emitted;
  };

  const size_t num_pubs = options.num_publications;
  const size_t num_authors = std::max<size_t>(10, num_pubs / 3);
  const size_t num_venues = std::max<size_t>(4, num_pubs / 600);

  std::vector<ValueId> authors(num_authors);
  for (size_t i = 0; i < num_authors; ++i) {
    authors[i] =
        d.InternIri(std::string(kDblpData) + "author" + std::to_string(i));
    // Only a fraction carries an explicit type assertion (the rest is
    // derivable from authoredBy's range) — reformulation has real work.
    if (i % 7 == 0) add(authors[i], v.rdf_type, v.author_cls);
  }
  std::vector<ValueId> venues(num_venues);
  std::vector<bool> venue_is_conf(num_venues);
  for (size_t i = 0; i < num_venues; ++i) {
    venues[i] =
        d.InternIri(std::string(kDblpData) + "venue" + std::to_string(i));
    venue_is_conf[i] = (i % 2 == 1);
    add(venues[i], v.rdf_type, venue_is_conf[i] ? v.conference : v.journal);
  }
  std::vector<ValueId> proceedings;
  for (size_t i = 0; i < num_venues; ++i) {
    if (!venue_is_conf[i]) continue;
    ValueId proc =
        d.InternIri(std::string(kDblpData) + "proc" + std::to_string(i));
    add(proc, v.rdf_type, v.proceedings);
    proceedings.push_back(proc);
  }

  std::vector<ValueId> pubs(num_pubs);
  for (size_t i = 0; i < num_pubs; ++i) {
    std::string iri = std::string(kDblpData) + "pub" + std::to_string(i);
    ValueId pub = d.InternIri(iri);
    pubs[i] = pub;

    const uint64_t kind = rng.Uniform(100);
    if (kind < 42) {
      // Conference paper: presented at a conference, in its proceedings.
      add(pub, v.rdf_type, v.conference_paper);
      size_t venue = 2 * rng.Uniform(num_venues / 2) + 1;  // Odd = conf.
      add(pub, v.presented_at, venues[venue]);
      if (!proceedings.empty() && rng.Chance(0.8)) {
        add(pub, v.part_of,
            proceedings[rng.Uniform(proceedings.size())]);
      }
    } else if (kind < 80) {
      add(pub, v.rdf_type, v.journal_article);
      size_t venue = 2 * rng.Uniform((num_venues + 1) / 2);  // Even.
      add(pub, v.published_in, venues[venue]);
    } else if (kind < 86) {
      add(pub, v.rdf_type, v.editorial);
      add(pub, v.published_in, venues[rng.Uniform(num_venues)]);
    } else if (kind < 92) {
      add(pub, v.rdf_type, rng.Chance(0.5) ? v.monograph : v.book);
    } else if (kind < 97) {
      add(pub, v.rdf_type,
          rng.Chance(0.6) ? v.phd_thesis : v.masters_thesis);
    } else {
      add(pub, v.rdf_type, v.web_document);
    }

    const size_t nauthors = 1 + rng.Uniform(4);
    for (size_t a = 0; a < nauthors; ++a) {
      add(pub, v.authored_by, authors[rng.Uniform(num_authors)]);
    }
    if (rng.Chance(0.15)) {
      add(pub, v.edited_by, authors[rng.Uniform(num_authors)]);
    }
    // Citations to earlier publications.
    if (i > 0) {
      const size_t ncites = rng.Uniform(5);
      for (size_t c = 0; c < ncites; ++c) {
        add(pub, v.cites, pubs[rng.Uniform(i)]);
      }
    }
    add(pub, v.year,
        d.InternLiteral(std::to_string(1980 + rng.Uniform(45))));
    if (rng.Chance(0.5)) {
      add(pub, v.title, d.InternLiteral("title-" + std::to_string(i)));
    }
  }
  return emitted;
}

DblpOptions DblpOptionsForTripleTarget(size_t target_triples) {
  // Roughly 8.6 triples per publication with the mix above.
  DblpOptions options;
  options.num_publications = std::max<size_t>(
      100, static_cast<size_t>(static_cast<double>(target_triples) / 8.6));
  return options;
}

}  // namespace rdfopt
