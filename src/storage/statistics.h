#ifndef RDFOPT_STORAGE_STATISTICS_H_
#define RDFOPT_STORAGE_STATISTICS_H_

#include <cstddef>
#include <unordered_map>

#include "rdf/term.h"
#include "storage/triple_store.h"

namespace rdfopt {

/// Per-property summary used by join-selectivity estimation.
struct PropertyStats {
  size_t count = 0;              ///< Triples with this property.
  size_t distinct_subjects = 0;  ///< Distinct s among them.
  size_t distinct_objects = 0;   ///< Distinct o among them.
};

/// Database statistics backing the cost model (paper §4.1 relies on
/// "estimated cardinalities of various subqueries", §5.2 on "the statistics
/// necessary for estimating the number of results of various fragments").
///
/// Exact single-pattern counts are delegated to the store's indexes (O(log
/// n)); this class adds the distinct-value summaries that single patterns
/// cannot answer and that conjunctive estimates need.
class Statistics {
 public:
  /// One pass over the store per summary; call once per store.
  static Statistics Compute(const TripleStore& store);

  Statistics() = default;

  size_t total_triples() const { return total_triples_; }
  size_t distinct_subjects() const { return distinct_subjects_; }
  size_t distinct_properties() const { return per_property_.size(); }
  size_t distinct_objects() const { return distinct_objects_; }

  /// Stats of one property; zeroed PropertyStats if the property is absent.
  PropertyStats ForProperty(ValueId p) const;

 private:
  size_t total_triples_ = 0;
  size_t distinct_subjects_ = 0;
  size_t distinct_objects_ = 0;
  std::unordered_map<ValueId, PropertyStats> per_property_;
};

}  // namespace rdfopt

#endif  // RDFOPT_STORAGE_STATISTICS_H_
