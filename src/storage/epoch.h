#ifndef RDFOPT_STORAGE_EPOCH_H_
#define RDFOPT_STORAGE_EPOCH_H_

#include <atomic>
#include <cstdint>

namespace rdfopt {

/// Version number of the database state (data triples + schema closures).
///
/// TripleStores are immutable once built, so "mutation" in this codebase
/// means producing a *new* store (TripleStore::Build / Merge) and swapping it
/// in. The epoch is the name of one such state: every swap advances it, and
/// anything derived from the data — cached reformulations, chosen covers,
/// physical plans, statistics — is only valid for the epoch it was computed
/// under. Consumers (the query service's plan cache) key their entries by
/// epoch, which makes invalidation free: entries stamped with an older epoch
/// can simply never be looked up again and age out of the cache lazily,
/// while in-flight queries keep answering against the snapshot (and epoch)
/// they pinned at admission.
using Epoch = uint64_t;

/// Monotone epoch source. Thread-safe; Advance() is called by whoever
/// installs a new database snapshot, Current() by readers stamping derived
/// artifacts.
class EpochCounter {
 public:
  Epoch Current() const { return value_.load(std::memory_order_acquire); }

  /// Returns the new (post-increment) epoch.
  Epoch Advance() {
    return value_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  std::atomic<Epoch> value_{0};
};

}  // namespace rdfopt

#endif  // RDFOPT_STORAGE_EPOCH_H_
