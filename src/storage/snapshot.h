#ifndef RDFOPT_STORAGE_SNAPSHOT_H_
#define RDFOPT_STORAGE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfopt {

/// Binary snapshots of an RDF database (dictionary + schema + data triples).
///
/// Loading a snapshot is much faster than re-parsing N-Triples or
/// re-generating a synthetic workload, which matters once datasets reach
/// the paper's scales. The format is a private, versioned, little-endian
/// layout:
///
///   magic "RDFO" | u32 version | u64 #terms | terms (u8 kind, u32 len,
///   bytes) | u64 #schema triples | (u32 s,p,o)* | u64 #data triples |
///   (u32 s,p,o)*
///
/// Term ids are implicit (dense, in dictionary order), so triples reference
/// terms by position. Snapshots are not portable across endiannesses.
Status SaveGraphSnapshot(const Graph& graph, const std::string& path);

/// Loads a snapshot written by SaveGraphSnapshot. The returned graph's
/// schema is already finalized.
Result<Graph> LoadGraphSnapshot(const std::string& path);

}  // namespace rdfopt

#endif  // RDFOPT_STORAGE_SNAPSHOT_H_
