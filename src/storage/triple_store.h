#ifndef RDFOPT_STORAGE_TRIPLE_STORE_H_
#define RDFOPT_STORAGE_TRIPLE_STORE_H_

#include <span>
#include <vector>

#include "rdf/triple.h"

namespace rdfopt {

/// Wildcard marker for TripleStore::Match / CountMatches. Safe because
/// dictionary ids are dense from 0 and never reach kInvalidValueId.
inline constexpr ValueId kAnyValue = kInvalidValueId;

/// Immutable, fully-indexed `Triples(s,p,o)` table.
///
/// Mirrors the paper's storage layout (§5.1): one dictionary-encoded triples
/// table "indexed by all permutations of the s,p,o columns ... to give the
/// RDBMS efficient query evaluation opportunities". Four sorted orders (SPO,
/// PSO, POS, OSP) suffice to make every bound-position combination a prefix
/// lookup, so every access pattern — and every exact pattern count the cost
/// model needs — is O(log n) plus output size.
///
/// Stores are immutable once built; saturation and updates produce a new
/// store (Build sorts and removes duplicates, implementing set semantics).
class TripleStore {
 public:
  /// Builds the four indexes from `triples` (duplicates removed).
  static TripleStore Build(std::vector<Triple> triples);

  /// Merges two stores in O(|a| + |b|): each of the four sorted indexes is
  /// merged directly, skipping the O(n log n) re-sort of Build. This is what
  /// makes incremental saturation maintenance linear in the database size.
  static TripleStore Merge(const TripleStore& a, const TripleStore& b);

  TripleStore() = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Number of (distinct) triples.
  size_t size() const { return spo_.size(); }

  /// All triples matching the pattern, where each position is a bound
  /// ValueId or kAnyValue. The result is a contiguous range of one of the
  /// sorted indexes; its iteration order depends on the chosen index.
  std::span<const Triple> Match(ValueId s, ValueId p, ValueId o) const;

  /// Exact count of matching triples; O(log n).
  size_t CountMatches(ValueId s, ValueId p, ValueId o) const {
    return Match(s, p, o).size();
  }

  bool Contains(const Triple& t) const {
    return CountMatches(t.s, t.p, t.o) > 0;
  }

  /// All triples in SPO order.
  std::span<const Triple> All() const { return spo_; }

  /// Distinct subjects (resp. objects) among triples with property `p`;
  /// O(result) using the PSO (resp. POS) index. Used by statistics.
  size_t CountDistinctSubjectsOfProperty(ValueId p) const;
  size_t CountDistinctObjectsOfProperty(ValueId p) const;

  /// Distinct properties in the store, sorted; O(n) on first call cost is
  /// avoided by precomputing at Build time.
  const std::vector<ValueId>& properties() const { return properties_; }

 private:
  template <typename Order>
  std::span<const Triple> PrefixRange(const std::vector<Triple>& index,
                                      Triple lo, Triple hi) const;

  std::vector<Triple> spo_;
  std::vector<Triple> pso_;
  std::vector<Triple> pos_;
  std::vector<Triple> osp_;
  std::vector<ValueId> properties_;
};

}  // namespace rdfopt

#endif  // RDFOPT_STORAGE_TRIPLE_STORE_H_
