#ifndef RDFOPT_STORAGE_TRIPLE_STORE_H_
#define RDFOPT_STORAGE_TRIPLE_STORE_H_

#include <memory>
#include <span>
#include <vector>

#include "rdf/hierarchy_encoding.h"
#include "rdf/triple.h"

namespace rdfopt {

/// Wildcard marker for TripleStore::Match / CountMatches. Safe because
/// dictionary ids are dense from 0 and never reach kInvalidValueId.
inline constexpr ValueId kAnyValue = kInvalidValueId;

/// Immutable, fully-indexed `Triples(s,p,o)` table.
///
/// Mirrors the paper's storage layout (§5.1): one dictionary-encoded triples
/// table "indexed by all permutations of the s,p,o columns ... to give the
/// RDBMS efficient query evaluation opportunities". Four sorted orders (SPO,
/// PSO, POS, OSP) suffice to make every bound-position combination a prefix
/// lookup, so every access pattern — and every exact pattern count the cost
/// model needs — is O(log n) plus output size.
///
/// Stores are immutable once built; saturation and updates produce a new
/// store (Build sorts and removes duplicates, implementing set semantics).
class TripleStore {
 public:
  /// Builds the four indexes from `triples` (duplicates removed).
  static TripleStore Build(std::vector<Triple> triples);

  /// Merges two stores in O(|a| + |b|): each of the four sorted indexes is
  /// merged directly, skipping the O(n log n) re-sort of Build. This is what
  /// makes incremental saturation maintenance linear in the database size.
  static TripleStore Merge(const TripleStore& a, const TripleStore& b);

  TripleStore() = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Number of (distinct) triples.
  size_t size() const { return spo_.size(); }

  /// All triples matching the pattern, where each position is a bound
  /// ValueId or kAnyValue. The result is a contiguous range of one of the
  /// sorted indexes; its iteration order depends on the chosen index.
  std::span<const Triple> Match(ValueId s, ValueId p, ValueId o) const;

  /// Exact count of matching triples; O(log n).
  size_t CountMatches(ValueId s, ValueId p, ValueId o) const {
    return Match(s, p, o).size();
  }

  bool Contains(const Triple& t) const {
    return CountMatches(t.s, t.p, t.o) > 0;
  }

  /// All triples in SPO order.
  std::span<const Triple> All() const { return spo_; }

  /// Distinct subjects (resp. objects) among triples with property `p`;
  /// O(result) using the PSO (resp. POS) index. Used by statistics.
  size_t CountDistinctSubjectsOfProperty(ValueId p) const;
  size_t CountDistinctObjectsOfProperty(ValueId p) const;

  /// Distinct properties in the store, sorted; O(n) on first call cost is
  /// avoided by precomputing at Build time.
  const std::vector<ValueId>& properties() const { return properties_; }

  /// Attaches a hierarchy encoding (rdf/hierarchy_encoding.h) and builds the
  /// hid-ordered shadow indexes that back the engine's ScanRange operator:
  /// type triples concatenated by class hid (subject-sorted within each hid)
  /// and all triples concatenated by property hid (in per-property PSO
  /// order). Costs one extra copy of the type triples plus one of the
  /// schema-property triples (~2x memory, DESIGN.md §12). Must be called
  /// before the store is shared — the snapshot machinery attaches right
  /// after Build/Merge, so the store stays logically immutable.
  void AttachHierarchy(std::shared_ptr<const HierarchyEncoding> encoding);

  /// The attached encoding, or nullptr. ScanRange planning keys off this.
  const HierarchyEncoding* hierarchy() const { return hierarchy_.get(); }
  std::shared_ptr<const HierarchyEncoding> hierarchy_ptr() const {
    return hierarchy_;
  }

  /// All `s rdf:type C` triples over classes C with hid in [lo, hi),
  /// ordered by (hid, subject). O(1): a contiguous slice of the shadow
  /// index. Empty when no encoding is attached.
  std::span<const Triple> MatchClassHidRange(uint32_t lo, uint32_t hi) const;

  /// All `s p o` triples over properties p with hid in [lo, hi), ordered by
  /// (hid, subject, object). O(1). Empty when no encoding is attached.
  std::span<const Triple> MatchPropertyHidRange(uint32_t lo,
                                                uint32_t hi) const;

  size_t CountClassHidRange(uint32_t lo, uint32_t hi) const {
    return MatchClassHidRange(lo, hi).size();
  }
  size_t CountPropertyHidRange(uint32_t lo, uint32_t hi) const {
    return MatchPropertyHidRange(lo, hi).size();
  }

 private:
  template <typename Order>
  std::span<const Triple> PrefixRange(const std::vector<Triple>& index,
                                      Triple lo, Triple hi) const;

  std::vector<Triple> spo_;
  std::vector<Triple> pso_;
  std::vector<Triple> pos_;
  std::vector<Triple> osp_;
  std::vector<ValueId> properties_;

  // Hierarchy shadow indexes (AttachHierarchy). Offsets have one entry per
  // hid plus a terminator, so any hid range is a single subtraction.
  std::shared_ptr<const HierarchyEncoding> hierarchy_;
  std::vector<Triple> type_by_hid_;
  std::vector<size_t> class_hid_offsets_;
  std::vector<Triple> prop_by_hid_;
  std::vector<size_t> prop_hid_offsets_;
};

}  // namespace rdfopt

#endif  // RDFOPT_STORAGE_TRIPLE_STORE_H_
