#include "storage/statistics.h"

#include <algorithm>
#include <vector>

namespace rdfopt {

Statistics Statistics::Compute(const TripleStore& store) {
  Statistics stats;
  stats.total_triples_ = store.size();

  // Distinct subjects: contiguous in the SPO-ordered full scan.
  ValueId prev_s = kInvalidValueId;
  for (const Triple& t : store.All()) {
    if (t.s != prev_s) {
      ++stats.distinct_subjects_;
      prev_s = t.s;
    }
  }

  // Distinct objects: via a sorted copy (the store's OSP index is private to
  // Match(); one extra sort at statistics time is acceptable).
  {
    std::vector<ValueId> objects;
    objects.reserve(store.size());
    for (const Triple& t : store.All()) objects.push_back(t.o);
    std::sort(objects.begin(), objects.end());
    stats.distinct_objects_ = static_cast<size_t>(
        std::unique(objects.begin(), objects.end()) - objects.begin());
  }

  for (ValueId p : store.properties()) {
    PropertyStats ps;
    ps.count = store.CountMatches(kAnyValue, p, kAnyValue);
    ps.distinct_subjects = store.CountDistinctSubjectsOfProperty(p);
    ps.distinct_objects = store.CountDistinctObjectsOfProperty(p);
    stats.per_property_.emplace(p, ps);
  }
  return stats;
}

PropertyStats Statistics::ForProperty(ValueId p) const {
  auto it = per_property_.find(p);
  return it == per_property_.end() ? PropertyStats{} : it->second;
}

}  // namespace rdfopt
