#include "storage/triple_store.h"

#include <algorithm>

namespace rdfopt {

namespace {
constexpr ValueId kLo = 0;
constexpr ValueId kHi = kInvalidValueId;  // Max uint32: above every real id.
}  // namespace

TripleStore TripleStore::Build(std::vector<Triple> triples) {
  TripleStore store;
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  store.spo_ = std::move(triples);
  store.pso_ = store.spo_;
  std::sort(store.pso_.begin(), store.pso_.end(), OrderPso());
  store.pos_ = store.pso_;
  // PSO and POS share the primary p key; a stable per-p resort would also
  // work, but a full sort keeps the code simple.
  std::sort(store.pos_.begin(), store.pos_.end(), OrderPos());
  store.osp_ = store.spo_;
  std::sort(store.osp_.begin(), store.osp_.end(), OrderOsp());

  for (const Triple& t : store.pso_) {
    if (store.properties_.empty() || store.properties_.back() != t.p) {
      store.properties_.push_back(t.p);
    }
  }
  return store;
}

namespace {

template <typename Order>
std::vector<Triple> MergeSorted(const std::vector<Triple>& a,
                                const std::vector<Triple>& b) {
  std::vector<Triple> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             Order());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

TripleStore TripleStore::Merge(const TripleStore& a, const TripleStore& b) {
  TripleStore store;
  store.spo_ = MergeSorted<OrderSpo>(a.spo_, b.spo_);
  store.pso_ = MergeSorted<OrderPso>(a.pso_, b.pso_);
  store.pos_ = MergeSorted<OrderPos>(a.pos_, b.pos_);
  store.osp_ = MergeSorted<OrderOsp>(a.osp_, b.osp_);
  std::merge(a.properties_.begin(), a.properties_.end(),
             b.properties_.begin(), b.properties_.end(),
             std::back_inserter(store.properties_));
  store.properties_.erase(
      std::unique(store.properties_.begin(), store.properties_.end()),
      store.properties_.end());
  return store;
}

template <typename Order>
std::span<const Triple> TripleStore::PrefixRange(
    const std::vector<Triple>& index, Triple lo, Triple hi) const {
  auto begin = std::lower_bound(index.begin(), index.end(), lo, Order());
  auto end = std::upper_bound(begin, index.end(), hi, Order());
  return {index.data() + (begin - index.begin()),
          static_cast<size_t>(end - begin)};
}

std::span<const Triple> TripleStore::Match(ValueId s, ValueId p,
                                           ValueId o) const {
  const bool bs = s != kAnyValue;
  const bool bp = p != kAnyValue;
  const bool bo = o != kAnyValue;

  if (bs) {
    if (bp) {
      // (s,p,*) and (s,p,o): SPO prefix.
      return PrefixRange<OrderSpo>(spo_, {s, p, bo ? o : kLo},
                                   {s, p, bo ? o : kHi});
    }
    if (bo) {
      // (s,*,o): OSP prefix on (o,s).
      return PrefixRange<OrderOsp>(osp_, {s, kLo, o}, {s, kHi, o});
    }
    // (s,*,*): SPO prefix on s.
    return PrefixRange<OrderSpo>(spo_, {s, kLo, kLo}, {s, kHi, kHi});
  }
  if (bp) {
    if (bo) {
      // (*,p,o): POS prefix on (p,o).
      return PrefixRange<OrderPos>(pos_, {kLo, p, o}, {kHi, p, o});
    }
    // (*,p,*): PSO prefix on p.
    return PrefixRange<OrderPso>(pso_, {kLo, p, kLo}, {kHi, p, kHi});
  }
  if (bo) {
    // (*,*,o): OSP prefix on o.
    return PrefixRange<OrderOsp>(osp_, {kLo, kLo, o}, {kHi, kHi, o});
  }
  return {spo_.data(), spo_.size()};
}

size_t TripleStore::CountDistinctSubjectsOfProperty(ValueId p) const {
  std::span<const Triple> range = Match(kAnyValue, p, kAnyValue);  // PSO order
  size_t count = 0;
  ValueId prev = kInvalidValueId;
  for (const Triple& t : range) {
    if (t.s != prev) {
      ++count;
      prev = t.s;
    }
  }
  return count;
}

size_t TripleStore::CountDistinctObjectsOfProperty(ValueId p) const {
  // POS order: objects are contiguous within the p prefix.
  std::span<const Triple> range =
      PrefixRange<OrderPos>(pos_, {kLo, p, kLo}, {kHi, p, kHi});
  size_t count = 0;
  ValueId prev = kInvalidValueId;
  for (const Triple& t : range) {
    if (t.o != prev) {
      ++count;
      prev = t.o;
    }
  }
  return count;
}

}  // namespace rdfopt
