#include "storage/triple_store.h"

#include <algorithm>

namespace rdfopt {

namespace {
constexpr ValueId kLo = 0;
constexpr ValueId kHi = kInvalidValueId;  // Max uint32: above every real id.
}  // namespace

TripleStore TripleStore::Build(std::vector<Triple> triples) {
  TripleStore store;
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  store.spo_ = std::move(triples);
  store.pso_ = store.spo_;
  std::sort(store.pso_.begin(), store.pso_.end(), OrderPso());
  store.pos_ = store.pso_;
  // PSO and POS share the primary p key; a stable per-p resort would also
  // work, but a full sort keeps the code simple.
  std::sort(store.pos_.begin(), store.pos_.end(), OrderPos());
  store.osp_ = store.spo_;
  std::sort(store.osp_.begin(), store.osp_.end(), OrderOsp());

  for (const Triple& t : store.pso_) {
    if (store.properties_.empty() || store.properties_.back() != t.p) {
      store.properties_.push_back(t.p);
    }
  }
  return store;
}

namespace {

template <typename Order>
std::vector<Triple> MergeSorted(const std::vector<Triple>& a,
                                const std::vector<Triple>& b) {
  std::vector<Triple> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             Order());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

TripleStore TripleStore::Merge(const TripleStore& a, const TripleStore& b) {
  TripleStore store;
  store.spo_ = MergeSorted<OrderSpo>(a.spo_, b.spo_);
  store.pso_ = MergeSorted<OrderPso>(a.pso_, b.pso_);
  store.pos_ = MergeSorted<OrderPos>(a.pos_, b.pos_);
  store.osp_ = MergeSorted<OrderOsp>(a.osp_, b.osp_);
  std::merge(a.properties_.begin(), a.properties_.end(),
             b.properties_.begin(), b.properties_.end(),
             std::back_inserter(store.properties_));
  store.properties_.erase(
      std::unique(store.properties_.begin(), store.properties_.end()),
      store.properties_.end());
  return store;
}

template <typename Order>
std::span<const Triple> TripleStore::PrefixRange(
    const std::vector<Triple>& index, Triple lo, Triple hi) const {
  auto begin = std::lower_bound(index.begin(), index.end(), lo, Order());
  auto end = std::upper_bound(begin, index.end(), hi, Order());
  return {index.data() + (begin - index.begin()),
          static_cast<size_t>(end - begin)};
}

std::span<const Triple> TripleStore::Match(ValueId s, ValueId p,
                                           ValueId o) const {
  const bool bs = s != kAnyValue;
  const bool bp = p != kAnyValue;
  const bool bo = o != kAnyValue;

  if (bs) {
    if (bp) {
      // (s,p,*) and (s,p,o): SPO prefix.
      return PrefixRange<OrderSpo>(spo_, {s, p, bo ? o : kLo},
                                   {s, p, bo ? o : kHi});
    }
    if (bo) {
      // (s,*,o): OSP prefix on (o,s).
      return PrefixRange<OrderOsp>(osp_, {s, kLo, o}, {s, kHi, o});
    }
    // (s,*,*): SPO prefix on s.
    return PrefixRange<OrderSpo>(spo_, {s, kLo, kLo}, {s, kHi, kHi});
  }
  if (bp) {
    if (bo) {
      // (*,p,o): POS prefix on (p,o).
      return PrefixRange<OrderPos>(pos_, {kLo, p, o}, {kHi, p, o});
    }
    // (*,p,*): PSO prefix on p.
    return PrefixRange<OrderPso>(pso_, {kLo, p, kLo}, {kHi, p, kHi});
  }
  if (bo) {
    // (*,*,o): OSP prefix on o.
    return PrefixRange<OrderOsp>(osp_, {kLo, kLo, o}, {kHi, kHi, o});
  }
  return {spo_.data(), spo_.size()};
}

void TripleStore::AttachHierarchy(
    std::shared_ptr<const HierarchyEncoding> encoding) {
  hierarchy_ = std::move(encoding);
  type_by_hid_.clear();
  prop_by_hid_.clear();

  const size_t num_classes = hierarchy_->num_class_hids();
  class_hid_offsets_.assign(num_classes + 1, 0);
  const ValueId rdf_type = hierarchy_->rdf_type();
  if (rdf_type != kAnyValue) {
    for (uint32_t h = 0; h < num_classes; ++h) {
      class_hid_offsets_[h] = type_by_hid_.size();
      // POS prefix on (rdf_type, class): subject-sorted within the hid.
      std::span<const Triple> range =
          Match(kAnyValue, rdf_type, hierarchy_->ClassOfHid(h));
      type_by_hid_.insert(type_by_hid_.end(), range.begin(), range.end());
    }
  }
  class_hid_offsets_[num_classes] = type_by_hid_.size();

  const size_t num_props = hierarchy_->num_property_hids();
  prop_hid_offsets_.assign(num_props + 1, 0);
  for (uint32_t h = 0; h < num_props; ++h) {
    prop_hid_offsets_[h] = prop_by_hid_.size();
    // PSO prefix on the property: (s,o)-sorted within the hid.
    std::span<const Triple> range =
        Match(kAnyValue, hierarchy_->PropertyOfHid(h), kAnyValue);
    prop_by_hid_.insert(prop_by_hid_.end(), range.begin(), range.end());
  }
  prop_hid_offsets_[num_props] = prop_by_hid_.size();
}

std::span<const Triple> TripleStore::MatchClassHidRange(uint32_t lo,
                                                        uint32_t hi) const {
  if (!hierarchy_ || class_hid_offsets_.empty()) return {};
  const uint32_t cap = static_cast<uint32_t>(class_hid_offsets_.size() - 1);
  lo = std::min(lo, cap);
  hi = std::min(hi, cap);
  if (lo >= hi) return {};
  return {type_by_hid_.data() + class_hid_offsets_[lo],
          class_hid_offsets_[hi] - class_hid_offsets_[lo]};
}

std::span<const Triple> TripleStore::MatchPropertyHidRange(uint32_t lo,
                                                           uint32_t hi) const {
  if (!hierarchy_ || prop_hid_offsets_.empty()) return {};
  const uint32_t cap = static_cast<uint32_t>(prop_hid_offsets_.size() - 1);
  lo = std::min(lo, cap);
  hi = std::min(hi, cap);
  if (lo >= hi) return {};
  return {prop_by_hid_.data() + prop_hid_offsets_[lo],
          prop_hid_offsets_[hi] - prop_hid_offsets_[lo]};
}

size_t TripleStore::CountDistinctSubjectsOfProperty(ValueId p) const {
  std::span<const Triple> range = Match(kAnyValue, p, kAnyValue);  // PSO order
  size_t count = 0;
  ValueId prev = kInvalidValueId;
  for (const Triple& t : range) {
    if (t.s != prev) {
      ++count;
      prev = t.s;
    }
  }
  return count;
}

size_t TripleStore::CountDistinctObjectsOfProperty(ValueId p) const {
  // POS order: objects are contiguous within the p prefix.
  std::span<const Triple> range =
      PrefixRange<OrderPos>(pos_, {kLo, p, kLo}, {kHi, p, kHi});
  size_t count = 0;
  ValueId prev = kInvalidValueId;
  for (const Triple& t : range) {
    if (t.o != prev) {
      ++count;
      prev = t.o;
    }
  }
  return count;
}

}  // namespace rdfopt
