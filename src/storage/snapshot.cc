#include "storage/snapshot.h"

#include <cstdint>
#include <fstream>

namespace rdfopt {

namespace {

constexpr char kMagic[4] = {'R', 'D', 'F', 'O'};
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

void WriteTriples(std::ostream& out, const std::vector<Triple>& triples) {
  WriteU64(out, triples.size());
  for (const Triple& t : triples) {
    WriteU32(out, t.s);
    WriteU32(out, t.p);
    WriteU32(out, t.o);
  }
}

Status ReadTriples(std::istream& in, size_t num_terms, const char* what,
                   std::vector<Triple>* out) {
  uint64_t count = 0;
  if (!ReadU64(in, &count)) {
    return Status::ParseError(std::string("snapshot truncated before ") +
                              what + " count");
  }
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t s, p, o;
    if (!ReadU32(in, &s) || !ReadU32(in, &p) || !ReadU32(in, &o)) {
      return Status::ParseError(std::string("snapshot truncated inside ") +
                                what);
    }
    if (s >= num_terms || p >= num_terms || o >= num_terms) {
      return Status::ParseError(
          std::string("snapshot triple references unknown term in ") + what);
    }
    out->push_back(Triple{s, p, o});
  }
  return Status::OK();
}

}  // namespace

Status SaveGraphSnapshot(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersion);

  const Dictionary& dict = graph.dict();
  WriteU64(out, dict.size());
  for (ValueId id = 0; id < dict.size(); ++id) {
    const Term& term = dict.term(id);
    out.put(static_cast<char>(term.kind));
    WriteU32(out, static_cast<uint32_t>(term.lexical.size()));
    out.write(term.lexical.data(),
              static_cast<std::streamsize>(term.lexical.size()));
  }
  WriteTriples(out, graph.schema_triples());
  WriteTriples(out, graph.data_triples());
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<Graph> LoadGraphSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    return Status::ParseError(path + " is not an rdfopt snapshot");
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version) || version != kVersion) {
    return Status::ParseError("unsupported snapshot version");
  }

  Graph graph;
  uint64_t num_terms = 0;
  if (!ReadU64(in, &num_terms)) {
    return Status::ParseError("snapshot truncated before the dictionary");
  }
  for (uint64_t i = 0; i < num_terms; ++i) {
    int kind_byte = in.get();
    uint32_t len = 0;
    if (kind_byte == EOF || !ReadU32(in, &len)) {
      return Status::ParseError("snapshot truncated inside the dictionary");
    }
    if (kind_byte > 2) {
      return Status::ParseError("snapshot contains an unknown term kind");
    }
    std::string lexical(len, '\0');
    in.read(lexical.data(), static_cast<std::streamsize>(len));
    if (!in.good()) {
      return Status::ParseError("snapshot truncated inside a term");
    }
    Term term{static_cast<TermKind>(kind_byte), std::move(lexical)};
    ValueId assigned = graph.dict().Intern(term);
    if (assigned != i) {
      // The graph constructor pre-interns the five vocabulary IRIs; a valid
      // snapshot (written from a Graph) lists them first, so ids line up.
      // Anything else indicates a corrupted or foreign dictionary.
      return Status::ParseError("snapshot dictionary ids do not line up");
    }
  }

  std::vector<Triple> schema_triples;
  RDFOPT_RETURN_NOT_OK(
      ReadTriples(in, num_terms, "schema triples", &schema_triples));
  std::vector<Triple> data_triples;
  RDFOPT_RETURN_NOT_OK(
      ReadTriples(in, num_terms, "data triples", &data_triples));
  for (const Triple& t : schema_triples) graph.AddEncoded(t.s, t.p, t.o);
  for (const Triple& t : data_triples) graph.AddEncoded(t.s, t.p, t.o);
  graph.FinalizeSchema();
  return graph;
}

}  // namespace rdfopt
