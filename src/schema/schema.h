#ifndef RDFOPT_SCHEMA_SCHEMA_H_
#define RDFOPT_SCHEMA_SCHEMA_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/term.h"

namespace rdfopt {

/// In-memory store of the RDFS constraints of an RDF database
/// (paper Fig. 2, bottom): subclass, subproperty, domain and range
/// statements, interpreted under the open-world assumption.
///
/// The paper keeps "RDFS constraints in memory, while RDF facts are stored in
/// a Triples(s,p,o) table" (§5.1); this class is that in-memory side. It
/// precomputes, in `Finalize()`, every reachability set both the forward
/// chainer (saturation) and the backward chainer (reformulation) need:
///
///  * reflexive-transitive sub/super closures of ≼sc and ≼sp;
///  * *entailed* domain/range class sets: `EntailedDomainClasses(p)` is the
///    set of classes c such that a triple `s p o` RDF-entails `s rdf:type c`
///    (follow ≼sp upward from p, take declared domains, follow ≼sc upward);
///  * their inverses, used by reformulation rules: which properties' domain
///    (resp. range) entails membership in a given class.
///
/// All result vectors are sorted by ValueId for determinism.
class Schema {
 public:
  Schema() = default;
  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  /// Constraint insertion. Self-loops (c ≼sc c) are accepted and harmless.
  /// Invalidates a previous Finalize().
  void AddSubClass(ValueId sub, ValueId super);
  void AddSubProperty(ValueId sub, ValueId super);
  void AddDomain(ValueId property, ValueId cls);
  void AddRange(ValueId property, ValueId cls);

  /// Computes all closures. Must be called after the last Add* and before
  /// any query below. Safe to call repeatedly. Handles ≼sc/≼sp cycles.
  void Finalize();

  bool finalized() const { return finalized_; }

  /// Number of declared (pre-closure) constraint statements.
  size_t num_constraints() const { return num_constraints_; }

  /// Reflexive-transitive closures. `SubClassesOf(c)` always contains c,
  /// even for classes unknown to the schema.
  std::vector<ValueId> SubClassesOf(ValueId cls) const;
  std::vector<ValueId> SuperClassesOf(ValueId cls) const;
  std::vector<ValueId> SubPropertiesOf(ValueId property) const;
  std::vector<ValueId> SuperPropertiesOf(ValueId property) const;

  /// Classes c such that `s p o` entails `s rdf:type c` (resp.
  /// `o rdf:type c`). Empty for properties without (inherited) domain/range.
  std::vector<ValueId> EntailedDomainClasses(ValueId property) const;
  std::vector<ValueId> EntailedRangeClasses(ValueId property) const;

  /// Direct (declared, one-step) subsumption edges, sorted, deduplicated and
  /// with self-loops removed. Unlike the closures above these do not include
  /// the node itself. The hierarchy encoder (rdf/hierarchy_encoding.h) walks
  /// these to lay out its DFS-preorder id space.
  std::vector<ValueId> DirectSubClassesOf(ValueId cls) const;
  std::vector<ValueId> DirectSuperClassesOf(ValueId cls) const;
  std::vector<ValueId> DirectSubPropertiesOf(ValueId property) const;
  std::vector<ValueId> DirectSuperPropertiesOf(ValueId property) const;

  /// Inverse maps, the backbone of the type-atom reformulation rules:
  /// properties p such that `s p o` entails `s rdf:type cls` (resp.
  /// `o rdf:type cls`).
  std::vector<ValueId> PropertiesWithDomainEntailing(ValueId cls) const;
  std::vector<ValueId> PropertiesWithRangeEntailing(ValueId cls) const;

  /// All classes (resp. properties) mentioned by at least one constraint,
  /// sorted. Used to instantiate class-/property-position query variables
  /// (paper Example 4: "instantiating the variable y with classes from db").
  const std::vector<ValueId>& AllClasses() const;
  const std::vector<ValueId>& AllProperties() const;

  bool IsSchemaClass(ValueId cls) const;
  bool IsSchemaProperty(ValueId property) const;

  /// Two RDF databases "have the same schema iff their saturations have the
  /// same RDFS statements" (paper Def. 3.2). Compares closures.
  bool EquivalentTo(const Schema& other) const;

 private:
  using AdjacencyMap = std::unordered_map<ValueId, std::vector<ValueId>>;
  using ClosureMap = std::unordered_map<ValueId, std::vector<ValueId>>;

  static void AddEdge(AdjacencyMap* map, ValueId from, ValueId to);
  // Reflexive-transitive closure of `edges` from every node in `nodes`.
  static ClosureMap ComputeClosure(const AdjacencyMap& edges,
                                   const std::unordered_set<ValueId>& nodes);
  // Closure lookup with reflexive fallback for unknown nodes.
  static std::vector<ValueId> LookupClosure(const ClosureMap& closure,
                                            ValueId node);
  static std::vector<ValueId> LookupSet(const ClosureMap& map, ValueId node);
  // Sorted-unique direct edges of `node` with self-loops dropped.
  static std::vector<ValueId> DirectEdges(const AdjacencyMap& map,
                                          ValueId node);

  void CheckFinalized() const;

  // Declared constraints (direct edges).
  AdjacencyMap sub_class_;     // sub -> direct supers
  AdjacencyMap super_class_;   // super -> direct subs
  AdjacencyMap sub_prop_;      // sub -> direct supers
  AdjacencyMap super_prop_;    // super -> direct subs
  AdjacencyMap domain_;        // property -> declared domain classes
  AdjacencyMap range_;         // property -> declared range classes
  size_t num_constraints_ = 0;

  // Closures, valid when finalized_.
  bool finalized_ = false;
  std::unordered_set<ValueId> class_set_;
  std::unordered_set<ValueId> property_set_;
  std::vector<ValueId> all_classes_;
  std::vector<ValueId> all_properties_;
  ClosureMap sub_classes_closure_;
  ClosureMap super_classes_closure_;
  ClosureMap sub_props_closure_;
  ClosureMap super_props_closure_;
  ClosureMap entailed_domain_;          // property -> classes
  ClosureMap entailed_range_;           // property -> classes
  ClosureMap domain_entailing_props_;   // class -> properties
  ClosureMap range_entailing_props_;    // class -> properties
};

}  // namespace rdfopt

#endif  // RDFOPT_SCHEMA_SCHEMA_H_
