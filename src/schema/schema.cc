#include "schema/schema.h"

#include <algorithm>
#include "common/check.h"

namespace rdfopt {

namespace {

void SortUnique(std::vector<ValueId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

void Schema::AddEdge(AdjacencyMap* map, ValueId from, ValueId to) {
  (*map)[from].push_back(to);
}

void Schema::AddSubClass(ValueId sub, ValueId super) {
  AddEdge(&sub_class_, sub, super);
  AddEdge(&super_class_, super, sub);
  ++num_constraints_;
  finalized_ = false;
}

void Schema::AddSubProperty(ValueId sub, ValueId super) {
  AddEdge(&sub_prop_, sub, super);
  AddEdge(&super_prop_, super, sub);
  ++num_constraints_;
  finalized_ = false;
}

void Schema::AddDomain(ValueId property, ValueId cls) {
  AddEdge(&domain_, property, cls);
  ++num_constraints_;
  finalized_ = false;
}

void Schema::AddRange(ValueId property, ValueId cls) {
  AddEdge(&range_, property, cls);
  ++num_constraints_;
  finalized_ = false;
}

Schema::ClosureMap Schema::ComputeClosure(
    const AdjacencyMap& edges, const std::unordered_set<ValueId>& nodes) {
  ClosureMap closure;
  for (ValueId start : nodes) {
    std::vector<ValueId> reached;
    std::unordered_set<ValueId> visited;
    std::vector<ValueId> stack = {start};
    visited.insert(start);
    while (!stack.empty()) {
      ValueId node = stack.back();
      stack.pop_back();
      reached.push_back(node);
      auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (ValueId next : it->second) {
        if (visited.insert(next).second) stack.push_back(next);
      }
    }
    SortUnique(&reached);
    closure.emplace(start, std::move(reached));
  }
  return closure;
}

void Schema::Finalize() {
  class_set_.clear();
  property_set_.clear();
  // Classes: endpoints of subclass edges, plus declared domains/ranges.
  for (const auto& [sub, supers] : sub_class_) {
    class_set_.insert(sub);
    class_set_.insert(supers.begin(), supers.end());
  }
  for (const auto& [prop, classes] : domain_) {
    property_set_.insert(prop);
    class_set_.insert(classes.begin(), classes.end());
  }
  for (const auto& [prop, classes] : range_) {
    property_set_.insert(prop);
    class_set_.insert(classes.begin(), classes.end());
  }
  for (const auto& [sub, supers] : sub_prop_) {
    property_set_.insert(sub);
    property_set_.insert(supers.begin(), supers.end());
  }

  all_classes_.assign(class_set_.begin(), class_set_.end());
  std::sort(all_classes_.begin(), all_classes_.end());
  all_properties_.assign(property_set_.begin(), property_set_.end());
  std::sort(all_properties_.begin(), all_properties_.end());

  sub_classes_closure_ = ComputeClosure(super_class_, class_set_);
  super_classes_closure_ = ComputeClosure(sub_class_, class_set_);
  sub_props_closure_ = ComputeClosure(super_prop_, property_set_);
  super_props_closure_ = ComputeClosure(sub_prop_, property_set_);

  // Entailed domain/range sets: for each property p, walk ≼sp upward, gather
  // declared domains (ranges), then close upward through ≼sc.
  entailed_domain_.clear();
  entailed_range_.clear();
  for (ValueId p : all_properties_) {
    std::vector<ValueId> dom_classes;
    std::vector<ValueId> range_classes;
    for (ValueId q : super_props_closure_[p]) {
      for (const AdjacencyMap* declared : {&domain_, &range_}) {
        auto it = declared->find(q);
        if (it == declared->end()) continue;
        std::vector<ValueId>* out =
            declared == &domain_ ? &dom_classes : &range_classes;
        for (ValueId d : it->second) {
          const std::vector<ValueId>& ups = super_classes_closure_[d];
          out->insert(out->end(), ups.begin(), ups.end());
        }
      }
    }
    SortUnique(&dom_classes);
    SortUnique(&range_classes);
    if (!dom_classes.empty()) entailed_domain_[p] = std::move(dom_classes);
    if (!range_classes.empty()) entailed_range_[p] = std::move(range_classes);
  }

  // Inverse maps.
  domain_entailing_props_.clear();
  range_entailing_props_.clear();
  for (const auto& [p, classes] : entailed_domain_) {
    for (ValueId c : classes) domain_entailing_props_[c].push_back(p);
  }
  for (const auto& [p, classes] : entailed_range_) {
    for (ValueId c : classes) range_entailing_props_[c].push_back(p);
  }
  for (auto& [c, props] : domain_entailing_props_) SortUnique(&props);
  for (auto& [c, props] : range_entailing_props_) SortUnique(&props);

  finalized_ = true;
}

void Schema::CheckFinalized() const {
  RDFOPT_CHECK(finalized_) << "Schema::Finalize() must be called before queries";
}

std::vector<ValueId> Schema::LookupClosure(const ClosureMap& closure,
                                           ValueId node) {
  auto it = closure.find(node);
  if (it != closure.end()) return it->second;
  return {node};  // Reflexive fallback for nodes unknown to the schema.
}

std::vector<ValueId> Schema::LookupSet(const ClosureMap& map, ValueId node) {
  auto it = map.find(node);
  if (it != map.end()) return it->second;
  return {};
}

std::vector<ValueId> Schema::DirectEdges(const AdjacencyMap& map,
                                         ValueId node) {
  auto it = map.find(node);
  if (it == map.end()) return {};
  std::vector<ValueId> out = it->second;
  SortUnique(&out);
  out.erase(std::remove(out.begin(), out.end(), node), out.end());
  return out;
}

std::vector<ValueId> Schema::DirectSubClassesOf(ValueId cls) const {
  return DirectEdges(super_class_, cls);
}

std::vector<ValueId> Schema::DirectSuperClassesOf(ValueId cls) const {
  return DirectEdges(sub_class_, cls);
}

std::vector<ValueId> Schema::DirectSubPropertiesOf(ValueId property) const {
  return DirectEdges(super_prop_, property);
}

std::vector<ValueId> Schema::DirectSuperPropertiesOf(ValueId property) const {
  return DirectEdges(sub_prop_, property);
}

std::vector<ValueId> Schema::SubClassesOf(ValueId cls) const {
  CheckFinalized();
  return LookupClosure(sub_classes_closure_, cls);
}

std::vector<ValueId> Schema::SuperClassesOf(ValueId cls) const {
  CheckFinalized();
  return LookupClosure(super_classes_closure_, cls);
}

std::vector<ValueId> Schema::SubPropertiesOf(ValueId property) const {
  CheckFinalized();
  return LookupClosure(sub_props_closure_, property);
}

std::vector<ValueId> Schema::SuperPropertiesOf(ValueId property) const {
  CheckFinalized();
  return LookupClosure(super_props_closure_, property);
}

std::vector<ValueId> Schema::EntailedDomainClasses(ValueId property) const {
  CheckFinalized();
  return LookupSet(entailed_domain_, property);
}

std::vector<ValueId> Schema::EntailedRangeClasses(ValueId property) const {
  CheckFinalized();
  return LookupSet(entailed_range_, property);
}

std::vector<ValueId> Schema::PropertiesWithDomainEntailing(ValueId cls) const {
  CheckFinalized();
  return LookupSet(domain_entailing_props_, cls);
}

std::vector<ValueId> Schema::PropertiesWithRangeEntailing(ValueId cls) const {
  CheckFinalized();
  return LookupSet(range_entailing_props_, cls);
}

const std::vector<ValueId>& Schema::AllClasses() const {
  CheckFinalized();
  return all_classes_;
}

const std::vector<ValueId>& Schema::AllProperties() const {
  CheckFinalized();
  return all_properties_;
}

bool Schema::IsSchemaClass(ValueId cls) const {
  CheckFinalized();
  return class_set_.count(cls) > 0;
}

bool Schema::IsSchemaProperty(ValueId property) const {
  CheckFinalized();
  return property_set_.count(property) > 0;
}

bool Schema::EquivalentTo(const Schema& other) const {
  CheckFinalized();
  other.CheckFinalized();
  if (all_classes_ != other.all_classes_ ||
      all_properties_ != other.all_properties_) {
    return false;
  }
  for (ValueId c : all_classes_) {
    if (SubClassesOf(c) != other.SubClassesOf(c)) return false;
  }
  for (ValueId p : all_properties_) {
    if (SubPropertiesOf(p) != other.SubPropertiesOf(p)) return false;
    if (EntailedDomainClasses(p) != other.EntailedDomainClasses(p))
      return false;
    if (EntailedRangeClasses(p) != other.EntailedRangeClasses(p)) return false;
  }
  return true;
}

}  // namespace rdfopt
