#include "reformulation/minimize.h"

#include <algorithm>

namespace rdfopt {

namespace {

bool Contains(const std::vector<ValueId>& sorted, ValueId v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

}  // namespace

bool AtomEntails(const TriplePattern& by, const TriplePattern& atom,
                 const Schema& schema, const Vocabulary& vocab) {
  if (by == atom) return true;

  const bool atom_is_type =
      !atom.p.is_var() && atom.p.value() == vocab.rdf_type;
  const bool by_is_type = !by.p.is_var() && by.p.value() == vocab.rdf_type;

  if (atom_is_type && !atom.o.is_var()) {
    const ValueId cls = atom.o.value();
    if (by_is_type && !by.o.is_var() && by.s == atom.s) {
      // (s type C') with C' <=sc C.
      return Contains(schema.SuperClassesOf(by.o.value()), cls) &&
             by.o.value() != cls;
    }
    if (!by.p.is_var() && !by_is_type) {
      const ValueId p = by.p.value();
      // (s p o): entailed domain includes C.
      if (by.s == atom.s && Contains(schema.EntailedDomainClasses(p), cls)) {
        return true;
      }
      // (o p s): entailed range includes C.
      if (by.o == atom.s && Contains(schema.EntailedRangeClasses(p), cls)) {
        return true;
      }
    }
    return false;
  }

  if (!atom.p.is_var() && !by.p.is_var() && !atom_is_type && !by_is_type) {
    // (s p' o) with p' <=sp p, identical subject/object terms.
    return by.s == atom.s && by.o == atom.o &&
           by.p.value() != atom.p.value() &&
           Contains(schema.SuperPropertiesOf(by.p.value()), atom.p.value());
  }
  return false;
}

MinimizationResult MinimizeQuery(const ConjunctiveQuery& cq,
                                 const Schema& schema,
                                 const Vocabulary& vocab) {
  MinimizationResult result;
  std::vector<bool> removed(cq.atoms.size(), false);

  for (size_t i = 0; i < cq.atoms.size(); ++i) {
    const TriplePattern& atom = cq.atoms[i];
    // Entailed by a surviving atom?
    bool entailed = false;
    for (size_t j = 0; j < cq.atoms.size() && !entailed; ++j) {
      if (j == i || removed[j]) continue;
      entailed = AtomEntails(cq.atoms[j], atom, schema, vocab);
    }
    if (!entailed) continue;
    // Every variable of the atom must stay bound by surviving atoms.
    std::vector<VarId> atom_vars;
    atom.AppendVariables(&atom_vars);
    bool vars_covered = true;
    for (VarId v : atom_vars) {
      bool found = false;
      for (size_t j = 0; j < cq.atoms.size() && !found; ++j) {
        if (j == i || removed[j]) continue;
        std::vector<VarId> other_vars;
        cq.atoms[j].AppendVariables(&other_vars);
        found = std::find(other_vars.begin(), other_vars.end(), v) !=
                other_vars.end();
      }
      vars_covered &= found;
    }
    if (vars_covered) removed[i] = true;
  }

  result.query.head = cq.head;
  result.query.head_bindings = cq.head_bindings;
  for (size_t i = 0; i < cq.atoms.size(); ++i) {
    if (removed[i]) {
      result.removed_atoms.push_back(i);
    } else {
      result.query.atoms.push_back(cq.atoms[i]);
    }
  }
  return result;
}

}  // namespace rdfopt
