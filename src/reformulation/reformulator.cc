#include "reformulation/reformulator.h"

#include <algorithm>
#include <unordered_set>

namespace rdfopt {

namespace {

PatternTerm SubstituteTerm(
    const PatternTerm& term,
    const std::vector<std::pair<VarId, ValueId>>& substitution) {
  if (!term.is_var()) return term;
  for (const auto& [v, c] : substitution) {
    if (v == term.var()) return PatternTerm::Const(c);
  }
  return term;
}

// Merges two sorted substitutions; returns false on a conflicting binding.
bool MergeSubstitutions(const std::vector<std::pair<VarId, ValueId>>& a,
                        const std::vector<std::pair<VarId, ValueId>>& b,
                        std::vector<std::pair<VarId, ValueId>>* out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      out->push_back(a[i++]);
    } else if (b[j].first < a[i].first) {
      out->push_back(b[j++]);
    } else {
      if (a[i].second != b[j].second) return false;
      out->push_back(a[i++]);
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + i, a.end());
  out->insert(out->end(), b.begin() + j, b.end());
  return true;
}

// Dedup key of an atom reformulation, invariant under renaming of fresh
// variables (ids >= base).
std::string AtomKey(const AtomReformulation& ref, size_t base) {
  ConjunctiveQuery cq;
  cq.atoms.push_back(ref.atom);
  std::string key = CanonicalKey(cq, base);
  for (const auto& [v, c] : ref.substitution) {
    key += "s" + std::to_string(v) + "=" + std::to_string(c) + ",";
  }
  return key;
}

}  // namespace

TriplePattern ApplySubstitution(
    const TriplePattern& atom,
    const std::vector<std::pair<VarId, ValueId>>& substitution) {
  return TriplePattern{SubstituteTerm(atom.s, substitution),
                       SubstituteTerm(atom.p, substitution),
                       SubstituteTerm(atom.o, substitution)};
}

void Reformulator::ReformulateTypeConstant(
    const TriplePattern& atom, VarTable* vars,
    std::vector<AtomReformulation>* out) const {
  const ValueId cls = atom.o.value();
  const PatternTerm type = PatternTerm::Const(vocab_->rdf_type);
  // Identity first (the closure is reflexive but sorted by id).
  out->push_back({TriplePattern{atom.s, type, PatternTerm::Const(cls)}, {}});
  for (ValueId sub : schema_->SubClassesOf(cls)) {
    if (sub == cls) continue;
    out->push_back(
        {TriplePattern{atom.s, type, PatternTerm::Const(sub)}, {}});
  }
  for (ValueId prop : schema_->PropertiesWithDomainEntailing(cls)) {
    PatternTerm fresh = PatternTerm::Var(vars->Fresh());
    out->push_back(
        {TriplePattern{atom.s, PatternTerm::Const(prop), fresh}, {}});
  }
  for (ValueId prop : schema_->PropertiesWithRangeEntailing(cls)) {
    PatternTerm fresh = PatternTerm::Var(vars->Fresh());
    out->push_back(
        {TriplePattern{fresh, PatternTerm::Const(prop), atom.s}, {}});
  }
}

std::vector<AtomReformulation> Reformulator::ReformulateAtom(
    const TriplePattern& atom, VarTable* vars) const {
  const size_t base = vars->size();
  std::vector<AtomReformulation> raw;

  if (!atom.p.is_var()) {
    const ValueId p = atom.p.value();
    if (p == vocab_->rdf_type) {
      if (!atom.o.is_var()) {
        // (s, rdf:type, C): subclasses, then domain/range-entailing
        // properties. Includes the identity via the reflexive closure.
        ReformulateTypeConstant(atom, vars, &raw);
      } else {
        // (s, rdf:type, Y): the atom itself, plus each schema class
        // instantiation expanded in turn (paper Example 4).
        raw.push_back({atom, {}});
        const VarId y = atom.o.var();
        for (ValueId cls : schema_->AllClasses()) {
          std::vector<std::pair<VarId, ValueId>> subst = {{y, cls}};
          TriplePattern instantiated = ApplySubstitution(atom, subst);
          std::vector<AtomReformulation> inner;
          ReformulateTypeConstant(instantiated, vars, &inner);
          for (AtomReformulation& ref : inner) {
            ref.substitution = subst;
            raw.push_back(std::move(ref));
          }
        }
      }
    } else {
      // Plain property: subproperty closure, identity first.
      raw.push_back({atom, {}});
      for (ValueId sub : schema_->SubPropertiesOf(p)) {
        if (sub == p) continue;
        raw.push_back(
            {TriplePattern{atom.s, PatternTerm::Const(sub), atom.o}, {}});
      }
    }
    // Fall through to dedup below.
  } else {
    // (s, P, o) with P a variable: the atom itself, each schema property
    // instantiation expanded, and the rdf:type instantiation expanded.
    raw.push_back({atom, {}});
    const VarId pv = atom.p.var();
    for (ValueId prop : schema_->AllProperties()) {
      std::vector<std::pair<VarId, ValueId>> subst = {{pv, prop}};
      TriplePattern instantiated = ApplySubstitution(atom, subst);
      for (ValueId sub : schema_->SubPropertiesOf(prop)) {
        AtomReformulation ref;
        ref.atom = TriplePattern{instantiated.s, PatternTerm::Const(sub),
                                 instantiated.o};
        ref.substitution = subst;
        raw.push_back(std::move(ref));
      }
    }
    {
      std::vector<std::pair<VarId, ValueId>> subst = {{pv, vocab_->rdf_type}};
      TriplePattern instantiated = ApplySubstitution(atom, subst);
      std::vector<AtomReformulation> inner =
          ReformulateAtom(instantiated, vars);
      for (AtomReformulation& ref : inner) {
        std::vector<std::pair<VarId, ValueId>> merged;
        if (!MergeSubstitutions(subst, ref.substitution, &merged)) continue;
        ref.substitution = std::move(merged);
        raw.push_back(std::move(ref));
      }
    }
  }

  // Dedup, preserving order (identity stays first where present).
  std::vector<AtomReformulation> out;
  out.reserve(raw.size());
  std::unordered_set<std::string> seen;
  for (AtomReformulation& ref : raw) {
    if (seen.insert(AtomKey(ref, base)).second) {
      out.push_back(std::move(ref));
    }
  }
  return out;
}

size_t Reformulator::CountAtomReformulations(const TriplePattern& atom,
                                             const VarTable& vars) const {
  VarTable scratch = vars;
  return ReformulateAtom(atom, &scratch).size();
}

size_t Reformulator::EstimateDisjuncts(const ConjunctiveQuery& cq,
                                       const VarTable& vars) const {
  size_t product = 1;
  for (const TriplePattern& atom : cq.atoms) {
    size_t n = CountAtomReformulations(atom, vars);
    if (n != 0 && product > SIZE_MAX / n) return SIZE_MAX;  // Saturate.
    product *= n;
  }
  return product;
}

Result<UnionQuery> Reformulator::ReformulateCQ(const ConjunctiveQuery& cq,
                                               VarTable* vars,
                                               size_t max_disjuncts) const {
  const size_t base = vars->size();
  std::vector<std::vector<AtomReformulation>> per_atom;
  per_atom.reserve(cq.atoms.size());
  size_t product = 1;
  for (const TriplePattern& atom : cq.atoms) {
    per_atom.push_back(ReformulateAtom(atom, vars));
    size_t n = per_atom.back().size();
    product = (n != 0 && product > SIZE_MAX / n) ? SIZE_MAX : product * n;
  }
  if (product > max_disjuncts) {
    return Status::QueryTooComplex(
        "UCQ reformulation would have " + std::to_string(product) +
        " disjuncts, over the limit of " + std::to_string(max_disjuncts));
  }

  UnionQuery ucq;
  ucq.head = cq.head;
  std::unordered_set<uint64_t> seen;

  std::vector<size_t> odometer(cq.atoms.size(), 0);
  std::vector<std::pair<VarId, ValueId>> merged;
  std::vector<std::pair<VarId, ValueId>> scratch;
  for (;;) {
    // Merge the substitutions of the current combination.
    merged.clear();
    bool compatible = true;
    for (size_t i = 0; i < odometer.size() && compatible; ++i) {
      const auto& subst = per_atom[i][odometer[i]].substitution;
      if (subst.empty()) continue;
      compatible = MergeSubstitutions(merged, subst, &scratch);
      if (compatible) merged.swap(scratch);
    }
    if (compatible) {
      ConjunctiveQuery disjunct;
      disjunct.head = cq.head;
      disjunct.atoms.reserve(cq.atoms.size());
      for (size_t i = 0; i < odometer.size(); ++i) {
        disjunct.atoms.push_back(
            ApplySubstitution(per_atom[i][odometer[i]].atom, merged));
      }
      for (const auto& [v, c] : merged) {
        if (std::find(cq.head.begin(), cq.head.end(), v) != cq.head.end()) {
          disjunct.head_bindings.emplace_back(v, c);
        }
      }
      if (seen.insert(CanonicalHash(disjunct, base)).second) {
        ucq.disjuncts.push_back(std::move(disjunct));
      }
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < odometer.size()) {
      if (++odometer[pos] < per_atom[pos].size()) break;
      odometer[pos] = 0;
      ++pos;
    }
    if (pos == odometer.size()) break;
  }
  return ucq;
}

}  // namespace rdfopt
