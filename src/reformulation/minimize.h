#ifndef RDFOPT_REFORMULATION_MINIMIZE_H_
#define RDFOPT_REFORMULATION_MINIMIZE_H_

#include <vector>

#include "rdf/vocabulary.h"
#include "schema/schema.h"
#include "sparql/query.h"

namespace rdfopt {

/// Removal of query atoms redundant w.r.t. the RDFS constraints.
///
/// Paper, footnote 3: "A query triple is redundant when it can be inferred
/// from the others based on the RDFS constraints. For instance, when looking
/// for x such that x is a person and x has a social security number, if we
/// know that only people have such numbers, the triple 'x is a person' is
/// redundant." The paper removes such triples from the benchmark queries by
/// hand; this module does it mechanically, so arbitrary user queries get the
/// same treatment before reformulation (each redundant atom would otherwise
/// multiply the UCQ size by its reformulation count).
///
/// An atom is removed when another atom *RDFS-entails* it:
///  * (s rdf:type C) is entailed by (s rdf:type C') with C' ≼sc C, by
///    (s p o) whose entailed domain includes C, and by (o p s) whose
///    entailed range includes C;
///  * (s p o) is entailed by (s p' o) with p' ≼sp p (identical s/o terms).
///
/// Only atoms whose variables all remain bound by the surviving atoms are
/// removed (so head variables and join structure are preserved), and atoms
/// are considered in order, each checked against the current survivors —
/// mutual-redundancy pairs keep their first member.
struct MinimizationResult {
  ConjunctiveQuery query;
  /// Indices (into the original atom list) of the removed atoms.
  std::vector<size_t> removed_atoms;
};

/// `schema` must be finalized.
MinimizationResult MinimizeQuery(const ConjunctiveQuery& cq,
                                 const Schema& schema,
                                 const Vocabulary& vocab);

/// True iff `by` RDFS-entails `atom` per the rules above (used by the
/// minimizer; exposed for tests).
bool AtomEntails(const TriplePattern& by, const TriplePattern& atom,
                 const Schema& schema, const Vocabulary& vocab);

}  // namespace rdfopt

#endif  // RDFOPT_REFORMULATION_MINIMIZE_H_
