#ifndef RDFOPT_REFORMULATION_SUBSUMPTION_H_
#define RDFOPT_REFORMULATION_SUBSUMPTION_H_

#include <cstddef>

#include "sparql/query.h"

namespace rdfopt {

/// Conjunctive-query containment and subsumption pruning of UCQ disjuncts.
///
/// State-of-the-art reformulations "may contain redundant CQs" (paper §1,
/// discussing [11]'s hybrid approach); e.g. the Example 4 reformulation
/// contains q(x, Book) :- x rdf:type Book, every answer of which the
/// generic disjunct q(x, y) :- x rdf:type y also returns. Dropping such
/// subsumed disjuncts shrinks the union the engine must evaluate without
/// changing the answer set (set semantics).
///
/// Containment is decided by the classic homomorphism criterion: `general`
/// contains `specific` iff there is a homomorphism from `general`'s body
/// into `specific`'s body that maps every answer of `specific` to itself —
/// head variables map to themselves, or to the constant `specific`'s
/// head_bindings fix them to. NP-hard in general; the backtracking search
/// is exponential only in the (tiny) atom count of `general`.

/// True iff every answer of `specific` is an answer of `general` on every
/// database (no reasoning: plain CQ containment). Both queries must have
/// the same head variable list.
bool CqSubsumes(const ConjunctiveQuery& general,
                const ConjunctiveQuery& specific);

/// Removes from `ucq` every disjunct subsumed by another disjunct (keeping
/// the subsumer; for mutually subsuming pairs the earlier disjunct wins).
/// Returns the number removed. Quadratic with a homomorphism test per pair:
/// intended for UCQs up to a few thousand disjuncts (callers gate on size).
size_t PruneSubsumedDisjuncts(UnionQuery* ucq);

}  // namespace rdfopt

#endif  // RDFOPT_REFORMULATION_SUBSUMPTION_H_
