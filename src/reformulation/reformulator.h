#ifndef RDFOPT_REFORMULATION_REFORMULATOR_H_
#define RDFOPT_REFORMULATION_REFORMULATOR_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "rdf/vocabulary.h"
#include "schema/schema.h"
#include "sparql/query.h"

namespace rdfopt {

/// One alternative produced by reformulating a single atom: the rewritten
/// atom plus the substitution of *original query variables* it commits to
/// (non-empty only when a class-/property-position variable was instantiated
/// against a schema value, as in paper Example 4 where y is bound to Book).
struct AtomReformulation {
  TriplePattern atom;
  /// Sorted by variable id; disjoint variables only.
  std::vector<std::pair<VarId, ValueId>> substitution;
};

/// CQ-to-UCQ query reformulation for the database fragment of RDF
/// (paper §2.3, the `Reformulate` algorithm of [4]/[23]).
///
/// Reformulation is per-atom backward chaining over the finalized schema
/// closures; a CQ's UCQ reformulation is the substitution-unified cross
/// product of its atoms' reformulation sets. This matches the paper's
/// arithmetic: q1's atoms have 188, 4 and 3 reformulations and its UCQ
/// reformulation has 188 x 4 x 3 = 2256 disjuncts.
///
/// Per-atom rules (closures are reflexive-transitive):
///
///  * (s, p, o), p a plain property   -> (s, p', o) for p' in SubPropertiesOf(p)
///  * (s, rdf:type, C), C a constant  -> (s, rdf:type, C') for C' in SubClassesOf(C)
///                                     | (s, p', fresh)  for p' whose domain entails C
///                                     | (fresh, p', s)  for p' whose range entails C
///  * (s, rdf:type, Y), Y a variable  -> the atom itself
///                                     | every reformulation of (s, rdf:type, C)
///                                       with substitution {Y -> C}, for each
///                                       schema class C (Example 4)
///  * (s, P, o), P a variable         -> the atom itself
///                                     | every reformulation of (s, p, o) with
///                                       {P -> p}, for each schema property p
///                                     | every reformulation of (s, rdf:type, o)
///                                       with {P -> rdf:type}
///
/// Instantiating variables only against *schema* classes/properties is
/// complete: a reformulation instantiated with a value subject to no
/// constraint rewrites only to itself, and those answers are already
/// produced by the uninstantiated atom.
class Reformulator {
 public:
  /// `schema` must be finalized and must outlive the reformulator.
  Reformulator(const Schema* schema, const Vocabulary* vocab)
      : schema_(schema), vocab_(vocab) {}

  /// All reformulations of one atom. Fresh non-distinguished variables are
  /// drawn from `vars`. Exact duplicates (modulo fresh-variable renaming)
  /// are removed; the identity alternative is always first.
  std::vector<AtomReformulation> ReformulateAtom(const TriplePattern& atom,
                                                 VarTable* vars) const;

  /// Size of ReformulateAtom's result without touching the caller's
  /// VarTable (the paper's per-triple "#reformulations", Tables 1 and 3).
  size_t CountAtomReformulations(const TriplePattern& atom,
                                 const VarTable& vars) const;

  /// Upper bound on the number of disjuncts of the CQ's UCQ reformulation:
  /// the product of the per-atom counts, saturating at SIZE_MAX.
  size_t EstimateDisjuncts(const ConjunctiveQuery& cq,
                           const VarTable& vars) const;

  /// The UCQ reformulation of `cq` (paper's q_ref): cross product of the
  /// per-atom sets with substitution unification, substitutions applied,
  /// head bindings recorded, duplicates removed. Fails with
  /// kQueryTooComplex when the (pre-unification) product exceeds
  /// `max_disjuncts`.
  Result<UnionQuery> ReformulateCQ(const ConjunctiveQuery& cq, VarTable* vars,
                                   size_t max_disjuncts = SIZE_MAX) const;

 private:
  void ReformulateTypeConstant(const TriplePattern& atom, VarTable* vars,
                               std::vector<AtomReformulation>* out) const;

  const Schema* schema_;
  const Vocabulary* vocab_;
};

/// Applies a substitution to every position of an atom.
TriplePattern ApplySubstitution(
    const TriplePattern& atom,
    const std::vector<std::pair<VarId, ValueId>>& substitution);

}  // namespace rdfopt

#endif  // RDFOPT_REFORMULATION_REFORMULATOR_H_
