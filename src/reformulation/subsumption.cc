#include "reformulation/subsumption.h"

#include <unordered_map>
#include <vector>

namespace rdfopt {

namespace {

/// Partial homomorphism from the general query's variables to terms of the
/// specific query, with an undo trail for backtracking.
struct Homomorphism {
  std::unordered_map<VarId, PatternTerm> map;

  bool Unify(const PatternTerm& general_term, const PatternTerm& image,
             std::vector<VarId>* trail) {
    if (!general_term.is_var()) return general_term == image;
    auto it = map.find(general_term.var());
    if (it != map.end()) return it->second == image;
    map.emplace(general_term.var(), image);
    trail->push_back(general_term.var());
    return true;
  }

  void Undo(const std::vector<VarId>& trail) {
    for (VarId v : trail) map.erase(v);
  }
};

bool Search(const std::vector<TriplePattern>& general_atoms, size_t index,
            const std::vector<TriplePattern>& specific_atoms,
            Homomorphism* hom) {
  if (index == general_atoms.size()) return true;
  const TriplePattern& atom = general_atoms[index];
  for (const TriplePattern& target : specific_atoms) {
    std::vector<VarId> trail;
    if (hom->Unify(atom.s, target.s, &trail) &&
        hom->Unify(atom.p, target.p, &trail) &&
        hom->Unify(atom.o, target.o, &trail)) {
      if (Search(general_atoms, index + 1, specific_atoms, hom)) return true;
    }
    hom->Undo(trail);
  }
  return false;
}

/// Binding of `var` in the query's head_bindings, or kInvalidValueId.
ValueId BindingOf(const ConjunctiveQuery& cq, VarId var) {
  for (const auto& [v, c] : cq.head_bindings) {
    if (v == var) return c;
  }
  return kInvalidValueId;
}

}  // namespace

bool CqSubsumes(const ConjunctiveQuery& general,
                const ConjunctiveQuery& specific) {
  if (general.head != specific.head) return false;

  Homomorphism hom;
  std::vector<VarId> trail;  // Never undone: head constraints are fixed.
  for (VarId v : general.head) {
    ValueId general_bound = BindingOf(general, v);
    ValueId specific_bound = BindingOf(specific, v);
    if (general_bound != kInvalidValueId) {
      // The general disjunct outputs a constant for v: it covers the
      // specific one only if that one outputs the same constant.
      if (specific_bound != general_bound) return false;
      continue;  // v occurs in neither body; nothing to map.
    }
    PatternTerm image = specific_bound != kInvalidValueId
                            ? PatternTerm::Const(specific_bound)
                            : PatternTerm::Var(v);
    if (!hom.Unify(PatternTerm::Var(v), image, &trail)) return false;
  }
  return Search(general.atoms, 0, specific.atoms, &hom);
}

size_t PruneSubsumedDisjuncts(UnionQuery* ucq) {
  const size_t n = ucq->disjuncts.size();
  std::vector<bool> removed(n, false);
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j || removed[j]) continue;
      if (!CqSubsumes(ucq->disjuncts[j], ucq->disjuncts[i])) continue;
      // Mutual subsumption (equivalent disjuncts): keep the earlier one.
      if (CqSubsumes(ucq->disjuncts[i], ucq->disjuncts[j]) && j > i) {
        continue;
      }
      removed[i] = true;
      ++count;
      break;
    }
  }
  if (count == 0) return 0;
  std::vector<ConjunctiveQuery> kept;
  kept.reserve(n - count);
  for (size_t i = 0; i < n; ++i) {
    if (!removed[i]) kept.push_back(std::move(ucq->disjuncts[i]));
  }
  ucq->disjuncts = std::move(kept);
  return count;
}

}  // namespace rdfopt
