#ifndef RDFOPT_ENGINE_OPERATORS_H_
#define RDFOPT_ENGINE_OPERATORS_H_

#include <vector>

#include "engine/relation.h"
#include "sparql/query.h"
#include "storage/triple_store.h"

namespace rdfopt {

/// Physical operators of the embedded engine: selections/projections (scan),
/// joins and unions — exactly the operator set the paper assumes of the
/// target engine ("any system capable of evaluating selections, projections,
/// joins and unions", §1). All operators are pure functions; resource
/// accounting, timeouts and profile emulation live in the Evaluator.

/// Index scan of one triple pattern: selects the matching triples via the
/// best permutation index and projects them onto the pattern's distinct
/// variables (columns in first-occurrence s,p,o order). Repeated variables
/// within the atom (e.g. `?x ?p ?x`) are enforced as a filter.
Relation ScanAtom(const TripleStore& store, const TriplePattern& atom);

/// Number of index entries the scan reads (before repeated-variable
/// filtering); O(log n).
size_t ScanAtomInputSize(const TripleStore& store, const TriplePattern& atom);

/// Hierarchy interval scan (DESIGN.md §12): selects every triple of the
/// store's hid-ordered shadow index with hid in `[lo, hi)` — class hids
/// (type triples, `class_space` true) or property hids — and projects them
/// onto `rep_atom`'s variables. `rep_atom` is the representative pattern of
/// the collapsed union branches: its masked position (the type-atom object,
/// resp. the predicate) ranges over the interval; its other constants are
/// enforced per triple. Requires TripleStore::AttachHierarchy (empty result
/// otherwise). Output ordering: (hid, subject[, object]) — the concatenation
/// of the per-constant scans in hid order.
Relation ScanRange(const TripleStore& store, const TriplePattern& rep_atom,
                   bool class_space, uint32_t lo, uint32_t hi);

/// Number of shadow-index entries the range scan reads; O(1).
size_t ScanRangeInputSize(const TripleStore& store, bool class_space,
                          uint32_t lo, uint32_t hi);

/// Natural hash join on the shared columns (build on the smaller input).
/// With no shared column this is the cartesian product. Output columns:
/// left columns, then right-only columns. `prefetch` issues software
/// prefetches ahead of the probe loop (EngineProfile::prefetch_probes);
/// results are identical either way.
Relation HashJoin(const Relation& left, const Relation& right,
                  bool prefetch = false);

/// Index nested-loop join of `left` with one triple pattern: for every left
/// row, the atom's variable positions covered by `left` are bound to the
/// row's values and the matching triples are fetched through the best
/// permutation index. Output columns: left columns, then the atom's
/// remaining variables in first-occurrence s,p,o order. `rows_probed`, if
/// non-null, accumulates the number of index entries touched (the engine's
/// work metric for this operator).
///
/// This is the selective join pushdown real engines apply to reformulated
/// queries — the reason a fragment like (t1,t3) evaluates its 500+ union
/// terms quickly: each term probes the index with the few bindings of the
/// selective atom instead of scanning the whole type table.
Relation IndexJoinAtom(const TripleStore& store, const Relation& left,
                       const TriplePattern& atom, size_t* rows_probed);

/// Appends `input`, projected/reordered to `acc`'s columns, directly to
/// `acc` — no intermediate Relation is materialized (the per-disjunct copy
/// UnionInto used to make). `bindings` supplies constant values for acc
/// columns missing from `input` (reformulation-time head bindings, see
/// ConjunctiveQuery::head_bindings).
void ProjectInto(Relation* acc, const Relation& input,
                 const std::vector<std::pair<VarId, ValueId>>& bindings);

/// Legacy spelling of ProjectInto (kept for callers/tests that predate it).
void UnionInto(Relation* acc, const Relation& input,
               const std::vector<std::pair<VarId, ValueId>>& bindings);

/// Projection of `input` onto `head`, with constants for head variables
/// covered by `bindings` rather than by input columns.
Relation ProjectWithBindings(
    const Relation& input, const std::vector<VarId>& head,
    const std::vector<std::pair<VarId, ValueId>>& bindings);

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_OPERATORS_H_
