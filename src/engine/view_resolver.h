#ifndef RDFOPT_ENGINE_VIEW_RESOLVER_H_
#define RDFOPT_ENGINE_VIEW_RESOLVER_H_

#include <memory>
#include <string>

namespace rdfopt {

class Relation;
struct UnionQuery;

/// The engine's view of the materialized-view catalog (DESIGN.md §14). The
/// catalog itself lives in src/views — a layer above the engine — so the
/// Planner and Evaluator talk to it through this interface, wired opt-in by
/// a plain pointer exactly like the estimate-feedback store: never ambient,
/// default off, so paper-reproduction runs and golden plans are unaffected.
///
/// The division of labor follows who owns the information:
///  - the Planner knows each component's definition and estimates, so it
///    announces them (NoteComponent) and asks for substitutable rows
///    (Lookup) while building the component;
///  - the Evaluator produces the rows, so it hands each freshly
///    deduplicated component result to Offer for opportunistic admission.
///
/// Implementations must be thread-safe: Lookup/NoteComponent run on
/// concurrent request threads, Offer on executor worker threads.
class ViewResolver {
 public:
  virtual ~ViewResolver() = default;

  /// Called by the Planner once per planned (executable) component: records
  /// an observation of `signature` (ViewSignature of the component UCQ) in
  /// the advisor's frequency ledger, together with the definition and the
  /// estimates needed to score and later re-materialize it.
  virtual void NoteComponent(const std::string& signature,
                             const UnionQuery& ucq, double est_cost,
                             size_t union_terms) = 0;

  /// Materialized rows for `signature`, or nullptr when the catalog has no
  /// current-epoch entry. The returned relation is immutable and stays
  /// valid for the caller's lifetime even if the catalog evicts the entry
  /// (shared ownership).
  virtual std::shared_ptr<const Relation> Lookup(
      const std::string& signature) = 0;

  /// Offers a freshly computed, deduplicated component result for
  /// admission. The resolver copies the rows if (and only if) it admits
  /// them; the caller keeps ownership of `rows`.
  virtual void Offer(const std::string& signature, const Relation& rows) = 0;
};

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_VIEW_RESOLVER_H_
