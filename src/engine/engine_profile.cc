#include "engine/engine_profile.h"

#include "engine/relation.h"

namespace rdfopt {

namespace {

// Profiles live forever (function-local static references to heap objects:
// trivially-destructible statics only, per style).
//
// The three reformulation targets reproduce the qualitative differences the
// paper reports (§5.2):
//  * DB2-like: tightest plan-size limit (fails first on huge UCQs, like
//    DB2's stack-depth error) and the highest per-union-term setup cost
//    (multi-thousand-term UCQ plans are the slowest there), but cheap
//    materialization.
//  * Postgres-like: the most permissive plan limit, balanced constants.
//  * MySQL-like: very expensive materialization (the paper: "SCQ is very
//    inefficient on MySQL") and a modest plan limit.
//
// The per-term and per-row overheads are physically consumed (busy-wait) by
// the evaluator, so measured wall-clock genuinely differs per profile. Each
// profile's default cost constants mirror its physical overheads (one cost
// unit = one microsecond); Calibration (cost/calibration.h) re-fits them.

EngineProfile MakeDb2Like() {
  EngineProfile p;
  p.name = "engine-A(db2-like)";
  p.max_union_terms = 6000;
  p.max_materialized_cells = 120u * 1000 * 1000;
  p.tuple_us_per_row = 1.0;
  p.materialization_us_per_row = 1.0;
  p.union_term_overhead_us = 400.0;
  p.cost.c_union_term = 400.0;
  p.cost.c_m = 1.0;
  p.cost.c_t = 1.0;
  p.cost.c_r = 1.0;
  p.cost.c_j = 1.0;
  return p;
}

EngineProfile MakePostgresLike() {
  EngineProfile p;
  p.name = "engine-B(postgres-like)";
  p.max_union_terms = 40000;
  p.max_materialized_cells = 240u * 1000 * 1000;
  p.tuple_us_per_row = 1.5;
  p.materialization_us_per_row = 2.0;
  p.union_term_overhead_us = 150.0;
  p.cost.c_union_term = 150.0;
  p.cost.c_m = 2.0;
  p.cost.c_t = 1.5;
  p.cost.c_r = 1.5;
  p.cost.c_j = 1.5;
  return p;
}

EngineProfile MakeMysqlLike() {
  EngineProfile p;
  p.name = "engine-C(mysql-like)";
  p.max_union_terms = 12000;
  p.max_materialized_cells = 80u * 1000 * 1000;
  p.tuple_us_per_row = 2.5;
  p.materialization_us_per_row = 8.0;
  p.union_term_overhead_us = 250.0;
  p.cost.c_union_term = 250.0;
  p.cost.c_m = 8.0;
  p.cost.c_t = 2.5;
  p.cost.c_r = 2.5;
  p.cost.c_j = 2.5;
  return p;
}

EngineProfile MakeNativeStore() {
  EngineProfile p;
  p.name = "native-store";
  p.max_union_terms = 100000;
  p.max_materialized_cells = 400u * 1000 * 1000;
  p.tuple_us_per_row = 0.2;
  p.materialization_us_per_row = 0.2;
  p.union_term_overhead_us = 20.0;
  p.cost.c_union_term = 20.0;
  p.cost.c_m = 0.2;
  p.cost.c_t = 0.2;
  p.cost.c_r = 0.2;
  p.cost.c_j = 0.2;
  return p;
}

}  // namespace

EngineProfile Vectorized(const EngineProfile& base, size_t width) {
  EngineProfile p = base;
  if (width == 0) width = 1;
  // The executor's batch loops and selection vectors are physically sized
  // kBatchRows; a wider width would amortize costs the engine never
  // amortizes (and fail plan verification's batch-width rule).
  if (width > kBatchRows) width = kBatchRows;
  p.name = base.name + "+vectorized";
  p.vector_width = width;
  p.share_union_subplans = true;
  const double w = static_cast<double>(width);
  // Per-row emulated overheads model tuple-at-a-time interpretation; a
  // vectorized engine pays them once per batch.
  p.tuple_us_per_row = base.tuple_us_per_row / w;
  p.materialization_us_per_row = base.materialization_us_per_row / w;
  p.union_term_overhead_us = base.union_term_overhead_us / w;
  // The matching per-tuple cost constants scale with them so estimates keep
  // tracking the emulated engine; c_db (per-query) and the dedup spill
  // threshold are width-independent.
  p.cost.c_t = base.cost.c_t / w;
  p.cost.c_r = base.cost.c_r / w;
  p.cost.c_j = base.cost.c_j / w;
  p.cost.c_m = base.cost.c_m / w;
  p.cost.c_l = base.cost.c_l / w;
  p.cost.c_k = base.cost.c_k / w;
  p.cost.c_union_term = base.cost.c_union_term / w;
  return p;
}

const EngineProfile& Db2LikeProfile() {
  static const EngineProfile& p = *new EngineProfile(MakeDb2Like());
  return p;
}

const EngineProfile& PostgresLikeProfile() {
  static const EngineProfile& p = *new EngineProfile(MakePostgresLike());
  return p;
}

const EngineProfile& MysqlLikeProfile() {
  static const EngineProfile& p = *new EngineProfile(MakeMysqlLike());
  return p;
}

const EngineProfile& NativeStoreProfile() {
  static const EngineProfile& p = *new EngineProfile(MakeNativeStore());
  return p;
}

}  // namespace rdfopt
