#ifndef RDFOPT_ENGINE_RELATION_H_
#define RDFOPT_ENGINE_RELATION_H_

#include <span>
#include <vector>

#include "rdf/term.h"
#include "sparql/query.h"

namespace rdfopt {

/// A materialized relation: a bag of rows over columns named by query
/// variables. Rows are stored flattened (row-major) for locality; set
/// semantics is obtained by calling Deduplicate().
class Relation {
 public:
  /// Column order is significant; a variable may appear at most once.
  explicit Relation(std::vector<VarId> columns)
      : columns_(std::move(columns)) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const std::vector<VarId>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? scalar_rows_ : cells_.size() / columns_.size();
  }

  /// Index of variable `v` among the columns, or -1.
  int ColumnIndex(VarId v) const;

  /// Appends one row; `row.size()` must equal arity().
  void AppendRow(std::span<const ValueId> row);

  /// For zero-arity (boolean) relations: appends an empty row, making the
  /// relation non-empty ("true").
  void AppendEmptyRow();

  /// Appends every row of `other`, whose columns must be identical (same
  /// variables, same order). One bulk copy — the merge step of the parallel
  /// union executor, where per-worker accumulators already share the union
  /// head's schema.
  void Append(const Relation& other);

  std::span<const ValueId> row(size_t i) const {
    return {cells_.data() + i * columns_.size(), columns_.size()};
  }
  ValueId at(size_t row_index, size_t col) const {
    return cells_[row_index * columns_.size() + col];
  }

  /// Removes duplicate rows (hash-based); returns the number removed.
  size_t Deduplicate();

  /// Total number of cells; proxy for the relation's memory footprint used
  /// by the engine's resource accounting.
  size_t num_cells() const { return cells_.size(); }

  void Reserve(size_t rows) { cells_.reserve(rows * columns_.size()); }

 private:
  std::vector<VarId> columns_;
  std::vector<ValueId> cells_;
  size_t scalar_rows_ = 0;  // Row count for zero-arity relations.
};

/// Hash/equality over rows of a fixed-arity flattened buffer; shared by
/// deduplication and the hash-join build side.
size_t HashRow(std::span<const ValueId> row);

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_RELATION_H_
