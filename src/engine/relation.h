#ifndef RDFOPT_ENGINE_RELATION_H_
#define RDFOPT_ENGINE_RELATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/term.h"
#include "sparql/query.h"

namespace rdfopt {

/// Number of rows one execution batch holds (see DESIGN.md §11). Operators
/// process inputs in chunks of this many rows: a chunk's cells fit L1/L2,
/// per-chunk bookkeeping (selection vectors, key buffers) is reused across
/// chunks, and the per-row interpretation overhead of the tuple-at-a-time
/// executor amortizes to one dispatch per batch. This is also the default
/// EngineProfile::vector_width of vectorized profiles.
inline constexpr size_t kBatchRows = 1024;

/// A read-only view of a chunk of rows of a flattened (row-major) buffer,
/// optionally filtered by a selection vector. The unit of work of the batch
/// executor: operators produce/consume Batches instead of single rows.
///
/// With `sel == nullptr` the batch is dense: rows 0..num_rows-1 all
/// qualify. With a selection vector, only the row indices in
/// `sel[0..sel_size)` qualify (ascending, each < num_rows) — filters emit
/// selection vectors instead of compacting cells, so a filtered batch costs
/// O(selected) to append, not O(scanned).
struct Batch {
  const ValueId* cells = nullptr;  ///< num_rows * arity values, row-major.
  size_t arity = 0;
  size_t num_rows = 0;
  const uint32_t* sel = nullptr;  ///< Optional selection vector.
  size_t sel_size = 0;

  /// Number of qualifying rows.
  size_t size() const { return sel != nullptr ? sel_size : num_rows; }
  /// The i-th qualifying row.
  std::span<const ValueId> row(size_t i) const {
    const size_t r = sel != nullptr ? sel[i] : i;
    return {cells + r * arity, arity};
  }
};

/// A materialized relation: a bag of rows over columns named by query
/// variables. Rows are stored flattened (row-major) for locality; set
/// semantics is obtained by calling Deduplicate().
class Relation {
 public:
  /// Column order is significant; a variable may appear at most once.
  explicit Relation(std::vector<VarId> columns)
      : columns_(std::move(columns)) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const std::vector<VarId>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? scalar_rows_ : cells_.size() / columns_.size();
  }

  /// Index of variable `v` among the columns, or -1.
  int ColumnIndex(VarId v) const;

  /// Appends one row; `row.size()` must equal arity().
  void AppendRow(std::span<const ValueId> row);

  /// For zero-arity (boolean) relations: appends an empty row, making the
  /// relation non-empty ("true").
  void AppendEmptyRow();

  /// Appends every row of `other`, whose columns must be identical (same
  /// variables, same order). One bulk copy — the merge step of the parallel
  /// union executor, where per-worker accumulators already share the union
  /// head's schema.
  void Append(const Relation& other);

  /// Grows the relation by `rows` uninitialized rows and returns the write
  /// pointer to the first new cell. The batch operators' emit path: one
  /// resize per batch, then straight-line stores — no per-row size checks.
  /// Returns nullptr for zero-arity relations (the rows are counted).
  ValueId* AppendUninitialized(size_t rows);

  /// Bulk-appends a batch's qualifying rows (its columns must already match
  /// this relation's schema). Dense batches append with one memcpy-like
  /// copy; selective batches gather the selected rows.
  void AppendBatch(const Batch& batch);

  /// The rows [begin, begin + rows) of this relation as a dense batch view.
  /// The view is invalidated by any append.
  Batch Chunk(size_t begin, size_t rows) const {
    return Batch{cells_.data() + begin * columns_.size(), columns_.size(),
                 rows, nullptr, 0};
  }

  /// Deep copy (relations are move-only; copies must be explicit — the
  /// shared-subplan executor copies only when a branch needs ownership).
  Relation Copy() const;

  std::span<const ValueId> row(size_t i) const {
    return {cells_.data() + i * columns_.size(), columns_.size()};
  }
  ValueId at(size_t row_index, size_t col) const {
    return cells_[row_index * columns_.size() + col];
  }
  const ValueId* cells_data() const { return cells_.data(); }

  /// Removes duplicate rows, keeping the first occurrence of each (the
  /// surviving rows stay in their original relative order); returns the
  /// number removed. Radix-partitioned hash dedup: per-row hashes are
  /// computed batch-at-a-time, large inputs are partitioned by hash prefix
  /// so each partition's table stays cache-resident, and survivors are
  /// compacted in one stable pass (see DESIGN.md §11). `prefetch` issues
  /// software prefetches ahead of the table probe loops
  /// (EngineProfile::prefetch_probes); results are identical either way.
  size_t Deduplicate(bool prefetch = false);

  /// Sort-based dedup variant with the same stable first-occurrence
  /// contract; the baseline BM_Deduplicate compares it against the radix
  /// path. Not used on the serving path.
  size_t DeduplicateSorted();

  /// Total number of cells; proxy for the relation's memory footprint used
  /// by the engine's resource accounting.
  size_t num_cells() const { return cells_.size(); }

  void Reserve(size_t rows) { cells_.reserve(rows * columns_.size()); }

 private:
  std::vector<VarId> columns_;
  std::vector<ValueId> cells_;
  size_t scalar_rows_ = 0;  // Row count for zero-arity relations.
};

/// Hash/equality over rows of a fixed-arity flattened buffer; shared by
/// deduplication and the hash-join build side.
size_t HashRow(std::span<const ValueId> row);

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_RELATION_H_
