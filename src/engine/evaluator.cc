#include "engine/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/metrics.h"
#include "common/trace.h"
#include "engine/operators.h"

namespace rdfopt {

namespace {
/// Registry epilogue of one Evaluate* call: the counter deltas it produced
/// plus its latency observation. `before` is the caller-supplied struct's
/// state at entry (callers may pass an accumulating EvalMetrics).
void RecordEngineMetrics(const EvalMetrics& after, const EvalMetrics& before) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static MetricCounter* evaluations =
      registry.GetCounter("engine.evaluations");
  static MetricCounter* rows_scanned =
      registry.GetCounter("engine.rows_scanned");
  static MetricCounter* join_input_rows =
      registry.GetCounter("engine.join_input_rows");
  static MetricCounter* union_terms =
      registry.GetCounter("engine.union_terms");
  static MetricCounter* rows_materialized =
      registry.GetCounter("engine.rows_materialized");
  static MetricCounter* duplicates_removed =
      registry.GetCounter("engine.duplicates_removed");
  static MetricHistogram* evaluate_ms =
      registry.GetHistogram("engine.evaluate_ms");
  evaluations->Increment();
  rows_scanned->Add(after.rows_scanned - before.rows_scanned);
  join_input_rows->Add(after.join_input_rows - before.join_input_rows);
  union_terms->Add(after.union_terms - before.union_terms);
  rows_materialized->Add(after.rows_materialized - before.rows_materialized);
  duplicates_removed->Add(after.duplicates_removed -
                          before.duplicates_removed);
  evaluate_ms->Observe(after.elapsed_ms - before.elapsed_ms);
}
}  // namespace

Status Evaluator::CheckTimeout(const Exec& exec) const {
  if (exec.timer.ElapsedSeconds() > profile_->timeout_seconds) {
    return Status::Timeout("query exceeded the " +
                           std::to_string(profile_->timeout_seconds) +
                           "s timeout on " + profile_->name);
  }
  return Status::OK();
}

void Evaluator::SpinFor(double micros) {
  if (micros <= 0.0) return;
  Stopwatch sw;
  while (sw.ElapsedMicros() < static_cast<int64_t>(micros)) {
    // Busy wait: emulated fixed plan overhead must consume real time.
  }
}

Status Evaluator::ChargeMaterialization(const Relation& rel,
                                        Exec* exec) const {
  exec->metrics->rows_materialized += rel.num_rows();
  exec->materialized_cells += rel.num_cells();
  if (exec->materialized_cells > profile_->max_materialized_cells) {
    return Status::ResourceExhausted(
        "materialized intermediates exceed the memory budget of " +
        std::to_string(profile_->max_materialized_cells) + " cells on " +
        profile_->name);
  }
  // Physical emulation of engines that spool intermediates (see
  // EngineProfile::materialization_us_per_row).
  SpinFor(profile_->materialization_us_per_row *
          static_cast<double>(rel.num_rows()));
  return Status::OK();
}

std::vector<size_t> Evaluator::JoinOrder(const ConjunctiveQuery& cq) const {
  const size_t n = cq.atoms.size();
  std::vector<size_t> sizes(n);
  for (size_t i = 0; i < n; ++i) {
    sizes[i] = ScanAtomInputSize(*store_, cq.atoms[i]);
  }
  std::vector<bool> used(n, false);
  std::vector<size_t> order;
  order.reserve(n);
  while (order.size() < n) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (size_t j : order) {
        connected |= cq.atoms[i].SharesVariableWith(cq.atoms[j]);
      }
      if (order.empty()) connected = true;
      // Prefer connected atoms; among equals, the smallest scan.
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           sizes[i] < sizes[static_cast<size_t>(best)])) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    used[static_cast<size_t>(best)] = true;
    order.push_back(static_cast<size_t>(best));
  }
  return order;
}

Result<Relation> Evaluator::RunCQ(const ConjunctiveQuery& cq,
                                  Exec* exec) const {
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));

  // All-constant atoms act as boolean filters.
  bool filtered_out = false;
  std::vector<const TriplePattern*> var_atoms;
  for (const TriplePattern& atom : cq.atoms) {
    if (!atom.s.is_var() && !atom.p.is_var() && !atom.o.is_var()) {
      if (store_->CountMatches(atom.s.value(), atom.p.value(),
                               atom.o.value()) == 0) {
        filtered_out = true;
      }
    } else {
      var_atoms.push_back(&atom);
    }
  }

  ConjunctiveQuery body;
  body.atoms.reserve(var_atoms.size());
  for (const TriplePattern* a : var_atoms) body.atoms.push_back(*a);

  if (filtered_out || body.atoms.empty()) {
    // Either a failed filter, or a fully-constant CQ: when all filters pass
    // and there is no variable atom, the result is one empty (true) row.
    Relation out{body.atoms.empty() && !filtered_out
                     ? std::vector<VarId>{}
                     : body.AllVariables()};
    if (!filtered_out && body.atoms.empty()) out.AppendEmptyRow();
    return out;
  }

  std::vector<size_t> order = JoinOrder(body);
  Relation acc{std::vector<VarId>{}};
  bool first = true;
  for (size_t idx : order) {
    RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
    const TriplePattern& atom = body.atoms[idx];
    if (first) {
      TraceSpan span("op.scan");
      size_t scan_size = ScanAtomInputSize(*store_, atom);
      exec->metrics->rows_scanned += scan_size;
      SpinFor(profile_->tuple_us_per_row * static_cast<double>(scan_size));
      acc = ScanAtom(*store_, atom);
      first = false;
      span.Attr("rows_scanned", scan_size);
      span.Attr("output_rows", acc.num_rows());
    } else {
      // Join strategy: index nested loop when the accumulated side is much
      // smaller than the atom's scan and binds at least one of its
      // variables; hash join over a full index scan otherwise.
      size_t scan_size = ScanAtomInputSize(*store_, atom);
      bool binds_position =
          (atom.s.is_var() && acc.ColumnIndex(atom.s.var()) >= 0) ||
          (atom.p.is_var() && acc.ColumnIndex(atom.p.var()) >= 0) ||
          (atom.o.is_var() && acc.ColumnIndex(atom.o.var()) >= 0);
      if (binds_position && acc.num_rows() * 8 < scan_size) {
        TraceSpan span("op.index_join");
        size_t probed = 0;
        size_t driving = acc.num_rows();
        acc = IndexJoinAtom(*store_, acc, atom, &probed);
        exec->metrics->join_input_rows += driving + probed;
        SpinFor(profile_->tuple_us_per_row *
                static_cast<double>(driving + probed));
        span.Attr("join_input_rows", driving + probed);
        span.Attr("output_rows", acc.num_rows());
      } else {
        TraceSpan span("op.hash_join");
        exec->metrics->rows_scanned += scan_size;
        Relation scanned = ScanAtom(*store_, atom);
        exec->metrics->join_input_rows += acc.num_rows() + scanned.num_rows();
        SpinFor(profile_->tuple_us_per_row *
                static_cast<double>(acc.num_rows() + scanned.num_rows()));
        size_t inputs = acc.num_rows() + scanned.num_rows();
        acc = HashJoin(acc, scanned);
        span.Attr("rows_scanned", scan_size);
        span.Attr("join_input_rows", inputs);
        span.Attr("output_rows", acc.num_rows());
      }
    }
    if (acc.num_rows() == 0) break;
  }
  if (acc.num_rows() == 0) {
    // Normalize: an empty result still exposes every variable as a column so
    // downstream projection finds its sources.
    return Relation{body.AllVariables()};
  }
  return acc;
}

Result<Relation> Evaluator::RunUCQ(const UnionQuery& ucq, Exec* exec) const {
  // Per-component UCQ span: its counter attributes are the deltas this
  // component contributed, so per-span accounting rolls up exactly into the
  // lump-sum EvalMetrics the caller receives.
  TraceSpan span("engine.ucq");
  EvalMetrics before;
  if (span.active()) before = *exec->metrics;

  if (ucq.disjuncts.size() > profile_->max_union_terms) {
    return Status::QueryTooComplex(
        "UCQ has " + std::to_string(ucq.disjuncts.size()) +
        " union terms, over the per-query plan limit of " +
        std::to_string(profile_->max_union_terms) + " on " + profile_->name);
  }
  exec->metrics->union_terms += ucq.disjuncts.size();
  // Per-union-term plan setup overhead (profile emulation), charged upfront.
  SpinFor(profile_->union_term_overhead_us *
          static_cast<double>(ucq.disjuncts.size()));

  Relation acc{std::vector<VarId>(ucq.head)};
  for (const ConjunctiveQuery& disjunct : ucq.disjuncts) {
    RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
    RDFOPT_ASSIGN_OR_RETURN(Relation rel, RunCQ(disjunct, exec));
    // Per-tuple executor overhead for rows appended to the union.
    SpinFor(profile_->tuple_us_per_row *
            static_cast<double>(rel.num_rows()));
    UnionInto(&acc, rel, disjunct.head_bindings);
  }
  exec->metrics->duplicates_removed += acc.Deduplicate();
  if (span.active()) {
    const EvalMetrics& m = *exec->metrics;
    span.Attr("union_terms", ucq.disjuncts.size());
    span.Attr("rows_scanned", m.rows_scanned - before.rows_scanned);
    span.Attr("join_input_rows",
              m.join_input_rows - before.join_input_rows);
    span.Attr("duplicates_removed",
              m.duplicates_removed - before.duplicates_removed);
    span.Attr("output_rows", acc.num_rows());
  }
  return acc;
}

Result<Relation> Evaluator::EvaluateCQ(const ConjunctiveQuery& cq,
                                       EvalMetrics* metrics) const {
  EvalMetrics scratch;
  Exec exec;
  exec.metrics = metrics != nullptr ? metrics : &scratch;
  const EvalMetrics before = *exec.metrics;
  RDFOPT_ASSIGN_OR_RETURN(Relation full, RunCQ(cq, &exec));
  Relation out = ProjectWithBindings(full, cq.head, cq.head_bindings);
  exec.metrics->duplicates_removed += out.Deduplicate();
  exec.metrics->elapsed_ms += exec.timer.ElapsedMillis();
  RecordEngineMetrics(*exec.metrics, before);
  return out;
}

Result<Relation> Evaluator::EvaluateUCQ(const UnionQuery& ucq,
                                        EvalMetrics* metrics) const {
  EvalMetrics scratch;
  Exec exec;
  exec.metrics = metrics != nullptr ? metrics : &scratch;
  const EvalMetrics before = *exec.metrics;
  RDFOPT_ASSIGN_OR_RETURN(Relation out, RunUCQ(ucq, &exec));
  exec.metrics->elapsed_ms += exec.timer.ElapsedMillis();
  RecordEngineMetrics(*exec.metrics, before);
  return out;
}

Result<Relation> Evaluator::EvaluateJUCQ(const JoinOfUnions& jucq,
                                         EvalMetrics* metrics) const {
  EvalMetrics scratch;
  Exec exec;
  exec.metrics = metrics != nullptr ? metrics : &scratch;
  const EvalMetrics before = *exec.metrics;
  TraceSpan span("engine.jucq");
  span.Attr("components", jucq.components.size());

  std::vector<Relation> components;
  components.reserve(jucq.components.size());
  for (const UnionQuery& ucq : jucq.components) {
    RDFOPT_ASSIGN_OR_RETURN(Relation rel, RunUCQ(ucq, &exec));
    components.push_back(std::move(rel));
  }

  // The largest component result is pipelined; all others are materialized
  // (paper §4.1(v)).
  if (components.size() > 1) {
    size_t largest = 0;
    for (size_t i = 1; i < components.size(); ++i) {
      if (components[i].num_rows() > components[largest].num_rows()) {
        largest = i;
      }
    }
    for (size_t i = 0; i < components.size(); ++i) {
      if (i == largest) continue;
      TraceSpan mat_span("engine.materialize");
      mat_span.Attr("rows_materialized", components[i].num_rows());
      RDFOPT_RETURN_NOT_OK(ChargeMaterialization(components[i], &exec));
    }
  }

  // Greedy join order over components: smallest first, then smallest
  // sharing a column with the accumulated result.
  std::vector<bool> used(components.size(), false);
  auto pick = [&](const Relation* acc) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < components.size(); ++i) {
      if (used[i]) continue;
      bool connected = acc == nullptr;
      if (acc != nullptr) {
        for (VarId v : components[i].columns()) {
          connected |= acc->ColumnIndex(v) >= 0;
        }
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           components[i].num_rows() <
               components[static_cast<size_t>(best)].num_rows())) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    return static_cast<size_t>(best);
  };

  size_t first = pick(nullptr);
  used[first] = true;
  Relation acc = std::move(components[first]);
  for (size_t step = 1; step < components.size(); ++step) {
    RDFOPT_RETURN_NOT_OK(CheckTimeout(exec));
    TraceSpan join_span("engine.join");
    size_t next = pick(&acc);
    used[next] = true;
    size_t inputs = acc.num_rows() + components[next].num_rows();
    exec.metrics->join_input_rows += inputs;
    SpinFor(profile_->tuple_us_per_row * static_cast<double>(inputs));
    acc = HashJoin(acc, components[next]);
    join_span.Attr("join_input_rows", inputs);
    join_span.Attr("output_rows", acc.num_rows());
  }

  Relation out = ProjectWithBindings(acc, jucq.head, {});
  exec.metrics->duplicates_removed += out.Deduplicate();
  exec.metrics->elapsed_ms += exec.timer.ElapsedMillis();
  if (span.active()) {
    const EvalMetrics& m = *exec.metrics;
    span.Attr("union_terms", m.union_terms - before.union_terms);
    span.Attr("rows_materialized",
              m.rows_materialized - before.rows_materialized);
    span.Attr("duplicates_removed",
              m.duplicates_removed - before.duplicates_removed);
    span.Attr("output_rows", out.num_rows());
  }
  RecordEngineMetrics(*exec.metrics, before);
  return out;
}

double Evaluator::ExplainCost(const JoinOfUnions& jucq,
                              const CardinalityEstimator& estimator) const {
  const CostConstants& k = profile_->cost;
  double total = k.c_db;
  std::vector<std::pair<double, std::vector<VarId>>> component_sizes;

  for (const UnionQuery& ucq : jucq.components) {
    if (ucq.disjuncts.size() > profile_->max_union_terms) {
      return std::numeric_limits<double>::infinity();
    }
    double ucq_cost = k.c_union_term * static_cast<double>(ucq.size());
    for (const ConjunctiveQuery& cq : ucq.disjuncts) {
      // Walk the greedy join plan, costing every step from estimated
      // intermediate cardinalities (this is what distinguishes the engine's
      // model from the paper's input-linear §4.1 formulas).
      std::vector<size_t> order = JoinOrder(cq);
      double inter = 0.0;
      ConjunctiveQuery prefix;
      for (size_t step = 0; step < order.size(); ++step) {
        const TriplePattern& atom = cq.atoms[order[step]];
        double scanned = estimator.EstimateAtom(atom);
        prefix.atoms.push_back(atom);
        if (step == 0) {
          ucq_cost += k.c_t * scanned;
          inter = scanned;
          continue;
        }
        double out = estimator.EstimateCQ(prefix);
        // The planner picks the cheaper of a hash join over a full scan and
        // an index nested-loop probe driven by the intermediate.
        double hash_cost = k.c_t * scanned + k.c_j * (inter + scanned);
        double inl_cost = (k.c_t + k.c_j) * inter + k.c_j * out;
        ucq_cost += std::min(hash_cost, inl_cost);
        inter = out;
      }
    }
    double rows = estimator.EstimateUCQ(ucq);
    ucq_cost += k.c_l * rows;  // Dedup of the component result.
    total += ucq_cost;
    component_sizes.emplace_back(
        rows, std::vector<VarId>(ucq.head.begin(), ucq.head.end()));
  }

  if (component_sizes.size() > 1) {
    // Materialize all but the largest; join linearly in the inputs.
    size_t largest = 0;
    double join_inputs = 0.0;
    for (size_t i = 0; i < component_sizes.size(); ++i) {
      join_inputs += component_sizes[i].first;
      if (component_sizes[i].first > component_sizes[largest].first) {
        largest = i;
      }
    }
    for (size_t i = 0; i < component_sizes.size(); ++i) {
      if (i != largest) total += k.c_m * component_sizes[i].first;
    }
    total += k.c_j * join_inputs;
  }
  total += k.c_l * estimator.EstimateJoin(component_sizes);
  return total;
}

}  // namespace rdfopt
