#include "engine/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "cost/feedback.h"
#include "engine/operators.h"

namespace rdfopt {

namespace {
/// Registry epilogue of one Evaluate* call: the counter deltas it produced
/// plus its latency observation. `before` is the caller-supplied struct's
/// state at entry (callers may pass an accumulating EvalMetrics).
void RecordEngineMetrics(const EvalMetrics& after, const EvalMetrics& before) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static MetricCounter* evaluations =
      registry.GetCounter("engine.evaluations");
  static MetricCounter* rows_scanned =
      registry.GetCounter("engine.rows_scanned");
  static MetricCounter* join_input_rows =
      registry.GetCounter("engine.join_input_rows");
  static MetricCounter* hash_probes =
      registry.GetCounter("engine.hash_probes");
  static MetricCounter* union_terms =
      registry.GetCounter("engine.union_terms");
  static MetricCounter* rows_materialized =
      registry.GetCounter("engine.rows_materialized");
  static MetricCounter* bytes_materialized =
      registry.GetCounter("engine.bytes_materialized");
  static MetricCounter* duplicates_removed =
      registry.GetCounter("engine.duplicates_removed");
  static MetricCounter* range_rows_scanned =
      registry.GetCounter("engine.range_rows_scanned");
  static MetricCounter* union_terms_collapsed =
      registry.GetCounter("engine.union_terms_collapsed");
  static MetricHistogram* evaluate_ms =
      registry.GetHistogram("engine.evaluate_ms");
  // The windowed twin of engine.evaluate_ms: p99 over the last minute, the
  // alerting-grade signal exported via `!prom` (see DESIGN.md §8).
  static MetricWindowedHistogram* evaluate_ms_window =
      registry.GetWindowedHistogram("engine.evaluate_ms");
  evaluations->Increment();
  rows_scanned->Add(after.rows_scanned - before.rows_scanned);
  join_input_rows->Add(after.join_input_rows - before.join_input_rows);
  hash_probes->Add(after.hash_probes - before.hash_probes);
  union_terms->Add(after.union_terms - before.union_terms);
  rows_materialized->Add(after.rows_materialized - before.rows_materialized);
  bytes_materialized->Add(after.bytes_materialized -
                          before.bytes_materialized);
  duplicates_removed->Add(after.duplicates_removed -
                          before.duplicates_removed);
  range_rows_scanned->Add(after.range_rows_scanned -
                          before.range_rows_scanned);
  union_terms_collapsed->Add(after.union_terms_collapsed -
                             before.union_terms_collapsed);
  evaluate_ms->Observe(after.elapsed_ms - before.elapsed_ms);
  evaluate_ms_window->Observe(after.elapsed_ms - before.elapsed_ms);
}

bool IsConstantAtom(const TriplePattern& atom) {
  return !atom.s.is_var() && !atom.p.is_var() && !atom.o.is_var();
}

/// A zero-arity relation with a single (true) row.
Relation TrueRow() {
  Relation rel{std::vector<VarId>{}};
  rel.AppendEmptyRow();
  return rel;
}

void NoteResult(PlanNode* node, const Relation& rel) {
  node->actual_rows = rel.num_rows();
  node->executed = true;
}

// Always-on per-operator accounting (ISSUE 6): every executed plan carries
// per-node wall time and resource counters, not just EXPLAIN ANALYZE runs.
// RDFOPT_DISABLE_NODE_TELEMETRY compiles the whole substrate out — the
// baseline build of the overhead benchmark (BENCH_observability.json), never
// the shipping configuration. Safe under the parallel executor: each plan
// node is executed by exactly one task (the same invariant NoteResult's
// actual_rows writes rely on).
#ifndef RDFOPT_DISABLE_NODE_TELEMETRY
inline constexpr bool kNodeTelemetry = true;

/// Scope timer writing the node's subtree wall time on destruction.
class NodeTimer {
 public:
  explicit NodeTimer(PlanNode* node) : node_(node) {}
  ~NodeTimer() { node_->actual_ms = timer_.ElapsedMillis(); }

 private:
  PlanNode* node_;
  Stopwatch timer_;
};
#else
inline constexpr bool kNodeTelemetry = false;

class NodeTimer {
 public:
  explicit NodeTimer(PlanNode*) {}
};
#endif
}  // namespace

Status Evaluator::CheckTimeout(const Exec& exec) const {
  // One shared deadline and one cancellation flag per query: every worker
  // task polls both here, so a timeout or a failure anywhere drains the
  // whole query promptly (first-error-wins; kCancelled never outranks the
  // root cause, see WorkerPool::ParallelFor).
  if (exec.shared->cancelled.load(std::memory_order_acquire)) {
    return Status::Cancelled("evaluation abandoned after a concurrent "
                             "failure on " + profile_->name);
  }
  if (exec.shared->timer.ElapsedSeconds() > profile_->timeout_seconds) {
    return Status::Timeout("query exceeded the " +
                           std::to_string(profile_->timeout_seconds) +
                           "s timeout on " + profile_->name);
  }
  return Status::OK();
}

WorkerPool* Evaluator::pool() const {
  const size_t threads = profile_->worker_threads;
  if (threads <= 1) return nullptr;
  // The coordinator itself executes tasks (help-first scheduling), so a
  // total parallelism of N needs N-1 pool workers.
  if (pool_ == nullptr || pool_->num_threads() != threads - 1) {
    pool_ = std::make_shared<WorkerPool>(threads - 1);
  }
  return pool_.get();
}

void Evaluator::SpinFor(double micros) {
  if (micros <= 0.0) return;
  Stopwatch sw;
  while (sw.ElapsedMicros() < static_cast<int64_t>(micros)) {
    // Busy wait: emulated fixed plan overhead must consume real time.
  }
}

void Evaluator::WaitFor(double micros) {
  if (micros <= 0.0) return;
  // The OS overshoots sub-millisecond sleeps by ~100-150us; sleep to within
  // the slack, then spin the precise remainder.
  constexpr double kSlackUs = 400.0;
  Stopwatch sw;
  for (;;) {
    double remaining = micros - static_cast<double>(sw.ElapsedMicros());
    if (remaining <= kSlackUs) break;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(remaining - kSlackUs)));
  }
  while (sw.ElapsedMicros() < static_cast<int64_t>(micros)) {
  }
}

void Evaluator::ChargeEmulated(Exec* exec, double micros) {
  if (exec->debt != nullptr) {
    *exec->debt += micros;
  } else {
    SpinFor(micros);
  }
}

Status Evaluator::ChargeMaterialization(const Relation& rel,
                                        Exec* exec) const {
  exec->metrics->rows_materialized += rel.num_rows();
  // The memory budget is one atomic cell counter shared by all workers of
  // the query, so concurrent materializations are charged exactly once each.
  const size_t charged =
      exec->shared->materialized_cells.fetch_add(
          rel.num_cells(), std::memory_order_relaxed) +
      rel.num_cells();
  if (charged > profile_->max_materialized_cells) {
    return Status::ResourceExhausted(
        "materialized intermediates exceed the memory budget of " +
        std::to_string(profile_->max_materialized_cells) + " cells on " +
        profile_->name);
  }
  // Physical emulation of engines that spool intermediates (see
  // EngineProfile::materialization_us_per_row).
  ChargeEmulated(exec, profile_->materialization_us_per_row *
                           static_cast<double>(rel.num_rows()));
  return Status::OK();
}

Result<RelHandle> Evaluator::ExecAtomScan(PlanNode* node, Exec* exec) const {
  const TriplePattern& atom = node->atom;
  if (IsConstantAtom(atom)) {
    // Boolean existence guard: a point lookup, free of charge (neither
    // metrics nor emulated per-tuple work — the engine folds constant
    // filters into plan constants).
    Relation out{std::vector<VarId>{}};
    if (store_->CountMatches(atom.s.value(), atom.p.value(),
                             atom.o.value()) > 0) {
      out.AppendEmptyRow();
    }
    NoteResult(node, out);
    return RelHandle(std::move(out));
  }
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  TraceSpan span("op.scan");
  span.Attr("node", node->id);
  size_t scan_size = ScanAtomInputSize(*store_, atom);
  exec->metrics->rows_scanned += scan_size;
  if constexpr (kNodeTelemetry) node->rows_scanned = scan_size;
  // The pipelined driving scan pays per-tuple executor overhead by itself;
  // a scan feeding a hash join is charged at the join.
  if (node->driving_scan) {
    ChargeEmulated(exec, profile_->tuple_us_per_row *
                             static_cast<double>(scan_size));
  }
  Relation out = ScanAtom(*store_, atom);
  span.Attr("rows_scanned", scan_size);
  span.Attr("output_rows", out.num_rows());
  NoteResult(node, out);
  return RelHandle(std::move(out));
}

Result<RelHandle> Evaluator::ExecScanRange(PlanNode* node, Exec* exec) const {
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  TraceSpan span("op.scan_range");
  span.Attr("node", node->id);
  const size_t scan_size = ScanRangeInputSize(
      *store_, node->range_class_space, node->range_lo, node->range_hi);
  exec->metrics->rows_scanned += scan_size;
  exec->metrics->range_rows_scanned += scan_size;
  if constexpr (kNodeTelemetry) node->rows_scanned = scan_size;
  // Like any driving scan: per-tuple executor overhead paid here, charged
  // once for the whole interval — this, not fewer rows, is the collapse win.
  if (node->driving_scan) {
    ChargeEmulated(exec, profile_->tuple_us_per_row *
                             static_cast<double>(scan_size));
  }
  Relation out = ScanRange(*store_, node->atom, node->range_class_space,
                           node->range_lo, node->range_hi);
  span.Attr("rows_scanned", scan_size);
  span.Attr("range_terms", node->range_terms);
  span.Attr("output_rows", out.num_rows());
  NoteResult(node, out);
  return RelHandle(std::move(out));
}

Result<RelHandle> Evaluator::ExecSharedRef(PlanNode* node, Exec* exec) const {
  const std::vector<Relation>* rels = exec->shared->shared_rels;
  if (rels == nullptr || node->shared_index < 0 ||
      static_cast<size_t>(node->shared_index) >= rels->size()) {
    return Status::Internal("SharedRef #" + std::to_string(node->shared_index) +
                            " has no materialized shared subplan");
  }
  // No charges, no counters: the shared subplan's work was accounted once,
  // when the coordinator executed it (EXPLAIN ANALYZE attribution contract).
  const Relation& rel = (*rels)[static_cast<size_t>(node->shared_index)];
  NoteResult(node, rel);
  return RelHandle(&rel);
}

Result<RelHandle> Evaluator::ExecIndexJoin(PlanNode* node, Exec* exec) const {
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  RDFOPT_ASSIGN_OR_RETURN(RelHandle left_handle,
                          ExecNode(node->children[0].get(), exec));
  const Relation& left = left_handle.get();
  if (left.num_rows() == 0) {
    // Short-circuit: an empty intermediate ends the chain; the atom is
    // never probed.
    Relation out{node->out_columns};
    NoteResult(node, out);
    return RelHandle(std::move(out));
  }
  TraceSpan span("op.index_join");
  span.Attr("node", node->id);
  size_t probed = 0;
  size_t driving = left.num_rows();
  Relation out = IndexJoinAtom(*store_, left, node->atom, &probed);
  exec->metrics->join_input_rows += driving + probed;
  exec->metrics->hash_probes += driving;
  if constexpr (kNodeTelemetry) {
    node->rows_scanned = probed;   // Index rows read by the probes.
    node->hash_probes = driving;   // One probe lookup per driving row.
  }
  ChargeEmulated(exec, profile_->tuple_us_per_row *
                           static_cast<double>(driving + probed));
  span.Attr("join_input_rows", driving + probed);
  span.Attr("output_rows", out.num_rows());
  NoteResult(node, out);
  return RelHandle(std::move(out));
}

Result<RelHandle> Evaluator::ExecHashJoin(PlanNode* node, Exec* exec) const {
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  std::optional<RelHandle> left;
  std::optional<RelHandle> right;
  if (node->component_join && exec->shared->pool != nullptr) {
    // Component UCQs are independent subqueries: evaluate both sides of the
    // engine.join concurrently (the caller runs the left subtree itself).
    RDFOPT_RETURN_NOT_OK(
        ExecComponentChildrenParallel(node, exec, &left, &right));
  } else {
    RDFOPT_ASSIGN_OR_RETURN(RelHandle l, ExecNode(node->children[0].get(),
                                                  exec));
    left.emplace(std::move(l));
    if (!node->component_join) {
      if (left->get().num_rows() == 0) {
        // Short-circuit within a disjunct: skip the right subtree entirely
        // (its nodes keep executed == false).
        Relation out{node->out_columns};
        NoteResult(node, out);
        return RelHandle(std::move(out));
      }
      if (left->get().columns().empty()) {
        // Passed boolean guard: forward the right side unchanged, free of
        // charge — the guard never materializes as a join at runtime.
        RDFOPT_ASSIGN_OR_RETURN(RelHandle out,
                                ExecNode(node->children[1].get(), exec));
        NoteResult(node, out.get());
        return out;
      }
    }
    RDFOPT_ASSIGN_OR_RETURN(RelHandle r, ExecNode(node->children[1].get(),
                                                  exec));
    right.emplace(std::move(r));
  }
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  // Component joins are engine.join steps of the JUCQ combination; joins
  // within a disjunct are op.hash_join.
  TraceSpan span(node->component_join ? "engine.join" : "op.hash_join");
  span.Attr("node", node->id);
  const Relation& lrel = left->get();
  const Relation& rrel = right->get();
  size_t inputs = lrel.num_rows() + rrel.num_rows();
  // The build side is the smaller input, so the probe side is the larger.
  size_t probes = std::max(lrel.num_rows(), rrel.num_rows());
  exec->metrics->join_input_rows += inputs;
  exec->metrics->hash_probes += probes;
  if constexpr (kNodeTelemetry) {
    node->rows_scanned = inputs;
    node->hash_probes = probes;
  }
  ChargeEmulated(exec, profile_->tuple_us_per_row * static_cast<double>(inputs));
  Relation out = HashJoin(lrel, rrel, profile_->prefetch_probes);
  span.Attr("join_input_rows", inputs);
  span.Attr("output_rows", out.num_rows());
  NoteResult(node, out);
  return RelHandle(std::move(out));
}

Status Evaluator::ExecComponentChildrenParallel(
    PlanNode* node, Exec* exec, std::optional<RelHandle>* left,
    std::optional<RelHandle>* right) const {
  TraceSession* parent_session = TraceSession::Current();
  struct TaskOut {
    EvalMetrics metrics;
    std::optional<TraceSession> trace;
    double trace_base_ms = 0.0;
    std::optional<RelHandle> rel;
  };
  std::vector<TaskOut> outs(2);
  auto run_child = [&](size_t i) -> Status {
    TaskOut& out = outs[i];
    Exec local;
    local.shared = exec->shared;
    local.metrics = &out.metrics;
    // Both component subtrees run as worker tasks, so their emulated engine
    // work becomes overlappable debt (paid once at task end — a component
    // is one "connection's" worth of latency).
    double debt = 0.0;
    local.debt = &debt;
    std::optional<ScopedTraceSession> scoped;
    if (parent_session != nullptr) {
      out.trace_base_ms = parent_session->ElapsedMillis();
      out.trace.emplace();
      scoped.emplace(&*out.trace);
    }
    Result<RelHandle> r = ExecNode(node->children[i].get(), &local);
    WaitFor(debt);
    if (!r.ok()) {
      if (r.status().code() != StatusCode::kCancelled) {
        exec->shared->cancelled.store(true, std::memory_order_release);
      }
      return r.status();
    }
    out.rel.emplace(r.TakeValue());
    return Status::OK();
  };
  Status st = exec->shared->pool->ParallelFor(2, run_child);
  // Deterministic merge: left subtree's spans and counters first, exactly
  // the order the sequential executor records them in.
  for (TaskOut& out : outs) {
    if (parent_session != nullptr && out.trace.has_value()) {
      parent_session->AdoptChildSpans(*out.trace, out.trace_base_ms);
    }
    exec->metrics->Accumulate(out.metrics);
  }
  RDFOPT_RETURN_NOT_OK(st);
  *left = std::move(outs[0].rel);
  *right = std::move(outs[1].rel);
  return Status::OK();
}

Result<RelHandle> Evaluator::ExecUnionAll(PlanNode* node, Exec* exec) const {
  if (node->over_limit) {
    return Status::QueryTooComplex(
        UnionLimitMessage(node->union_terms, *profile_));
  }
  exec->metrics->union_terms += node->union_terms;
  if (node->pre_collapse_terms > node->union_terms) {
    exec->metrics->union_terms_collapsed +=
        node->pre_collapse_terms - node->union_terms;
  }

  if (exec->shared->pool != nullptr && node->parallel_safe &&
      node->children.size() > 1) {
    return ExecUnionAllParallel(node, exec);
  }

  Relation acc{std::vector<VarId>(node->head)};
  for (size_t i = 0; i < node->children.size(); ++i) {
    RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
    // Per-union-term plan setup overhead (profile emulation). Charged
    // exactly once per term on whichever thread executes it, so the total
    // charged work — and the cost model's per-term c_union_term estimate —
    // is independent of worker_threads; only wall-clock shrinks.
    ChargeEmulated(exec, profile_->union_term_overhead_us);
    RDFOPT_ASSIGN_OR_RETURN(RelHandle rel, ExecNode(node->children[i].get(),
                                                    exec));
    // Per-tuple executor overhead for rows appended to the union.
    ChargeEmulated(exec, profile_->tuple_us_per_row *
                             static_cast<double>(rel.get().num_rows()));
    ProjectInto(&acc, rel.get(), node->disjuncts[i].head_bindings);
  }
  NoteResult(node, acc);
  return RelHandle(std::move(acc));
}

Result<RelHandle> Evaluator::ExecUnionAllParallel(PlanNode* node,
                                                  Exec* exec) const {
  const size_t n = node->children.size();
  const size_t morsel = std::max<size_t>(1, node->morsel_size);
  const size_t num_tasks = (n + morsel - 1) / morsel;
  TraceSession* parent_session = TraceSession::Current();

  struct TaskOut {
    std::optional<Relation> acc;  ///< This morsel's union accumulator.
    EvalMetrics metrics;
    std::optional<TraceSession> trace;
    double trace_base_ms = 0.0;
  };
  std::vector<TaskOut> outs(num_tasks);

  auto run_morsel = [&](size_t m) -> Status {
    TaskOut& out = outs[m];
    Exec local;
    local.shared = exec->shared;
    local.metrics = &out.metrics;
    std::optional<ScopedTraceSession> scoped;
    if (parent_session != nullptr) {
      // Worker spans land in a scratch buffer stamped against the parent
      // timeline; the coordinator adopts them in morsel order below.
      out.trace_base_ms = parent_session->ElapsedMillis();
      out.trace.emplace();
      scoped.emplace(&*out.trace);
    }
    // Emulated engine work of this morsel accumulates as debt and is paid
    // in batched timed waits: concurrent morsels overlap their waits the
    // way parallel engine connections overlap their latencies, so the query
    // speeds up even when workers outnumber cores. The per-term amounts
    // charged are exactly the sequential loop's.
    double debt = 0.0;
    local.debt = &debt;
    constexpr double kFlushDebtUs = 4000.0;
    Status st = [&]() -> Status {
      Relation acc{std::vector<VarId>(node->head)};
      const size_t begin = m * morsel;
      const size_t end = std::min(n, begin + morsel);
      for (size_t i = begin; i < end; ++i) {
        RDFOPT_RETURN_NOT_OK(CheckTimeout(local));
        ChargeEmulated(&local, profile_->union_term_overhead_us);
        RDFOPT_ASSIGN_OR_RETURN(RelHandle rel,
                                ExecNode(node->children[i].get(), &local));
        ChargeEmulated(&local, profile_->tuple_us_per_row *
                                   static_cast<double>(rel.get().num_rows()));
        ProjectInto(&acc, rel.get(), node->disjuncts[i].head_bindings);
        if (debt >= kFlushDebtUs) {
          WaitFor(debt);
          debt = 0.0;
        }
      }
      out.acc.emplace(std::move(acc));
      return Status::OK();
    }();
    WaitFor(debt);
    if (!st.ok() && st.code() != StatusCode::kCancelled) {
      // First-error-wins across every concurrent batch of this query.
      exec->shared->cancelled.store(true, std::memory_order_release);
    }
    return st;
  };
  Status st = exec->shared->pool->ParallelFor(num_tasks, run_morsel);

  // The merge is sequential and in morsel index order: rows, metrics and
  // trace spans come out exactly as the worker_threads=1 loop produces them
  // (trace buffers are adopted even after a failure, so a partial trace
  // still shows what ran).
  for (TaskOut& out : outs) {
    if (parent_session != nullptr && out.trace.has_value()) {
      parent_session->AdoptChildSpans(*out.trace, out.trace_base_ms);
    }
    exec->metrics->Accumulate(out.metrics);
  }
  RDFOPT_RETURN_NOT_OK(st);

  Relation acc{std::vector<VarId>(node->head)};
  size_t total_rows = 0;
  for (const TaskOut& out : outs) total_rows += out.acc->num_rows();
  acc.Reserve(total_rows);
  for (const TaskOut& out : outs) acc.Append(*out.acc);
  NoteResult(node, acc);
  return RelHandle(std::move(acc));
}

Result<RelHandle> Evaluator::ExecProject(PlanNode* node, Exec* exec) const {
  RelHandle in{TrueRow()};  // The atom-less (always true) conjunction.
  if (!node->children.empty()) {
    RDFOPT_ASSIGN_OR_RETURN(in, ExecNode(node->children[0].get(), exec));
  }
  Relation out = ProjectWithBindings(in.get(), node->head, node->bindings);
  NoteResult(node, out);
  return RelHandle(std::move(out));
}

Result<RelHandle> Evaluator::ExecViewScan(PlanNode* node, Exec* exec) const {
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  if (node->view_rows == nullptr) {
    return Status::Internal("ViewScan #" + std::to_string(node->id) +
                            " has no materialized rows pinned");
  }
  static MetricCounter* scans =
      MetricsRegistry::Global().GetCounter("views.scans");
  static MetricCounter* scan_rows =
      MetricsRegistry::Global().GetCounter("views.scan_rows");
  TraceSpan span("op.view_scan");
  span.Attr("node", node->id);
  const Relation& stored = *node->view_rows;
  // Re-label the stored columns with this plan's VarIds: the signature
  // guarantees arity and column order match, only the labels differ.
  Relation out{node->out_columns};
  if (stored.num_rows() > 0) {
    ValueId* cells = out.AppendUninitialized(stored.num_rows());
    if (cells != nullptr) {  // Null for zero-arity (rows are just counted).
      std::memcpy(cells, stored.cells_data(),
                  stored.num_cells() * sizeof(ValueId));
    }
  }
  // Reading the materialized result costs one pass over its rows, like any
  // other driving scan — the emulated engine still touches the data once.
  ChargeEmulated(exec, profile_->tuple_us_per_row *
                           static_cast<double>(out.num_rows()));
  scans->Increment();
  scan_rows->Add(out.num_rows());
  span.Attr("output_rows", out.num_rows());
  NoteResult(node, out);
  return RelHandle(std::move(out));
}

Result<RelHandle> Evaluator::ExecDedup(PlanNode* node, Exec* exec) const {
  // Component roots carry the per-component UCQ span: its counter
  // attributes are the deltas this component contributed, so per-span
  // accounting rolls up exactly into the lump-sum EvalMetrics the caller
  // receives. The span covers the whole component, error paths included.
  std::optional<TraceSpan> span;
  EvalMetrics before;
  if (node->component >= 0) {
    span.emplace("engine.ucq");
    span->Attr("node", node->id);
    if (span->active()) before = *exec->metrics;
  }
  RDFOPT_ASSIGN_OR_RETURN(RelHandle handle, ExecNode(node->children[0].get(),
                                                     exec));
  // Dedup mutates in place, so it needs ownership (its child is a union or
  // projection — always owned in practice; a borrowed input would copy).
  Relation out = std::move(handle).Take();
  // A substituted component's rows are this dedup's own harvested output,
  // distinct by construction; Deduplicate is stable, so skipping the re-hash
  // is bit-identical, not just set-equal.
  if (node->children[0]->kind != PlanNodeKind::kViewScan) {
    exec->metrics->duplicates_removed +=
        out.Deduplicate(profile_->prefetch_probes);
  }
  // Opportunistic view harvest (DESIGN.md §14): a component root whose
  // signature was stamped at plan time (no catalog hit then) offers its
  // freshly deduplicated result for admission. A substituted component
  // (kViewScan child) is already materialized — nothing to offer.
  if (views_ != nullptr && !node->view_signature.empty() &&
      node->children[0]->kind != PlanNodeKind::kViewScan) {
    views_->Offer(node->view_signature, out);
  }
  if (span.has_value() && span->active()) {
    const EvalMetrics& m = *exec->metrics;
    PlanNode* child = node->children[0].get();
    span->Attr("union_terms", child->kind == PlanNodeKind::kUnionAll ||
                                      child->kind == PlanNodeKind::kViewScan
                                  ? child->union_terms
                                  : size_t{0});
    span->Attr("rows_scanned", m.rows_scanned - before.rows_scanned);
    span->Attr("join_input_rows",
               m.join_input_rows - before.join_input_rows);
    span->Attr("duplicates_removed",
               m.duplicates_removed - before.duplicates_removed);
    span->Attr("output_rows", out.num_rows());
  }
  NoteResult(node, out);
  return RelHandle(std::move(out));
}

Result<RelHandle> Evaluator::ExecMaterialize(PlanNode* node,
                                             Exec* exec) const {
  RDFOPT_ASSIGN_OR_RETURN(RelHandle out, ExecNode(node->children[0].get(),
                                                  exec));
  TraceSpan span("engine.materialize");
  span.Attr("node", node->id);
  span.Attr("rows_materialized", out.get().num_rows());
  const size_t bytes = out.get().num_cells() * sizeof(ValueId);
  exec->metrics->bytes_materialized += bytes;
  if constexpr (kNodeTelemetry) node->bytes_materialized = bytes;
  RDFOPT_RETURN_NOT_OK(ChargeMaterialization(out.get(), exec));
  NoteResult(node, out.get());
  return out;
}

Result<RelHandle> Evaluator::ExecNode(PlanNode* node, Exec* exec) const {
  // Two steady_clock reads per node; the BENCH_observability.json sidecar
  // shows the cost against a RDFOPT_DISABLE_NODE_TELEMETRY build.
  NodeTimer timer(node);
  switch (node->kind) {
    case PlanNodeKind::kAtomScan:
      return ExecAtomScan(node, exec);
    case PlanNodeKind::kScanRange:
      return ExecScanRange(node, exec);
    case PlanNodeKind::kIndexJoinAtom:
      return ExecIndexJoin(node, exec);
    case PlanNodeKind::kHashJoin:
      return ExecHashJoin(node, exec);
    case PlanNodeKind::kUnionAll:
      return ExecUnionAll(node, exec);
    case PlanNodeKind::kProject:
      return ExecProject(node, exec);
    case PlanNodeKind::kDedup:
      return ExecDedup(node, exec);
    case PlanNodeKind::kMaterializeBarrier:
      return ExecMaterialize(node, exec);
    case PlanNodeKind::kSharedRef:
      return ExecSharedRef(node, exec);
    case PlanNodeKind::kViewScan:
      return ExecViewScan(node, exec);
  }
  return Status::Internal("unknown plan node kind");
}

Result<Relation> Evaluator::ExecutePlan(PhysicalPlan* plan,
                                        EvalMetrics* metrics) const {
  EvalMetrics scratch;
  Exec::Shared shared;
  shared.pool = pool();  // Null at worker_threads <= 1: purely sequential.
  Exec exec;
  exec.shared = &shared;
  exec.metrics = metrics != nullptr ? metrics : &scratch;
  const EvalMetrics before = *exec.metrics;
  plan->ResetActuals();

  std::optional<TraceSpan> span;
  if (plan->shape == PlanShape::kJucq) {
    span.emplace("engine.jucq");
    span->Attr("components", plan->num_components);
  }
  // An infeasible plan (union over the profile's limit) is rejected before
  // any execution, exactly as the engine would refuse the statement.
  RDFOPT_RETURN_NOT_OK(plan->feasibility);

  // Execute-once shared subplans run first, on the coordinator, so worker
  // tasks can borrow their results read-only. Their scan work, counters and
  // emulated charges are attributed here — exactly once, not per consuming
  // branch.
  std::vector<Relation> shared_rels;
  if (!plan->shared_subplans.empty()) {
    TraceSpan shared_span("engine.shared_subplans");
    shared_span.Attr("count", plan->shared_subplans.size());
    shared_rels.reserve(plan->shared_subplans.size());
    for (auto& subplan : plan->shared_subplans) {
      RDFOPT_ASSIGN_OR_RETURN(RelHandle h, ExecNode(subplan.get(), &exec));
      shared_rels.push_back(std::move(h).Take());
    }
    shared.shared_rels = &shared_rels;
  }

  RDFOPT_ASSIGN_OR_RETURN(RelHandle root_handle,
                          ExecNode(plan->root.get(), &exec));
  Relation out = std::move(root_handle).Take();
  exec.metrics->elapsed_ms += shared.timer.ElapsedMillis();
  if (span.has_value() && span->active()) {
    const EvalMetrics& m = *exec.metrics;
    span->Attr("union_terms", m.union_terms - before.union_terms);
    span->Attr("rows_materialized",
               m.rows_materialized - before.rows_materialized);
    span->Attr("duplicates_removed",
               m.duplicates_removed - before.duplicates_removed);
    span->Attr("output_rows", out.num_rows());
  }
  RecordEngineMetrics(*exec.metrics, before);
  // Close the estimate-feedback loop: the executed disjuncts' actuals are
  // now in the plan nodes; fold them into the store so the next planning of
  // the same fragments starts from observed cardinalities.
  if (feedback_ != nullptr) RecordPlanFeedback(*plan, feedback_);
  return out;
}

Result<Relation> Evaluator::EvaluateCQ(const ConjunctiveQuery& cq,
                                       EvalMetrics* metrics) const {
  PhysicalPlan plan = planner().PlanCQ(cq);
  return ExecutePlan(&plan, metrics);
}

Result<Relation> Evaluator::EvaluateUCQ(const UnionQuery& ucq,
                                        EvalMetrics* metrics) const {
  PhysicalPlan plan = planner().PlanUCQ(ucq);
  return ExecutePlan(&plan, metrics);
}

Result<Relation> Evaluator::EvaluateJUCQ(const JoinOfUnions& jucq,
                                         EvalMetrics* metrics) const {
  PhysicalPlan plan = planner().PlanJUCQ(jucq);
  return ExecutePlan(&plan, metrics);
}

double Evaluator::ExplainCost(const JoinOfUnions& jucq,
                              const CardinalityEstimator& estimator) const {
  PhysicalPlan plan = Planner(&estimator, profile_).PlanJUCQ(jucq);
  if (!plan.feasibility.ok()) {
    return std::numeric_limits<double>::infinity();
  }
  return plan.est_cost();
}

}  // namespace rdfopt
