#include "engine/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "engine/operators.h"

namespace rdfopt {

namespace {
/// Registry epilogue of one Evaluate* call: the counter deltas it produced
/// plus its latency observation. `before` is the caller-supplied struct's
/// state at entry (callers may pass an accumulating EvalMetrics).
void RecordEngineMetrics(const EvalMetrics& after, const EvalMetrics& before) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static MetricCounter* evaluations =
      registry.GetCounter("engine.evaluations");
  static MetricCounter* rows_scanned =
      registry.GetCounter("engine.rows_scanned");
  static MetricCounter* join_input_rows =
      registry.GetCounter("engine.join_input_rows");
  static MetricCounter* union_terms =
      registry.GetCounter("engine.union_terms");
  static MetricCounter* rows_materialized =
      registry.GetCounter("engine.rows_materialized");
  static MetricCounter* duplicates_removed =
      registry.GetCounter("engine.duplicates_removed");
  static MetricHistogram* evaluate_ms =
      registry.GetHistogram("engine.evaluate_ms");
  evaluations->Increment();
  rows_scanned->Add(after.rows_scanned - before.rows_scanned);
  join_input_rows->Add(after.join_input_rows - before.join_input_rows);
  union_terms->Add(after.union_terms - before.union_terms);
  rows_materialized->Add(after.rows_materialized - before.rows_materialized);
  duplicates_removed->Add(after.duplicates_removed -
                          before.duplicates_removed);
  evaluate_ms->Observe(after.elapsed_ms - before.elapsed_ms);
}

bool IsConstantAtom(const TriplePattern& atom) {
  return !atom.s.is_var() && !atom.p.is_var() && !atom.o.is_var();
}

/// A zero-arity relation with a single (true) row.
Relation TrueRow() {
  Relation rel{std::vector<VarId>{}};
  rel.AppendEmptyRow();
  return rel;
}

void NoteResult(PlanNode* node, const Relation& rel) {
  node->actual_rows = rel.num_rows();
  node->executed = true;
}
}  // namespace

Status Evaluator::CheckTimeout(const Exec& exec) const {
  if (exec.timer.ElapsedSeconds() > profile_->timeout_seconds) {
    return Status::Timeout("query exceeded the " +
                           std::to_string(profile_->timeout_seconds) +
                           "s timeout on " + profile_->name);
  }
  return Status::OK();
}

void Evaluator::SpinFor(double micros) {
  if (micros <= 0.0) return;
  Stopwatch sw;
  while (sw.ElapsedMicros() < static_cast<int64_t>(micros)) {
    // Busy wait: emulated fixed plan overhead must consume real time.
  }
}

Status Evaluator::ChargeMaterialization(const Relation& rel,
                                        Exec* exec) const {
  exec->metrics->rows_materialized += rel.num_rows();
  exec->materialized_cells += rel.num_cells();
  if (exec->materialized_cells > profile_->max_materialized_cells) {
    return Status::ResourceExhausted(
        "materialized intermediates exceed the memory budget of " +
        std::to_string(profile_->max_materialized_cells) + " cells on " +
        profile_->name);
  }
  // Physical emulation of engines that spool intermediates (see
  // EngineProfile::materialization_us_per_row).
  SpinFor(profile_->materialization_us_per_row *
          static_cast<double>(rel.num_rows()));
  return Status::OK();
}

Result<Relation> Evaluator::ExecAtomScan(PlanNode* node, Exec* exec) const {
  const TriplePattern& atom = node->atom;
  if (IsConstantAtom(atom)) {
    // Boolean existence guard: a point lookup, free of charge (neither
    // metrics nor emulated per-tuple work — the engine folds constant
    // filters into plan constants).
    Relation out{std::vector<VarId>{}};
    if (store_->CountMatches(atom.s.value(), atom.p.value(),
                             atom.o.value()) > 0) {
      out.AppendEmptyRow();
    }
    NoteResult(node, out);
    return out;
  }
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  TraceSpan span("op.scan");
  span.Attr("node", node->id);
  size_t scan_size = ScanAtomInputSize(*store_, atom);
  exec->metrics->rows_scanned += scan_size;
  // The pipelined driving scan pays per-tuple executor overhead by itself;
  // a scan feeding a hash join is charged at the join.
  if (node->driving_scan) {
    SpinFor(profile_->tuple_us_per_row * static_cast<double>(scan_size));
  }
  Relation out = ScanAtom(*store_, atom);
  span.Attr("rows_scanned", scan_size);
  span.Attr("output_rows", out.num_rows());
  NoteResult(node, out);
  return out;
}

Result<Relation> Evaluator::ExecIndexJoin(PlanNode* node, Exec* exec) const {
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  RDFOPT_ASSIGN_OR_RETURN(Relation left, ExecNode(node->children[0].get(),
                                                  exec));
  if (left.num_rows() == 0) {
    // Short-circuit: an empty intermediate ends the chain; the atom is
    // never probed.
    Relation out{node->out_columns};
    NoteResult(node, out);
    return out;
  }
  TraceSpan span("op.index_join");
  span.Attr("node", node->id);
  size_t probed = 0;
  size_t driving = left.num_rows();
  Relation out = IndexJoinAtom(*store_, left, node->atom, &probed);
  exec->metrics->join_input_rows += driving + probed;
  SpinFor(profile_->tuple_us_per_row * static_cast<double>(driving + probed));
  span.Attr("join_input_rows", driving + probed);
  span.Attr("output_rows", out.num_rows());
  NoteResult(node, out);
  return out;
}

Result<Relation> Evaluator::ExecHashJoin(PlanNode* node, Exec* exec) const {
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  RDFOPT_ASSIGN_OR_RETURN(Relation left, ExecNode(node->children[0].get(),
                                                  exec));
  if (!node->component_join) {
    if (left.num_rows() == 0) {
      // Short-circuit within a disjunct: skip the right subtree entirely
      // (its nodes keep executed == false).
      Relation out{node->out_columns};
      NoteResult(node, out);
      return out;
    }
    if (left.columns().empty()) {
      // Passed boolean guard: forward the right side unchanged, free of
      // charge — the guard never materializes as a join at runtime.
      RDFOPT_ASSIGN_OR_RETURN(Relation out, ExecNode(node->children[1].get(),
                                                     exec));
      NoteResult(node, out);
      return out;
    }
  }
  RDFOPT_ASSIGN_OR_RETURN(Relation right, ExecNode(node->children[1].get(),
                                                   exec));
  RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
  // Component joins are engine.join steps of the JUCQ combination; joins
  // within a disjunct are op.hash_join.
  TraceSpan span(node->component_join ? "engine.join" : "op.hash_join");
  span.Attr("node", node->id);
  size_t inputs = left.num_rows() + right.num_rows();
  exec->metrics->join_input_rows += inputs;
  SpinFor(profile_->tuple_us_per_row * static_cast<double>(inputs));
  Relation out = HashJoin(left, right);
  span.Attr("join_input_rows", inputs);
  span.Attr("output_rows", out.num_rows());
  NoteResult(node, out);
  return out;
}

Result<Relation> Evaluator::ExecUnionAll(PlanNode* node, Exec* exec) const {
  if (node->over_limit) {
    return Status::QueryTooComplex(
        UnionLimitMessage(node->union_terms, *profile_));
  }
  exec->metrics->union_terms += node->union_terms;
  // Per-union-term plan setup overhead (profile emulation), charged upfront.
  SpinFor(profile_->union_term_overhead_us *
          static_cast<double>(node->union_terms));

  Relation acc{std::vector<VarId>(node->head)};
  for (size_t i = 0; i < node->children.size(); ++i) {
    RDFOPT_RETURN_NOT_OK(CheckTimeout(*exec));
    RDFOPT_ASSIGN_OR_RETURN(Relation rel, ExecNode(node->children[i].get(),
                                                   exec));
    // Per-tuple executor overhead for rows appended to the union.
    SpinFor(profile_->tuple_us_per_row * static_cast<double>(rel.num_rows()));
    UnionInto(&acc, rel, node->disjuncts[i].head_bindings);
  }
  NoteResult(node, acc);
  return acc;
}

Result<Relation> Evaluator::ExecProject(PlanNode* node, Exec* exec) const {
  Relation in = TrueRow();  // The atom-less (always true) conjunction.
  if (!node->children.empty()) {
    RDFOPT_ASSIGN_OR_RETURN(in, ExecNode(node->children[0].get(), exec));
  }
  Relation out = ProjectWithBindings(in, node->head, node->bindings);
  NoteResult(node, out);
  return out;
}

Result<Relation> Evaluator::ExecDedup(PlanNode* node, Exec* exec) const {
  // Component roots carry the per-component UCQ span: its counter
  // attributes are the deltas this component contributed, so per-span
  // accounting rolls up exactly into the lump-sum EvalMetrics the caller
  // receives. The span covers the whole component, error paths included.
  std::optional<TraceSpan> span;
  EvalMetrics before;
  if (node->component >= 0) {
    span.emplace("engine.ucq");
    span->Attr("node", node->id);
    if (span->active()) before = *exec->metrics;
  }
  RDFOPT_ASSIGN_OR_RETURN(Relation out, ExecNode(node->children[0].get(),
                                                 exec));
  exec->metrics->duplicates_removed += out.Deduplicate();
  if (span.has_value() && span->active()) {
    const EvalMetrics& m = *exec->metrics;
    PlanNode* child = node->children[0].get();
    span->Attr("union_terms", child->kind == PlanNodeKind::kUnionAll
                                  ? child->union_terms
                                  : size_t{0});
    span->Attr("rows_scanned", m.rows_scanned - before.rows_scanned);
    span->Attr("join_input_rows",
               m.join_input_rows - before.join_input_rows);
    span->Attr("duplicates_removed",
               m.duplicates_removed - before.duplicates_removed);
    span->Attr("output_rows", out.num_rows());
  }
  NoteResult(node, out);
  return out;
}

Result<Relation> Evaluator::ExecMaterialize(PlanNode* node, Exec* exec) const {
  RDFOPT_ASSIGN_OR_RETURN(Relation out, ExecNode(node->children[0].get(),
                                                 exec));
  TraceSpan span("engine.materialize");
  span.Attr("node", node->id);
  span.Attr("rows_materialized", out.num_rows());
  RDFOPT_RETURN_NOT_OK(ChargeMaterialization(out, exec));
  NoteResult(node, out);
  return out;
}

Result<Relation> Evaluator::ExecNode(PlanNode* node, Exec* exec) const {
  switch (node->kind) {
    case PlanNodeKind::kAtomScan:
      return ExecAtomScan(node, exec);
    case PlanNodeKind::kIndexJoinAtom:
      return ExecIndexJoin(node, exec);
    case PlanNodeKind::kHashJoin:
      return ExecHashJoin(node, exec);
    case PlanNodeKind::kUnionAll:
      return ExecUnionAll(node, exec);
    case PlanNodeKind::kProject:
      return ExecProject(node, exec);
    case PlanNodeKind::kDedup:
      return ExecDedup(node, exec);
    case PlanNodeKind::kMaterializeBarrier:
      return ExecMaterialize(node, exec);
  }
  return Status::Internal("unknown plan node kind");
}

Result<Relation> Evaluator::ExecutePlan(PhysicalPlan* plan,
                                        EvalMetrics* metrics) const {
  EvalMetrics scratch;
  Exec exec;
  exec.metrics = metrics != nullptr ? metrics : &scratch;
  const EvalMetrics before = *exec.metrics;
  plan->ResetActuals();

  std::optional<TraceSpan> span;
  if (plan->shape == PlanShape::kJucq) {
    span.emplace("engine.jucq");
    span->Attr("components", plan->num_components);
  }
  // An infeasible plan (union over the profile's limit) is rejected before
  // any execution, exactly as the engine would refuse the statement.
  RDFOPT_RETURN_NOT_OK(plan->feasibility);

  RDFOPT_ASSIGN_OR_RETURN(Relation out, ExecNode(plan->root.get(), &exec));
  exec.metrics->elapsed_ms += exec.timer.ElapsedMillis();
  if (span.has_value() && span->active()) {
    const EvalMetrics& m = *exec.metrics;
    span->Attr("union_terms", m.union_terms - before.union_terms);
    span->Attr("rows_materialized",
               m.rows_materialized - before.rows_materialized);
    span->Attr("duplicates_removed",
               m.duplicates_removed - before.duplicates_removed);
    span->Attr("output_rows", out.num_rows());
  }
  RecordEngineMetrics(*exec.metrics, before);
  return out;
}

Result<Relation> Evaluator::EvaluateCQ(const ConjunctiveQuery& cq,
                                       EvalMetrics* metrics) const {
  PhysicalPlan plan = planner().PlanCQ(cq);
  return ExecutePlan(&plan, metrics);
}

Result<Relation> Evaluator::EvaluateUCQ(const UnionQuery& ucq,
                                        EvalMetrics* metrics) const {
  PhysicalPlan plan = planner().PlanUCQ(ucq);
  return ExecutePlan(&plan, metrics);
}

Result<Relation> Evaluator::EvaluateJUCQ(const JoinOfUnions& jucq,
                                         EvalMetrics* metrics) const {
  PhysicalPlan plan = planner().PlanJUCQ(jucq);
  return ExecutePlan(&plan, metrics);
}

double Evaluator::ExplainCost(const JoinOfUnions& jucq,
                              const CardinalityEstimator& estimator) const {
  PhysicalPlan plan = Planner(&estimator, profile_).PlanJUCQ(jucq);
  if (!plan.feasibility.ok()) {
    return std::numeric_limits<double>::infinity();
  }
  return plan.est_cost();
}

}  // namespace rdfopt
