#ifndef RDFOPT_ENGINE_PLAN_VERIFIER_H_
#define RDFOPT_ENGINE_PLAN_VERIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"

namespace rdfopt {

class Dictionary;
class TripleStore;

/// Static structural verification of PhysicalPlans (DESIGN.md §13): the
/// "verify the plan, not the run" half of the correctness story. The
/// executor and the differential suites check that a plan *ran* correctly;
/// the verifier checks, without executing anything, that a plan *is* a plan
/// the executor's contracts hold for. It runs after every Planner build and
/// after every plan-cache Clone in debug builds, behind
/// AnswerOptions::verify_plans in Release, and under the shell's `.verify`.
///
/// Invariant catalogue (rule ids as reported in PlanViolation::rule):
///   node-ids           ids are the planner's preorder numbering: unique,
///                      consecutive from 0 across shared subplans then the
///                      tree, num_nodes total (subsumes child acyclicity —
///                      a preorder that terminates with each id seen once
///                      cannot revisit a node).
///   arity              every node's out_columns is duplicate-free; child
///                      count matches the operator (joins 2, project/dedup/
///                      barrier 1, leaves 0); join/project/dedup/barrier
///                      output schemas agree with their children's.
///   bindings           variables are produced before consumed: an index
///                      join's atom shares a variable with its child, a
///                      projection's head is covered by child columns plus
///                      constant bindings, a union's disjunct heads are
///                      covered by the matching child.
///   dict-domain        constants in atoms and bindings are real dictionary
///                      ids (< store->dictionary_size(), when a store with
///                      a sized dictionary is attached), never
///                      kInvalidValueId outside all-constant guard atoms.
///   shared-refs        every kSharedRef resolves into shared_subplans, its
///                      schema matches the target's, targets carry their own
///                      index (execute-once coordinator placement), shared
///                      subplans do not nest further refs, and none is left
///                      unreferenced.
///   scan-range         kScanRange intervals are non-empty and sorted
///                      (lo < hi), lie within the attached hierarchy
///                      encoding's hid space, collapse >= 1 term, and drive
///                      their chain.
///   batch-width        the plan's vector width is in [1, kBatchRows] — the
///                      executor's selection vectors are sized to one batch.
///   parallel           over-limit unions are never parallel_safe; a
///                      parallel union's merge order is deterministic:
///                      one source disjunct per child, morsels no larger
///                      than the disjunct list.
///   feasibility        an over-limit union implies a non-OK plan
///                      feasibility (and vice versa), so an "executable"
///                      plan can never hide an infeasible union.
///   estimates          est_rows / est_cost are finite and non-negative
///                      (NaN poisons every downstream cover-cost compare).
///   view-resolution    every kViewScan carries a non-empty ViewSignature,
///                      pins a materialized relation (a substituted plan
///                      must stay executable even after catalog eviction),
///                      and stands in for >= 1 union term.
///   view-schema        a kViewScan's out_columns arity matches the pinned
///                      relation's arity — the signature keys both, so a
///                      mismatch means the catalog served the wrong rows.
struct PlanViolation {
  int node_id = -1;     ///< Offending plan node, -1 for plan-level rules.
  std::string rule;     ///< Invariant id from the catalogue above.
  std::string message;  ///< Human-readable diagnosis.
};

struct PlanVerifyResult {
  std::vector<PlanViolation> violations;

  bool ok() const { return violations.empty(); }
  /// One line per violation: "node #7 [shared-refs]: ...".
  std::string ToString() const;
};

/// Verifies `plan` against the invariant catalogue. `store` and `dict` are
/// optional context: the store supplies the attached hierarchy encoding for
/// the scan-range bounds, the dictionary its id domain for dict-domain
/// agreement. Context-dependent checks are skipped without their context,
/// never failed.
PlanVerifyResult VerifyPlan(const PhysicalPlan& plan,
                            const TripleStore* store = nullptr,
                            const Dictionary* dict = nullptr);

/// Structural rendering of the plan with every offending node marked
/// (`<-- VIOLATION ...`), the diagnostic attached to verification failures.
/// Deliberately independent of VarTable/Dictionary so every verify site can
/// produce it; node ids correlate with EXPLAIN and trace spans as usual.
std::string RenderPlanWithViolations(const PhysicalPlan& plan,
                                     const PlanVerifyResult& result);

/// Convenience for release-mode gating (AnswerOptions::verify_plans):
/// OK when the plan verifies, else kInternal carrying the violation list
/// and the marked rendering.
Status VerifyPlanOrError(const PhysicalPlan& plan,
                         const TripleStore* store = nullptr,
                         const Dictionary* dict = nullptr);

/// Debug-build hook (compiled out under NDEBUG): RDFOPT_CHECK-fails with
/// the marked rendering when `plan` does not verify. `site` names the call
/// site in the failure report ("planner", "plan-cache clone").
void DebugCheckPlan(const PhysicalPlan& plan, const TripleStore* store,
                    const char* site);

}  // namespace rdfopt

#endif  // RDFOPT_ENGINE_PLAN_VERIFIER_H_
