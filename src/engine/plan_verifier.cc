#include "engine/plan_verifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "engine/relation.h"
#include "rdf/dictionary.h"
#include "storage/triple_store.h"

namespace rdfopt {

namespace {

/// Mutable verification pass over one plan; collects violations instead of
/// stopping at the first, so a corrupted plan reports everything wrong with
/// it in one round trip.
class Verifier {
 public:
  Verifier(const PhysicalPlan& plan, const TripleStore* store,
           const Dictionary* dict)
      : plan_(plan), store_(store), dict_(dict) {}

  PlanVerifyResult Run() {
    if (plan_.root == nullptr) {
      Fail(-1, "node-ids", "plan has no root node");
      return std::move(result_);
    }
    // Preorder id discipline: shared subplans first, then the tree, ids
    // consecutive from 0. A walk that sees every id exactly once in its
    // assignment order cannot revisit a node, so this subsumes acyclicity.
    shared_ref_counts_.assign(plan_.shared_subplans.size(), 0);
    for (size_t i = 0; i < plan_.shared_subplans.size(); ++i) {
      const PlanNode* shared = plan_.shared_subplans[i].get();
      if (shared == nullptr) {
        Fail(-1, "shared-refs",
             "shared subplan " + std::to_string(i) + " is null");
        continue;
      }
      if (shared->shared_index != static_cast<int>(i)) {
        Fail(shared->id, "shared-refs",
             "shared subplan " + std::to_string(i) +
                 " carries shared_index " +
                 std::to_string(shared->shared_index) +
                 " instead of its own position");
      }
      VisitNode(shared, /*inside_shared=*/true);
    }
    VisitNode(plan_.root.get(), /*inside_shared=*/false);
    if (next_id_ != plan_.num_nodes) {
      Fail(-1, "node-ids",
           "plan.num_nodes is " + std::to_string(plan_.num_nodes) +
               " but the preorder walk numbered " + std::to_string(next_id_) +
               " node(s)");
    }
    for (size_t i = 0; i < shared_ref_counts_.size(); ++i) {
      if (shared_ref_counts_[i] == 0 &&
          plan_.shared_subplans[i] != nullptr) {
        Fail(plan_.shared_subplans[i]->id, "shared-refs",
             "shared subplan " + std::to_string(i) +
                 " is never referenced by a SharedRef node");
      }
    }
    // Plan-wide rules.
    if (plan_.vector_width < 1 || plan_.vector_width > kBatchRows) {
      Fail(-1, "batch-width",
           "vector_width " + std::to_string(plan_.vector_width) +
               " outside [1, " + std::to_string(kBatchRows) +
               "]: execution selection vectors hold one batch");
    }
    if (saw_over_limit_ && plan_.feasibility.ok()) {
      Fail(-1, "feasibility",
           "plan carries an over-limit union but claims OK feasibility; "
           "executing it would not report kQueryTooComplex");
    }
    if (!saw_over_limit_ && !plan_.feasibility.ok()) {
      Fail(-1, "feasibility",
           "plan feasibility is '" + plan_.feasibility.ToString() +
               "' but no union is over the limit");
    }
    return std::move(result_);
  }

 private:
  void Fail(int node_id, const char* rule, std::string message) {
    result_.violations.push_back(
        PlanViolation{node_id, rule, std::move(message)});
  }

  static bool Contains(const std::vector<VarId>& cols, VarId v) {
    return std::find(cols.begin(), cols.end(), v) != cols.end();
  }

  /// Distinct variables of `atom` in first-occurrence s,p,o order — the
  /// schema an atom scan produces (mirrors the planner's AtomColumns).
  static std::vector<VarId> AtomColumns(const TriplePattern& atom) {
    std::vector<VarId> raw;
    atom.AppendVariables(&raw);
    std::vector<VarId> out;
    for (VarId v : raw) {
      if (!Contains(out, v)) out.push_back(v);
    }
    return out;
  }

  /// Join output schema: left columns, then right-only columns.
  static std::vector<VarId> JoinColumns(const std::vector<VarId>& left,
                                        const std::vector<VarId>& right) {
    std::vector<VarId> out = left;
    for (VarId v : right) {
      if (!Contains(out, v)) out.push_back(v);
    }
    return out;
  }

  static std::string ColumnsText(const std::vector<VarId>& cols) {
    std::string out = "(";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) out += ",";
      out += "?" + std::to_string(cols[i]);
    }
    return out + ")";
  }

  static bool IsConstantAtom(const TriplePattern& atom) {
    return !atom.s.is_var() && !atom.p.is_var() && !atom.o.is_var();
  }

  void CheckConstant(const PlanNode& node, ValueId value, const char* what) {
    if (value == kInvalidValueId) {
      Fail(node.id, "dict-domain",
           std::string(what) + " is kInvalidValueId (matches nothing; an "
                               "uninitialized PatternTerm leaked into the "
                               "plan)");
    } else if (dict_ != nullptr && value >= dict_->size()) {
      Fail(node.id, "dict-domain",
           std::string(what) + " id " + std::to_string(value) +
               " outside the dictionary domain [0, " +
               std::to_string(dict_->size()) + ")");
    }
  }

  void CheckAtomDomain(const PlanNode& node) {
    if (!node.atom.s.is_var()) CheckConstant(node, node.atom.s.value(), "subject constant");
    if (!node.atom.p.is_var()) CheckConstant(node, node.atom.p.value(), "property constant");
    if (!node.atom.o.is_var()) CheckConstant(node, node.atom.o.value(), "object constant");
  }

  void CheckChildCount(const PlanNode& node, size_t expected) {
    if (node.children.size() != expected) {
      Fail(node.id, "arity",
           std::string(PlanNodeKindName(node.kind)) + " has " +
               std::to_string(node.children.size()) + " child(ren), expected " +
               std::to_string(expected));
    }
  }

  void CheckSchemaEquals(const PlanNode& node,
                         const std::vector<VarId>& expected,
                         const char* what) {
    if (node.out_columns != expected) {
      Fail(node.id, "arity",
           std::string(PlanNodeKindName(node.kind)) + " out_columns " +
               ColumnsText(node.out_columns) + " != " + what + " " +
               ColumnsText(expected));
    }
  }

  void VisitNode(const PlanNode* node, bool inside_shared) {
    if (node == nullptr) {
      Fail(-1, "node-ids", "null child node");
      return;
    }
    if (node->id != next_id_) {
      Fail(node->id, "node-ids",
           "preorder walk expected id " + std::to_string(next_id_) +
               " here (duplicate, stale or reordered node ids)");
      // Keep numbering from the walk's own counter so one bad id does not
      // cascade a violation onto every later node.
    }
    ++next_id_;

    // Duplicate output columns break column addressing everywhere.
    for (size_t i = 0; i < node->out_columns.size(); ++i) {
      for (size_t j = i + 1; j < node->out_columns.size(); ++j) {
        if (node->out_columns[i] == node->out_columns[j]) {
          Fail(node->id, "arity",
               "duplicate output column ?" +
                   std::to_string(node->out_columns[i]));
        }
      }
    }
    if (!std::isfinite(node->est_rows) || node->est_rows < 0.0 ||
        !std::isfinite(node->est_cost) || node->est_cost < 0.0) {
      Fail(node->id, "estimates",
           "est_rows/est_cost must be finite and non-negative (got " +
               std::to_string(node->est_rows) + " rows, cost " +
               std::to_string(node->est_cost) + ")");
    }

    switch (node->kind) {
      case PlanNodeKind::kAtomScan: {
        CheckChildCount(*node, 0);
        CheckAtomDomain(*node);
        if (IsConstantAtom(node->atom)) {
          // Existence guard: boolean, no columns.
          CheckSchemaEquals(*node, {}, "guard schema");
        } else {
          CheckSchemaEquals(*node, AtomColumns(node->atom), "atom columns");
        }
        break;
      }
      case PlanNodeKind::kScanRange: {
        CheckChildCount(*node, 0);
        if (node->range_lo >= node->range_hi) {
          Fail(node->id, "scan-range",
               "empty or inverted hid interval [" +
                   std::to_string(node->range_lo) + ", " +
                   std::to_string(node->range_hi) + ")");
        }
        if (node->range_terms < 1) {
          Fail(node->id, "scan-range",
               "range collapsed zero union terms");
        }
        if (!node->driving_scan) {
          Fail(node->id, "scan-range",
               "ScanRange must drive its chain: the shadow index emits "
               "(hid, subject) order no probe order survives");
        }
        const HierarchyEncoding* enc =
            store_ != nullptr ? store_->hierarchy() : nullptr;
        if (enc != nullptr) {
          const size_t num_hids = node->range_class_space
                                      ? enc->num_class_hids()
                                      : enc->num_property_hids();
          if (node->range_hi > num_hids) {
            Fail(node->id, "scan-range",
                 "hid interval [" + std::to_string(node->range_lo) + ", " +
                     std::to_string(node->range_hi) + ") exceeds the " +
                     (node->range_class_space ? "class" : "property") +
                     " hid space of " + std::to_string(num_hids));
          }
        }
        CheckSchemaEquals(*node, AtomColumns(node->atom),
                          "representative atom columns");
        break;
      }
      case PlanNodeKind::kSharedRef: {
        CheckChildCount(*node, 0);
        if (inside_shared) {
          Fail(node->id, "shared-refs",
               "SharedRef inside a shared subplan: shared subplans are "
               "executed once by the coordinator before the tree and may "
               "not depend on each other");
        }
        if (node->shared_index < 0 ||
            static_cast<size_t>(node->shared_index) >=
                plan_.shared_subplans.size()) {
          Fail(node->id, "shared-refs",
               "dangling shared_index " + std::to_string(node->shared_index) +
                   " (plan has " +
                   std::to_string(plan_.shared_subplans.size()) +
                   " shared subplan(s))");
        } else {
          ++shared_ref_counts_[static_cast<size_t>(node->shared_index)];
          const PlanNode* target =
              plan_.shared_subplans[static_cast<size_t>(node->shared_index)]
                  .get();
          if (target != nullptr) {
            CheckSchemaEquals(*node, target->out_columns,
                              "shared target schema");
            if (!(node->atom == target->atom)) {
              Fail(node->id, "shared-refs",
                   "SharedRef atom differs from its target's: the borrowed "
                   "relation would not be the scanned one");
            }
          }
        }
        break;
      }
      case PlanNodeKind::kIndexJoinAtom: {
        CheckChildCount(*node, 1);
        CheckAtomDomain(*node);
        if (!node->children.empty() && node->children[0] != nullptr) {
          const PlanNode& child = *node->children[0];
          const std::vector<VarId> atom_cols = AtomColumns(node->atom);
          bool binds = false;
          for (VarId v : atom_cols) {
            binds = binds || Contains(child.out_columns, v);
          }
          if (!binds) {
            Fail(node->id, "bindings",
                 "index join probes atom " + ColumnsText(atom_cols) +
                     " sharing no variable with its child's columns " +
                     ColumnsText(child.out_columns) +
                     " (nothing binds the probe position)");
          }
          CheckSchemaEquals(*node,
                            JoinColumns(child.out_columns, atom_cols),
                            "join of child and atom columns");
        }
        break;
      }
      case PlanNodeKind::kHashJoin: {
        CheckChildCount(*node, 2);
        if (node->children.size() == 2 && node->children[0] != nullptr &&
            node->children[1] != nullptr) {
          CheckSchemaEquals(
              *node,
              JoinColumns(node->children[0]->out_columns,
                          node->children[1]->out_columns),
              "join of the children's columns");
        }
        break;
      }
      case PlanNodeKind::kProject: {
        if (node->children.size() > 1) {
          Fail(node->id, "arity",
               "Project has " + std::to_string(node->children.size()) +
                   " children, expected at most 1");
        }
        CheckSchemaEquals(*node, node->head, "projection head");
        const PlanNode* child =
            node->children.empty() ? nullptr : node->children[0].get();
        for (VarId v : node->head) {
          bool bound = child != nullptr && Contains(child->out_columns, v);
          for (const auto& [var, value] : node->bindings) {
            bound = bound || var == v;
          }
          if (!bound) {
            Fail(node->id, "bindings",
                 "head variable ?" + std::to_string(v) +
                     " neither produced by the child nor constant-bound "
                     "(consumed before produced)");
          }
        }
        for (const auto& [var, value] : node->bindings) {
          CheckConstant(*node, value, "head binding constant");
        }
        break;
      }
      case PlanNodeKind::kUnionAll: {
        if (node->disjuncts.size() != node->children.size()) {
          Fail(node->id, "parallel",
               std::to_string(node->children.size()) + " children but " +
                   std::to_string(node->disjuncts.size()) +
                   " source disjuncts: the deterministic disjunct-order "
                   "merge is undefined");
        }
        if (node->over_limit) {
          if (node->parallel_safe) {
            Fail(node->id, "parallel",
                 "over-limit union marked parallel_safe; it must never "
                 "execute, let alone fan out");
          }
          if (node->union_terms <= plan_.union_term_limit &&
              plan_.union_term_limit > 0) {
            Fail(node->id, "feasibility",
                 "union of " + std::to_string(node->union_terms) +
                     " term(s) marked over-limit under a limit of " +
                     std::to_string(plan_.union_term_limit));
          }
          saw_over_limit_ = true;
        } else {
          if (node->union_terms != node->children.size()) {
            Fail(node->id, "arity",
                 "executable union claims " +
                     std::to_string(node->union_terms) +
                     " term(s) but has " +
                     std::to_string(node->children.size()) + " child(ren)");
          }
          if (node->morsel_size > std::max<size_t>(node->union_terms, 1)) {
            Fail(node->id, "parallel",
                 "morsel_size " + std::to_string(node->morsel_size) +
                     " exceeds the disjunct list of " +
                     std::to_string(node->union_terms));
          }
        }
        const size_t pairs =
            std::min(node->disjuncts.size(), node->children.size());
        for (size_t d = 0; d < pairs; ++d) {
          const ConjunctiveQuery& disjunct = node->disjuncts[d];
          const PlanNode* child = node->children[d].get();
          if (child == nullptr) continue;
          for (VarId v : node->head) {
            bool bound = Contains(child->out_columns, v);
            for (const auto& [var, value] : disjunct.head_bindings) {
              bound = bound || var == v;
            }
            if (!bound) {
              Fail(node->id, "bindings",
                   "union head variable ?" + std::to_string(v) +
                       " unbound in disjunct " + std::to_string(d) +
                       ": child produces " +
                       ColumnsText(child->out_columns) +
                       " and no head binding covers it");
            }
          }
          for (const auto& [var, value] : disjunct.head_bindings) {
            CheckConstant(*node, value, "disjunct head binding constant");
          }
        }
        CheckSchemaEquals(*node, node->head, "union head");
        break;
      }
      case PlanNodeKind::kDedup:
      case PlanNodeKind::kMaterializeBarrier: {
        CheckChildCount(*node, 1);
        if (!node->children.empty() && node->children[0] != nullptr) {
          CheckSchemaEquals(*node, node->children[0]->out_columns,
                            "child schema (schema-preserving operator)");
        }
        break;
      }
      case PlanNodeKind::kViewScan: {
        CheckChildCount(*node, 0);
        if (node->view_signature.empty()) {
          Fail(node->id, "view-resolution",
               "ViewScan with an empty view signature: the node cannot be "
               "correlated with any catalog entry");
        }
        if (node->view_rows == nullptr) {
          Fail(node->id, "view-resolution",
               "ViewScan with no materialized rows pinned: execution would "
               "have nothing to read");
        } else if (node->view_rows->arity() != node->out_columns.size()) {
          Fail(node->id, "view-schema",
               "ViewScan out_columns arity " +
                   std::to_string(node->out_columns.size()) +
                   " != materialized relation arity " +
                   std::to_string(node->view_rows->arity()) +
                   " (the signature should pin both)");
        }
        if (node->union_terms < 1) {
          Fail(node->id, "view-resolution",
               "ViewScan substituting zero union terms: the replaced "
               "component must have had at least one disjunct");
        }
        break;
      }
    }

    for (const auto& child : node->children) {
      VisitNode(child.get(), inside_shared);
    }
  }

  const PhysicalPlan& plan_;
  const TripleStore* store_;
  const Dictionary* dict_;
  PlanVerifyResult result_;
  int next_id_ = 0;
  bool saw_over_limit_ = false;
  std::vector<size_t> shared_ref_counts_;
};

void RenderNode(const PlanNode* node, int depth,
                const std::multimap<int, const PlanViolation*>& by_node,
                std::ostringstream* out) {
  if (node == nullptr) {
    *out << std::string(static_cast<size_t>(depth) * 2, ' ')
         << "<null node>\n";
    return;
  }
  *out << std::string(static_cast<size_t>(depth) * 2, ' ')
       << PlanNodeKindName(node->kind) << " [#" << node->id << "]";
  if (node->kind == PlanNodeKind::kUnionAll) {
    *out << " terms=" << node->union_terms
         << (node->over_limit ? " OVER-LIMIT" : "")
         << (node->parallel_safe ? " parallel" : "");
  }
  if (node->kind == PlanNodeKind::kScanRange) {
    *out << " hid=[" << node->range_lo << "," << node->range_hi << ")"
         << (node->range_class_space ? " class" : " property");
  }
  if (node->kind == PlanNodeKind::kSharedRef) {
    *out << " -> shared[" << node->shared_index << "]";
  }
  if (node->kind == PlanNodeKind::kViewScan) {
    *out << " [view: " << node->view_signature << "]";
  }
  if (!node->out_columns.empty()) {
    *out << " cols=";
    for (size_t i = 0; i < node->out_columns.size(); ++i) {
      *out << (i > 0 ? "," : "") << "?" << node->out_columns[i];
    }
  }
  auto [begin, end] = by_node.equal_range(node->id);
  for (auto it = begin; it != end; ++it) {
    *out << "\n"
         << std::string(static_cast<size_t>(depth) * 2 + 4, ' ')
         << "<-- VIOLATION [" << it->second->rule
         << "]: " << it->second->message;
  }
  *out << "\n";
  for (const auto& child : node->children) {
    RenderNode(child.get(), depth + 1, by_node, out);
  }
}

}  // namespace

std::string PlanVerifyResult::ToString() const {
  if (violations.empty()) return "plan OK";
  std::string out;
  for (const PlanViolation& v : violations) {
    if (!out.empty()) out += '\n';
    if (v.node_id >= 0) {
      out += "node #" + std::to_string(v.node_id);
    } else {
      out += "plan";
    }
    out += " [" + v.rule + "]: " + v.message;
  }
  return out;
}

PlanVerifyResult VerifyPlan(const PhysicalPlan& plan, const TripleStore* store,
                            const Dictionary* dict) {
  return Verifier(plan, store, dict).Run();
}

std::string RenderPlanWithViolations(const PhysicalPlan& plan,
                                     const PlanVerifyResult& result) {
  std::multimap<int, const PlanViolation*> by_node;
  std::ostringstream out;
  out << "Plan(profile=" << plan.profile_name
      << ", nodes=" << plan.num_nodes
      << ", vector_width=" << plan.vector_width << ")\n";
  for (const PlanViolation& v : result.violations) {
    if (v.node_id >= 0) {
      by_node.emplace(v.node_id, &v);
    } else {
      out << "  <-- PLAN VIOLATION [" << v.rule << "]: " << v.message << "\n";
    }
  }
  for (size_t i = 0; i < plan.shared_subplans.size(); ++i) {
    out << "  Shared[" << i << "]:\n";
    RenderNode(plan.shared_subplans[i].get(), 2, by_node, &out);
  }
  RenderNode(plan.root.get(), 1, by_node, &out);
  return out.str();
}

Status VerifyPlanOrError(const PhysicalPlan& plan, const TripleStore* store,
                         const Dictionary* dict) {
  PlanVerifyResult result = VerifyPlan(plan, store, dict);
  if (result.ok()) return Status::OK();
  return Status::Internal("plan verification failed:\n" + result.ToString() +
                          "\n" + RenderPlanWithViolations(plan, result));
}

void DebugCheckPlan(const PhysicalPlan& plan, const TripleStore* store,
                    const char* site) {
#ifdef NDEBUG
  (void)plan;
  (void)store;
  (void)site;
#else
  PlanVerifyResult result = VerifyPlan(plan, store);
  RDFOPT_CHECK(result.ok()) << "invalid plan out of " << site << ":\n"
                            << result.ToString() << "\n"
                            << RenderPlanWithViolations(plan, result);
#endif
}

}  // namespace rdfopt
